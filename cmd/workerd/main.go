// Command workerd is the remote end of the cross-process dispatch plane:
// a standalone worker daemon serving the framed TCP protocol of
// internal/wire. On every connection it advertises its identity — node
// name, trust domain, capacity, free-form placement labels — sealed under
// the link's pre-shared master key, then executes sealed task envelopes:
// binding codecs arrive in rekey frames (key material never crosses in
// clear), payloads are opened with the epoch codec they were sealed under,
// the modelled work is slept at -scale, and the result returns under the
// same seal. Unauthenticated or malformed frames cut the connection:
// fail-secure, never fail-open.
//
// Usage:
//
//	workerd -psk SECRET [-listen ADDR] [-name N] [-domain D] [-trusted]
//	        [-cores N] [-speed F] [-labels k=v,k=v] [-scale N]
//	        [-timeout D] [-telemetry ADDR] [-trace-spans=BOOL]
//	        [-parent ADDR] [-catchup skip|latest|all]
//
// -parent ADDR joins the remote management plane: a local manager
// monitoring this workerd's served-exec rate reports violations to the
// coordinator's -mgmt endpoint over a lease-based RemoteLink (sealed
// management frames on the same wire protocol). While the coordinator is
// unreachable the link degrades up → suspect → partitioned, violations
// park in a bounded buffer, and after the partition heals they flush
// exactly once; -catchup picks how many blind MAPE cycles to make up
// (skip none, latest one, all of them bounded).
//
// The daemon runs until SIGINT/SIGTERM (graceful: in-flight execs finish,
// listener closes) or until -timeout expires. -telemetry serves /metrics
// with the served/rejected frame counters plus the per-frame dispatch and
// seal latency histograms, and /spans with the workerd-side task spans.
// With -trace-spans (on by default) the daemon joins cluster-wide task
// tracing: exec frames whose trace context carries the coordinator's
// sampled bit get a workerd-side span under the same trace id, and the
// coordinator scrapes them (with the stage histograms) over the wire's
// sealed stats frame into its /cluster view.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/cmd/internal/flags"
	"repro/internal/contract"
	"repro/internal/manager"
	"repro/internal/metrics"
	"repro/internal/rules"
	"repro/internal/simclock"
	"repro/internal/skel"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wire"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "address to serve the framed dispatch protocol on")
	psk := flag.String("psk", "", "shared link secret; must match the coordinator's (required)")
	name := flag.String("name", "workerd0", "node name advertised in the handshake")
	domain := flag.String("domain", "edge.remote", "trust domain advertised in the handshake")
	trusted := flag.Bool("trusted", false, "advertise the domain as trusted (default: untrusted, so bindings are sealed)")
	cores := flag.Int("cores", 2, "core slots advertised in the handshake")
	speed := flag.Float64("speed", 1.0, "relative core speed advertised in the handshake")
	labels := flag.String("labels", "", "comma-separated k=v placement labels advertised in the handshake")
	scale := flag.Float64("scale", 200, "time scale dividing the modelled work carried by exec frames")
	traceSpans := flag.Bool("trace-spans", true, "record a workerd-side span for exec frames the coordinator sampled")
	parent := flag.String("parent", "", "coordinator management-plane address (-mgmt): run a local manager reporting over a RemoteLink")
	catchup := flag.String("catchup", "latest", "downtime catch-up policy after a partition heals: skip, latest or all")
	timeout := flags.RegisterTimeout()
	telemetryAddr := flags.RegisterTelemetry()
	flag.Parse()

	if *psk == "" {
		fmt.Fprintln(os.Stderr, "workerd: -psk is required")
		os.Exit(1)
	}
	labelMap, err := flags.ParseLabels(*labels)
	if err != nil {
		fmt.Fprintln(os.Stderr, "workerd:", err)
		os.Exit(1)
	}

	farmIns := &skel.FarmInstruments{
		Dispatch: metrics.NewLatencyHistogram(),
		Seal:     metrics.NewLatencyHistogram(),
	}
	var tracer *telemetry.TaskTracer
	if *traceSpans {
		// Rate 1: the sampling decision is the coordinator's (the sampled
		// bit in each frame's trace context); the workerd tracer only
		// records what arrives already sampled.
		tracer = telemetry.NewTaskTracer(0, 1, 0)
	}
	nodeName := *name
	srv, err := wire.NewServer(wire.ServerConfig{
		PSK: wire.DerivePSK(*psk),
		Hello: wire.Hello{
			Name:    *name,
			Domain:  *domain,
			Trusted: *trusted,
			Cores:   *cores,
			Speed:   *speed,
			Labels:  labelMap,
		},
		TimeScale:   *scale,
		Log:         log.New(os.Stderr, "workerd: ", log.LstdFlags),
		Instruments: farmIns,
		Tracer:      tracer,
		Stats: func() []byte {
			b, err := telemetry.BuildNodeReport(nodeName, tracer, 256).Encode()
			if err != nil {
				return []byte("{}")
			}
			return b
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "workerd:", err)
		os.Exit(1)
	}
	if err := srv.Listen(*listen); err != nil {
		fmt.Fprintln(os.Stderr, "workerd:", err)
		os.Exit(1)
	}
	fmt.Printf("workerd %s: serving on %s (domain %s, %d cores, labels %s)\n",
		*name, srv.Addr(), *domain, *cores, *labels)

	ctx, cancel := flags.Context(*timeout)
	defer cancel()

	// Remote management plane: a local manager monitoring this workerd's
	// served-exec rate reports to the coordinator's parent endpoint over a
	// RemoteLink. Violations raised while the coordinator is unreachable
	// park in the bounded buffer and flush exactly once after reattach;
	// the -catchup policy sizes the extra MAPE cycles run to make up for
	// the blind window. A freshly restarted workerd sees the parent's old
	// acknowledgement watermark and runs catch-up on its first attach.
	var mgmtLink *manager.RemoteLink
	var mgmtMgr *manager.Manager
	if *parent != "" {
		pol, err := manager.ParseCatchUpPolicy(*catchup)
		if err != nil {
			fmt.Fprintln(os.Stderr, "workerd:", err)
			os.Exit(1)
		}
		mgmtLog := trace.NewLog()
		mgmtMgr, err = manager.New(manager.Config{
			Name: "AM_" + *name, Concern: "performance",
			Clock: &simclock.Real{}, Period: time.Second,
			Controller: &servedRate{srv: srv, clock: &simclock.Real{}},
			Log:        mgmtLog,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "workerd:", err)
			os.Exit(1)
		}
		fac, err := wire.NewFactory(wire.DerivePSK(*psk), 10*time.Second)
		if err != nil {
			fmt.Fprintln(os.Stderr, "workerd:", err)
			os.Exit(1)
		}
		defer fac.CloseControls()
		addr := *parent
		mgmtLink, err = manager.NewRemoteLink(manager.RemoteLinkConfig{
			Child:  mgmtMgr,
			Policy: pol,
			Transport: func(req []byte) ([]byte, error) {
				return fac.Mgmt(addr, req)
			},
			Heartbeat: 500 * time.Millisecond, Lease: 2 * time.Second,
			Clock: &simclock.Real{}, Log: mgmtLog,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "workerd:", err)
			os.Exit(1)
		}
		go func() { _ = mgmtMgr.Run(ctx) }()
		go func() { _ = mgmtLink.Run(ctx) }()
		fmt.Printf("workerd %s: management link to %s (catch-up policy %s)\n", *name, addr, pol)
	}

	if *telemetryAddr != "" {
		reg := telemetry.NewRegistry()
		reg.AddCounter("repro_workerd_served_total",
			"Exec frames served by this workerd.", nil,
			func() float64 { return float64(srv.Served()) })
		reg.AddCounter("repro_workerd_rejected_total",
			"Connections cut after unauthenticated or malformed frames.", nil,
			func() float64 { return float64(srv.Rejected()) })
		reg.AddHistogram("repro_farm_dispatch_seconds",
			"Whole-frame handling latency per exec frame (decode, work, seal, reply).",
			nil, farmIns.Dispatch)
		reg.AddHistogram("repro_farm_seal_seconds",
			"Result encode share of the frame path.", nil, farmIns.Seal)
		reg.SetTaskTracer(tracer) // no-op when -trace-spans=false
		if mgmtLink != nil {
			l, m := mgmtLink, mgmtMgr
			lbl := telemetry.Labels{"manager": m.Name()}
			reg.AddGauge("repro_manager_link_state",
				"Manager-link failure-detection state: 0 up, 1 suspect, 2 partitioned, 3 reattached.",
				lbl, func() float64 { return float64(l.State()) })
			reg.AddCounter("repro_manager_link_reattach_total",
				"Times the manager link re-established after a partition.",
				lbl, func() float64 { return float64(l.Reattaches()) })
			reg.AddCounter("repro_manager_catchup_cycles_total",
				"Downtime catch-up MAPE cycles run after link reattach.",
				lbl, func() float64 { return float64(m.CatchUpCycles()) })
			reg.AddGauge("repro_manager_buffered_violations",
				"Violations parked in the bounded buffer while the parent is unreachable.",
				lbl, func() float64 { return float64(m.BufferedViolations()) })
		}
		tsrv := telemetry.NewServer(*telemetryAddr, reg)
		if err := tsrv.Listen(); err != nil {
			fmt.Fprintln(os.Stderr, "workerd:", err)
			os.Exit(1)
		}
		fmt.Printf("workerd %s: telemetry on %s\n", *name, tsrv.Addr())
		go func() { _ = tsrv.Run(ctx) }()
	}

	<-ctx.Done()
	srv.Close()
	fmt.Printf("workerd %s: served %d execs, rejected %d peers\n",
		*name, srv.Served(), srv.Rejected())
	if mgmtLink != nil {
		fmt.Printf("workerd %s: mgmt link state=%s reattaches=%d catch-up cycles=%d buffered=%d\n",
			*name, mgmtLink.State(), mgmtLink.Reattaches(),
			mgmtMgr.CatchUpCycles(), mgmtMgr.BufferedViolations())
	}
}

// servedRate adapts the wire server's served-exec counter into the
// contract snapshot a local manager monitors: throughput is the exec rate
// since the previous MAPE cycle, in execs per wall-clock second.
type servedRate struct {
	srv   *wire.Server
	clock simclock.Clock
	last  uint64
	lastT time.Time
}

func (c *servedRate) Beans() []rules.Bean { return nil }

func (c *servedRate) Snapshot() contract.Snapshot {
	now := c.clock.Now()
	served := c.srv.Served()
	var rate float64
	if !c.lastT.IsZero() {
		if dt := now.Sub(c.lastT).Seconds(); dt > 0 {
			rate = float64(served-c.last) / dt
		}
	}
	c.last, c.lastT = served, now
	return contract.Snapshot{Throughput: rate}
}

func (c *servedRate) Execute(op string) (string, error) { return "", nil }

// Command coordinator is the local end of the cross-process dispatch
// plane. It probes a fleet of workerd endpoints, registers their
// advertised nodes (name, trust domain, cores, placement labels) with the
// resource manager next to its own trusted local cores, and runs the
// standard secured, fault-tolerant farm application over the mixed pool.
// Placement goes through the unified dispatch decision path: -labels and
// -trusted-only constrain it, -local is the escape hatch pinning every
// task in-process even while remote nodes stay registered. Payloads that
// cross to an untrusted workerd are sealed end to end by the security
// plane (AES-GCM under per-binding epoch keys shipped in rekey frames) —
// the coordinator exits non-zero if the auditor records a single leak.
//
// Usage:
//
//	coordinator -workers HOST:PORT[,HOST:PORT...] -psk SECRET
//	            [-tasks N] [-scale N] [-local-cores N]
//	            [-labels k=v,...] [-trusted-only] [-local]
//	            [-trace FILE] [-require-remote] [-mgmt ADDR]
//	            [-trace-sample N] [-trace-seed N] [-spans FILE]
//	            [-timeout D] [-telemetry ADDR]
//
// -mgmt ADDR additionally hosts the remote management plane: a parent
// endpoint over the farm's root manager served on ADDR behind the same
// sealed framed protocol. Workerds started with -parent dial it to report
// contract violations (exactly-once, deduplicated by causality id across
// partitions), pick up their P_spl sub-contract, and run catch-up MAPE
// cycles after a partition heals.
//
// -trace-sample N turns on cluster-wide task tracing at one span per N
// tasks (1 = every task): sampled tasks carry their trace context across
// the wire, the workerds record exec spans under the same trace id, and
// -telemetry's /cluster endpoint serves the merged per-stage latency
// decomposition scraped from the whole fleet. -spans FILE dumps the
// cluster-wide spans as JSONL at end of run.
//
// Exit status 1 on error, 2 when the security auditor recorded a leak,
// 3 when -require-remote is set and no task crossed the wire.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/cmd/internal/flags"
	"repro/internal/experiments"
	"repro/internal/skel"
)

func main() {
	workers := flag.String("workers", "", "comma-separated workerd dial addresses (required)")
	psk := flag.String("psk", "", "shared link secret; must match the workerds' (required)")
	tasks := flag.Int("tasks", 200, "length of the task stream")
	scale := flag.Float64("scale", 200, "time scale: modelled seconds per wall-clock second")
	localCores := flag.Int("local-cores", 2, "trusted in-process cores the farm starts on")
	labels := flag.String("labels", "", "comma-separated k=v labels a node must carry to receive tasks")
	trustedOnly := flag.Bool("trusted-only", false, "dispatch only to workers in trusted domains")
	local := flag.Bool("local", false, "escape hatch: pin every task to in-process workers")
	traceOut := flag.String("trace", "", "write the MAPE decision trace as JSONL to this file")
	traceSample := flag.Uint64("trace-sample", 0, "sample one task span per N tasks (0 disables task tracing, 1 traces every task)")
	traceSeed := flag.Uint64("trace-seed", 0, "seed of the deterministic span sampler")
	spansOut := flag.String("spans", "", "write the cluster-wide task spans as JSONL to this file (needs -trace-sample)")
	mgmt := flag.String("mgmt", "", "host the remote management plane on this address (\":0\" for ephemeral): workerds started with -parent report violations and receive sub-contracts here")
	requireRemote := flag.Bool("require-remote", false, "exit non-zero unless at least one task executed remotely")
	timeout := flags.RegisterTimeout()
	telemetryAddr := flags.RegisterTelemetry()
	flag.Parse()

	if *workers == "" || *psk == "" {
		fmt.Fprintln(os.Stderr, "coordinator: -workers and -psk are required")
		os.Exit(1)
	}
	labelMap, err := flags.ParseLabels(*labels)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coordinator:", err)
		os.Exit(1)
	}
	var addrs []string
	for _, a := range strings.Split(*workers, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}

	ctx, cancel := flags.Context(*timeout)
	defer cancel()

	res, err := experiments.RemoteFarm(ctx,
		experiments.Options{Scale: *scale, Out: os.Stdout, Telemetry: *telemetryAddr},
		experiments.DispatchOptions{
			Workers:    addrs,
			PSK:        *psk,
			Tasks:      *tasks,
			LocalCores: *localCores,
			Selector: skel.Selector{
				Labels:      labelMap,
				TrustedOnly: *trustedOnly,
				Local:       *local,
			},
			TraceSample: *traceSample,
			TraceSeed:   *traceSeed,
			MgmtListen:  *mgmt,
		})
	if err != nil {
		fmt.Fprintln(os.Stderr, "coordinator:", err)
		os.Exit(1)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "coordinator:", err)
			os.Exit(1)
		}
		if err := res.Tracer.WriteJSONL(f); err != nil {
			fmt.Fprintln(os.Stderr, "coordinator: writing trace:", err)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "coordinator:", err)
		}
	}

	if *spansOut != "" && res.Cluster != nil {
		f, err := os.Create(*spansOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "coordinator:", err)
			os.Exit(1)
		}
		if err := res.Cluster.WriteSpansJSONL(json.NewEncoder(f)); err != nil {
			fmt.Fprintln(os.Stderr, "coordinator: writing spans:", err)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "coordinator:", err)
		}
	}

	if res.SecurityLeaks > 0 {
		fmt.Fprintf(os.Stderr, "coordinator: %d plaintext leaks on secured bindings\n", res.SecurityLeaks)
		os.Exit(2)
	}
	if *requireRemote && res.RemoteStats.Execs == 0 {
		fmt.Fprintln(os.Stderr, "coordinator: no task crossed the wire (-require-remote)")
		os.Exit(3)
	}
}

// Command farmize runs the EXT-FARMIZE experiment (the §4.2 outlook): a
// pipeline whose sequential consumer stage caps throughput below the
// contract is compared with the same pipeline after transforming that
// stage into a farm whose workers behave as instances of the original
// stage.
//
// Usage:
//
//	farmize [-scale N] [-tasks N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/cmd/internal/flags"
	"repro/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 200, "time scale: how many modelled seconds per wall-clock second")
	tasks := flag.Int("tasks", 150, "stream length")
	timeout := flags.RegisterTimeout()
	telemetry := flags.RegisterTelemetry()
	flag.Parse()

	ctx, cancel := flags.Context(*timeout)
	defer cancel()

	if _, err := experiments.Farmize(ctx, experiments.Options{
		Scale: *scale, Tasks: *tasks, Out: os.Stdout, Telemetry: *telemetry,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "farmize:", err)
		os.Exit(1)
	}
}

// Command contractsplit demonstrates the P_spl heuristics of §3.1: how a
// top-level SLA is split into the sub-contracts propagated to nested
// behavioural skeletons (identity split for pipeline throughput,
// proportional split for parallelism degrees, best-effort for farm
// workers, with boolean security contracts propagating unchanged).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/cmd/internal/flags"
	"repro/internal/experiments"
)

func main() {
	timeout := flags.RegisterTimeout()
	flag.Parse()

	ctx, cancel := flags.Context(*timeout)
	defer cancel()

	if _, err := experiments.ContractSplit(ctx, experiments.Options{Out: os.Stdout}); err != nil {
		fmt.Fprintln(os.Stderr, "contractsplit:", err)
		os.Exit(1)
	}
}

// Command shed runs the EXT-SHED experiment: an overprovisioned task farm
// under a bounded throughput contract. The measured rate exceeds the upper
// bound, so the Fig. 5 CheckRateHigh rule removes workers cycle by cycle
// until the farm fits the contracted range — the "underload" adaptation
// direction of the paper's earlier evaluation.
//
// Usage:
//
//	shed [-scale N] [-tasks N] [-timeline]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/cmd/internal/flags"
	"repro/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 200, "time scale: how many modelled seconds per wall-clock second")
	tasks := flag.Int("tasks", 200, "stream length")
	timeline := flag.Bool("timeline", false, "also dump the full autonomic event timeline")
	timeout := flags.RegisterTimeout()
	telemetry := flags.RegisterTelemetry()
	flag.Parse()

	ctx, cancel := flags.Context(*timeout)
	defer cancel()

	res, err := experiments.Shed(ctx, experiments.Options{
		Scale: *scale, Tasks: *tasks, Out: os.Stdout, Telemetry: *telemetry,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "shed:", err)
		os.Exit(1)
	}
	if *timeline {
		fmt.Println("\n--- event timeline ---")
		fmt.Print(res.Log.Timeline())
	}
}

// Command fig4 regenerates the paper's Fig. 4: hierarchical autonomic
// management of a three-stage pipeline pipe(producer, farm(filter),
// consumer) under the application SLA 0.3-0.7 tasks/s, with the manager
// hierarchy AM_A / AM_P / AM_F / AM_C.
//
// Usage:
//
//	fig4 [-scale N] [-tasks N] [-timeline] [-rules]
//
// -rules prints the Fig. 5 rule file (as parsed and re-rendered by the
// rule engine) instead of running the experiment.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/cmd/internal/flags"
	"repro/internal/experiments"
	"repro/internal/rules"
	"repro/internal/trace"
)

func main() {
	scale := flag.Float64("scale", 200, "time scale: how many modelled seconds per wall-clock second")
	tasks := flag.Int("tasks", 150, "stream length")
	timeline := flag.Bool("timeline", false, "also dump the full autonomic event timeline")
	showRules := flag.Bool("rules", false, "print the Fig. 5 AM_F rule file and exit")
	rulesDriven := flag.Bool("rules-driven", false, "store AM_A's reaction policy as DRL rules too")
	csvPath := flag.String("csv", "", "also write the sampled series to this CSV file")
	timeout := flags.RegisterTimeout()
	telemetry := flags.RegisterTelemetry()
	flag.Parse()

	ctx, cancel := flags.Context(*timeout)
	defer cancel()

	if *showRules {
		rs, err := rules.Parse(rules.FarmRuleSource)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig4:", err)
			os.Exit(1)
		}
		fmt.Println("// Fig. 5 — rules used in the AM_F manager (engine round trip)")
		fmt.Println(rs.String())
		return
	}

	res, err := experiments.Fig4(ctx, experiments.Options{
		Scale: *scale, Tasks: *tasks, Out: os.Stdout, Telemetry: *telemetry, RulesDriven: *rulesDriven,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fig4:", err)
		os.Exit(1)
	}
	if *timeline {
		fmt.Println("\n--- event timeline ---")
		fmt.Print(res.Log.Timeline())
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig4:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.WriteSeriesCSV(f, *scale,
			res.Throughput, res.InputRate, res.Workers, res.Cores); err != nil {
			fmt.Fprintln(os.Stderr, "fig4:", err)
			os.Exit(1)
		}
		fmt.Printf("series written to %s\n", *csvPath)
	}
}

// Command faulttol runs the EXT-FT experiment: worker crashes are injected
// into a contracted task farm while its fault-tolerance manager is active.
// The manager detects each crash, redistributes the crashed worker's
// stranded tasks over the survivors and recruits a replacement — every
// task completes exactly once and the throughput recovers.
//
// Usage:
//
//	faulttol [-scale N] [-tasks N] [-timeline]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/cmd/internal/flags"
	"repro/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 200, "time scale: how many modelled seconds per wall-clock second")
	tasks := flag.Int("tasks", 200, "stream length")
	timeline := flag.Bool("timeline", false, "also dump the full autonomic event timeline")
	timeout := flags.RegisterTimeout()
	telemetry := flags.RegisterTelemetry()
	flag.Parse()

	ctx, cancel := flags.Context(*timeout)
	defer cancel()

	res, err := experiments.FaultTolerance(ctx, experiments.Options{
		Scale: *scale, Tasks: *tasks, Out: os.Stdout, Telemetry: *telemetry,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "faulttol:", err)
		os.Exit(1)
	}
	if *timeline {
		fmt.Println("\n--- event timeline ---")
		fmt.Print(res.Log.Timeline())
	}
}

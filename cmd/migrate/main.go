// Command migrate runs the EXT-MIG ablation: when external load hits the
// nodes hosting farm workers, the autonomic layer can either add workers
// (the paper's Fig. 4 reaction) or migrate the affected workers to free
// nodes (the §3 "migration of poorly performing activities" policy). The
// comparison shows both restore the contract, with migration holding fewer
// cores.
//
// Usage:
//
//	migrate [-scale N] [-tasks N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/cmd/internal/flags"
	"repro/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 200, "time scale: how many modelled seconds per wall-clock second")
	tasks := flag.Int("tasks", 240, "stream length")
	timeout := flags.RegisterTimeout()
	telemetry := flags.RegisterTelemetry()
	flag.Parse()

	ctx, cancel := flags.Context(*timeout)
	defer cancel()

	if _, err := experiments.Migration(ctx, experiments.Options{
		Scale: *scale, Tasks: *tasks, Out: os.Stdout, Telemetry: *telemetry,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "migrate:", err)
		os.Exit(1)
	}
}

// Command chaos runs the deterministic chaos soak: a secured two-domain
// task farm with fault tolerance attached endures seeded fault storms
// covering the whole taxonomy — worker crashes, panics and stalls,
// external-load spikes, link degradation, flaky and exhausted recruitment,
// failing and slow actuators — while the soak invariants are checked:
// every task collected exactly once, zero plaintext on untrusted links,
// every storm recovered within bound (MTTR histogram non-empty) and no
// goroutine leaks.
//
// The whole fault schedule derives from -seed: two runs with the same seed
// print the identical schedule and invariant summary, so any failure
// replays exactly.
//
// Usage:
//
//	chaos [-seed N] [-storm N] [-scale N] [-remote] [-mgrlink] [-batch N] [-trace FILE] [-timeline] [-telemetry ADDR] [-timeout D] [-golden FILE] [-write-golden FILE]
//
// -golden FILE compares the run's replay-identity artifact (the fault
// schedule plus the canonical invariant summary) byte for byte against a
// committed golden file; -write-golden FILE (re)generates one.
//
// -remote attaches a live cross-process dispatch plane: in-process workerd
// servers on localhost join the untrusted pool and the fault plan extends
// to the remote-link taxonomy (connection drops, latency injection,
// partitions on the framed TCP links). Remote goldens are distinct files:
// the extended taxonomy changes the seeded plan.
//
// -mgrlink attaches a remote management plane: a sentinel child manager
// reports to the root manager over a manager.RemoteLink and the fault plan
// extends to the manager-link taxonomy (partitions and dropped exchanges
// on the parent/child channel). Two extra invariants are checked: no
// violation raised during a partition goes permanently unnoticed, and each
// one reaches the parent exactly once. Manager-link goldens are distinct
// files for the same reason remote ones are.
//
// Exit status 1 on error, 2 when any soak invariant is violated, 3 when
// the run diverges from the golden file.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"repro/cmd/internal/flags"
	"repro/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "fault-plan seed; same seed, same storm schedule")
	storms := flag.Int("storm", 3, "number of fault storms")
	scale := flag.Float64("scale", 200, "time scale: how many modelled seconds per wall-clock second")
	remote := flag.Bool("remote", false, "soak the cross-process dispatch plane: localhost workerd servers + remote-link faults")
	mgrlink := flag.Bool("mgrlink", false, "soak the remote management plane: sentinel child manager over a RemoteLink + manager-link faults")
	batch := flag.Int("batch", 0, "DispatchBatch: >1 soaks the batched dispatch hot path (batched goldens are distinct files)")
	traceOut := flag.String("trace", "", "write the MAPE decision trace as JSONL to this file")
	timeline := flag.Bool("timeline", false, "also dump the full autonomic event timeline")
	golden := flag.String("golden", "", "compare the deterministic schedule+summary against this golden file")
	writeGolden := flag.String("write-golden", "", "write the deterministic schedule+summary to this golden file")
	timeout := flags.RegisterTimeout()
	telemetry := flags.RegisterTelemetry()
	flag.Parse()

	ctx, cancel := flags.Context(*timeout)
	defer cancel()

	res, err := experiments.ChaosSoak(ctx,
		experiments.Options{Scale: *scale, Out: os.Stdout, Telemetry: *telemetry},
		experiments.ChaosOptions{Seed: *seed, Storms: *storms, Remote: *remote, Batch: *batch, ManagerLinks: *mgrlink})
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(1)
		}
		if err := res.Tracer.WriteJSONL(f); err != nil {
			fmt.Fprintln(os.Stderr, "chaos: writing trace:", err)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
		}
	}
	if *timeline {
		fmt.Println("\n--- event timeline ---")
		fmt.Print(res.Log.Timeline())
	}
	if *writeGolden != "" {
		if err := os.WriteFile(*writeGolden, []byte(res.Golden()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "chaos: writing golden:", err)
			os.Exit(1)
		}
	}
	if v := res.Summary.Invariants(); len(v) > 0 {
		os.Exit(2)
	}
	if *golden != "" {
		want, err := os.ReadFile(*golden)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(1)
		}
		if got := []byte(res.Golden()); !bytes.Equal(got, want) {
			fmt.Fprintf(os.Stderr, "chaos: run diverged from golden %s\n--- want ---\n%s--- got ---\n%s", *golden, want, got)
			os.Exit(3)
		}
	}
}

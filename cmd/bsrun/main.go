// Command bsrun runs an arbitrary behavioural-skeleton application
// described by a skeleton expression and an SLA contract, printing the
// resulting throughput curve and autonomic event timeline.
//
// Usage:
//
//	bsrun -expr "pipe(seq, farm(seq), seq)" -contract "throughput:0.3-0.7" \
//	      [-scale N] [-tasks N] [-cores N] [-work D] [-interval D]
//
// Examples:
//
//	bsrun -expr "farm(seq)" -contract "throughput>=0.6"
//	bsrun -expr "pipe(seq,farm(seq),seq)" -contract "throughput:0.3-0.7" -timeline
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/cmd/internal/flags"
	"repro/internal/contract"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/simclock"
	"repro/internal/skel"
	"repro/internal/trace"
)

func main() {
	expr := flag.String("expr", "farm(seq)", "skeleton expression")
	contractSpec := flag.String("contract", "throughput>=0.6", "SLA contract")
	scale := flag.Float64("scale", 200, "time scale")
	tasks := flag.Int("tasks", 150, "stream length")
	cores := flag.Int("cores", 12, "platform core count")
	work := flag.Duration("work", 5*time.Second, "per-task nominal service time (modelled)")
	interval := flag.Duration("interval", time.Second, "task inter-arrival period (modelled)")
	timeline := flag.Bool("timeline", false, "dump the autonomic event timeline")
	timeout := flags.RegisterTimeout()
	telemetry := flags.RegisterTelemetry()
	flag.Parse()

	ctx, cancel := flags.Context(*timeout)
	defer cancel()

	c, err := contract.Parse(*contractSpec)
	if err != nil {
		fail(err)
	}
	env := skel.Env{Clock: simclock.NewReal(), TimeScale: *scale}

	farmCfg := core.FarmAppConfig{
		Env: env, Platform: grid.NewSMP(*cores), Tasks: *tasks,
		TaskWork: *work, SourceInterval: *interval, Contract: c,
		Period: 2 * time.Second,
	}
	var tr contract.ThroughputRange
	if got, ok := c.(contract.ThroughputRange); ok {
		tr = got
	}
	pipeCfg := core.PipelineAppConfig{
		Env: env, Platform: grid.NewSMP(*cores), Tasks: *tasks,
		FilterWork: *work, ProducerInterval: *interval, Contract: tr,
		Period: 5 * time.Second,
	}

	app, err := core.BuildFromExpr(*expr, farmCfg, pipeCfg)
	if err != nil {
		fail(err)
	}
	if *telemetry != "" {
		srv, err := app.EnableTelemetry(*telemetry)
		if err != nil {
			fail(err)
		}
		fmt.Printf("telemetry: serving on %s\n", srv.Addr())
	}
	fmt.Printf("running %s under contract %q (scale %gx, %d tasks)\n",
		*expr, c.Describe(), *scale, *tasks)
	res, err := app.RunContext(ctx)
	if err != nil {
		fail(err)
	}
	var bands []float64
	if tr.Lo > 0 {
		bands = append(bands, tr.Lo)
		if tr.Bounded() {
			bands = append(bands, tr.Hi)
		}
	}
	fmt.Print(trace.RenderSeries(trace.PlotOptions{Width: 72, Height: 12, Bands: bands},
		res.Throughput))
	fmt.Printf("\ncompleted %d tasks in %v wall-clock; final throughput %.3f tasks/s, %d workers\n",
		res.Completed, res.Elapsed.Round(time.Millisecond), res.Final.Throughput, res.Final.ParDegree)
	if *timeline {
		fmt.Println("\n--- event timeline ---")
		fmt.Print(res.Log.Timeline())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bsrun:", err)
	os.Exit(1)
}

// Package flags holds the command-line conventions shared by every binary
// under cmd/: the -timeout flag and the derivation of the run context it
// bounds. All binaries shut down gracefully on SIGINT/SIGTERM — the
// application stops its intake and drains the tasks already accepted —
// and -timeout applies the same cancelation after a wall-clock limit.
package flags

import (
	"context"
	"flag"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// RegisterTimeout registers the shared -timeout flag on the default
// FlagSet and returns its destination. Call it before flag.Parse. The
// zero default means no wall-clock limit.
func RegisterTimeout() *time.Duration {
	return flag.Duration("timeout", 0,
		"wall-clock run limit triggering graceful shutdown; 0 means none")
}

// RegisterTelemetry registers the shared -telemetry flag and returns its
// destination. The empty default disables the introspection endpoint: no
// listener is bound and no telemetry goroutine runs.
func RegisterTelemetry() *string {
	return flag.String("telemetry", "",
		"serve /healthz, /metrics, /trace, /managers and pprof on this address (e.g. :9090); empty disables")
}

// Context derives the binary's run context: canceled on SIGINT/SIGTERM
// and, when timeout > 0, once the wall-clock limit expires. The caller
// must invoke the returned cancel on exit to release the signal handler.
func Context(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	return ctx, func() {
		cancel()
		stop()
	}
}

// Package flags holds the command-line conventions shared by every binary
// under cmd/: the -timeout flag and the derivation of the run context it
// bounds. All binaries shut down gracefully on SIGINT/SIGTERM — the
// application stops its intake and drains the tasks already accepted —
// and -timeout applies the same cancelation after a wall-clock limit.
package flags

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"
)

// RegisterTimeout registers the shared -timeout flag on the default
// FlagSet and returns its destination. Call it before flag.Parse. The
// zero default means no wall-clock limit.
func RegisterTimeout() *time.Duration {
	return flag.Duration("timeout", 0,
		"wall-clock run limit triggering graceful shutdown; 0 means none")
}

// RegisterTelemetry registers the shared -telemetry flag and returns its
// destination. The empty default disables the introspection endpoint: no
// listener is bound and no telemetry goroutine runs.
func RegisterTelemetry() *string {
	return flag.String("telemetry", "",
		"serve /healthz, /metrics, /trace, /managers and pprof on this address (e.g. :9090); empty disables")
}

// ParseLabels parses the comma-separated k=v list used by the -labels
// flag ("zone=edge,gpu=a100") into a map. The empty string parses to nil;
// a missing '=' or empty key is an error.
func ParseLabels(s string) (map[string]string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	out := map[string]string{}
	for _, pair := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || strings.TrimSpace(k) == "" {
			return nil, fmt.Errorf("flags: bad label %q (want k=v)", pair)
		}
		out[strings.TrimSpace(k)] = strings.TrimSpace(v)
	}
	return out, nil
}

// Context derives the binary's run context: canceled on SIGINT/SIGTERM
// and, when timeout > 0, once the wall-clock limit expires. The caller
// must invoke the returned cancel on exit to release the signal handler.
func Context(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	return ctx, func() {
		cancel()
		stop()
	}
}

package flags

import (
	"reflect"
	"testing"
)

func TestParseLabels(t *testing.T) {
	cases := []struct {
		in   string
		want map[string]string
		err  bool
	}{
		{"", nil, false},
		{"  ", nil, false},
		{"zone=edge", map[string]string{"zone": "edge"}, false},
		{"zone=edge,gpu=a100", map[string]string{"zone": "edge", "gpu": "a100"}, false},
		{" zone = edge , gpu = a100 ", map[string]string{"zone": "edge", "gpu": "a100"}, false},
		{"flag=", map[string]string{"flag": ""}, false},
		{"noequals", nil, true},
		{"=value", nil, true},
		{"zone=edge,,", nil, true},
	}
	for _, c := range cases {
		got, err := ParseLabels(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseLabels(%q) err = %v, want err %v", c.in, err, c.err)
			continue
		}
		if err == nil && !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseLabels(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

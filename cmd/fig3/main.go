// Command fig3 regenerates the paper's Fig. 3: a single autonomic manager
// ensuring a 0.6 task/s throughput contract in a task-farm behavioural
// skeleton by adding processing resources until the contract is satisfied.
//
// Usage:
//
//	fig3 [-scale N] [-tasks N] [-timeline]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/cmd/internal/flags"
	"repro/internal/experiments"
	"repro/internal/trace"
)

func main() {
	scale := flag.Float64("scale", 200, "time scale: how many modelled seconds per wall-clock second")
	tasks := flag.Int("tasks", 200, "stream length")
	timeline := flag.Bool("timeline", false, "also dump the full autonomic event timeline")
	csvPath := flag.String("csv", "", "also write the sampled series to this CSV file")
	timeout := flags.RegisterTimeout()
	telemetry := flags.RegisterTelemetry()
	flag.Parse()

	ctx, cancel := flags.Context(*timeout)
	defer cancel()

	res, err := experiments.Fig3(ctx, experiments.Options{
		Scale: *scale, Tasks: *tasks, Out: os.Stdout, Telemetry: *telemetry,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fig3:", err)
		os.Exit(1)
	}
	if *timeline {
		fmt.Println("\n--- event timeline ---")
		fmt.Print(res.Log.Timeline())
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig3:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.WriteSeriesCSV(f, *scale, res.Throughput, res.Workers, res.Cores); err != nil {
			fmt.Fprintln(os.Stderr, "fig3:", err)
			os.Exit(1)
		}
		fmt.Printf("series written to %s\n", *csvPath)
	}
}

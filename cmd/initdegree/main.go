// Command initdegree runs the EXT-INIT ablation for the §3 policy
// "initial parallelism degree setup": starting the Fig. 3 farm cold (one
// worker, reactive ramp-up) versus starting it at the degree the task-farm
// performance model derives from the 0.6 tasks/s contract.
//
// Usage:
//
//	initdegree [-scale N] [-tasks N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/cmd/internal/flags"
	"repro/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 200, "time scale: how many modelled seconds per wall-clock second")
	tasks := flag.Int("tasks", 150, "stream length")
	timeout := flags.RegisterTimeout()
	telemetry := flags.RegisterTelemetry()
	flag.Parse()

	ctx, cancel := flags.Context(*timeout)
	defer cancel()

	if _, err := experiments.InitialDegree(ctx, experiments.Options{
		Scale: *scale, Tasks: *tasks, Out: os.Stdout, Telemetry: *telemetry,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "initdegree:", err)
		os.Exit(1)
	}
}

// Command multiconcern regenerates the §3.2 multi-concern scenario: a farm
// that must grow into untrusted_ip_domain_A while both a performance and a
// security manager are active, compared across the two-phase protocol, the
// naive reactive scheme and an unmanaged baseline. The headline numbers
// are the plaintext leaks (two-phase must report zero) and the throughput
// cost of securing the bindings.
//
// Usage:
//
//	multiconcern [-scale N] [-tasks N] [-timeline mode]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/cmd/internal/flags"
	"repro/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 200, "time scale: how many modelled seconds per wall-clock second")
	tasks := flag.Int("tasks", 200, "stream length")
	timeline := flag.String("timeline", "", "dump the event timeline of one scheme (two-phase, reactive, unmanaged)")
	timeout := flags.RegisterTimeout()
	telemetry := flags.RegisterTelemetry()
	flag.Parse()

	ctx, cancel := flags.Context(*timeout)
	defer cancel()

	res, err := experiments.MultiConcern(ctx, experiments.Options{
		Scale: *scale, Tasks: *tasks, Out: os.Stdout, Telemetry: *telemetry,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "multiconcern:", err)
		os.Exit(1)
	}
	if *timeline != "" {
		log, ok := res.Logs[*timeline]
		if !ok {
			fmt.Fprintf(os.Stderr, "multiconcern: no scheme %q\n", *timeline)
			os.Exit(1)
		}
		fmt.Printf("\n--- event timeline (%s) ---\n", *timeline)
		fmt.Print(log.Timeline())
	}
}

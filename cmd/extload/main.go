// Command extload regenerates the §4.2 external-load narrative: external
// load appears on the nodes running farm workers mid-run; overloaded
// workers deliver fewer results and the autonomic manager restores the
// contract by adding workers.
//
// Usage:
//
//	extload [-scale N] [-tasks N] [-timeline]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/cmd/internal/flags"
	"repro/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 200, "time scale: how many modelled seconds per wall-clock second")
	tasks := flag.Int("tasks", 240, "stream length")
	timeline := flag.Bool("timeline", false, "also dump the full autonomic event timeline")
	timeout := flags.RegisterTimeout()
	telemetry := flags.RegisterTelemetry()
	flag.Parse()

	ctx, cancel := flags.Context(*timeout)
	defer cancel()

	res, err := experiments.ExtLoad(ctx, experiments.Options{
		Scale: *scale, Tasks: *tasks, Out: os.Stdout, Telemetry: *telemetry,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "extload:", err)
		os.Exit(1)
	}
	if *timeline {
		fmt.Println("\n--- event timeline ---")
		fmt.Print(res.Log.Timeline())
	}
}

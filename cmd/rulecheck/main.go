// Command rulecheck validates a rule file written in this repository's
// DRL dialect (the JBoss-like syntax of the paper's Fig. 5), pretty-prints
// it back, and optionally dry-runs one control cycle against supplied
// sensor readings, showing which rules would fire and which operations
// they would invoke.
//
// Usage:
//
//	rulecheck [file]                     # read from file or stdin
//	rulecheck -builtin                   # check the embedded Fig. 5 file
//	rulecheck -builtin -arrival 0.5 -departure 0.2 -workers 3 -variance 0 \
//	          -lo 0.3 -hi 0.7           # dry-run a cycle
//
// Exit status is non-zero on parse errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro/cmd/internal/flags"
	"repro/internal/rules"
)

func main() {
	builtin := flag.Bool("builtin", false, "check the embedded Fig. 5 farm rule file")
	dryRun := flag.Bool("fire", false, "dry-run one cycle against the sensor flags")
	arrival := flag.Float64("arrival", math.NaN(), "ArrivalRateBean value (implies -fire)")
	departure := flag.Float64("departure", 0, "DepartureRateBean value")
	workers := flag.Float64("workers", 1, "NumWorkerBean value")
	variance := flag.Float64("variance", 0, "QueueVarianceBean value")
	lo := flag.Float64("lo", 0.3, "FARM_LOW_PERF_LEVEL")
	hi := flag.Float64("hi", 0.7, "FARM_HIGH_PERF_LEVEL")
	minW := flag.Int("min", 1, "FARM_MIN_NUM_WORKERS")
	maxW := flag.Int("max", 16, "FARM_MAX_NUM_WORKERS")
	unb := flag.Float64("unbalance", 4, "FARM_MAX_UNBALANCE")
	timeout := flags.RegisterTimeout()
	flag.Parse()

	ctx, cancel := flags.Context(*timeout)
	defer cancel()
	go func() {
		// Watchdog: reading stdin can block indefinitely; honor -timeout
		// and SIGINT/SIGTERM like every other cmd binary.
		<-ctx.Done()
		fail(ctx.Err())
	}()

	src, name, err := readSource(*builtin)
	if err != nil {
		fail(err)
	}
	rs, err := rules.Parse(src)
	if err != nil {
		fail(err)
	}
	fmt.Printf("// %s: %d rules OK\n\n%s\n", name, len(rs.Rules), rs)

	if !*dryRun && math.IsNaN(*arrival) {
		return
	}
	arr := *arrival
	if math.IsNaN(arr) {
		arr = 0
	}
	engine := rules.New(rs, rules.FarmConstants(*lo, *hi, *minW, *maxW, *unb))
	memory := []rules.Bean{
		rules.NewBean(rules.BeanArrivalRate, rules.Num(arr)),
		rules.NewBean(rules.BeanDepartureRate, rules.Num(*departure)),
		rules.NewBean(rules.BeanNumWorker, rules.Num(*workers)),
		rules.NewBean(rules.BeanQueueVariance, rules.Num(*variance)),
	}
	fmt.Printf("\n// dry run: arrival=%.3f departure=%.3f workers=%.0f variance=%.2f\n",
		arr, *departure, *workers, *variance)
	fired, err := engine.Cycle(memory, rules.EffectorFunc(
		func(op string, act *rules.Activation) error {
			fmt.Printf("//   %s fires %s", act.Rule.Name, op)
			if d := act.LastData(); d != "" {
				fmt.Printf(" (data %s)", d)
			}
			fmt.Println()
			return nil
		}))
	if err != nil {
		fail(err)
	}
	if len(fired) == 0 {
		fmt.Println("//   no rule fireable: steady state")
	}
}

func readSource(builtin bool) (src, name string, err error) {
	if builtin {
		return rules.FarmRuleSource, "builtin Fig. 5 rule file", nil
	}
	if flag.NArg() >= 1 {
		b, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			return "", "", err
		}
		return string(b), flag.Arg(0), nil
	}
	b, err := io.ReadAll(os.Stdin)
	if err != nil {
		return "", "", err
	}
	return string(b), "stdin", nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rulecheck:", err)
	os.Exit(1)
}

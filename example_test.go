package repro_test

import (
	"fmt"
	"time"

	"repro"
)

// ExampleNewFarmApp shows the minimal behavioural-skeleton program: a task
// farm with an autonomic manager growing it to meet a throughput SLA.
func ExampleNewFarmApp() {
	app, err := repro.NewFarmApp(repro.FarmAppConfig{
		Env:            repro.NewEnv(1000), // modelled time 1000x wall clock
		Platform:       repro.NewSMP(8),
		Tasks:          40,
		TaskWork:       2 * time.Second,
		SourceInterval: time.Second,
		Contract:       repro.MinThroughput(0.5),
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := app.Run()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("completed:", res.Completed)
	// Output: completed: 40
}

// ExampleParseContract shows the textual SLA syntax.
func ExampleParseContract() {
	c, _ := repro.ParseContract("secure+throughput:0.3-0.7")
	fmt.Println(c.Describe())
	fmt.Println(c.Check(repro.Snapshot{Throughput: 0.5}))
	fmt.Println(c.Check(repro.Snapshot{Throughput: 0.5, UnsecuredSends: 1}))
	// Output:
	// secure+throughput:0.3-0.7
	// satisfied
	// violated
}

// ExampleParseExpr shows the skeleton-expression language.
func ExampleParseExpr() {
	spec, _ := repro.ParseExpr("pipe(pipe(seq, farm(seq)), seq)")
	fmt.Println(spec.Normalize())
	fmt.Println("stages:", spec.Stages())
	// Output:
	// pipe(seq,farm(seq),seq)
	// stages: 3
}

package repro

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/contract"
	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/rules"
	"repro/internal/security"
	"repro/internal/simclock"
	"repro/internal/skel"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Each evaluation artefact of the paper has a bench that regenerates it
// (go test -bench=. -benchmem). The harness benches report the figure's
// headline quantities as custom metrics; absolute wall-times depend on the
// time scale and are not comparable with the paper's testbed, but the
// shapes (who converges, what leaks) are asserted by the test suite.

const benchScale = 500

// BenchmarkFig3SingleManagerFarm regenerates Fig. 3: a single AM driving a
// task farm to a 0.6 task/s contract.
func BenchmarkFig3SingleManagerFarm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(context.Background(), experiments.Options{Scale: benchScale, Tasks: 120})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Throughput.Max(), "peak-tasks/s")
		b.ReportMetric(res.Workers.Max(), "peak-workers")
		b.ReportMetric(float64(res.Log.Count("AM_F", trace.AddWorker)), "addWorker-events")
	}
}

// BenchmarkFig4HierarchicalPipeline regenerates Fig. 4: the four-manager
// hierarchy on the three-stage pipeline under the 0.3-0.7 contract.
func BenchmarkFig4HierarchicalPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(context.Background(), experiments.Options{Scale: benchScale, Tasks: 120})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Throughput.Max(), "peak-tasks/s")
		b.ReportMetric(float64(res.Log.Count("AM_A", trace.IncRate)), "incRate-events")
		b.ReportMetric(float64(res.Log.Count("AM_F", trace.AddWorker)), "addWorker-events")
		b.ReportMetric(res.Cores.Max(), "peak-cores")
	}
}

// BenchmarkExtLoadAdaptation regenerates the §4.2 external-load narrative.
func BenchmarkExtLoadAdaptation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ExtLoad(context.Background(), experiments.Options{Scale: benchScale, Tasks: 150})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.AddsAfterSpike), "adds-after-spike")
		b.ReportMetric(float64(res.WorkersAfter-res.WorkersBefore), "pool-growth")
	}
}

// BenchmarkMultiConcernTwoPhase regenerates the §3.2 comparison: leaks and
// throughput under two-phase, reactive and unmanaged coordination.
func BenchmarkMultiConcernTwoPhase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.MultiConcern(context.Background(), experiments.Options{Scale: benchScale, Tasks: 120})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(float64(row.Leaks), row.Mode.String()+"-leaks")
		}
	}
}

// BenchmarkFaultRecovery regenerates the EXT-FT experiment: crash
// injection, stranded-task recovery and worker replacement under contract.
func BenchmarkFaultRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.FaultTolerance(context.Background(), experiments.Options{Scale: benchScale, Tasks: 120})
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed != 120 {
			b.Fatalf("lost tasks: %d/120", res.Completed)
		}
		b.ReportMetric(float64(res.Injected), "crashes")
		b.ReportMetric(float64(res.Recovered), "recovered")
	}
}

// BenchmarkFarmizeStage regenerates the EXT-FARMIZE comparison (§4.2
// outlook: pipeline stage transformed into a farm).
func BenchmarkFarmizeStage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Farmize(context.Background(), experiments.Options{Scale: benchScale, Tasks: 100})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].SteadyMean, "seq-steady-tp")
		b.ReportMetric(res.Rows[1].SteadyMean, "farmized-steady-tp")
	}
}

// BenchmarkMigrationVsAdd regenerates the EXT-MIG ablation (§3 migration
// policy vs. pool growth under external load).
func BenchmarkMigrationVsAdd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Migration(context.Background(), experiments.Options{Scale: benchScale, Tasks: 150})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].PeakCores, "add-peak-cores")
		b.ReportMetric(res.Rows[1].PeakCores, "migrate-peak-cores")
		b.ReportMetric(float64(res.Rows[1].Migrations), "migrations")
	}
}

// BenchmarkInitialDegree regenerates the EXT-INIT ablation (model-based
// initial parallelism degree vs. reactive ramp-up).
func BenchmarkInitialDegree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.InitialDegree(context.Background(), experiments.Options{Scale: benchScale, Tasks: 100})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].TimeToContract.Seconds(), "cold-ttc-s")
		b.ReportMetric(res.Rows[1].TimeToContract.Seconds(), "model-ttc-s")
	}
}

// BenchmarkShedOverprovision regenerates the EXT-SHED experiment
// (CheckRateHigh shedding an overprovisioned farm).
func BenchmarkShedOverprovision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Shed(context.Background(), experiments.Options{Scale: benchScale, Tasks: 120})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Removals), "remWorker-events")
		b.ReportMetric(float64(res.FinalWorkers), "final-workers")
	}
}

// BenchmarkContractSplit regenerates the P_spl demonstration and measures
// the splitting heuristics themselves.
func BenchmarkContractSplit(b *testing.B) {
	c := contract.Conjunction{contract.SecureComms{}, contract.ThroughputRange{Lo: 0.3, Hi: 0.7}}
	for i := 0; i < b.N; i++ {
		if _, err := contract.SplitPipeline(c, 5, []float64{1, 2, 3, 2, 1}); err != nil {
			b.Fatal(err)
		}
		if _, err := contract.SplitFarm(c, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation micro-benches for the design choices DESIGN.md calls out ---

// BenchmarkRuleEngineCycle measures one MAPE plan phase: a full Fig. 5
// rule-set evaluation against a four-bean working memory.
func BenchmarkRuleEngineCycle(b *testing.B) {
	engine := rules.NewFarmEngine(rules.FarmConstants(0.3, 0.7, 1, 16, 4))
	mem := []rules.Bean{
		rules.NewBean(rules.BeanArrivalRate, rules.Num(0.5)),
		rules.NewBean(rules.BeanDepartureRate, rules.Num(0.2)),
		rules.NewBean(rules.BeanNumWorker, rules.Num(4)),
		rules.NewBean(rules.BeanQueueVariance, rules.Num(1)),
	}
	eff := rules.EffectorFunc(func(string, *rules.Activation) error { return nil })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Cycle(mem, eff); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuleParse measures parsing the Fig. 5 rule file.
func BenchmarkRuleParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := rules.Parse(rules.FarmRuleSource); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSecureVsPlainCodec quantifies the SSL-vs-plain cost asymmetry
// that drives the §3.2 conflict (and the paper's earlier "cost of
// security" studies): AES-GCM round trip vs. plain copy on a 4 KiB
// payload.
func BenchmarkSecureVsPlainCodec(b *testing.B) {
	payload := make([]byte, 4096)
	b.Run("plain", func(b *testing.B) {
		var c security.Plain
		b.SetBytes(int64(len(payload)))
		for i := 0; i < b.N; i++ {
			wire, _ := c.Encode(payload)
			if _, err := c.Decode(wire); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("aes-gcm", func(b *testing.B) {
		c := security.MustAESGCM(security.NewRandomKey(), nil, 0)
		b.SetBytes(int64(len(payload)))
		for i := 0; i < b.N; i++ {
			wire, _ := c.Encode(payload)
			if _, err := c.Decode(wire); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFarmDispatch measures the skeleton runtime itself: stream
// throughput of a farm with zero-work tasks (pure plumbing overhead).
func BenchmarkFarmDispatch(b *testing.B) {
	env := skel.Env{TimeScale: 1}
	f, err := skel.NewFarm(skel.FarmConfig{
		Name: "bench", Env: env, RM: grid.NewSMP(8).RM, InitialWorkers: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	in := make(chan *skel.Task, 1024)
	out := make(chan *skel.Task, 1024)
	go f.Run(context.Background(), in, out)
	drained := make(chan struct{})
	go func() {
		for range out {
		}
		close(drained)
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in <- &skel.Task{ID: uint64(i)}
	}
	b.StopTimer()
	close(in)
	<-drained
}

// BenchmarkRateMeter measures the sensor hot path. Mark must be O(1) and
// allocation-free in steady state (run with -benchmem): every dispatched
// and every completed task crosses it, so it bounds farm throughput.
func BenchmarkRateMeter(b *testing.B) {
	b.Run("mark", func(b *testing.B) {
		m := metrics.NewRateMeter(simclock.NewReal(), time.Second)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Mark()
		}
	})
	b.Run("mark+rate", func(b *testing.B) {
		m := metrics.NewRateMeter(simclock.NewReal(), time.Second)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Mark()
			if i%16 == 0 {
				_ = m.Rate()
			}
		}
	})
}

// benchFarm starts a farm with nWorkers zero-work workers, a drained output
// and (optionally) AES-GCM codecs on every binding. It returns the input
// channel and a cleanup that ends the stream and waits for the drain.
func benchFarm(b *testing.B, nWorkers int, secure bool, ins *skel.FarmInstruments) (*skel.Farm, chan *skel.Task, func()) {
	b.Helper()
	f, err := skel.NewFarm(skel.FarmConfig{
		Name: "bench", Env: skel.Env{TimeScale: 1}, RM: grid.NewSMP(2 * nWorkers).RM,
		InitialWorkers: nWorkers, Instruments: ins,
	})
	if err != nil {
		b.Fatal(err)
	}
	in := make(chan *skel.Task, 1024)
	out := make(chan *skel.Task, 1024)
	go f.Run(context.Background(), in, out)
	drained := make(chan struct{})
	go func() {
		for range out {
		}
		close(drained)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for len(f.Workers()) < nWorkers {
		if time.Now().After(deadline) {
			b.Fatal("workers never came up")
		}
		time.Sleep(time.Millisecond)
	}
	if secure {
		key := security.NewRandomKey()
		for _, w := range f.Workers() {
			if err := f.SetCodec(w.ID, security.MustAESGCM(key, nil, 0)); err != nil {
				b.Fatal(err)
			}
		}
	}
	return f, in, func() {
		close(in)
		<-drained
	}
}

// BenchmarkFarmDispatchCodec measures dispatcher throughput with 4 KiB
// payloads through plain vs AES-GCM binding codecs — the hot path whose
// encode cost must not serialize sensors and actuators on Farm.mu.
func BenchmarkFarmDispatchCodec(b *testing.B) {
	for _, mode := range []struct {
		name   string
		secure bool
		ins    bool
	}{{"plain", false, false}, {"aes-gcm", true, false}, {"aes-gcm+telemetry", true, true}} {
		b.Run(mode.name, func(b *testing.B) {
			var ins *skel.FarmInstruments
			if mode.ins {
				ins = &skel.FarmInstruments{
					Dispatch: metrics.NewLatencyHistogram(),
					Seal:     metrics.NewLatencyHistogram(),
				}
			}
			_, in, cleanup := benchFarm(b, 4, mode.secure, ins)
			payload := make([]byte, 4096)
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				in <- &skel.Task{ID: uint64(i + 1), Payload: payload}
			}
			b.StopTimer()
			cleanup()
		})
	}
}

// BenchmarkFarmStatsUnderLoad measures Stats() latency while the dispatcher
// is pumping AES-GCM-encoded 4 KiB tasks: the MAPE monitor phase reads this
// sensor mid-stream, so it must not queue behind payload encryption.
func BenchmarkFarmStatsUnderLoad(b *testing.B) {
	f, in, cleanup := benchFarm(b, 4, true, nil)
	stop := make(chan struct{})
	fed := make(chan struct{})
	go func() {
		defer close(fed)
		payload := make([]byte, 4096)
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			case in <- &skel.Task{ID: i, Payload: payload}:
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Stats()
	}
	b.StopTimer()
	close(stop)
	<-fed
	cleanup()
}

// BenchmarkHistogramObserve measures the telemetry histogram hot path.
// Every MAPE phase, dispatch and seal crosses Observe, so it must be
// allocation-free (run with -benchmem to confirm 0 allocs/op).
func BenchmarkHistogramObserve(b *testing.B) {
	h := metrics.NewLatencyHistogram()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
	b.StopTimer()
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(5e-4) }); allocs != 0 {
		b.Fatalf("Observe allocates %v per op", allocs)
	}
}

// BenchmarkEventLog measures trace recording (managers log on the control
// path, so this must stay cheap).
func BenchmarkEventLog(b *testing.B) {
	log := trace.NewLog()
	now := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		log.Record(now, "AM_F", trace.ContrLow, "tp=0.1")
	}
	io.Discard.Write(nil)
}

// --- dispatch hot-path saturation (the PR7 throughput work) ---

// satHello advertises one workerd node for the TCP saturation benches.
func satHello(name string) wire.Hello {
	return wire.Hello{Name: name, Domain: "edge.remote", Trusted: true, Cores: 8, Speed: 1.0}
}

// runFarmSaturation drives a farm flat out with 256 B payloads and reports
// sustained end-to-end tasks/s plus p50/p99 completion latency (sampled
// every 1024th task; the sampled payload is 8 bytes longer and carries its
// send timestamp). The farm is saturated by construction: the producer
// never blocks on anything but the farm itself, and the clock stops only
// after the last result has been collected.
func runFarmSaturation(b *testing.B, tcp, secure bool, batch int, traceRate uint64) {
	cfg := skel.FarmConfig{
		Name:           "sat",
		Env:            skel.Env{TimeScale: 1},
		InitialWorkers: 4,
		DispatchBatch:  batch,
	}
	if traceRate > 0 {
		cfg.Tracer = telemetry.NewTaskTracer(1, traceRate, 0)
	}
	if tcp {
		psk := make([]byte, 32)
		var nodes []*grid.Node
		for i := 0; i < 2; i++ {
			srv, err := wire.NewServer(wire.ServerConfig{PSK: psk, Hello: satHello(fmt.Sprintf("sat%d", i))})
			if err != nil {
				b.Fatal(err)
			}
			if err := srv.Listen("127.0.0.1:0"); err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			nodes = append(nodes, wire.NodeFromHello(srv.Addr(), satHello(fmt.Sprintf("sat%d", i))))
		}
		factory, err := wire.NewFactory(psk, 5*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		cfg.RM = grid.NewResourceManager(nodes...)
		cfg.Executors = factory.Executor
	} else {
		cfg.RM = grid.NewSMP(8).RM
	}
	f, err := skel.NewFarm(cfg)
	if err != nil {
		b.Fatal(err)
	}
	in := make(chan *skel.Task, 4096)
	out := make(chan *skel.Task, 4096)
	go f.Run(context.Background(), in, out)
	hist := metrics.NewLatencyHistogram()
	drained := make(chan struct{})
	go func() {
		for t := range out {
			if len(t.Payload) == 264 {
				sent := int64(binary.BigEndian.Uint64(t.Payload))
				hist.Observe(time.Since(time.Unix(0, sent)).Seconds())
			}
		}
		close(drained)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for len(f.Workers()) < cfg.InitialWorkers {
		if time.Now().After(deadline) {
			b.Fatal("workers never came up")
		}
		time.Sleep(time.Millisecond)
	}
	if secure {
		key := security.NewRandomKey()
		for _, w := range f.Workers() {
			if err := f.SetCodec(w.ID, security.MustAESGCM(key, nil, 0)); err != nil {
				b.Fatal(err)
			}
		}
	}
	base := make([]byte, 256)
	b.SetBytes(int64(len(base)))
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		t := &skel.Task{ID: uint64(i + 1), Payload: base}
		if i&1023 == 0 {
			p := make([]byte, 264)
			binary.BigEndian.PutUint64(p, uint64(time.Now().UnixNano()))
			t.Payload = p
		}
		in <- t
	}
	close(in)
	<-drained
	elapsed := time.Since(start)
	b.StopTimer()
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "tasks/s")
	snap := hist.Snapshot()
	b.ReportMetric(snap.Quantile(0.5)*1e6, "p50-µs")
	b.ReportMetric(snap.Quantile(0.99)*1e6, "p99-µs")
}

// BenchmarkFarmSaturation is the end-to-end saturation grid of the batched
// dispatch hot path: loopback and framed-TCP transports, plain and AES-GCM
// bindings, batching off (the PR6 baseline shape) and on. tasks/s is
// sustained completion throughput; p50/p99 are end-to-end latencies at
// saturation, where queueing — the price batching pays for throughput — is
// part of the number.
func BenchmarkFarmSaturation(b *testing.B) {
	for _, tr := range []struct {
		name string
		tcp  bool
	}{{"loopback", false}, {"tcp", true}} {
		for _, sec := range []struct {
			name   string
			secure bool
		}{{"plain", false}, {"aes-gcm", true}} {
			for _, batch := range []int{0, 64} {
				b.Run(fmt.Sprintf("%s/%s/batch=%d", tr.name, sec.name, batch), func(b *testing.B) {
					runFarmSaturation(b, tr.tcp, sec.secure, batch, 0)
				})
			}
		}
	}
}

// BenchmarkFarmSaturationTraced re-runs the loopback AES-GCM saturation
// corner with task tracing attached at two sampling rates: 1/1024 (the
// production default, must stay within 2% of the untraced figure) and 1/16
// (the heavy-introspection setting, where span recording is measurable by
// design). The untraced baseline lives in BenchmarkFarmSaturation.
func BenchmarkFarmSaturationTraced(b *testing.B) {
	for _, rate := range []uint64{1024, 16} {
		for _, batch := range []int{0, 64} {
			b.Run(fmt.Sprintf("loopback/aes-gcm/batch=%d/sample=%d", batch, rate), func(b *testing.B) {
				runFarmSaturation(b, false, true, batch, rate)
			})
		}
	}
}

// BenchmarkFarmDispatchSteadyState measures allocations on the loopback
// AES-GCM dispatch path in steady state: tasks are pre-built outside the
// timed region and the envelope/buffer pools are warmed first, so what
// remains is the farm's own per-task cost. With batching on, the one
// decode-per-batch amortizes below one allocation per task — the reported
// figure must be 0 allocs/op (CI greps for it).
func BenchmarkFarmDispatchSteadyState(b *testing.B) {
	for _, batch := range []int{0, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			runSteadyState(b, batch, nil)
		})
	}
}

// BenchmarkFarmDispatchSteadyStateTraced is the same steady-state workload
// with task tracing attached at 1/1024 sampling: the unsampled hot path is
// one branch plus one hash, and the sampled 0.1% amortize through the span
// pool, so the reported figure must stay 0 allocs/op (CI greps for it).
func BenchmarkFarmDispatchSteadyStateTraced(b *testing.B) {
	for _, batch := range []int{0, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			runSteadyState(b, batch, telemetry.NewTaskTracer(1, 1024, 0))
		})
	}
}

func runSteadyState(b *testing.B, batch int, tracer *telemetry.TaskTracer) {
	f, err := skel.NewFarm(skel.FarmConfig{
		Name: "steady", Env: skel.Env{TimeScale: 1}, RM: grid.NewSMP(8).RM,
		InitialWorkers: 4, DispatchBatch: batch, Tracer: tracer,
	})
	if err != nil {
		b.Fatal(err)
	}
	in := make(chan *skel.Task, 4096)
	out := make(chan *skel.Task, 4096)
	go f.Run(context.Background(), in, out)
	var done atomic.Uint64
	drained := make(chan struct{})
	go func() {
		for range out {
			done.Add(1)
		}
		close(drained)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for len(f.Workers()) < 4 {
		if time.Now().After(deadline) {
			b.Fatal("workers never came up")
		}
		time.Sleep(time.Millisecond)
	}
	key := security.NewRandomKey()
	for _, w := range f.Workers() {
		if err := f.SetCodec(w.ID, security.MustAESGCM(key, nil, 0)); err != nil {
			b.Fatal(err)
		}
	}
	payload := make([]byte, 256)
	// Warm the pools: envelopes, wire buffers, queue rings — and with a
	// tracer attached, the span pool — all reach steady-state capacity here.
	const warm = 4096
	warmTasks := make([]skel.Task, warm)
	for i := range warmTasks {
		warmTasks[i] = skel.Task{ID: uint64(i + 1), Payload: payload}
		in <- &warmTasks[i]
	}
	for done.Load() < warm {
		time.Sleep(time.Millisecond)
	}
	tasks := make([]skel.Task, b.N)
	for i := range tasks {
		tasks[i] = skel.Task{ID: uint64(warm + i + 1), Payload: payload}
	}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := range tasks {
		in <- &tasks[i]
	}
	close(in)
	<-drained
	b.StopTimer()
}

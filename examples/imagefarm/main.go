// Imagefarm reproduces the workload behind the paper's Fig. 3: a medical
// image processing application implemented as a task-farm behavioural
// skeleton. Synthetic "images" (byte matrices) stream through the farm;
// each worker applies a real filter (contrast inversion + a 1D blur pass)
// on top of the modelled per-image service time, and the autonomic manager
// recruits processing resources until the user contract — 0.6 images per
// second — is satisfied.
//
// Run with:
//
//	go run ./examples/imagefarm [-contract 0.6] [-images 150] [-scale 100]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/skel"
	"repro/internal/trace"
)

// filterImage is the functional code of the farm workers: invert the
// image, then apply a small box blur. The autonomic layer never sees it —
// the separation of concerns the paper argues for.
func filterImage(t *repro.Task) *repro.Task {
	px := t.Payload
	for i := range px {
		px[i] = 255 - px[i]
	}
	for i := 1; i+1 < len(px); i++ {
		px[i] = uint8((int(px[i-1]) + int(px[i]) + int(px[i+1])) / 3)
	}
	return t
}

func main() {
	minRate := flag.Float64("contract", 0.6, "images per second the user demands")
	images := flag.Int("images", 150, "number of images in the stream")
	scale := flag.Float64("scale", 100, "time scale")
	flag.Parse()

	app, err := repro.NewFarmApp(repro.FarmAppConfig{
		Name:           "imagefarm",
		Env:            repro.NewEnv(*scale),
		Platform:       repro.NewSMP(12),
		Tasks:          *images,
		TaskWork:       6400 * time.Millisecond, // one image ~6.4s on one core
		SourceInterval: 1250 * time.Millisecond, // acquisition: 0.8 img/s
		Payload:        4096,                    // 64x64 8-bit image
		Fn:             skel.Fn(filterImage),
		InitialWorkers: 1,
		Contract:       repro.MinThroughput(*minRate),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("processing %d synthetic images under contract >= %.2f img/s...\n",
		*images, *minRate)
	res, err := app.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(trace.RenderSeries(trace.PlotOptions{
		Width: 72, Height: 12, Bands: []float64{*minRate},
	}, res.Throughput))
	fmt.Printf("\ncompleted %d images; peak throughput %.2f img/s; workers grew to %.0f\n",
		res.Completed, res.Throughput.Max(), res.Workers.Max())
	fmt.Printf("autonomic reconfigurations: %d addWorker, %d rebalance\n",
		res.Log.Count("AM_F", trace.AddWorker), res.Log.Count("AM_F", trace.Rebalance))
}

// Multiconcern demonstrates §3.2 of the paper: two autonomic manager
// hierarchies — performance and security — active on the same farm, under
// a general manager (GM) that coordinates them with a two-phase protocol.
//
// The platform has a trusted domain with only 2 free cores and the
// untrusted_ip_domain_A with 8 more. The performance contract forces the
// farm to grow past the trusted capacity, so workers are recruited on
// untrusted nodes. The scenario is run twice:
//
//   - with the two-phase protocol (intent -> secure -> commit): every
//     binding to an untrusted node is AES-GCM encrypted *before* the first
//     task can reach it — zero plaintext leaks, by construction;
//   - with the naive reactive scheme the paper warns about: the
//     performance manager commits alone and the security manager fixes
//     the binding on its next control cycle — the messages in between are
//     exposed.
//
// Run with:
//
//	go run ./examples/multiconcern [-tasks 200] [-scale 100]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/trace"
)

func run(mode repro.CoordinationMode, tasks int, scale float64) {
	secure, err := repro.ParseContract("secure+throughput>=1.2")
	if err != nil {
		log.Fatal(err)
	}
	app, err := repro.NewFarmApp(repro.FarmAppConfig{
		Name:           "multiconcern-" + mode.String(),
		Env:            repro.NewEnv(scale),
		Platform:       repro.NewTwoDomainGrid(2, 8),
		Tasks:          tasks,
		TaskWork:       4 * time.Second,
		SourceInterval: 600 * time.Millisecond,
		Payload:        512,
		InitialWorkers: 2,
		Contract:       secure,
		Limits:         repro.FarmLimits{MaxWorkers: 10},
		WithSecurity:   true,
		Coordination:   mode,
		Handshake:      500 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := app.Run()
	if err != nil {
		log.Fatal(err)
	}
	untrusted := 0
	for _, w := range app.FarmABC.Workers() {
		if !w.Node.Domain.Trusted {
			untrusted++
		}
	}
	fmt.Printf("%-10s completed=%d untrusted-workers=%d secured-msgs=%d plaintext-leaks=%d\n",
		mode, res.Completed, untrusted, app.Auditor.Secured(), app.Auditor.Leaks())
	if mode == repro.TwoPhase {
		fmt.Println("  two-phase handshakes (GM view):")
		for _, e := range res.Log.BySource("GM") {
			if e.Kind == trace.Intent || e.Kind == trace.Committed {
				fmt.Printf("    %s\n", e)
			}
		}
	}
}

func main() {
	tasks := flag.Int("tasks", 200, "stream length")
	scale := flag.Float64("scale", 100, "time scale")
	flag.Parse()

	fmt.Println("growing a farm into untrusted_ip_domain_A under C_perf + C_sec:")
	run(repro.TwoPhase, *tasks, *scale)
	run(repro.Reactive, *tasks, *scale)
	fmt.Println("\nthe two-phase protocol must report zero leaks; the reactive scheme must not.")
}

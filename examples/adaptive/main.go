// Adaptive builds an arbitrary multi-stage pipeline with the generalized
// stream-application API: a sequential pre-processing stage, a heavy farm,
// and a lighter post-processing farm, each with its own autonomic manager
// under one application manager. The application SLA is the only tuning
// input; the managers size both farms.
//
// It also demonstrates the §4.2 stage-to-farm transformation: pass
// -seqpost to keep the post-processing stage sequential and watch it cap
// the pipeline below the contract.
//
// Run with:
//
//	go run ./examples/adaptive [-tasks 120] [-scale 100] [-seqpost]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/trace"
)

func main() {
	tasks := flag.Int("tasks", 120, "stream length")
	scale := flag.Float64("scale", 100, "time scale")
	seqPost := flag.Bool("seqpost", false, "keep the post stage sequential (bottleneck demo)")
	flag.Parse()

	post := repro.StageSpec{Name: "post", Kind: repro.StageSeq, Work: 3 * time.Second}
	if !*seqPost {
		post = post.Farmize(2)
	}
	contract, err := repro.NewThroughputRange(0.3, 0.7)
	if err != nil {
		log.Fatal(err)
	}
	app, err := repro.NewStreamApp(repro.StreamAppConfig{
		Name:           "adaptive",
		Env:            repro.NewEnv(*scale),
		Platform:       repro.NewSMP(16),
		Tasks:          *tasks,
		SourceInterval: 2 * time.Second, // 0.5 tasks/s offered
		Stages: []repro.StageSpec{
			{Name: "prep", Kind: repro.StageSeq, Work: time.Second},
			{Name: "heavy", Kind: repro.StageFarm, Work: 10 * time.Second, Workers: 3,
				Limits: repro.FarmLimits{MaxWorkers: 8}},
			post,
		},
		Contract: contract,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("running prep -> farm(heavy) -> %s under %s...\n", post.Name, contract.Describe())
	res, err := app.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(trace.RenderSeries(trace.PlotOptions{
		Width: 72, Height: 10, Bands: []float64{0.3, 0.7},
	}, res.Throughput))
	fmt.Printf("\ncompleted %d tasks; peak throughput %.2f tasks/s\n",
		res.Completed, res.Throughput.Max())
	fmt.Println("\nmanagers at work (collapsed):")
	for _, am := range []string{"AM_A", "AM_P", "AM_S0", "AM_F", "AM_F1"} {
		seq := res.Log.KindSequence(am)
		if len(seq) == 0 {
			continue
		}
		if len(seq) > 12 {
			seq = seq[:12]
		}
		fmt.Printf("  %-6s:", am)
		for _, k := range seq {
			fmt.Printf(" %s", k)
		}
		fmt.Println(" ...")
	}
}

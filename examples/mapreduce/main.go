// Mapreduce exercises the data-parallel face of the functional replication
// pattern (§3 of the paper): a Map skeleton scatters each task's payload
// over recruited processing elements, computes partial byte histograms in
// parallel, and reduces them into one result — scatter dispatch with
// reduce collection, as opposed to the task farm's unicast/gather.
//
// Run with:
//
//	go run ./examples/mapreduce [-degree 4] [-blocks 32]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/grid"
	"repro/internal/skel"
)

// partialCount returns a tiny 4-bin histogram of the chunk (counts of byte
// value quartiles), encoded as 4 bytes.
func partialCount(chunk []byte) []byte {
	var bins [4]int
	for _, b := range chunk {
		bins[b>>6]++
	}
	out := make([]byte, 4)
	for i, n := range bins {
		if n > 255 {
			n = 255
		}
		out[i] = byte(n)
	}
	return out
}

// mergeCounts folds two 4-byte histograms.
func mergeCounts(a, b []byte) []byte {
	out := make([]byte, 4)
	for i := range out {
		s := int(a[i]) + int(b[i])
		if s > 255 {
			s = 255
		}
		out[i] = byte(s)
	}
	return out
}

func main() {
	degree := flag.Int("degree", 4, "parallel chunk executors per task")
	blocks := flag.Int("blocks", 32, "number of data blocks to histogram")
	flag.Parse()

	env := repro.NewEnv(1000)
	platform := repro.NewSMP(8)
	m, err := skel.NewMap("histogram", skel.MapConfig{
		Env:       env,
		Degree:    *degree,
		RM:        platform.RM,
		Chunk:     partialCount,
		Reduce:    mergeCounts,
		ChunkWork: 500 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}

	in := make(chan *skel.Task, *blocks)
	for i := 0; i < *blocks; i++ {
		payload := make([]byte, 256)
		for j := range payload {
			payload[j] = byte((i*37 + j*11) % 256)
		}
		in <- &skel.Task{ID: skel.NextTaskID(), Payload: payload}
	}
	close(in)
	out := make(chan *skel.Task, *blocks)

	start := time.Now()
	go m.Run(context.Background(), in, out)
	done := 0
	var last []byte
	for t := range out {
		done++
		last = t.Payload
	}
	fmt.Printf("histogrammed %d blocks with map degree %d in %v\n",
		done, *degree, time.Since(start).Round(time.Millisecond))
	fmt.Printf("last block quartile counts: %v\n", last)
	// The Map recruits and releases node slots per task; verify none leak.
	if free := platform.RM.CapacityFree(grid.Request{}); free != 8 {
		log.Fatalf("map leaked %d core slots", 8-free)
	}
	fmt.Println("all recruited cores were released — scatter/reduce round trip clean")
}

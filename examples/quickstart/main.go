// Quickstart: the smallest useful behavioural-skeleton program.
//
// It builds a task farm <P_farm, M_perf> processing a stream of 60 tasks,
// hands the manager the SLA "at least 0.5 tasks/s", and lets the autonomic
// manager grow the farm until the contract holds. Everything runs against
// a simulated 8-core platform with modelled time 100x faster than the wall
// clock, so the program finishes in a couple of seconds.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro"
)

func main() {
	app, err := repro.NewFarmApp(repro.FarmAppConfig{
		Name:           "quickstart",
		Env:            repro.NewEnv(100), // 100 modelled seconds per second
		Platform:       repro.NewSMP(8),   // one 8-core node
		Tasks:          60,                // stream length
		TaskWork:       4 * time.Second,   // per-task cost on one core
		SourceInterval: time.Second,       // 1 task/s offered
		InitialWorkers: 1,                 // the manager will grow this
		Contract:       repro.MinThroughput(0.5),
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := app.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("completed %d tasks in %v\n", res.Completed, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("final throughput %.2f tasks/s with %d workers (contract: >= 0.5)\n",
		res.Final.Throughput, res.Final.ParDegree)
	fmt.Println("\nwhat the autonomic manager did:")
	repro.RenderTimeline(os.Stdout, res)
}

// Hierarchical runs the paper's Fig. 4 application: a three-stage pipeline
// pipe(producer, farm(filter), consumer) managed by a hierarchy of four
// autonomic managers. The user hands the top manager AM_A a single SLA —
// "between 0.3 and 0.7 tasks/s" — and the hierarchy does the rest:
//
//   - AM_A splits the contract identically over the stage managers
//     (pipeline throughput is bounded by its slowest stage);
//   - the farm manager AM_F detects that the producer is too slow
//     (notEnough), cannot fix that locally, reports the violation and goes
//     passive;
//   - AM_A reacts with incRate contracts to the producer manager AM_P;
//   - once input pressure suffices, AM_F re-activates and grows the farm
//     (addWorker) until the stripe is reached;
//   - at end of stream AM_A stops reacting and AM_F rebalances the queued
//     tasks.
//
// Run with:
//
//	go run ./examples/hierarchical [-tasks 150] [-scale 100] [-lo 0.3] [-hi 0.7]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/trace"
)

func main() {
	tasks := flag.Int("tasks", 150, "stream length")
	scale := flag.Float64("scale", 100, "time scale")
	lo := flag.Float64("lo", 0.3, "contract lower bound (tasks/s)")
	hi := flag.Float64("hi", 0.7, "contract upper bound (tasks/s)")
	flag.Parse()

	ctr, err := repro.NewThroughputRange(*lo, *hi)
	if err != nil {
		log.Fatal(err)
	}
	app, err := repro.NewPipelineApp(repro.PipelineAppConfig{
		Name:             "hierarchical",
		Env:              repro.NewEnv(*scale),
		Platform:         repro.NewSMP(12),
		Tasks:            *tasks,
		ProducerInterval: 5 * time.Second, // deliberately too slow at first
		FilterWork:       14 * time.Second,
		ConsumerWork:     200 * time.Millisecond,
		InitialWorkers:   3,
		Contract:         ctr,
		Step:             1.5,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("running pipe(producer, farm(filter), consumer) under %s...\n", ctr.Describe())
	res, err := app.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(trace.RenderSeries(trace.PlotOptions{
		Width: 72, Height: 12, Bands: []float64{*lo, *hi},
	}, res.Throughput, res.InputRate))
	fmt.Printf("\ncompleted %d tasks; resources %0.f -> %.0f cores\n",
		res.Completed, res.Cores.Points()[0].V, res.Cores.Max())
	fmt.Println("\nmanager hierarchy at work (collapsed event kinds):")
	for _, am := range []string{"AM_A", "AM_P", "AM_F", "AM_C"} {
		fmt.Printf("  %-5s:", am)
		for _, k := range res.Log.KindSequence(am) {
			fmt.Printf(" %s", k)
		}
		fmt.Println()
	}
}

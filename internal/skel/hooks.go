package skel

import "sync"

// hooks is a tiny multi-subscriber event registry: skeleton stages fire
// it on violation-relevant edges (worker crash, end of stream) and the
// ABC layer forwards those edges to the managers' wake-up notifiers, so
// a MAPE loop can react within milliseconds instead of waiting out a
// poll period. Deliberately *not* fired on reconfiguration echoes
// (addWorker, rebalance): waking a manager on its own actuations would
// turn the control loop into a feedback screech, and waking the reactive
// security manager on worker addition would erase the §3.2 hazard window
// the multi-concern experiment measures.
type hooks struct {
	mu   sync.Mutex
	next int
	fns  map[int]func()
}

// subscribe registers fn and returns its cancel function. fn must not
// block: subscribers are expected to be edge-coalescing notifiers.
func (h *hooks) subscribe(fn func()) (cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.fns == nil {
		h.fns = map[int]func(){}
	}
	id := h.next
	h.next++
	h.fns[id] = fn
	return func() {
		h.mu.Lock()
		delete(h.fns, id)
		h.mu.Unlock()
	}
}

// fire invokes every subscriber. Callers must not hold stage locks: a
// subscriber may observe the stage synchronously.
func (h *hooks) fire() {
	h.mu.Lock()
	fns := make([]func(), 0, len(h.fns))
	for _, fn := range h.fns {
		fns = append(fns, fn)
	}
	h.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

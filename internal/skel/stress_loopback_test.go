package skel_test

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/runtime/leaktest"
	"repro/internal/skel"
	"repro/internal/skel/skeltest"
)

// TestFarmDispatchActuatorStress runs the shared actuator-storm harness
// against the loopback transport — the dispatch plane's default, where
// every worker computes in-process. The framed-TCP counterpart lives in
// internal/wire (TestFarmDispatchActuatorStressTCP) and runs the same
// harness over real localhost connections; together they pin the unified
// dispatch decision path on both sides of the transport seam.
func TestFarmDispatchActuatorStress(t *testing.T) {
	defer leaktest.Check(t)()
	skeltest.Stress(t, skel.FarmConfig{
		Name:           "stress",
		Env:            skel.Env{TimeScale: 1000},
		RM:             grid.NewSMP(64).RM,
		InitialWorkers: 4,
	}, 800)
}

// TestFarmDispatchActuatorStressBatched is the same storm with the batched
// dispatch hot path on: multi-task envelopes must survive concurrent
// rebalances, removals, kills, recoveries and rekeys with the identical
// exactly-once outcome — actuators split batches back into single
// envelopes before redistributing them.
func TestFarmDispatchActuatorStressBatched(t *testing.T) {
	defer leaktest.Check(t)()
	skeltest.Stress(t, skel.FarmConfig{
		Name:           "stress-batched",
		Env:            skel.Env{TimeScale: 1000},
		RM:             grid.NewSMP(64).RM,
		InitialWorkers: 4,
		DispatchBatch:  8,
	}, 800)
}

// Package skeltest holds the farm stress harness shared by the transport
// implementations: the loopback test in internal/skel and the framed-TCP
// test in internal/wire run the exact same actuator storm, so "both
// transports conserve the stream exactly-once" is one assertion with two
// configurations, not two tests that drift apart.
package skeltest

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/security"
	"repro/internal/skel"
)

// Stress builds a farm from cfg, pumps total tasks through it while
// hammering every sensor and actuator — Stats, Workers, Rebalance,
// SetCodec, AddWorker/RemoveWorker — and asserts exactly-once delivery.
// Under -race it is the safety net for the off-lock dispatch path: target
// workers can be removed, rebalanced or re-keyed between selection and
// push, and every interleaving must still conserve the stream. cfg decides
// the transport: a nil Executors factory is the loopback plane, a
// wire-backed one exercises the framed TCP protocol (rekeys then travel as
// control frames, rebalanced envelopes cross sessions via reseal).
func Stress(t *testing.T, cfg skel.FarmConfig, total int) {
	t.Helper()
	f, err := skel.NewFarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan *skel.Task, 64)
	out := make(chan *skel.Task, total)
	seen := make(chan map[uint64]int, 1)
	go func() {
		m := map[uint64]int{}
		for tsk := range out {
			m[tsk.ID]++
		}
		seen <- m
	}()
	done := make(chan struct{})
	go func() { f.Run(context.Background(), in, out); close(done) }()
	waitFor(t, func() bool { return len(f.Workers()) == cfg.InitialWorkers })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	hammer := func(fn func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					fn()
					runtime.Gosched()
				}
			}
		}()
	}
	hammer(func() { _ = f.Stats() })
	hammer(func() { _ = f.Workers() })
	hammer(func() { f.Rebalance() })
	secure := security.MustAESGCM(security.NewRandomKey(), nil, 0)
	codecFlip := 0
	hammer(func() {
		ws := f.Workers()
		if len(ws) == 0 {
			return
		}
		var c security.Codec = security.Plain{}
		if codecFlip%2 == 0 {
			c = secure
		}
		codecFlip++
		_ = f.SetCodec(ws[codecFlip%len(ws)].ID, c) // worker may be gone; ignore
	})
	grow := true
	hammer(func() {
		if grow {
			f.AddWorker() // may fail post-stream or on exhaustion; ignore
		} else {
			f.RemoveWorker() // may hit ErrLastWorker; ignore
		}
		grow = !grow
	})

	ids := make(map[uint64]bool, total)
	for i := 0; i < total; i++ {
		id := skel.NextTaskID()
		ids[id] = true
		in <- &skel.Task{ID: id, Payload: []byte("stress-payload")}
	}
	close(in)
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("farm did not terminate under actuator stress")
	}
	close(stop)
	wg.Wait()

	m := <-seen
	if len(m) != total {
		t.Fatalf("%d distinct tasks delivered, want %d", len(m), total)
	}
	for id, n := range m {
		if !ids[id] || n != 1 {
			t.Fatalf("task %d delivered %d times", id, n)
		}
	}
	if dropped := f.Stats().ErrorsDropped; dropped != 0 {
		t.Fatalf("ErrorsDropped = %d under stress, want 0", dropped)
	}
}

// waitFor polls cond until it holds or a generous deadline expires.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached")
}

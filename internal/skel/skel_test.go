package skel

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/runtime/leaktest"
	"repro/internal/security"
)

// fastEnv runs modelled time 1000x faster than the wall clock so tests
// finish in milliseconds.
func fastEnv() Env { return Env{TimeScale: 1000} }

func smpRM(cores int) *grid.ResourceManager {
	return grid.NewSMP(cores).RM
}

func runStage(t *testing.T, s Stage, tasks []*Task) []*Task {
	t.Helper()
	in := make(chan *Task, len(tasks))
	for _, task := range tasks {
		in <- task
	}
	close(in)
	out := make(chan *Task, len(tasks)+8)
	done := make(chan struct{})
	var results []*Task
	go func() {
		for r := range out {
			results = append(results, r)
		}
		close(done)
	}()
	s.Run(context.Background(), in, out)
	<-done
	return results
}

func mkTasks(n int, work time.Duration) []*Task {
	out := make([]*Task, n)
	for i := range out {
		out[i] = &Task{ID: NextTaskID(), Work: work, Payload: []byte{byte(i)}}
	}
	return out
}

func TestSourceEmitsAll(t *testing.T) {
	src := NewSource("prod", fastEnv(), 25, 10*time.Millisecond, nil)
	out := make(chan *Task, 25)
	src.Run(context.Background(), nil, out)
	if src.Emitted() != 25 || !src.Done() {
		t.Fatalf("emitted=%d done=%v", src.Emitted(), src.Done())
	}
	n := 0
	for range out {
		n++
	}
	if n != 25 {
		t.Fatalf("received %d tasks", n)
	}
}

func TestSourceSetInterval(t *testing.T) {
	src := NewSource("prod", fastEnv(), 1, time.Second, nil)
	src.SetInterval(time.Millisecond)
	if src.Interval() != time.Millisecond {
		t.Fatalf("Interval = %v", src.Interval())
	}
	start := time.Now()
	out := make(chan *Task, 1)
	src.Run(context.Background(), nil, out)
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("SetInterval did not take effect before Run")
	}
}

func TestSourceCustomMaker(t *testing.T) {
	src := NewSource("prod", fastEnv(), 3, 0, func(i int) *Task {
		return &Task{Payload: []byte{byte(i * 2)}, Work: time.Second}
	})
	out := make(chan *Task, 3)
	src.Run(context.Background(), nil, out)
	first := <-out
	if first.ID == 0 {
		t.Fatal("source must assign IDs to maker tasks without one")
	}
	if first.Payload[0] != 0 || first.Work != time.Second {
		t.Fatalf("task = %+v", first)
	}
	if first.Created.IsZero() {
		t.Fatal("Created not stamped")
	}
}

func TestSourceNegativeTotalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSource("p", fastEnv(), -1, 0, nil)
}

func TestSeqProcessesInOrder(t *testing.T) {
	node := grid.NewNode("n", grid.Domain{Trusted: true}, 1, 1)
	seq := NewSeq("stage", fastEnv(), node, func(t *Task) *Task {
		t.Payload = append(t.Payload, 'x')
		return t
	})
	results := runStage(t, seq, mkTasks(10, time.Millisecond))
	if len(results) != 10 {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Payload[0] != byte(i) || r.Payload[1] != 'x' {
			t.Fatalf("result %d = %v (order or fn broken)", i, r.Payload)
		}
	}
	if seq.Served() != 10 {
		t.Fatalf("Served = %d", seq.Served())
	}
	if node.Busy() != 0 {
		t.Fatal("seq did not release its node")
	}
}

func TestSeqNilNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSeq("s", fastEnv(), nil, nil)
}

func TestSinkCountsAndSignals(t *testing.T) {
	sink := NewSink("cons", fastEnv(), nil)
	in := make(chan *Task, 5)
	for _, task := range mkTasks(5, 0) {
		in <- task
	}
	close(in)
	sink.Run(context.Background(), in, nil)
	select {
	case <-sink.Done():
	default:
		t.Fatal("Done not closed")
	}
	if sink.Consumed() != 5 {
		t.Fatalf("Consumed = %d", sink.Consumed())
	}
}

func TestSinkForwards(t *testing.T) {
	sink := NewSink("cons", fastEnv(), nil)
	results := runStage(t, sink, mkTasks(3, 0))
	if len(results) != 3 {
		t.Fatalf("forwarded %d", len(results))
	}
}

func TestFarmProcessesStream(t *testing.T) {
	defer leaktest.Check(t)()
	f, err := NewFarm(FarmConfig{
		Name: "farm", Env: fastEnv(), RM: smpRM(8), InitialWorkers: 4,
		Fn: func(t *Task) *Task { t.Payload = append(t.Payload, 'f'); return t },
	})
	if err != nil {
		t.Fatal(err)
	}
	results := runStage(t, f, mkTasks(50, 5*time.Millisecond))
	if len(results) != 50 {
		t.Fatalf("got %d results, want 50", len(results))
	}
	for _, r := range results {
		if r.Payload[len(r.Payload)-1] != 'f' {
			t.Fatal("worker fn not applied")
		}
	}
	st := f.Stats()
	if st.Completed != 50 || st.Dispatched != 50 {
		t.Fatalf("stats = %+v", st)
	}
	if !st.InputDone {
		t.Fatal("InputDone not set")
	}
}

func TestFarmConfigValidation(t *testing.T) {
	if _, err := NewFarm(FarmConfig{}); err == nil {
		t.Fatal("farm without RM accepted")
	}
	f, err := NewFarm(FarmConfig{RM: smpRM(2)})
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "farm" {
		t.Fatalf("default name = %q", f.Name())
	}
}

func TestFarmAddRemoveWorker(t *testing.T) {
	f, _ := NewFarm(FarmConfig{Name: "f", Env: fastEnv(), RM: smpRM(8), InitialWorkers: 2})
	in := make(chan *Task)
	out := make(chan *Task, 128)
	go func() {
		for range out {
		}
	}()
	done := make(chan struct{})
	go func() { f.Run(context.Background(), in, out); close(done) }()
	waitFor(t, func() bool { return len(f.Workers()) == 2 })

	id, err := f.AddWorker()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Workers()) != 3 {
		t.Fatalf("workers = %d", len(f.Workers()))
	}
	removed, err := f.RemoveWorker()
	if err != nil {
		t.Fatal(err)
	}
	if removed != id {
		t.Fatalf("removed %s, want most recent %s", removed, id)
	}
	// Cannot remove below one worker.
	f.RemoveWorker()
	if _, err := f.RemoveWorker(); err != ErrLastWorker {
		t.Fatalf("err = %v, want ErrLastWorker", err)
	}
	close(in)
	<-done
}

func TestFarmAddWorkerAfterEndOfStream(t *testing.T) {
	f, _ := NewFarm(FarmConfig{Name: "f", Env: fastEnv(), RM: smpRM(4)})
	runStage(t, f, mkTasks(1, 0))
	if _, err := f.AddWorker(); err != ErrStreamEnded {
		t.Fatalf("err = %v, want ErrStreamEnded", err)
	}
}

func TestFarmAddWorkerResourceExhaustion(t *testing.T) {
	f, _ := NewFarm(FarmConfig{Name: "f", Env: fastEnv(), RM: smpRM(1), InitialWorkers: 1})
	in := make(chan *Task)
	out := make(chan *Task)
	go f.Run(context.Background(), in, out)
	waitFor(t, func() bool { return len(f.Workers()) == 1 })
	if _, err := f.AddWorker(); err == nil {
		t.Fatal("recruit beyond capacity succeeded")
	}
	close(in)
	for range out {
	}
}

func TestFarmRebalance(t *testing.T) {
	f, _ := NewFarm(FarmConfig{Name: "f", Env: Env{TimeScale: 100}, RM: smpRM(8), InitialWorkers: 2})
	in := make(chan *Task)
	out := make(chan *Task, 256)
	go func() {
		for range out {
		}
	}()
	done := make(chan struct{})
	go func() { f.Run(context.Background(), in, out); close(done) }()
	waitFor(t, func() bool { return len(f.Workers()) == 2 })
	// Flood with slow tasks so queues build up.
	for i := 0; i < 40; i++ {
		in <- &Task{ID: NextTaskID(), Work: 10 * time.Second}
	}
	waitFor(t, func() bool { return f.Stats().Dispatched == 40 })
	// Add two empty workers: imbalance appears, then rebalance fixes it.
	f.AddWorker()
	f.AddWorker()
	if v := f.Stats().QueueVariance; v == 0 {
		t.Skip("queues drained too fast to observe imbalance")
	}
	f.Rebalance()
	st := f.Stats()
	max, min := 0, 1<<30
	for _, l := range st.QueueLens {
		if l > max {
			max = l
		}
		if l < min {
			min = l
		}
	}
	if max-min > 1 {
		t.Fatalf("queues unbalanced after Rebalance: %v", st.QueueLens)
	}
	close(in)
	<-done
}

func TestFarmRoundRobinDispatch(t *testing.T) {
	f, _ := NewFarm(FarmConfig{
		Name: "f", Env: fastEnv(), RM: smpRM(8),
		InitialWorkers: 4, Dispatch: RoundRobin,
	})
	results := runStage(t, f, mkTasks(40, time.Millisecond))
	if len(results) != 40 {
		t.Fatalf("got %d results", len(results))
	}
	total := 0
	for _, w := range f.Workers() {
		total += w.Served
	}
	if total != 40 {
		t.Fatalf("served sum = %d", total)
	}
}

func TestFarmBroadcastDispatch(t *testing.T) {
	f, _ := NewFarm(FarmConfig{
		Name: "f", Env: fastEnv(), RM: smpRM(8),
		InitialWorkers: 3, Dispatch: Broadcast,
	})
	results := runStage(t, f, mkTasks(5, 0))
	if len(results) != 15 {
		t.Fatalf("broadcast produced %d results, want 5x3=15", len(results))
	}
}

func TestFarmSecureCodecRoundTrip(t *testing.T) {
	aud := security.NewAuditor()
	pf := grid.NewTwoDomainGrid(0, 4)
	pol := &security.Policy{Network: pf.Network}
	f, _ := NewFarm(FarmConfig{
		Name: "f", Env: fastEnv(), RM: pf.RM, InitialWorkers: 2,
		Policy: pol, Auditor: aud,
		Fn: func(t *Task) *Task { return t },
	})
	in := make(chan *Task)
	out := make(chan *Task, 64)
	collected := make(chan []*Task, 1)
	go func() {
		var rs []*Task
		for r := range out {
			rs = append(rs, r)
		}
		collected <- rs
	}()
	done := make(chan struct{})
	go func() { f.Run(context.Background(), in, out); close(done) }()
	waitFor(t, func() bool { return len(f.Workers()) == 2 })

	// Send one task unsecured: the auditor must record a leak (workers are
	// on untrusted nodes).
	in <- &Task{ID: 1, Payload: []byte("secret")}
	waitFor(t, func() bool { return aud.Total() == 1 })
	if aud.Leaks() != 1 {
		t.Fatalf("Leaks = %d, want 1", aud.Leaks())
	}

	// Secure both bindings, send again: no new leaks, payload intact.
	key := security.NewRandomKey()
	for _, w := range f.Workers() {
		if err := f.SetCodec(w.ID, security.MustAESGCM(key, nil, 0)); err != nil {
			t.Fatal(err)
		}
	}
	in <- &Task{ID: 2, Payload: []byte("secret2")}
	in <- &Task{ID: 3, Payload: []byte("secret3")}
	close(in)
	<-done
	rs := <-collected
	if aud.Leaks() != 1 {
		t.Fatalf("Leaks after securing = %d, want still 1", aud.Leaks())
	}
	if aud.Secured() != 2 {
		t.Fatalf("Secured = %d, want 2", aud.Secured())
	}
	found := false
	for _, r := range rs {
		if r.ID == 2 && bytes.Equal(r.Payload, []byte("secret2")) {
			found = true
		}
	}
	if !found {
		t.Fatal("secured payload corrupted in transit")
	}
}

func TestFarmSetCodecUnknownWorker(t *testing.T) {
	f, _ := NewFarm(FarmConfig{Name: "f", Env: fastEnv(), RM: smpRM(2)})
	if err := f.SetCodec("nope", security.Plain{}); err == nil {
		t.Fatal("unknown worker accepted")
	}
	if err := f.SetCodec("x", nil); err == nil {
		t.Fatal("nil codec accepted")
	}
}

func TestFarmReleasesNodes(t *testing.T) {
	rm := smpRM(8)
	f, _ := NewFarm(FarmConfig{Name: "f", Env: fastEnv(), RM: rm, InitialWorkers: 4})
	runStage(t, f, mkTasks(10, time.Millisecond))
	if rm.CoresInUse() != 0 {
		t.Fatalf("CoresInUse after run = %d", rm.CoresInUse())
	}
}

func TestPipeComposition(t *testing.T) {
	env := fastEnv()
	node := grid.NewNode("n", grid.Domain{Trusted: true}, 4, 1)
	a := NewSeq("a", env, node, func(t *Task) *Task { t.Payload = append(t.Payload, 'a'); return t })
	b := NewSeq("b", env, node, func(t *Task) *Task { t.Payload = append(t.Payload, 'b'); return t })
	p, err := NewPipe("pipe", 4, a, b)
	if err != nil {
		t.Fatal(err)
	}
	results := runStage(t, p, mkTasks(10, time.Millisecond))
	if len(results) != 10 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		n := len(r.Payload)
		if r.Payload[n-2] != 'a' || r.Payload[n-1] != 'b' {
			t.Fatalf("stage order broken: %v", r.Payload)
		}
	}
	if len(p.Stages()) != 2 {
		t.Fatal("Stages() wrong")
	}
}

func TestPipeValidation(t *testing.T) {
	if _, err := NewPipe("p", 0); err == nil {
		t.Fatal("empty pipe accepted")
	}
}

func TestPipeWithFarmStage(t *testing.T) {
	env := fastEnv()
	plat := grid.NewSMP(8)
	nodes := plat.RM.Nodes()
	prodNode, _ := plat.RM.Recruit(grid.Request{})
	_ = prodNode
	farm, _ := NewFarm(FarmConfig{Name: "filter", Env: env, RM: plat.RM, InitialWorkers: 2})
	sink := NewSink("cons", env, nil)
	seq := NewSeq("prod", env, nodes[0], nil)
	p, err := NewPipe("app", 8, seq, farm, sink)
	if err != nil {
		t.Fatal(err)
	}
	results := runStage(t, p, mkTasks(30, time.Millisecond))
	_ = results // sink forwards
	if sink.Consumed() != 30 {
		t.Fatalf("consumed %d", sink.Consumed())
	}
}

func TestScatter(t *testing.T) {
	cases := []struct {
		payload []byte
		parts   int
		want    int
	}{
		{[]byte("abcdefgh"), 3, 3},
		{[]byte("ab"), 5, 2},
		{nil, 4, 1},
		{[]byte("abc"), 0, 1},
	}
	for _, tc := range cases {
		chunks := Scatter(tc.payload, tc.parts)
		if len(chunks) != tc.want {
			t.Fatalf("Scatter(%q,%d) = %d chunks, want %d", tc.payload, tc.parts, len(chunks), tc.want)
		}
		var re []byte
		for _, c := range chunks {
			re = append(re, c...)
		}
		if !bytes.Equal(re, tc.payload) {
			t.Fatalf("Scatter lost data: %q -> %q", tc.payload, re)
		}
	}
	// Balanced: sizes differ by at most one.
	chunks := Scatter(make([]byte, 10), 3)
	if len(chunks[0])-len(chunks[2]) > 1 {
		t.Fatalf("unbalanced scatter: %d vs %d", len(chunks[0]), len(chunks[2]))
	}
}

func TestMapGather(t *testing.T) {
	m, err := NewMap("map", MapConfig{
		Env: fastEnv(), Degree: 4, RM: smpRM(8),
		Chunk: func(c []byte) []byte {
			out := make([]byte, len(c))
			for i, b := range c {
				out[i] = b + 1
			}
			return out
		},
		ChunkWork: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := []*Task{{ID: 1, Payload: []byte{1, 2, 3, 4, 5, 6, 7, 8}}}
	results := runStage(t, m, in)
	if len(results) != 1 {
		t.Fatalf("got %d results", len(results))
	}
	want := []byte{2, 3, 4, 5, 6, 7, 8, 9}
	if !bytes.Equal(results[0].Payload, want) {
		t.Fatalf("payload = %v, want %v", results[0].Payload, want)
	}
}

func TestMapReduce(t *testing.T) {
	m, _ := NewMap("mr", MapConfig{
		Env: fastEnv(), Degree: 4, RM: smpRM(8),
		Chunk: func(c []byte) []byte {
			sum := byte(0)
			for _, b := range c {
				sum += b
			}
			return []byte{sum}
		},
		Reduce: func(a, b []byte) []byte { return []byte{a[0] + b[0]} },
	})
	results := runStage(t, m, []*Task{{ID: 1, Payload: []byte{1, 2, 3, 4}}})
	if len(results) != 1 || len(results[0].Payload) != 1 || results[0].Payload[0] != 10 {
		t.Fatalf("reduce result = %v", results[0].Payload)
	}
}

func TestMapValidation(t *testing.T) {
	if _, err := NewMap("m", MapConfig{}); err == nil {
		t.Fatal("map without RM accepted")
	}
}

func TestMapSequentialFallback(t *testing.T) {
	rm := smpRM(1)
	// Occupy the only core so recruitment fails and Apply degrades.
	n, _ := rm.Recruit(grid.Request{})
	defer n.Release()
	m, _ := NewMap("m", MapConfig{Env: fastEnv(), Degree: 2, RM: rm})
	results := runStage(t, m, []*Task{{ID: 1, Payload: []byte("xy")}})
	if len(results) != 1 || !bytes.Equal(results[0].Payload, []byte("xy")) {
		t.Fatalf("fallback result = %+v", results)
	}
}

func TestTaskClone(t *testing.T) {
	orig := &Task{ID: 1, Payload: []byte("abc"), Work: time.Second}
	cp := orig.Clone()
	cp.Payload[0] = 'X'
	if orig.Payload[0] == 'X' {
		t.Fatal("Clone shares payload")
	}
}

func TestEnvDefaults(t *testing.T) {
	var e Env
	if e.scale() != 1 {
		t.Fatalf("default scale = %v", e.scale())
	}
	if e.clock() == nil {
		t.Fatal("default clock nil")
	}
	e.SleepScaled(0) // must not panic or block
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never satisfied")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPipeCancelDrains verifies the drain-on-cancel contract of Stage at
// the skeleton level: canceling the pipeline's context stops the source's
// intake while every stage keeps consuming until its input closes, so all
// emitted tasks still reach the sink and every stage goroutine exits.
func TestPipeCancelDrains(t *testing.T) {
	defer leaktest.Check(t)()
	env := fastEnv()
	src := NewSource("prod", env, 100000, 2*time.Millisecond, nil)
	farm, err := NewFarm(FarmConfig{Name: "w", Env: env, RM: smpRM(4), InitialWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sink := NewSink("cons", env, nil)
	pipe, err := NewPipe("app", 8, src, farm, sink)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		pipe.Run(ctx, nil, nil)
		close(done)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for sink.Consumed() < 5 {
		if time.Now().After(deadline) {
			t.Fatal("stream never started")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("pipeline did not drain after cancel")
	}
	<-sink.Done()
	if got, want := sink.Consumed(), src.Emitted(); got != want {
		t.Fatalf("consumed %d of %d emitted: accepted tasks were dropped", got, want)
	}
	if src.Emitted() >= 100000 {
		t.Fatal("cancel did not stop the source")
	}
}

// TestSourceEdgeFiresOnCancel checks the end-of-stream edge hook: it must
// fire exactly once whether the stream ends naturally or by cancelation.
func TestSourceEdgeFiresOnCancel(t *testing.T) {
	defer leaktest.Check(t)()
	src := NewSource("prod", fastEnv(), 100000, time.Millisecond, nil)
	fired := make(chan struct{}, 2)
	cancelHook := src.OnEvent(func() { fired <- struct{}{} })
	defer cancelHook()
	ctx, cancel := context.WithCancel(context.Background())
	out := make(chan *Task, 16)
	go func() {
		for range out {
		}
	}()
	go cancel()
	src.Run(ctx, nil, out)
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("end-of-stream edge never fired")
	}
	if !src.Done() {
		t.Fatal("source not marked done after cancel")
	}
}

// Package skel implements the algorithmic-skeleton runtime underneath the
// behavioural skeletons: stream sources and sinks, sequential stages,
// pipelines and task farms (the paper's functional replication pattern)
// built on goroutines and channels, with the dynamic reconfiguration
// mechanisms — add/remove worker, rebalance queues, throttle emission,
// switch a worker binding onto a secure codec — that the Autonomic
// Behaviour Controller exposes as actuators.
package skel

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/simclock"
)

// Task is one stream element. Work is the nominal service time the task
// costs on a reference-speed core; the node a worker is placed on converts
// it into actual wall time. Payload is the data the functional code — and
// the security codecs — operate on.
type Task struct {
	ID      uint64
	Payload []byte
	Work    time.Duration
	Created time.Time
}

// Clone returns a deep copy of the task (used by broadcast dispatch).
func (t *Task) Clone() *Task {
	cp := *t
	cp.Payload = append([]byte(nil), t.Payload...)
	return &cp
}

// Fn is the functional code of a stage: it transforms a task into its
// result. The runtime accounts for Work separately, so Fn should contain
// only the logical transformation. A nil Fn is the identity.
type Fn func(*Task) *Task

func applyFn(fn Fn, t *Task) *Task {
	if fn == nil {
		return t
	}
	return fn(t)
}

// Env carries the execution-environment knobs shared by all skeleton
// components of one application.
type Env struct {
	Clock simclock.Clock
	// TimeScale divides every modelled duration: 10 means the experiment
	// runs 10x faster than the paper's wall-clock narrative while keeping
	// all rate ratios intact. Zero or negative means 1.
	TimeScale float64
}

// scale returns the effective time scale.
func (e Env) scale() float64 {
	if e.TimeScale <= 0 {
		return 1
	}
	return e.TimeScale
}

// clock returns the effective clock.
func (e Env) clock() simclock.Clock {
	if e.Clock == nil {
		return simclock.NewReal()
	}
	return e.Clock
}

// SleepScaled sleeps d of modelled time, i.e. d/TimeScale of clock time.
func (e Env) SleepScaled(d time.Duration) {
	if d <= 0 {
		return
	}
	e.clock().Sleep(time.Duration(float64(d) / e.scale()))
}

// taskIDs hands out process-wide unique task IDs.
var taskIDs atomic.Uint64

// NextTaskID returns a fresh task ID.
func NextTaskID() uint64 { return taskIDs.Add(1) }

// Stage is one stream-processing element: it consumes in, produces out and
// must close out when in is exhausted. Run blocks until done.
//
// Cancellation follows drain-on-cancel semantics: ctx reaching a Stage
// stops *intake* (the Source stops emitting and closes its output), while
// downstream stages keep draining the tasks already accepted until their
// input closes — no accepted task is dropped by a graceful shutdown.
type Stage interface {
	Name() string
	Run(ctx context.Context, in <-chan *Task, out chan<- *Task)
}

package skel

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/runtime/leaktest"
	"repro/internal/security"
	"repro/internal/telemetry"
)

func testNode(name string) *grid.Node {
	return grid.NewNode(name, grid.Domain{Name: "dom", Trusted: true}, 1, 1)
}

func TestBatchBlobRoundtrip(t *testing.T) {
	tasks := []*Task{
		{ID: 11, Work: 3 * time.Millisecond, Payload: []byte("alpha")},
		{ID: 12, Work: 0, Payload: nil},
		{ID: 13, Work: time.Second, Payload: bytes.Repeat([]byte{0xAB}, 300)},
	}
	want := [][]byte{[]byte("alpha"), nil, bytes.Repeat([]byte{0xAB}, 300)}
	blob := appendBatchBlob(nil, tasks, 0, telemetry.TraceContext{})

	_, entries, err := ParseBatchBlob(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("got %d entries", len(entries))
	}
	for i, e := range entries {
		if e.ID != tasks[i].ID || e.Work != tasks[i].Work || !bytes.Equal(e.Payload, want[i]) {
			t.Fatalf("entry %d = %+v", i, e)
		}
	}

	// The in-place unpack must agree with the parsed view.
	fresh := []*Task{{ID: 11}, {ID: 12}, {ID: 13}}
	if err := unpackBatchInto(blob, fresh); err != nil {
		t.Fatal(err)
	}
	for i, tk := range fresh {
		if !bytes.Equal(tk.Payload, want[i]) {
			t.Fatalf("task %d payload = %q", i, tk.Payload)
		}
	}
}

func TestBatchBlobWorkOverride(t *testing.T) {
	tasks := []*Task{{ID: 1, Work: time.Hour, Payload: []byte("x")}}
	_, entries, err := ParseBatchBlob(appendBatchBlob(nil, tasks, 5*time.Millisecond, telemetry.TraceContext{}))
	if err != nil {
		t.Fatal(err)
	}
	if entries[0].Work != 5*time.Millisecond {
		t.Fatalf("Work = %v, want the override", entries[0].Work)
	}
}

func TestBatchBlobMalformed(t *testing.T) {
	tasks := []*Task{{ID: 1, Payload: []byte("abc")}, {ID: 2, Payload: []byte("defg")}}
	blob := appendBatchBlob(nil, tasks, 0, telemetry.TraceContext{})
	cases := map[string][]byte{
		"empty":       {},
		"short-count": blob[:2],
		"truncated":   blob[:len(blob)-3],
		"trailing":    append(append([]byte(nil), blob...), 0x00),
	}
	for name, b := range cases {
		if _, _, err := ParseBatchBlob(b); err == nil {
			t.Errorf("ParseBatchBlob(%s): no error", name)
		}
		if err := unpackBatchInto(b, []*Task{{ID: 1}, {ID: 2}}); err == nil {
			t.Errorf("unpackBatchInto(%s): no error", name)
		}
	}
	if err := unpackBatchInto(blob, []*Task{{ID: 1}}); err == nil {
		t.Error("count mismatch accepted")
	}
	if err := unpackBatchInto(blob, []*Task{{ID: 1}, {ID: 99}}); err == nil {
		t.Error("ID mismatch accepted")
	}
}

// TestBatchResultAtomicity pins the two-pass contract of unpackResultInto:
// a result blob that fails validation anywhere must leave every member
// payload untouched, because the envelope strands for recovery and a
// recompute would otherwise start from half-assigned payloads.
func TestBatchResultAtomicity(t *testing.T) {
	tasks := []*Task{
		{ID: 21, Payload: []byte("keep-a")},
		{ID: 22, Payload: []byte("keep-b")},
	}
	good := AppendBatchResult(nil, []BatchEntry{
		{ID: 21, Payload: []byte("res-a")},
		{ID: 22, Payload: []byte("res-b")},
	})
	if err := unpackResultInto(good[:len(good)-2], tasks); err == nil {
		t.Fatal("truncated result blob accepted")
	}
	if !bytes.Equal(tasks[0].Payload, []byte("keep-a")) || !bytes.Equal(tasks[1].Payload, []byte("keep-b")) {
		t.Fatalf("payloads mutated by failed unpack: %q %q", tasks[0].Payload, tasks[1].Payload)
	}
	if err := unpackResultInto(good, tasks); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tasks[0].Payload, []byte("res-a")) || !bytes.Equal(tasks[1].Payload, []byte("res-b")) {
		t.Fatalf("payloads after unpack: %q %q", tasks[0].Payload, tasks[1].Payload)
	}
}

// TestRoundRobinCursorWraps seeds the round-robin cursor at the edge of the
// integer range: the pre-fix dispatcher incremented it forever, so after
// overflow the modulo went negative and indexed out of bounds (a panic in
// the dispatcher goroutine). The cursor must wrap and keep cycling.
func TestRoundRobinCursorWraps(t *testing.T) {
	f, err := NewFarm(FarmConfig{Name: "rr", RM: smpRM(4), Dispatch: RoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	avail := []*worker{
		{id: "a", queue: newQueue()},
		{id: "b", queue: newQueue()},
		{id: "c", queue: newQueue()},
	}
	rr := math.MaxInt - 1
	picked := map[string]int{}
	for i := 0; i < 6; i++ {
		w := f.decideTarget(avail, &rr)
		if w == nil {
			t.Fatalf("pick %d: nil target", i)
		}
		picked[w.id]++
		if rr < 0 || rr >= len(avail) {
			t.Fatalf("pick %d left cursor at %d, want wrapped into [0,%d)", i, rr, len(avail))
		}
	}
	// Two full cycles: round-robin must have visited every worker twice.
	for _, w := range avail {
		if picked[w.id] != 2 {
			t.Fatalf("distribution %v, want 2 picks each", picked)
		}
	}
}

// TestBroadcastPushFailureDropsClone pins the Broadcast reroute fix: when
// one clone's push is refused (its recipient vanished between snapshot and
// push), the clone must be dropped — every other admitted worker already
// received its own clone, so re-routing through the decision path would
// deliver a duplicate to one of them.
func TestBroadcastPushFailureDropsClone(t *testing.T) {
	f, err := NewFarm(FarmConfig{Name: "bc", RM: smpRM(4), Dispatch: Broadcast})
	if err != nil {
		t.Fatal(err)
	}
	f.mu.Lock()
	w1 := f.newWorkerLocked(testNode("n1"), security.Plain{})
	w2 := f.newWorkerLocked(testNode("n2"), security.Plain{})
	f.workers = append(f.workers, w1, w2)
	f.everHadWorker = true
	f.refreshRoutesLocked()
	f.mu.Unlock()
	// w2's queue refuses pushes, exactly as if the worker had just been
	// removed or migrated after the dispatch snapshot was taken.
	w2.queue.close()

	f.dispatch(&Task{ID: NextTaskID(), Payload: []byte("b")})

	if n := w1.queue.len(); n != 1 {
		t.Fatalf("w1 queue holds %d envelopes, want exactly 1 (duplicate broadcast clone re-routed)", n)
	}
	f.mu.Lock()
	parked := len(f.pending)
	f.mu.Unlock()
	if parked != 0 {
		t.Fatalf("%d clones parked, want 0", parked)
	}
}

// TestEmptyPoolRecruitFailureTerminates pins the empty-pool parking fix: a
// farm whose every recruitment was refused has no crashed worker and no
// recovery coming, so dispatched tasks must be dropped with an error and
// the run must terminate instead of parking them forever.
func TestEmptyPoolRecruitFailureTerminates(t *testing.T) {
	defer leaktest.Check(t)()
	rm := smpRM(4)
	rm.SetRecruitFault(func(grid.Request) error { return errors.New("injected: recruitment refused") })
	f, err := NewFarm(FarmConfig{Name: "norecruit", Env: fastEnv(), RM: rm, InitialWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan *Task, 8)
	for _, tk := range mkTasks(5, time.Millisecond) {
		in <- tk
	}
	close(in)
	out := make(chan *Task, 8)
	done := make(chan struct{})
	go func() {
		f.Run(context.Background(), in, out)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("farm hung: tasks parked with no worker ever recruited")
	}
	if n := len(out); n != 0 {
		t.Fatalf("%d results from a farm with no workers", n)
	}
	errs := 0
drain:
	for {
		select {
		case <-f.Errors():
			errs++
		default:
			break drain
		}
	}
	if errs == 0 && f.Stats().ErrorsDropped == 0 {
		t.Fatal("tasks dropped silently: want per-task errors reported")
	}
}

// TestSplitEnvelopes verifies the actuator-side batch split: each member of
// a batch envelope becomes a single envelope re-sealed with the codec the
// batch carried, so redistribution hands downstream workers exactly the
// envelopes the unbatched farm would have produced.
func TestSplitEnvelopes(t *testing.T) {
	f, err := NewFarm(FarmConfig{Name: "split", RM: smpRM(4)})
	if err != nil {
		t.Fatal(err)
	}
	codec := security.MustAESGCM(security.NewRandomKey(), nil, 0)
	tasks := []*Task{
		{ID: 31, Payload: []byte("one")},
		{ID: 32, Payload: []byte("two")},
		{ID: 33, Payload: []byte("three")},
	}
	blob := appendBatchBlob(nil, tasks, 0, telemetry.TraceContext{})
	wire, err := codec.Encode(blob)
	if err != nil {
		t.Fatal(err)
	}
	env := &envelope{tasks: append([]*Task(nil), tasks...), wire: wire, codec: codec, batch: true}
	single := &envelope{tasks: []*Task{{ID: 34, Payload: []byte("solo")}}, wire: []byte("raw"), codec: security.Plain{}}

	f.mu.Lock()
	out := f.splitEnvelopesLocked([]*envelope{env, single})
	f.mu.Unlock()

	if len(out) != 4 {
		t.Fatalf("split produced %d envelopes, want 4", len(out))
	}
	for i, want := range tasks {
		e := out[i]
		if e.batch || len(e.tasks) != 1 || e.task().ID != want.ID {
			t.Fatalf("split envelope %d = %+v", i, e)
		}
		plain, err := e.codec.Decode(e.wire)
		if err != nil {
			t.Fatalf("split envelope %d does not decode with the carried codec: %v", i, err)
		}
		if !bytes.Equal(plain, want.Payload) {
			t.Fatalf("split envelope %d payload %q, want %q", i, plain, want.Payload)
		}
	}
	if out[3] != single {
		t.Fatal("single envelope must pass through the split untouched")
	}
}

// runFarmCollect runs a farm over the given tasks and returns the delivery
// count per task ID plus the collected results.
func runFarmCollect(t *testing.T, f *Farm, tasks []*Task) (map[uint64]int, []*Task) {
	t.Helper()
	in := make(chan *Task, len(tasks))
	for _, tk := range tasks {
		in <- tk
	}
	close(in)
	out := make(chan *Task, len(tasks)*8+16)
	done := make(chan struct{})
	var results []*Task
	go func() {
		for r := range out {
			results = append(results, r)
		}
		close(done)
	}()
	f.Run(context.Background(), in, out)
	<-done
	counts := map[uint64]int{}
	for _, r := range results {
		counts[r.ID]++
	}
	return counts, results
}

// TestFarmBatchedDispatchExactlyOnce runs the batched hot path end to end:
// every task delivered exactly once, transformed by the worker function,
// across a pool wide enough that batches interleave.
func TestFarmBatchedDispatchExactlyOnce(t *testing.T) {
	defer leaktest.Check(t)()
	for _, dispatch := range []DispatchPolicy{OnDemand, RoundRobin} {
		f, err := NewFarm(FarmConfig{
			Name:           "batched",
			Env:            fastEnv(),
			RM:             smpRM(8),
			InitialWorkers: 4,
			Dispatch:       dispatch,
			DispatchBatch:  8,
			Fn: func(tk *Task) *Task {
				tk.Payload = append(tk.Payload, 'x')
				return tk
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		tasks := mkTasks(100, time.Millisecond)
		counts, results := runFarmCollect(t, f, tasks)
		if len(counts) != 100 {
			t.Fatalf("dispatch=%v: %d distinct tasks delivered, want 100", dispatch, len(counts))
		}
		for id, n := range counts {
			if n != 1 {
				t.Fatalf("dispatch=%v: task %d delivered %d times", dispatch, id, n)
			}
		}
		for _, r := range results {
			if len(r.Payload) != 2 || r.Payload[1] != 'x' {
				t.Fatalf("dispatch=%v: result payload %q not transformed", dispatch, r.Payload)
			}
		}
	}
}

// TestFarmBatchedSecureCodec runs the batched path with an AES-GCM binding
// installed through the two-phase prepare hook: one seal per batch must
// still round-trip every member payload.
func TestFarmBatchedSecureCodec(t *testing.T) {
	defer leaktest.Check(t)()
	f, err := NewFarm(FarmConfig{
		Name:           "batched-sec",
		Env:            fastEnv(),
		RM:             smpRM(4),
		InitialWorkers: 1,
		DispatchBatch:  16,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Replace the plain initial recruitment with a prepared, secured worker
	// before any task flows.
	if _, err := f.AddWorkerWithPrepare(func(id string, node *grid.Node, setCodec func(security.Codec)) error {
		setCodec(security.MustAESGCM(security.NewRandomKey(), nil, 0))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	counts, _ := runFarmCollect(t, f, mkTasks(64, 0))
	if len(counts) != 64 {
		t.Fatalf("%d distinct tasks delivered, want 64", len(counts))
	}
}

// TestFarmBatchedBroadcast: with batching on, Broadcast still delivers one
// clone per admitted worker per task.
func TestFarmBatchedBroadcast(t *testing.T) {
	defer leaktest.Check(t)()
	f, err := NewFarm(FarmConfig{
		Name:           "batched-bc",
		Env:            fastEnv(),
		RM:             smpRM(4),
		InitialWorkers: 2,
		Dispatch:       Broadcast,
		DispatchBatch:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts, results := runFarmCollect(t, f, mkTasks(10, time.Millisecond))
	if len(results) != 20 {
		t.Fatalf("%d results, want 10 tasks × 2 workers = 20", len(results))
	}
	for id, n := range counts {
		if n != 2 {
			t.Fatalf("task %d delivered %d times, want 2", id, n)
		}
	}
}

// TestFarmBatchFlushDeadline pins the flush-on-idle bound: a partial batch
// must not wait for the batch to fill when the stream idles.
func TestFarmBatchFlushDeadline(t *testing.T) {
	defer leaktest.Check(t)()
	f, err := NewFarm(FarmConfig{
		Name:           "trickle",
		Env:            fastEnv(),
		RM:             smpRM(2),
		InitialWorkers: 1,
		DispatchBatch:  64, // far larger than the trickle
		BatchFlush:     2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan *Task)
	out := make(chan *Task, 16)
	done := make(chan struct{})
	go func() {
		f.Run(context.Background(), in, out)
		close(done)
	}()
	for i := 0; i < 3; i++ {
		in <- &Task{ID: NextTaskID(), Payload: []byte{byte(i)}}
	}
	// The input stays open: only the flush deadline can move these 3 tasks.
	for i := 0; i < 3; i++ {
		select {
		case <-out:
		case <-time.After(5 * time.Second):
			t.Fatalf("result %d never arrived: partial batch not flushed on idle", i)
		}
	}
	close(in)
	<-done
	for range out {
	}
}

// TestCrossBindingRedistributionLoopback pins the cross-binding envelope
// contract on the loopback plane, unbatched and batched: tasks sealed for
// one worker's binding are redistributed mid-stream (rebalance, removal,
// recovery all funnel through the same restore path) onto workers with
// *different* binding codecs, and every task must still arrive exactly
// once with an intact payload — an envelope always decodes with the codec
// it carries, and batch envelopes are split back into re-sealed singles
// before they move.
func TestCrossBindingRedistributionLoopback(t *testing.T) {
	for _, batch := range []int{0, 16} {
		batch := batch
		name := "unbatched"
		if batch > 1 {
			name = "batched"
		}
		t.Run(name, func(t *testing.T) {
			defer leaktest.Check(t)()
			f, err := NewFarm(FarmConfig{
				Name:           "xbind",
				Env:            fastEnv(),
				RM:             smpRM(8),
				InitialWorkers: 2,
				WorkOverride:   5 * time.Millisecond,
				DispatchBatch:  batch,
				Fn: func(tk *Task) *Task {
					tk.Payload = append(tk.Payload, 'x')
					return tk
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			const total = 120
			in := make(chan *Task, total)
			out := make(chan *Task, total+16)
			done := make(chan struct{})
			counts := map[uint64]int{}
			badPayload := 0
			go func() {
				for r := range out {
					counts[r.ID]++
					if len(r.Payload) != 3 || r.Payload[2] != 'x' {
						badPayload++
					}
				}
				close(done)
			}()
			run := make(chan struct{})
			go func() {
				f.Run(context.Background(), in, out)
				close(run)
			}()
			deadline := time.Now().Add(10 * time.Second)
			for len(f.Workers()) < 2 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			// Distinct binding codecs: worker 0 stays Plain, worker 1 goes
			// AES-GCM. Envelopes queued for one binding will be restored
			// into the other's queue by the churn below.
			ws := f.Workers()
			if len(ws) != 2 {
				t.Fatalf("have %d workers", len(ws))
			}
			if err := f.SetCodec(ws[1].ID, security.MustAESGCM(security.NewRandomKey(), nil, 0)); err != nil {
				t.Fatal(err)
			}
			feed := func(n int) {
				for i := 0; i < n; i++ {
					in <- &Task{ID: NextTaskID(), Payload: []byte{byte(i), byte(i >> 8)}}
				}
			}
			feed(total / 2)
			f.Rebalance()
			if _, err := f.RemoveWorker(); err != nil {
				t.Fatal(err)
			}
			if _, err := f.AddWorker(); err != nil {
				t.Fatal(err)
			}
			ws = f.Workers()
			_ = f.SetCodec(ws[len(ws)-1].ID, security.MustAESGCM(security.NewRandomKey(), nil, 0))
			feed(total / 2)
			f.Rebalance()
			close(in)
			select {
			case <-run:
			case <-time.After(30 * time.Second):
				t.Fatal("farm did not terminate")
			}
			<-done
			if len(counts) != total {
				t.Fatalf("%d distinct tasks delivered, want %d", len(counts), total)
			}
			for id, n := range counts {
				if n != 1 {
					t.Fatalf("task %d delivered %d times", id, n)
				}
			}
			if badPayload != 0 {
				t.Fatalf("%d results with corrupt payloads after cross-binding redistribution", badPayload)
			}
		})
	}
}

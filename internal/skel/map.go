package skel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/grid"
)

// Map is the data-parallel face of functional replication: each incoming
// task's payload is scattered into chunks, the chunks are processed in
// parallel on recruited nodes, and the partial results are gathered back
// (or reduced) into a single output task. It models the "data parallel
// computation" variant of §3 with scatter dispatch and gather/reduce
// collection.
type Map struct {
	name string
	env  Env
	cfg  MapConfig
}

// ChunkFn transforms one payload chunk.
type ChunkFn func(chunk []byte) []byte

// ReduceFn folds two partial results (must be associative).
type ReduceFn func(a, b []byte) []byte

// MapConfig parameterizes a Map skeleton.
type MapConfig struct {
	Env Env
	// Degree is the number of parallel chunk executors (default 2).
	Degree int
	// RM supplies placements; Recruit constrains them.
	RM      *grid.ResourceManager
	Recruit grid.Request
	// Chunk is applied to every scattered chunk; nil is identity.
	Chunk ChunkFn
	// Reduce, when non-nil, folds the gathered chunks into one payload;
	// otherwise the chunks are concatenated in order (plain gather).
	Reduce ReduceFn
	// ChunkWork is the nominal per-chunk service time.
	ChunkWork time.Duration
}

// NewMap validates cfg and builds the skeleton.
func NewMap(name string, cfg MapConfig) (*Map, error) {
	if cfg.RM == nil {
		return nil, errors.New("skel: map needs a resource manager")
	}
	if cfg.Degree <= 0 {
		cfg.Degree = 2
	}
	return &Map{name: name, env: cfg.Env, cfg: cfg}, nil
}

// Name implements Stage.
func (m *Map) Name() string { return m.name }

// Run implements Stage. A map stage drains on cancel: it keeps applying
// until its input closes.
func (m *Map) Run(_ context.Context, in <-chan *Task, out chan<- *Task) {
	for t := range in {
		res, err := m.Apply(t)
		if err != nil {
			// A map with no recruitable resources degrades to sequential
			// execution on the calling goroutine.
			res = m.sequential(t)
		}
		out <- res
	}
	close(out)
}

// Apply runs one task through the scatter/compute/gather cycle.
func (m *Map) Apply(t *Task) (*Task, error) {
	chunks := Scatter(t.Payload, m.cfg.Degree)
	nodes := make([]*grid.Node, len(chunks))
	for i := range chunks {
		n, err := m.cfg.RM.Recruit(m.cfg.Recruit)
		if err != nil {
			for _, prev := range nodes[:i] {
				prev.Release()
			}
			return nil, fmt.Errorf("skel: map %s: %w", m.name, err)
		}
		nodes[i] = n
	}
	results := make([][]byte, len(chunks))
	var wg sync.WaitGroup
	for i, chunk := range chunks {
		wg.Add(1)
		go func(i int, chunk []byte) {
			defer wg.Done()
			defer nodes[i].Release()
			m.env.SleepScaled(nodes[i].ServiceTime(m.cfg.ChunkWork))
			if m.cfg.Chunk != nil {
				chunk = m.cfg.Chunk(chunk)
			}
			results[i] = chunk
		}(i, chunk)
	}
	wg.Wait()
	return m.gather(t, results), nil
}

func (m *Map) sequential(t *Task) *Task {
	chunks := Scatter(t.Payload, m.cfg.Degree)
	results := make([][]byte, len(chunks))
	for i, chunk := range chunks {
		m.env.SleepScaled(m.cfg.ChunkWork)
		if m.cfg.Chunk != nil {
			chunk = m.cfg.Chunk(chunk)
		}
		results[i] = chunk
	}
	return m.gather(t, results)
}

func (m *Map) gather(t *Task, results [][]byte) *Task {
	out := &Task{ID: t.ID, Work: t.Work, Created: t.Created}
	if m.cfg.Reduce != nil && len(results) > 0 {
		acc := results[0]
		for _, r := range results[1:] {
			acc = m.cfg.Reduce(acc, r)
		}
		out.Payload = acc
		return out
	}
	return out.withGathered(results)
}

func (t *Task) withGathered(results [][]byte) *Task {
	total := 0
	for _, r := range results {
		total += len(r)
	}
	t.Payload = make([]byte, 0, total)
	for _, r := range results {
		t.Payload = append(t.Payload, r...)
	}
	return t
}

// Scatter splits payload into at most parts contiguous chunks of balanced
// size (the scatter dispatch of functional replication). Fewer chunks are
// returned when the payload is shorter than parts; an empty payload yields
// one empty chunk.
func Scatter(payload []byte, parts int) [][]byte {
	if parts <= 0 {
		parts = 1
	}
	if len(payload) == 0 {
		return [][]byte{nil}
	}
	if parts > len(payload) {
		parts = len(payload)
	}
	chunks := make([][]byte, 0, parts)
	base := len(payload) / parts
	extra := len(payload) % parts
	off := 0
	for i := 0; i < parts; i++ {
		size := base
		if i < extra {
			size++
		}
		chunks = append(chunks, payload[off:off+size])
		off += size
	}
	return chunks
}

package skel

import (
	"sync"
	"sync/atomic"
)

// queue is the per-worker input queue of a farm. Unlike a channel it
// supports the reconfiguration actuators: draining for rebalance, stealing
// on worker removal, and length observation for the QueueVarianceBean.
//
// Storage is a slice with a head cursor rather than a reslice-on-pop
// ([1:]) deque: popping advances head and pushing compacts the consumed
// prefix back to the front before growing, so a queue whose length is
// bounded in steady state reuses one backing array forever — the 0
// allocs/op budget of the batched hot path counts every push.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*envelope
	head   int          // items[:head] have been popped
	size   atomic.Int64 // mirrors len(items)-head; readable without mu
	closed bool
	failed bool // the owning worker crashed; items are stranded until recovery
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// appendLocked adds one envelope, recycling the consumed prefix of the
// backing array instead of growing when possible. Callers hold q.mu.
func (q *queue) appendLocked(t *envelope) {
	if len(q.items) == cap(q.items) && q.head > 0 {
		n := copy(q.items, q.items[q.head:])
		for i := n; i < len(q.items); i++ {
			q.items[i] = nil
		}
		q.items = q.items[:n]
		q.head = 0
	}
	q.items = append(q.items, t)
	q.size.Add(1)
}

// push appends a task. Pushing to a closed or failed queue reports false
// and leaves the task with the caller (it must be re-dispatched elsewhere).
// Refusing failed queues matters now that pushes happen outside Farm.mu: a
// task sent to a worker that crashed — and whose stranded queue was already
// drained by RecoverWorker — would otherwise land in an orphaned queue and
// be lost.
func (q *queue) push(t *envelope) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.failed {
		return false
	}
	q.appendLocked(t)
	q.cond.Signal()
	return true
}

// pop blocks until a task is available, the queue is closed and empty, or
// the queue has failed. On failure the remaining items stay stranded in
// the queue for the fault-tolerance manager to recover.
func (q *queue) pop() (*envelope, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head == len(q.items) && !q.closed && !q.failed {
		q.cond.Wait()
	}
	if q.failed || q.head == len(q.items) {
		return nil, false
	}
	t := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	q.size.Add(-1)
	return t, true
}

// close marks the queue closed; pending items remain poppable.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// fail marks the owning worker crashed, waking it so it can terminate.
func (q *queue) fail() {
	q.mu.Lock()
	q.failed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// restore re-inserts tasks that were already accepted into the farm (by
// rebalance or worker removal). Unlike push it succeeds even on a closed
// or failed queue: closing only forbids *new* input, while redistributed
// tasks must never be lost.
func (q *queue) restore(items []*envelope) {
	if len(items) == 0 {
		return
	}
	q.mu.Lock()
	for _, t := range items {
		q.appendLocked(t)
	}
	q.cond.Broadcast()
	q.mu.Unlock()
}

// drain removes and returns every queued task (the rebalance actuator
// collects all queues and redistributes).
func (q *queue) drain() []*envelope {
	q.mu.Lock()
	defer q.mu.Unlock()
	items := append([]*envelope(nil), q.items[q.head:]...)
	for i := range q.items {
		q.items[i] = nil
	}
	q.items = q.items[:0]
	q.head = 0
	q.size.Add(-int64(len(items)))
	return items
}

// len returns the current queue length from the atomic mirror, without
// taking the queue lock. OnDemand dispatch compares every worker's length
// per task, so this read must not contend with the workers' pop loops; the
// value can be one update stale against a concurrent push/pop, which is
// harmless for scheduling and for the QueueVarianceBean.
func (q *queue) len() int {
	return int(q.size.Load())
}

package skel

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/security"
	"repro/internal/telemetry"
)

// countingExec is a loopback stand-in for a remote session: it executes
// nothing but counts how many envelopes were routed across the transport
// seam.
type countingExec struct{ execs *atomic.Int64 }

func (c countingExec) Exec(_ telemetry.TraceContext, _ uint64, _ time.Duration, _ security.Codec, sealed []byte) ([]byte, int64, error) {
	c.execs.Add(1)
	return sealed, 0, nil
}
func (c countingExec) Rekey(codec security.Codec) (security.Codec, error) { return codec, nil }
func (c countingExec) Close() error                                       { return nil }

// TestRedistributionHonorsSelector pins the unified decision path on the
// redistribution actuators: with the Local escape hatch set, remote-backed
// workers may join the pool (recruitment is the capacity manager's call),
// but no envelope may reach them — not from the dispatcher, and not from
// Rebalance, RemoveWorker or RecoverWorker moving queued tasks around.
func TestRedistributionHonorsSelector(t *testing.T) {
	local := grid.Domain{Name: "trusted.local", Trusted: true}
	remote := grid.Domain{Name: "edge.remote", Trusted: false}
	nodes := []*grid.Node{
		grid.NewNode("l0", local, 4, 1.0),
		grid.NewNode("l1", local, 4, 1.0),
		grid.NewNode("r0", remote, 4, 1.0),
		grid.NewNode("r1", remote, 4, 1.0),
	}
	var execs atomic.Int64
	f, err := NewFarm(FarmConfig{
		Name: "pinned", Env: fastEnv(),
		RM:             grid.NewResourceManager(nodes...),
		InitialWorkers: 2,
		Selector:       Selector{Local: true},
		Executors: func(n *grid.Node) (Executor, error) {
			if n.Domain.Trusted {
				return nil, nil // loopback
			}
			return countingExec{execs: &execs}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	in := make(chan *Task)
	out := make(chan *Task, 256)
	done := make(chan struct{})
	var results int
	go func() {
		for range out {
			results++
		}
		close(done)
	}()
	go f.Run(nil, in, out)

	feed := func(n int) {
		for i := 0; i < n; i++ {
			in <- &Task{ID: NextTaskID(), Payload: []byte("p"), Work: time.Second}
		}
	}
	feed(40)
	// Grow onto the remote nodes (trusted ranks first, so the two locals
	// are taken; the next adds recruit remote capacity), then exercise
	// every redistribution actuator while tasks are queued.
	if _, err := f.AddWorker(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddWorker(); err != nil {
		t.Fatal(err)
	}
	feed(40)
	f.Rebalance()
	var victim string
	for _, w := range f.Workers() {
		if !w.Remote {
			victim = w.ID
			break
		}
	}
	if err := f.KillWorker(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := f.RecoverWorker(victim); err != nil {
		t.Fatal(err)
	}
	feed(40)
	f.Rebalance()
	close(in)
	<-done

	if got := execs.Load(); got != 0 {
		t.Fatalf("%d envelopes crossed the transport seam despite Selector.Local", got)
	}
	if results != 120 {
		t.Fatalf("collected %d results, want 120", results)
	}
}

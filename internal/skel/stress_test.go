package skel

import (
	"errors"
	"testing"
)

// TestFarmErrorDropCounting checks that errors overflowing the 16-slot
// Errors() buffer are counted and surfaced via Stats instead of vanishing:
// most harnesses never drain the channel.
func TestFarmErrorDropCounting(t *testing.T) {
	f, err := NewFarm(FarmConfig{Name: "errs", Env: fastEnv(), RM: smpRM(2)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		f.reportErr(errors.New("boom"))
	}
	if got := f.Stats().ErrorsDropped; got != 4 {
		t.Fatalf("ErrorsDropped = %d, want 4 (20 reported, 16 buffered)", got)
	}
	// Draining the channel yields exactly the buffered 16.
	n := 0
	for {
		select {
		case <-f.Errors():
			n++
			continue
		default:
		}
		break
	}
	if n != 16 {
		t.Fatalf("drained %d buffered errors, want 16", n)
	}
}

package skel

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/runtime/leaktest"
	"repro/internal/security"
)

// TestFarmDispatchActuatorStress hammers every sensor and actuator —
// Stats, Rebalance, SetCodec, AddWorker/RemoveWorker — while the
// dispatcher pumps a stream, and asserts exactly-once delivery. Under
// -race this is the safety net for the off-lock dispatch path: payload
// encoding and the queue push happen outside Farm.mu, so target workers
// can be removed, rebalanced or re-keyed between selection and push and
// every such interleaving must still conserve the stream.
func TestFarmDispatchActuatorStress(t *testing.T) {
	defer leaktest.Check(t)()
	const total = 800
	f, err := NewFarm(FarmConfig{
		Name: "stress", Env: fastEnv(), RM: smpRM(64), InitialWorkers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan *Task, 64)
	out := make(chan *Task, total)
	seen := make(chan map[uint64]int, 1)
	go func() {
		m := map[uint64]int{}
		for tsk := range out {
			m[tsk.ID]++
		}
		seen <- m
	}()
	done := make(chan struct{})
	go func() { f.Run(context.Background(), in, out); close(done) }()
	waitFor(t, func() bool { return len(f.Workers()) == 4 })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	hammer := func(fn func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					fn()
					runtime.Gosched()
				}
			}
		}()
	}
	hammer(func() { _ = f.Stats() })
	hammer(func() { _ = f.Workers() })
	hammer(func() { f.Rebalance() })
	secure := security.MustAESGCM(security.NewRandomKey(), nil, 0)
	codecFlip := 0
	hammer(func() {
		ws := f.Workers()
		if len(ws) == 0 {
			return
		}
		var c security.Codec = security.Plain{}
		if codecFlip%2 == 0 {
			c = secure
		}
		codecFlip++
		_ = f.SetCodec(ws[codecFlip%len(ws)].ID, c) // worker may be gone; ignore
	})
	grow := true
	hammer(func() {
		if grow {
			f.AddWorker() // may fail post-stream or on exhaustion; ignore
		} else {
			f.RemoveWorker() // may hit ErrLastWorker; ignore
		}
		grow = !grow
	})

	ids := make(map[uint64]bool, total)
	for i := 0; i < total; i++ {
		id := NextTaskID()
		ids[id] = true
		in <- &Task{ID: id, Payload: []byte("stress-payload")}
	}
	close(in)
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("farm did not terminate under actuator stress")
	}
	close(stop)
	wg.Wait()

	m := <-seen
	if len(m) != total {
		t.Fatalf("%d distinct tasks delivered, want %d", len(m), total)
	}
	for id, n := range m {
		if !ids[id] || n != 1 {
			t.Fatalf("task %d delivered %d times", id, n)
		}
	}
	if dropped := f.Stats().ErrorsDropped; dropped != 0 {
		t.Fatalf("ErrorsDropped = %d under stress, want 0", dropped)
	}
}

// TestFarmErrorDropCounting checks that errors overflowing the 16-slot
// Errors() buffer are counted and surfaced via Stats instead of vanishing:
// most harnesses never drain the channel.
func TestFarmErrorDropCounting(t *testing.T) {
	f, err := NewFarm(FarmConfig{Name: "errs", Env: fastEnv(), RM: smpRM(2)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		f.reportErr(errors.New("boom"))
	}
	if got := f.Stats().ErrorsDropped; got != 4 {
		t.Fatalf("ErrorsDropped = %d, want 4 (20 reported, 16 buffered)", got)
	}
	// Draining the channel yields exactly the buffered 16.
	n := 0
	for {
		select {
		case <-f.Errors():
			n++
			continue
		default:
		}
		break
	}
	if n != 16 {
		t.Fatalf("drained %d buffered errors, want 16", n)
	}
}

package skel

import (
	"time"

	"repro/internal/grid"
	"repro/internal/security"
	"repro/internal/telemetry"
)

// Executor abstracts where a worker's compute step runs — the transport
// seam of the cross-process dispatch plane. A nil Executor on a worker
// means loopback: the task is decoded, slept and transformed in-process,
// exactly as before the plane existed. A non-nil Executor ships the sealed
// envelope to another process (internal/wire implements it over a framed
// TCP connection) and blocks for the sealed result, so the bytes that
// cross the machine boundary are precisely the bytes the binding codec
// produced — the AES-GCM frames the security concern is about.
//
// Failure contract: any Exec error (connection dropped, remote rejected
// the frame, result did not authenticate) is reported by the farm as a
// worker crash, which strands the worker's queue for the fault-tolerance
// manager to recover — a broken link and a dead machine are the same
// fault.
type Executor interface {
	// Exec runs one envelope remotely: sealed is the payload encoded with
	// the binding codec (passed alongside so the transport can recover its
	// key epoch), work the task's nominal service time, tc the propagated
	// trace context (the zero value for unsampled tasks). It returns the
	// result payload, still sealed with the same binding codec, plus the
	// remote-measured execution nanoseconds — reported in the remote clock
	// and joined with the local round trip by interval arithmetic, never by
	// cross-machine timestamp comparison.
	Exec(tc telemetry.TraceContext, taskID uint64, work time.Duration, codec security.Codec, sealed []byte) (result []byte, execNanos int64, err error)
	// Rekey makes c the binding codec on the remote end before any task
	// sealed with it can arrive (the two-phase rekey across the wire: the
	// new key travels inside a control frame sealed under the link's
	// master codec). It returns the codec the farm must seal with from now
	// on — a wrapper carrying the transport's key epoch.
	Rekey(c security.Codec) (security.Codec, error)
	// Close releases the session. It must be idempotent.
	Close() error
}

// ExecutorFactory supplies per-node executors at recruitment time. It
// returns (nil, nil) for nodes that execute in-process — the loopback
// default — and a live session for nodes advertised by a remote workerd.
// An error aborts the worker addition and releases the recruited node.
type ExecutorFactory func(node *grid.Node) (Executor, error)

// Selector is the worker-admission constraint of the unified dispatch
// decision path (the RFC-010 worker-selector shape): a task may only be
// routed to workers whose placement satisfies it. The zero Selector
// admits every worker.
type Selector struct {
	// Labels admits only workers on nodes carrying every listed key/value
	// pair (subset match against grid.Node.Labels).
	Labels map[string]string
	// TrustedOnly admits only workers in trusted domains.
	TrustedOnly bool
	// Local is the escape hatch: admit only in-process (loopback) workers,
	// pinning the farm to the coordinator even when remote capacity is
	// registered.
	Local bool
}

// admits reports whether worker w may receive tasks under the selector.
func (s Selector) admits(w *worker) bool {
	if s.Local && w.exec != nil {
		return false
	}
	if s.TrustedOnly && !w.node.Domain.Trusted {
		return false
	}
	return w.node.HasLabels(s.Labels)
}

// decideTarget is the unified dispatch decision function: every task-send
// entry path routes through it — the dispatcher's streaming route, the
// reroute slow path when a target vanishes mid-send, park-flush after a
// crash storm, and post-recovery sends. avail must already be filtered to
// live, selector-admitted workers (admittedLocked); decideTarget only
// picks among them by policy. rr is the round-robin cursor to advance;
// only the dispatcher goroutine owns one, every other entry path passes
// nil and falls back to shortest-queue, which is always safe. A nil
// return means no admissible worker exists and the caller must park or
// drop the task. Broadcast callers fan out over avail themselves.
func (f *Farm) decideTarget(avail []*worker, rr *int) *worker {
	if i := f.decideTargetIndex(avail, rr); i >= 0 {
		return avail[i]
	}
	return nil
}

// decideTargetIndex is decideTarget returning the index into avail (-1 for
// none); the batched dispatcher needs the index to address its per-worker
// pending buffer, which is parallel to the routeTable snapshot.
func (f *Farm) decideTargetIndex(avail []*worker, rr *int) int {
	if len(avail) == 0 {
		return -1
	}
	if f.cfg.Dispatch == RoundRobin && rr != nil {
		// The cursor wraps instead of growing forever: an unbounded cursor
		// eventually overflows, the modulo of the negative value goes
		// negative, and the index is out of bounds. Normalizing first also
		// repairs a cursor seeded (or left) beyond the current pool size
		// without changing any in-range pick sequence.
		idx := *rr
		if idx < 0 || idx >= len(avail) {
			idx %= len(avail)
			if idx < 0 {
				idx += len(avail)
			}
		}
		*rr = (idx + 1) % len(avail)
		return idx
	}
	// OnDemand (and every non-dispatcher entry path): shortest queue, by
	// the lock-free length mirrors.
	best := 0
	for i := 1; i < len(avail); i++ {
		if avail[i].queue.len() < avail[best].queue.len() {
			best = i
		}
	}
	return best
}

// admittedLocked appends the live, selector-admitted workers (excluding
// skip, which may be nil) to buf and returns it. Callers hold f.mu.
func (f *Farm) admittedLocked(buf []*worker, skip *worker) []*worker {
	for _, w := range f.workers {
		if w == skip || w.failed || w.exited {
			continue
		}
		if !f.cfg.Selector.admits(w) {
			continue
		}
		buf = append(buf, w)
	}
	return buf
}

// restoreTargetsLocked picks the live workers eligible to receive
// redistributed envelopes (rebalance, remove, recover), excluding skip.
// Redistribution is a routing decision like any other, so it prefers
// selector-admitted workers; but if the selector admits no live worker the
// full live set is used — exactly-once outranks placement preference, and
// stranding recovered tasks on a constraint would deadlock the run.
// Callers hold f.mu.
func (f *Farm) restoreTargetsLocked(skip *worker) []*worker {
	if targets := f.admittedLocked(nil, skip); len(targets) > 0 {
		return targets
	}
	var live []*worker
	for _, w := range f.workers {
		if w == skip || w.failed || w.exited {
			continue
		}
		live = append(live, w)
	}
	return live
}

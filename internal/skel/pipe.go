package skel

import (
	"context"
	"errors"
	"sync"
)

// Pipe composes stages into a pipeline: stage i runs concurrently with
// stage i±1, connected by buffered channels.
type Pipe struct {
	name   string
	stages []Stage
	buffer int
}

// NewPipe builds a pipeline over the given stages (at least one).
func NewPipe(name string, buffer int, stages ...Stage) (*Pipe, error) {
	if len(stages) == 0 {
		return nil, errors.New("skel: pipeline needs at least one stage")
	}
	if buffer < 0 {
		buffer = 0
	}
	return &Pipe{name: name, stages: stages, buffer: buffer}, nil
}

// Name implements Stage.
func (p *Pipe) Name() string { return p.name }

// Stages returns the pipeline's stages in order.
func (p *Pipe) Stages() []Stage {
	out := make([]Stage, len(p.stages))
	copy(out, p.stages)
	return out
}

// Run implements Stage: it wires the stages with channels and blocks until
// the last stage finishes. ctx flows into every stage; canceling it stops
// the pipeline's intake while the downstream stages drain (see Stage).
func (p *Pipe) Run(ctx context.Context, in <-chan *Task, out chan<- *Task) {
	if ctx == nil {
		ctx = context.Background()
	}
	var wg sync.WaitGroup
	cur := in
	for i, st := range p.stages {
		var next chan *Task
		isLast := i == len(p.stages)-1
		if !isLast {
			next = make(chan *Task, p.buffer)
		}
		wg.Add(1)
		go func(s Stage, sin <-chan *Task, sout chan<- *Task) {
			defer wg.Done()
			s.Run(ctx, sin, sout)
		}(st, cur, pickOut(next, out, isLast))
		cur = next
	}
	wg.Wait()
}

func pickOut(next chan *Task, out chan<- *Task, isLast bool) chan<- *Task {
	if isLast {
		return out
	}
	return next
}

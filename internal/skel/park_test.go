package skel

import (
	"context"
	"testing"
	"time"

	"repro/internal/runtime/leaktest"
)

// TestDispatchParksWhenAllWorkersCrashed proves the no-loss invariant under
// a total crash: tasks dispatched while every worker is failed are parked,
// not dropped, and flushed to the next worker that joins the pool — so a
// correlated crash storm delays the stream instead of losing part of it.
func TestDispatchParksWhenAllWorkersCrashed(t *testing.T) {
	defer leaktest.Check(t)()
	f, err := NewFarm(FarmConfig{
		Name: "park", Env: fastEnv(), RM: smpRM(8), InitialWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	const n = 24
	in := make(chan *Task)
	out := make(chan *Task, n+8)
	runDone := make(chan struct{})
	go func() { f.Run(context.Background(), in, out); close(runDone) }()

	// Feed a few tasks so both workers exist, then kill them all.
	tasks := mkTasks(n, 50*time.Millisecond)
	for i := 0; i < 4; i++ {
		in <- tasks[i]
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		killed := 0
		for _, w := range f.Workers() {
			if w.Failed {
				killed++
				continue
			}
			if err := f.KillWorker(w.ID); err == nil {
				killed++
			}
		}
		if killed >= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Everything dispatched now has no live worker to go to: it must park.
	for i := 4; i < n; i++ {
		in <- tasks[i]
	}
	close(in)

	// Recovery: a fresh worker joins (flushing the parked tasks), then the
	// crashed workers' stranded queues are recovered onto it.
	if _, err := f.AddRecoveryWorker(); err != nil {
		t.Fatalf("AddRecoveryWorker: %v", err)
	}
	for _, w := range f.Workers() {
		if w.Failed {
			if _, err := f.RecoverWorker(w.ID); err != nil {
				t.Fatalf("RecoverWorker(%s): %v", w.ID, err)
			}
		}
	}

	seen := map[uint64]int{}
	for r := range out {
		seen[r.ID]++
	}
	<-runDone
	if len(seen) != n {
		t.Fatalf("collected %d distinct tasks, want %d (parked tasks lost)", len(seen), n)
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("task %d collected %d times (exactly-once violated)", id, c)
		}
	}
}

package skel

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/security"
)

// This file implements the batched dispatch hot path: up to DispatchBatch
// tasks per worker coalesce into one sealed multi-task envelope — one codec
// seal, one queue push and one result-channel hop per batch — with a
// flush-on-idle deadline bounding latency under trickle load. Target
// selection still runs per task through decideTarget, so routing semantics
// are identical to unbatched dispatch.
//
// Batch blob layout (plaintext; the whole blob is then sealed once by the
// binding codec):
//
//	uint32 count
//	count × { uint64 id | int64 work(ns) | uint32 len | payload }
//
// Result blob layout (sealed the same way on the return path):
//
//	uint32 count
//	count × { uint64 id | uint32 len | payload }
//
// All integers are big-endian, matching the wire package's framing.

// BatchExecutor is the optional batch extension of Executor: a transport
// session that implements it ships a whole sealed batch blob in one frame
// and returns the sealed result blob, amortizing framing and sealing the
// same way the loopback path does. Sessions without it fall back to
// member-by-member Exec.
type BatchExecutor interface {
	// ExecBatch runs one sealed batch blob remotely. sealed is the blob
	// encoded with the binding codec (passed alongside so the transport can
	// recover its key epoch); the result blob comes back sealed with the
	// same codec.
	ExecBatch(codec security.Codec, sealed []byte) ([]byte, error)
}

// BatchEntry is one member of a decoded batch blob, as seen by the remote
// execution server.
type BatchEntry struct {
	ID      uint64
	Work    time.Duration
	Payload []byte
}

// appendBatchBlob packs the tasks into a batch blob appended onto dst.
// override, when positive, replaces every member's nominal work (the farm
// applies WorkOverride at pack time so the remote server needs no config).
func appendBatchBlob(dst []byte, tasks []*Task, override time.Duration) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(tasks)))
	for _, t := range tasks {
		work := t.Work
		if override > 0 {
			work = override
		}
		dst = binary.BigEndian.AppendUint64(dst, t.ID)
		dst = binary.BigEndian.AppendUint64(dst, uint64(work))
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(t.Payload)))
		dst = append(dst, t.Payload...)
	}
	return dst
}

// errBlob reports a structurally invalid batch or result blob.
func errBlob(what string) error { return fmt.Errorf("skel: malformed batch %s blob", what) }

// unpackBatchInto decodes a batch blob in place: member payloads become
// subslices of blob (zero copies) assigned onto the envelope's tasks, which
// must match the blob's entries in order and ID.
func unpackBatchInto(blob []byte, tasks []*Task) error {
	if len(blob) < 4 {
		return errBlob("task")
	}
	count := int(binary.BigEndian.Uint32(blob))
	if count != len(tasks) {
		return fmt.Errorf("skel: batch blob carries %d tasks, envelope %d", count, len(tasks))
	}
	off := 4
	for _, t := range tasks {
		if len(blob)-off < 20 {
			return errBlob("task")
		}
		id := binary.BigEndian.Uint64(blob[off:])
		n := int(binary.BigEndian.Uint32(blob[off+16:]))
		off += 20
		if id != t.ID {
			return fmt.Errorf("skel: batch blob entry %d does not match envelope task %d", id, t.ID)
		}
		if n < 0 || len(blob)-off < n {
			return errBlob("task")
		}
		t.Payload = blob[off : off+n : off+n]
		off += n
	}
	if off != len(blob) {
		return errBlob("task")
	}
	return nil
}

// ParseBatchBlob decodes a batch blob into its entries (payloads are
// subslices of blob). It is the remote execution server's view of a batch
// frame; internal/wire and workerd use it.
func ParseBatchBlob(blob []byte) ([]BatchEntry, error) {
	if len(blob) < 4 {
		return nil, errBlob("task")
	}
	count := int(binary.BigEndian.Uint32(blob))
	if count < 0 || count > maxDispatchBatch {
		return nil, errBlob("task")
	}
	entries := make([]BatchEntry, 0, count)
	off := 4
	for i := 0; i < count; i++ {
		if len(blob)-off < 20 {
			return nil, errBlob("task")
		}
		id := binary.BigEndian.Uint64(blob[off:])
		work := time.Duration(binary.BigEndian.Uint64(blob[off+8:]))
		n := int(binary.BigEndian.Uint32(blob[off+16:]))
		off += 20
		if n < 0 || len(blob)-off < n {
			return nil, errBlob("task")
		}
		entries = append(entries, BatchEntry{ID: id, Work: work, Payload: blob[off : off+n : off+n]})
		off += n
	}
	if off != len(blob) {
		return nil, errBlob("task")
	}
	return entries, nil
}

// AppendBatchResult packs result entries (Work is ignored) into a result
// blob appended onto dst — the server-side counterpart of unpackResultInto.
func AppendBatchResult(dst []byte, results []BatchEntry) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(results)))
	for _, r := range results {
		dst = binary.BigEndian.AppendUint64(dst, r.ID)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Payload)))
		dst = append(dst, r.Payload...)
	}
	return dst
}

// unpackResultInto validates a whole result blob against the envelope's
// tasks and only then assigns the result payloads. The two-pass shape is
// deliberate: a blob that fails validation halfway must leave every member
// payload untouched, because the envelope strands for recovery and a later
// recompute would otherwise start from half-transformed payloads.
func unpackResultInto(blob []byte, tasks []*Task) error {
	if len(blob) < 4 {
		return errBlob("result")
	}
	count := int(binary.BigEndian.Uint32(blob))
	if count != len(tasks) {
		return fmt.Errorf("skel: batch result carries %d entries, envelope %d tasks", count, len(tasks))
	}
	off := 4
	for _, t := range tasks {
		if len(blob)-off < 12 {
			return errBlob("result")
		}
		id := binary.BigEndian.Uint64(blob[off:])
		n := int(binary.BigEndian.Uint32(blob[off+8:]))
		off += 12
		if id != t.ID {
			return fmt.Errorf("skel: batch result entry %d does not match envelope task %d", id, t.ID)
		}
		if n < 0 || len(blob)-off < n {
			return errBlob("result")
		}
		off += n
	}
	if off != len(blob) {
		return errBlob("result")
	}
	off = 4
	for _, t := range tasks {
		n := int(binary.BigEndian.Uint32(blob[off+8:]))
		off += 12
		t.Payload = blob[off : off+n : off+n]
		off += n
	}
	return nil
}

// runBatchedDispatcher is the DispatchBatch > 1 replacement for the plain
// per-task dispatch loop in Run. It buffers tasks per worker against the
// current routeTable snapshot and flushes a worker's buffer as one sealed
// batch envelope when it reaches DispatchBatch, when the flush deadline
// fires, when the route table is swapped (membership changed — the buffers
// are keyed by the old snapshot), or when the input closes.
func (f *Farm) runBatchedDispatcher(in <-chan *Task) {
	size := f.cfg.DispatchBatch
	flushEvery := f.cfg.BatchFlush

	var (
		tbl      *routeTable
		pend     [][]*Task // parallel to tbl.workers
		buffered int
	)
	timer := time.NewTimer(flushEvery)
	if !timer.Stop() {
		<-timer.C
	}
	timerOn := false
	defer timer.Stop()

	flushIdx := func(i int) {
		tasks := pend[i]
		if len(tasks) == 0 {
			return
		}
		buffered -= len(tasks)
		f.flushBatch(tbl.workers[i], tasks)
		pend[i] = tasks[:0]
	}
	flushAll := func() {
		for i := range pend {
			flushIdx(i)
		}
	}
	// syncRoutes re-reads the snapshot; on a swap the old buffers flush to
	// their old (possibly departed — their queues refuse, the members
	// re-route) targets and fresh buffers are built. Membership changes are
	// rare, so the rebuild allocation is off the steady-state path.
	syncRoutes := func() {
		cur := f.routes.Load()
		if cur == tbl {
			return
		}
		flushAll()
		tbl = cur
		if cap(pend) >= len(tbl.workers) {
			pend = pend[:len(tbl.workers)]
			for i := range pend {
				pend[i] = pend[i][:0]
			}
		} else {
			pend = make([][]*Task, len(tbl.workers))
		}
	}
	dispatchOne := func(t *Task) {
		var start time.Time
		ins := f.cfg.Instruments
		if ins != nil {
			start = time.Now()
		}
		syncRoutes()
		avail := tbl.workers
		if f.cfg.Dispatch == Broadcast {
			if len(avail) == 0 {
				f.sendRouted(t, nil)
			} else {
				for i := range avail {
					pend[i] = append(pend[i], t.Clone())
					buffered++
					if len(pend[i]) >= size {
						flushIdx(i)
					}
				}
			}
		} else if idx := f.decideTargetIndex(avail, &f.rrIndex); idx < 0 {
			f.sendRouted(t, nil)
		} else {
			pend[idx] = append(pend[idx], t)
			buffered++
			if len(pend[idx]) >= size {
				flushIdx(idx)
			}
		}
		if ins != nil {
			ins.Dispatch.ObserveDuration(time.Since(start))
		}
	}

	for {
		select {
		case t, ok := <-in:
			if !ok {
				flushAll()
				return
			}
			arrivals := 1
			dispatchOne(t)
			// Greedy drain: while input is immediately available, stay on
			// the cheap non-blocking path — no timer select, and the
			// arrival meter is marked once per burst instead of per task.
			// Size-triggered flushes still happen inside dispatchOne.
		drain:
			for {
				select {
				case t, ok := <-in:
					if !ok {
						f.arrival.MarkN(arrivals)
						flushAll()
						return
					}
					arrivals++
					dispatchOne(t)
				default:
					break drain
				}
			}
			f.arrival.MarkN(arrivals)
			if buffered > 0 && !timerOn {
				timer.Reset(flushEvery)
				timerOn = true
			}
		case <-timer.C:
			// The deadline flush: partial batches must not wait for input
			// that may never come. A fire with nothing buffered (everything
			// already flushed full) is a cheap no-op.
			timerOn = false
			syncRoutes()
			flushAll()
		}
	}
}

// flushBatch seals one worker's buffered tasks into a single batch envelope
// and pushes it. On a refused push (the worker vanished between buffering
// and flush) every member re-enters the unified decision path — except
// under Broadcast, where the members are clones whose siblings were already
// delivered, so they are dropped exactly like a refused single clone.
func (f *Farm) flushBatch(w *worker, tasks []*Task) {
	codec := w.getCodec()
	f.packBuf = appendBatchBlob(f.packBuf[:0], tasks, f.cfg.WorkOverride)
	env := getEnv()
	var sealStart time.Time
	ins := f.cfg.Instruments
	if ins != nil {
		sealStart = time.Now()
	}
	wire, err := security.AppendEncode(codec, env.wire[:0], f.packBuf)
	if ins != nil {
		ins.Seal.ObserveDuration(time.Since(sealStart))
	}
	if err != nil {
		putEnv(env)
		f.reportErr(fmt.Errorf("skel: farm %s batch encode for %s: %w", f.cfg.Name, w.id, err))
		return
	}
	env.tasks = append(env.tasks[:0], tasks...)
	env.wire = wire
	env.codec = codec
	env.batch = true
	if f.cfg.Auditor != nil {
		// One audit record per member task, not per frame: leak accounting
		// stays invariant under the batching knob, so the security
		// experiments compare across modes.
		must := false
		if f.cfg.Policy != nil {
			must = f.cfg.Policy.RequireSecure(f.cfg.DispatchNode, w.node)
		}
		for range tasks {
			f.cfg.Auditor.RecordSend(w.id, must, codec.Secure())
		}
	}
	if !w.queue.push(env) {
		if f.cfg.Dispatch != Broadcast {
			for _, t := range env.tasks {
				f.sendRouted(t, w)
			}
		}
		putEnv(env)
	}
}

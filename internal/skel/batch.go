package skel

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/security"
	"repro/internal/telemetry"
)

// This file implements the batched dispatch hot path: up to DispatchBatch
// tasks per worker coalesce into one sealed multi-task envelope — one codec
// seal, one queue push and one result-channel hop per batch — with a
// flush-on-idle deadline bounding latency under trickle load. Target
// selection still runs per task through decideTarget, so routing semantics
// are identical to unbatched dispatch.
//
// Batch blob layout (plaintext; the whole blob is then sealed once by the
// binding codec):
//
//	trace context (17 bytes: uint64 traceID | uint64 spanID | flags)
//	uint32 count
//	count × { uint64 id | int64 work(ns) | uint32 len | payload }
//
// Result blob layout (sealed the same way on the return path):
//
//	uint32 count
//	count × { uint64 id | uint32 len | payload }
//
// All integers are big-endian, matching the wire package's framing. The
// trace context travels inside the seal (unlike a single exec frame, which
// carries it in the frame header) because a batch blob is the envelope:
// whatever transport or queue it crosses, the sampled bit and trace id
// stay with the members, and an unsampled batch pays 17 zero bytes.

// BatchExecutor is the optional batch extension of Executor: a transport
// session that implements it ships a whole sealed batch blob in one frame
// and returns the sealed result blob, amortizing framing and sealing the
// same way the loopback path does. Sessions without it fall back to
// member-by-member Exec.
type BatchExecutor interface {
	// ExecBatch runs one sealed batch blob remotely. sealed is the blob
	// encoded with the binding codec (passed alongside so the transport can
	// recover its key epoch); the result blob comes back sealed with the
	// same codec, along with the remote-measured execution nanoseconds for
	// the whole batch (remote clock; see Executor.Exec).
	ExecBatch(codec security.Codec, sealed []byte) (result []byte, execNanos int64, err error)
}

// BatchEntry is one member of a decoded batch blob, as seen by the remote
// execution server.
type BatchEntry struct {
	ID      uint64
	Work    time.Duration
	Payload []byte
}

// appendBatchBlob packs the tasks into a batch blob appended onto dst.
// override, when positive, replaces every member's nominal work (the farm
// applies WorkOverride at pack time so the remote server needs no config).
// tc is the envelope's trace context (zero when unsampled).
func appendBatchBlob(dst []byte, tasks []*Task, override time.Duration, tc telemetry.TraceContext) []byte {
	dst = tc.AppendTo(dst)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(tasks)))
	for _, t := range tasks {
		work := t.Work
		if override > 0 {
			work = override
		}
		dst = binary.BigEndian.AppendUint64(dst, t.ID)
		dst = binary.BigEndian.AppendUint64(dst, uint64(work))
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(t.Payload)))
		dst = append(dst, t.Payload...)
	}
	return dst
}

// errBlob reports a structurally invalid batch or result blob.
func errBlob(what string) error { return fmt.Errorf("skel: malformed batch %s blob", what) }

// unpackBatchInto decodes a batch blob in place: member payloads become
// subslices of blob (zero copies) assigned onto the envelope's tasks, which
// must match the blob's entries in order and ID.
func unpackBatchInto(blob []byte, tasks []*Task) error {
	if len(blob) < telemetry.TraceContextSize+4 {
		return errBlob("task")
	}
	blob = blob[telemetry.TraceContextSize:] // trace context: not needed in-process
	count := int(binary.BigEndian.Uint32(blob))
	if count != len(tasks) {
		return fmt.Errorf("skel: batch blob carries %d tasks, envelope %d", count, len(tasks))
	}
	off := 4
	for _, t := range tasks {
		if len(blob)-off < 20 {
			return errBlob("task")
		}
		id := binary.BigEndian.Uint64(blob[off:])
		n := int(binary.BigEndian.Uint32(blob[off+16:]))
		off += 20
		if id != t.ID {
			return fmt.Errorf("skel: batch blob entry %d does not match envelope task %d", id, t.ID)
		}
		if n < 0 || len(blob)-off < n {
			return errBlob("task")
		}
		t.Payload = blob[off : off+n : off+n]
		off += n
	}
	if off != len(blob) {
		return errBlob("task")
	}
	return nil
}

// ParseBatchBlob decodes a batch blob into its trace context and entries
// (payloads are subslices of blob). It is the remote execution server's
// view of a batch frame; internal/wire and workerd use it.
func ParseBatchBlob(blob []byte) (telemetry.TraceContext, []BatchEntry, error) {
	if len(blob) < telemetry.TraceContextSize+4 {
		return telemetry.TraceContext{}, nil, errBlob("task")
	}
	tc, err := telemetry.ParseTraceContext(blob)
	if err != nil {
		return telemetry.TraceContext{}, nil, err
	}
	blob = blob[telemetry.TraceContextSize:]
	count := int(binary.BigEndian.Uint32(blob))
	if count < 0 || count > maxDispatchBatch {
		return tc, nil, errBlob("task")
	}
	entries := make([]BatchEntry, 0, count)
	off := 4
	for i := 0; i < count; i++ {
		if len(blob)-off < 20 {
			return tc, nil, errBlob("task")
		}
		id := binary.BigEndian.Uint64(blob[off:])
		work := time.Duration(binary.BigEndian.Uint64(blob[off+8:]))
		n := int(binary.BigEndian.Uint32(blob[off+16:]))
		off += 20
		if n < 0 || len(blob)-off < n {
			return tc, nil, errBlob("task")
		}
		entries = append(entries, BatchEntry{ID: id, Work: work, Payload: blob[off : off+n : off+n]})
		off += n
	}
	if off != len(blob) {
		return tc, nil, errBlob("task")
	}
	return tc, entries, nil
}

// AppendBatchResult packs result entries (Work is ignored) into a result
// blob appended onto dst — the server-side counterpart of unpackResultInto.
func AppendBatchResult(dst []byte, results []BatchEntry) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(results)))
	for _, r := range results {
		dst = binary.BigEndian.AppendUint64(dst, r.ID)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Payload)))
		dst = append(dst, r.Payload...)
	}
	return dst
}

// unpackResultInto validates a whole result blob against the envelope's
// tasks and only then assigns the result payloads. The two-pass shape is
// deliberate: a blob that fails validation halfway must leave every member
// payload untouched, because the envelope strands for recovery and a later
// recompute would otherwise start from half-transformed payloads.
func unpackResultInto(blob []byte, tasks []*Task) error {
	if len(blob) < 4 {
		return errBlob("result")
	}
	count := int(binary.BigEndian.Uint32(blob))
	if count != len(tasks) {
		return fmt.Errorf("skel: batch result carries %d entries, envelope %d tasks", count, len(tasks))
	}
	off := 4
	for _, t := range tasks {
		if len(blob)-off < 12 {
			return errBlob("result")
		}
		id := binary.BigEndian.Uint64(blob[off:])
		n := int(binary.BigEndian.Uint32(blob[off+8:]))
		off += 12
		if id != t.ID {
			return fmt.Errorf("skel: batch result entry %d does not match envelope task %d", id, t.ID)
		}
		if n < 0 || len(blob)-off < n {
			return errBlob("result")
		}
		off += n
	}
	if off != len(blob) {
		return errBlob("result")
	}
	off = 4
	for _, t := range tasks {
		n := int(binary.BigEndian.Uint32(blob[off+8:]))
		off += 12
		t.Payload = blob[off : off+n : off+n]
		off += n
	}
	return nil
}

// runBatchedDispatcher is the DispatchBatch > 1 replacement for the plain
// per-task dispatch loop in Run. It buffers tasks per worker against the
// current routeTable snapshot and flushes a worker's buffer as one sealed
// batch envelope when it reaches DispatchBatch, when the flush deadline
// fires, when the route table is swapped (membership changed — the buffers
// are keyed by the old snapshot), or when the input closes.
func (f *Farm) runBatchedDispatcher(in <-chan *Task) {
	size := f.cfg.DispatchBatch
	flushEvery := f.cfg.BatchFlush

	var (
		tbl      *routeTable
		pend     [][]*Task // parallel to tbl.workers
		buffered int
	)
	timer := time.NewTimer(flushEvery)
	if !timer.Stop() {
		<-timer.C
	}
	timerOn := false
	defer timer.Stop()

	flushIdx := func(i int) {
		tasks := pend[i]
		if len(tasks) == 0 {
			return
		}
		buffered -= len(tasks)
		f.flushBatch(tbl.workers[i], tasks)
		pend[i] = tasks[:0]
	}
	flushAll := func() {
		for i := range pend {
			flushIdx(i)
		}
	}
	// syncRoutes re-reads the snapshot; on a swap the old buffers flush to
	// their old (possibly departed — their queues refuse, the members
	// re-route) targets and fresh buffers are built. Membership changes are
	// rare, so the rebuild allocation is off the steady-state path.
	syncRoutes := func() {
		cur := f.routes.Load()
		if cur == tbl {
			return
		}
		flushAll()
		tbl = cur
		if cap(pend) >= len(tbl.workers) {
			pend = pend[:len(tbl.workers)]
			for i := range pend {
				pend[i] = pend[i][:0]
			}
		} else {
			pend = make([][]*Task, len(tbl.workers))
		}
	}
	dispatchOne := func(t *Task) {
		var start time.Time
		ins := f.cfg.Instruments
		if ins != nil {
			start = time.Now()
		}
		syncRoutes()
		avail := tbl.workers
		if f.cfg.Dispatch == Broadcast {
			if len(avail) == 0 {
				f.sendRouted(t, nil)
			} else {
				for i := range avail {
					pend[i] = append(pend[i], t.Clone())
					buffered++
					if len(pend[i]) >= size {
						flushIdx(i)
					}
				}
			}
		} else if idx := f.decideTargetIndex(avail, &f.rrIndex); idx < 0 {
			f.sendRouted(t, nil)
		} else {
			pend[idx] = append(pend[idx], t)
			buffered++
			if len(pend[idx]) >= size {
				flushIdx(idx)
			}
		}
		if ins != nil {
			ins.Dispatch.ObserveDuration(time.Since(start))
		}
	}

	for {
		select {
		case t, ok := <-in:
			if !ok {
				flushAll()
				return
			}
			arrivals := 1
			dispatchOne(t)
			// Greedy drain: while input is immediately available, stay on
			// the cheap non-blocking path — no timer select, and the
			// arrival meter is marked once per burst instead of per task.
			// Size-triggered flushes still happen inside dispatchOne.
		drain:
			for {
				select {
				case t, ok := <-in:
					if !ok {
						f.arrival.MarkN(arrivals)
						flushAll()
						return
					}
					arrivals++
					dispatchOne(t)
				default:
					break drain
				}
			}
			f.arrival.MarkN(arrivals)
			if buffered > 0 && !timerOn {
				timer.Reset(flushEvery)
				timerOn = true
			}
		case <-timer.C:
			// The deadline flush: partial batches must not wait for input
			// that may never come. A fire with nothing buffered (everything
			// already flushed full) is a cheap no-op.
			timerOn = false
			syncRoutes()
			flushAll()
		}
	}
}

// flushBatch seals one worker's buffered tasks into a single batch envelope
// and pushes it. On a refused push (the worker vanished between buffering
// and flush) every member re-enters the unified decision path — except
// under Broadcast, where the members are clones whose siblings were already
// delivered, so they are dropped exactly like a refused single clone.
func (f *Farm) flushBatch(w *worker, tasks []*Task) {
	codec := w.getCodec()
	// Every member draws its own sampling decision (so sampled/skipped
	// counts are invariant under the batching knob), but the batch carries
	// at most one span — rooted at the first sampled member; the rest fan
	// out as child spans when the envelope is collected. Stage semantics
	// for a batch span: enqueue covers the root member's buffering wait,
	// route is folded into it (target selection ran per member, before the
	// span existed), and the remaining stages are envelope-level.
	var sp *telemetry.Span
	if tr := f.cfg.Tracer; tr != nil && f.cfg.Dispatch != Broadcast {
		for _, t := range tasks {
			if tr.Sample(t.ID) && sp == nil {
				sp = tr.Start(t.ID)
				sp.Batch = len(tasks)
				sp.MarkSince(telemetry.StageEnqueue, t.Created)
			}
		}
	}
	var tc telemetry.TraceContext
	if sp != nil {
		tc = sp.Context()
	}
	f.packBuf = appendBatchBlob(f.packBuf[:0], tasks, f.cfg.WorkOverride, tc)
	env := getEnv()
	var sealStart time.Time
	ins := f.cfg.Instruments
	if ins != nil {
		sealStart = time.Now()
	}
	wire, err := security.AppendEncode(codec, env.wire[:0], f.packBuf)
	if ins != nil {
		ins.Seal.ObserveDuration(time.Since(sealStart))
	}
	if err != nil {
		putEnv(env)
		f.faultSpan(sp, "encode")
		f.reportErr(fmt.Errorf("skel: farm %s batch encode for %s: %w", f.cfg.Name, w.id, err))
		return
	}
	if sp != nil {
		sp.Mark(telemetry.StageSeal)
		sp.Node = w.id
		sp.Remote = w.exec != nil
	}
	env.tasks = append(env.tasks[:0], tasks...)
	env.wire = wire
	env.codec = codec
	env.batch = true
	env.span = sp
	if f.cfg.Auditor != nil {
		// One audit record per member task, not per frame: leak accounting
		// stays invariant under the batching knob, so the security
		// experiments compare across modes.
		must := false
		if f.cfg.Policy != nil {
			must = f.cfg.Policy.RequireSecure(f.cfg.DispatchNode, w.node)
		}
		for range tasks {
			f.cfg.Auditor.RecordSend(w.id, must, codec.Secure())
		}
	}
	if !w.queue.push(env) {
		env.span = nil
		f.faultSpan(sp, "reroute")
		if f.cfg.Dispatch != Broadcast {
			for _, t := range env.tasks {
				f.sendRouted(t, w)
			}
		}
		putEnv(env)
	}
}

package skel

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/runtime/leaktest"
)

// TestWorkerPanicContained proves the panic-containment invariant: a worker
// function that panics mid-task crashes only its worker — the process stays
// up, the in-flight task is requeued, and after recovery every task of the
// stream is collected exactly once.
func TestWorkerPanicContained(t *testing.T) {
	defer leaktest.Check(t)()
	f, err := NewFarm(FarmConfig{
		Name: "pc", Env: fastEnv(), RM: smpRM(4), InitialWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var tripped atomic.Bool
	f.SetWorkerFault(func(string, *Task) WorkerFault {
		if tripped.CompareAndSwap(false, true) {
			return WorkerFault{Panic: true}
		}
		return WorkerFault{}
	})

	const n = 30
	tasks := mkTasks(n, 100*time.Millisecond)
	in := make(chan *Task, n)
	for _, task := range tasks {
		in <- task
	}
	close(in)
	out := make(chan *Task, n+8)
	runDone := make(chan struct{})
	go func() { f.Run(context.Background(), in, out); close(runDone) }()

	// Stand-in for the fault manager: recover the crashed worker's
	// stranded tasks (including the requeued in-flight one) onto the
	// survivor as soon as the crash surfaces.
	recovered := make(chan string, 1)
	go func() {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			for _, w := range f.Workers() {
				if w.Failed {
					if _, err := f.RecoverWorker(w.ID); err == nil {
						recovered <- w.ID
						return
					}
				}
			}
			time.Sleep(time.Millisecond)
		}
		close(recovered)
	}()

	seen := map[uint64]int{}
	for r := range out {
		seen[r.ID]++
	}
	<-runDone

	victim, ok := <-recovered
	if !ok {
		t.Fatal("no worker crash surfaced within the deadline")
	}
	if len(seen) != n {
		t.Fatalf("collected %d distinct tasks, want %d", len(seen), n)
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("task %d collected %d times (exactly-once violated)", id, c)
		}
	}
	// The panic must have been reported as a worker error, not swallowed.
	select {
	case err := <-f.Errors():
		if err == nil {
			t.Fatal("nil error reported for the panic")
		}
	default:
		t.Fatalf("panic of %s produced no error report", victim)
	}
}

// TestWorkerStallFault checks the stall injection path: a stalled worker
// holds its task for the injected duration but the stream still completes
// with every task collected.
func TestWorkerStallFault(t *testing.T) {
	defer leaktest.Check(t)()
	f, err := NewFarm(FarmConfig{
		Name: "st", Env: fastEnv(), RM: smpRM(4), InitialWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var tripped atomic.Bool
	f.SetWorkerFault(func(string, *Task) WorkerFault {
		if tripped.CompareAndSwap(false, true) {
			return WorkerFault{Stall: 2 * time.Second} // 2ms real at scale 1000
		}
		return WorkerFault{}
	})
	results := runStage(t, f, mkTasks(20, 50*time.Millisecond))
	if len(results) != 20 {
		t.Fatalf("collected %d/20 with a stalled worker", len(results))
	}
	if !tripped.Load() {
		t.Fatal("stall fault never delivered")
	}
}

package skel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/security"
)

// DispatchPolicy selects how the farm's dispatcher (the S component of
// Fig. 2) routes tasks to workers.
type DispatchPolicy int

// Dispatch policies of the functional replication pattern.
const (
	// OnDemand sends each task to the worker with the shortest queue.
	OnDemand DispatchPolicy = iota
	// RoundRobin cycles through the workers.
	RoundRobin
	// Broadcast clones every task to every worker (the multicast stream
	// variant of functional replication).
	Broadcast
)

// Farm reconfiguration errors.
var (
	ErrLastWorker  = errors.New("skel: cannot remove the last worker")
	ErrStreamEnded = errors.New("skel: input stream already ended")
	ErrNoWorker    = errors.New("skel: no such worker")
)

// CollectPolicy selects how the farm's collector (the C component of
// Fig. 2) assembles worker results into the output stream.
type CollectPolicy int

// Collect policies of the functional replication pattern.
const (
	// Gather forwards every result as it completes (the task-farm
	// default; output order follows completion order).
	Gather CollectPolicy = iota
	// Reduce folds all results into a single output task emitted at end
	// of stream, using FarmConfig.Reduce (which must be associative and
	// commutative, since completion order is nondeterministic).
	Reduce
)

// FarmInstruments are the optional latency histograms of the farm's hot
// path, in wall-clock seconds. Dispatch covers the whole route of one task
// (snapshot, target selection, encode, queue push); Seal isolates the
// codec encode so the encryption share is visible on its own. Observation
// is atomic and allocation-free; a nil Instruments costs one predictable
// branch per task.
type FarmInstruments struct {
	Dispatch *metrics.Histogram
	Seal     *metrics.Histogram
}

// FarmConfig parameterizes a task farm.
type FarmConfig struct {
	Name string
	Env  Env
	// Fn is the worker function.
	Fn Fn
	// RM supplies worker placements; Recruit constrains them.
	RM      *grid.ResourceManager
	Recruit grid.Request
	// InitialWorkers is the starting parallelism degree (default 1).
	InitialWorkers int
	// Dispatch selects the scheduling policy (default OnDemand).
	Dispatch DispatchPolicy
	// DispatchNode is where the dispatcher/collector run; it anchors the
	// security policy's link checks. Optional.
	DispatchNode *grid.Node
	// Policy and Auditor hook the security substrate into the farm's
	// bindings. Optional; with a nil Policy no send requires securing.
	Policy  *security.Policy
	Auditor *security.Auditor
	// Collect selects the collector behaviour (default Gather). With
	// Reduce, the Reduce function folds result payloads pairwise.
	Collect CollectPolicy
	Reduce  ReduceFn
	// WorkOverride, when positive, makes every task cost this much in the
	// farm regardless of the task's own Work.
	WorkOverride time.Duration
	// OutBuffer sizes the internal result channel (default 64).
	OutBuffer int
	// Instruments receives dispatch/seal latency observations. Optional.
	Instruments *FarmInstruments
	// Network and HomeDomain, when both set, charge every task the latency
	// of the link between HomeDomain (where dispatcher and collector run)
	// and the worker's domain, on top of the task's service time. Optional;
	// it makes link degradation between domains observable to the managers.
	Network    *grid.Network
	HomeDomain string
}

// envelope is one message on a worker binding: the task plus its payload
// as encoded by the codec the binding had at dispatch time.
type envelope struct {
	task  *Task
	wire  []byte
	codec security.Codec
}

// worker is one W component of the farm.
type worker struct {
	id    string
	node  *grid.Node
	queue *queue

	// codec is the binding codec, swapped atomically by the SECURE_BINDING
	// actuator so the dispatcher can snapshot it without any lock.
	codec atomic.Pointer[security.Codec]

	served atomic.Uint64
	exited bool // guarded by Farm.mu
	failed bool // guarded by Farm.mu: crashed, queue items stranded
}

func (w *worker) getCodec() security.Codec { return *w.codec.Load() }

func (w *worker) setCodec(c security.Codec) { w.codec.Store(&c) }

// Farm is the task-farm skeleton: a dispatcher, a reconfigurable pool of
// workers with private queues, and a collector. It implements Stage and
// exposes the actuator surface used by the ABC: AddWorker, RemoveWorker,
// Rebalance, SetCodec.
type Farm struct {
	cfg FarmConfig
	env Env

	mu            sync.Mutex
	workers       []*worker
	nextID        int
	inputDone     bool
	active        int // workers whose goroutine is still running
	started       bool
	resultsClosed bool

	// pending parks accepted tasks that momentarily have no live worker to
	// go to — every worker crashed at once and recovery has not landed yet.
	// They are flushed (re-dispatched) as soon as a worker joins the pool,
	// and the result stream stays open while any task is parked, so a
	// correlated crash storm delays tasks instead of losing them.
	pending []*Task

	// rrIndex and scratch belong to the dispatcher goroutine alone; scratch
	// is the reusable snapshot of dispatchable workers, refilled under f.mu
	// each task so steady-state dispatch allocates nothing.
	rrIndex int
	scratch []*worker

	results chan *Task
	wgOut   sync.WaitGroup // collector completion

	arrival     *metrics.RateMeter
	departure   *metrics.RateMeter
	errs        chan error
	errsDropped atomic.Uint64 // reportErr overflow, surfaced via Stats
	hooks       hooks

	// workerFault, when non-nil, is consulted once per task before the
	// compute step — the chaos plane's injection point for worker panics
	// and stalls. Like FarmInstruments it is nil-gated: unused, it costs a
	// single predictable branch per task, and it sits on the worker side of
	// the farm so the dispatch hot path is untouched.
	workerFault atomic.Pointer[func(workerID string, t *Task) WorkerFault]
}

// WorkerFault describes a fault injected into one worker compute step.
type WorkerFault struct {
	// Stall delays the task by the given modelled duration first.
	Stall time.Duration
	// Panic makes the worker function panic (contained by runWorker).
	Panic bool
}

// SetWorkerFault installs (or, with nil, removes) the per-task fault hook.
func (f *Farm) SetWorkerFault(fn func(workerID string, t *Task) WorkerFault) {
	if fn == nil {
		f.workerFault.Store(nil)
		return
	}
	f.workerFault.Store(&fn)
}

// NewFarm validates cfg and builds the farm (workers are recruited when
// Run starts).
func NewFarm(cfg FarmConfig) (*Farm, error) {
	if cfg.Name == "" {
		cfg.Name = "farm"
	}
	if cfg.RM == nil {
		return nil, errors.New("skel: farm needs a resource manager")
	}
	if cfg.InitialWorkers <= 0 {
		cfg.InitialWorkers = 1
	}
	if cfg.OutBuffer <= 0 {
		cfg.OutBuffer = 64
	}
	if cfg.Collect == Reduce && cfg.Reduce == nil {
		return nil, errors.New("skel: Reduce collection needs a Reduce function")
	}
	env := cfg.Env
	return &Farm{
		cfg:       cfg,
		env:       env,
		results:   make(chan *Task, cfg.OutBuffer),
		arrival:   metrics.NewRateMeter(env.clock(), rateWindow(env)),
		departure: metrics.NewRateMeter(env.clock(), rateWindow(env)),
		errs:      make(chan error, 16),
	}, nil
}

// Name implements Stage.
func (f *Farm) Name() string { return f.cfg.Name }

// OnEvent registers fn to be called on the farm's violation-relevant
// edges — a worker crash and the end of the input stream. It returns the
// unsubscribe function. fn must not block; it may be invoked from any
// farm goroutine. Reconfiguration echoes (addWorker, rebalance, recover)
// deliberately do not fire: see the hooks type.
func (f *Farm) OnEvent(fn func()) (cancel func()) { return f.hooks.subscribe(fn) }

// Run implements Stage: it recruits the initial workers, dispatches the
// input stream and blocks until every result has been collected. The farm
// drains on cancel: it dispatches until its input closes, then lets the
// workers finish their queues.
func (f *Farm) Run(_ context.Context, in <-chan *Task, out chan<- *Task) {
	f.mu.Lock()
	f.started = true
	f.mu.Unlock()
	for i := 0; i < f.cfg.InitialWorkers; i++ {
		if _, err := f.AddWorker(); err != nil {
			f.reportErr(fmt.Errorf("skel: farm %s initial worker %d: %w", f.cfg.Name, i, err))
			break
		}
	}
	// Collector: forward (gather) or fold (reduce) results, metering
	// departures either way.
	f.wgOut.Add(1)
	go func() {
		defer f.wgOut.Done()
		if f.cfg.Collect == Reduce {
			var acc *Task
			for t := range f.results {
				f.departure.Mark()
				if acc == nil {
					acc = t
				} else {
					acc.Payload = f.cfg.Reduce(acc.Payload, t.Payload)
				}
			}
			if out != nil {
				if acc != nil {
					out <- acc
				}
				close(out)
			}
			return
		}
		for t := range f.results {
			f.departure.Mark()
			if out != nil {
				out <- t
			}
		}
		if out != nil {
			close(out)
		}
	}()
	// Dispatcher.
	for t := range in {
		f.arrival.Mark()
		f.dispatch(t)
	}
	f.endInput()
	f.wgOut.Wait()
}

// dispatch routes one task according to the policy, considering only
// workers that are neither crashed nor exited. Farm.mu is held just long
// enough to snapshot the dispatchable workers; target selection, payload
// encoding and the queue push all run off-lock, so the sensors (Stats,
// Workers) and the actuators never queue behind encryption.
func (f *Farm) dispatch(t *Task) {
	if ins := f.cfg.Instruments; ins != nil {
		start := time.Now()
		defer func() { ins.Dispatch.ObserveDuration(time.Since(start)) }()
	}
	f.mu.Lock()
	f.scratch = f.scratch[:0]
	for _, w := range f.workers {
		if !w.failed && !w.exited {
			f.scratch = append(f.scratch, w)
		}
	}
	f.mu.Unlock()
	avail := f.scratch
	if len(avail) == 0 {
		f.parkOrDrop(t)
		return
	}
	var target *worker
	switch f.cfg.Dispatch {
	case Broadcast:
		for _, w := range avail {
			f.send(w, t.Clone())
		}
		return
	case RoundRobin:
		target = avail[f.rrIndex%len(avail)]
		f.rrIndex++
	default: // OnDemand: shortest queue, by the lock-free length mirrors
		target = avail[0]
		for _, w := range avail[1:] {
			if w.queue.len() < target.queue.len() {
				target = w
			}
		}
	}
	f.send(target, t)
}

// send encodes the task with the binding's current codec, audits it and
// pushes it onto the worker queue — all without holding f.mu. The codec is
// snapshotted per send; a concurrent SetCodec therefore takes effect on the
// next send, and an envelope always carries the codec it was encoded with.
// If the worker disappeared between selection and push (removed, migrated
// or crashed-and-recovered — its queue refuses the push either way), the
// already-encoded envelope is requeued under f.mu.
func (f *Farm) send(w *worker, t *Task) {
	codec := w.getCodec()
	var sealStart time.Time
	ins := f.cfg.Instruments
	if ins != nil {
		sealStart = time.Now()
	}
	wire, err := codec.Encode(t.Payload)
	if ins != nil {
		ins.Seal.ObserveDuration(time.Since(sealStart))
	}
	if err != nil {
		f.reportErr(fmt.Errorf("skel: farm %s encode for %s: %w", f.cfg.Name, w.id, err))
		return
	}
	if f.cfg.Auditor != nil {
		must := false
		if f.cfg.Policy != nil {
			must = f.cfg.Policy.RequireSecure(f.cfg.DispatchNode, w.node)
		}
		f.cfg.Auditor.RecordSend(w.id, must, codec.Secure())
	}
	env := &envelope{task: t, wire: wire, codec: codec}
	if !w.queue.push(env) {
		f.requeue(w, env)
	}
}

// requeue places an envelope whose target vanished onto any other live
// worker. It is the slow path of send and the only part of it that takes
// f.mu.
func (f *Farm) requeue(skip *worker, env *envelope) {
	f.mu.Lock()
	for _, other := range f.workers {
		if other == skip || other.failed || other.exited {
			continue
		}
		if other.queue.push(env) {
			f.mu.Unlock()
			return
		}
	}
	f.mu.Unlock()
	// env.task still carries its original payload (compute replaces it only
	// after a pop), so the task can be parked and re-encoded on flush.
	f.parkOrDrop(env.task)
}

// parkOrDrop handles a task that found no live worker. If a crashed worker
// is still in the pool, recovery is coming (the crash edge has fired), so
// the task is parked until a worker joins; parked tasks keep the result
// stream open exactly like a crashed worker's stranded queue. Without any
// crashed worker nobody will be summoned — initial recruitment failed —
// and the task is dropped with an error rather than deadlocking the run.
func (f *Farm) parkOrDrop(t *Task) {
	f.mu.Lock()
	var hasFailed bool
	var target *worker
	for _, w := range f.workers {
		if !w.failed && !w.exited && target == nil {
			target = w
		}
		hasFailed = hasFailed || w.failed
	}
	// The park shares the critical section with the scan: a worker joining
	// after this point sees the task in pending and flushes it.
	if target == nil && hasFailed {
		f.pending = append(f.pending, t)
		f.mu.Unlock()
		return
	}
	f.mu.Unlock()
	if target != nil {
		// A worker joined between the dispatch scan and now (its
		// flushPending may already have run and missed this task): send it
		// there directly. Not via dispatch — scratch and rrIndex belong to
		// the dispatcher goroutine, and parkOrDrop also runs on manager
		// goroutines via flushPending.
		f.send(target, t)
		return
	}
	f.reportErr(fmt.Errorf("skel: farm %s dropped task %d: no workers", f.cfg.Name, t.ID))
}

// flushPending hands every parked task to the worker that just joined the
// pool; the add paths call it once the worker is dispatchable. The send
// re-encodes with the new binding's codec, so a task parked during a crash
// storm cannot leave with a codec negotiated for a worker that no longer
// exists. If the new worker is already gone again, send's requeue path
// parks the task anew.
func (f *Farm) flushPending(w *worker) {
	f.mu.Lock()
	parked := f.pending
	f.pending = nil
	f.mu.Unlock()
	for _, t := range parked {
		f.send(w, t)
	}
}

// endInput marks the stream exhausted and lets workers drain and exit.
func (f *Farm) endInput() {
	f.mu.Lock()
	f.inputDone = true
	for _, w := range f.workers {
		w.queue.close()
	}
	f.maybeCloseResultsLocked()
	f.mu.Unlock()
	f.hooks.fire() // endStream edge: wake the managers immediately
}

// maybeCloseResultsLocked closes the result stream once no worker is
// running, the input is exhausted AND no crashed worker still strands
// accepted tasks (those must be recovered, not dropped). Callers hold
// f.mu.
func (f *Farm) maybeCloseResultsLocked() {
	if f.active != 0 || !f.inputDone || f.resultsClosed {
		return
	}
	if len(f.pending) > 0 {
		return // parked tasks: wait for a worker to join and flush them
	}
	for _, w := range f.workers {
		if w.failed && w.queue.len() > 0 {
			return // stranded tasks: wait for RecoverWorker
		}
	}
	f.resultsClosed = true
	close(f.results)
}

// runWorker is one worker goroutine: pop, decode, compute, emit.
func (f *Farm) runWorker(w *worker) {
	for {
		env, ok := w.queue.pop()
		if !ok {
			// The queue looked closed and empty, but a concurrent
			// rebalance may have restored tasks into it; the check under
			// f.mu is authoritative because restores hold f.mu. A failed
			// worker always terminates, leaving its queue stranded.
			f.mu.Lock()
			if !w.failed && w.queue.len() > 0 {
				f.mu.Unlock()
				continue
			}
			w.exited = true
			w.node.Release()
			f.active--
			f.maybeCloseResultsLocked()
			f.mu.Unlock()
			return
		}
		res, crashed := f.computeTask(w, env)
		if crashed {
			f.containPanic(w, env)
			continue // the failed queue makes the next pop report done
		}
		if res != nil {
			f.results <- res
			w.served.Add(1)
		}
	}
}

// computeTask decodes and computes one envelope. A panic in the worker
// function — or one injected by the fault hook — is contained here: it is
// reported as crashed instead of unwinding the process, and the result is
// discarded. The emit happens in the caller, outside the recover scope, so
// a contained task is requeued exactly when it was never emitted.
func (f *Farm) computeTask(w *worker, env *envelope) (res *Task, crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			res, crashed = nil, true
			f.reportErr(fmt.Errorf("skel: farm %s worker %s panicked on task %d: %v",
				f.cfg.Name, w.id, env.task.ID, r))
		}
	}()
	payload, err := env.codec.Decode(env.wire)
	if err != nil {
		f.reportErr(fmt.Errorf("skel: farm %s worker %s decode: %w", f.cfg.Name, w.id, err))
		return nil, false
	}
	t := env.task
	t.Payload = payload
	work := t.Work
	if f.cfg.WorkOverride > 0 {
		work = f.cfg.WorkOverride
	}
	if fp := f.workerFault.Load(); fp != nil {
		if fault := (*fp)(w.id, t); fault.Stall > 0 || fault.Panic {
			if fault.Stall > 0 {
				f.env.SleepScaled(fault.Stall)
			}
			if fault.Panic {
				panic(fmt.Sprintf("injected worker fault (task %d)", t.ID))
			}
		}
	}
	f.env.SleepScaled(w.node.ServiceTime(work))
	if nw := f.cfg.Network; nw != nil && f.cfg.HomeDomain != "" {
		if lat := nw.LinkBetween(f.cfg.HomeDomain, w.node.Domain.Name).Latency; lat > 0 {
			f.env.SleepScaled(lat)
		}
	}
	return applyFn(f.cfg.Fn, t), false
}

// containPanic turns a panicked worker into a crashed one, exactly as
// KillWorker would: the in-flight envelope is restored into the worker's
// own queue, the queue is failed so its tasks strand for the fault manager
// to recover, and the crash edge fires. The process never dies.
func (f *Farm) containPanic(w *worker, env *envelope) {
	f.mu.Lock()
	if !w.failed && !w.exited {
		w.failed = true
		w.queue.fail()
	}
	w.queue.restore([]*envelope{env})
	f.mu.Unlock()
	f.hooks.fire()
}

// newWorkerLocked builds a worker on the given node with the given binding
// codec. Callers hold f.mu (nextID is guarded by it).
func (f *Farm) newWorkerLocked(node *grid.Node, codec security.Codec) *worker {
	w := &worker{
		id:    fmt.Sprintf("%s.w%d", f.cfg.Name, f.nextID),
		node:  node,
		queue: newQueue(),
	}
	w.setCodec(codec)
	f.nextID++
	return w
}

// AddWorker recruits a node and adds a worker to the pool. It returns the
// new worker's ID. It is the ADD_EXECUTOR actuator.
func (f *Farm) AddWorker() (string, error) {
	return f.AddWorkerWithPrepare(nil)
}

// PrepareFunc runs between recruitment and the instant a new worker becomes
// dispatchable: it is the hook the two-phase multi-concern protocol of §3.2
// uses to let the security manager secure the binding *before* any task can
// reach the worker. setCodec installs the binding codec; returning an error
// aborts the addition and releases the recruited node.
type PrepareFunc func(id string, node *grid.Node, setCodec func(security.Codec)) error

// AddWorkerWithPrepare is AddWorker with a preparation phase.
func (f *Farm) AddWorkerWithPrepare(prepare PrepareFunc) (string, error) {
	f.mu.Lock()
	if f.inputDone {
		f.mu.Unlock()
		return "", ErrStreamEnded
	}
	node, err := f.cfg.RM.Recruit(f.cfg.Recruit)
	if err != nil {
		f.mu.Unlock()
		return "", err
	}
	w := f.newWorkerLocked(node, security.Plain{})
	f.mu.Unlock()

	if prepare != nil {
		// The worker is not yet visible to the dispatcher, so the prepare
		// phase (e.g. an SSL handshake) cannot race with task sends.
		if err := prepare(w.id, node, w.setCodec); err != nil {
			node.Release()
			return "", fmt.Errorf("skel: prepare for %s: %w", w.id, err)
		}
	}

	f.mu.Lock()
	if f.inputDone {
		f.mu.Unlock()
		node.Release()
		return "", ErrStreamEnded
	}
	f.workers = append(f.workers, w)
	f.active++
	f.mu.Unlock()
	go f.runWorker(w)
	f.flushPending(w)
	return w.id, nil
}

// AddRecoveryWorker recruits a worker even after the input stream has
// ended, for the sole purpose of processing tasks stranded by a crash. Its
// queue stays open until a subsequent RecoverWorker restores the stranded
// tasks into it and (post-stream) closes it, so the worker drains the
// recovered tasks and exits. It is the fault-tolerance manager's fallback
// when a crash leaves no live worker behind.
//
// Once the run has completed — the result stream is closed, meaning no
// stranded task can remain — it returns ErrStreamEnded: a worker recruited
// then would block forever on an open empty queue (goroutine + node leak)
// and any task later restored into it would be sent on the closed results
// channel.
func (f *Farm) AddRecoveryWorker() (string, error) {
	return f.AddRecoveryWorkerWithPrepare(nil)
}

// AddRecoveryWorkerWithPrepare is AddRecoveryWorker with the same
// preparation phase as AddWorkerWithPrepare, so recovery recruitment obeys
// the two-phase security protocol too: a replacement landing on an
// untrusted node gets its binding secured before any stranded task can
// reach it.
func (f *Farm) AddRecoveryWorkerWithPrepare(prepare PrepareFunc) (string, error) {
	f.mu.Lock()
	if f.resultsClosed {
		f.mu.Unlock()
		return "", ErrStreamEnded
	}
	node, err := f.cfg.RM.Recruit(f.cfg.Recruit)
	if err != nil {
		f.mu.Unlock()
		return "", err
	}
	w := f.newWorkerLocked(node, security.Plain{})
	f.mu.Unlock()

	if prepare != nil {
		// Not yet visible to the dispatcher or RecoverWorker, so the
		// handshake cannot race with task sends.
		if err := prepare(w.id, node, w.setCodec); err != nil {
			node.Release()
			return "", fmt.Errorf("skel: prepare for %s: %w", w.id, err)
		}
	}

	f.mu.Lock()
	if f.resultsClosed {
		f.mu.Unlock()
		node.Release()
		return "", ErrStreamEnded
	}
	f.workers = append(f.workers, w)
	f.active++
	f.mu.Unlock()
	go f.runWorker(w)
	f.flushPending(w)
	return w.id, nil
}

// RemoveWorker removes the most recently added worker, redistributing its
// queued tasks. It is the REMOVE_EXECUTOR actuator.
func (f *Farm) RemoveWorker() (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.workers) <= 1 {
		return "", ErrLastWorker
	}
	w := f.workers[len(f.workers)-1]
	if w.failed {
		return "", fmt.Errorf("skel: worker %s crashed; use RecoverWorker", w.id)
	}
	live := 0
	for _, other := range f.workers[:len(f.workers)-1] {
		if !other.exited && !other.failed {
			live++
		}
	}
	if live == 0 {
		return "", ErrLastWorker
	}
	f.workers = f.workers[:len(f.workers)-1]
	orphans := w.queue.drain()
	w.queue.close()
	i := 0
	for _, other := range f.workers {
		if other.exited || other.failed {
			continue
		}
		var share []*envelope
		for j := i; j < len(orphans); j += live {
			share = append(share, orphans[j])
		}
		other.queue.restore(share)
		i++
	}
	return w.id, nil
}

// Rebalance redistributes every queued task evenly over the live workers.
// It is the BALANCE_LOAD actuator and, unlike new input, it also works
// after the stream has ended (the Fig. 4 rebalance at endStream).
func (f *Farm) Rebalance() {
	f.mu.Lock()
	defer f.mu.Unlock()
	var live []*worker
	for _, w := range f.workers {
		if !w.exited && !w.failed {
			live = append(live, w)
		}
	}
	if len(live) == 0 {
		return
	}
	var all []*envelope
	for _, w := range live {
		all = append(all, w.queue.drain()...)
	}
	for i, w := range live {
		var share []*envelope
		for j := i; j < len(all); j += len(live) {
			share = append(share, all[j])
		}
		w.queue.restore(share)
	}
}

// KillWorker injects a crash fault into the named worker: it stops
// processing after its current task, its node is released, and its queued
// tasks remain stranded until RecoverWorker redistributes them. While
// stranded tasks exist the farm's output stream stays open, so a run with
// an unrecovered fault does not terminate — detecting and repairing this
// is the fault-tolerance manager's job.
func (f *Farm) KillWorker(workerID string) error {
	f.mu.Lock()
	for _, w := range f.workers {
		if w.id != workerID {
			continue
		}
		if w.failed || w.exited {
			f.mu.Unlock()
			return fmt.Errorf("skel: worker %s is already down", workerID)
		}
		w.failed = true
		w.queue.fail()
		f.mu.Unlock()
		f.hooks.fire() // crash edge: wake the fault manager immediately
		return nil
	}
	f.mu.Unlock()
	return fmt.Errorf("%w: %s", ErrNoWorker, workerID)
}

// RecoverWorker repairs a crashed worker: its stranded tasks are
// redistributed over the live workers and the dead worker is removed from
// the pool. It is the fault-tolerance RECOVER actuator; replacing the lost
// capacity is a separate AddWorker decision.
func (f *Farm) RecoverWorker(workerID string) (recovered int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	idx := -1
	var dead *worker
	for i, w := range f.workers {
		if w.id == workerID {
			idx, dead = i, w
			break
		}
	}
	if dead == nil {
		return 0, fmt.Errorf("%w: %s", ErrNoWorker, workerID)
	}
	if !dead.failed {
		return 0, fmt.Errorf("skel: worker %s has not failed", workerID)
	}
	var live []*worker
	for _, w := range f.workers {
		if w != dead && !w.failed && !w.exited {
			live = append(live, w)
		}
	}
	orphans := dead.queue.drain()
	if len(orphans) > 0 && len(live) == 0 {
		// Nothing to recover onto: put the tasks back and refuse, so the
		// caller can AddWorker first.
		dead.queue.restore(orphans)
		return 0, errors.New("skel: no live worker to recover onto")
	}
	for i, w := range live {
		var share []*envelope
		for j := i; j < len(orphans); j += len(live) {
			share = append(share, orphans[j])
		}
		w.queue.restore(share)
		if f.inputDone {
			// Post-stream recovery targets (e.g. AddRecoveryWorker's)
			// may still have open queues; close them so they drain the
			// recovered tasks and exit.
			w.queue.close()
		}
	}
	f.workers = append(f.workers[:idx], f.workers[idx+1:]...)
	f.maybeCloseResultsLocked()
	return len(orphans), nil
}

// MigrateWorker moves a worker to a freshly recruited node satisfying req
// (e.g. a faster or less loaded one): a replacement worker is created on
// the new node with the same binding codec, the queued tasks move over,
// and the old worker retires gracefully after its current task. It is the
// MIGRATE actuator behind the paper's "migration of poorly performing
// activities to faster execution resources" policy. It returns the new
// worker's ID.
func (f *Farm) MigrateWorker(workerID string, req grid.Request) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	idx := -1
	var old *worker
	for i, w := range f.workers {
		if w.id == workerID {
			idx, old = i, w
			break
		}
	}
	if old == nil {
		return "", fmt.Errorf("%w: %s", ErrNoWorker, workerID)
	}
	if old.failed || old.exited {
		return "", fmt.Errorf("skel: worker %s is down; use RecoverWorker", workerID)
	}
	node, err := f.cfg.RM.Recruit(req)
	if err != nil {
		return "", err
	}
	fresh := f.newWorkerLocked(node, old.getCodec())
	items := old.queue.drain()
	old.queue.close() // the old worker finishes its current task and exits
	fresh.queue.restore(items)
	if f.inputDone {
		fresh.queue.close()
	}
	f.workers[idx] = fresh
	f.active++
	go f.runWorker(fresh)
	return fresh.id, nil
}

// SetCodec rebinds a worker connection onto a (secure) codec. Subsequent
// sends to that worker use the new codec; in-flight envelopes — including
// a send that snapshotted its codec just before the rebind, since encoding
// runs outside f.mu — keep the one they were encoded with. That window is
// the §3.2 reactive hazard the two-phase protocol exists to avoid: securing
// a binding *before* the worker becomes dispatchable (PrepareFunc) is
// race-free, securing it reactively is not. It is the SECURE_BINDING
// actuator.
func (f *Farm) SetCodec(workerID string, c security.Codec) error {
	if c == nil {
		return errors.New("skel: nil codec")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, w := range f.workers {
		if w.id == workerID {
			w.setCodec(c)
			return nil
		}
	}
	return fmt.Errorf("%w: %s", ErrNoWorker, workerID)
}

// WorkerInfo describes one worker for monitoring and the security manager.
type WorkerInfo struct {
	ID       string
	Node     *grid.Node
	QueueLen int
	Served   int
	Secure   bool
	Failed   bool
}

// Workers returns a snapshot of the current worker pool.
func (f *Farm) Workers() []WorkerInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]WorkerInfo, len(f.workers))
	for i, w := range f.workers {
		out[i] = WorkerInfo{
			ID:       w.id,
			Node:     w.node,
			QueueLen: w.queue.len(),
			Served:   int(w.served.Load()),
			Secure:   w.getCodec().Secure(),
			Failed:   w.failed,
		}
	}
	return out
}

// FarmStats is the sensor snapshot the ABC publishes as beans.
type FarmStats struct {
	Workers       int
	QueueLens     []int
	ArrivalRate   float64 // tasks per modelled second
	DepartureRate float64 // tasks per modelled second
	QueueVariance float64
	InputDone     bool
	Dispatched    uint64
	Completed     uint64
	// ErrorsDropped counts runtime errors lost to a full Errors() buffer:
	// most harnesses never drain that channel, so silent overflow would
	// hide dropped-task errors from every observer.
	ErrorsDropped uint64
}

// Stats returns the current sensor snapshot.
func (f *Farm) Stats() FarmStats {
	f.mu.Lock()
	lens := make([]int, len(f.workers))
	for i, w := range f.workers {
		lens[i] = w.queue.len()
	}
	workers := len(f.workers)
	done := f.inputDone
	f.mu.Unlock()
	return FarmStats{
		Workers:       workers,
		QueueLens:     lens,
		ArrivalRate:   f.arrival.Rate() / f.env.scale(),
		DepartureRate: f.departure.Rate() / f.env.scale(),
		QueueVariance: metrics.QueueImbalance(lens),
		InputDone:     done,
		Dispatched:    f.arrival.Total(),
		Completed:     f.departure.Total(),
		ErrorsDropped: f.errsDropped.Load(),
	}
}

// Errors exposes asynchronous runtime errors (codec failures, dropped
// tasks). The channel is buffered; overflow is counted and surfaced as
// FarmStats.ErrorsDropped rather than vanishing.
func (f *Farm) Errors() <-chan error { return f.errs }

func (f *Farm) reportErr(err error) {
	select {
	case f.errs <- err:
	default:
		f.errsDropped.Add(1)
	}
}

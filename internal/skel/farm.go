package skel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/security"
	"repro/internal/telemetry"
)

// DispatchPolicy selects how the farm's dispatcher (the S component of
// Fig. 2) routes tasks to workers.
type DispatchPolicy int

// Dispatch policies of the functional replication pattern.
const (
	// OnDemand sends each task to the worker with the shortest queue.
	OnDemand DispatchPolicy = iota
	// RoundRobin cycles through the workers.
	RoundRobin
	// Broadcast clones every task to every worker (the multicast stream
	// variant of functional replication).
	Broadcast
)

// Farm reconfiguration errors.
var (
	ErrLastWorker  = errors.New("skel: cannot remove the last worker")
	ErrStreamEnded = errors.New("skel: input stream already ended")
	ErrNoWorker    = errors.New("skel: no such worker")
)

// CollectPolicy selects how the farm's collector (the C component of
// Fig. 2) assembles worker results into the output stream.
type CollectPolicy int

// Collect policies of the functional replication pattern.
const (
	// Gather forwards every result as it completes (the task-farm
	// default; output order follows completion order).
	Gather CollectPolicy = iota
	// Reduce folds all results into a single output task emitted at end
	// of stream, using FarmConfig.Reduce (which must be associative and
	// commutative, since completion order is nondeterministic).
	Reduce
)

// FarmInstruments are the optional latency histograms of the farm's hot
// path, in wall-clock seconds. Dispatch covers the whole route of one task
// (snapshot, target selection, encode, queue push); Seal isolates the
// codec encode so the encryption share is visible on its own. Observation
// is atomic and allocation-free; a nil Instruments costs one predictable
// branch per task.
type FarmInstruments struct {
	Dispatch *metrics.Histogram
	Seal     *metrics.Histogram
}

// FarmConfig parameterizes a task farm.
type FarmConfig struct {
	Name string
	Env  Env
	// Fn is the worker function.
	Fn Fn
	// RM supplies worker placements; Recruit constrains them.
	RM      *grid.ResourceManager
	Recruit grid.Request
	// InitialWorkers is the starting parallelism degree (default 1).
	InitialWorkers int
	// Dispatch selects the scheduling policy (default OnDemand).
	Dispatch DispatchPolicy
	// DispatchNode is where the dispatcher/collector run; it anchors the
	// security policy's link checks. Optional.
	DispatchNode *grid.Node
	// Policy and Auditor hook the security substrate into the farm's
	// bindings. Optional; with a nil Policy no send requires securing.
	Policy  *security.Policy
	Auditor *security.Auditor
	// Collect selects the collector behaviour (default Gather). With
	// Reduce, the Reduce function folds result payloads pairwise.
	Collect CollectPolicy
	Reduce  ReduceFn
	// WorkOverride, when positive, makes every task cost this much in the
	// farm regardless of the task's own Work.
	WorkOverride time.Duration
	// OutBuffer sizes the internal result channel (default 64).
	OutBuffer int
	// Instruments receives dispatch/seal latency observations. Optional.
	Instruments *FarmInstruments
	// Network and HomeDomain, when both set, charge every task the latency
	// of the link between HomeDomain (where dispatcher and collector run)
	// and the worker's domain, on top of the task's service time. Optional;
	// it makes link degradation between domains observable to the managers.
	// The charge applies to loopback workers only: remote workers pay the
	// real latency of their framed connection instead.
	Network    *grid.Network
	HomeDomain string
	// Executors supplies per-node transport sessions at recruitment time.
	// Nil (the default) keeps every worker in-process — zero change to the
	// loopback hot path. See ExecutorFactory.
	Executors ExecutorFactory
	// Selector constrains which workers the unified dispatch decision path
	// may route tasks to (labels, trust domain, the `local` escape hatch).
	// The zero value admits every worker.
	Selector Selector
	// DispatchBatch, when > 1, coalesces up to this many tasks per worker
	// into one sealed multi-task envelope: one codec seal, one queue push
	// and one result-channel hop per batch instead of per task. Target
	// selection still runs per task through the unified decision path, so
	// routing semantics are identical to unbatched dispatch; only the
	// envelope granularity changes. 0 or 1 disables batching (the default,
	// byte-identical to the pre-batching farm).
	DispatchBatch int
	// BatchFlush bounds how long a partially filled batch may wait for
	// more input before it is sealed and pushed anyway (wall-clock; default
	// 500µs). Under saturation batches fill before the deadline and the
	// timer never fires; under trickle load it caps the added latency.
	BatchFlush time.Duration
	// Tracer samples per-task spans of the hot path's stage-latency
	// decomposition (enqueue, route, seal, queue-wait, wire, exec, reseal,
	// result). Like Instruments it is nil-gated; unlike Instruments the
	// sampling decision gates every clock read, so an unsampled task pays
	// one branch and one hash — no timestamps, no allocations. Broadcast
	// dispatch is not traced (clones would multiply one task id across
	// every worker's ring).
	Tracer *telemetry.TaskTracer
}

// maxDispatchBatch bounds DispatchBatch so a misconfigured farm cannot
// build envelopes whose sealed form dwarfs the wire frame limit.
const maxDispatchBatch = 1024

// defaultBatchFlush is the flush-on-idle deadline when none is configured.
const defaultBatchFlush = 500 * time.Microsecond

// envelope is one message on a worker binding: one task — or, with
// DispatchBatch, up to DispatchBatch tasks — plus the sealed form produced
// by the codec the binding had at dispatch time. Envelopes are pooled: the
// hot path recycles them (and their wire buffers) through envPool, so
// steady-state dispatch allocates nothing. Ownership is linear — an
// envelope is held by exactly one of: a queue, a worker's compute step,
// the results channel, or the collector; whoever drops it calls putEnv.
type envelope struct {
	// tasks are the member tasks, in wire order; length 1 unless batch.
	// Member payloads stay plaintext here (compute replaces them only
	// after a decode), so actuators can split a batch back into
	// re-encoded single envelopes without touching the sealed bytes.
	tasks []*Task
	// wire is the sealed form: the bare payload for a single envelope, the
	// multi-task batch blob for a batch one.
	wire  []byte
	codec security.Codec
	// batch marks wire as a batch blob rather than a bare payload.
	batch bool
	// out collects the completed result tasks of one compute step; the
	// collector consumes it, so one envelope is one channel hop however
	// many tasks it carried.
	out []*Task
	// span is the envelope's sampled trace record, nil for the unsampled
	// (overwhelming) majority. Ownership rides with the envelope: the
	// goroutine currently holding the envelope stamps stages; the collector
	// (or a fault path) publishes and detaches it.
	span *telemetry.Span
}

// task returns the sole member of a single (non-batch) envelope.
func (e *envelope) task() *Task { return e.tasks[0] }

var envPool = sync.Pool{New: func() any { return new(envelope) }}

func getEnv() *envelope { return envPool.Get().(*envelope) }

// putEnv clears the envelope's references (so pooled envelopes never pin
// tasks or codecs) while keeping slice capacity, and returns it to the
// pool.
func putEnv(e *envelope) {
	for i := range e.tasks {
		e.tasks[i] = nil
	}
	for i := range e.out {
		e.out[i] = nil
	}
	e.tasks = e.tasks[:0]
	e.out = e.out[:0]
	e.wire = e.wire[:0]
	e.codec = nil
	e.batch = false
	e.span = nil
	envPool.Put(e)
}

// routeTable is the atomically-swapped immutable snapshot of the admitted
// worker set: copy-on-write routing state, rebuilt under Farm.mu only when
// membership or admission changes (add, remove, migrate, crash, recover,
// worker exit), read lock-free by the dispatcher on every task. A stale
// table is harmless by construction: a departed worker's queue refuses
// pushes, which re-enters the task through sendRouted's authoritative
// under-lock path, and a not-yet-visible worker is simply not picked until
// the next swap.
type routeTable struct {
	workers []*worker
}

var emptyRoutes = &routeTable{}

// worker is one W component of the farm.
type worker struct {
	id    string
	node  *grid.Node
	queue *queue

	// exec, when non-nil, executes this worker's envelopes in another
	// process (the remote transport); nil means loopback. Immutable after
	// construction; closed when the worker leaves the pool.
	exec Executor

	// codec is the binding codec, swapped atomically by the SECURE_BINDING
	// actuator so the dispatcher can snapshot it without any lock.
	codec atomic.Pointer[security.Codec]

	served atomic.Uint64
	exited bool // guarded by Farm.mu
	failed bool // guarded by Farm.mu: crashed, queue items stranded

	// plainBuf is the worker goroutine's reusable decode buffer for
	// loopback compute: the decoded plaintext of an envelope is consulted
	// and dropped there (the member tasks already hold the same bytes), so
	// steady-state decode allocates nothing. Touched only by runWorker.
	plainBuf []byte
}

func (w *worker) getCodec() security.Codec { return *w.codec.Load() }

func (w *worker) setCodec(c security.Codec) { w.codec.Store(&c) }

// closeExec releases the worker's transport session, if any. Idempotent
// (the Executor contract requires it); called whenever the worker leaves
// the pool for good.
func (w *worker) closeExec() {
	if w.exec != nil {
		_ = w.exec.Close()
	}
}

// Farm is the task-farm skeleton: a dispatcher, a reconfigurable pool of
// workers with private queues, and a collector. It implements Stage and
// exposes the actuator surface used by the ABC: AddWorker, RemoveWorker,
// Rebalance, SetCodec.
type Farm struct {
	cfg FarmConfig
	env Env

	mu            sync.Mutex
	workers       []*worker
	nextID        int
	inputDone     bool
	active        int // workers whose goroutine is still running
	started       bool
	resultsClosed bool

	// pending parks accepted tasks that momentarily have no live worker to
	// go to — every worker crashed at once and recovery has not landed yet.
	// They are flushed (re-dispatched) as soon as a worker joins the pool,
	// and the result stream stays open while any task is parked, so a
	// correlated crash storm delays tasks instead of losing them.
	pending []*Task

	// routes is the lock-free routing snapshot; refreshRoutesLocked rebuilds
	// it under f.mu at every membership change.
	routes atomic.Pointer[routeTable]

	// everHadWorker and recruitFailed distinguish "recovery is coming" from
	// "the pool never existed" when sendRouted finds nobody to route to: a
	// farm whose every recruitment failed must drop-with-error and let the
	// run terminate instead of parking tasks forever.
	everHadWorker bool
	recruitFailed bool

	// rrIndex and packBuf belong to the dispatcher goroutine alone; packBuf
	// is the reusable batch-blob scratch, so steady-state batched dispatch
	// allocates nothing.
	rrIndex int
	packBuf []byte

	results chan *envelope
	wgOut   sync.WaitGroup // collector completion

	arrival     *metrics.RateMeter
	departure   *metrics.RateMeter
	errs        chan error
	errsDropped atomic.Uint64 // reportErr overflow, surfaced via Stats
	hooks       hooks

	// workerFault, when non-nil, is consulted once per task before the
	// compute step — the chaos plane's injection point for worker panics
	// and stalls. Like FarmInstruments it is nil-gated: unused, it costs a
	// single predictable branch per task, and it sits on the worker side of
	// the farm so the dispatch hot path is untouched.
	workerFault atomic.Pointer[func(workerID string, t *Task) WorkerFault]
}

// WorkerFault describes a fault injected into one worker compute step.
type WorkerFault struct {
	// Stall delays the task by the given modelled duration first.
	Stall time.Duration
	// Panic makes the worker function panic (contained by runWorker).
	Panic bool
}

// SetWorkerFault installs (or, with nil, removes) the per-task fault hook.
func (f *Farm) SetWorkerFault(fn func(workerID string, t *Task) WorkerFault) {
	if fn == nil {
		f.workerFault.Store(nil)
		return
	}
	f.workerFault.Store(&fn)
}

// NewFarm validates cfg and builds the farm (workers are recruited when
// Run starts).
func NewFarm(cfg FarmConfig) (*Farm, error) {
	if cfg.Name == "" {
		cfg.Name = "farm"
	}
	if cfg.RM == nil {
		return nil, errors.New("skel: farm needs a resource manager")
	}
	if cfg.InitialWorkers <= 0 {
		cfg.InitialWorkers = 1
	}
	if cfg.OutBuffer <= 0 {
		cfg.OutBuffer = 64
	}
	if cfg.Collect == Reduce && cfg.Reduce == nil {
		return nil, errors.New("skel: Reduce collection needs a Reduce function")
	}
	if cfg.DispatchBatch > maxDispatchBatch {
		return nil, fmt.Errorf("skel: DispatchBatch %d exceeds the maximum %d", cfg.DispatchBatch, maxDispatchBatch)
	}
	if cfg.DispatchBatch > 1 && cfg.BatchFlush <= 0 {
		cfg.BatchFlush = defaultBatchFlush
	}
	env := cfg.Env
	f := &Farm{
		cfg:       cfg,
		env:       env,
		results:   make(chan *envelope, cfg.OutBuffer),
		arrival:   metrics.NewRateMeter(env.clock(), rateWindow(env)),
		departure: metrics.NewRateMeter(env.clock(), rateWindow(env)),
		errs:      make(chan error, 16),
	}
	f.routes.Store(emptyRoutes)
	return f, nil
}

// refreshRoutesLocked rebuilds the lock-free routing snapshot from the
// current pool. Every membership or admission change calls it before
// releasing f.mu, so the dispatcher's next load observes the new set.
func (f *Farm) refreshRoutesLocked() {
	f.routes.Store(&routeTable{workers: f.admittedLocked(nil, nil)})
}

// Name implements Stage.
func (f *Farm) Name() string { return f.cfg.Name }

// OnEvent registers fn to be called on the farm's violation-relevant
// edges — a worker crash and the end of the input stream. It returns the
// unsubscribe function. fn must not block; it may be invoked from any
// farm goroutine. Reconfiguration echoes (addWorker, rebalance, recover)
// deliberately do not fire: see the hooks type.
func (f *Farm) OnEvent(fn func()) (cancel func()) { return f.hooks.subscribe(fn) }

// Run implements Stage: it recruits the initial workers, dispatches the
// input stream and blocks until every result has been collected. The farm
// drains on cancel: it dispatches until its input closes, then lets the
// workers finish their queues.
func (f *Farm) Run(_ context.Context, in <-chan *Task, out chan<- *Task) {
	f.mu.Lock()
	f.started = true
	f.mu.Unlock()
	for i := 0; i < f.cfg.InitialWorkers; i++ {
		if _, err := f.AddWorker(); err != nil {
			f.reportErr(fmt.Errorf("skel: farm %s initial worker %d: %w", f.cfg.Name, i, err))
			break
		}
	}
	// Collector: forward (gather) or fold (reduce) results, metering
	// departures either way. One envelope is one channel hop carrying all
	// of its batch's results; the envelope is recycled here.
	f.wgOut.Add(1)
	go func() {
		defer f.wgOut.Done()
		if f.cfg.Collect == Reduce {
			var acc *Task
			for env := range f.results {
				f.departure.MarkN(len(env.out))
				f.collectSpan(env)
				for _, t := range env.out {
					if acc == nil {
						acc = t
					} else {
						acc.Payload = f.cfg.Reduce(acc.Payload, t.Payload)
					}
				}
				putEnv(env)
			}
			if out != nil {
				if acc != nil {
					out <- acc
				}
				close(out)
			}
			return
		}
		for env := range f.results {
			f.departure.MarkN(len(env.out))
			f.collectSpan(env)
			for _, t := range env.out {
				if out != nil {
					out <- t
				}
			}
			putEnv(env)
		}
		if out != nil {
			close(out)
		}
	}()
	// Dispatcher.
	if f.cfg.DispatchBatch > 1 {
		f.runBatchedDispatcher(in)
	} else {
		for t := range in {
			f.arrival.Mark()
			f.dispatch(t)
		}
	}
	f.endInput()
	f.wgOut.Wait()
}

// dispatch routes one task through the unified decision path, considering
// only live, selector-admitted workers. Steady-state dispatch takes no lock
// at all: the admitted set comes from the atomically-swapped routeTable,
// and target selection, payload encoding and the queue push all run on the
// snapshot, so the sensors (Stats, Workers) and the actuators never queue
// behind encryption — and the dispatcher never queues behind them.
func (f *Farm) dispatch(t *Task) {
	if ins := f.cfg.Instruments; ins != nil {
		start := time.Now()
		defer func() { ins.Dispatch.ObserveDuration(time.Since(start)) }()
	}
	avail := f.routes.Load().workers
	if f.cfg.Dispatch == Broadcast {
		if len(avail) == 0 {
			f.sendRouted(t, nil)
			return
		}
		for _, w := range avail {
			// Clones must not be re-routed on a failed push: every other
			// admitted worker already holds its own clone, so re-routing the
			// orphan would deliver a duplicate to one of them.
			f.send(w, t.Clone(), false, nil)
		}
		return
	}
	// The sampling decision precedes every clock read: an unsampled task —
	// the overwhelming majority at production rates — pays one branch and
	// one integer hash here, nothing else.
	var sp *telemetry.Span
	if tr := f.cfg.Tracer; tr != nil && tr.Sample(t.ID) {
		sp = tr.Start(t.ID)
		sp.MarkSince(telemetry.StageEnqueue, t.Created)
	}
	target := f.decideTarget(avail, &f.rrIndex)
	if sp != nil {
		sp.Mark(telemetry.StageRoute)
	}
	if target == nil {
		f.faultSpan(sp, "parked")
		f.sendRouted(t, nil)
		return
	}
	f.send(target, t, true, sp)
}

// faultSpan publishes a partial span annotated with the fault that cut its
// task's normal path short (a park, a refused push, a remote link error, a
// contained panic). The retried task proceeds untraced — retry latency is
// the fault manager's story, and the published span records exactly the
// stages the task completed before the fault. Nil-safe.
func (f *Farm) faultSpan(sp *telemetry.Span, kind string) {
	if sp == nil {
		return
	}
	sp.Fault = kind
	f.cfg.Tracer.Publish(sp)
}

// collectSpan finishes a collected envelope's span: the result stage ends
// at the collector, batch spans fan out one member span per co-sampled
// member task, and the envelope span publishes into the ring and the stage
// histograms.
func (f *Farm) collectSpan(env *envelope) {
	sp := env.span
	if sp == nil {
		return
	}
	env.span = nil
	sp.Mark(telemetry.StageResult)
	tr := f.cfg.Tracer
	if env.batch {
		for _, t := range env.tasks {
			if t.ID != sp.TaskID && tr.Sampler().Decide(t.ID) {
				tr.PublishMember(sp, t.ID)
			}
		}
	}
	tr.Publish(sp)
}

// send encodes the task with the binding's current codec, audits it and
// pushes it onto the worker queue — all without holding f.mu. The codec is
// snapshotted per send; a concurrent SetCodec therefore takes effect on the
// next send, and an envelope always carries the codec it was encoded with.
// If the worker disappeared between selection and push (removed, migrated
// or crashed-and-recovered — its queue refuses the push either way), the
// task is re-routed through the decision path and re-encoded there: the
// stale envelope's codec belongs to the vanished worker's binding (for a
// remote worker, to its dead session's key epochs) and must not follow the
// task to a different one. reroute=false (Broadcast clones) drops the task
// on a failed push instead — its siblings were already delivered.
func (f *Farm) send(w *worker, t *Task, reroute bool, sp *telemetry.Span) {
	codec := w.getCodec()
	var sealStart time.Time
	ins := f.cfg.Instruments
	if ins != nil {
		sealStart = time.Now()
	}
	env := getEnv()
	wire, err := security.AppendEncode(codec, env.wire[:0], t.Payload)
	if ins != nil {
		ins.Seal.ObserveDuration(time.Since(sealStart))
	}
	if err != nil {
		env.wire = env.wire[:0]
		putEnv(env)
		f.faultSpan(sp, "encode")
		f.reportErr(fmt.Errorf("skel: farm %s encode for %s: %w", f.cfg.Name, w.id, err))
		return
	}
	if sp != nil {
		sp.Mark(telemetry.StageSeal)
		sp.Node = w.id
		sp.Remote = w.exec != nil
	}
	if f.cfg.Auditor != nil {
		must := false
		if f.cfg.Policy != nil {
			must = f.cfg.Policy.RequireSecure(f.cfg.DispatchNode, w.node)
		}
		f.cfg.Auditor.RecordSend(w.id, must, codec.Secure())
	}
	env.tasks = append(env.tasks[:0], t)
	env.wire = wire
	env.codec = codec
	env.span = sp
	if !w.queue.push(env) {
		env.span = nil
		f.faultSpan(sp, "reroute")
		putEnv(env)
		if reroute {
			// t still carries its original payload (compute replaces it only
			// after a pop), so it can be re-routed and re-encoded.
			f.sendRouted(t, w)
		}
	}
}

// sendRouted routes one already-accepted task through the unified decision
// path from outside the dispatcher goroutine: the reroute slow path of
// send (skip is the worker whose push just failed), park-flush after a
// worker joins, and the empty-pool branch of dispatch. If no admissible
// worker exists but a crashed one is still in the pool, recovery is coming
// (the crash edge has fired), so the task is parked until a worker joins;
// parked tasks keep the result stream open exactly like a crashed worker's
// stranded queue. Without any crashed worker nobody will be summoned —
// recruitment failed or the selector admits nothing — and the task is
// dropped with an error rather than deadlocking the run.
func (f *Farm) sendRouted(t *Task, skip *worker) {
	f.mu.Lock()
	avail := f.admittedLocked(nil, skip)
	hasFailed := false
	for _, w := range f.workers {
		if w.failed {
			hasFailed = true
			break
		}
	}
	// An empty pool that never held a worker is not a crash in progress:
	// every recruitment failed, no crash edge ever fired, and no recovery
	// is coming. Parking here would strand the task in pending forever and
	// maybeCloseResultsLocked would hold the result stream open against a
	// recovery that cannot arrive — the whole run deadlocks. Drop with an
	// error instead so the stream can terminate.
	if len(avail) == 0 && len(f.workers) == 0 && !f.everHadWorker && f.recruitFailed {
		f.mu.Unlock()
		f.reportErr(fmt.Errorf("skel: farm %s dropped task %d: recruitment failed and no worker ever joined", f.cfg.Name, t.ID))
		return
	}
	// The park shares the critical section with the scan: a worker joining
	// after this point sees the task in pending and flushes it. An empty
	// pool parks too — it can only arise from a recovery that is about to
	// recruit (an unmanaged farm never removes its last worker), and
	// parked tasks hold the result stream open until the recruit lands.
	if len(avail) == 0 && (hasFailed || len(f.workers) == 0) {
		f.pending = append(f.pending, t)
		f.mu.Unlock()
		return
	}
	f.mu.Unlock()
	target := f.decideTarget(avail, nil)
	if target == nil {
		f.reportErr(fmt.Errorf("skel: farm %s dropped task %d: no admissible worker", f.cfg.Name, t.ID))
		return
	}
	// send re-encodes with the target's own binding codec; if the target is
	// already gone again, send's reroute parks the task anew. A worker
	// whose push failed is already marked failed/exited/removed under f.mu
	// by then, so the reroute cannot spin on it.
	f.send(target, t, true, nil)
}

// flushPending re-dispatches every parked task now that a worker joined
// the pool; the add paths call it once the worker is dispatchable. Each
// task goes through the unified decision path again and is re-encoded with
// its new binding's codec, so a task parked during a crash storm cannot
// leave with a codec negotiated for a worker that no longer exists.
func (f *Farm) flushPending() {
	f.mu.Lock()
	parked := f.pending
	f.pending = nil
	f.mu.Unlock()
	for _, t := range parked {
		f.sendRouted(t, nil)
	}
}

// endInput marks the stream exhausted and lets workers drain and exit.
func (f *Farm) endInput() {
	f.mu.Lock()
	f.inputDone = true
	for _, w := range f.workers {
		w.queue.close()
	}
	f.maybeCloseResultsLocked()
	f.mu.Unlock()
	f.hooks.fire() // endStream edge: wake the managers immediately
}

// maybeCloseResultsLocked closes the result stream once no worker is
// running, the input is exhausted AND no crashed worker still strands
// accepted tasks (those must be recovered, not dropped). Callers hold
// f.mu.
func (f *Farm) maybeCloseResultsLocked() {
	if f.active != 0 || !f.inputDone || f.resultsClosed {
		return
	}
	if len(f.pending) > 0 {
		return // parked tasks: wait for a worker to join and flush them
	}
	for _, w := range f.workers {
		if w.failed && w.queue.len() > 0 {
			return // stranded tasks: wait for RecoverWorker
		}
	}
	f.resultsClosed = true
	close(f.results)
}

// runWorker is one worker goroutine: pop, decode, compute, emit.
func (f *Farm) runWorker(w *worker) {
	for {
		env, ok := w.queue.pop()
		if !ok {
			// The queue looked closed and empty, but a concurrent
			// rebalance may have restored tasks into it; the check under
			// f.mu is authoritative because restores hold f.mu. A failed
			// worker always terminates, leaving its queue stranded.
			f.mu.Lock()
			if !w.failed && w.queue.len() > 0 {
				f.mu.Unlock()
				continue
			}
			w.exited = true
			w.node.Release()
			f.active--
			f.refreshRoutesLocked()
			f.maybeCloseResultsLocked()
			f.mu.Unlock()
			// Sole worker-termination path: every exit — drain, removal,
			// crash, migration retirement — releases the transport session
			// here, so a session can never outlive its worker.
			w.closeExec()
			return
		}
		if sp := env.span; sp != nil {
			sp.Mark(telemetry.StageQueueWait)
		}
		var crashed bool
		if w.exec != nil {
			crashed = f.computeRemote(w, env)
		} else {
			crashed = f.computeLocal(w, env)
		}
		if crashed {
			f.containPanic(w, env)
			continue // the failed queue makes the next pop report done
		}
		if n := len(env.out); n > 0 {
			w.served.Add(uint64(n))
			f.results <- env
		} else {
			putEnv(env)
		}
	}
}

// computeLocal decodes and computes one envelope — every member task of a
// batch, in wire order. A panic in the worker function — or one injected by
// the fault hook — is contained here: it is reported as crashed instead of
// unwinding the process, and any partial results are discarded (env.out is
// cleared), so a recomputation after recovery re-derives every member's
// payload from the sealed wire bytes and emits each exactly once. The emit
// happens in the caller, outside the recover scope.
func (f *Farm) computeLocal(w *worker, env *envelope) (crashed bool) {
	env.out = env.out[:0]
	defer func() {
		if r := recover(); r != nil {
			crashed = true
			for i := range env.out {
				env.out[i] = nil
			}
			env.out = env.out[:0]
			f.reportErr(fmt.Errorf("skel: farm %s worker %s panicked on task %d: %v",
				f.cfg.Name, w.id, env.task().ID, r))
		}
	}()
	// The decode pays the binding codec's honest CPU cost and authenticates
	// the envelope — the security model charges both directions of a seal.
	// On the loopback plane the plaintext never left the process: env.tasks
	// still hold the exact payload bytes the dispatcher sealed (the decode
	// reproduces them bit for bit), so the decoded copy lands in a
	// worker-owned reusable buffer instead of escaping as a fresh
	// allocation per envelope. That buffer is what keeps steady-state
	// loopback dispatch at zero allocations per task.
	plain, err := security.AppendDecode(env.codec, w.plainBuf[:0], env.wire)
	if err != nil {
		f.faultSpan(env.span, "decode")
		env.span = nil
		f.reportErr(fmt.Errorf("skel: farm %s worker %s decode: %w", f.cfg.Name, w.id, err))
		return false
	}
	w.plainBuf = plain[:0]
	if sp := env.span; sp != nil {
		// Loopback: reseal is the envelope decode, exec the member loop, and
		// the wire stage stays zero — no machine boundary was crossed.
		sp.Mark(telemetry.StageReseal)
	}
	for _, t := range env.tasks {
		work := t.Work
		if f.cfg.WorkOverride > 0 {
			work = f.cfg.WorkOverride
		}
		if fp := f.workerFault.Load(); fp != nil {
			if fault := (*fp)(w.id, t); fault.Stall > 0 || fault.Panic {
				if fault.Stall > 0 {
					f.env.SleepScaled(fault.Stall)
				}
				if fault.Panic {
					panic(fmt.Sprintf("injected worker fault (task %d)", t.ID))
				}
			}
		}
		f.env.SleepScaled(w.node.ServiceTime(work))
		if nw := f.cfg.Network; nw != nil && f.cfg.HomeDomain != "" {
			if lat := nw.LinkBetween(f.cfg.HomeDomain, w.node.Domain.Name).Latency; lat > 0 {
				f.env.SleepScaled(lat)
			}
		}
		if res := applyFn(f.cfg.Fn, t); res != nil {
			env.out = append(env.out, res)
		}
	}
	if sp := env.span; sp != nil {
		sp.Mark(telemetry.StageExec)
	}
	return false
}

// computeRemote ships one envelope across the worker's transport session
// and blocks for the sealed result. The bytes handed to the session are
// exactly the bytes the binding codec produced in send — the transport
// never sees the plaintext. Any transport error (connection dropped,
// remote rejected the frame, result failed to authenticate) is mapped onto
// the worker-crash contract: the envelope strands on the worker's failed
// queue for the fault-tolerance manager to recover, because a broken link
// and a dead machine are the same fault. Unlike the loopback path there is
// no modelled link-latency charge: a remote worker pays the real latency
// of its framed connection.
//
// Batch envelopes ship as one frame through BatchExecutor when the session
// supports it; member payloads are only overwritten once the whole result
// blob has authenticated and validated, so a crash mid-batch leaves every
// member's plaintext pristine for recovery — exactly-once holds per member.
func (f *Farm) computeRemote(w *worker, env *envelope) (crashed bool) {
	env.out = env.out[:0]
	for _, t := range env.tasks {
		if fp := f.workerFault.Load(); fp != nil {
			if fault := (*fp)(w.id, t); fault.Stall > 0 || fault.Panic {
				if fault.Stall > 0 {
					f.env.SleepScaled(fault.Stall)
				}
				if fault.Panic {
					// A remote worker cannot contain a panic in-process; the
					// injected fault lands as the crash it models.
					f.reportErr(fmt.Errorf("skel: farm %s worker %s injected fault on task %d",
						f.cfg.Name, w.id, t.ID))
					return true
				}
			}
		}
	}
	// The span's trace context rides the exec frame (single) or the sealed
	// batch blob (batch, already embedded at seal time), so the workerd-side
	// exec span shares this trace id. A link fault publishes the partial span
	// here and detaches it: the recovered envelope retries untraced.
	sp := env.span
	var tc telemetry.TraceContext
	if sp != nil {
		tc = sp.Context()
	}
	detachFault := func(kind string) {
		env.span = nil
		f.faultSpan(sp, kind)
	}
	if !env.batch {
		t := env.task()
		work := t.Work
		if f.cfg.WorkOverride > 0 {
			work = f.cfg.WorkOverride
		}
		sealedRes, execNanos, err := w.exec.Exec(tc, t.ID, work, env.codec, env.wire)
		if err != nil {
			detachFault("link")
			f.reportErr(fmt.Errorf("skel: farm %s worker %s remote exec task %d: %w",
				f.cfg.Name, w.id, t.ID, err))
			return true
		}
		if sp != nil {
			// Interval arithmetic across the clock boundary: the local round
			// trip splits into the remote-reported exec share and the wire
			// remainder — timestamps never cross machines.
			sp.MarkSplit(telemetry.StageWire, telemetry.StageExec, execNanos)
		}
		payload, err := env.codec.Decode(sealedRes)
		if err != nil {
			// A result that does not authenticate is a link fault, not a task
			// fault: crash the worker so the envelope is recovered, never
			// emitted corrupt.
			detachFault("auth")
			f.reportErr(fmt.Errorf("skel: farm %s worker %s remote result: %w",
				f.cfg.Name, w.id, err))
			return true
		}
		if sp != nil {
			sp.Mark(telemetry.StageReseal)
		}
		t.Payload = payload
		env.out = append(env.out, t)
		return false
	}
	be, ok := w.exec.(BatchExecutor)
	if !ok {
		// A transport without a batch frame ships members one by one.
		// Result payloads are staged and assigned only after every member
		// succeeded: assigning as we go would leave already-transformed
		// payloads behind on a mid-batch link fault, and the recovery
		// recompute would then apply the worker function twice.
		staged := make([][]byte, len(env.tasks))
		for i, t := range env.tasks {
			work := t.Work
			if f.cfg.WorkOverride > 0 {
				work = f.cfg.WorkOverride
			}
			wire, err := env.codec.Encode(t.Payload)
			if err != nil {
				detachFault("encode")
				f.reportErr(fmt.Errorf("skel: farm %s worker %s re-seal task %d: %w",
					f.cfg.Name, w.id, t.ID, err))
				return true
			}
			sealedRes, execNanos, err := w.exec.Exec(tc, t.ID, work, env.codec, wire)
			if err != nil {
				detachFault("link")
				f.reportErr(fmt.Errorf("skel: farm %s worker %s remote exec task %d: %w",
					f.cfg.Name, w.id, t.ID, err))
				return true
			}
			if sp != nil {
				// Per-member intervals accumulate into the batch span's wire
				// and exec stages (Mark and MarkSplit add, never overwrite).
				sp.MarkSplit(telemetry.StageWire, telemetry.StageExec, execNanos)
			}
			payload, err := env.codec.Decode(sealedRes)
			if err != nil {
				detachFault("auth")
				f.reportErr(fmt.Errorf("skel: farm %s worker %s remote result: %w",
					f.cfg.Name, w.id, err))
				return true
			}
			if sp != nil {
				sp.Mark(telemetry.StageReseal)
			}
			staged[i] = payload
		}
		for i, t := range env.tasks {
			t.Payload = staged[i]
			env.out = append(env.out, t)
		}
		return false
	}
	sealedRes, execNanos, err := be.ExecBatch(env.codec, env.wire)
	if err != nil {
		detachFault("link")
		f.reportErr(fmt.Errorf("skel: farm %s worker %s remote exec batch of %d: %w",
			f.cfg.Name, w.id, len(env.tasks), err))
		return true
	}
	if sp != nil {
		sp.MarkSplit(telemetry.StageWire, telemetry.StageExec, execNanos)
	}
	blob, err := env.codec.Decode(sealedRes)
	if err != nil {
		detachFault("auth")
		f.reportErr(fmt.Errorf("skel: farm %s worker %s remote batch result: %w",
			f.cfg.Name, w.id, err))
		return true
	}
	if err := unpackResultInto(blob, env.tasks); err != nil {
		detachFault("auth")
		f.reportErr(fmt.Errorf("skel: farm %s worker %s remote batch result: %w",
			f.cfg.Name, w.id, err))
		return true
	}
	if sp != nil {
		sp.Mark(telemetry.StageReseal)
	}
	env.out = append(env.out, env.tasks...)
	return false
}

// containPanic turns a panicked worker into a crashed one, exactly as
// KillWorker would: the in-flight envelope is restored into the worker's
// own queue, the queue is failed so its tasks strand for the fault manager
// to recover, and the crash edge fires. The process never dies.
//
// A worker that has already been recovered — killed by the stall detector
// and drained by RecoverWorker while its task was still in flight, which a
// remote exec blocked in a link fault makes routine — is no longer in the
// pool, so restoring into its queue would strand the envelope invisibly.
// That late envelope is instead re-routed through the unified dispatch
// decision path, exactly like a parked task.
func (f *Farm) containPanic(w *worker, env *envelope) {
	// The crash annotates and publishes the partial span; the restored
	// envelope retries untraced (retry latency is the fault manager's story).
	f.faultSpan(env.span, "crash")
	env.span = nil
	f.mu.Lock()
	if !w.failed && !w.exited {
		w.failed = true
		w.queue.fail()
		f.refreshRoutesLocked()
	}
	inPool := false
	for _, x := range f.workers {
		if x == w {
			inPool = true
			break
		}
	}
	if inPool {
		// RecoverWorker drains under f.mu, so a restore landing here is
		// guaranteed a future drain. A batch envelope is restored intact;
		// RecoverWorker splits it back into tasks before redistribution.
		w.queue.restore([]*envelope{env})
		f.mu.Unlock()
		f.hooks.fire()
		return
	}
	f.mu.Unlock()
	f.hooks.fire()
	// Late envelope: every member re-enters the unified decision path, one
	// task at a time (the batch's sealed form belonged to the dead binding).
	for _, t := range env.tasks {
		f.sendRouted(t, w)
	}
	putEnv(env)
}

// newWorkerLocked builds a worker on the given node with the given binding
// codec. Callers hold f.mu (nextID is guarded by it).
func (f *Farm) newWorkerLocked(node *grid.Node, codec security.Codec) *worker {
	w := &worker{
		id:    fmt.Sprintf("%s.w%d", f.cfg.Name, f.nextID),
		node:  node,
		queue: newQueue(),
	}
	w.setCodec(codec)
	f.nextID++
	return w
}

// executorFor dials a transport session for the node through the
// configured factory. A nil factory — the loopback default — pins every
// worker in-process at zero cost. Callers must not hold f.mu: dialing is
// real network I/O.
func (f *Farm) executorFor(node *grid.Node) (Executor, error) {
	if f.cfg.Executors == nil {
		return nil, nil
	}
	return f.cfg.Executors(node)
}

// bindCodec installs c as w's binding codec. For a remote worker the new
// key must reach the workerd process before any task sealed with it can
// (the two-phase rekey crossing the wire inside a control frame sealed
// under the link's master codec), so the codec is pushed through the
// session first and the wrapper it returns — carrying the transport's key
// epoch — becomes the binding codec. Callers must not hold f.mu: the
// rekey is a real network write.
func (f *Farm) bindCodec(w *worker, c security.Codec) error {
	if w.exec != nil {
		wrapped, err := w.exec.Rekey(c)
		if err != nil {
			return err
		}
		c = wrapped
	}
	w.setCodec(c)
	return nil
}

// AddWorker recruits a node and adds a worker to the pool. It returns the
// new worker's ID. It is the ADD_EXECUTOR actuator.
func (f *Farm) AddWorker() (string, error) {
	return f.AddWorkerWithPrepare(nil)
}

// PrepareFunc runs between recruitment and the instant a new worker becomes
// dispatchable: it is the hook the two-phase multi-concern protocol of §3.2
// uses to let the security manager secure the binding *before* any task can
// reach the worker. setCodec installs the binding codec; returning an error
// aborts the addition and releases the recruited node.
type PrepareFunc func(id string, node *grid.Node, setCodec func(security.Codec)) error

// AddWorkerWithPrepare is AddWorker with a preparation phase.
func (f *Farm) AddWorkerWithPrepare(prepare PrepareFunc) (string, error) {
	f.mu.Lock()
	if f.inputDone {
		f.mu.Unlock()
		return "", ErrStreamEnded
	}
	node, err := f.cfg.RM.Recruit(f.cfg.Recruit)
	if err != nil {
		f.recruitFailed = true
		f.mu.Unlock()
		return "", err
	}
	w := f.newWorkerLocked(node, security.Plain{})
	f.mu.Unlock()

	if err := f.attachExecutor(w, node); err != nil {
		return "", err
	}

	if prepare != nil {
		// The worker is not yet visible to the dispatcher, so the prepare
		// phase (e.g. an SSL handshake) cannot race with task sends. For a
		// remote worker the codec install crosses the wire (bindCodec);
		// a failed rekey aborts the addition so a worker whose binding the
		// security manager could not secure never becomes dispatchable —
		// the two-phase guarantee holds across processes.
		var bindErr error
		setCodec := func(c security.Codec) {
			if err := f.bindCodec(w, c); err != nil && bindErr == nil {
				bindErr = err
			}
		}
		if err := prepare(w.id, node, setCodec); err != nil {
			node.Release()
			w.closeExec()
			return "", fmt.Errorf("skel: prepare for %s: %w", w.id, err)
		}
		if bindErr != nil {
			node.Release()
			w.closeExec()
			return "", fmt.Errorf("skel: prepare rekey for %s: %w", w.id, bindErr)
		}
	}

	f.mu.Lock()
	if f.inputDone {
		f.mu.Unlock()
		node.Release()
		w.closeExec()
		return "", ErrStreamEnded
	}
	f.workers = append(f.workers, w)
	f.active++
	f.everHadWorker = true
	f.refreshRoutesLocked()
	f.mu.Unlock()
	go f.runWorker(w)
	f.flushPending()
	return w.id, nil
}

// attachExecutor dials and attaches the transport session for a worker
// still invisible to the dispatcher. On error the recruited node is
// released and the addition aborted.
func (f *Farm) attachExecutor(w *worker, node *grid.Node) error {
	exec, err := f.executorFor(node)
	if err != nil {
		node.Release()
		return fmt.Errorf("skel: dial executor for %s: %w", w.id, err)
	}
	w.exec = exec
	return nil
}

// AddRecoveryWorker recruits a worker even after the input stream has
// ended, for the sole purpose of processing tasks stranded by a crash. Its
// queue stays open until a subsequent RecoverWorker restores the stranded
// tasks into it and (post-stream) closes it, so the worker drains the
// recovered tasks and exits. It is the fault-tolerance manager's fallback
// when a crash leaves no live worker behind.
//
// Once the run has completed — the result stream is closed, meaning no
// stranded task can remain — it returns ErrStreamEnded: a worker recruited
// then would block forever on an open empty queue (goroutine + node leak)
// and any task later restored into it would be sent on the closed results
// channel.
func (f *Farm) AddRecoveryWorker() (string, error) {
	return f.AddRecoveryWorkerWithPrepare(nil)
}

// AddRecoveryWorkerWithPrepare is AddRecoveryWorker with the same
// preparation phase as AddWorkerWithPrepare, so recovery recruitment obeys
// the two-phase security protocol too: a replacement landing on an
// untrusted node gets its binding secured before any stranded task can
// reach it.
func (f *Farm) AddRecoveryWorkerWithPrepare(prepare PrepareFunc) (string, error) {
	f.mu.Lock()
	if f.resultsClosed {
		f.mu.Unlock()
		return "", ErrStreamEnded
	}
	node, err := f.cfg.RM.Recruit(f.cfg.Recruit)
	if err != nil {
		f.recruitFailed = true
		f.mu.Unlock()
		return "", err
	}
	w := f.newWorkerLocked(node, security.Plain{})
	f.mu.Unlock()

	if err := f.attachExecutor(w, node); err != nil {
		return "", err
	}

	if prepare != nil {
		// Not yet visible to the dispatcher or RecoverWorker, so the
		// handshake cannot race with task sends; remote bindings obey the
		// same abort-on-failed-rekey rule as AddWorkerWithPrepare.
		var bindErr error
		setCodec := func(c security.Codec) {
			if err := f.bindCodec(w, c); err != nil && bindErr == nil {
				bindErr = err
			}
		}
		if err := prepare(w.id, node, setCodec); err != nil {
			node.Release()
			w.closeExec()
			return "", fmt.Errorf("skel: prepare for %s: %w", w.id, err)
		}
		if bindErr != nil {
			node.Release()
			w.closeExec()
			return "", fmt.Errorf("skel: prepare rekey for %s: %w", w.id, bindErr)
		}
	}

	f.mu.Lock()
	if f.resultsClosed {
		f.mu.Unlock()
		node.Release()
		w.closeExec()
		return "", ErrStreamEnded
	}
	f.workers = append(f.workers, w)
	f.active++
	f.everHadWorker = true
	f.refreshRoutesLocked()
	f.mu.Unlock()
	go f.runWorker(w)
	f.flushPending()
	return w.id, nil
}

// RemoveWorker removes the most recently added worker, redistributing its
// queued tasks. It is the REMOVE_EXECUTOR actuator.
func (f *Farm) RemoveWorker() (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.workers) <= 1 {
		return "", ErrLastWorker
	}
	w := f.workers[len(f.workers)-1]
	if w.failed {
		return "", fmt.Errorf("skel: worker %s crashed; use RecoverWorker", w.id)
	}
	live := 0
	for _, other := range f.workers[:len(f.workers)-1] {
		if !other.exited && !other.failed {
			live++
		}
	}
	if live == 0 {
		return "", ErrLastWorker
	}
	f.workers = f.workers[:len(f.workers)-1]
	f.refreshRoutesLocked()
	orphans := f.splitEnvelopesLocked(w.queue.drain())
	w.queue.close()
	targets := f.restoreTargetsLocked(nil)
	for i, other := range targets {
		var share []*envelope
		for j := i; j < len(orphans); j += len(targets) {
			share = append(share, orphans[j])
		}
		other.queue.restore(share)
	}
	return w.id, nil
}

// splitEnvelopesLocked flattens batch envelopes back into single-task ones
// before redistribution: a batch's sealed blob was addressed to one binding,
// but redistribution scatters its members over many. Each member is
// re-encoded with the codec the batch was sealed with (payloads are still
// plaintext on the tasks), so the cross-binding story is identical to a
// redistributed single envelope. Single envelopes pass through untouched.
// Callers hold f.mu.
func (f *Farm) splitEnvelopesLocked(envs []*envelope) []*envelope {
	split := false
	for _, env := range envs {
		if env.batch {
			split = true
			break
		}
	}
	if !split {
		return envs
	}
	out := make([]*envelope, 0, len(envs))
	for _, env := range envs {
		if !env.batch {
			out = append(out, env)
			continue
		}
		for _, t := range env.tasks {
			wire, err := env.codec.Encode(t.Payload)
			if err != nil {
				f.reportErr(fmt.Errorf("skel: farm %s split batch re-seal task %d: %w", f.cfg.Name, t.ID, err))
				continue
			}
			out = append(out, &envelope{tasks: []*Task{t}, wire: wire, codec: env.codec})
		}
		// A split batch's span cannot follow its members (they scatter over
		// many bindings); it publishes as a partial span annotated with the
		// redistribution that cut it short.
		f.faultSpan(env.span, "split")
		env.span = nil
		putEnv(env)
	}
	return out
}

// Rebalance redistributes every queued task evenly over the live workers.
// It is the BALANCE_LOAD actuator and, unlike new input, it also works
// after the stream has ended (the Fig. 4 rebalance at endStream).
func (f *Farm) Rebalance() {
	f.mu.Lock()
	defer f.mu.Unlock()
	var live []*worker
	for _, w := range f.workers {
		if !w.exited && !w.failed {
			live = append(live, w)
		}
	}
	targets := f.restoreTargetsLocked(nil)
	if len(targets) == 0 {
		return
	}
	var all []*envelope
	for _, w := range live {
		all = append(all, w.queue.drain()...)
	}
	all = f.splitEnvelopesLocked(all)
	for i, w := range targets {
		var share []*envelope
		for j := i; j < len(all); j += len(targets) {
			share = append(share, all[j])
		}
		w.queue.restore(share)
	}
}

// KillWorker injects a crash fault into the named worker: it stops
// processing after its current task, its node is released, and its queued
// tasks remain stranded until RecoverWorker redistributes them. While
// stranded tasks exist the farm's output stream stays open, so a run with
// an unrecovered fault does not terminate — detecting and repairing this
// is the fault-tolerance manager's job.
func (f *Farm) KillWorker(workerID string) error {
	f.mu.Lock()
	for _, w := range f.workers {
		if w.id != workerID {
			continue
		}
		if w.failed || w.exited {
			f.mu.Unlock()
			return fmt.Errorf("skel: worker %s is already down", workerID)
		}
		w.failed = true
		w.queue.fail()
		f.refreshRoutesLocked()
		f.mu.Unlock()
		f.hooks.fire() // crash edge: wake the fault manager immediately
		return nil
	}
	f.mu.Unlock()
	return fmt.Errorf("%w: %s", ErrNoWorker, workerID)
}

// RecoverWorker repairs a crashed worker: its stranded tasks are
// redistributed over the live workers and the dead worker is removed from
// the pool. It is the fault-tolerance RECOVER actuator; replacing the lost
// capacity is a separate AddWorker decision.
func (f *Farm) RecoverWorker(workerID string) (recovered int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	idx := -1
	var dead *worker
	for i, w := range f.workers {
		if w.id == workerID {
			idx, dead = i, w
			break
		}
	}
	if dead == nil {
		return 0, fmt.Errorf("%w: %s", ErrNoWorker, workerID)
	}
	if !dead.failed {
		return 0, fmt.Errorf("skel: worker %s has not failed", workerID)
	}
	live := f.restoreTargetsLocked(dead)
	orphans := f.splitEnvelopesLocked(dead.queue.drain())
	if len(orphans) > 0 && len(live) == 0 {
		// Nothing to recover onto: put the tasks back and refuse, so the
		// caller can AddWorker first.
		dead.queue.restore(orphans)
		return 0, errors.New("skel: no live worker to recover onto")
	}
	for i, w := range live {
		var share []*envelope
		for j := i; j < len(orphans); j += len(live) {
			share = append(share, orphans[j])
		}
		w.queue.restore(share)
		if f.inputDone {
			// Post-stream recovery targets (e.g. AddRecoveryWorker's)
			// may still have open queues; close them so they drain the
			// recovered tasks and exit.
			w.queue.close()
		}
	}
	f.workers = append(f.workers[:idx], f.workers[idx+1:]...)
	f.refreshRoutesLocked()
	f.maybeCloseResultsLocked()
	return len(orphans), nil
}

// MigrateWorker moves a worker to a freshly recruited node satisfying req
// (e.g. a faster or less loaded one): a replacement worker is created on
// the new node with the same binding codec, the queued tasks move over,
// and the old worker retires gracefully after its current task. It is the
// MIGRATE actuator behind the paper's "migration of poorly performing
// activities to faster execution resources" policy. It returns the new
// worker's ID.
func (f *Farm) MigrateWorker(workerID string, req grid.Request) (string, error) {
	f.mu.Lock()
	var old *worker
	for _, w := range f.workers {
		if w.id == workerID {
			old = w
			break
		}
	}
	if old == nil {
		f.mu.Unlock()
		return "", fmt.Errorf("%w: %s", ErrNoWorker, workerID)
	}
	if old.failed || old.exited {
		f.mu.Unlock()
		return "", fmt.Errorf("skel: worker %s is down; use RecoverWorker", workerID)
	}
	// The migration carries the binding codec observed here; a SetCodec
	// racing with the migration may land on the retiring worker and be
	// superseded, which is the same §3.2 reactive hazard SetCodec already
	// documents for in-flight envelopes.
	codec := old.getCodec()
	node, err := f.cfg.RM.Recruit(req)
	if err != nil {
		f.mu.Unlock()
		return "", err
	}
	f.mu.Unlock()

	// Dialing the replacement's session and re-keying it are real network
	// I/O, so both run off-lock; the pool is re-validated before the swap.
	exec, err := f.executorFor(node)
	if err != nil {
		node.Release()
		return "", fmt.Errorf("skel: migrate %s: %w", workerID, err)
	}
	if exec != nil {
		wrapped, err := exec.Rekey(codec)
		if err != nil {
			node.Release()
			_ = exec.Close()
			return "", fmt.Errorf("skel: migrate %s rekey: %w", workerID, err)
		}
		codec = wrapped
	}

	f.mu.Lock()
	idx := -1
	for i, w := range f.workers {
		if w == old {
			idx = i
			break
		}
	}
	if idx == -1 || old.failed || old.exited {
		// The worker crashed or left while we were dialing: abandon the
		// migration rather than resurrect it behind the fault manager's
		// back.
		f.mu.Unlock()
		node.Release()
		if exec != nil {
			_ = exec.Close()
		}
		return "", fmt.Errorf("skel: worker %s went down during migration", workerID)
	}
	fresh := f.newWorkerLocked(node, codec)
	fresh.exec = exec
	// Batch envelopes split on migration too: their sealed blobs belong to
	// the old session's binding, and the single-envelope path already has
	// the cross-binding machinery (loopback decodes with the carried codec,
	// remote resolves foreign codecs by resealing).
	items := f.splitEnvelopesLocked(old.queue.drain())
	old.queue.close() // the old worker finishes its current task and exits
	fresh.queue.restore(items)
	if f.inputDone {
		fresh.queue.close()
	}
	f.workers[idx] = fresh
	f.active++
	f.refreshRoutesLocked()
	f.mu.Unlock()
	go f.runWorker(fresh)
	return fresh.id, nil
}

// SetCodec rebinds a worker connection onto a (secure) codec. Subsequent
// sends to that worker use the new codec; in-flight envelopes — including
// a send that snapshotted its codec just before the rebind, since encoding
// runs outside f.mu — keep the one they were encoded with. That window is
// the §3.2 reactive hazard the two-phase protocol exists to avoid: securing
// a binding *before* the worker becomes dispatchable (PrepareFunc) is
// race-free, securing it reactively is not. It is the SECURE_BINDING
// actuator.
func (f *Farm) SetCodec(workerID string, c security.Codec) error {
	if c == nil {
		return errors.New("skel: nil codec")
	}
	f.mu.Lock()
	var target *worker
	for _, w := range f.workers {
		if w.id == workerID {
			target = w
			break
		}
	}
	f.mu.Unlock()
	if target == nil {
		return fmt.Errorf("%w: %s", ErrNoWorker, workerID)
	}
	// bindCodec runs off-lock: for a remote binding it writes the rekey
	// frame to the wire, and the actuator must not stall sensors behind
	// network I/O. If the worker vanishes concurrently the bind is
	// harmless (nobody dispatches to it any more) or surfaces as a rekey
	// error from the closing session.
	if err := f.bindCodec(target, c); err != nil {
		return fmt.Errorf("skel: rekey %s: %w", workerID, err)
	}
	return nil
}

// WorkerInfo describes one worker for monitoring and the security manager.
type WorkerInfo struct {
	ID       string
	Node     *grid.Node
	QueueLen int
	Served   int
	Secure   bool
	Failed   bool
	// Remote reports that the worker executes in another process over a
	// transport session instead of in-process.
	Remote bool
}

// Workers returns a snapshot of the current worker pool.
func (f *Farm) Workers() []WorkerInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]WorkerInfo, len(f.workers))
	for i, w := range f.workers {
		out[i] = WorkerInfo{
			ID:       w.id,
			Node:     w.node,
			QueueLen: w.queue.len(),
			Served:   int(w.served.Load()),
			Secure:   w.getCodec().Secure(),
			Failed:   w.failed,
			Remote:   w.exec != nil,
		}
	}
	return out
}

// FarmStats is the sensor snapshot the ABC publishes as beans.
type FarmStats struct {
	Workers       int
	QueueLens     []int
	ArrivalRate   float64 // tasks per modelled second
	DepartureRate float64 // tasks per modelled second
	QueueVariance float64
	InputDone     bool
	Dispatched    uint64
	Completed     uint64
	// ErrorsDropped counts runtime errors lost to a full Errors() buffer:
	// most harnesses never drain that channel, so silent overflow would
	// hide dropped-task errors from every observer.
	ErrorsDropped uint64
	// RemoteWorkers counts pool members executing over a transport session.
	RemoteWorkers int
}

// Stats returns the current sensor snapshot.
func (f *Farm) Stats() FarmStats {
	f.mu.Lock()
	lens := make([]int, len(f.workers))
	remote := 0
	for i, w := range f.workers {
		lens[i] = w.queue.len()
		if w.exec != nil {
			remote++
		}
	}
	workers := len(f.workers)
	done := f.inputDone
	f.mu.Unlock()
	return FarmStats{
		Workers:       workers,
		QueueLens:     lens,
		ArrivalRate:   f.arrival.Rate() / f.env.scale(),
		DepartureRate: f.departure.Rate() / f.env.scale(),
		QueueVariance: metrics.QueueImbalance(lens),
		InputDone:     done,
		Dispatched:    f.arrival.Total(),
		Completed:     f.departure.Total(),
		ErrorsDropped: f.errsDropped.Load(),
		RemoteWorkers: remote,
	}
}

// Errors exposes asynchronous runtime errors (codec failures, dropped
// tasks). The channel is buffered; overflow is counted and surfaced as
// FarmStats.ErrorsDropped rather than vanishing.
func (f *Farm) Errors() <-chan error { return f.errs }

func (f *Farm) reportErr(err error) {
	select {
	case f.errs <- err:
	default:
		f.errsDropped.Add(1)
	}
}

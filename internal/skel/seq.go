package skel

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/grid"
	"repro/internal/metrics"
)

// Source is the stream generator — the Producer stage of the Fig. 4
// pipeline. It emits Total tasks separated by a settable inter-emission
// interval (modelled time). The SetInterval actuator is what the producer's
// manager drives when the application manager sends incRate / decRate
// contracts.
type Source struct {
	name  string
	env   Env
	total int
	make  func(i int) *Task

	mu       sync.Mutex
	interval time.Duration

	emitted *metrics.RateMeter
	count   int
	done    bool
	doneMu  sync.Mutex
	hooks   hooks
}

// NewSource builds a source emitting total tasks, one every interval of
// modelled time, built by mk (nil mk yields empty tasks with zero work).
func NewSource(name string, env Env, total int, interval time.Duration, mk func(i int) *Task) *Source {
	if total < 0 {
		panic("skel: negative task count")
	}
	if mk == nil {
		mk = func(i int) *Task { return &Task{ID: NextTaskID()} }
	}
	return &Source{
		name:     name,
		env:      env,
		total:    total,
		make:     mk,
		interval: interval,
		emitted:  metrics.NewRateMeter(env.clock(), rateWindow(env)),
	}
}

// rateWindow picks the sliding window for rate meters: 10 s of modelled
// time, converted to clock time by the scale.
func rateWindow(env Env) time.Duration {
	return time.Duration(float64(10*time.Second) / env.scale())
}

// Name implements Stage.
func (s *Source) Name() string { return s.name }

// SetInterval changes the inter-emission interval (modelled time). It is
// the producer's rate actuator. Non-positive intervals mean "as fast as
// possible".
func (s *Source) SetInterval(d time.Duration) {
	s.mu.Lock()
	s.interval = d
	s.mu.Unlock()
}

// Interval returns the current inter-emission interval.
func (s *Source) Interval() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.interval
}

// Emitted returns how many tasks have been emitted so far.
func (s *Source) Emitted() int {
	s.doneMu.Lock()
	defer s.doneMu.Unlock()
	return s.count
}

// Done reports whether the source has emitted all its tasks — the
// endStream condition of Fig. 4.
func (s *Source) Done() bool {
	s.doneMu.Lock()
	defer s.doneMu.Unlock()
	return s.done
}

// Rate returns the current emission rate in tasks per modelled second.
func (s *Source) Rate() float64 {
	return s.emitted.Rate() / s.env.scale()
}

// OnEvent registers fn to be called on the source's end-of-stream edge
// (natural exhaustion or cancelation). It returns the unsubscribe
// function. fn must not block.
func (s *Source) OnEvent(fn func()) (cancel func()) { return s.hooks.subscribe(fn) }

// Run implements Stage. in is ignored (a source has no upstream) and may
// be nil. Canceling ctx stops the intake: emission ends early, the output
// closes, and the downstream stages drain what was already emitted.
//
// Emission is paced against absolute deadlines rather than relative
// sleeps: at high time scales the scaled intervals are small enough that
// per-sleep overshoot would otherwise systematically deflate the emission
// rate the manager contracts for.
func (s *Source) Run(ctx context.Context, _ <-chan *Task, out chan<- *Task) {
	if ctx == nil {
		ctx = context.Background()
	}
	clock := s.env.clock()
	next := clock.Now()
emit:
	for i := 0; i < s.total; i++ {
		interval := time.Duration(float64(s.Interval()) / s.env.scale())
		next = next.Add(interval)
		now := clock.Now()
		if d := next.Sub(now); d > 0 {
			select {
			case <-ctx.Done():
				break emit
			case <-clock.After(d):
			}
		} else if -d > interval {
			// Far behind (e.g. the interval was just shortened): do not
			// burst the whole backlog, resynchronize instead.
			next = now
		}
		t := s.make(i)
		if t.ID == 0 {
			t.ID = NextTaskID()
		}
		t.Created = s.env.clock().Now()
		select {
		case <-ctx.Done():
			break emit
		case out <- t:
		}
		s.emitted.Mark()
		s.doneMu.Lock()
		s.count++
		s.doneMu.Unlock()
	}
	s.doneMu.Lock()
	s.done = true
	s.doneMu.Unlock()
	close(out)
	s.hooks.fire()
}

// Seq is a sequential stage placed on a grid node: each task costs its
// nominal Work converted through the node's current effective speed, then
// flows through the stage function.
type Seq struct {
	name string
	env  Env
	fn   Fn
	node *grid.Node
	work time.Duration // per-task override; 0 means use Task.Work

	served *metrics.RateMeter
}

// NewSeq builds a sequential stage on the given node (which must be
// non-nil; the stage allocates one core slot for the duration of Run).
func NewSeq(name string, env Env, node *grid.Node, fn Fn) *Seq {
	if node == nil {
		panic(fmt.Sprintf("skel: stage %s needs a node", name))
	}
	return &Seq{
		name:   name,
		env:    env,
		fn:     fn,
		node:   node,
		served: metrics.NewRateMeter(env.clock(), rateWindow(env)),
	}
}

// Name implements Stage.
func (s *Seq) Name() string { return s.name }

// Node returns the stage's placement.
func (s *Seq) Node() *grid.Node { return s.node }

// WithWork makes every task cost d in this stage regardless of the task's
// own Work (multi-stage pipelines give each stage its own cost this way).
// It returns s for chaining and must be called before Run.
func (s *Seq) WithWork(d time.Duration) *Seq {
	s.work = d
	return s
}

// Rate returns the stage's service rate in tasks per modelled second.
func (s *Seq) Rate() float64 {
	return s.served.Rate() / s.env.scale()
}

// Served returns the number of tasks completed by the stage.
func (s *Seq) Served() uint64 { return s.served.Total() }

// Run implements Stage. A sequential stage drains on cancel: it keeps
// serving until its input closes (the Source upstream stops intake when
// ctx is canceled), so no accepted task is lost to a graceful shutdown.
func (s *Seq) Run(_ context.Context, in <-chan *Task, out chan<- *Task) {
	s.node.Allocate()
	defer s.node.Release()
	for t := range in {
		work := t.Work
		if s.work > 0 {
			work = s.work
		}
		s.env.SleepScaled(s.node.ServiceTime(work))
		out <- applyFn(s.fn, t)
		s.served.Mark()
	}
	close(out)
}

// Sink is the terminal stage — the Consumer of Fig. 4. It drains its input
// (optionally through fn for display-like work) and measures the completed
// throughput the application manager checks against the contract.
type Sink struct {
	name string
	env  Env
	fn   Fn

	rate  *metrics.RateMeter
	count metrics.Gauge
	done  chan struct{}
	hooks hooks
}

// NewSink builds a sink.
func NewSink(name string, env Env, fn Fn) *Sink {
	return &Sink{
		name: name,
		env:  env,
		fn:   fn,
		rate: metrics.NewRateMeter(env.clock(), rateWindow(env)),
		done: make(chan struct{}),
	}
}

// Name implements Stage.
func (s *Sink) Name() string { return s.name }

// Rate returns the completed-task rate in tasks per modelled second.
func (s *Sink) Rate() float64 {
	return s.rate.Rate() / s.env.scale()
}

// Consumed returns how many tasks reached the sink.
func (s *Sink) Consumed() int { return int(s.count.Value()) }

// Done is closed once the whole stream has been consumed.
func (s *Sink) Done() <-chan struct{} { return s.done }

// OnEvent registers fn to be called on the sink's stream-complete edge.
// It returns the unsubscribe function. fn must not block.
func (s *Sink) OnEvent(fn func()) (cancel func()) { return s.hooks.subscribe(fn) }

// Run implements Stage. out may be nil; results are forwarded when it is
// not. The sink drains on cancel: it consumes until its input closes.
func (s *Sink) Run(_ context.Context, in <-chan *Task, out chan<- *Task) {
	for t := range in {
		t = applyFn(s.fn, t)
		s.rate.Mark()
		s.count.Add(1)
		if out != nil {
			out <- t
		}
	}
	if out != nil {
		close(out)
	}
	close(s.done)
	s.hooks.fire()
}

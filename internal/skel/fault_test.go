package skel

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/runtime/leaktest"
)

func TestFarmReduceCollection(t *testing.T) {
	f, err := NewFarm(FarmConfig{
		Name: "sum", Env: fastEnv(), RM: smpRM(8), InitialWorkers: 4,
		Collect: Reduce,
		Fn: func(t *Task) *Task {
			// worker: payload -> its own length as one byte
			t.Payload = []byte{byte(len(t.Payload))}
			return t
		},
		Reduce: func(a, b []byte) []byte { return []byte{a[0] + b[0]} },
	})
	if err != nil {
		t.Fatal(err)
	}
	tasks := make([]*Task, 10)
	for i := range tasks {
		tasks[i] = &Task{ID: NextTaskID(), Payload: make([]byte, 3)}
	}
	results := runStage(t, f, tasks)
	if len(results) != 1 {
		t.Fatalf("reduce emitted %d results, want 1", len(results))
	}
	if got := results[0].Payload[0]; got != 30 {
		t.Fatalf("reduced value = %d, want 10*3=30", got)
	}
	if f.Stats().Completed != 10 {
		t.Fatalf("departure meter counted %d", f.Stats().Completed)
	}
}

func TestFarmReduceNeedsFunction(t *testing.T) {
	if _, err := NewFarm(FarmConfig{RM: smpRM(2), Collect: Reduce}); err == nil {
		t.Fatal("Reduce without Reduce fn accepted")
	}
}

func TestFarmReduceEmptyStream(t *testing.T) {
	f, _ := NewFarm(FarmConfig{
		Name: "sum", Env: fastEnv(), RM: smpRM(4),
		Collect: Reduce, Reduce: func(a, b []byte) []byte { return a },
	})
	results := runStage(t, f, nil)
	if len(results) != 0 {
		t.Fatalf("empty reduce emitted %d results", len(results))
	}
}

func TestKillWorkerStrandsTasksUntilRecovered(t *testing.T) {
	f, _ := NewFarm(FarmConfig{
		Name: "ft", Env: Env{TimeScale: 100}, RM: smpRM(8), InitialWorkers: 2,
	})
	in := make(chan *Task)
	out := make(chan *Task, 256)
	got := make(chan int, 1)
	go func() {
		n := 0
		for range out {
			n++
		}
		got <- n
	}()
	done := make(chan struct{})
	go func() { f.Run(context.Background(), in, out); close(done) }()
	waitFor(t, func() bool { return len(f.Workers()) == 2 })

	// Build a backlog on both workers with slow tasks.
	for i := 0; i < 20; i++ {
		in <- &Task{ID: NextTaskID(), Work: 2 * time.Second}
	}
	waitFor(t, func() bool { return f.Stats().Dispatched == 20 })

	victim := f.Workers()[0].ID
	if err := f.KillWorker(victim); err != nil {
		t.Fatal(err)
	}
	if err := f.KillWorker(victim); err == nil {
		t.Fatal("double kill accepted")
	}
	if err := f.KillWorker("nope"); err == nil {
		t.Fatal("kill of unknown worker accepted")
	}
	// The victim must be reported failed.
	waitFor(t, func() bool {
		for _, w := range f.Workers() {
			if w.ID == victim && w.Failed {
				return true
			}
		}
		return false
	})

	// Recover: stranded tasks move to the surviving worker.
	waitFor(t, func() bool {
		_, err := f.RecoverWorker(victim)
		return err == nil
	})
	if _, err := f.RecoverWorker(victim); err == nil {
		t.Fatal("double recover accepted")
	}
	close(in)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("farm did not terminate after recovery")
	}
	if n := <-got; n != 20 {
		t.Fatalf("completed %d/20 after crash+recovery", n)
	}
}

func TestRecoverWorkerErrors(t *testing.T) {
	f, _ := NewFarm(FarmConfig{Name: "ft", Env: fastEnv(), RM: smpRM(4), InitialWorkers: 2})
	in := make(chan *Task)
	out := make(chan *Task, 16)
	go func() {
		for range out {
		}
	}()
	done := make(chan struct{})
	go func() { f.Run(context.Background(), in, out); close(done) }()
	waitFor(t, func() bool { return len(f.Workers()) == 2 })
	if _, err := f.RecoverWorker("nope"); err == nil {
		t.Fatal("recover of unknown worker accepted")
	}
	healthy := f.Workers()[0].ID
	if _, err := f.RecoverWorker(healthy); err == nil {
		t.Fatal("recover of healthy worker accepted")
	}
	close(in)
	<-done
}

func TestRemoveWorkerRefusesCrashed(t *testing.T) {
	f, _ := NewFarm(FarmConfig{Name: "ft", Env: fastEnv(), RM: smpRM(4), InitialWorkers: 2})
	in := make(chan *Task)
	out := make(chan *Task, 16)
	go func() {
		for range out {
		}
	}()
	done := make(chan struct{})
	go func() { f.Run(context.Background(), in, out); close(done) }()
	waitFor(t, func() bool { return len(f.Workers()) == 2 })
	last := f.Workers()[1].ID
	if err := f.KillWorker(last); err != nil {
		t.Fatal(err)
	}
	if _, err := f.RemoveWorker(); err == nil {
		t.Fatal("RemoveWorker removed a crashed worker")
	}
	if _, err := f.RecoverWorker(last); err != nil {
		t.Fatal(err)
	}
	close(in)
	<-done
}

// TestFarmConservationUnderChaos is the central safety property of the
// reconfigurable farm: whatever interleaving of addWorker, removeWorker,
// rebalance and kill/recover happens while a stream flows, every accepted
// task is eventually delivered exactly once.
func TestFarmConservationUnderChaos(t *testing.T) {
	run := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const total = 60
		f, err := NewFarm(FarmConfig{
			Name: "chaos", Env: Env{TimeScale: 2000}, RM: smpRM(16), InitialWorkers: 3,
		})
		if err != nil {
			return false
		}
		in := make(chan *Task)
		out := make(chan *Task, total)
		seen := make(chan map[uint64]int, 1)
		go func() {
			m := map[uint64]int{}
			for tsk := range out {
				m[tsk.ID]++
			}
			seen <- m
		}()
		done := make(chan struct{})
		go func() { f.Run(context.Background(), in, out); close(done) }()

		ids := map[uint64]bool{}
		for i := 0; i < total; i++ {
			id := NextTaskID()
			ids[id] = true
			in <- &Task{ID: id, Work: time.Duration(rng.Intn(40)) * time.Millisecond}
			switch rng.Intn(6) {
			case 0:
				f.AddWorker()
			case 1:
				f.RemoveWorker()
			case 2:
				f.Rebalance()
			case 3:
				ws := f.Workers()
				if len(ws) > 1 {
					victim := ws[rng.Intn(len(ws))]
					if !victim.Failed {
						if err := f.KillWorker(victim.ID); err == nil {
							// recover immediately so capacity survives
							for {
								if _, err := f.RecoverWorker(victim.ID); err == nil {
									break
								}
								if _, err := f.AddRecoveryWorker(); err != nil {
									time.Sleep(time.Millisecond)
								}
							}
						}
					}
				}
			}
		}
		close(in)
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Log("chaos run hung")
			return false
		}
		m := <-seen
		if len(m) != total {
			t.Logf("seed %d: %d distinct tasks delivered, want %d", seed, len(m), total)
			return false
		}
		for id, n := range m {
			if !ids[id] || n != 1 {
				t.Logf("seed %d: task %d delivered %d times", seed, id, n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestAddRecoveryWorkerAfterRunCompletes is the regression test for the
// post-run recovery leak: once the run has completed (results closed, no
// stranded tasks), AddRecoveryWorker must refuse instead of recruiting a
// worker that blocks forever on an open empty queue. On the old code this
// test fails twice over — the call succeeds and leaktest catches the
// leaked worker goroutine.
func TestAddRecoveryWorkerAfterRunCompletes(t *testing.T) {
	defer leaktest.Check(t)()
	rm := smpRM(4)
	f, _ := NewFarm(FarmConfig{Name: "ft", Env: fastEnv(), RM: rm, InitialWorkers: 1})
	runStage(t, f, mkTasks(2, 0)) // completes the stream
	if _, err := f.AddWorker(); err != ErrStreamEnded {
		t.Fatalf("AddWorker post-stream err = %v", err)
	}
	if _, err := f.AddRecoveryWorker(); err != ErrStreamEnded {
		t.Fatalf("AddRecoveryWorker after completed run err = %v, want ErrStreamEnded", err)
	}
	if rm.CoresInUse() != 0 {
		t.Fatalf("CoresInUse after refused recovery = %d, want 0", rm.CoresInUse())
	}
}

// TestAddRecoveryWorkerRecoversStrandedPostStream pins the legitimate
// window AddRecoveryWorker exists for: the input stream has ended but a
// crash left stranded tasks, so the result stream is still open and a
// recovery worker must be recruitable to drain them.
func TestAddRecoveryWorkerRecoversStrandedPostStream(t *testing.T) {
	defer leaktest.Check(t)()
	f, _ := NewFarm(FarmConfig{Name: "ft", Env: Env{TimeScale: 100}, RM: smpRM(4), InitialWorkers: 1})
	in := make(chan *Task)
	out := make(chan *Task, 16)
	got := make(chan int, 1)
	go func() {
		n := 0
		for range out {
			n++
		}
		got <- n
	}()
	done := make(chan struct{})
	go func() { f.Run(context.Background(), in, out); close(done) }()
	waitFor(t, func() bool { return len(f.Workers()) == 1 })

	for i := 0; i < 5; i++ {
		in <- &Task{ID: NextTaskID(), Work: 2 * time.Second}
	}
	waitFor(t, func() bool { return f.Stats().Dispatched == 5 })
	victim := f.Workers()[0].ID
	if err := f.KillWorker(victim); err != nil {
		t.Fatal(err)
	}
	close(in) // input done, but stranded tasks keep the results open

	id, err := f.AddRecoveryWorker()
	if err != nil {
		t.Fatalf("AddRecoveryWorker with stranded tasks err = %v", err)
	}
	if id == "" {
		t.Fatal("no worker id")
	}
	waitFor(t, func() bool {
		_, err := f.RecoverWorker(victim)
		return err == nil
	})
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("farm did not terminate after post-stream recovery")
	}
	if n := <-got; n != 5 {
		t.Fatalf("completed %d/5 after post-stream recovery", n)
	}
}

package skel

import (
	"context"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/security"
)

func TestMigrateWorkerMovesQueueAndCompletes(t *testing.T) {
	trusted := grid.Domain{Name: "d", Trusted: true}
	slow := grid.NewNode("slow", trusted, 1, 0.25)
	fast := grid.NewNode("fast", trusted, 1, 2.0)
	// Recruitment order is trusted+faster first, so occupy fast initially
	// to force the first worker onto the slow node... instead recruit by
	// MinSpeed later; start the farm on the slow node by excluding fast.
	rm := grid.NewResourceManager(slow)
	f, _ := NewFarm(FarmConfig{Name: "mig", Env: Env{TimeScale: 200}, RM: rm, InitialWorkers: 1})
	in := make(chan *Task)
	out := make(chan *Task, 64)
	count := make(chan int, 1)
	go func() {
		n := 0
		for range out {
			n++
		}
		count <- n
	}()
	done := make(chan struct{})
	go func() { f.Run(context.Background(), in, out); close(done) }()
	waitFor(t, func() bool { return len(f.Workers()) == 1 })

	for i := 0; i < 12; i++ {
		in <- &Task{ID: NextTaskID(), Work: 2 * time.Second}
	}
	waitFor(t, func() bool { return f.Stats().Dispatched == 12 })

	// Add the fast node to the pool and migrate onto it.
	rm2 := grid.NewResourceManager(slow, fast)
	_ = rm2 // the farm keeps its own RM; recruit via a fresh request below
	victim := f.Workers()[0].ID
	if _, err := f.MigrateWorker(victim, grid.Request{MinSpeed: 1.0}); err == nil {
		t.Fatal("migration to a node the RM does not have must fail")
	}

	// The farm's RM only has the slow node; build a farm wired to both to
	// exercise the success path.
	close(in)
	<-done
	<-count

	rmBoth := grid.NewResourceManager(slow, fast)
	// Occupy fast so the initial worker lands on slow.
	fastSlot, err := rmBoth.Recruit(grid.Request{MinSpeed: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := NewFarm(FarmConfig{Name: "mig2", Env: Env{TimeScale: 200}, RM: rmBoth, InitialWorkers: 1})
	in2 := make(chan *Task)
	out2 := make(chan *Task, 64)
	count2 := make(chan int, 1)
	go func() {
		n := 0
		for range out2 {
			n++
		}
		count2 <- n
	}()
	done2 := make(chan struct{})
	go func() { f2.Run(context.Background(), in2, out2); close(done2) }()
	waitFor(t, func() bool { return len(f2.Workers()) == 1 })
	if f2.Workers()[0].Node.ID != "slow" {
		t.Fatalf("initial worker on %s, want slow", f2.Workers()[0].Node.ID)
	}
	for i := 0; i < 12; i++ {
		in2 <- &Task{ID: NextTaskID(), Work: 2 * time.Second}
	}
	waitFor(t, func() bool { return f2.Stats().Dispatched == 12 })

	fastSlot.Release() // the fast node becomes available
	oldID := f2.Workers()[0].ID
	newID, err := f2.MigrateWorker(oldID, grid.Request{MinSpeed: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if newID == oldID {
		t.Fatal("migration kept the same worker id")
	}
	ws := f2.Workers()
	if len(ws) != 1 || ws[0].Node.ID != "fast" {
		t.Fatalf("workers after migration: %+v", ws)
	}
	close(in2)
	select {
	case <-done2:
	case <-time.After(30 * time.Second):
		t.Fatal("farm hung after migration")
	}
	if n := <-count2; n != 12 {
		t.Fatalf("completed %d/12 after migration", n)
	}
	// Both nodes fully released.
	if slow.Busy() != 0 || fast.Busy() != 0 {
		t.Fatalf("slots leaked: slow=%d fast=%d", slow.Busy(), fast.Busy())
	}
}

func TestMigrateWorkerErrors(t *testing.T) {
	f, _ := NewFarm(FarmConfig{Name: "mig", Env: fastEnv(), RM: smpRM(4), InitialWorkers: 2})
	in := make(chan *Task)
	out := make(chan *Task, 16)
	go func() {
		for range out {
		}
	}()
	done := make(chan struct{})
	go func() { f.Run(context.Background(), in, out); close(done) }()
	waitFor(t, func() bool { return len(f.Workers()) == 2 })
	if _, err := f.MigrateWorker("nope", grid.Request{}); err == nil {
		t.Fatal("migration of unknown worker accepted")
	}
	victim := f.Workers()[0].ID
	if err := f.KillWorker(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := f.MigrateWorker(victim, grid.Request{}); err == nil {
		t.Fatal("migration of crashed worker accepted")
	}
	if _, err := f.RecoverWorker(victim); err != nil {
		t.Fatal(err)
	}
	close(in)
	<-done
}

func TestMigrateWorkerKeepsCodec(t *testing.T) {
	f, _ := NewFarm(FarmConfig{Name: "mig", Env: fastEnv(), RM: smpRM(8), InitialWorkers: 1})
	in := make(chan *Task)
	out := make(chan *Task, 16)
	go func() {
		for range out {
		}
	}()
	done := make(chan struct{})
	go func() { f.Run(context.Background(), in, out); close(done) }()
	waitFor(t, func() bool { return len(f.Workers()) == 1 })
	old := f.Workers()[0]
	key := make([]byte, 32)
	if err := f.SetCodec(old.ID, mustGCM(key)); err != nil {
		t.Fatal(err)
	}
	newID, err := f.MigrateWorker(old.ID, grid.Request{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range f.Workers() {
		if w.ID == newID && !w.Secure {
			t.Fatal("secure codec lost in migration")
		}
	}
	close(in)
	<-done
}

func mustGCM(key []byte) security.Codec {
	return security.MustAESGCM(key, nil, 0)
}

package planner

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/grid"
)

func TestFarmThroughput(t *testing.T) {
	// 4 workers, 2 s tasks, reference speed, plentiful input: 2 tasks/s.
	got := FarmThroughput(4, 2*time.Second, 1.0, 100)
	if math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("throughput = %v, want 2", got)
	}
	// Arrival-limited.
	if got := FarmThroughput(4, 2*time.Second, 1.0, 0.5); got != 0.5 {
		t.Fatalf("arrival-capped throughput = %v", got)
	}
	// Degenerate inputs.
	if FarmThroughput(0, time.Second, 1, 1) != 0 ||
		FarmThroughput(1, 0, 1, 1) != 0 ||
		FarmThroughput(1, time.Second, 0, 1) != 0 {
		t.Fatal("degenerate inputs must predict 0")
	}
}

func TestFarmDegree(t *testing.T) {
	// 0.6 tasks/s of 6.4 s tasks needs ceil(3.84) = 4 workers.
	if d := FarmDegree(0.6, 6400*time.Millisecond, 1.0); d != 4 {
		t.Fatalf("degree = %d, want 4", d)
	}
	// Faster nodes need fewer workers.
	if d := FarmDegree(0.6, 6400*time.Millisecond, 2.0); d != 2 {
		t.Fatalf("degree at speed 2 = %d, want 2", d)
	}
	if d := FarmDegree(0, time.Second, 1); d != 1 {
		t.Fatalf("degenerate degree = %d, want 1", d)
	}
}

// Property: FarmDegree returns the *minimal* degree whose capacity reaches
// the target.
func TestFarmDegreeMinimality(t *testing.T) {
	f := func(rate100 uint8, svcMS uint16) bool {
		target := float64(rate100%200+1) / 100
		svc := time.Duration(int(svcMS)%5000+1) * time.Millisecond
		d := FarmDegree(target, svc, 1.0)
		capAt := func(k int) float64 { return float64(k) / svc.Seconds() }
		if capAt(d) < target-1e-9 {
			return false
		}
		if d > 1 && capAt(d-1) >= target+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineThroughputAndBottleneck(t *testing.T) {
	rates := []float64{0.8, 0.3, 0.5}
	if got := PipelineThroughput(rates); got != 0.3 {
		t.Fatalf("pipeline throughput = %v", got)
	}
	idx, rate := Bottleneck(rates)
	if idx != 1 || rate != 0.3 {
		t.Fatalf("bottleneck = %d/%v", idx, rate)
	}
	if PipelineThroughput(nil) != 0 {
		t.Fatal("empty pipeline throughput != 0")
	}
	if idx, _ := Bottleneck(nil); idx != -1 {
		t.Fatal("empty bottleneck index != -1")
	}
}

func TestPlanFarm(t *testing.T) {
	p := grid.NewSMP(12)
	plan, err := PlanFarm(p.RM, grid.Request{}, 0.6, 6400*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Degree != 4 || !plan.Feasible {
		t.Fatalf("plan = %+v", plan)
	}
	if plan.Predicted < 0.6 {
		t.Fatalf("predicted %v below target", plan.Predicted)
	}

	// Infeasible: tiny platform caps the plan at its capacity.
	small := grid.NewSMP(2)
	plan, err = PlanFarm(small.RM, grid.Request{}, 5, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Feasible || plan.Degree != 2 {
		t.Fatalf("capped plan = %+v", plan)
	}

	// No matching nodes at all.
	empty := grid.NewResourceManager()
	plan, err = PlanFarm(empty, grid.Request{}, 1, time.Second)
	if err != nil || plan.Feasible {
		t.Fatalf("empty plan = %+v, %v", plan, err)
	}

	if _, err := PlanFarm(nil, grid.Request{}, 1, time.Second); err == nil {
		t.Fatal("nil RM accepted")
	}
	if _, err := PlanFarm(p.RM, grid.Request{}, 0, time.Second); err == nil {
		t.Fatal("zero target accepted")
	}
}

func TestPlanFarmRespectsRequest(t *testing.T) {
	trusted := grid.Domain{Name: "t", Trusted: true}
	untrusted := grid.Domain{Name: "u", Trusted: false}
	rm := grid.NewResourceManager(
		grid.NewNode("slowT", trusted, 4, 0.5),
		grid.NewNode("fastU", untrusted, 4, 2.0),
	)
	plan, err := PlanFarm(rm, grid.Request{TrustedOnly: true}, 1.0, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Only the slow trusted node counts: degree 2 at speed 0.5.
	if plan.Degree != 2 {
		t.Fatalf("trusted-only degree = %d, want 2", plan.Degree)
	}
}

// Package planner implements the analytical performance models behind the
// "initial parallelism degree set-up" policy the paper lists in §3: the
// classical task-farm and pipeline models used to derive an initial
// configuration from a throughput contract, instead of starting from one
// worker and ramping up reactively. The same models justify the P_spl
// heuristics (pipeline throughput = slowest stage) that
// internal/contract implements.
package planner

import (
	"fmt"
	"math"
	"time"

	"repro/internal/grid"
)

// FarmThroughput predicts the steady-state completion rate (tasks/s) of a
// task farm with the given parallelism degree: the offered arrival rate
// capped by the service capacity degree*speed/serviceTime.
func FarmThroughput(degree int, serviceTime time.Duration, speed, arrivalRate float64) float64 {
	if degree <= 0 || serviceTime <= 0 || speed <= 0 {
		return 0
	}
	capacity := float64(degree) * speed / serviceTime.Seconds()
	return math.Min(arrivalRate, capacity)
}

// FarmDegree returns the minimal parallelism degree whose predicted
// capacity reaches targetRate tasks/s with workers of the given relative
// speed. It returns at least 1.
func FarmDegree(targetRate float64, serviceTime time.Duration, speed float64) int {
	if targetRate <= 0 || serviceTime <= 0 || speed <= 0 {
		return 1
	}
	d := int(math.Ceil(targetRate * serviceTime.Seconds() / speed))
	if d < 1 {
		d = 1
	}
	return d
}

// PipelineThroughput predicts a pipeline's completion rate: the minimum of
// its stage rates (the model P_spl exploits).
func PipelineThroughput(stageRates []float64) float64 {
	if len(stageRates) == 0 {
		return 0
	}
	min := stageRates[0]
	for _, r := range stageRates[1:] {
		if r < min {
			min = r
		}
	}
	return min
}

// Bottleneck returns the index and rate of the slowest stage.
func Bottleneck(stageRates []float64) (int, float64) {
	if len(stageRates) == 0 {
		return -1, 0
	}
	idx := 0
	for i, r := range stageRates {
		if r < stageRates[idx] {
			idx = i
		}
	}
	return idx, stageRates[idx]
}

// FarmPlan is a model-derived initial farm configuration.
type FarmPlan struct {
	Degree    int
	Predicted float64 // predicted throughput at that degree (uncapped by arrival)
	Feasible  bool    // the platform has enough free capacity
	Capacity  int     // free core slots matching the request
}

// PlanFarm derives the initial degree for a farm that must deliver
// targetRate tasks/s of work costing serviceTime per task on reference
// cores, bounded by what the platform can actually supply. The reference
// speed used is the fastest matching node's (conservative plans can pass a
// stricter Request).
func PlanFarm(rm *grid.ResourceManager, req grid.Request, targetRate float64, serviceTime time.Duration) (FarmPlan, error) {
	if rm == nil {
		return FarmPlan{}, fmt.Errorf("planner: nil resource manager")
	}
	if targetRate <= 0 || serviceTime <= 0 {
		return FarmPlan{}, fmt.Errorf("planner: need positive target rate and service time")
	}
	speed := 0.0
	for _, n := range rm.Nodes() {
		if req.TrustedOnly && !n.Domain.Trusted {
			continue
		}
		if req.MinSpeed > 0 && n.Speed < req.MinSpeed {
			continue
		}
		if n.Speed > speed {
			speed = n.Speed
		}
	}
	if speed == 0 {
		return FarmPlan{Feasible: false}, nil
	}
	degree := FarmDegree(targetRate, serviceTime, speed)
	cap := rm.CapacityFree(req)
	plan := FarmPlan{
		Degree:    degree,
		Predicted: float64(degree) * speed / serviceTime.Seconds(),
		Feasible:  degree <= cap,
		Capacity:  cap,
	}
	if !plan.Feasible && cap > 0 {
		plan.Degree = cap // best effort: everything the platform has
		plan.Predicted = float64(cap) * speed / serviceTime.Seconds()
	}
	return plan, nil
}

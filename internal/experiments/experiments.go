// Package experiments contains the reproduction harnesses: one entry point
// per evaluation artefact of the paper (Fig. 3, Fig. 4) plus the extension
// experiments DESIGN.md lists (external-load adaptation, multi-concern
// coordination, contract-split soundness). Each harness builds the
// corresponding behavioural-skeleton application with paper-faithful
// parameters (uniformly time-scaled), runs it, and returns the event log
// and series to compare with the paper's figures.
package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/contract"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/manager"
	"repro/internal/simclock"
	"repro/internal/skel"
	"repro/internal/trace"
)

// Options configures a harness run.
type Options struct {
	// Scale divides all modelled durations; 200 makes the minutes-long
	// paper runs finish in a couple of wall-clock seconds. Default 200.
	Scale float64
	// Tasks overrides the stream length (0 = experiment default).
	Tasks int
	// Out, when non-nil, receives the rendered figure.
	Out io.Writer
	// RulesDriven makes Fig4 store the application manager's policy as
	// DRL rules (rules.PipeRuleSource) instead of the built-in Go policy.
	RulesDriven bool
	// Telemetry, when non-empty, serves the introspection endpoint
	// (/healthz, /metrics, /trace, /managers, pprof) on this address for
	// the duration of each run. Empty disables the listener.
	Telemetry string
}

// enableTelemetry binds the introspection server when opts ask for one.
// Called per app, just before RunContext, so harnesses running several
// apps in sequence (MultiConcern) rebind the same address for each run.
func enableTelemetry(app *core.App, opts Options) error {
	if opts.Telemetry == "" {
		return nil
	}
	srv, err := app.EnableTelemetry(opts.Telemetry)
	if err != nil {
		return err
	}
	if opts.Out != nil {
		fmt.Fprintf(opts.Out, "telemetry: serving on %s\n", srv.Addr())
	}
	return nil
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 200
	}
	return o.Scale
}

func (o Options) env() skel.Env {
	return skel.Env{Clock: simclock.NewReal(), TimeScale: o.scale()}
}

// Fig3 reproduces the single-manager experiment of Fig. 3: a task-farm BS
// processing a stream of (synthetic) medical images under the user contract
// "0.6 images/s"; the AM adds processing resources until the contract is
// satisfied.
//
// Paper-faithful parameters: images cost 6.4 s on one core (so a single
// worker delivers ~0.16 img/s and the contract needs ~4 workers), images
// arrive at 1 img/s, and the farm starts with one worker.
func Fig3(ctx context.Context, opts Options) (*core.Result, error) {
	tasks := opts.Tasks
	if tasks <= 0 {
		tasks = 200
	}
	app, err := core.NewFarmApp(core.FarmAppConfig{
		Name:           "fig3",
		Env:            opts.env(),
		Platform:       grid.NewSMP(12),
		Tasks:          tasks,
		TaskWork:       6400 * time.Millisecond,
		SourceInterval: 1250 * time.Millisecond, // 0.8 img/s offered
		Payload:        256,
		InitialWorkers: 1,
		Contract:       contract.MinThroughput(0.6),
		Limits:         manager.FarmLimits{MaxWorkers: 10},
		Period:         3 * time.Second,
		SamplePeriod:   time.Second,
	})
	if err != nil {
		return nil, err
	}
	if err := enableTelemetry(app, opts); err != nil {
		return nil, err
	}
	res, err := app.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	if opts.Out != nil {
		writeFig3(opts.Out, res)
	}
	return res, nil
}

// Fig4 reproduces the hierarchical-management experiment of Fig. 4: the
// three-stage pipeline pipe(producer, farm(filter), consumer) with the
// manager hierarchy AM_A / AM_P / AM_F / AM_C and the application SLA
// c_tRange = 0.3 - 0.7 tasks/s.
//
// The producer deliberately starts too slow (0.2 tasks/s) so the first
// phase of the paper's narrative — notEnough -> raiseViol -> incRate —
// plays out, followed by addWorker reconfigurations, the decRate warning
// and the endStream tail with its rebalance.
func Fig4(ctx context.Context, opts Options) (*core.Result, error) {
	tasks := opts.Tasks
	if tasks <= 0 {
		tasks = 150
	}
	app, err := core.NewPipelineApp(core.PipelineAppConfig{
		Name:             "fig4",
		Env:              opts.env(),
		Platform:         grid.NewSMP(12),
		Tasks:            tasks,
		ProducerInterval: 5 * time.Second,
		FilterWork:       14 * time.Second,
		ConsumerWork:     200 * time.Millisecond,
		Payload:          256,
		InitialWorkers:   3,
		Limits:           manager.FarmLimits{MaxWorkers: 9},
		Contract:         contract.ThroughputRange{Lo: 0.3, Hi: 0.7},
		// A slightly aggressive rate step makes the producer overshoot
		// the upper bound once, eliciting the decRate warning of the
		// paper's second phase before settling into the stripe.
		Step:         1.5,
		Period:       5 * time.Second,
		SamplePeriod: time.Second,
		RulesDriven:  opts.RulesDriven,
	})
	if err != nil {
		return nil, err
	}
	if err := enableTelemetry(app, opts); err != nil {
		return nil, err
	}
	res, err := app.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	if opts.Out != nil {
		writeFig4(opts.Out, res)
	}
	return res, nil
}

// ExtLoadResult augments the run result with the injection instant.
type ExtLoadResult struct {
	*core.Result
	InjectedAt     time.Time
	WorkersBefore  int
	WorkersAfter   int
	LoadedNode     string
	AddsAfterSpike int
}

// ExtLoad reproduces the §4.2 narrative experiment: external load appears
// on the cores running farm workers mid-run; overloaded workers deliver
// fewer results and the manager reacts by adding workers until the
// contract is restored.
func ExtLoad(ctx context.Context, opts Options) (*ExtLoadResult, error) {
	tasks := opts.Tasks
	if tasks <= 0 {
		tasks = 240
	}
	// Single-core nodes so external load hits identifiable workers, with
	// enough spare nodes to recover onto.
	trusted := grid.Domain{Name: "cluster.local", Trusted: true}
	var nodes []*grid.Node
	for i := 0; i < 20; i++ {
		nodes = append(nodes, grid.NewNode(fmt.Sprintf("n%02d", i), trusted, 1, 1.0))
	}
	platform := &grid.Platform{
		Domains: []grid.Domain{trusted},
		Network: grid.NewNetwork(),
		RM:      grid.NewResourceManager(nodes...),
	}
	env := opts.env()
	app, err := core.NewFarmApp(core.FarmAppConfig{
		Name:           "extload",
		Env:            env,
		Platform:       platform,
		Tasks:          tasks,
		TaskWork:       5 * time.Second,
		SourceInterval: 1250 * time.Millisecond, // 0.8/s offered
		InitialWorkers: 5,                       // capacity 1.0/s: stable
		Contract:       contract.MinThroughput(0.6),
		Limits:         manager.FarmLimits{MaxWorkers: 16},
		Period:         2 * time.Second,
		SamplePeriod:   time.Second,
	})
	if err != nil {
		return nil, err
	}

	out := &ExtLoadResult{}
	// Injector: once a third of the stream is done, overload every node
	// currently running a worker (75% external load cuts each to a
	// quarter of its speed), dropping the farm below the contract.
	go func() {
		for app.Sink.Consumed() < tasks/3 {
			if ctx != nil && ctx.Err() != nil {
				return
			}
			env.Clock.Sleep(time.Millisecond)
		}
		workers := app.FarmABC.Workers()
		out.WorkersBefore = len(workers)
		for _, w := range workers {
			w.Node.SetExternalLoad(0.75)
			out.LoadedNode = w.Node.ID
		}
		out.InjectedAt = env.Clock.Now()
		app.Log.Record(env.Clock.Now(), "ENV", trace.Kind("extLoad"),
			fmt.Sprintf("75%% external load on %d worker nodes", len(workers)))
	}()

	if err := enableTelemetry(app, opts); err != nil {
		return nil, err
	}
	res, err := app.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	out.Result = res
	out.WorkersAfter = int(res.Workers.Max())
	for _, e := range res.Log.BySource("AM_F") {
		if e.Kind == trace.AddWorker && !out.InjectedAt.IsZero() && e.T.After(out.InjectedAt) {
			out.AddsAfterSpike++
		}
	}
	if opts.Out != nil {
		writeExtLoad(opts.Out, out)
	}
	return out, nil
}

// SecRow is one line of the multi-concern comparison table.
type SecRow struct {
	Mode            manager.CoordinationMode
	Completed       int
	Leaks           uint64
	SecuredMsgs     uint64
	TotalMsgs       uint64
	UntrustedHosts  int
	PeakThroughput  float64
	WallClock       time.Duration
	ContractVerdict contract.Verdict
}

// MultiConcernResult is the full EXT-SEC comparison.
type MultiConcernResult struct {
	Rows []SecRow
	Logs map[string]*trace.Log
}

// MultiConcern runs the §3.2 scenario — a farm forced to grow into
// untrusted_ip_domain_A — under the three coordination schemes and
// reports, per scheme, the plaintext messages exposed on links that
// required securing, the secured traffic and the achieved throughput.
// The paper's claims to verify: two-phase leaks exactly 0; the naive
// (reactive) scheme leaks > 0; securing costs some throughput vs. the
// insecure baseline.
func MultiConcern(ctx context.Context, opts Options) (*MultiConcernResult, error) {
	tasks := opts.Tasks
	if tasks <= 0 {
		tasks = 200
	}
	out := &MultiConcernResult{Logs: map[string]*trace.Log{}}
	for _, mode := range []manager.CoordinationMode{manager.TwoPhase, manager.Reactive, manager.Unmanaged} {
		log := trace.NewLog()
		c := contract.Contract(contract.MinThroughput(1.2))
		if mode != manager.Unmanaged {
			c = contract.Conjunction{contract.SecureComms{}, contract.MinThroughput(1.2)}
		}
		app, err := core.NewFarmApp(core.FarmAppConfig{
			Name:           "multiconcern-" + mode.String(),
			Env:            opts.env(),
			Platform:       grid.NewTwoDomainGrid(2, 8),
			Log:            log,
			Tasks:          tasks,
			TaskWork:       4 * time.Second,
			SourceInterval: 600 * time.Millisecond,
			Payload:        512,
			InitialWorkers: 2,
			Contract:       c,
			Limits:         manager.FarmLimits{MaxWorkers: 10},
			Period:         2 * time.Second,
			SamplePeriod:   time.Second,
			WithSecurity:   true,
			Coordination:   mode,
			Handshake:      500 * time.Millisecond,
			// The reactive scheme's hazard window: the security manager
			// scans every 8 modelled seconds while tasks arrive every
			// 0.6 s, so an unsecured binding reliably carries plaintext
			// before it is fixed — the §3.2 argument made measurable.
			SecurityPeriod: 8 * time.Second,
		})
		if err != nil {
			return nil, err
		}
		if err := enableTelemetry(app, opts); err != nil {
			return nil, err
		}
		res, err := app.RunContext(ctx)
		if err != nil {
			return nil, err
		}
		row := SecRow{
			Mode:           mode,
			Completed:      res.Completed,
			Leaks:          app.Auditor.Leaks(),
			SecuredMsgs:    app.Auditor.Secured(),
			TotalMsgs:      app.Auditor.Total(),
			PeakThroughput: res.Throughput.Max(),
			WallClock:      res.Elapsed,
		}
		for _, w := range app.FarmABC.Workers() {
			if !w.Node.Domain.Trusted {
				row.UntrustedHosts++
			}
		}
		row.ContractVerdict = c.Check(contract.Snapshot{
			Throughput:     res.Throughput.Max(),
			UnsecuredSends: app.Auditor.Leaks(),
		})
		out.Rows = append(out.Rows, row)
		out.Logs[mode.String()] = log
	}
	if opts.Out != nil {
		writeMultiConcern(opts.Out, out)
	}
	return out, nil
}

// FaultResult augments the run result with fault-injection accounting.
type FaultResult struct {
	*core.Result
	Injected  int
	Recovered int
	Replaced  int
}

// FaultTolerance runs the EXT-FT experiment: a farm under contract with a
// fault-tolerance manager attached; worker crashes are injected while the
// stream flows; the manager must detect each crash, redistribute the
// stranded tasks and replace the worker, so that every task completes
// exactly once and the contract is eventually restored.
func FaultTolerance(ctx context.Context, opts Options) (*FaultResult, error) {
	tasks := opts.Tasks
	if tasks <= 0 {
		tasks = 200
	}
	env := opts.env()
	app, err := core.NewFarmApp(core.FarmAppConfig{
		Name:               "faulttol",
		Env:                env,
		Platform:           grid.NewSMP(12),
		Tasks:              tasks,
		TaskWork:           5 * time.Second,
		SourceInterval:     1250 * time.Millisecond,
		InitialWorkers:     5,
		Contract:           contract.MinThroughput(0.6),
		Limits:             manager.FarmLimits{MaxWorkers: 10},
		Period:             2 * time.Second,
		SamplePeriod:       time.Second,
		WithFaultTolerance: true,
		FaultPeriod:        time.Second,
	})
	if err != nil {
		return nil, err
	}

	out := &FaultResult{}
	// Injector: crash one random live worker each time another quarter of
	// the stream completes (three crashes total).
	go func() {
		for _, frac := range []int{4, 2} {
			target := tasks / frac
			for app.Sink.Consumed() < target {
				if ctx != nil && ctx.Err() != nil {
					return
				}
				env.Clock.Sleep(time.Millisecond)
			}
			for _, w := range app.FarmABC.Workers() {
				if !w.Failed {
					if err := app.FarmABC.Farm().KillWorker(w.ID); err == nil {
						out.Injected++
						app.Log.Record(env.Clock.Now(), "ENV", trace.Kind("crash"), w.ID)
					}
					break
				}
			}
		}
	}()

	if err := enableTelemetry(app, opts); err != nil {
		return nil, err
	}
	res, err := app.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	out.Result = res
	out.Recovered = app.Fault.Recovered()
	out.Replaced = app.Fault.Replaced()
	if opts.Out != nil {
		writeFaultTolerance(opts.Out, out)
	}
	return out, nil
}

// SplitRow is one line of the contract-splitting demonstration.
type SplitRow struct {
	Pattern  string
	Contract string
	Subs     []string
}

// ContractSplit exercises the P_spl heuristics on the paper's example
// structures and returns the derived sub-contracts (the EXT-SPLIT
// artefact).
func ContractSplit(ctx context.Context, opts Options) ([]SplitRow, error) {
	pipeTR := contract.ThroughputRange{Lo: 0.3, Hi: 0.7}
	pipePD := contract.ParDegree{Min: 3, Max: 12}
	secConj := contract.Conjunction{contract.SecureComms{}, pipeTR}

	var rows []SplitRow
	add := func(pattern string, c contract.Contract, subs []contract.Contract, err error) error {
		if err != nil {
			return err
		}
		row := SplitRow{Pattern: pattern, Contract: c.Describe()}
		for _, s := range subs {
			row.Subs = append(row.Subs, s.Describe())
		}
		rows = append(rows, row)
		return nil
	}
	subs, err := contract.SplitPipeline(pipeTR, 3, nil)
	if err := add("pipe(seq,farm,seq) throughput", pipeTR, subs, err); err != nil {
		return nil, err
	}
	subs, err = contract.SplitPipeline(pipePD, 3, []float64{1, 3, 1})
	if err := add("pipe(seq,farm,seq) par-degree, weights 1:3:1", pipePD, subs, err); err != nil {
		return nil, err
	}
	subs, err = contract.SplitPipeline(secConj, 3, nil)
	if err := add("pipe(...) secure+throughput", secConj, subs, err); err != nil {
		return nil, err
	}
	subs, err = contract.SplitFarm(secConj, 4)
	if err := add("farm(seq) secure+throughput, 4 workers", secConj, subs, err); err != nil {
		return nil, err
	}
	if opts.Out != nil {
		writeSplit(opts.Out, rows)
	}
	return rows, nil
}

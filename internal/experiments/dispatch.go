package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/contract"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/manager"
	"repro/internal/skel"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// DispatchOptions parameterizes a coordinator run over live workerd
// endpoints: the cross-process counterpart of the simulated two-domain
// experiments. The coordinator probes every address, registers the
// advertised nodes with the resource manager next to its own trusted local
// cores, and runs the standard secured, fault-tolerant farm app — remote
// capacity is recruited, sealed, rekeyed and recovered through exactly the
// same management plane as simulated capacity.
type DispatchOptions struct {
	// Workers are the workerd dial addresses (at least one).
	Workers []string
	// PSK is the shared link secret; both ends derive the 32-byte master
	// key from it (wire.DerivePSK).
	PSK string
	// Tasks is the stream length (default 200); TaskWork the modelled
	// per-task service time (default 2s).
	Tasks    int
	TaskWork time.Duration
	// LocalCores sizes the coordinator's own trusted pool (default 2).
	// The farm starts on local cores and grows onto the workerd nodes when
	// the contract demands it.
	LocalCores int
	// Selector constrains the unified dispatch decision path: label
	// requirements, trusted-only, or the Local escape hatch that pins every
	// task to in-process workers even while remote nodes are registered.
	Selector skel.Selector
	// TraceSample > 0 turns on task tracing at one span per TraceSample
	// tasks (1 = every task), seeds the deterministic sampler with
	// TraceSeed, and installs the /cluster aggregation endpoint that
	// scrapes every workerd's tracing state over the control plane.
	TraceSample uint64
	TraceSeed   uint64
	// MgmtListen, when set, hosts the remote management plane: a
	// manager.ParentEndpoint over the app's root manager served on this
	// address behind a wire.Server (":0" for an ephemeral port). Remote
	// child managers — workerds started with -parent — report violations,
	// receive P_spl sub-contracts and run two-phase prepares against it
	// over sealed management frames.
	MgmtListen string
}

func (d DispatchOptions) normalized() (DispatchOptions, error) {
	if len(d.Workers) == 0 {
		return d, fmt.Errorf("experiments: dispatch needs at least one workerd address")
	}
	if d.PSK == "" {
		return d, fmt.Errorf("experiments: dispatch needs a link PSK")
	}
	if d.Tasks <= 0 {
		d.Tasks = 200
	}
	if d.TaskWork <= 0 {
		d.TaskWork = 2 * time.Second
	}
	if d.LocalCores <= 0 {
		d.LocalCores = 2
	}
	return d, nil
}

// DispatchResult is the outcome of one coordinator run.
type DispatchResult struct {
	*core.Result
	// Nodes are the workerd advertisements that joined the pool.
	Nodes []*grid.Node
	// RemoteStats snapshots the transport counters: proof that tasks
	// crossed the wire (Execs) sealed under shipped bindings (Rekeys).
	RemoteStats wire.StatsSnapshot
	// RemoteWorkers is the farm's remote-worker count at end of run.
	RemoteWorkers int
	// SecurityTotal / SecuritySecured / SecurityLeaks are the auditor's
	// verdict: Leaks must be zero — no plaintext send on a binding the
	// policy requires sealed, local or remote.
	SecurityTotal   uint64
	SecuritySecured uint64
	SecurityLeaks   uint64
	// Tracer exposes the MAPE decision trace for JSONL export.
	Tracer *telemetry.Tracer
	// TaskTracer exposes the task-span plane (nil unless TraceSample > 0);
	// Cluster is the end-of-run merged cluster report, the same view
	// /cluster serves live.
	TaskTracer *telemetry.TaskTracer
	Cluster    *telemetry.ClusterReport
	// MgmtAddr is the bound management-plane address (empty unless
	// MgmtListen was set); MgmtDelivered / MgmtDuplicates the endpoint's
	// exactly-once counters at end of run.
	MgmtAddr       string
	MgmtDelivered  uint64
	MgmtDuplicates uint64
}

// RemoteFarm runs the coordinator side of the cross-process dispatch
// plane: probe the workerd fleet, assemble a platform whose resource pool
// mixes local trusted cores with the advertised remote nodes (public links
// between the coordinator's domain and each remote trust domain), and run
// the secured two-phase farm app over it. Placement goes through the
// unified dispatch decision path under opts.Selector.
func RemoteFarm(ctx context.Context, opts Options, dopts DispatchOptions) (*DispatchResult, error) {
	dopts, err := dopts.normalized()
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	env := opts.env()

	factory, err := wire.NewFactory(wire.DerivePSK(dopts.PSK), 10*time.Second)
	if err != nil {
		return nil, err
	}

	local := grid.Domain{Name: "coordinator.local", Trusted: true}
	nw := grid.NewNetwork()
	nw.SetLink(local.Name, local.Name, grid.Link{Private: true})
	var nodes []*grid.Node
	for i := 0; i < dopts.LocalCores; i++ {
		nodes = append(nodes, grid.NewNode(fmt.Sprintf("c%02d", i), local, 1, 1.0))
	}
	domains := []grid.Domain{local}
	seen := map[string]bool{local.Name: true}
	var remotes []*grid.Node
	for _, addr := range dopts.Workers {
		node, err := factory.Probe(addr)
		if err != nil {
			return nil, fmt.Errorf("experiments: probing workerd %s: %w", addr, err)
		}
		if !seen[node.Domain.Name] {
			seen[node.Domain.Name] = true
			domains = append(domains, node.Domain)
			// The coordinator reaches every remote trust domain over a
			// public link: the security policy will demand sealing unless
			// the workerd advertised a trusted domain AND the link were
			// private, which a real TCP hop never is.
			nw.SetLink(local.Name, node.Domain.Name, grid.Link{Latency: 2 * time.Millisecond})
		}
		nodes = append(nodes, node)
		remotes = append(remotes, node)
	}
	platform := &grid.Platform{
		Domains: domains,
		Network: nw,
		RM:      grid.NewResourceManager(nodes...),
	}

	maxWorkers := 0
	for _, n := range nodes {
		maxWorkers += n.Cores
	}
	app, err := core.NewFarmApp(core.FarmAppConfig{
		Name:               "dispatch",
		Env:                env,
		Platform:           platform,
		Tasks:              dopts.Tasks,
		TaskWork:           dopts.TaskWork,
		SourceInterval:     250 * time.Millisecond,
		Payload:            256,
		ChargeLinkLatency:  true,
		InitialWorkers:     dopts.LocalCores,
		Contract:           contract.Conjunction{contract.SecureComms{}, contract.MinThroughput(1.2)},
		Limits:             manager.FarmLimits{MaxWorkers: maxWorkers},
		Period:             time.Second,
		SamplePeriod:       time.Second,
		WithSecurity:       true,
		Coordination:       manager.TwoPhase,
		Handshake:          200 * time.Millisecond,
		WithFaultTolerance: true,
		FaultPeriod:        500 * time.Millisecond,
		Executors:          factory.Executor,
		Selector:           dopts.Selector,
		TraceSample:        dopts.TraceSample,
		TraceSeed:          dopts.TraceSeed,
	})
	if err != nil {
		return nil, err
	}
	var cluster func() telemetry.ClusterReport
	if dopts.TraceSample > 0 {
		// The /cluster view: the coordinator's own node report merged with
		// every workerd's, scraped over the wire control plane (a sealed
		// stats frame per node, not an HTTP fan-out). Best-effort: an
		// unreachable workerd becomes an Errors entry, not a failed page.
		addrs := append([]string(nil), dopts.Workers...)
		cluster = func() telemetry.ClusterReport {
			reports := []telemetry.NodeReport{
				telemetry.BuildNodeReport("coordinator", app.TaskTracer(), 256),
			}
			var errs []string
			for _, addr := range addrs {
				raw, err := factory.Scrape(addr)
				if err != nil {
					errs = append(errs, fmt.Sprintf("scrape %s: %v", addr, err))
					continue
				}
				rep, err := telemetry.ParseNodeReport(raw)
				if err != nil {
					errs = append(errs, fmt.Sprintf("scrape %s: %v", addr, err))
					continue
				}
				reports = append(reports, rep)
			}
			merged := telemetry.MergeReports(reports...)
			merged.Errors = append(merged.Errors, errs...)
			return merged
		}
		app.Telemetry().SetClusterFunc(cluster)
		defer factory.CloseControls()
	}
	var mgmtEp *manager.ParentEndpoint
	var mgmtSrv *wire.Server
	if dopts.MgmtListen != "" {
		mgmtEp, err = manager.NewParentEndpoint(manager.ParentEndpointConfig{
			Parent: app.RootManager, Security: app.Security,
			Clock: env.Clock, Log: app.Log,
		})
		if err != nil {
			return nil, err
		}
		app.AttachManagerEndpoint(mgmtEp)
		mgmtSrv, err = wire.NewServer(wire.ServerConfig{
			PSK: wire.DerivePSK(dopts.PSK),
			Hello: wire.Hello{
				Name: "coordinator", Domain: local.Name, Trusted: true,
				Cores: dopts.LocalCores, Speed: 1,
			},
			Mgmt: mgmtEp.Handle,
		})
		if err != nil {
			return nil, err
		}
		if err := mgmtSrv.Listen(dopts.MgmtListen); err != nil {
			return nil, fmt.Errorf("experiments: management plane: %w", err)
		}
		defer mgmtSrv.Close()
	}
	if err := enableTelemetry(app, opts); err != nil {
		return nil, err
	}

	// Sample the remote-worker gauge while the farm is live: at end of run
	// the workers have drained away, so the peak is the evidence that
	// placement actually crossed the process boundary.
	stop := make(chan struct{})
	peakCh := make(chan int, 1)
	go func() {
		peak := 0
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				peakCh <- peak
				return
			case <-tick.C:
				if n := app.FarmABC.Farm().Stats().RemoteWorkers; n > peak {
					peak = n
				}
			}
		}
	}()

	res, err := app.RunContext(ctx)
	close(stop)
	remoteWorkers := <-peakCh
	if err != nil {
		return nil, err
	}

	out := &DispatchResult{
		Result:        res,
		Nodes:         remotes,
		RemoteStats:   factory.Snapshot(),
		RemoteWorkers: remoteWorkers,
		Tracer:        app.Tracer(),
		TaskTracer:    app.TaskTracer(),
	}
	if cluster != nil {
		rep := cluster()
		out.Cluster = &rep
	}
	if mgmtSrv != nil {
		out.MgmtAddr = mgmtSrv.Addr()
		out.MgmtDelivered = mgmtEp.Delivered()
		out.MgmtDuplicates = mgmtEp.Duplicates()
	}
	if app.Auditor != nil {
		out.SecurityTotal = app.Auditor.Total()
		out.SecuritySecured = app.Auditor.Secured()
		out.SecurityLeaks = app.Auditor.Leaks()
	}
	if opts.Out != nil {
		writeDispatch(opts.Out, out, dopts)
	}
	return out, nil
}

// writeDispatch renders the coordinator run outcome.
func writeDispatch(w io.Writer, r *DispatchResult, dopts DispatchOptions) {
	fmt.Fprintf(w, "== cross-process dispatch ==\n")
	for _, n := range r.Nodes {
		fmt.Fprintf(w, "workerd %s: domain=%s trusted=%v cores=%d addr=%s\n",
			n.ID, n.Domain.Name, n.Domain.Trusted, n.Cores, n.Label(wire.LabelAddr))
	}
	fmt.Fprintf(w, "completed: %d tasks (peak remote workers %d)\n", r.Completed, r.RemoteWorkers)
	fmt.Fprintf(w, "remote link: dials=%d execs=%d rekeys=%d frames=%d drops=%d\n",
		r.RemoteStats.Dials, r.RemoteStats.Execs, r.RemoteStats.Rekeys,
		r.RemoteStats.FramesOut, r.RemoteStats.Drops)
	fmt.Fprintf(w, "security: sends=%d secured=%d leaks=%d\n",
		r.SecurityTotal, r.SecuritySecured, r.SecurityLeaks)
	if r.MgmtAddr != "" {
		fmt.Fprintf(w, "management plane: addr=%s delivered=%d dup_suppressed=%d\n",
			r.MgmtAddr, r.MgmtDelivered, r.MgmtDuplicates)
	}
	if r.Cluster != nil {
		fmt.Fprintf(w, "tracing: %d node(s), %d span(s) retained\n",
			len(r.Cluster.Nodes), clusterSpanCount(r.Cluster))
		for _, stage := range telemetry.StageNames {
			if s, ok := r.Cluster.Stages[stage]; ok {
				fmt.Fprintf(w, "  stage %-10s count=%-6d p50=%.6fs p99=%.6fs\n",
					stage, s.Count, s.P50, s.P99)
			}
		}
		for _, e := range r.Cluster.Errors {
			fmt.Fprintf(w, "  scrape error: %s\n", e)
		}
	}
}

func clusterSpanCount(c *telemetry.ClusterReport) int {
	n := 0
	for _, node := range c.Nodes {
		n += len(node.Spans)
	}
	return n
}

package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/contract"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/manager"
	"repro/internal/trace"
)

// ShedResult augments the run result with shedding accounting.
type ShedResult struct {
	*core.Result
	InitialWorkers int
	FinalWorkers   int
	// Removals counts every remWorker event; ActiveRemovals only those
	// issued while the stream was still flowing (once the input ends the
	// rules keep shedding what looks like overcapacity during the drain,
	// a behaviour the paper's Fig. 5 rules share).
	Removals       int
	ActiveRemovals int
}

// Shed runs the EXT-SHED experiment — the "underload" direction of the
// adaptation [10] describes ("changes in the processing elements used
// (overload or underload)"): the farm starts grossly overprovisioned for
// its bounded contract, so the measured throughput exceeds the upper bound
// and the Fig. 5 CheckRateHigh rule sheds workers until the farm fits the
// contracted range, releasing the excess resources.
func Shed(ctx context.Context, opts Options) (*ShedResult, error) {
	tasks := opts.Tasks
	if tasks <= 0 {
		tasks = 200
	}
	const initial = 8
	app, err := core.NewFarmApp(core.FarmAppConfig{
		Name:           "shed",
		Env:            opts.env(),
		Platform:       grid.NewSMP(12),
		Tasks:          tasks,
		TaskWork:       5 * time.Second,         // per-worker rate 0.2/s
		SourceInterval: 1100 * time.Millisecond, // ~0.9/s offered: above the cap
		InitialWorkers: initial,                 // capacity 1.6/s: far too much
		// The upper bound sits between the 3-worker (0.6) and 4-worker
		// (0.8) capacity steps so the shedding converges instead of
		// oscillating on measurement noise at a quantization boundary.
		Contract: mustRange(0.3, 0.75),
		Limits:   manager.FarmLimits{MinWorkers: 1, MaxWorkers: 10},
		// Reconfigure no faster than the sensors refresh: shedding with
		// a period shorter than the 10 s rate-meter window acts on stale
		// readings and overshoots far below the contract.
		Period:       12 * time.Second,
		SamplePeriod: time.Second,
	})
	if err != nil {
		return nil, err
	}
	if err := enableTelemetry(app, opts); err != nil {
		return nil, err
	}
	res, err := app.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	out := &ShedResult{
		Result:         res,
		InitialWorkers: initial,
		FinalWorkers:   res.Final.ParDegree,
		Removals:       res.Log.Count("AM_F", trace.RemWorker),
	}
	// Active-phase removals: before the farm first signalled starving
	// input (the drain marker in a farm-only app).
	if ne, ok := res.Log.FirstOf("AM_F", trace.NotEnough); ok {
		for _, e := range res.Log.BySource("AM_F") {
			if e.Kind == trace.RemWorker && e.T.Before(ne.T) {
				out.ActiveRemovals++
			}
		}
	} else {
		out.ActiveRemovals = out.Removals
	}
	if opts.Out != nil {
		writeShed(opts.Out, out)
	}
	return out, nil
}

func mustRange(lo, hi float64) contract.ThroughputRange {
	tr, err := contract.NewThroughputRange(lo, hi)
	if err != nil {
		panic(err)
	}
	return tr
}

func writeShed(w io.Writer, res *ShedResult) {
	header(w, "EXT-SHED — underload: the AM sheds overprovisioned workers (CheckRateHigh)")
	fmt.Fprint(w, trace.RenderSeries(trace.PlotOptions{
		Width: 72, Height: 12, Bands: []float64{0.3, 0.6},
	}, res.Throughput))
	fmt.Fprintln(w)
	fmt.Fprint(w, trace.RenderSeries(trace.PlotOptions{Width: 72, Height: 8}, res.Workers))
	fmt.Fprintf(w, "\nworkers %d -> %d; %d remWorker events (%d while the stream was active); completed %d tasks\n",
		res.InitialWorkers, res.FinalWorkers, res.Removals, res.ActiveRemovals, res.Completed)
}

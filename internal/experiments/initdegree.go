package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/contract"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/manager"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// InitRow is one variant of the EXT-INIT comparison.
type InitRow struct {
	Strategy       string
	InitialWorkers float64
	// TimeToContract is the modelled time from the first sample until the
	// throughput first reaches the contract bound (-1: never).
	TimeToContract time.Duration
	AddWorkers     int
	Completed      int
}

// InitResult is the full EXT-INIT comparison.
type InitResult struct {
	Rows []InitRow
	Logs map[string]*trace.Log
}

// InitialDegree runs the EXT-INIT ablation for §3's first performance
// policy, "initial parallelism degree setup": the Fig. 3 farm started cold
// (one worker, purely reactive ramp-up) versus started at the degree the
// task-farm performance model derives from the contract
// (internal/planner). The model-based start should reach the contract
// almost immediately and need (nearly) no reactive addWorker actions.
func InitialDegree(ctx context.Context, opts Options) (*InitResult, error) {
	tasks := opts.Tasks
	if tasks <= 0 {
		tasks = 150
	}
	out := &InitResult{Logs: map[string]*trace.Log{}}
	for _, auto := range []bool{false, true} {
		name := "cold start (1 worker)"
		if auto {
			name = "model-based start"
		}
		log := trace.NewLog()
		app, err := core.NewFarmApp(core.FarmAppConfig{
			Name:           "extinit",
			Env:            opts.env(),
			Platform:       grid.NewSMP(12),
			Log:            log,
			Tasks:          tasks,
			TaskWork:       6400 * time.Millisecond,
			SourceInterval: 1250 * time.Millisecond,
			InitialWorkers: 1,
			AutoDegree:     auto,
			Contract:       contract.MinThroughput(0.6),
			Limits:         manager.FarmLimits{MaxWorkers: 10},
			Period:         3 * time.Second,
			SamplePeriod:   time.Second,
		})
		if err != nil {
			return nil, err
		}
		if err := enableTelemetry(app, opts); err != nil {
			return nil, err
		}
		res, err := app.RunContext(ctx)
		if err != nil {
			return nil, err
		}
		first := 1.0
		if pts := res.Workers.Points(); len(pts) > 0 {
			first = pts[0].V
		}
		out.Rows = append(out.Rows, InitRow{
			Strategy:       name,
			InitialWorkers: first,
			TimeToContract: timeToThreshold(res.Throughput, 0.6, opts.scale()),
			AddWorkers:     log.Count("AM_F", trace.AddWorker),
			Completed:      res.Completed,
		})
		out.Logs[name] = log
	}
	if opts.Out != nil {
		writeInitialDegree(opts.Out, out)
	}
	return out, nil
}

// timeToThreshold returns the modelled time between the first sample and
// the first of three consecutive samples at or above th (a single-sample
// spike from the sliding-window meter does not count as "reached"), or -1
// if never reached.
func timeToThreshold(s *metrics.Series, th, scale float64) time.Duration {
	pts := s.Points()
	if len(pts) == 0 {
		return -1
	}
	const sustain = 3
	run := 0
	for i, p := range pts {
		if p.V >= th {
			run++
		} else {
			run = 0
		}
		if run >= sustain {
			real := pts[i-sustain+1].T.Sub(pts[0].T)
			return time.Duration(float64(real) * scale)
		}
	}
	return -1
}

func writeInitialDegree(w io.Writer, res *InitResult) {
	header(w, "EXT-INIT — initial parallelism degree: reactive ramp-up vs. performance model")
	fmt.Fprintf(w, "%-24s %9s %18s %11s %10s\n",
		"strategy", "initial", "time-to-contract", "addWorker", "completed")
	for _, r := range res.Rows {
		ttc := "never"
		if r.TimeToContract >= 0 {
			ttc = r.TimeToContract.Round(time.Second).String()
		}
		fmt.Fprintf(w, "%-24s %9.0f %18s %11d %10d\n",
			r.Strategy, r.InitialWorkers, ttc, r.AddWorkers, r.Completed)
	}
	fmt.Fprintln(w, "\nexpected shape: the model-based start reaches the contract much sooner")
	fmt.Fprintln(w, "and needs few or no reactive addWorker corrections (times are modelled).")
}

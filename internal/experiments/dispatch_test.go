package experiments

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/wire"
)

// startTestWorkerd launches one in-process workerd server configured the
// way cmd/workerd is: a task tracer recording exec spans for frames the
// coordinator sampled, and a stats hook answering the wire scrape with a
// node report.
func startTestWorkerd(t *testing.T, psk []byte, name string) *wire.Server {
	t.Helper()
	tracer := telemetry.NewTaskTracer(0, 1, 0)
	srv, err := wire.NewServer(wire.ServerConfig{
		PSK: psk,
		Hello: wire.Hello{
			Name:   name,
			Domain: "edge.remote",
			Cores:  2,
			Speed:  1.0,
			Labels: map[string]string{"zone": "edge"},
		},
		TimeScale: 200,
		Tracer:    tracer,
		Stats: func() []byte {
			b, err := telemetry.BuildNodeReport(name, tracer, 256).Encode()
			if err != nil {
				return []byte("{}")
			}
			return b
		},
	})
	if err != nil {
		t.Fatalf("wire.NewServer: %v", err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("srv.Listen: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestRemoteFarmClusterTracing is the tracing acceptance test: a
// coordinator run over two live workerd endpoints with task tracing at
// rate 1 must produce (a) spans on both sides of the wire sharing a trace
// id, (b) a coordinator span whose eight-stage latency decomposition is
// fully populated, and (c) a merged cluster report covering every node.
func TestRemoteFarmClusterTracing(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	psk := wire.DerivePSK("dispatch-trace-test")
	s1 := startTestWorkerd(t, psk, "edge0")
	s2 := startTestWorkerd(t, psk, "edge1")

	res, err := RemoteFarm(ctx, Options{Scale: 200}, DispatchOptions{
		Workers:     []string{s1.Addr(), s2.Addr()},
		PSK:         "dispatch-trace-test",
		Tasks:       150,
		LocalCores:  2,
		TraceSample: 1,
		TraceSeed:   7,
	})
	if err != nil {
		t.Fatalf("RemoteFarm: %v", err)
	}
	if res.RemoteStats.Execs == 0 {
		t.Fatal("no task crossed the wire; the tracing assertions need remote execs")
	}
	if res.TaskTracer == nil {
		t.Fatal("TraceSample=1 but the run returned no task tracer")
	}
	if res.Cluster == nil {
		t.Fatal("TraceSample=1 but the run returned no cluster report")
	}

	// Every node answered the scrape: the coordinator plus both workerds.
	nodes := map[string]telemetry.NodeReport{}
	for _, n := range res.Cluster.Nodes {
		nodes[n.Node] = n
	}
	for _, want := range []string{"coordinator", "edge0", "edge1"} {
		if _, ok := nodes[want]; !ok {
			t.Fatalf("cluster report misses node %q (have %v, errors %v)",
				want, len(res.Cluster.Nodes), res.Cluster.Errors)
		}
	}

	// Cross-process propagation: some workerd exec span must share its
	// trace id with a coordinator span — the id was minted coordinator-side
	// and crossed inside the exec frame.
	coordTraces := map[uint64]telemetry.Span{}
	for _, sp := range nodes["coordinator"].Spans {
		coordTraces[sp.TraceID] = sp
	}
	matched := false
	for _, name := range []string{"edge0", "edge1"} {
		for _, sp := range nodes[name].Spans {
			if _, ok := coordTraces[sp.TraceID]; ok {
				matched = true
				if sp.Parent == 0 {
					t.Errorf("workerd span %x has no parent span id", sp.TraceID)
				}
			}
		}
	}
	if !matched {
		t.Errorf("no workerd span shares a trace id with a coordinator span")
	}

	// Stage decomposition: at least one clean remote coordinator span must
	// carry a positive latency in every one of the eight stages.
	full := false
	var closest telemetry.Span
	for _, sp := range nodes["coordinator"].Spans {
		if !sp.Remote || sp.Fault != "" {
			continue
		}
		closest = sp
		all := true
		for i := 0; i < telemetry.NumStages; i++ {
			if sp.Stages[i] <= 0 {
				all = false
				break
			}
		}
		if all {
			full = true
			break
		}
	}
	if !full {
		t.Errorf("no remote span with all %d stages populated; closest: %+v",
			telemetry.NumStages, closest)
	}

	// The merged per-stage summary covers the wire and exec stages with
	// counts and ordered quantiles.
	for _, stage := range []string{"wire", "exec", "seal", "result"} {
		s, ok := res.Cluster.Stages[stage]
		if !ok || s.Count == 0 {
			t.Errorf("merged cluster summary misses stage %q", stage)
			continue
		}
		if s.P99 < s.P50 {
			t.Errorf("stage %q: p99 %v < p50 %v", stage, s.P99, s.P50)
		}
	}

	if testing.Verbose() {
		fmt.Printf("cluster: %d nodes, stages %v\n", len(res.Cluster.Nodes), res.Cluster.Stages)
	}
}

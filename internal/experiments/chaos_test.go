package experiments

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/runtime/leaktest"
)

// TestChaosSoakInvariants is the PR's acceptance test: one soak run under
// a seeded plan that injects actuator failures, recruitment exhaustion and
// worker panics (among the rest of the taxonomy) must complete with zero
// lost or duplicated tasks, zero plaintext leaks, every storm recovered
// and a non-empty MTTR histogram — with no goroutine leaks.
func TestChaosSoakInvariants(t *testing.T) {
	defer leaktest.Check(t)()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	res, err := ChaosSoak(ctx, Options{Scale: 100}, ChaosOptions{Seed: 7, Storms: 2})
	if err != nil {
		t.Fatalf("ChaosSoak: %v", err)
	}
	for _, k := range []chaos.Kind{chaos.ActuatorFail, chaos.RecruitOutage, chaos.WorkerPanic} {
		if !res.Plan.Contains(k) {
			t.Errorf("plan misses kind %s; the storm should cover the taxonomy", k)
		}
	}
	if v := res.Summary.Invariants(); len(v) > 0 {
		t.Fatalf("soak invariants violated:\n  %s\nsummary:\n%s",
			strings.Join(v, "\n  "), res.Summary)
	}
	if res.Completed != res.Summary.Tasks {
		t.Errorf("completed %d of %d tasks", res.Completed, res.Summary.Tasks)
	}
	if res.MTTR.Count() == 0 {
		t.Errorf("MTTR histogram empty: no recovery was measured")
	}
	// The three headline fault kinds must actually have been applied, not
	// just planned (a skip would mean the injection point found no target).
	for _, k := range []chaos.Kind{chaos.ActuatorFail, chaos.RecruitOutage, chaos.WorkerPanic} {
		if res.Report.Applied[k] == 0 {
			t.Errorf("kind %s planned but never applied (skipped %d)", k, res.Report.Skipped[k])
		}
	}
	// The soak traces at rate 1, so every task retires a span, and the
	// applied worker panics must have caught in-flight envelopes — their
	// spans are published partially filled with a fault annotation.
	if res.SpansPublished == 0 {
		t.Errorf("soak traced at rate 1 but published no spans")
	}
	if res.FaultSpans == 0 {
		t.Errorf("worker panics were applied but no fault-annotated span surfaced")
	}
}

// TestChaosSoakDeterministic runs the soak twice with the same seed and
// requires byte-identical schedules and invariant summaries.
func TestChaosSoakDeterministic(t *testing.T) {
	defer leaktest.Check(t)()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	run := func() (schedule string, summary string) {
		res, err := ChaosSoak(ctx, Options{Scale: 200}, ChaosOptions{Seed: 42, Storms: 1})
		if err != nil {
			t.Fatalf("ChaosSoak: %v", err)
		}
		if v := res.Summary.Invariants(); len(v) > 0 {
			t.Fatalf("soak invariants violated: %s", strings.Join(v, "; "))
		}
		return strings.Join(res.Plan.Schedule(), "\n"), res.Summary.String()
	}
	s1, sum1 := run()
	s2, sum2 := run()
	if s1 != s2 {
		t.Errorf("same-seed schedules differ:\n--- run1\n%s\n--- run2\n%s", s1, s2)
	}
	if sum1 != sum2 {
		t.Errorf("same-seed summaries differ:\n--- run1\n%s--- run2\n%s", sum1, sum2)
	}
}

// TestChaosSoakManagerLinks soaks the remote management plane: the plan
// extends to the manager-link taxonomy (partitions, dropped exchanges on
// the parent/child channel) and the run must show the link partitioning
// and reattaching, catch-up cycles running, the sentinel's violation
// buffer draining to zero, and every violation reaching the parent
// exactly once — no contract violation goes permanently unnoticed because
// its manager was partitioned.
func TestChaosSoakManagerLinks(t *testing.T) {
	defer leaktest.Check(t)()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	res, err := ChaosSoak(ctx, Options{Scale: 400}, ChaosOptions{Seed: 1, Storms: 2, ManagerLinks: true})
	if err != nil {
		t.Fatalf("ChaosSoak: %v", err)
	}
	for _, k := range []chaos.Kind{chaos.ManagerPartition, chaos.ManagerLinkDrop} {
		if !res.Plan.Contains(k) {
			t.Errorf("plan misses kind %s; the storm should cover the manager-link taxonomy", k)
		}
		if res.Report.Applied[k] == 0 {
			t.Errorf("kind %s planned but never applied (skipped %d)", k, res.Report.Skipped[k])
		}
	}
	if v := res.Summary.Invariants(); len(v) > 0 {
		t.Fatalf("soak invariants violated:\n  %s\nsummary:\n%s",
			strings.Join(v, "\n  "), res.Summary)
	}
	if res.LinkReattaches == 0 {
		t.Errorf("link never reattached: partitions were planned but the lease never expired")
	}
	if res.LinkCatchUpCycles == 0 {
		t.Errorf("no catch-up cycles ran after reattach")
	}
	if res.LinkDelivered == 0 {
		t.Errorf("no violation crossed the manager link")
	}
}

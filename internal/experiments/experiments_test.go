package experiments

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/manager"
	"repro/internal/trace"
)

// The experiment harnesses are exercised here at a high time scale (the
// benches at the repository root run them at the reporting scale).

func TestFig3Harness(t *testing.T) {
	var buf strings.Builder
	res, err := Fig3(context.Background(), Options{Scale: 500, Tasks: 120, Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 120 {
		t.Fatalf("completed %d", res.Completed)
	}
	// Fig. 3 shape: the farm must have grown and crossed the contract.
	if res.Throughput.Max() < 0.6 {
		t.Fatalf("throughput max %.3f < contract", res.Throughput.Max())
	}
	if res.Workers.Max() < 4 {
		t.Fatalf("needed >=4 workers, saw %.0f", res.Workers.Max())
	}
	if res.Log.Count("AM_F", trace.AddWorker) < 3 {
		t.Fatalf("addWorker events = %d", res.Log.Count("AM_F", trace.AddWorker))
	}
	out := buf.String()
	for _, frag := range []string{"Fig. 3", "contract 0.6", "addWorker"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("report missing %q:\n%s", frag, out)
		}
	}
}

func TestFig4Harness(t *testing.T) {
	var buf strings.Builder
	res, err := Fig4(context.Background(), Options{Scale: 500, Tasks: 120, Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 120 {
		t.Fatalf("completed %d", res.Completed)
	}
	log := res.Log
	// The Fig. 4 narrative, phase by phase.
	checks := []struct {
		source string
		kind   trace.Kind
		min    int
	}{
		{"AM_F", trace.ContrLow, 1},
		{"AM_F", trace.NotEnough, 1},
		{"AM_F", trace.RaiseViol, 1},
		{"AM_A", trace.IncRate, 1},
		{"AM_F", trace.AddWorker, 1},
		{"AM_A", trace.EndStream, 1},
	}
	for _, c := range checks {
		if got := log.Count(c.source, c.kind); got < c.min {
			t.Errorf("%s/%s events = %d, want >= %d", c.source, c.kind, got, c.min)
		}
	}
	if t.Failed() {
		t.Logf("timeline:\n%s", log.Timeline())
	}
	if res.Throughput.Max() < 0.3 {
		t.Fatalf("throughput never entered the stripe: %.3f", res.Throughput.Max())
	}
	out := buf.String()
	for _, frag := range []string{"graph 1", "graph 2", "graph 3", "graph 4", "AM_A", "AM_F"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("report missing %q", frag)
		}
	}
}

func TestExtLoadHarness(t *testing.T) {
	var buf strings.Builder
	res, err := ExtLoad(context.Background(), Options{Scale: 500, Tasks: 150, Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 150 {
		t.Fatalf("completed %d", res.Completed)
	}
	if res.InjectedAt.IsZero() {
		t.Fatal("load was never injected")
	}
	// The manager must react to the slowdown by adding workers.
	if res.AddsAfterSpike == 0 {
		t.Fatalf("no addWorker after the load spike:\n%s", res.Log.Timeline())
	}
	if res.WorkersAfter <= res.WorkersBefore {
		t.Fatalf("pool did not grow: %d -> %d", res.WorkersBefore, res.WorkersAfter)
	}
	if !strings.Contains(buf.String(), "EXT-LOAD") {
		t.Fatal("report missing header")
	}
}

func TestMultiConcernHarness(t *testing.T) {
	var buf strings.Builder
	res, err := MultiConcern(context.Background(), Options{Scale: 500, Tasks: 150, Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byMode := map[manager.CoordinationMode]SecRow{}
	for _, r := range res.Rows {
		byMode[r.Mode] = r
		if r.Completed != 150 {
			t.Fatalf("%s completed %d", r.Mode, r.Completed)
		}
		if r.UntrustedHosts == 0 {
			t.Fatalf("%s never grew into the untrusted domain", r.Mode)
		}
	}
	if byMode[manager.TwoPhase].Leaks != 0 {
		t.Fatalf("two-phase leaked %d", byMode[manager.TwoPhase].Leaks)
	}
	if byMode[manager.Reactive].Leaks == 0 {
		t.Fatal("reactive scheme leaked nothing; §3.2 hazard did not reproduce")
	}
	if byMode[manager.Unmanaged].SecuredMsgs != 0 {
		t.Fatal("unmanaged run secured traffic")
	}
	if byMode[manager.TwoPhase].SecuredMsgs == 0 {
		t.Fatal("two-phase run secured nothing")
	}
	// Boolean-priority check (EXT-PRIO): with leaks the conjunction is
	// Violated regardless of throughput.
	if v := byMode[manager.Reactive].ContractVerdict.String(); v != "violated" {
		t.Fatalf("reactive verdict = %s, want violated (security priority)", v)
	}
	if !strings.Contains(buf.String(), "EXT-SEC") {
		t.Fatal("report missing header")
	}
}

func TestFaultToleranceHarness(t *testing.T) {
	var buf strings.Builder
	res, err := FaultTolerance(context.Background(), Options{Scale: 500, Tasks: 150, Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 150 {
		t.Fatalf("completed %d/150 — tasks lost to crashes", res.Completed)
	}
	if res.Injected == 0 {
		t.Fatal("no crashes were injected")
	}
	if res.Recovered < res.Injected {
		t.Fatalf("recovered %d of %d crashes:\n%s", res.Recovered, res.Injected, res.Log.Timeline())
	}
	if res.Log.Count("AM_ft", trace.WorkerFail) < res.Injected {
		t.Fatalf("workerFail events missing:\n%s", res.Log.Timeline())
	}
	if !strings.Contains(buf.String(), "EXT-FT") {
		t.Fatal("report missing header")
	}
}

func TestFarmizeHarness(t *testing.T) {
	var buf strings.Builder
	res, err := Farmize(context.Background(), Options{Scale: 500, Tasks: 120, Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	base, farmized := res.Rows[0], res.Rows[1]
	if base.Completed != 120 || farmized.Completed != 120 {
		t.Fatalf("completions: %d / %d", base.Completed, farmized.Completed)
	}
	// The sequential consumer caps the pipeline below the farmized one.
	if farmized.SteadyMean <= base.SteadyMean {
		t.Fatalf("farmizing did not help: base %.3f vs farmized %.3f",
			base.SteadyMean, farmized.SteadyMean)
	}
	// The farmized variant must clear the 0.3 bound in steady state.
	if farmized.SteadyMean < 0.3 {
		t.Fatalf("farmized steady throughput %.3f below contract", farmized.SteadyMean)
	}
	if !strings.Contains(buf.String(), "EXT-FARMIZE") {
		t.Fatal("report missing header")
	}
}

func TestMigrationHarness(t *testing.T) {
	var buf strings.Builder
	res, err := Migration(context.Background(), Options{Scale: 500, Tasks: 180, Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	add, mig := res.Rows[0], res.Rows[1]
	if add.Completed != 180 || mig.Completed != 180 {
		t.Fatalf("completions: %d / %d", add.Completed, mig.Completed)
	}
	if mig.Migrations == 0 {
		t.Fatalf("migration strategy never migrated:\n%s", res.Logs["migrate"].Timeline())
	}
	if add.Migrations != 0 {
		t.Fatal("baseline strategy migrated")
	}
	// Migration must not need more peak cores than pure pool growth.
	if mig.PeakCores > add.PeakCores {
		t.Fatalf("migration used more cores (%v) than adding (%v)", mig.PeakCores, add.PeakCores)
	}
	if !strings.Contains(buf.String(), "EXT-MIG") {
		t.Fatal("report missing header")
	}
}

func TestInitialDegreeHarness(t *testing.T) {
	var buf strings.Builder
	res, err := InitialDegree(context.Background(), Options{Scale: 500, Tasks: 120, Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	cold, model := res.Rows[0], res.Rows[1]
	if cold.Completed != 120 || model.Completed != 120 {
		t.Fatalf("completions: %d / %d", cold.Completed, model.Completed)
	}
	if model.InitialWorkers < 4 {
		t.Fatalf("model start began with %.0f workers, want >= 4", model.InitialWorkers)
	}
	if cold.InitialWorkers > 2 {
		t.Fatalf("cold start began with %.0f workers", cold.InitialWorkers)
	}
	if model.TimeToContract < 0 {
		t.Fatal("model start never reached the contract")
	}
	// Sampling granularity (1 modelled second) plus the sliding-window
	// lag leave a few seconds of jitter in the crossing instant.
	const slack = 5 * time.Second
	if cold.TimeToContract >= 0 && model.TimeToContract > cold.TimeToContract+slack {
		t.Fatalf("model start slower (%v) than cold start (%v)",
			model.TimeToContract, cold.TimeToContract)
	}
	// Allow a little measurement jitter at high time scales: the model
	// start must not need substantially more corrections than cold.
	if model.AddWorkers > cold.AddWorkers+2 {
		t.Fatalf("model start needed more corrections (%d) than cold (%d)",
			model.AddWorkers, cold.AddWorkers)
	}
	if !strings.Contains(buf.String(), "EXT-INIT") {
		t.Fatal("report missing header")
	}
}

func TestShedHarness(t *testing.T) {
	var buf strings.Builder
	res, err := Shed(context.Background(), Options{Scale: 500, Tasks: 150, Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 150 {
		t.Fatalf("completed %d/150", res.Completed)
	}
	if res.Removals < 3 {
		t.Fatalf("expected shedding, got %d removals:\n%s", res.Removals, res.Log.Timeline())
	}
	if res.FinalWorkers >= res.InitialWorkers {
		t.Fatalf("pool did not shrink: %d -> %d", res.InitialWorkers, res.FinalWorkers)
	}
	// Shedding must not undershoot below the contract's needs during the
	// active phase (2 workers at 0.2/s each = 0.4 >= the 0.3 bound).
	if res.FinalWorkers < 2 {
		t.Fatalf("overshoot: shed down to %d workers", res.FinalWorkers)
	}
	if !strings.Contains(buf.String(), "EXT-SHED") {
		t.Fatal("report missing header")
	}
}

func TestContractSplitHarness(t *testing.T) {
	var buf strings.Builder
	rows, err := ContractSplit(context.Background(), Options{Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Throughput pipeline split: identical sub-contracts.
	for _, s := range rows[0].Subs {
		if s != rows[0].Subs[0] {
			t.Fatalf("pipeline throughput split not identical: %v", rows[0].Subs)
		}
	}
	// Weighted par-degree split: middle stage gets the biggest share.
	if !strings.Contains(rows[1].Subs[1], "pardegree:1-7") {
		t.Fatalf("weighted middle share = %s", rows[1].Subs[1])
	}
	// Farm split keeps security.
	for _, s := range rows[3].Subs {
		if !strings.Contains(s, "secure") {
			t.Fatalf("farm split lost security: %v", rows[3].Subs)
		}
	}
	if !strings.Contains(buf.String(), "EXT-SPLIT") {
		t.Fatal("report missing header")
	}
}

package experiments

import (
	"context"
	"testing"
	"time"

	"repro/internal/manager"
	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/wire"
)

// TestMgmtLinkOverWireAttach exercises the production management-plane
// path end to end: a parent endpoint served behind a wire.Server (the
// coordinator's -mgmt side) and a RemoteLink dialing through a
// wire.Factory (the workerd's -parent side) must reach the up state on a
// real TCP loopback under real clocks.
func TestMgmtLinkOverWireAttach(t *testing.T) {
	clock := &simclock.Real{}
	log := trace.NewLog()
	parent, err := manager.New(manager.Config{Name: "P", Clock: clock, Period: time.Second, Controller: linkSentinel{}, Log: log})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := manager.NewParentEndpoint(manager.ParentEndpointConfig{Parent: parent, Clock: clock, Log: log})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := wire.NewServer(wire.ServerConfig{
		PSK:   wire.DerivePSK("smoke"),
		Hello: wire.Hello{Name: "coordinator", Domain: "coordinator.local", Trusted: true, Cores: 2, Speed: 1},
		Mgmt:  ep.Handle,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	child, err := manager.New(manager.Config{Name: "C", Clock: clock, Period: time.Second, Controller: linkSentinel{}, Log: log})
	if err != nil {
		t.Fatal(err)
	}
	fac, err := wire.NewFactory(wire.DerivePSK("smoke"), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer fac.CloseControls()
	addr := srv.Addr()
	link, err := manager.NewRemoteLink(manager.RemoteLinkConfig{
		Child:     child,
		Transport: func(req []byte) ([]byte, error) { return fac.Mgmt(addr, req) },
		Heartbeat: 100 * time.Millisecond, Lease: 400 * time.Millisecond,
		Clock: clock, Log: log,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	go func() { _ = link.Run(ctx) }()
	deadline := time.Now().Add(4 * time.Second)
	for time.Now().Before(deadline) && link.State() != manager.LinkUp {
		time.Sleep(50 * time.Millisecond)
	}
	if link.State() != manager.LinkUp {
		t.Fatalf("link never attached over the wire:\n%s", log.Timeline())
	}
	if ep.Children()[0] != "C" {
		t.Fatalf("endpoint children = %v, want [C]", ep.Children())
	}
}

package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// This file renders experiment results as the ASCII analogues of the
// paper's figures: value series with contract bands, per-manager event
// strips, and summary tables.

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n\n", title)
}

func plotStart(res *core.Result) (time.Time, bool) {
	pts := res.Throughput.Points()
	if len(pts) == 0 {
		return time.Time{}, false
	}
	return pts[0].T, true
}

func writeFig3(w io.Writer, res *core.Result) {
	header(w, "Fig. 3 — single AM ensuring a 0.6 task/s contract in a task farm BS")
	fmt.Fprintf(w, "throughput (tasks/s, modelled) and parallelism degree; band = contract 0.6\n\n")
	fmt.Fprint(w, trace.RenderSeries(trace.PlotOptions{
		Width: 72, Height: 12, Bands: []float64{0.6},
	}, res.Throughput))
	fmt.Fprintln(w)
	fmt.Fprint(w, trace.RenderSeries(trace.PlotOptions{
		Width: 72, Height: 8,
	}, res.Workers))
	if start, ok := plotStart(res); ok {
		fmt.Fprintln(w)
		bucket := bucketFor(res, 72)
		fmt.Fprint(w, res.Log.EventStrip("AM_F", start, 72, bucket))
	}
	fmt.Fprintf(w, "\ncompleted %d tasks; final throughput %.3f tasks/s with %d workers; addWorker events: %d\n",
		res.Completed, res.Final.Throughput, res.Final.ParDegree,
		res.Log.Count("AM_F", trace.AddWorker))
}

func writeFig4(w io.Writer, res *core.Result) {
	header(w, "Fig. 4 — hierarchical AMs in a three-stage pipeline (contract 0.3-0.7 task/s)")
	start, ok := plotStart(res)
	if !ok {
		fmt.Fprintln(w, "(no samples)")
		return
	}
	bucket := bucketFor(res, 72)
	fmt.Fprintln(w, "graph 1: events in the top-level pipeline manager AM_A")
	fmt.Fprint(w, res.Log.EventStrip("AM_A", start, 72, bucket))
	fmt.Fprintln(w, "\ngraph 2: events in the farm manager AM_F")
	fmt.Fprint(w, res.Log.EventStrip("AM_F", start, 72, bucket))
	fmt.Fprintln(w, "\ngraph 3: input task rate (+) and stage throughput (*) vs. contract stripe")
	fmt.Fprint(w, trace.RenderSeries(trace.PlotOptions{
		Width: 72, Height: 12, Bands: []float64{0.3, 0.7},
	}, res.Throughput, res.InputRate))
	fmt.Fprintln(w, "\ngraph 4: resources (cores) used")
	fmt.Fprint(w, trace.RenderSeries(trace.PlotOptions{
		Width: 72, Height: 8,
	}, res.Cores))
	fmt.Fprintf(w, "\ncompleted %d tasks; incRate=%d decRate=%d addWorker=%d rebalance=%d endStream=%d\n",
		res.Completed,
		res.Log.Count("AM_A", trace.IncRate),
		res.Log.Count("AM_A", trace.DecRate),
		res.Log.Count("AM_F", trace.AddWorker),
		res.Log.Count("AM_F", trace.Rebalance),
		res.Log.Count("AM_A", trace.EndStream))
}

func writeExtLoad(w io.Writer, res *ExtLoadResult) {
	header(w, "EXT-LOAD — external load on worker cores; the AM restores the contract")
	fmt.Fprint(w, trace.RenderSeries(trace.PlotOptions{
		Width: 72, Height: 12, Bands: []float64{0.6},
	}, res.Throughput))
	fmt.Fprintln(w)
	fmt.Fprint(w, trace.RenderSeries(trace.PlotOptions{Width: 72, Height: 8}, res.Workers))
	fmt.Fprintf(w, "\nworkers before spike: %d; peak workers after: %d; addWorker reactions after spike: %d\n",
		res.WorkersBefore, res.WorkersAfter, res.AddsAfterSpike)
}

func writeFaultTolerance(w io.Writer, res *FaultResult) {
	header(w, "EXT-FT — autonomic fault tolerance: crashes detected, recovered, replaced")
	fmt.Fprint(w, trace.RenderSeries(trace.PlotOptions{
		Width: 72, Height: 12, Bands: []float64{0.6},
	}, res.Throughput))
	fmt.Fprintln(w)
	fmt.Fprint(w, trace.RenderSeries(trace.PlotOptions{Width: 72, Height: 8}, res.Workers))
	fmt.Fprintf(w, "\ncrashes injected: %d; recovered: %d; replacements recruited: %d; tasks completed: %d\n",
		res.Injected, res.Recovered, res.Replaced, res.Completed)
}

func writeMultiConcern(w io.Writer, res *MultiConcernResult) {
	header(w, "EXT-SEC — multi-concern coordination: perf + security (§3.2)")
	fmt.Fprintf(w, "%-12s %10s %8s %10s %10s %10s %12s %10s\n",
		"scheme", "completed", "leaks", "secured", "total", "untrusted", "peak tp", "verdict")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-12s %10d %8d %10d %10d %10d %12.3f %10s\n",
			r.Mode, r.Completed, r.Leaks, r.SecuredMsgs, r.TotalMsgs,
			r.UntrustedHosts, r.PeakThroughput, r.ContractVerdict)
	}
	fmt.Fprintln(w, "\nexpected shape: two-phase leaks 0; reactive leaks > 0; unmanaged secures nothing.")
}

func writeSplit(w io.Writer, rows []SplitRow) {
	header(w, "EXT-SPLIT — P_spl contract splitting heuristics (§3.1)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-45s  %s\n", r.Pattern, r.Contract)
		for i, s := range r.Subs {
			fmt.Fprintf(w, "%45s  child %d: %s\n", "", i, s)
		}
		fmt.Fprintln(w)
	}
}

// bucketFor sizes event-strip buckets so the whole run fits in width
// columns.
func bucketFor(res *core.Result, width int) time.Duration {
	pts := res.Throughput.Points()
	if len(pts) < 2 || width <= 0 {
		return time.Second
	}
	span := pts[len(pts)-1].T.Sub(pts[0].T)
	b := span / time.Duration(width)
	if b <= 0 {
		b = time.Millisecond
	}
	return b
}

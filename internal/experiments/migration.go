package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/contract"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/manager"
	"repro/internal/trace"
)

// MigrationRow is one strategy of the EXT-MIG comparison.
type MigrationRow struct {
	Strategy   string
	Completed  int
	SteadyTP   float64
	PeakCores  float64
	AddWorkers int
	Migrations int
}

// MigrationResult is the full EXT-MIG comparison.
type MigrationResult struct {
	Rows []MigrationRow
	Logs map[string]*trace.Log
}

// Migration runs the EXT-MIG ablation for the §3 policy list: when
// external load appears on some worker nodes, the manager can either *add*
// workers (the Fig. 4/EXT-LOAD reaction) or *migrate* the affected workers
// to free nodes ("migration of poorly performing activities to faster
// execution resources"). Both restore the contract; migration does so
// while holding fewer cores.
func Migration(ctx context.Context, opts Options) (*MigrationResult, error) {
	tasks := opts.Tasks
	if tasks <= 0 {
		tasks = 240
	}
	out := &MigrationResult{Logs: map[string]*trace.Log{}}
	for _, withMig := range []bool{false, true} {
		name := "add-workers"
		if withMig {
			name = "migrate"
		}
		trusted := grid.Domain{Name: "cluster.local", Trusted: true}
		var nodes []*grid.Node
		for i := 0; i < 20; i++ {
			nodes = append(nodes, grid.NewNode(fmt.Sprintf("n%02d", i), trusted, 1, 1.0))
		}
		platform := &grid.Platform{
			Domains: []grid.Domain{trusted},
			Network: grid.NewNetwork(),
			RM:      grid.NewResourceManager(nodes...),
		}
		env := opts.env()
		log := trace.NewLog()
		app, err := core.NewFarmApp(core.FarmAppConfig{
			Name:             "extmig-" + name,
			Env:              env,
			Platform:         platform,
			Log:              log,
			Tasks:            tasks,
			TaskWork:         5 * time.Second,
			SourceInterval:   1250 * time.Millisecond,
			InitialWorkers:   5,
			Contract:         contract.MinThroughput(0.6),
			Limits:           manager.FarmLimits{MaxWorkers: 16},
			Period:           2 * time.Second,
			SamplePeriod:     time.Second,
			WithMigration:    withMig,
			MigrationMaxLoad: 0.5,
		})
		if err != nil {
			return nil, err
		}

		// Injector: at one third of the stream, overload the nodes of
		// three workers; plenty of unloaded nodes remain for migration.
		go func() {
			for app.Sink.Consumed() < tasks/3 {
				if ctx != nil && ctx.Err() != nil {
					return
				}
				env.Clock.Sleep(time.Millisecond)
			}
			workers := app.FarmABC.Workers()
			for i, w := range workers {
				if i >= 3 {
					break
				}
				w.Node.SetExternalLoad(0.75)
			}
			app.Log.Record(env.Clock.Now(), "ENV", trace.Kind("extLoad"),
				"75% external load on 3 worker nodes")
		}()

		if err := enableTelemetry(app, opts); err != nil {
			return nil, err
		}
		res, err := app.RunContext(ctx)
		if err != nil {
			return nil, err
		}
		row := MigrationRow{
			Strategy:   name,
			Completed:  res.Completed,
			SteadyTP:   steadyMean(res.Throughput, 0.6),
			PeakCores:  res.Cores.Max(),
			AddWorkers: log.Count("AM_F", trace.AddWorker),
		}
		if app.Migration != nil {
			row.Migrations = app.Migration.Migrated()
		}
		out.Rows = append(out.Rows, row)
		out.Logs[name] = log
	}
	if opts.Out != nil {
		writeMigration(opts.Out, out)
	}
	return out, nil
}

func writeMigration(w io.Writer, res *MigrationResult) {
	header(w, "EXT-MIG — reacting to external load: add workers vs. migrate workers")
	fmt.Fprintf(w, "%-14s %10s %10s %11s %12s %11s\n",
		"strategy", "completed", "steady tp", "peak cores", "addWorker", "migrations")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-14s %10d %10.3f %11.0f %12d %11d\n",
			r.Strategy, r.Completed, r.SteadyTP, r.PeakCores, r.AddWorkers, r.Migrations)
	}
	fmt.Fprintln(w, "\nexpected shape: both strategies keep the contract; migration holds fewer")
	fmt.Fprintln(w, "cores at its peak because it moves capacity instead of adding it.")
}

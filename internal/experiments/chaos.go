package experiments

import (
	"context"
	"fmt"
	"io"
	gort "runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/contract"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/manager"
	"repro/internal/metrics"
	"repro/internal/rules"
	"repro/internal/skel"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// ChaosOptions parameterizes the chaos soak on top of the shared Options.
type ChaosOptions struct {
	// Seed drives the deterministic fault plan (default 1).
	Seed int64
	// Storms is the number of fault bursts (default 3).
	Storms int
	// MaxRecover bounds the post-storm recovery wait in modelled time
	// (default 60s); exceeding it marks the storm unrecovered, an
	// invariant violation.
	MaxRecover time.Duration
	// Remote runs the soak with a live cross-process dispatch plane:
	// RemoteWorkers in-process workerd servers on localhost join the
	// untrusted domain's pool, the fault plan extends to the remote-link
	// taxonomy (drop, delay, partition on the framed connections), and the
	// soak invariants additionally cover recovery from severed links —
	// stranded envelopes re-dispatched, replacement recruitment re-dialing.
	Remote bool
	// RemoteWorkers is the number of workerd endpoints (default 2).
	RemoteWorkers int
	// Batch > 1 runs the soak with the farm's batched dispatch hot path
	// (DispatchBatch). The invariants are identical — exactly-once, zero
	// leaks, recovery — only the envelope granularity changes; the summary
	// gains a batch marker so batched goldens never collide with unbatched
	// ones.
	Batch int
	// ManagerLinks runs the soak with a remote management plane: a
	// sentinel child manager whose contract is permanently violated
	// reports to the root manager over a manager.RemoteLink, the fault
	// plan extends to the manager-link taxonomy (partition, drop), and
	// the soak invariants additionally assert that no violation raised
	// during a partition goes permanently unnoticed (buffer drained,
	// catch-up ran) and that each one reached the parent exactly once.
	ManagerLinks bool
}

func (c ChaosOptions) normalized() ChaosOptions {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Storms <= 0 {
		c.Storms = 3
	}
	if c.MaxRecover <= 0 {
		c.MaxRecover = 60 * time.Second
	}
	if c.RemoteWorkers <= 0 {
		c.RemoteWorkers = 2
	}
	return c
}

// ChaosSummary is the deterministic digest of one soak run: it contains
// only seed-derived values (the plan) and invariant verdicts, never
// wall-clock measurements or runtime-dependent counts, so two runs with
// the same seed must render it byte-identically.
type ChaosSummary struct {
	Seed        int64
	Fingerprint string
	Tasks       int
	Storms      int
	// Remote records that the plan covered the remote-link taxonomy; it
	// widens the canonical "plan:" line, so a remote golden never collides
	// with a loopback one.
	Remote bool
	// Batch records the DispatchBatch the soak ran with (0/1 = off). When
	// on it marks the canonical header line, so a batched golden never
	// collides with an unbatched one — and an unbatched summary renders
	// byte-identically to the pre-batching format.
	Batch int
	// ManagerLinks records that the plan covered the manager-link
	// taxonomy; it widens the plan and invariant lines, so a manager-link
	// golden never collides with any other.
	ManagerLinks bool
	ByKind       map[chaos.Kind]int

	Lost          int
	Duplicates    int
	Leaks         uint64
	Unrecovered   int
	GoroutineLeak bool
	MTTRSampled   bool
	// ManagerHealed: at least one management loop was killed and
	// supervised back to life (restart count and manager-MTTR histogram
	// both non-zero). Every plan schedules manager faults, so a run that
	// never restarts a manager means the self-healing plane is not wired.
	ManagerHealed bool
	// ReissueBounded: the GM never re-issued more two-phase intents than
	// it aborted — the at-most-once guarantee of the abort/reissue path.
	ReissueBounded bool
	// LinkCaughtUp (manager-link runs): the link partitioned and
	// reattached at least once, catch-up cycles ran, and the sentinel's
	// violation buffer drained — no violation went permanently unnoticed
	// because its manager was partitioned.
	LinkCaughtUp bool
	// LinkExactlyOnce (manager-link runs): every violation the parent
	// endpoint accepted carried a distinct causality id — a reattach
	// flush racing a live delivery never double-applied a cause.
	LinkExactlyOnce bool
}

// String renders the summary in a canonical byte-stable form.
func (s ChaosSummary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos seed=%d fingerprint=%s tasks=%d storms=%d",
		s.Seed, s.Fingerprint, s.Tasks, s.Storms)
	if s.Batch > 1 {
		fmt.Fprintf(&b, " batch=%d", s.Batch)
	}
	b.WriteString("\n")
	b.WriteString("plan:")
	kinds := chaos.Kinds()
	if s.Remote {
		kinds = append(kinds, chaos.RemoteKinds()...)
	}
	if s.ManagerLinks {
		kinds = append(kinds, chaos.ManagerLinkKinds()...)
	}
	for _, k := range kinds {
		fmt.Fprintf(&b, " %s=%d", k, s.ByKind[k])
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "invariants: lost=%d dups=%d leaks=%d unrecovered=%d goroutine_leak=%v mttr_sampled=%v manager_healed=%v reissue_bounded=%v",
		s.Lost, s.Duplicates, s.Leaks, s.Unrecovered, s.GoroutineLeak, s.MTTRSampled,
		s.ManagerHealed, s.ReissueBounded)
	if s.ManagerLinks {
		fmt.Fprintf(&b, " link_caught_up=%v link_exactly_once=%v", s.LinkCaughtUp, s.LinkExactlyOnce)
	}
	b.WriteString("\n")
	return b.String()
}

// Invariants returns the violated soak invariants, empty when the run was
// clean.
func (s ChaosSummary) Invariants() []string {
	var v []string
	if s.Lost != 0 {
		v = append(v, fmt.Sprintf("%d tasks lost (want exactly-once collection)", s.Lost))
	}
	if s.Duplicates != 0 {
		v = append(v, fmt.Sprintf("%d tasks collected more than once", s.Duplicates))
	}
	if s.Leaks != 0 {
		v = append(v, fmt.Sprintf("%d plaintext sends to untrusted nodes", s.Leaks))
	}
	if s.Unrecovered != 0 {
		v = append(v, fmt.Sprintf("%d storms without contract recovery", s.Unrecovered))
	}
	if s.GoroutineLeak {
		v = append(v, "goroutines leaked across the run")
	}
	if !s.MTTRSampled {
		v = append(v, "MTTR histogram is empty (no recovery was measured)")
	}
	if !s.ManagerHealed {
		v = append(v, "no management loop was restarted (self-healing not exercised)")
	}
	if !s.ReissueBounded {
		v = append(v, "GM re-issued more intents than it aborted (at-most-once broken)")
	}
	if s.ManagerLinks {
		if !s.LinkCaughtUp {
			v = append(v, "a partitioned manager's violations went unnoticed (no reattach/catch-up or buffer not drained)")
		}
		if !s.LinkExactlyOnce {
			v = append(v, "a violation crossed the manager link more than once (exactly-once broken)")
		}
	}
	return v
}

// ChaosResult is the full outcome of one soak run.
type ChaosResult struct {
	*core.Result
	Plan    chaos.Plan
	Report  chaos.Report
	Summary ChaosSummary
	MTTR    *metrics.Histogram
	// ActuatorFailures is AM_F's count of actuator operations that failed
	// after the hardened path's retries.
	ActuatorFailures uint64
	// InjectedActuator and InjectedRecruit count the faults the plane
	// actually delivered through the hooks.
	InjectedActuator uint64
	InjectedRecruit  uint64
	// InjectedManager counts delivered manager faults; ManagerRestarts the
	// supervised restarts they caused across every management loop.
	InjectedManager uint64
	ManagerRestarts uint64
	// AbortedIntents / ReissuedIntents trace the GM's two-phase abort
	// path: topology intents rolled back because the security participant
	// was down, and their re-issues after its recovery.
	AbortedIntents  uint64
	ReissuedIntents uint64
	// Tracer is the run's decision tracer, for JSONL export of the MAPE
	// decision trace (the CI artifact).
	Tracer *telemetry.Tracer
	// TaskTracer is the run's task-span tracer (rate 1, plan-seeded).
	// SpansPublished / FaultSpans are its run-dependent diagnostics: total
	// spans retired and how many carried a fault annotation (an envelope
	// caught mid-flight by an injected fault). They are deliberately NOT
	// part of the golden — timing decides which spans a storm catches.
	TaskTracer     *telemetry.TaskTracer
	SpansPublished uint64
	FaultSpans     uint64
	// FarmErrors are the asynchronous farm errors drained after the run
	// (dropped tasks, codec failures) — the first place to look when the
	// exactly-once invariant is violated.
	FarmErrors []string
	// RemoteStats snapshots the wire factory's transport counters after a
	// remote run (zero value on loopback runs): dials count the initial
	// recruitments plus every re-dial after an injected drop.
	RemoteStats wire.StatsSnapshot
	// Manager-link diagnostics (zero on runs without ManagerLinks):
	// run-dependent counters of the remote management plane — timing
	// decides how many violations a partition window catches, so they
	// stay out of the golden.
	LinkReattaches    uint64
	LinkCatchUpCycles uint64
	LinkDelivered     uint64
	LinkDuplicates    uint64
	LinkBufferedDown  uint64
}

// ChaosSoak is the robustness acceptance harness: a secured two-domain
// farm app with fault tolerance attached runs a stream long enough to
// outlast a seeded chaos plan covering the whole fault taxonomy. After the
// run it checks the soak invariants — every task collected exactly once,
// zero plaintext on untrusted links, every storm recovered within bound
// (MTTR histogram non-empty), no goroutine leaks — and returns the
// deterministic summary two same-seed runs must agree on byte for byte.
func ChaosSoak(ctx context.Context, opts Options, copts ChaosOptions) (*ChaosResult, error) {
	copts = copts.normalized()
	if ctx == nil {
		ctx = context.Background()
	}
	env := opts.env()

	plan := chaos.NewPlan(copts.Seed, chaos.StormConfig{
		Storms:              copts.Storms,
		IncludeRemote:       copts.Remote,
		IncludeManagerLinks: copts.ManagerLinks,
	})

	// The stream must outlast the plan (plus recovery probes), or late
	// storms would hit an already-drained farm: warmup 10s + 40s per storm
	// (the default span+quiet) + 30s margin, all modelled.
	const interval = 250 * time.Millisecond
	planSpan := 10*time.Second + time.Duration(copts.Storms)*(40*time.Second)
	tasks := opts.Tasks
	if tasks <= 0 {
		tasks = int((planSpan+30*time.Second)/interval) + 1
	}

	con := contract.Conjunction{contract.SecureComms{}, contract.MinThroughput(1.2)}
	platform := grid.NewTwoDomainGrid(4, 12)

	// With the remote plane on, workerd endpoints join the untrusted
	// domain's pool: the security concern must seal their bindings exactly
	// as it does for simulated untrusted nodes, except the seal now crosses
	// a real localhost connection. The servers start before the goroutine
	// baseline so their accept loops do not count as a leak.
	var factory *wire.Factory
	var servers []*wire.Server
	if copts.Remote {
		psk := wire.DerivePSK("chaos-soak")
		untrusted := platform.Domains[1]
		var remoteNodes []*grid.Node
		for i := 0; i < copts.RemoteWorkers; i++ {
			srv, err := wire.NewServer(wire.ServerConfig{
				PSK: psk,
				Hello: wire.Hello{
					Name:    fmt.Sprintf("edge%d", i),
					Domain:  untrusted.Name,
					Trusted: untrusted.Trusted,
					Cores:   2,
					Speed:   1.0,
					Labels:  map[string]string{"zone": "edge"},
				},
				TimeScale: env.TimeScale,
			})
			if err != nil {
				return nil, err
			}
			if err := srv.Listen("127.0.0.1:0"); err != nil {
				return nil, err
			}
			servers = append(servers, srv)
		}
		defer func() {
			for _, srv := range servers {
				srv.Close()
			}
		}()
		f, err := wire.NewFactory(psk, 5*time.Second)
		if err != nil {
			return nil, err
		}
		factory = f
		for _, srv := range servers {
			node, err := factory.Probe(srv.Addr())
			if err != nil {
				return nil, err
			}
			remoteNodes = append(remoteNodes, node)
		}
		platform.RM = grid.NewResourceManager(append(platform.RM.Nodes(), remoteNodes...)...)
	}

	// Exactly-once accounting: the sink function sees every collected task.
	var seenMu sync.Mutex
	seen := map[uint64]int{}
	baseline := gort.NumGoroutine()

	var execFactory skel.ExecutorFactory
	if factory != nil {
		execFactory = factory.Executor
	}
	app, err := core.NewFarmApp(core.FarmAppConfig{
		Name:           "chaos",
		Executors:      execFactory,
		Env:            env,
		Platform:       platform,
		Tasks:          tasks,
		TaskWork:       2 * time.Second,
		SourceInterval: interval, // 4 tasks/s offered
		Payload:        256,
		SinkFn: func(t *skel.Task) *skel.Task {
			seenMu.Lock()
			seen[t.ID]++
			seenMu.Unlock()
			return t
		},
		ChargeLinkLatency:  true,
		InitialWorkers:     3,
		Contract:           con,
		Limits:             manager.FarmLimits{MaxWorkers: 14},
		Period:             time.Second,
		SamplePeriod:       time.Second,
		WithSecurity:       true,
		Coordination:       manager.TwoPhase,
		Handshake:          200 * time.Millisecond,
		WithFaultTolerance: true,
		FaultPeriod:        500 * time.Millisecond,
		FaultSuspectAfter:  6 * time.Second,
		ActuatorTimeout:    10 * time.Second,
		JitterSeed:         copts.Seed,
		DispatchBatch:      copts.Batch,
		// Task tracing runs at rate 1 under the soak: the sampler is seeded
		// from the plan seed, so a same-seed replay samples the same task
		// ids, and every fault the plane injects into an in-flight envelope
		// surfaces as a fault-annotated span. Spans are passive — the golden
		// (schedule + summary) stays byte-identical with tracing on.
		TraceSample: 1,
		TraceSeed:   uint64(copts.Seed),
	})
	if err != nil {
		return nil, err
	}
	if err := enableTelemetry(app, opts); err != nil {
		return nil, err
	}

	mttr := metrics.NewHistogram(metrics.ExpBuckets(0.25, 2, 10))
	app.Telemetry().AddHistogram("repro_chaos_mttr_seconds",
		"Modelled seconds from storm end to contract recovery.", nil, mttr)

	fa := app.FarmABC
	health := func() bool {
		snap := fa.Snapshot()
		return snap.StreamDone || con.Check(snap).OK()
	}

	// Management-plane victims, in fixed order so the injector's
	// round-robin selection stays a pure function of the plan: the
	// performance root (exercising checkpoint/restore), the fault-tolerance
	// loop, the two-phase security participant (a down-window, so intents
	// prepared against it abort) and the GM coordinator. Modelled durations
	// are scaled onto the app clock here.
	real := func(d time.Duration) time.Duration {
		s := env.TimeScale
		if s <= 0 {
			s = 1
		}
		out := time.Duration(float64(d) / s)
		if out <= 0 {
			out = time.Millisecond
		}
		return out
	}
	var amfCrash, amfPanic atomic.Int32
	var amfStall atomic.Int64 // pending stall, clock ns
	app.RootManager.SetRunFault(func() manager.RunFault {
		var f manager.RunFault
		if d := amfStall.Swap(0); d > 0 {
			f.Stall = time.Duration(d)
		}
		switch {
		case takeFault(&amfPanic):
			f.Panic = true
		case takeFault(&amfCrash):
			f.Crash = true
		}
		return f
	})
	mgrs := []chaos.ManagerTarget{
		{
			Name:  app.RootManager.Name(),
			Crash: func(time.Duration) bool { amfCrash.Add(1); return true },
			Panic: func() bool { amfPanic.Add(1); return true },
			Stall: func(d time.Duration) bool { amfStall.Store(int64(real(d))); return true },
		},
		{
			Name:  app.Fault.Name(),
			Crash: func(time.Duration) bool { return app.Fault.InjectCrash() },
		},
		{
			Name: app.Security.Name(),
			Crash: func(w time.Duration) bool {
				if w <= 0 {
					w = 2 * time.Second
				}
				app.Security.FailFor(real(w))
				return true
			},
		},
		{
			Name:  app.GM.Name(),
			Crash: func(time.Duration) bool { return app.GM.InjectCrash() },
		},
	}

	var remoteTarget *chaos.RemoteTarget
	if factory != nil {
		remoteTarget = &chaos.RemoteTarget{
			Name:      "wire",
			Drop:      factory.InjectDrop,
			Delay:     factory.InjectDelay,
			Partition: factory.InjectPartition,
		}
	}

	// The remote management plane under test: a sentinel child manager
	// whose throughput contract can never be satisfied (its controller
	// reports a permanently starved snapshot), linked to the root manager
	// over a RemoteLink. Every sentinel MAPE cycle escalates a violation
	// across the link; injected partitions expire its lease, park the
	// violations in the bounded buffer, and reattach must flush them
	// exactly once and run catch-up cycles.
	var mgrLinkTarget *chaos.MgrLinkTarget
	var sentinel *manager.Manager
	var linkEp *manager.ParentEndpoint
	var mlink *manager.RemoteLink
	var sentinelStop func()
	if copts.ManagerLinks {
		sentinel, err = manager.New(manager.Config{
			Name: "AM_edge", Concern: "performance", Clock: env.Clock,
			Period: real(time.Second), Controller: linkSentinel{}, Log: app.Log,
			Policy: manager.Policy{
				OnVerdict: func(m *manager.Manager, v contract.Verdict, snap contract.Snapshot) {
					if !v.OK() {
						m.Escalate(rules.TagNotEnoughTasks, snap)
					}
				},
			},
		})
		if err != nil {
			return nil, err
		}
		sentinel.SetTracer(app.Tracer())
		if err := sentinel.AssignContract(contract.MinThroughput(0.5)); err != nil {
			return nil, err
		}
		linkEp, err = manager.NewParentEndpoint(manager.ParentEndpointConfig{
			Parent: app.RootManager, Lease: real(time.Second),
			Clock: env.Clock, Log: app.Log,
		})
		if err != nil {
			return nil, err
		}
		mlink, err = manager.NewRemoteLink(manager.RemoteLinkConfig{
			Child:     sentinel,
			Transport: func(req []byte) ([]byte, error) { return linkEp.Handle(req), nil },
			Heartbeat: real(250 * time.Millisecond), Lease: real(time.Second),
			Clock: env.Clock, Log: app.Log, Seed: copts.Seed,
			// The sentinel manages its own edge concern: its locally
			// assigned contract must survive the parent's P_spl answer.
			KeepContract: true,
		})
		if err != nil {
			return nil, err
		}
		app.AttachManagerLink(mlink)
		app.AttachManagerEndpoint(linkEp)
		sctx, scancel := context.WithCancel(ctx)
		var swg sync.WaitGroup
		swg.Add(2)
		go func() { defer swg.Done(); _ = sentinel.Run(sctx) }()
		go func() { defer swg.Done(); _ = mlink.Run(sctx) }()
		sentinelStop = func() { scancel(); swg.Wait() }
		mgrLinkTarget = &chaos.MgrLinkTarget{
			Name:      "mgrlink",
			Partition: mlink.InjectPartition,
			Drop:      mlink.InjectDrop,
		}
	}

	inj := chaos.NewInjector(chaos.Targets{
		Farm:       fa.Farm(),
		Remote:     remoteTarget,
		Exec:       fa,
		RM:         platform.RM,
		Nodes:      platform.RM.Nodes(),
		Network:    platform.Network,
		LinkA:      platform.Domains[0].Name,
		LinkB:      platform.Domains[1].Name,
		Env:        env,
		Log:        app.Log,
		Health:     health,
		MTTR:       mttr,
		MaxRecover: copts.MaxRecover,
		Managers:   mgrs,
		MgrLink:    mgrLinkTarget,
	})

	injCtx, cancelInj := context.WithCancel(ctx)
	var rep chaos.Report
	injDone := make(chan struct{})
	go func() {
		defer close(injDone)
		rep = inj.Run(injCtx, plan)
	}()

	res, err := app.RunContext(ctx)
	// The stream outlasts the plan by construction, so by the time the run
	// returns the injector has normally finished; cancel covers early
	// stream exits and unrecovered storms stuck in their probe loop.
	cancelInj()
	<-injDone
	inj.Close()
	if sentinelStop != nil {
		sentinelStop()
	}
	if err != nil {
		return nil, err
	}

	// Let transient goroutines (drained stages, restore timers) exit
	// before judging leaks.
	leaked := false
	for i := 0; i < 100; i++ {
		if gort.NumGoroutine() <= baseline+2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
		if i == 99 {
			leaked = true
		}
	}

	seenMu.Lock()
	distinct := len(seen)
	collected := 0
	for _, n := range seen {
		collected += n
	}
	seenMu.Unlock()

	var leaks uint64
	if app.Auditor != nil {
		leaks = app.Auditor.Leaks()
	}
	var restarts uint64
	for _, s := range app.Supervisors {
		restarts += s.Restarts()
	}
	mgrMTTRSampled := app.ManagerMTTR() != nil && app.ManagerMTTR().Count() > 0
	linkCaughtUp, linkExactlyOnce := false, false
	if copts.ManagerLinks {
		linkCaughtUp = mlink.Reattaches() > 0 && sentinel.CatchUpCycles() > 0 &&
			sentinel.BufferedViolations() == 0
		linkExactlyOnce = linkEp.Delivered() > 0 && linkEp.Delivered() == linkEp.UniqueCauses()
	}
	summary := ChaosSummary{
		Seed:            copts.Seed,
		Fingerprint:     plan.Fingerprint(),
		Tasks:           tasks,
		Storms:          copts.Storms,
		Remote:          copts.Remote,
		Batch:           copts.Batch,
		ByKind:          plan.ByKind(),
		Lost:            tasks - distinct,
		Duplicates:      collected - distinct,
		Leaks:           leaks,
		Unrecovered:     rep.Unrecovered,
		GoroutineLeak:   leaked,
		MTTRSampled:     mttr.Count() > 0,
		ManagerHealed:   restarts > 0 && mgrMTTRSampled,
		ReissueBounded:  app.GM.ReissuedIntents() <= app.GM.AbortedIntents(),
		ManagerLinks:    copts.ManagerLinks,
		LinkCaughtUp:    linkCaughtUp,
		LinkExactlyOnce: linkExactlyOnce,
	}

	var farmErrs []string
drainErrs:
	for {
		select {
		case e := <-fa.Farm().Errors():
			farmErrs = append(farmErrs, e.Error())
		default:
			break drainErrs
		}
	}

	out := &ChaosResult{
		Result:           res,
		Plan:             plan,
		Report:           rep,
		Summary:          summary,
		MTTR:             mttr,
		InjectedActuator: inj.InjectedActuatorFailures(),
		InjectedRecruit:  inj.InjectedRecruitFailures(),
		InjectedManager:  inj.InjectedManagerFaults(),
		ManagerRestarts:  restarts,
		AbortedIntents:   app.GM.AbortedIntents(),
		ReissuedIntents:  app.GM.ReissuedIntents(),
		Tracer:           app.Tracer(),
		TaskTracer:       app.TaskTracer(),
		FarmErrors:       farmErrs,
	}
	if tt := app.TaskTracer(); tt != nil {
		out.SpansPublished = tt.Ring().Published()
		out.FaultSpans = tt.Ring().Faults()
	}
	if app.RootManager != nil {
		out.ActuatorFailures = app.RootManager.ActuatorFailures()
	}
	if factory != nil {
		out.RemoteStats = factory.Snapshot()
	}
	if copts.ManagerLinks {
		out.LinkReattaches = mlink.Reattaches()
		out.LinkCatchUpCycles = sentinel.CatchUpCycles()
		out.LinkDelivered = linkEp.Delivered()
		out.LinkDuplicates = linkEp.Duplicates()
		out.LinkBufferedDown = mlink.BufferedWhileDown()
	}
	if opts.Out != nil {
		writeChaos(opts.Out, out)
	}
	return out, nil
}

// Golden renders the replay-identity artifact of a soak run: the full
// fault schedule plus the canonical summary, both pure functions of the
// seed and the invariant verdicts. Two same-seed runs must produce this
// byte-identically; CI diffs it against the committed goldens.
func (r *ChaosResult) Golden() string {
	var b strings.Builder
	for _, line := range r.Plan.Schedule() {
		b.WriteString(line)
		b.WriteString("\n")
	}
	b.WriteString(r.Summary.String())
	return b.String()
}

// linkSentinel is the sentinel child's controller: a permanently starved
// snapshot, so every MAPE cycle violates the sentinel's throughput
// contract and escalates over the manager link.
type linkSentinel struct{}

func (linkSentinel) Beans() []rules.Bean            { return nil }
func (linkSentinel) Snapshot() contract.Snapshot    { return contract.Snapshot{} }
func (linkSentinel) Execute(string) (string, error) { return "", nil }

// takeFault atomically consumes one pending one-shot manager fault.
func takeFault(c *atomic.Int32) bool {
	for {
		v := c.Load()
		if v <= 0 {
			return false
		}
		if c.CompareAndSwap(v, v-1) {
			return true
		}
	}
}

// writeChaos renders the soak outcome.
func writeChaos(w io.Writer, r *ChaosResult) {
	fmt.Fprintf(w, "== chaos soak ==\n")
	for _, line := range r.Plan.Schedule() {
		fmt.Fprintf(w, "  %s\n", line)
	}
	fmt.Fprint(w, r.Summary)
	kinds := chaos.Kinds()
	if r.Summary.Remote {
		kinds = append(kinds, chaos.RemoteKinds()...)
	}
	if r.Summary.ManagerLinks {
		kinds = append(kinds, chaos.ManagerLinkKinds()...)
	}
	applied := make([]string, 0, len(r.Report.Applied))
	for _, k := range kinds {
		if n := r.Report.Applied[k]; n > 0 {
			applied = append(applied, fmt.Sprintf("%s=%d", k, n))
		}
	}
	sort.Strings(applied)
	fmt.Fprintf(w, "applied: %s\n", strings.Join(applied, " "))
	// Run-dependent diagnostics: unlike the schedule and the summary above,
	// these counts depend on what the live system was doing inside each
	// fault window and may differ between same-seed runs.
	fmt.Fprintf(w, "diagnostics: completed=%d recovered=%d/%d mttr_samples=%d actuator_failures=%d injected: act=%d recruit=%d mgr=%d\n",
		r.Completed, r.Report.Recovered, r.Report.Storms, r.MTTR.Count(),
		r.ActuatorFailures, r.InjectedActuator, r.InjectedRecruit, r.InjectedManager)
	fmt.Fprintf(w, "self-healing: restarts=%d intents aborted=%d reissued=%d\n",
		r.ManagerRestarts, r.AbortedIntents, r.ReissuedIntents)
	fmt.Fprintf(w, "tracing: spans=%d fault_spans=%d\n", r.SpansPublished, r.FaultSpans)
	if r.Summary.Remote {
		fmt.Fprintf(w, "remote link: dials=%d execs=%d rekeys=%d frames=%d drops=%d\n",
			r.RemoteStats.Dials, r.RemoteStats.Execs, r.RemoteStats.Rekeys,
			r.RemoteStats.FramesOut, r.RemoteStats.Drops)
	}
	if r.Summary.ManagerLinks {
		fmt.Fprintf(w, "manager link: reattaches=%d catchup=%d delivered=%d dup_suppressed=%d buffered_down=%d\n",
			r.LinkReattaches, r.LinkCatchUpCycles, r.LinkDelivered,
			r.LinkDuplicates, r.LinkBufferedDown)
	}
	for _, e := range r.FarmErrors {
		fmt.Fprintf(w, "farm error: %s\n", e)
	}
	if v := r.Summary.Invariants(); len(v) > 0 {
		for _, line := range v {
			fmt.Fprintf(w, "VIOLATION: %s\n", line)
		}
	} else {
		fmt.Fprintf(w, "all soak invariants hold\n")
	}
}

package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/contract"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/manager"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// FarmizeRow is one variant of the EXT-FARMIZE comparison.
type FarmizeRow struct {
	Variant        string
	PeakThroughput float64
	SteadyMean     float64
	Completed      int
	FarmWorkers    float64
}

// FarmizeResult is the full EXT-FARMIZE comparison.
type FarmizeResult struct {
	Rows []FarmizeRow
	Logs map[string]*trace.Log
}

// Farmize reproduces the §4.2 outlook experiment: "we are investigating
// ways to transform the pipeline stage into a farm with the workers
// behaving as instances of the original stage". A three-stage pipeline has
// a sequential consumer whose service time caps the whole pipeline below
// the contract, no matter how many workers the (managed) middle farm
// recruits. Farmizing the consumer stage — same functional code, now
// replicated — removes the bottleneck and lets the hierarchy satisfy the
// contract.
func Farmize(ctx context.Context, opts Options) (*FarmizeResult, error) {
	tasks := opts.Tasks
	if tasks <= 0 {
		tasks = 150
	}
	consumer := core.StageSpec{
		Name: "consumer",
		Kind: core.StageSeq,
		Work: 4 * time.Second, // capacity 0.25/s: below the 0.3 bound
	}
	variants := []struct {
		name   string
		stages []core.StageSpec
	}{
		{
			"seq consumer (bottleneck)",
			[]core.StageSpec{
				{Name: "filter", Kind: core.StageFarm, Work: 10 * time.Second, Workers: 3,
					Limits: manager.FarmLimits{MaxWorkers: 8}},
				consumer,
			},
		},
		{
			"farmized consumer",
			[]core.StageSpec{
				{Name: "filter", Kind: core.StageFarm, Work: 10 * time.Second, Workers: 3,
					Limits: manager.FarmLimits{MaxWorkers: 8}},
				consumer.Farmize(2),
			},
		},
	}
	out := &FarmizeResult{Logs: map[string]*trace.Log{}}
	for _, v := range variants {
		log := trace.NewLog()
		app, err := core.NewStreamApp(core.StreamAppConfig{
			Name:           "farmize",
			Env:            opts.env(),
			Platform:       grid.NewSMP(16),
			Log:            log,
			Tasks:          tasks,
			SourceInterval: 2 * time.Second, // 0.5/s offered: inside the stripe
			Stages:         v.stages,
			Contract:       contract.ThroughputRange{Lo: 0.3, Hi: 0.7},
			Period:         3 * time.Second,
			SamplePeriod:   time.Second,
		})
		if err != nil {
			return nil, err
		}
		if err := enableTelemetry(app, opts); err != nil {
			return nil, err
		}
		res, err := app.RunContext(ctx)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, FarmizeRow{
			Variant:        v.name,
			PeakThroughput: res.Throughput.Max(),
			SteadyMean:     steadyMean(res.Throughput, 0.5),
			Completed:      res.Completed,
			FarmWorkers:    res.Workers.Max(),
		})
		out.Logs[v.name] = log
	}
	if opts.Out != nil {
		writeFarmize(opts.Out, out)
	}
	return out, nil
}

// steadyMean averages the last (1-fromFraction) of a series — the steady
// state after the autonomic ramp-up.
func steadyMean(s *metrics.Series, fromFraction float64) float64 {
	pts := s.Points()
	if len(pts) == 0 {
		return 0
	}
	start := int(float64(len(pts)) * fromFraction)
	if start >= len(pts) {
		start = len(pts) - 1
	}
	sum, n := 0.0, 0
	for _, p := range pts[start:] {
		sum += p.V
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func writeFarmize(w io.Writer, res *FarmizeResult) {
	header(w, "EXT-FARMIZE — §4.2 outlook: transforming a pipeline stage into a farm")
	fmt.Fprintf(w, "%-28s %10s %12s %12s %10s\n",
		"variant", "completed", "peak tp", "steady tp", "workers")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-28s %10d %12.3f %12.3f %10.0f\n",
			r.Variant, r.Completed, r.PeakThroughput, r.SteadyMean, r.FarmWorkers)
	}
	fmt.Fprintln(w, "\nexpected shape: the sequential consumer caps steady throughput near 0.25")
	fmt.Fprintln(w, "(below the 0.3 contract bound); the farmized variant clears the bound.")
}

package component

import (
	"errors"
	"testing"
)

func TestLifecycleStateMachine(t *testing.T) {
	lc := NewLifecycle(nil, nil)
	if lc.State() != Stopped {
		t.Fatalf("initial state = %v", lc.State())
	}
	if err := lc.Start(); err != nil {
		t.Fatal(err)
	}
	if lc.State() != Started {
		t.Fatalf("state after start = %v", lc.State())
	}
	if err := lc.Start(); !errors.Is(err, ErrAlreadyStarted) {
		t.Fatalf("double start err = %v", err)
	}
	if err := lc.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := lc.Stop(); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("double stop err = %v", err)
	}
}

func TestLifecycleHooks(t *testing.T) {
	var log []string
	lc := NewLifecycle(
		func() error { log = append(log, "start"); return nil },
		func() error { log = append(log, "stop"); return nil },
	)
	lc.Start()
	lc.Stop()
	if len(log) != 2 || log[0] != "start" || log[1] != "stop" {
		t.Fatalf("log = %v", log)
	}
}

func TestLifecycleHookFailureKeepsState(t *testing.T) {
	boom := errors.New("boom")
	lc := NewLifecycle(func() error { return boom }, nil)
	if err := lc.Start(); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if lc.State() != Stopped {
		t.Fatal("failed start must leave the component stopped")
	}
}

func TestLifecycleStateString(t *testing.T) {
	if Stopped.String() != "STOPPED" || Started.String() != "STARTED" {
		t.Fatal("state strings wrong")
	}
}

func TestContentController(t *testing.T) {
	cc := NewContent()
	w1 := NewBase("w1", nil)
	w2 := NewBase("w2", nil)
	if err := cc.AddChild(w1); err != nil {
		t.Fatal(err)
	}
	if err := cc.AddChild(w2); err != nil {
		t.Fatal(err)
	}
	if err := cc.AddChild(NewBase("w1", nil)); err == nil {
		t.Fatal("duplicate child accepted")
	}
	if err := cc.AddChild(nil); err == nil {
		t.Fatal("nil child accepted")
	}
	kids := cc.Children()
	if len(kids) != 2 || kids[0].Name() != "w1" || kids[1].Name() != "w2" {
		t.Fatalf("children = %v", kids)
	}
	if _, ok := cc.Child("w2"); !ok {
		t.Fatal("Child lookup failed")
	}
	if err := cc.RemoveChild("w1"); err != nil {
		t.Fatal(err)
	}
	if err := cc.RemoveChild("w1"); err == nil {
		t.Fatal("double remove accepted")
	}
	if kids := cc.Children(); len(kids) != 1 || kids[0].Name() != "w2" {
		t.Fatalf("children after remove = %v", kids)
	}
}

func TestBindingController(t *testing.T) {
	bc := NewBinding()
	if err := bc.Bind("out", "targetA"); err != nil {
		t.Fatal(err)
	}
	if err := bc.Bind("out", "targetB"); err != nil {
		t.Fatal("rebinding must be allowed:", err)
	}
	if got, ok := bc.Lookup("out"); !ok || got != "targetB" {
		t.Fatalf("Lookup = %v, %v", got, ok)
	}
	if err := bc.Bind("x", nil); err == nil {
		t.Fatal("nil target accepted")
	}
	bc.Bind("alpha", 1)
	names := bc.Bindings()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "out" {
		t.Fatalf("Bindings = %v", names)
	}
	if err := bc.Unbind("out"); err != nil {
		t.Fatal(err)
	}
	if err := bc.Unbind("out"); err == nil {
		t.Fatal("double unbind accepted")
	}
}

func TestMembraneNFInterfaces(t *testing.T) {
	m := NewMembrane(nil, nil, nil)
	m.SetNF("manager", "AM")
	m.SetNF("abc", "ABC")
	if v, ok := m.NF("manager"); !ok || v != "AM" {
		t.Fatalf("NF = %v, %v", v, ok)
	}
	if _, ok := m.NF("missing"); ok {
		t.Fatal("missing NF found")
	}
	names := m.NFNames()
	if len(names) != 2 || names[0] != "abc" || names[1] != "manager" {
		t.Fatalf("NFNames = %v", names)
	}
}

func TestCompositeLifecycleCascades(t *testing.T) {
	root := NewComposite("farm")
	w1 := NewBase("w1", nil)
	w2 := NewBase("w2", nil)
	root.Membrane().Content().AddChild(w1)
	root.Membrane().Content().AddChild(w2)
	if err := root.Membrane().Lifecycle().Start(); err != nil {
		t.Fatal(err)
	}
	for _, w := range []*Base{w1, w2} {
		if w.Membrane().Lifecycle().State() != Started {
			t.Fatalf("child %s not started", w.Name())
		}
	}
	if err := root.Membrane().Lifecycle().Stop(); err != nil {
		t.Fatal(err)
	}
	for _, w := range []*Base{w1, w2} {
		if w.Membrane().Lifecycle().State() != Stopped {
			t.Fatalf("child %s not stopped", w.Name())
		}
	}
}

func TestCompositeStartFailurePropagates(t *testing.T) {
	root := NewComposite("pipe")
	boom := errors.New("boom")
	bad := NewBase("bad", NewMembrane(NewLifecycle(func() error { return boom }, nil), nil, nil))
	root.Membrane().Content().AddChild(bad)
	if err := root.Membrane().Lifecycle().Start(); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if root.Membrane().Lifecycle().State() != Stopped {
		t.Fatal("composite must stay stopped after child failure")
	}
}

func TestCompositeNested(t *testing.T) {
	// farm(pipeline(seq, seq)) — the shapes of Fig. 2 right.
	farm := NewComposite("farm")
	pipe := NewComposite("pipeline")
	s1 := NewBase("s1", nil)
	s2 := NewBase("s2", nil)
	pipe.Membrane().Content().AddChild(s1)
	pipe.Membrane().Content().AddChild(s2)
	farm.Membrane().Content().AddChild(pipe)
	if err := farm.Membrane().Lifecycle().Start(); err != nil {
		t.Fatal(err)
	}
	if s1.Membrane().Lifecycle().State() != Started {
		t.Fatal("nested start did not cascade two levels")
	}
	var names []string
	Visit(farm, func(c Component) { names = append(names, c.Name()) })
	want := []string{"farm", "pipeline", "s1", "s2"}
	if len(names) != len(want) {
		t.Fatalf("Visit order = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Visit order = %v, want %v", names, want)
		}
	}
}

func TestBaseDefaults(t *testing.T) {
	b := NewBase("x", nil)
	if b.Name() != "x" || b.Membrane() == nil {
		t.Fatal("Base defaults broken")
	}
	if b.Membrane().Lifecycle() == nil || b.Membrane().Content() == nil || b.Membrane().Binding() == nil {
		t.Fatal("default membrane missing controllers")
	}
}

// Package component implements the Fractal/GCM component model the paper's
// behavioural skeletons are built from: components with a membrane hosting
// non-functional controllers — Lifecycle, Content and Binding controllers,
// exactly the set the Autonomic Behaviour Controller of Fig. 2 is layered
// on — plus arbitrary named non-functional (server) interfaces such as the
// manager's contract and violation-callback ports.
package component

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// LifecycleState is the state of a component's lifecycle controller.
type LifecycleState int

// Lifecycle states.
const (
	Stopped LifecycleState = iota
	Started
)

// String implements fmt.Stringer.
func (s LifecycleState) String() string {
	if s == Started {
		return "STARTED"
	}
	return "STOPPED"
}

// Lifecycle errors.
var (
	ErrAlreadyStarted = errors.New("component: already started")
	ErrNotStarted     = errors.New("component: not started")
	ErrRunning        = errors.New("component: operation requires a stopped component")
)

// LifecycleController is the Fractal LifeCycleController.
type LifecycleController interface {
	Start() error
	Stop() error
	State() LifecycleState
}

// ContentController is the Fractal ContentController: management of the
// subcomponents of a composite (the farm manager uses it to add and remove
// workers).
type ContentController interface {
	AddChild(c Component) error
	RemoveChild(name string) error
	Child(name string) (Component, bool)
	Children() []Component
}

// BindingController is the Fractal BindingController: named client
// interfaces bound to server objects (the security manager rebinds worker
// connections onto secure codecs through it).
type BindingController interface {
	Bind(itf string, target any) error
	Unbind(itf string) error
	Lookup(itf string) (any, bool)
	Bindings() []string
}

// Component is a GCM component: a name plus a membrane of non-functional
// controllers and interfaces.
type Component interface {
	Name() string
	Membrane() *Membrane
}

// Membrane hosts a component's non-functional side: its standard
// controllers and any additional named NF interfaces (e.g. the autonomic
// manager itself, which the paper describes as a membrane component).
type Membrane struct {
	lc LifecycleController
	cc ContentController
	bc BindingController

	mu  sync.Mutex
	nfs map[string]any
}

// NewMembrane assembles a membrane. Nil controllers are replaced by the
// basic implementations of this package.
func NewMembrane(lc LifecycleController, cc ContentController, bc BindingController) *Membrane {
	if lc == nil {
		lc = NewLifecycle(nil, nil)
	}
	if cc == nil {
		cc = NewContent()
	}
	if bc == nil {
		bc = NewBinding()
	}
	return &Membrane{lc: lc, cc: cc, bc: bc, nfs: map[string]any{}}
}

// Lifecycle returns the lifecycle controller.
func (m *Membrane) Lifecycle() LifecycleController { return m.lc }

// Content returns the content controller.
func (m *Membrane) Content() ContentController { return m.cc }

// Binding returns the binding controller.
func (m *Membrane) Binding() BindingController { return m.bc }

// SetNF installs a named non-functional interface.
func (m *Membrane) SetNF(name string, itf any) {
	m.mu.Lock()
	m.nfs[name] = itf
	m.mu.Unlock()
}

// NF looks up a named non-functional interface.
func (m *Membrane) NF(name string) (any, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	itf, ok := m.nfs[name]
	return itf, ok
}

// NFNames returns the installed NF interface names, sorted.
func (m *Membrane) NFNames() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.nfs))
	for n := range m.nfs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Lifecycle is the basic LifecycleController: a two-state machine with
// optional start/stop hooks.
type Lifecycle struct {
	mu      sync.Mutex
	state   LifecycleState
	onStart func() error
	onStop  func() error
}

// NewLifecycle returns a stopped lifecycle controller with the given hooks
// (either may be nil).
func NewLifecycle(onStart, onStop func() error) *Lifecycle {
	return &Lifecycle{onStart: onStart, onStop: onStop}
}

// Start implements LifecycleController.
func (l *Lifecycle) Start() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.state == Started {
		return ErrAlreadyStarted
	}
	if l.onStart != nil {
		if err := l.onStart(); err != nil {
			return err
		}
	}
	l.state = Started
	return nil
}

// Stop implements LifecycleController.
func (l *Lifecycle) Stop() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.state == Stopped {
		return ErrNotStarted
	}
	if l.onStop != nil {
		if err := l.onStop(); err != nil {
			return err
		}
	}
	l.state = Stopped
	return nil
}

// State implements LifecycleController.
func (l *Lifecycle) State() LifecycleState {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.state
}

// Content is the basic ContentController.
type Content struct {
	mu       sync.Mutex
	children map[string]Component
	order    []string
}

// NewContent returns an empty content controller.
func NewContent() *Content {
	return &Content{children: map[string]Component{}}
}

// AddChild implements ContentController. Child names must be unique within
// the composite.
func (c *Content) AddChild(child Component) error {
	if child == nil {
		return errors.New("component: nil child")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	name := child.Name()
	if _, dup := c.children[name]; dup {
		return fmt.Errorf("component: duplicate child %q", name)
	}
	c.children[name] = child
	c.order = append(c.order, name)
	return nil
}

// RemoveChild implements ContentController.
func (c *Content) RemoveChild(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.children[name]; !ok {
		return fmt.Errorf("component: no child %q", name)
	}
	delete(c.children, name)
	for i, n := range c.order {
		if n == name {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	return nil
}

// Child implements ContentController.
func (c *Content) Child(name string) (Component, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	child, ok := c.children[name]
	return child, ok
}

// Children implements ContentController, in insertion order.
func (c *Content) Children() []Component {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Component, 0, len(c.order))
	for _, n := range c.order {
		out = append(out, c.children[n])
	}
	return out
}

// Binding is the basic BindingController.
type Binding struct {
	mu       sync.Mutex
	bindings map[string]any
}

// NewBinding returns an empty binding controller.
func NewBinding() *Binding {
	return &Binding{bindings: map[string]any{}}
}

// Bind implements BindingController. Rebinding an already bound interface
// replaces the target (this is how bindings are switched onto secure
// codecs at run time).
func (b *Binding) Bind(itf string, target any) error {
	if target == nil {
		return fmt.Errorf("component: nil binding target for %q", itf)
	}
	b.mu.Lock()
	b.bindings[itf] = target
	b.mu.Unlock()
	return nil
}

// Unbind implements BindingController.
func (b *Binding) Unbind(itf string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.bindings[itf]; !ok {
		return fmt.Errorf("component: interface %q is not bound", itf)
	}
	delete(b.bindings, itf)
	return nil
}

// Lookup implements BindingController.
func (b *Binding) Lookup(itf string) (any, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.bindings[itf]
	return t, ok
}

// Bindings implements BindingController, sorted by interface name.
func (b *Binding) Bindings() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.bindings))
	for n := range b.bindings {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Base is a ready-to-embed Component implementation.
type Base struct {
	name     string
	membrane *Membrane
}

// NewBase returns a component with the given name and membrane (nil gets a
// default membrane).
func NewBase(name string, m *Membrane) *Base {
	if m == nil {
		m = NewMembrane(nil, nil, nil)
	}
	return &Base{name: name, membrane: m}
}

// Name implements Component.
func (b *Base) Name() string { return b.name }

// Membrane implements Component.
func (b *Base) Membrane() *Membrane { return b.membrane }

// Composite is a component whose lifecycle cascades over its children, as
// GCM composite components do: Start starts children first (bottom-up),
// Stop stops the composite first (top-down).
type Composite struct {
	*Base
}

// NewComposite builds a composite with a content controller and a cascading
// lifecycle.
func NewComposite(name string) *Composite {
	content := NewContent()
	comp := &Composite{}
	lc := NewLifecycle(
		func() error {
			for _, child := range content.Children() {
				st := child.Membrane().Lifecycle()
				if st.State() == Stopped {
					if err := st.Start(); err != nil {
						return fmt.Errorf("starting child %q: %w", child.Name(), err)
					}
				}
			}
			return nil
		},
		func() error {
			children := content.Children()
			for i := len(children) - 1; i >= 0; i-- {
				st := children[i].Membrane().Lifecycle()
				if st.State() == Started {
					if err := st.Stop(); err != nil {
						return fmt.Errorf("stopping child %q: %w", children[i].Name(), err)
					}
				}
			}
			return nil
		},
	)
	comp.Base = NewBase(name, NewMembrane(lc, content, NewBinding()))
	return comp
}

// Visit walks the component tree rooted at c in depth-first pre-order.
func Visit(c Component, f func(Component)) {
	f(c)
	for _, child := range c.Membrane().Content().Children() {
		Visit(child, f)
	}
}

package trace

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/runtime/leaktest"
)

// --- bounded ring + eviction counter -------------------------------------

func TestBoundedLogEvictsOldest(t *testing.T) {
	l := NewBoundedLog(3)
	for i := 0; i < 5; i++ {
		l.Record(epoch.Add(time.Duration(i)*time.Second), "AM_F", ContrLow, fmt.Sprintf("e%d", i))
	}
	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	for i, e := range evs {
		if want := fmt.Sprintf("e%d", i+2); e.Detail != want {
			t.Errorf("event %d = %q, want %q (oldest must be evicted, order kept)", i, e.Detail, want)
		}
	}
	if got := l.Evicted(); got != 2 {
		t.Errorf("Evicted = %d, want 2", got)
	}
	// Cumulative counts survive eviction.
	if got := l.KindCounts()[EventCountKey{Source: "AM_F", Kind: ContrLow}]; got != 5 {
		t.Errorf("KindCounts = %d, want 5", got)
	}
	// Live-event Count only sees the retained window.
	if got := l.Count("AM_F", ContrLow); got != 3 {
		t.Errorf("Count = %d, want 3", got)
	}
}

func TestSetLimitTrimsExisting(t *testing.T) {
	l := NewLog()
	for i := 0; i < 6; i++ {
		l.Record(epoch.Add(time.Duration(i)*time.Second), "AM_F", ContrLow, fmt.Sprintf("e%d", i))
	}
	l.SetLimit(2)
	evs := l.Events()
	if len(evs) != 2 || evs[0].Detail != "e4" || evs[1].Detail != "e5" {
		t.Fatalf("after SetLimit(2): %v", evs)
	}
	if got := l.Evicted(); got != 4 {
		t.Fatalf("Evicted = %d, want 4", got)
	}
	// Unbounding again keeps appending without a ring.
	l.SetLimit(0)
	l.Record(epoch.Add(10*time.Second), "AM_F", AddWorker, "e6")
	if got := l.Len(); got != 3 {
		t.Fatalf("Len after unbound = %d, want 3", got)
	}
}

func TestUnsubscribeRemovesAndCloses(t *testing.T) {
	defer leaktest.Check(t)()
	l := NewLog()
	ch := l.Subscribe(1)
	done := make(chan int)
	go func() {
		n := 0
		for range ch {
			n++
		}
		done <- n
	}()
	l.Record(epoch, "AM_F", ContrLow, "")
	l.Unsubscribe(ch)
	if n := <-done; n != 1 {
		t.Fatalf("consumer saw %d events, want 1", n)
	}
	// Events after Unsubscribe must not panic (send on closed channel).
	l.Record(epoch.Add(time.Second), "AM_F", ContrLow, "")
	// Unknown channel is a no-op.
	l.Unsubscribe(make(chan Event))
}

// --- fmtClock hour wrap ---------------------------------------------------

func TestTimelineHourBoundary(t *testing.T) {
	l := NewLog()
	before := time.Date(2009, 5, 25, 10, 59, 30, 0, time.UTC)
	after := time.Date(2009, 5, 25, 11, 0, 30, 0, time.UTC)
	l.Record(before, "AM_F", ContrLow, "")
	l.Record(after, "AM_F", AddWorker, "")
	out := l.Timeline()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("timeline: %q", out)
	}
	if !strings.HasPrefix(lines[0], "10:59:30") {
		t.Errorf("line 0 = %q, want h:mm:ss prefix 10:59:30", lines[0])
	}
	if !strings.HasPrefix(lines[1], "11:00:30") {
		t.Errorf("line 1 = %q, want h:mm:ss prefix 11:00:30", lines[1])
	}
	// Clocks must be monotone in the rendered order (the old mm:ss form
	// showed 59:30 followed by 00:30).
	if lines[0][:8] > lines[1][:8] {
		t.Errorf("clock goes backwards: %q then %q", lines[0][:8], lines[1][:8])
	}
}

func TestTimelineWithinHourKeepsShortClock(t *testing.T) {
	out := sampleLog().Timeline()
	if !strings.HasPrefix(out, "35:00") {
		t.Fatalf("timeline within the hour should keep mm:ss: %q", out)
	}
}

// --- RenderSeries auto-scale ---------------------------------------------

func TestRenderSeriesAutoScaleAllPositive(t *testing.T) {
	s := metrics.NewSeries("tp")
	for i := 0; i <= 10; i++ {
		s.Append(epoch.Add(time.Duration(i)*time.Second), 100+float64(i))
	}
	out := RenderSeries(PlotOptions{Width: 40, Height: 8}, s)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// First canvas row carries the y max label, last canvas row the y min.
	var top, bottom float64
	if _, err := fmt.Sscanf(lines[0], "%f", &top); err != nil {
		t.Fatalf("no y label in %q", lines[0])
	}
	if _, err := fmt.Sscanf(lines[7], "%f", &bottom); err != nil {
		t.Fatalf("no y label in %q", lines[7])
	}
	// The axis must hug [100, 110] (±5% padding), not start at 0.
	if bottom < 99 || bottom > 101 {
		t.Errorf("y min = %g, want ~100 (auto-scale must track the data min, not 0)", bottom)
	}
	if top < 109 || top > 111 {
		t.Errorf("y max = %g, want ~110", top)
	}
}

func TestRenderSeriesHourBoundaryAxis(t *testing.T) {
	s := metrics.NewSeries("tp")
	s.Append(time.Date(2009, 5, 25, 10, 59, 0, 0, time.UTC), 1)
	s.Append(time.Date(2009, 5, 25, 11, 1, 0, 0, time.UTC), 2)
	out := RenderSeries(PlotOptions{Width: 40, Height: 4}, s)
	if !strings.Contains(out, "10:59:00") || !strings.Contains(out, "11:01:00") {
		t.Fatalf("axis should use h:mm:ss across an hour boundary:\n%s", out)
	}
}

// --- EventStrip edge columns ---------------------------------------------

func TestEventStripEdgeColumns(t *testing.T) {
	l := NewLog()
	start := epoch
	l.Record(start.Add(-5*time.Second), "AM_F", ContrLow, "")  // before start: dropped
	l.Record(start, "AM_F", AddWorker, "")                     // col 0
	l.Record(start.Add(9*time.Second), "AM_F", AddWorker, "")  // col 9 (last)
	l.Record(start.Add(10*time.Second), "AM_F", AddWorker, "") // beyond width: dropped
	out := l.EventStrip("AM_F", start, 10, time.Second)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var contr, add string
	for _, ln := range lines {
		switch {
		case strings.Contains(ln, string(ContrLow)):
			contr = ln
		case strings.Contains(ln, string(AddWorker)):
			add = ln
		}
	}
	if contr == "" || add == "" {
		t.Fatalf("missing rows in strip:\n%s", out)
	}
	if strings.Contains(contr, "x") {
		t.Errorf("event before start leaked into the strip: %q", contr)
	}
	cells := add[strings.Index(add, "|")+1 : strings.LastIndex(add, "|")]
	if len(cells) != 10 {
		t.Fatalf("row has %d columns, want 10: %q", len(cells), add)
	}
	if cells[0] != 'x' || cells[9] != 'x' {
		t.Errorf("cols 0 and 9 should be hit: %q", cells)
	}
	if strings.Count(cells, "x") != 2 {
		t.Errorf("event beyond the width leaked in: %q", cells)
	}
	if EventStripInvalid := l.EventStrip("AM_F", start, 0, time.Second); EventStripInvalid != "" {
		t.Errorf("zero width should render nothing")
	}
}

// --- WriteSeriesCSV t0 selection and scaling -----------------------------

func TestWriteSeriesCSVTZeroAcrossSeries(t *testing.T) {
	a := metrics.NewSeries("a")
	b := metrics.NewSeries("b")
	// b starts earlier than a: t0 must come from b.
	a.Append(epoch.Add(4*time.Second), 1)
	b.Append(epoch.Add(2*time.Second), 2)
	b.Append(epoch.Add(6*time.Second), 3)
	var buf bytes.Buffer
	// scale 200: clock seconds are modelled seconds / 200.
	if err := WriteSeriesCSV(&buf, 200, a, b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	want := []string{
		"series,seconds,value",
		"a,400.000,1", // (4s-2s) * 200
		"b,0.000,2",
		"b,800.000,3",
	}
	if len(lines) != len(want) {
		t.Fatalf("csv:\n%s", buf.String())
	}
	for i, w := range want {
		if lines[i] != w {
			t.Errorf("line %d = %q, want %q", i, lines[i], w)
		}
	}
}

func TestWriteSeriesCSVNonPositiveScale(t *testing.T) {
	s := metrics.NewSeries("a")
	s.Append(epoch, 1)
	s.Append(epoch.Add(3*time.Second), 2)
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, 0, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "a,3.000,2") {
		t.Fatalf("scale 0 should fall back to 1:\n%s", buf.String())
	}
}

// --- KindSequence multi-source collapse ----------------------------------

func TestKindSequenceAllSources(t *testing.T) {
	l := NewLog()
	l.Record(epoch, "AM_F", ContrLow, "")
	l.Record(epoch.Add(time.Second), "AM_A", ContrLow, "") // same kind, other source: still collapsed
	l.Record(epoch.Add(2*time.Second), "AM_F", AddWorker, "")
	l.Record(epoch.Add(3*time.Second), "AM_F", AddWorker, "")
	got := l.KindSequence("")
	want := []Kind{ContrLow, AddWorker}
	if len(got) != len(want) {
		t.Fatalf("KindSequence = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("KindSequence = %v, want %v", got, want)
		}
	}
}

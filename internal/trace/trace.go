// Package trace records the autonomic events that the paper plots in its
// evaluation figures (contrLow, notEnough, raiseViol, incRate, decRate,
// addWorker, rebalance, endStream, ...) and renders event timelines and
// value series as ASCII charts comparable, in shape, with Figs. 3 and 4.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Kind identifies a class of autonomic event. The names follow the labels
// used in Fig. 4 of the paper.
type Kind string

// Event kinds observed by the managers of the paper's experiments.
const (
	ContrLow    Kind = "contrLow"    // measured throughput below contract
	ContrHigh   Kind = "contrHigh"   // measured throughput above contract
	NotEnough   Kind = "notEnough"   // input pressure insufficient to feed workers
	TooMuch     Kind = "tooMuch"     // input pressure above what the contract needs
	RaiseViol   Kind = "raiseViol"   // violation reported to the parent manager
	IncRate     Kind = "incRate"     // new contract: increase producer output rate
	DecRate     Kind = "decRate"     // new contract: decrease producer output rate
	AddWorker   Kind = "addWorker"   // farm parallelism degree increased
	RemWorker   Kind = "remWorker"   // farm parallelism degree decreased
	Rebalance   Kind = "rebalance"   // queued input redistributed among workers
	EndStream   Kind = "endStream"   // input stream exhausted
	NewContr    Kind = "newContract" // a (sub-)contract was installed
	EnterPass   Kind = "enterPassive"
	EnterActive Kind = "enterActive"
	Intent      Kind = "intent"   // two-phase protocol: intention declared
	Prepared    Kind = "prepared" // two-phase protocol: co-manager prepared
	Committed   Kind = "committed"
	Aborted     Kind = "aborted"
	Secured     Kind = "secured"     // binding switched to the secure codec
	WorkerFail  Kind = "workerFail"  // a worker crash was detected
	Recovered   Kind = "recovered"   // stranded tasks redistributed after a crash
	Migrated    Kind = "migrated"    // worker moved to a faster/less loaded node
	ErrsDropped Kind = "errsDropped" // runtime errors lost to a full error buffer
	Quarantine  Kind = "quarantine"  // node circuit breaker tripped after repeated crashes
	Crashed     Kind = "crashed"     // a management loop died (injected fault or panic)
	Restarted   Kind = "restarted"   // the supervisor relaunched a dead management loop
	Restored    Kind = "restored"    // manager state replayed from its checkpoint
	Reissued    Kind = "reissued"    // two-phase intent re-issued after participant recovery
	ViolDropped Kind = "violDropped" // a buffered violation was evicted, its cause lost
	LinkSuspect Kind = "linkSuspect" // manager link missed a heartbeat, lease still live
	LinkDown    Kind = "linkDown"    // manager link lease expired: partitioned
	LinkUp      Kind = "linkUp"      // manager link (re)attached after a partition
	CatchUp     Kind = "catchUp"     // MAPE cycles re-run to cover a partition window
)

// Event is one timestamped autonomic event emitted by a manager.
type Event struct {
	T      time.Time
	Source string // manager name, e.g. "AM_F"
	Kind   Kind
	Detail string // free-form detail, e.g. "workers 3->5"
}

// String renders the event as "mm:ss source kind detail".
func (e Event) String() string { return e.stringClock(false) }

// stringClock renders the event with either the short (mm:ss) or the long
// (h:mm:ss) clock; Timeline picks the long one for runs spanning an hour
// boundary.
func (e Event) stringClock(long bool) string {
	clock := fmtClock(e.T)
	if long {
		clock = fmtClockLong(e.T)
	}
	s := fmt.Sprintf("%s %-6s %-12s", clock, e.Source, e.Kind)
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return strings.TrimRight(s, " ")
}

// EventCountKey identifies one (source, kind) pair in KindCounts.
type EventCountKey struct {
	Source string
	Kind   Kind
}

// Log is a concurrency-safe event log shared by a hierarchy of managers.
// It is unbounded by default; SetLimit turns it into a ring that evicts
// the oldest events, so long-running servers hold a window rather than
// the whole history. Cumulative per-(source, kind) counts survive
// eviction (they back the /metrics event counters).
type Log struct {
	mu      sync.Mutex
	events  []Event
	head    int // ring start when len(events) == limit
	limit   int // 0 = unbounded
	evicted uint64
	counts  map[EventCountKey]uint64
	subs    []chan Event
}

// NewLog returns an empty, unbounded log.
func NewLog() *Log { return &Log{} }

// NewBoundedLog returns a log keeping only the newest max events.
func NewBoundedLog(max int) *Log {
	l := NewLog()
	l.SetLimit(max)
	return l
}

// Add appends an event, evicting the oldest one when the log is bounded
// and full.
func (l *Log) Add(e Event) {
	l.mu.Lock()
	if l.counts == nil {
		l.counts = map[EventCountKey]uint64{}
	}
	l.counts[EventCountKey{Source: e.Source, Kind: e.Kind}]++
	if l.limit > 0 && len(l.events) == l.limit {
		l.events[l.head] = e
		l.head = (l.head + 1) % l.limit
		l.evicted++
	} else {
		l.events = append(l.events, e)
	}
	// Delivery stays under the mutex so Unsubscribe can never race a send
	// on a closed channel; sends are non-blocking either way.
	for _, ch := range l.subs {
		select {
		case ch <- e:
		default: // slow subscribers drop events rather than stall managers
		}
	}
	l.mu.Unlock()
}

// SetLimit bounds the log to the newest max events (0 removes the bound).
// Events beyond the new bound are evicted immediately.
func (l *Log) SetLimit(max int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ordered := l.orderedLocked()
	if max > 0 && len(ordered) > max {
		l.evicted += uint64(len(ordered) - max)
		ordered = append([]Event(nil), ordered[len(ordered)-max:]...)
	}
	l.events = ordered
	l.head = 0
	l.limit = max
}

// Evicted returns how many events the bound has dropped so far.
func (l *Log) Evicted() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.evicted
}

// KindCounts returns the cumulative event counts per (source, kind),
// including events already evicted from a bounded log.
func (l *Log) KindCounts() map[EventCountKey]uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[EventCountKey]uint64, len(l.counts))
	for k, v := range l.counts {
		out[k] = v
	}
	return out
}

// orderedLocked linearizes the (possibly wrapped) ring. Caller holds mu.
func (l *Log) orderedLocked() []Event {
	out := make([]Event, len(l.events))
	if l.head > 0 {
		n := copy(out, l.events[l.head:])
		copy(out[n:], l.events[:l.head])
	} else {
		copy(out, l.events)
	}
	return out
}

// Record is a convenience wrapper building the Event in place.
func (l *Log) Record(t time.Time, source string, kind Kind, detail string) {
	l.Add(Event{T: t, Source: source, Kind: kind, Detail: detail})
}

// Events returns a copy of all retained events in append order.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.orderedLocked()
}

// Len returns the number of recorded events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Subscribe returns a channel receiving future events. Subscribers that do
// not keep up lose events (the managers must never block on tracing).
// Release the channel with Unsubscribe when done.
func (l *Log) Subscribe(buf int) <-chan Event {
	if buf <= 0 {
		buf = 64
	}
	ch := make(chan Event, buf)
	l.mu.Lock()
	l.subs = append(l.subs, ch)
	l.mu.Unlock()
	return ch
}

// Unsubscribe removes a channel returned by Subscribe and closes it, so
// ranging consumers terminate and the log does not accumulate dead
// subscribers. Unknown channels are ignored.
func (l *Log) Unsubscribe(ch <-chan Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, s := range l.subs {
		if (<-chan Event)(s) == ch {
			l.subs = append(l.subs[:i], l.subs[i+1:]...)
			close(s)
			return
		}
	}
}

// BySource returns the events emitted by the named source, in order.
func (l *Log) BySource(source string) []Event {
	var out []Event
	for _, e := range l.Events() {
		if e.Source == source {
			out = append(out, e)
		}
	}
	return out
}

// ByKind returns the events of the given kind, in order.
func (l *Log) ByKind(kind Kind) []Event {
	var out []Event
	for _, e := range l.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Count returns how many events of the given kind were emitted by source
// (empty source matches all sources).
func (l *Log) Count(source string, kind Kind) int {
	n := 0
	for _, e := range l.Events() {
		if e.Kind == kind && (source == "" || e.Source == source) {
			n++
		}
	}
	return n
}

// FirstOf returns the first event of the given kind from source and true,
// or a zero event and false.
func (l *Log) FirstOf(source string, kind Kind) (Event, bool) {
	for _, e := range l.Events() {
		if e.Kind == kind && (source == "" || e.Source == source) {
			return e, true
		}
	}
	return Event{}, false
}

// KindSequence returns the ordered kinds of all events from source,
// collapsing immediate repetitions (aaabbbca -> abca). It is the tool used
// by the experiment assertions to compare against the Fig. 4 narrative.
func (l *Log) KindSequence(source string) []Kind {
	var out []Kind
	for _, e := range l.Events() {
		if source != "" && e.Source != source {
			continue
		}
		if n := len(out); n == 0 || out[n-1] != e.Kind {
			out = append(out, e.Kind)
		}
	}
	return out
}

// fmtClock renders t as mm:ss within its hour, like the x axes of Fig. 4.
func fmtClock(t time.Time) string {
	return fmt.Sprintf("%02d:%02d", t.Minute(), t.Second())
}

// fmtClockLong renders t as h:mm:ss, used when a span crosses an hour
// boundary (where mm:ss would appear to run backwards).
func fmtClockLong(t time.Time) string {
	h, m, s := t.Clock()
	return fmt.Sprintf("%d:%02d:%02d", h, m, s)
}

// spansHour reports whether [min, max] crosses an hour boundary.
func spansHour(min, max time.Time) bool {
	return !min.Truncate(time.Hour).Equal(max.Truncate(time.Hour))
}

// Timeline renders the log as one line per event, ordered by time. Runs
// crossing an hour boundary use the h:mm:ss clock throughout.
func (l *Log) Timeline() string {
	evs := l.Events()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].T.Before(evs[j].T) })
	long := len(evs) > 1 && spansHour(evs[0].T, evs[len(evs)-1].T)
	var b strings.Builder
	for _, e := range evs {
		b.WriteString(e.stringClock(long))
		b.WriteByte('\n')
	}
	return b.String()
}

// EventStrip renders, for one source, a compact strip with one row per
// event kind and one column per time bucket — the ASCII analogue of the
// event graphs in Fig. 4.
func (l *Log) EventStrip(source string, start time.Time, width int, bucket time.Duration) string {
	if width <= 0 || bucket <= 0 {
		return ""
	}
	evs := l.BySource(source)
	rows := map[Kind][]bool{}
	var kinds []Kind
	for _, e := range evs {
		if _, ok := rows[e.Kind]; !ok {
			rows[e.Kind] = make([]bool, width)
			kinds = append(kinds, e.Kind)
		}
		col := int(e.T.Sub(start) / bucket)
		if col >= 0 && col < width {
			rows[e.Kind][col] = true
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "events of %s (one column = %v)\n", source, bucket)
	for _, k := range kinds {
		fmt.Fprintf(&b, "%12s |", k)
		for _, hit := range rows[k] {
			if hit {
				b.WriteByte('x')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// WriteSeriesCSV emits the series in long form — one "series,seconds,value"
// row per sample, seconds measured from the earliest sample across all
// series — so runs can be re-plotted with external tooling. scale converts
// clock time back into modelled seconds (pass 1 for wall-clock units).
func WriteSeriesCSV(w io.Writer, scale float64, series ...*metrics.Series) error {
	if scale <= 0 {
		scale = 1
	}
	var t0 time.Time
	have := false
	for _, s := range series {
		for _, p := range s.Points() {
			if !have || p.T.Before(t0) {
				t0, have = p.T, true
			}
		}
	}
	if _, err := fmt.Fprintln(w, "series,seconds,value"); err != nil {
		return err
	}
	for _, s := range series {
		for _, p := range s.Points() {
			secs := p.T.Sub(t0).Seconds() * scale
			if _, err := fmt.Fprintf(w, "%s,%.3f,%g\n", s.Name(), secs, p.V); err != nil {
				return err
			}
		}
	}
	return nil
}

// PlotOptions configures RenderSeries.
type PlotOptions struct {
	Width  int     // plot columns (default 72)
	Height int     // plot rows (default 12)
	YMin   float64 // lower bound; if YMin==YMax bounds are auto-scaled
	YMax   float64
	Bands  []float64 // horizontal guide lines (e.g. contract bounds)
}

// RenderSeries draws one or more series on a shared ASCII canvas. Each
// series is drawn with its own glyph ('*', '+', 'o', ...). It is used by
// the experiment binaries to print Fig. 3/4-shaped charts.
func RenderSeries(opts PlotOptions, series ...*metrics.Series) string {
	if len(series) == 0 {
		return ""
	}
	w, h := opts.Width, opts.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 12
	}
	var (
		tMin, tMax       time.Time
		yMin, yMax       = opts.YMin, opts.YMax
		dataMin, dataMax float64
		havePoint        bool
	)
	for _, s := range series {
		for _, p := range s.Points() {
			if !havePoint {
				tMin, tMax = p.T, p.T
				dataMin, dataMax = p.V, p.V
				havePoint = true
			}
			if p.T.Before(tMin) {
				tMin = p.T
			}
			if p.T.After(tMax) {
				tMax = p.T
			}
			if p.V < dataMin {
				dataMin = p.V
			}
			if p.V > dataMax {
				dataMax = p.V
			}
		}
	}
	if !havePoint {
		return "(no samples)\n"
	}
	if opts.YMin == opts.YMax {
		// Auto-scale to the true data range (an all-positive series must
		// not be stretched down to a floor of 0).
		yMin, yMax = dataMin, dataMax
		for _, band := range opts.Bands {
			if band < yMin {
				yMin = band
			}
			if band > yMax {
				yMax = band
			}
		}
		if yMin == yMax {
			yMax = yMin + 1
		}
		pad := (yMax - yMin) * 0.05
		yMin, yMax = yMin-pad, yMax+pad
	}
	span := tMax.Sub(tMin)
	if span <= 0 {
		span = time.Second
	}
	canvas := make([][]byte, h)
	for i := range canvas {
		canvas[i] = []byte(strings.Repeat(" ", w))
	}
	row := func(v float64) int {
		r := int((yMax - v) / (yMax - yMin) * float64(h-1))
		if r < 0 {
			r = 0
		}
		if r >= h {
			r = h - 1
		}
		return r
	}
	for _, band := range opts.Bands {
		r := row(band)
		for c := 0; c < w; c++ {
			canvas[r][c] = '-'
		}
	}
	glyphs := []byte{'*', '+', 'o', '#', '@', '%'}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for _, p := range s.Points() {
			c := int(float64(p.T.Sub(tMin)) / float64(span) * float64(w-1))
			canvas[row(p.V)][c] = g
		}
	}
	var b strings.Builder
	for i, line := range canvas {
		v := yMax - (yMax-yMin)*float64(i)/float64(h-1)
		fmt.Fprintf(&b, "%8.2f |%s|\n", v, line)
	}
	fmt.Fprintf(&b, "%8s +%s+\n", "", strings.Repeat("-", w))
	loClock, hiClock := fmtClock(tMin), fmtClock(tMax)
	if spansHour(tMin, tMax) {
		loClock, hiClock = fmtClockLong(tMin), fmtClockLong(tMax)
	}
	fmt.Fprintf(&b, "%8s  %-*s%s\n", "", w-5, loClock, hiClock)
	for si, s := range series {
		fmt.Fprintf(&b, "%8s  %c = %s\n", "", glyphs[si%len(glyphs)], s.Name())
	}
	return b.String()
}

package trace

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

var epoch = time.Date(2009, 5, 25, 10, 35, 0, 0, time.UTC)

func sampleLog() *Log {
	l := NewLog()
	l.Record(epoch, "AM_F", ContrLow, "")
	l.Record(epoch.Add(1*time.Second), "AM_F", NotEnough, "")
	l.Record(epoch.Add(2*time.Second), "AM_F", RaiseViol, "notEnoughTasks")
	l.Record(epoch.Add(3*time.Second), "AM_A", IncRate, "0.2->0.4")
	l.Record(epoch.Add(10*time.Second), "AM_F", AddWorker, "2->4")
	return l
}

func TestLogOrderAndLen(t *testing.T) {
	l := sampleLog()
	if l.Len() != 5 {
		t.Fatalf("Len = %d", l.Len())
	}
	evs := l.Events()
	if evs[0].Kind != ContrLow || evs[4].Kind != AddWorker {
		t.Fatalf("events out of order: %v", evs)
	}
	evs[0].Kind = EndStream
	if l.Events()[0].Kind != ContrLow {
		t.Fatal("Events leaked internal storage")
	}
}

func TestLogBySourceByKind(t *testing.T) {
	l := sampleLog()
	if got := len(l.BySource("AM_F")); got != 4 {
		t.Fatalf("BySource(AM_F) = %d, want 4", got)
	}
	if got := len(l.ByKind(IncRate)); got != 1 {
		t.Fatalf("ByKind(IncRate) = %d, want 1", got)
	}
	if got := l.Count("AM_F", RaiseViol); got != 1 {
		t.Fatalf("Count = %d", got)
	}
	if got := l.Count("", ContrLow); got != 1 {
		t.Fatalf("Count any-source = %d", got)
	}
}

func TestFirstOf(t *testing.T) {
	l := sampleLog()
	e, ok := l.FirstOf("AM_F", RaiseViol)
	if !ok || e.Detail != "notEnoughTasks" {
		t.Fatalf("FirstOf = %+v ok=%v", e, ok)
	}
	if _, ok := l.FirstOf("AM_F", EndStream); ok {
		t.Fatal("FirstOf found nonexistent event")
	}
}

func TestKindSequenceCollapses(t *testing.T) {
	l := NewLog()
	for i := 0; i < 3; i++ {
		l.Record(epoch.Add(time.Duration(i)*time.Second), "AM_F", ContrLow, "")
	}
	l.Record(epoch.Add(4*time.Second), "AM_F", AddWorker, "")
	l.Record(epoch.Add(5*time.Second), "AM_F", ContrLow, "")
	got := l.KindSequence("AM_F")
	want := []Kind{ContrLow, AddWorker, ContrLow}
	if len(got) != len(want) {
		t.Fatalf("KindSequence = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("KindSequence[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSubscribe(t *testing.T) {
	l := NewLog()
	ch := l.Subscribe(4)
	l.Record(epoch, "AM_A", NewContr, "0.3-0.7")
	select {
	case e := <-ch:
		if e.Kind != NewContr {
			t.Fatalf("got %v", e.Kind)
		}
	case <-time.After(time.Second):
		t.Fatal("subscriber never received event")
	}
}

func TestSubscribeSlowSubscriberDoesNotBlock(t *testing.T) {
	l := NewLog()
	l.Subscribe(1) // never drained
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			l.Record(epoch, "AM_A", ContrLow, "")
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Add blocked on a slow subscriber")
	}
}

func TestEventString(t *testing.T) {
	e := Event{T: epoch, Source: "AM_F", Kind: AddWorker, Detail: "2->4"}
	s := e.String()
	for _, frag := range []string{"35:00", "AM_F", "addWorker", "2->4"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String %q missing %q", s, frag)
		}
	}
}

func TestTimelineSorted(t *testing.T) {
	l := NewLog()
	l.Record(epoch.Add(5*time.Second), "AM_A", DecRate, "")
	l.Record(epoch, "AM_A", IncRate, "")
	tl := l.Timeline()
	if strings.Index(tl, "incRate") > strings.Index(tl, "decRate") {
		t.Fatalf("timeline not time-sorted:\n%s", tl)
	}
}

func TestEventStrip(t *testing.T) {
	l := sampleLog()
	s := l.EventStrip("AM_F", epoch, 20, time.Second)
	if !strings.Contains(s, "contrLow") || !strings.Contains(s, "addWorker") {
		t.Fatalf("strip missing rows:\n%s", s)
	}
	if !strings.Contains(s, "x") {
		t.Fatalf("strip has no marks:\n%s", s)
	}
	if l.EventStrip("AM_F", epoch, 0, time.Second) != "" {
		t.Fatal("zero width must render empty")
	}
}

func TestRenderSeries(t *testing.T) {
	s := metrics.NewSeries("throughput")
	for i := 0; i < 60; i++ {
		s.Append(epoch.Add(time.Duration(i)*time.Second), float64(i)/100)
	}
	out := RenderSeries(PlotOptions{Width: 40, Height: 8, Bands: []float64{0.3, 0.7}}, s)
	if !strings.Contains(out, "*") {
		t.Fatalf("plot has no points:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatalf("plot has no contract bands:\n%s", out)
	}
	if !strings.Contains(out, "throughput") {
		t.Fatalf("plot has no legend:\n%s", out)
	}
}

func TestRenderSeriesEmpty(t *testing.T) {
	s := metrics.NewSeries("empty")
	if got := RenderSeries(PlotOptions{}, s); got != "(no samples)\n" {
		t.Fatalf("got %q", got)
	}
	if got := RenderSeries(PlotOptions{}); got != "" {
		t.Fatalf("no series should render empty, got %q", got)
	}
}

func TestRenderSeriesSinglePoint(t *testing.T) {
	s := metrics.NewSeries("one")
	s.Append(epoch, 5)
	out := RenderSeries(PlotOptions{Width: 10, Height: 4}, s)
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not rendered:\n%s", out)
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	a := metrics.NewSeries("throughput")
	b := metrics.NewSeries("workers")
	a.Append(epoch, 0.5)
	a.Append(epoch.Add(time.Second), 0.6)
	b.Append(epoch.Add(500*time.Millisecond), 3)
	var sb strings.Builder
	if err := WriteSeriesCSV(&sb, 2, a, b); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "series,seconds,value" {
		t.Fatalf("header = %q", lines[0])
	}
	// scale 2 doubles the modelled seconds.
	if lines[2] != "throughput,2.000,0.6" {
		t.Fatalf("row = %q", lines[2])
	}
	if !strings.HasPrefix(lines[3], "workers,1.000,3") {
		t.Fatalf("row = %q", lines[3])
	}
	// Zero scale defaults to 1 and empty series are fine.
	var sb2 strings.Builder
	if err := WriteSeriesCSV(&sb2, 0, metrics.NewSeries("empty")); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(sb2.String()) != "series,seconds,value" {
		t.Fatalf("empty csv = %q", sb2.String())
	}
}

func TestLogConcurrentAdd(t *testing.T) {
	l := NewLog()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				l.Record(epoch, "AM", ContrLow, "")
			}
		}()
	}
	wg.Wait()
	if l.Len() != 400 {
		t.Fatalf("Len = %d, want 400", l.Len())
	}
}

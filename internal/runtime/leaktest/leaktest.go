// Package leaktest verifies that a test leaves no goroutines behind: the
// supervised-runtime refactor's contract is that every control loop,
// sampler and worker exits on cancel/Stop, and these checks are how the
// lifecycle tests of manager, core and skel prove it.
package leaktest

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// Check snapshots the current goroutine count and returns a function to
// defer: it fails the test if, after a settling window, more goroutines
// are running than at the snapshot. Background goroutines need a moment
// to observe cancelation, so the check polls before declaring a leak.
//
//	defer leaktest.Check(t)()
func Check(t testing.TB) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		var after int
		for {
			after = runtime.NumGoroutine()
			if after <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d before, %d after\n%s", before, after, interesting())
	}
}

// interesting dumps the stacks of goroutines likely to be the leak,
// filtering the test runner's own machinery.
func interesting() string {
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	var out []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if strings.Contains(g, "testing.") || strings.Contains(g, "runtime.goexit") && strings.Count(g, "\n") <= 2 {
			continue
		}
		out = append(out, g)
	}
	return strings.Join(out, "\n\n")
}

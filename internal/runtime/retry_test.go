package runtime

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/simclock"
)

func TestBackoffDelaySchedule(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond,
		Factor: 2, Jitter: -1}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond, // capped
	}
	for i, w := range want {
		if got := b.Delay(i); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	// A deterministic Rand makes the jittered delay exactly predictable:
	// d * (1 - Jitter*Rand()).
	b := Backoff{Base: 100 * time.Millisecond, Jitter: 0.5,
		Rand: func() float64 { return 1 }}
	if got, want := b.Delay(0), 50*time.Millisecond; got != want {
		t.Errorf("full jitter draw: Delay(0) = %v, want %v", got, want)
	}
	b.Rand = func() float64 { return 0 }
	if got, want := b.Delay(0), 100*time.Millisecond; got != want {
		t.Errorf("zero jitter draw: Delay(0) = %v, want %v", got, want)
	}
}

// advance keeps a Manual clock moving while Retry sleeps on it.
func advance(done <-chan struct{}, clock *simclock.Manual) {
	for {
		select {
		case <-done:
			return
		default:
		}
		if clock.PendingWaiters() > 0 {
			clock.Advance(time.Second)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestRetryEventualSuccess(t *testing.T) {
	clock := simclock.NewManual(time.Unix(0, 0))
	done := make(chan struct{})
	defer close(done)
	go advance(done, clock)

	calls := 0
	err := Retry(context.Background(), Backoff{Clock: clock, Attempts: 3},
		func() error {
			calls++
			if calls < 3 {
				return errors.New("transient")
			}
			return nil
		}, nil)
	if err != nil {
		t.Fatalf("Retry = %v, want success on third attempt", err)
	}
	if calls != 3 {
		t.Fatalf("op called %d times, want 3", calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	clock := simclock.NewManual(time.Unix(0, 0))
	done := make(chan struct{})
	defer close(done)
	go advance(done, clock)

	calls := 0
	boom := errors.New("still broken")
	err := Retry(context.Background(), Backoff{Clock: clock, Attempts: 4},
		func() error { calls++; return boom }, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("Retry = %v, want the op's error", err)
	}
	if calls != 4 {
		t.Fatalf("op called %d times, want 4", calls)
	}
}

func TestRetryPermanentShortCircuits(t *testing.T) {
	fatal := errors.New("pool exhausted")
	calls := 0
	err := Retry(context.Background(), Backoff{Attempts: 5},
		func() error { calls++; return fatal },
		func(err error) bool { return errors.Is(err, fatal) })
	if !errors.Is(err, fatal) {
		t.Fatalf("Retry = %v, want permanent error", err)
	}
	if calls != 1 {
		t.Fatalf("permanent error retried: %d calls", calls)
	}
}

func TestRetryCanceledReturnsLastError(t *testing.T) {
	clock := simclock.NewManual(time.Unix(0, 0))
	ctx, cancel := context.WithCancel(context.Background())
	boom := errors.New("transient")
	errc := make(chan error, 1)
	go func() {
		errc <- Retry(ctx, Backoff{Clock: clock, Attempts: 3},
			func() error { return boom }, nil)
	}()
	// Wait until Retry is parked in its backoff sleep, then cancel: the
	// pending op error must come back, not a bare ctx error.
	deadline := time.Now().Add(5 * time.Second)
	for clock.PendingWaiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("Retry never slept")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, boom) {
			t.Fatalf("Retry = %v, want last attempt's error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Retry did not return after cancel")
	}
}

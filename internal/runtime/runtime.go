// Package runtime is the supervised-lifecycle layer underneath the
// autonomic managers and the skeleton applications. The paper's managers
// form hierarchies that must start, reconfigure and tear down as one tree
// (§3.1); this package provides the three primitives every layer of the
// repository builds that tree from:
//
//   - Runnable, the unit of supervision: anything with a context-driven
//     Run method (every MAPE loop, sampler and harness implements it);
//   - Group, an errgroup-style supervisor: members run concurrently, the
//     first failure cancels the siblings, Wait collects the errors;
//   - Notifier, an edge-triggered wake-up channel letting MAPE loops
//     react to contract-violation edges (worker crash, end of stream)
//     immediately instead of waiting out a full poll period.
//
// Lifecycle (lifecycle.go) adapts Runnable to the legacy Start/Stop call
// sites with idempotence guaranteed centrally. The package is stdlib-only.
package runtime

import (
	"context"
	"errors"
	"sync"
)

// Runnable is the unit of supervision: Run blocks until the work is done
// or ctx is canceled. A clean shutdown (return caused by ctx cancelation)
// must return nil, not ctx.Err(), so that supervised teardown of a whole
// tree is not reported as a failure.
type Runnable interface {
	Run(ctx context.Context) error
}

// Func adapts a plain function to Runnable.
type Func func(ctx context.Context) error

// Run implements Runnable.
func (f Func) Run(ctx context.Context) error { return f(ctx) }

// Group supervises a set of concurrently running members: the first
// member returning a non-nil error cancels every sibling, and Wait blocks
// until all members have exited, returning the joined errors. A Group is
// the runtime counterpart of one manager (sub)tree.
type Group struct {
	ctx    context.Context
	cancel context.CancelFunc

	wg   sync.WaitGroup
	mu   sync.Mutex
	errs []error
}

// NewGroup builds a Group whose members run under a context derived from
// parent: canceling parent cancels the group. The returned context is the
// group's own (it is what members receive); it is also canceled by the
// first member failure and by Cancel.
func NewGroup(parent context.Context) (*Group, context.Context) {
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	return &Group{ctx: ctx, cancel: cancel}, ctx
}

// Go launches fn as a group member. A non-nil return that is not the
// group's own cancelation error is recorded and cancels the siblings.
func (g *Group) Go(fn func(ctx context.Context) error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := fn(g.ctx); err != nil && !errors.Is(err, context.Canceled) {
			g.mu.Lock()
			g.errs = append(g.errs, err)
			g.mu.Unlock()
			g.cancel()
		}
	}()
}

// Run launches r as a group member.
func (g *Group) Run(r Runnable) { g.Go(r.Run) }

// Cancel asks every member to shut down. Wait still must be called to
// observe completion.
func (g *Group) Cancel() { g.cancel() }

// Wait blocks until every member has exited and returns the joined member
// errors (nil when all returned nil or context.Canceled).
func (g *Group) Wait() error {
	g.wg.Wait()
	g.cancel() // release the derived context even on clean exit
	g.mu.Lock()
	defer g.mu.Unlock()
	return errors.Join(g.errs...)
}

// Notifier is an edge-triggered wake-up: Notify marks the edge (never
// blocking, coalescing bursts into one pending wake) and C delivers it.
// A MAPE loop selects on C alongside its heartbeat ticker so that a
// violation edge wakes it immediately instead of after up to one full
// poll period.
type Notifier struct {
	once sync.Once
	ch   chan struct{}
}

// NewNotifier returns a ready Notifier. The zero value is also usable.
func NewNotifier() *Notifier { return &Notifier{} }

func (n *Notifier) init() {
	n.once.Do(func() { n.ch = make(chan struct{}, 1) })
}

// Notify marks the edge. It never blocks: while a wake-up is already
// pending, further edges coalesce into it.
func (n *Notifier) Notify() {
	n.init()
	select {
	case n.ch <- struct{}{}:
	default:
	}
}

// C returns the wake-up channel. Receiving consumes the pending edge.
func (n *Notifier) C() <-chan struct{} {
	n.init()
	return n.ch
}

package runtime

import (
	"context"
	"testing"

	"repro/internal/runtime/leaktest"
)

// The leak checks below prove the supervision primitives themselves leave
// nothing behind; manager, core and skel apply the same helper to their
// lifecycle tests.

func TestGroupLeavesNoGoroutines(t *testing.T) {
	defer leaktest.Check(t)()
	for i := 0; i < 20; i++ {
		g, _ := NewGroup(context.Background())
		for j := 0; j < 4; j++ {
			g.Go(func(ctx context.Context) error {
				<-ctx.Done()
				return nil
			})
		}
		g.Cancel()
		if err := g.Wait(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLifecycleLeavesNoGoroutines(t *testing.T) {
	defer leaktest.Check(t)()
	var l Lifecycle
	for i := 0; i < 20; i++ {
		l.Start(func(ctx context.Context) error {
			<-ctx.Done()
			return nil
		})
		if err := l.Stop(); err != nil {
			t.Fatal(err)
		}
	}
}

package runtime

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestGroupFirstErrorCancelsSiblings(t *testing.T) {
	g, _ := NewGroup(context.Background())
	boom := errors.New("boom")
	var siblingCanceled atomic.Bool
	g.Go(func(ctx context.Context) error {
		<-ctx.Done()
		siblingCanceled.Store(true)
		return nil
	})
	g.Go(func(ctx context.Context) error { return boom })
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want %v", err, boom)
	}
	if !siblingCanceled.Load() {
		t.Fatal("sibling not canceled by first error")
	}
}

func TestGroupCollectsAllErrors(t *testing.T) {
	g, _ := NewGroup(context.Background())
	e1, e2 := errors.New("one"), errors.New("two")
	g.Go(func(ctx context.Context) error { return e1 })
	g.Go(func(ctx context.Context) error { return e2 })
	err := g.Wait()
	if !errors.Is(err, e1) || !errors.Is(err, e2) {
		t.Fatalf("Wait = %v, want both member errors joined", err)
	}
}

func TestGroupCleanShutdownIsNil(t *testing.T) {
	g, _ := NewGroup(context.Background())
	g.Go(func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err() // members returning the cancelation error are not failures
	})
	g.Cancel()
	if err := g.Wait(); err != nil {
		t.Fatalf("Wait after Cancel = %v, want nil", err)
	}
}

func TestGroupParentCancelPropagates(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	g, _ := NewGroup(parent)
	ran := make(chan struct{})
	g.Go(func(ctx context.Context) error {
		close(ran)
		<-ctx.Done()
		return nil
	})
	<-ran
	cancel()
	if err := g.Wait(); err != nil {
		t.Fatalf("Wait = %v, want nil", err)
	}
}

func TestNotifierCoalescesAndWakes(t *testing.T) {
	n := NewNotifier()
	for i := 0; i < 10; i++ {
		n.Notify() // must never block
	}
	select {
	case <-n.C():
	default:
		t.Fatal("no wake-up pending after Notify")
	}
	select {
	case <-n.C():
		t.Fatal("burst must coalesce into a single wake-up")
	default:
	}
	n.Notify()
	select {
	case <-n.C():
	case <-time.After(time.Second):
		t.Fatal("edge after drain not delivered")
	}
}

func TestNotifierZeroValue(t *testing.T) {
	var n Notifier
	n.Notify()
	select {
	case <-n.C():
	default:
		t.Fatal("zero-value Notifier lost the edge")
	}
}

func TestLifecycleStartStopIdempotent(t *testing.T) {
	var l Lifecycle
	var runs atomic.Int32
	run := func(ctx context.Context) error {
		runs.Add(1)
		<-ctx.Done()
		return nil
	}
	if !l.Start(run) {
		t.Fatal("first Start refused")
	}
	if l.Start(run) {
		t.Fatal("second Start must be refused while running")
	}
	if !l.Running() {
		t.Fatal("Running() = false while started")
	}
	if err := l.Stop(); err != nil {
		t.Fatalf("Stop = %v", err)
	}
	if err := l.Stop(); err != nil {
		t.Fatalf("double Stop = %v", err)
	}
	if l.Running() {
		t.Fatal("Running() = true after Stop")
	}
	if !l.Start(run) || l.Stop() != nil {
		t.Fatal("restart after Stop failed")
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("run invoked %d times, want 2", got)
	}
}

func TestLifecycleStopReturnsRunError(t *testing.T) {
	var l Lifecycle
	boom := errors.New("boom")
	l.Start(func(ctx context.Context) error {
		<-ctx.Done()
		return boom
	})
	if err := l.Stop(); !errors.Is(err, boom) {
		t.Fatalf("Stop = %v, want %v", err, boom)
	}
}

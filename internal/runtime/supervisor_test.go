package runtime

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/simclock"
)

func superClock(t *testing.T) *simclock.Manual {
	t.Helper()
	clock := simclock.NewManual(time.Unix(0, 0))
	done := make(chan struct{})
	t.Cleanup(func() { close(done) })
	go advance(done, clock)
	return clock
}

func TestSupervisorRestartsUntilClean(t *testing.T) {
	clock := superClock(t)
	boom := errors.New("cycle blew up")
	runs := 0
	s := Supervise(func(ctx context.Context) error {
		runs++
		if runs < 3 {
			return boom
		}
		return nil
	}, SupervisorConfig{Name: "am", Clock: clock, Backoff: Backoff{Jitter: -1}})

	if err := s.Run(context.Background()); err != nil {
		t.Fatalf("Run = %v, want nil after eventual clean exit", err)
	}
	if runs != 3 {
		t.Fatalf("inner ran %d times, want 3", runs)
	}
	if got := s.Restarts(); got != 2 {
		t.Fatalf("Restarts = %d, want 2", got)
	}
	if got := s.LastCause(); !strings.Contains(got, "cycle blew up") {
		t.Fatalf("LastCause = %q, want the failure cause", got)
	}
}

func TestSupervisorConvertsPanic(t *testing.T) {
	clock := superClock(t)
	runs := 0
	s := Supervise(func(ctx context.Context) error {
		runs++
		if runs == 1 {
			panic("analysis exploded")
		}
		return nil
	}, SupervisorConfig{Name: "am", Clock: clock, Backoff: Backoff{Jitter: -1}})

	if err := s.Run(context.Background()); err != nil {
		t.Fatalf("Run = %v, want panic converted and restarted", err)
	}
	if runs != 2 {
		t.Fatalf("inner ran %d times, want 2", runs)
	}
	if got := s.LastCause(); !strings.Contains(got, "panic: analysis exploded") {
		t.Fatalf("LastCause = %q, want the converted panic", got)
	}
}

func TestSupervisorGivesUpAfterBudget(t *testing.T) {
	clock := superClock(t)
	boom := errors.New("permanently broken")
	runs := 0
	s := Supervise(func(ctx context.Context) error { runs++; return boom },
		SupervisorConfig{Name: "am", Clock: clock,
			Backoff: Backoff{Jitter: -1}, MaxRestarts: 3, Window: time.Hour})

	err := s.Run(context.Background())
	if !errors.Is(err, ErrSupervisorGaveUp) {
		t.Fatalf("Run = %v, want ErrSupervisorGaveUp", err)
	}
	if !strings.Contains(err.Error(), "permanently broken") {
		t.Fatalf("give-up error %q does not carry the last cause", err)
	}
	// MaxRestarts=3 allows 3 restarts: 4 runs total.
	if runs != 4 {
		t.Fatalf("inner ran %d times, want 4 (initial + 3 restarts)", runs)
	}

	// The terminal error must surface through a Group.
	g, _ := NewGroup(context.Background())
	g.Go(Supervise(func(ctx context.Context) error { return boom },
		SupervisorConfig{Clock: clock, Backoff: Backoff{Jitter: -1},
			MaxRestarts: 1, Window: time.Hour}).Run)
	if err := g.Wait(); !errors.Is(err, ErrSupervisorGaveUp) {
		t.Fatalf("Group.Wait = %v, want the give-up error", err)
	}
}

func TestSupervisorWindowForgivesOldFailures(t *testing.T) {
	clock := simclock.NewManual(time.Unix(0, 0))
	boom := errors.New("flaky")
	runs := 0
	s := Supervise(func(ctx context.Context) error {
		runs++
		if runs <= 4 {
			return boom
		}
		return nil
	}, SupervisorConfig{Clock: clock,
		Backoff: Backoff{Base: 10 * time.Millisecond, Jitter: -1},
		// Budget of 1 restart per 50ms window: four failures in a row
		// would exceed it unless the window slides past older ones.
		MaxRestarts: 1, Window: 50 * time.Millisecond})

	errc := make(chan error, 1)
	go func() { errc <- s.Run(context.Background()) }()
	// Each backoff sleep is ~10-20ms; advancing in 60ms steps spaces the
	// failures further apart than the window, so the budget never fills.
	for {
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("Run = %v, want window to forgive spaced failures", err)
			}
			if runs != 5 {
				t.Fatalf("inner ran %d times, want 5", runs)
			}
			return
		default:
		}
		if clock.PendingWaiters() > 0 {
			clock.Advance(60 * time.Millisecond)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestSupervisorCancelDuringBackoff(t *testing.T) {
	clock := simclock.NewManual(time.Unix(0, 0))
	ctx, cancel := context.WithCancel(context.Background())
	boom := errors.New("transient")
	s := Supervise(func(ctx context.Context) error { return boom },
		SupervisorConfig{Clock: clock, Backoff: Backoff{Base: time.Hour, Jitter: -1}})

	errc := make(chan error, 1)
	go func() { errc <- s.Run(ctx) }()
	for clock.PendingWaiters() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("Run = %v, want nil on cancelation during backoff", err)
	}
}

func TestSupervisorCleanShutdownNotRestarted(t *testing.T) {
	runs := 0
	s := Supervise(func(ctx context.Context) error { runs++; return nil },
		SupervisorConfig{})
	if err := s.Run(context.Background()); err != nil {
		t.Fatalf("Run = %v", err)
	}
	if runs != 1 {
		t.Fatalf("clean exit restarted: %d runs", runs)
	}
	if s.Restarts() != 0 {
		t.Fatalf("Restarts = %d, want 0", s.Restarts())
	}
}

func TestSupervisorSeededJitterReplays(t *testing.T) {
	// Two supervisors sharing nothing but a seed must produce identical
	// restart delay schedules — the property the chaos plane's
	// byte-identical replay invariant rests on.
	schedule := func(seed int64) []time.Duration {
		b := Backoff{Base: 10 * time.Millisecond, Max: time.Second,
			Rand: NewSeededJitter(seed)}
		var ds []time.Duration
		for i := 0; i < 6; i++ {
			ds = append(ds, b.Delay(i))
		}
		return ds
	}
	a, b := schedule(7), schedule(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := schedule(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("different seeds produced identical schedules")
	}
}

func TestSeededJitterConcurrentSafe(t *testing.T) {
	jit := NewSeededJitter(1)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if v := jit(); v < 0 || v >= 1 {
					t.Errorf("jitter out of range: %v", v)
					return
				}
			}
		}()
	}
	wg.Wait()
}

package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simclock"
)

// ErrSupervisorGaveUp marks a terminal supervisor exit: the supervised
// Runnable kept failing until the restart budget for the sliding window was
// exhausted. The error surfaces through the enclosing Group, so a
// management-plane member that cannot be healed takes its tree down
// instead of flapping forever.
var ErrSupervisorGaveUp = errors.New("runtime: supervisor gave up")

// SupervisorConfig parameterizes the restart policy of a Supervisor.
// The zero value is usable.
type SupervisorConfig struct {
	// Name labels restart log lines and give-up errors (default
	// "supervised").
	Name string
	// Clock times restart delays and the sliding restart window
	// (default: real time).
	Clock simclock.Clock
	// Backoff shapes the delay before each restart. Attempts is ignored
	// (the budget below bounds restarts); the retry index grows with the
	// current restart streak inside the window. Backoff.Clock is
	// overridden by Clock.
	Backoff Backoff
	// MaxRestarts is the number of restarts allowed within Window before
	// the supervisor gives up (default 8).
	MaxRestarts int
	// Window is the sliding window the restart budget applies to
	// (default 1 minute). Restarts older than Window no longer count
	// against the budget.
	Window time.Duration
	// OnRestart, when non-nil, observes every restart with the failure
	// cause and the downtime between the failure and the moment the
	// replacement run starts (the restart delay, i.e. the manager's MTTR
	// contribution), measured on Clock.
	OnRestart func(cause error, downtime time.Duration)
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.Name == "" {
		c.Name = "supervised"
	}
	if c.Clock == nil {
		c.Clock = simclock.NewReal()
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 8
	}
	if c.Window <= 0 {
		c.Window = time.Minute
	}
	c.Backoff.Clock = c.Clock
	return c
}

// Supervisor wraps a Runnable with a restart policy: panics are converted
// to errors, every failure is retried after a jittered backoff delay, and
// a sliding-window budget bounds how often. The management plane runs
// every manager loop under one, so a crashed or panicking manager is
// restarted (and replays its checkpoint) instead of silently leaving its
// sub-contract unenforced.
//
// A nil error from the inner Run — the contract for clean, cancelation-
// driven shutdown — ends supervision; so does ctx being done when the
// failure is observed (teardown races are not failures).
type Supervisor struct {
	inner Runnable
	cfg   SupervisorConfig

	restarts atomic.Uint64

	mu        sync.Mutex
	lastCause string
	recent    []time.Time // restart instants still inside the window
}

// NewSupervisor wraps inner with the restart policy in cfg.
func NewSupervisor(inner Runnable, cfg SupervisorConfig) *Supervisor {
	return &Supervisor{inner: inner, cfg: cfg.withDefaults()}
}

// Supervise is shorthand for NewSupervisor over a plain run function.
func Supervise(run func(ctx context.Context) error, cfg SupervisorConfig) *Supervisor {
	return NewSupervisor(Func(run), cfg)
}

// SetOnRestart installs the restart observer. It must be called before Run.
func (s *Supervisor) SetOnRestart(fn func(cause error, downtime time.Duration)) {
	s.cfg.OnRestart = fn
}

// Restarts returns how many times the inner Runnable has been restarted.
func (s *Supervisor) Restarts() uint64 { return s.restarts.Load() }

// LastCause returns the cause of the most recent restart (or give-up),
// empty while the inner Runnable has never failed.
func (s *Supervisor) LastCause() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastCause
}

// Run runs the inner Runnable until it exits cleanly, ctx is canceled, or
// the restart budget is exhausted — in which case the terminal give-up
// error (wrapping ErrSupervisorGaveUp and the last cause) is returned and
// surfaces to the enclosing Group.
func (s *Supervisor) Run(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		err := s.runOnce(ctx)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			// Teardown race: the failure happened while the tree was
			// already being canceled. Not a supervision case.
			return nil
		}
		failedAt := s.cfg.Clock.Now()
		streak := s.recordFailure(failedAt, err)
		if streak > s.cfg.MaxRestarts {
			return fmt.Errorf("%w: %s: %d restarts within %v, last cause: %v",
				ErrSupervisorGaveUp, s.cfg.Name, streak-1, s.cfg.Window, err)
		}
		delay := s.cfg.Backoff.Delay(streak - 1)
		select {
		case <-ctx.Done():
			return nil
		case <-s.cfg.Clock.After(delay):
		}
		s.restarts.Add(1)
		if s.cfg.OnRestart != nil {
			s.cfg.OnRestart(err, s.cfg.Clock.Now().Sub(failedAt))
		}
	}
}

// runOnce runs the inner Runnable once, converting a panic to an error so
// a panicking MAPE cycle is a restartable failure rather than a process
// crash.
func (s *Supervisor) runOnce(ctx context.Context) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%s: panic: %v", s.cfg.Name, r)
		}
	}()
	return s.inner.Run(ctx)
}

// recordFailure notes the failure cause and returns how many failures
// (including this one) fall inside the sliding window ending at now.
func (s *Supervisor) recordFailure(now time.Time, cause error) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastCause = cause.Error()
	cutoff := now.Add(-s.cfg.Window)
	kept := s.recent[:0]
	for _, t := range s.recent {
		if t.After(cutoff) {
			kept = append(kept, t)
		}
	}
	s.recent = append(kept, now)
	return len(s.recent)
}

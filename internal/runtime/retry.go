package runtime

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"repro/internal/simclock"
)

// NewSeededJitter returns a jitter source in [0,1) drawn from one seeded
// PRNG behind a mutex, safe for concurrent use from several Backoff
// consumers. The chaos plane hands the same source to every retrying and
// restarting component so that same-seed replays are byte-identical
// including retry and restart timing; the default (the global math/rand
// source) would differ between runs.
func NewSeededJitter(seed int64) func() float64 {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	return func() float64 {
		mu.Lock()
		defer mu.Unlock()
		return rng.Float64()
	}
}

// Backoff describes a bounded, jittered exponential retry policy. The zero
// value is usable: every field defaults to a conservative setting suited to
// actuator-style control operations (3 attempts, 10ms base, 1s cap).
//
// Both the clock and the jitter source are injectable so that tests and the
// chaos plane can replay retry schedules deterministically.
type Backoff struct {
	// Base is the delay before the first retry (default 10ms).
	Base time.Duration
	// Max caps the grown delay (default 1s).
	Max time.Duration
	// Factor is the multiplicative growth per retry (default 2).
	Factor float64
	// Jitter in [0,1] is the fraction of each delay that is randomized:
	// the actual delay is drawn uniformly from [d*(1-Jitter), d]. Default
	// 0.5; set a negative value for no jitter at all.
	Jitter float64
	// Attempts is the total number of tries including the first
	// (default 3).
	Attempts int
	// Clock times the sleeps between attempts (default: real time).
	Clock simclock.Clock
	// Rand supplies jitter in [0,1) (default: math/rand global source).
	Rand func() float64
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 10 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Jitter == 0 {
		b.Jitter = 0.5
	}
	if b.Jitter < 0 {
		b.Jitter = 0
	}
	if b.Jitter > 1 {
		b.Jitter = 1
	}
	if b.Attempts <= 0 {
		b.Attempts = 3
	}
	if b.Clock == nil {
		b.Clock = simclock.NewReal()
	}
	if b.Rand == nil {
		b.Rand = rand.Float64
	}
	return b
}

// Delay returns the sleep before retry number retry (0-based), including
// jitter. Exposed so tests can assert the schedule.
func (b Backoff) Delay(retry int) time.Duration {
	b = b.withDefaults()
	d := float64(b.Base)
	for i := 0; i < retry; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Jitter > 0 {
		d *= 1 - b.Jitter*b.Rand()
	}
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}

// Retry runs op up to b.Attempts times, sleeping a growing jittered delay
// between attempts on b's clock. It returns nil as soon as op succeeds. A
// non-nil permanent classifier short-circuits retrying: when it reports an
// error as permanent, that error is returned immediately (recruitment
// exhaustion or an unsupported operation will not get better by waiting).
// If ctx is canceled during a backoff sleep, the last attempt's error is
// returned; op is never started again after ctx is done.
func Retry(ctx context.Context, b Backoff, op func() error, permanent func(error) bool) error {
	if ctx == nil {
		ctx = context.Background()
	}
	b = b.withDefaults()
	var err error
	for attempt := 0; attempt < b.Attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return err
			case <-b.Clock.After(b.Delay(attempt - 1)):
			}
		}
		if err = op(); err == nil {
			return nil
		}
		if permanent != nil && permanent(err) {
			return err
		}
	}
	return err
}

package runtime

import (
	"context"
	"sync"
)

// Lifecycle adapts a Runnable to the Start/Stop call sites that predate
// context propagation, with double-Start/double-Stop idempotence
// guaranteed centrally instead of per manager. Start derives a fresh
// context, runs the Runnable on its own goroutine and returns; Stop
// cancels that context and waits for Run to exit. Start after Stop is
// allowed.
//
// The zero value is ready to use.
type Lifecycle struct {
	mu     sync.Mutex
	cancel context.CancelFunc
	done   chan struct{}
	err    error
}

// Start launches run under a fresh context. It reports false (and does
// nothing) when the lifecycle is already running.
func (l *Lifecycle) Start(run func(ctx context.Context) error) bool {
	l.mu.Lock()
	if l.cancel != nil {
		l.mu.Unlock()
		return false
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	l.cancel, l.done = cancel, done
	l.mu.Unlock()

	go func() {
		err := run(ctx)
		l.mu.Lock()
		l.err = err
		l.mu.Unlock()
		close(done)
	}()
	return true
}

// Stop cancels the running context and waits for Run to exit, returning
// Run's error. Stopping an idle lifecycle is a no-op returning nil.
func (l *Lifecycle) Stop() error {
	l.mu.Lock()
	cancel, done := l.cancel, l.done
	l.cancel, l.done = nil, nil
	l.mu.Unlock()
	if cancel == nil {
		return nil
	}
	cancel()
	<-done
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Running reports whether a Start is active.
func (l *Lifecycle) Running() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cancel != nil
}

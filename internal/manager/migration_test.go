package manager

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/abc"
	"repro/internal/grid"
	"repro/internal/skel"
	"repro/internal/trace"
)

func singleCoreCluster(n int) *grid.ResourceManager {
	dom := grid.Domain{Name: "c", Trusted: true}
	var nodes []*grid.Node
	for i := 0; i < n; i++ {
		nodes = append(nodes, grid.NewNode(fmt.Sprintf("n%02d", i), dom, 1, 1.0))
	}
	return grid.NewResourceManager(nodes...)
}

func TestMigrationManagerValidation(t *testing.T) {
	if _, err := NewMigrationManager(MigrationConfig{}); err == nil {
		t.Fatal("migration manager without log accepted")
	}
	m, err := NewMigrationManager(MigrationConfig{Log: trace.NewLog()})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "AM_mig" {
		t.Fatalf("default name = %q", m.Name())
	}
}

func TestMigrationManagerMovesLoadedWorkers(t *testing.T) {
	rm := singleCoreCluster(6)
	f, err := skel.NewFarm(skel.FarmConfig{
		Name: "mig", Env: skel.Env{TimeScale: 500}, RM: rm, InitialWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan *skel.Task)
	out := make(chan *skel.Task, 128)
	count := make(chan int, 1)
	go func() {
		n := 0
		for range out {
			n++
		}
		count <- n
	}()
	done := make(chan struct{})
	go func() { f.Run(context.Background(), in, out); close(done) }()
	deadline := time.Now().Add(5 * time.Second)
	for len(f.Workers()) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("farm never started")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 20; i++ {
		in <- &skel.Task{ID: skel.NextTaskID(), Work: time.Second}
	}

	// Overload both worker nodes.
	before := map[string]bool{}
	for _, w := range f.Workers() {
		w.Node.SetExternalLoad(0.8)
		before[w.Node.ID] = true
	}

	log := trace.NewLog()
	mig, err := NewMigrationManager(MigrationConfig{Log: log, MaxLoad: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	fa := abc.NewFarmABC(f, nil)
	mig.Watch(fa)
	if moved := mig.RunOnce(); moved != 2 {
		t.Fatalf("moved %d workers, want 2", moved)
	}
	if mig.Migrated() != 2 {
		t.Fatalf("Migrated = %d", mig.Migrated())
	}
	for _, w := range fa.Workers() {
		if before[w.Node.ID] {
			t.Fatalf("worker %s still on loaded node %s", w.ID, w.Node.ID)
		}
		if w.Node.ExternalLoad() > 0.5 {
			t.Fatalf("worker %s migrated onto loaded node %s", w.ID, w.Node.ID)
		}
	}
	if log.Count("AM_mig", trace.Migrated) != 2 {
		t.Fatalf("migration events missing:\n%s", log.Timeline())
	}
	// Idempotent: nothing left to move.
	if moved := mig.RunOnce(); moved != 0 {
		t.Fatalf("second scan moved %d", moved)
	}
	close(in)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("farm hung after migrations")
	}
	if n := <-count; n != 20 {
		t.Fatalf("completed %d/20 across migrations", n)
	}
}

func TestMigrationManagerSkipsWhenNoDestination(t *testing.T) {
	rm := singleCoreCluster(2) // only the two worker nodes exist
	f, _ := skel.NewFarm(skel.FarmConfig{
		Name: "mig", Env: skel.Env{TimeScale: 500}, RM: rm, InitialWorkers: 2,
	})
	in := make(chan *skel.Task)
	out := make(chan *skel.Task, 8)
	go func() {
		for range out {
		}
	}()
	done := make(chan struct{})
	go func() { f.Run(context.Background(), in, out); close(done) }()
	deadline := time.Now().Add(5 * time.Second)
	for len(f.Workers()) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("farm never started")
		}
		time.Sleep(time.Millisecond)
	}
	for _, w := range f.Workers() {
		w.Node.SetExternalLoad(0.8)
	}
	log := trace.NewLog()
	mig, _ := NewMigrationManager(MigrationConfig{Log: log, MaxLoad: 0.5})
	mig.Watch(abc.NewFarmABC(f, nil))
	if moved := mig.RunOnce(); moved != 0 {
		t.Fatalf("moved %d with no free destination", moved)
	}
	close(in)
	<-done
}

func TestMigrationManagerStartStop(t *testing.T) {
	log := trace.NewLog()
	mig, _ := NewMigrationManager(MigrationConfig{Log: log, Period: time.Millisecond})
	mig.Start()
	mig.Start()
	time.Sleep(5 * time.Millisecond)
	mig.Stop()
	mig.Stop()
}

package manager

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/abc"
	"repro/internal/contract"
	"repro/internal/grid"
	"repro/internal/rules"
	"repro/internal/security"
	"repro/internal/simclock"
	"repro/internal/skel"
	"repro/internal/trace"
)

// stub is a scriptable abc.Controller.
type stub struct {
	mu    sync.Mutex
	snap  contract.Snapshot
	beans []rules.Bean
	ops   []string
	fail  error
}

func (s *stub) Beans() []rules.Bean {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.beans
}

func (s *stub) Snapshot() contract.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snap
}

func (s *stub) Execute(op string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fail != nil {
		return "", s.fail
	}
	s.ops = append(s.ops, op)
	return "ok", nil
}

func (s *stub) setSnap(sn contract.Snapshot) {
	s.mu.Lock()
	s.snap = sn
	s.mu.Unlock()
}

func (s *stub) setBeans(bs []rules.Bean) {
	s.mu.Lock()
	s.beans = bs
	s.mu.Unlock()
}

func (s *stub) executed() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.ops))
	copy(out, s.ops)
	return out
}

func newTestManager(t *testing.T, name string, ctrl abc.Controller, engine *rules.Engine, pol Policy) (*Manager, *trace.Log) {
	t.Helper()
	log := trace.NewLog()
	return newTestManagerWithLog(t, name, ctrl, engine, pol, log), log
}

func newTestManagerWithLog(t *testing.T, name string, ctrl abc.Controller, engine *rules.Engine, pol Policy, log *trace.Log) *Manager {
	t.Helper()
	m, err := New(Config{
		Name: name, Clock: simclock.NewReal(), Period: time.Millisecond,
		Controller: ctrl, Engine: engine, Policy: pol, Log: log,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	log := trace.NewLog()
	ctrl := &stub{}
	cases := []Config{
		{Controller: ctrl, Log: log},  // no name
		{Name: "m", Log: log},         // no controller
		{Name: "m", Controller: ctrl}, // no log
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	m, err := New(Config{Name: "m", Controller: ctrl, Log: log})
	if err != nil {
		t.Fatal(err)
	}
	if m.State() != Active {
		t.Fatal("fresh manager must be active")
	}
	if _, ok := m.Contract().(contract.BestEffort); !ok {
		t.Fatalf("default contract = %v", m.Contract())
	}
}

func TestRunOnceLogsVerdicts(t *testing.T) {
	ctrl := &stub{}
	m, log := newTestManager(t, "AM", ctrl, nil, Policy{})
	m.AssignContract(contract.ThroughputRange{Lo: 0.3, Hi: 0.7})

	ctrl.setSnap(contract.Snapshot{Throughput: 0.1})
	m.RunOnce()
	if log.Count("AM", trace.ContrLow) != 1 {
		t.Fatalf("contrLow not logged:\n%s", log.Timeline())
	}
	ctrl.setSnap(contract.Snapshot{Throughput: 0.9})
	m.RunOnce()
	if log.Count("AM", trace.ContrHigh) != 1 {
		t.Fatalf("contrHigh not logged:\n%s", log.Timeline())
	}
	ctrl.setSnap(contract.Snapshot{Throughput: 0.5})
	m.RunOnce()
	if log.Count("AM", trace.ContrLow) != 1 || log.Count("AM", trace.ContrHigh) != 1 {
		t.Fatal("satisfied snapshot logged a violation")
	}
}

func TestRulesDriveActuators(t *testing.T) {
	ctrl := &stub{}
	engine := rules.NewFarmEngine(rules.FarmConstants(0.3, 0.7, 1, 8, 4))
	m, log := newTestManager(t, "AM_F", ctrl, engine, Policy{})
	// departure low, arrival fine -> ADD_EXECUTOR + BALANCE_LOAD
	ctrl.setBeans([]rules.Bean{
		rules.NewBean(rules.BeanArrivalRate, rules.Num(0.5)),
		rules.NewBean(rules.BeanDepartureRate, rules.Num(0.1)),
		rules.NewBean(rules.BeanNumWorker, rules.Num(2)),
		rules.NewBean(rules.BeanQueueVariance, rules.Num(0)),
	})
	if err := m.RunOnce(); err != nil {
		t.Fatal(err)
	}
	ops := ctrl.executed()
	if len(ops) != 2 || ops[0] != rules.OpAddExecutor || ops[1] != rules.OpBalanceLoad {
		t.Fatalf("ops = %v", ops)
	}
	if log.Count("AM_F", trace.AddWorker) != 1 || log.Count("AM_F", trace.Rebalance) != 1 {
		t.Fatalf("events missing:\n%s", log.Timeline())
	}
	if m.State() != Active {
		t.Fatal("manager with local action must be active")
	}
}

func TestViolationReportingAndPassive(t *testing.T) {
	child := &stub{}
	engine := rules.NewFarmEngine(rules.FarmConstants(0.3, 0.7, 1, 8, 4))
	var got []Violation
	parentCtrl := &stub{}
	parent, _ := newTestManager(t, "AM_A", parentCtrl, nil, Policy{
		OnChildViolation: func(m *Manager, v Violation) { got = append(got, v) },
	})
	m, log := newTestManager(t, "AM_F", child, engine, Policy{})
	parent.AttachChild(m)
	if m.Parent() != parent || len(parent.Children()) != 1 {
		t.Fatal("hierarchy wiring broken")
	}

	// arrival too low -> notEnoughTasks violation, manager goes passive
	child.setBeans([]rules.Bean{
		rules.NewBean(rules.BeanArrivalRate, rules.Num(0.1)),
		rules.NewBean(rules.BeanDepartureRate, rules.Num(0.1)),
		rules.NewBean(rules.BeanNumWorker, rules.Num(2)),
		rules.NewBean(rules.BeanQueueVariance, rules.Num(0)),
	})
	child.setSnap(contract.Snapshot{Throughput: 0.1, ArrivalRate: 0.1})
	m.RunOnce()
	if m.State() != Passive {
		t.Fatal("violation-only cycle must enter passive mode")
	}
	if log.Count("AM_F", trace.NotEnough) != 1 || log.Count("AM_F", trace.RaiseViol) != 1 {
		t.Fatalf("events missing:\n%s", log.Timeline())
	}
	if log.Count("AM_F", trace.EnterPass) != 1 {
		t.Fatal("enterPassive not logged")
	}

	// The parent drains it on its next cycle.
	parent.RunOnce()
	if len(got) != 1 || got[0].Tag != rules.TagNotEnoughTasks || got[0].From != "AM_F" {
		t.Fatalf("parent got %v", got)
	}

	// Local action becomes possible again -> re-enter active.
	child.setBeans([]rules.Bean{
		rules.NewBean(rules.BeanArrivalRate, rules.Num(0.5)),
		rules.NewBean(rules.BeanDepartureRate, rules.Num(0.1)),
		rules.NewBean(rules.BeanNumWorker, rules.Num(2)),
		rules.NewBean(rules.BeanQueueVariance, rules.Num(0)),
	})
	m.RunOnce()
	if m.State() != Active {
		t.Fatal("local action must re-activate the manager")
	}
	if log.Count("AM_F", trace.EnterActive) != 1 {
		t.Fatal("enterActive not logged")
	}
}

func TestFailedActuatorRaisesViolation(t *testing.T) {
	ctrl := &stub{fail: errors.New("no resources")}
	engine := rules.NewFarmEngine(rules.FarmConstants(0.3, 0.7, 1, 8, 4))
	m, log := newTestManager(t, "AM_F", ctrl, engine, Policy{})
	ctrl.setBeans([]rules.Bean{
		rules.NewBean(rules.BeanArrivalRate, rules.Num(0.5)),
		rules.NewBean(rules.BeanDepartureRate, rules.Num(0.1)),
		rules.NewBean(rules.BeanNumWorker, rules.Num(2)),
		rules.NewBean(rules.BeanQueueVariance, rules.Num(0)),
	})
	if err := m.RunOnce(); err != nil {
		t.Fatal(err)
	}
	if log.Count("AM_F", trace.RaiseViol) == 0 {
		t.Fatalf("failed actuator must raise a violation:\n%s", log.Timeline())
	}
	if m.State() != Passive {
		t.Fatal("manager with no applicable plan must be passive")
	}
}

func TestAssignContractPropagation(t *testing.T) {
	parentCtrl, c1, c2 := &stub{}, &stub{}, &stub{}
	parent, log := newTestManager(t, "AM_A", parentCtrl, nil, Policy{
		Split: func(c contract.Contract, n int) ([]contract.Contract, error) {
			return contract.SplitPipeline(c, n, nil)
		},
	})
	child1 := newTestManagerWithLog(t, "AM_P", c1, nil, Policy{}, log)
	child2 := newTestManagerWithLog(t, "AM_C", c2, nil, Policy{}, log)
	parent.AttachChild(child1)
	parent.AttachChild(child2)

	tr := contract.ThroughputRange{Lo: 0.3, Hi: 0.7}
	if err := parent.AssignContract(tr); err != nil {
		t.Fatal(err)
	}
	if child1.Contract() != tr || child2.Contract() != tr {
		t.Fatalf("children contracts = %v / %v", child1.Contract(), child2.Contract())
	}
	if log.Count("", trace.NewContr) != 3 {
		t.Fatalf("newContract events = %d, want 3", log.Count("", trace.NewContr))
	}
	if err := parent.AssignContract(nil); err == nil {
		t.Fatal("nil contract accepted")
	}
}

func TestFarmManagerRebuildsEngineFromContract(t *testing.T) {
	plat := grid.NewSMP(8)
	f, _ := skel.NewFarm(skel.FarmConfig{Name: "f", Env: skel.Env{TimeScale: 1000}, RM: plat.RM})
	a := abc.NewFarmABC(f, nil)
	log := trace.NewLog()
	m, err := NewFarmManager("AM_F", a, log, simclock.NewReal(), time.Millisecond, FarmLimits{})
	if err != nil {
		t.Fatal(err)
	}
	e1 := m.Engine()
	if e1 == nil {
		t.Fatal("farm manager needs a default engine")
	}
	m.AssignContract(contract.ThroughputRange{Lo: 0.3, Hi: 0.7})
	e2 := m.Engine()
	if e2 == e1 {
		t.Fatal("contract did not re-parameterize the engine")
	}
	lo, _ := e2.Constants().Lookup("FARM_LOW_PERF_LEVEL")
	if lo.AsStr() != "0.3" {
		t.Fatalf("engine lo = %v", lo)
	}
}

func TestPipelineCoordinatorIncDecRate(t *testing.T) {
	srcStage := skel.NewSource("prod", skel.Env{TimeScale: 1000}, 100, 10*time.Second, nil)
	srcABC := abc.NewSourceABC(srcStage)
	log := trace.NewLog()
	clock := simclock.NewReal()
	amP, err := NewSourceManager("AM_P", srcABC, log, clock, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	coord := &PipelineCoordinator{Producer: amP, Step: 2}
	amA, err := NewPipelineManager("AM_A", &stub{}, coord, log, clock, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	amA.AttachChild(amP)

	// notEnough from the farm: AM_A must send an incRate contract to AM_P.
	coord.OnChildViolation(amA, Violation{
		From: "AM_F", Tag: rules.TagNotEnoughTasks,
		Snapshot: contract.Snapshot{ArrivalRate: 0.1},
	})
	if log.Count("AM_A", trace.IncRate) != 1 {
		t.Fatalf("incRate missing:\n%s", log.Timeline())
	}
	tr, ok := amP.Contract().(contract.ThroughputRange)
	if !ok || tr.Lo != 0.2 {
		t.Fatalf("producer contract = %v, want lo=0.2", amP.Contract())
	}
	if srcStage.Interval() != 5*time.Second {
		t.Fatalf("source interval = %v, want 5s (rate 0.2)", srcStage.Interval())
	}

	// Repeated notEnough keeps compounding.
	coord.OnChildViolation(amA, Violation{Tag: rules.TagNotEnoughTasks,
		Snapshot: contract.Snapshot{ArrivalRate: 0.1}})
	if tr := amP.Contract().(contract.ThroughputRange); tr.Lo != 0.4 {
		t.Fatalf("compounded rate = %v, want 0.4", tr.Lo)
	}

	// tooMuch: decRate.
	coord.OnChildViolation(amA, Violation{Tag: rules.TagTooMuchTasks,
		Snapshot: contract.Snapshot{ArrivalRate: 0.8}})
	if log.Count("AM_A", trace.DecRate) != 1 {
		t.Fatalf("decRate missing:\n%s", log.Timeline())
	}
	if tr := amP.Contract().(contract.ThroughputRange); tr.Lo != 0.4 {
		t.Fatalf("decRate target = %v, want 0.8/2=0.4", tr.Lo)
	}
}

func TestPipelineCoordinatorEndStream(t *testing.T) {
	log := trace.NewLog()
	coord := &PipelineCoordinator{}
	amA, _ := NewPipelineManager("AM_A", &stub{}, coord, log, simclock.NewReal(), time.Millisecond)
	v := Violation{Tag: rules.TagNotEnoughTasks, Snapshot: contract.Snapshot{StreamDone: true}}
	coord.OnChildViolation(amA, v)
	coord.OnChildViolation(amA, v)
	if log.Count("AM_A", trace.EndStream) != 1 {
		t.Fatalf("endStream must be logged exactly once:\n%s", log.Timeline())
	}
	if log.Count("AM_A", trace.IncRate) != 0 {
		t.Fatal("no incRate after endStream")
	}
}

func TestManagerStartStopLoop(t *testing.T) {
	ctrl := &stub{}
	m, log := newTestManager(t, "AM", ctrl, nil, Policy{})
	m.AssignContract(contract.ThroughputRange{Lo: 1, Hi: 2})
	ctrl.setSnap(contract.Snapshot{Throughput: 0})
	m.Start()
	m.Start() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for log.Count("AM", trace.ContrLow) < 3 {
		if time.Now().After(deadline) {
			t.Fatal("loop never ran")
		}
		time.Sleep(time.Millisecond)
	}
	m.Stop()
	m.Stop() // idempotent
	n := log.Count("AM", trace.ContrLow)
	time.Sleep(20 * time.Millisecond)
	if log.Count("AM", trace.ContrLow) != n {
		t.Fatal("loop still running after Stop")
	}
}

func TestStartStopTree(t *testing.T) {
	parent, _ := newTestManager(t, "A", &stub{}, nil, Policy{})
	child, _ := newTestManager(t, "B", &stub{}, nil, Policy{})
	parent.AttachChild(child)
	parent.StartTree()
	parent.StopTree() // must not hang
}

func TestAttachChildSelfAndNil(t *testing.T) {
	m, _ := newTestManager(t, "A", &stub{}, nil, Policy{})
	m.AttachChild(nil)
	m.AttachChild(m)
	if len(m.Children()) != 0 {
		t.Fatal("self/nil attach must be ignored")
	}
}

func TestSecurityManagerPrepareWorker(t *testing.T) {
	plat := grid.NewTwoDomainGrid(1, 1)
	log := trace.NewLog()
	sec, err := NewSecurityManager(SecurityConfig{
		Log: log, Policy: security.Policy{Network: plat.Network},
	})
	if err != nil {
		t.Fatal(err)
	}
	var trusted, untrusted *grid.Node
	for _, n := range plat.RM.Nodes() {
		if n.Domain.Trusted {
			trusted = n
		} else {
			untrusted = n
		}
	}
	var installed security.Codec
	set := func(c security.Codec) { installed = c }

	if err := sec.PrepareWorker("w0", trusted, set); err != nil {
		t.Fatal(err)
	}
	if installed != nil {
		t.Fatal("trusted node must not be secured")
	}
	if err := sec.PrepareWorker("w1", untrusted, set); err != nil {
		t.Fatal(err)
	}
	if installed == nil || !installed.Secure() {
		t.Fatal("untrusted node must get a secure codec")
	}
	if sec.Secured() != 1 {
		t.Fatalf("Secured = %d", sec.Secured())
	}
	if log.Count("AM_sec", trace.Secured) != 1 || log.Count("AM_sec", trace.Prepared) != 1 {
		t.Fatalf("events missing:\n%s", log.Timeline())
	}
}

func TestSecurityManagerValidation(t *testing.T) {
	if _, err := NewSecurityManager(SecurityConfig{}); err == nil {
		t.Fatal("security manager without log accepted")
	}
}

func TestSecurityManagerReactiveLoop(t *testing.T) {
	plat := grid.NewTwoDomainGrid(0, 4)
	f, _ := skel.NewFarm(skel.FarmConfig{
		Name: "f", Env: skel.Env{TimeScale: 1000}, RM: plat.RM, InitialWorkers: 2,
	})
	in := make(chan *skel.Task)
	out := make(chan *skel.Task, 16)
	go func() {
		for range out {
		}
	}()
	go f.Run(context.Background(), in, out)
	deadline := time.Now().Add(5 * time.Second)
	for len(f.Workers()) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("farm never started")
		}
		time.Sleep(time.Millisecond)
	}
	fa := abc.NewFarmABC(f, nil)
	log := trace.NewLog()
	sec, _ := NewSecurityManager(SecurityConfig{
		Log: log, Policy: security.Policy{Network: plat.Network}, Period: time.Millisecond,
	})
	sec.Watch(fa)
	if n := sec.RunOnce(); n != 2 {
		t.Fatalf("reactive cycle secured %d bindings, want 2", n)
	}
	for _, w := range fa.Workers() {
		if !w.Secure {
			t.Fatalf("worker %s still insecure", w.ID)
		}
	}
	if n := sec.RunOnce(); n != 0 {
		t.Fatalf("idempotent re-scan secured %d more", n)
	}
	sec.Start()
	sec.Start()
	sec.Stop()
	sec.Stop()
	close(in)
}

func TestGeneralManagerModes(t *testing.T) {
	log := trace.NewLog()
	sec, _ := NewSecurityManager(SecurityConfig{Log: log})
	if _, err := NewGeneralManager("GM", nil, log, nil, Reactive); err == nil {
		t.Fatal("reactive without security manager accepted")
	}
	// Two-phase without a local security manager is allowed: the
	// participant may arrive later via SetParticipant (a remote link).
	if bare, err := NewGeneralManager("GM", nil, log, nil, TwoPhase); err != nil {
		t.Fatalf("two-phase with deferred participant rejected: %v", err)
	} else if bare.Participant() != nil {
		t.Fatal("participant should be unset without a security manager")
	}
	if _, err := NewGeneralManager("GM", nil, nil, nil, Unmanaged); err == nil {
		t.Fatal("GM without log accepted")
	}
	gm, err := NewGeneralManager("", sec, log, nil, Unmanaged)
	if err != nil {
		t.Fatal(err)
	}
	if gm.Name() != "GM" || gm.Mode() != Unmanaged {
		t.Fatalf("gm = %s/%v", gm.Name(), gm.Mode())
	}
	for _, m := range []CoordinationMode{TwoPhase, Reactive, Unmanaged} {
		if m.String() == "" {
			t.Fatal("mode string empty")
		}
	}
}

func TestGeneralManagerTwoPhaseCoordinate(t *testing.T) {
	plat := grid.NewTwoDomainGrid(0, 4)
	f, _ := skel.NewFarm(skel.FarmConfig{
		Name: "f", Env: skel.Env{TimeScale: 1000}, RM: plat.RM, InitialWorkers: 1,
	})
	fa := abc.NewFarmABC(f, nil)
	log := trace.NewLog()
	sec, _ := NewSecurityManager(SecurityConfig{
		Log: log, Policy: security.Policy{Network: plat.Network},
	})
	gm, _ := NewGeneralManager("GM", sec, log, nil, TwoPhase)
	gm.Coordinate(fa)

	in := make(chan *skel.Task)
	out := make(chan *skel.Task, 16)
	go func() {
		for range out {
		}
	}()
	go f.Run(context.Background(), in, out)
	deadline := time.Now().Add(5 * time.Second)
	for len(f.Workers()) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("farm never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := fa.Execute(rules.OpAddExecutor); err != nil {
		t.Fatal(err)
	}
	if log.Count("GM", trace.Intent) != 1 || log.Count("GM", trace.Committed) != 1 {
		t.Fatalf("two-phase events missing:\n%s", log.Timeline())
	}
	secure := 0
	for _, w := range fa.Workers() {
		if w.Secure {
			secure++
		}
	}
	// The initial worker was added before Coordinate's prepare existed
	// only if Run spawned it first; the one added through Execute must be
	// secure.
	if secure < 1 {
		t.Fatalf("no secure worker after two-phase add:\n%s", log.Timeline())
	}
	close(in)
}

// TestDeepHierarchyEscalation exercises the §3.1 management tree of
// farm(pipeline(seq, farm(seq), seq)): the inner farm's violation reaches
// the inner pipeline manager, which coordinates its descendants and
// reports to the AM of the outer, top-level farm.
func TestDeepHierarchyEscalation(t *testing.T) {
	log := trace.NewLog()
	var topGot []Violation
	top := newTestManagerWithLog(t, "AM_farmTop", &stub{}, nil, Policy{
		OnChildViolation: func(m *Manager, v Violation) { topGot = append(topGot, v) },
	}, log)
	pipe := newTestManagerWithLog(t, "AM_pipe", &stub{}, nil, Policy{
		OnChildViolation: func(m *Manager, v Violation) {
			// The inner pipeline cannot create input pressure itself:
			// escalate to the outer farm manager.
			m.Escalate(v.Tag, v.Snapshot)
		},
		Split: func(c contract.Contract, n int) ([]contract.Contract, error) {
			return contract.SplitPipeline(c, n, nil)
		},
	}, log)
	seq1 := newTestManagerWithLog(t, "AM_s1", &stub{}, nil, Policy{}, log)
	innerFarmCtrl := &stub{}
	innerFarm := newTestManagerWithLog(t, "AM_farmIn", innerFarmCtrl,
		rules.NewFarmEngine(rules.FarmConstants(0.3, 0.7, 1, 8, 4)), Policy{}, log)
	seq2 := newTestManagerWithLog(t, "AM_s2", &stub{}, nil, Policy{}, log)

	top.AttachChild(pipe)
	pipe.AttachChild(seq1)
	pipe.AttachChild(innerFarm)
	pipe.AttachChild(seq2)

	// Contract flows down three levels: farm split gives the pipe a
	// best-effort contract; the pipe splits that over its stages.
	if err := top.AssignContract(contract.ThroughputRange{Lo: 0.3, Hi: 0.7}); err != nil {
		t.Fatal(err)
	}
	if _, ok := seq1.Contract().(contract.BestEffort); !ok {
		t.Fatalf("leaf contract = %v, want best-effort via farm split", seq1.Contract())
	}

	// The inner farm starves: its violation must bubble to the top.
	innerFarmCtrl.setBeans([]rules.Bean{
		rules.NewBean(rules.BeanArrivalRate, rules.Num(0.1)),
		rules.NewBean(rules.BeanDepartureRate, rules.Num(0.1)),
		rules.NewBean(rules.BeanNumWorker, rules.Num(2)),
		rules.NewBean(rules.BeanQueueVariance, rules.Num(0)),
	})
	if err := innerFarm.RunOnce(); err != nil {
		t.Fatal(err)
	}
	if err := pipe.RunOnce(); err != nil {
		t.Fatal(err)
	}
	if err := top.RunOnce(); err != nil {
		t.Fatal(err)
	}
	if len(topGot) != 1 || topGot[0].From != "AM_pipe" || topGot[0].Tag != rules.TagNotEnoughTasks {
		t.Fatalf("top-level manager got %v", topGot)
	}
	// Both levels logged the violation report.
	if log.Count("AM_farmIn", trace.RaiseViol) != 1 || log.Count("AM_pipe", trace.RaiseViol) != 1 {
		t.Fatalf("raiseViol chain broken:\n%s", log.Timeline())
	}
}

func TestWarmUpSuppressesRules(t *testing.T) {
	ctrl := &stub{}
	engine := rules.NewFarmEngine(rules.FarmConstants(0.3, 0.7, 1, 8, 4))
	log := trace.NewLog()
	clock := simclock.NewManual(time.Date(2009, 5, 25, 0, 0, 0, 0, time.UTC))
	m, err := New(Config{
		Name: "AM_F", Clock: clock, Controller: ctrl, Engine: engine,
		Log: log, WarmUp: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.AssignContract(contract.ThroughputRange{Lo: 0.3, Hi: 0.7})
	ctrl.setBeans([]rules.Bean{
		rules.NewBean(rules.BeanArrivalRate, rules.Num(0.5)),
		rules.NewBean(rules.BeanDepartureRate, rules.Num(0.1)),
		rules.NewBean(rules.BeanNumWorker, rules.Num(2)),
		rules.NewBean(rules.BeanQueueVariance, rules.Num(0)),
	})
	ctrl.setSnap(contract.Snapshot{Throughput: 0.1})

	// Within warm-up: verdicts logged, no actuators fired.
	m.RunOnce()
	if len(ctrl.executed()) != 0 {
		t.Fatalf("rules fired during warm-up: %v", ctrl.executed())
	}
	if log.Count("AM_F", trace.ContrLow) != 1 {
		t.Fatal("verdict logging must stay on during warm-up")
	}

	// After warm-up: the same readings trigger the actuators.
	clock.Advance(11 * time.Second)
	m.RunOnce()
	if len(ctrl.executed()) == 0 {
		t.Fatal("rules did not fire after warm-up")
	}
	if m.WarmUp() != 10*time.Second {
		t.Fatalf("WarmUp = %v", m.WarmUp())
	}
	m.SetWarmUp(time.Minute)
	if m.WarmUp() != time.Minute {
		t.Fatal("SetWarmUp did not apply")
	}
}

func TestStateString(t *testing.T) {
	if Active.String() != "active" || Passive.String() != "passive" {
		t.Fatal("state strings wrong")
	}
}

func TestThroughputBounds(t *testing.T) {
	lo, hi := throughputBounds(contract.ThroughputRange{Lo: 1, Hi: 2})
	if lo != 1 || hi != 2 {
		t.Fatal("direct bounds wrong")
	}
	lo, hi = throughputBounds(contract.Conjunction{contract.SecureComms{}, contract.ThroughputRange{Lo: 3, Hi: 4}})
	if lo != 3 || hi != 4 {
		t.Fatal("conjunction bounds wrong")
	}
	lo, _ = throughputBounds(contract.BestEffort{})
	if lo != 0 {
		t.Fatal("best effort bounds wrong")
	}
}

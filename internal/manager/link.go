// The manager-link seam: the parent/child reporting channel of the P_spl
// hierarchy made pluggable, so a child manager can live in a different
// process from its parent. The default (no link installed) keeps the
// in-process direct path of reportViolation byte for byte; a RemoteLink
// (remotelink.go) carries the same traffic over internal/wire's sealed
// frames with lease-based failure detection and downtime catch-up.
package manager

import (
	"context"
	"fmt"

	"repro/internal/trace"
)

// LinkState is the failure-detection state of a manager link, driven by
// heartbeat/lease expiry: up → suspect (a heartbeat missed, lease still
// live) → partitioned (lease expired) → reattached (a fresh attach
// succeeded; collapses back to up after catch-up completes).
type LinkState int32

// Link states.
const (
	LinkUp LinkState = iota
	LinkSuspect
	LinkPartitioned
	LinkReattached
)

// String implements fmt.Stringer.
func (s LinkState) String() string {
	switch s {
	case LinkSuspect:
		return "suspect"
	case LinkPartitioned:
		return "partitioned"
	case LinkReattached:
		return "reattached"
	default:
		return "up"
	}
}

// Link is the child side of a parent/child management channel. Deliver
// either hands the violation to the parent exactly once or returns an
// error, in which case the caller parks it in the manager's bounded
// violation buffer — the same buffer an in-process parent crash uses — and
// re-delivers after reattach per the link's catch-up policy.
type Link interface {
	// Deliver sends one violation to the parent. An error means the link
	// is down (or went down mid-send) and the violation was NOT delivered.
	Deliver(v Violation) error
	// Down reports whether the link is currently unusable for delivery.
	Down() bool
	// State returns the link's current failure-detection state.
	State() LinkState
	// TakeCatchUp returns and clears the number of catch-up MAPE cycles
	// owed after the latest reattach (0 when none is pending).
	TakeCatchUp() int
}

// SetLink installs the parent link. Install before the control loop
// starts; a nil link (the default) keeps the in-process parent path.
func (m *Manager) SetLink(l Link) {
	m.mu.Lock()
	m.link = l
	m.mu.Unlock()
}

// Link returns the installed parent link (nil for in-process hierarchies).
func (m *Manager) Link() Link {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.link
}

// CycleSeq returns the manager's MAPE cycle counter: incremented once per
// completed RunOnce, checkpointed, and acknowledged by the parent endpoint
// as the watermark that sizes downtime catch-up.
func (m *Manager) CycleSeq() uint64 { return m.cycleSeq.Load() }

// AckedCycle returns the last MAPE cycle the parent acknowledged over the
// link (0 before the first ack).
func (m *Manager) AckedCycle() uint64 { return m.ackedCycle.Load() }

// setAckedCycle records the parent's watermark; called by the link on every
// acknowledged lease renewal or report.
func (m *Manager) setAckedCycle(seq uint64) {
	for {
		cur := m.ackedCycle.Load()
		if seq <= cur || m.ackedCycle.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// CatchUpCycles returns how many catch-up MAPE cycles this manager has run
// after link reattaches.
func (m *Manager) CatchUpCycles() uint64 { return m.catchUpCycles.Load() }

// runCatchUp runs the catch-up cycles the link owes after a reattach:
// extra RunOnce iterations flagged CatchUp in their decision records, so
// the trace distinguishes a re-evaluation covering a partition window from
// a live cycle. Called by Run after each iteration; a no-op without a link
// or without a pending reattach.
func (m *Manager) runCatchUp(ctx context.Context) {
	l := m.Link()
	if l == nil {
		return
	}
	n := l.TakeCatchUp()
	if n <= 0 {
		return
	}
	m.event(trace.CatchUp, fmt.Sprintf("running %d catch-up cycles", n))
	for i := 0; i < n; i++ {
		if ctx != nil && ctx.Err() != nil {
			return
		}
		m.cycleCatchUp = true
		err := m.RunOnce()
		m.cycleCatchUp = false
		m.catchUpCycles.Add(1)
		if err != nil {
			m.log.Record(m.clock.Now(), m.cfg.Name, trace.Kind("error"), err.Error())
		}
	}
}

// catchUpBudget bounds the `all` catch-up policy: a manager partitioned
// for hours must not replay thousands of stale cycles — beyond the budget
// the oldest missed cycles are summarized by the freshest ones.
const catchUpBudget = 32

// CatchUpPolicy selects how many of the MAPE cycles missed during a
// partition are re-run on reattach.
type CatchUpPolicy int

// Catch-up policies.
const (
	// CatchUpLatest re-runs a single cycle: the freshest evidence wins,
	// buffered violations are coalesced to the newest per (From, Tag).
	CatchUpLatest CatchUpPolicy = iota
	// CatchUpSkip runs no catch-up cycles; buffered violations still flush
	// (exactly-once delivery is not a policy knob).
	CatchUpSkip
	// CatchUpAll re-runs every missed cycle up to catchUpBudget.
	CatchUpAll
)

// String implements fmt.Stringer.
func (p CatchUpPolicy) String() string {
	switch p {
	case CatchUpSkip:
		return "skip"
	case CatchUpAll:
		return "all"
	default:
		return "latest"
	}
}

// ParseCatchUpPolicy maps the flag spelling to a policy.
func ParseCatchUpPolicy(s string) (CatchUpPolicy, error) {
	switch s {
	case "skip":
		return CatchUpSkip, nil
	case "latest", "":
		return CatchUpLatest, nil
	case "all":
		return CatchUpAll, nil
	}
	return CatchUpLatest, fmt.Errorf("manager: unknown catch-up policy %q (want skip|latest|all)", s)
}

// owedCycles sizes the catch-up debt from the cycle counter and the
// parent's watermark under the given policy. The absolute difference
// covers both directions: a partitioned child ran ahead of the last ack,
// while a freshly restarted child process (counter reset to zero) finds
// the parent's watermark ahead of it — the dagu-style backfill case.
func owedCycles(p CatchUpPolicy, cycleSeq, acked uint64) int {
	diff := cycleSeq - acked
	if acked > cycleSeq {
		diff = acked - cycleSeq
	}
	if diff == 0 {
		return 0
	}
	switch p {
	case CatchUpSkip:
		return 0
	case CatchUpAll:
		if diff > catchUpBudget {
			return catchUpBudget
		}
		return int(diff)
	default:
		return 1
	}
}

package manager

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/abc"
	"repro/internal/contract"
	"repro/internal/grid"
	"repro/internal/rules"
	"repro/internal/runtime"
	"repro/internal/security"
	"repro/internal/simclock"
	"repro/internal/skel"
	"repro/internal/trace"
)

func TestCheckpointRestoreRoundtrip(t *testing.T) {
	ctrl := &stub{}
	m, log := newTestManager(t, "AM", ctrl, nil, Policy{})
	want := contract.ThroughputRange{Lo: 0.3, Hi: 0.7}
	if err := m.AssignContract(want); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.LastCheckpoint(); ok {
		t.Fatal("checkpoint exists before any MAPE cycle")
	}
	ctrl.setSnap(contract.Snapshot{Throughput: 0.5})
	if err := m.RunOnce(); err != nil {
		t.Fatal(err)
	}
	cp, ok := m.LastCheckpoint()
	if !ok {
		t.Fatal("no checkpoint after RunOnce")
	}
	if cp.Contract.Describe() != want.Describe() || cp.State != Active {
		t.Fatalf("checkpoint = %+v", cp)
	}

	m.Crash()
	if !m.Crashed() {
		t.Fatal("Crashed() = false after Crash")
	}
	if _, ok := m.Contract().(contract.BestEffort); !ok {
		t.Fatalf("crash kept the contract: %v", m.Contract())
	}
	if _, ok := m.LastCheckpoint(); !ok {
		t.Fatal("crash wiped the durable checkpoint")
	}

	if err := m.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if m.Crashed() {
		t.Fatal("Crashed() = true after Restore")
	}
	if m.Contract().Describe() != want.Describe() {
		t.Fatalf("restored contract = %v, want %v", m.Contract(), want)
	}
	if log.Count("AM", trace.Crashed) != 1 || log.Count("AM", trace.Restored) != 1 {
		t.Fatalf("crash/restore events missing:\n%s", log.Timeline())
	}
}

func TestRestoreRebasesWarmUpRemainder(t *testing.T) {
	ctrl := &stub{}
	log := trace.NewLog()
	clock := simclock.NewManual(time.Unix(0, 0))
	m, err := New(Config{
		Name: "AM", Clock: clock, Period: time.Second,
		Controller: ctrl, Log: log, WarmUp: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.AssignContract(contract.MinThroughput(0.5))
	clock.Advance(6 * time.Second)
	m.RunOnce() // checkpoint with 4s of warm-up outstanding
	cp, _ := m.LastCheckpoint()
	if cp.WarmUpRemaining != 4*time.Second {
		t.Fatalf("WarmUpRemaining = %v, want 4s", cp.WarmUpRemaining)
	}
	m.Crash()
	clock.Advance(time.Second)
	if err := m.Restore(cp); err != nil {
		t.Fatal(err)
	}
	// The restored manager observes exactly the checkpointed remainder,
	// not the full original window.
	if got := m.WarmUp(); got != 4*time.Second {
		t.Fatalf("restored warm-up window = %v, want 4s", got)
	}
}

// TestRestoreReattachesViaParentResplit: the parent's live contract — not
// the checkpointed sub-contract — is authoritative after a child restart.
func TestRestoreReattachesViaParentResplit(t *testing.T) {
	split := func(c contract.Contract, n int) ([]contract.Contract, error) {
		out := make([]contract.Contract, n)
		for i := range out {
			out[i] = c
		}
		return out, nil
	}
	parent, _ := newTestManager(t, "P", &stub{}, nil, Policy{Split: split})
	child, _ := newTestManager(t, "C", &stub{}, nil, Policy{})
	parent.AttachChild(child)

	oldC := contract.MinThroughput(0.4)
	if err := parent.AssignContract(oldC); err != nil {
		t.Fatal(err)
	}
	if err := child.RunOnce(); err != nil { // checkpoint carries the old sub
		t.Fatal(err)
	}
	cp, _ := child.LastCheckpoint()
	if cp.Contract.Describe() != oldC.Describe() {
		t.Fatalf("checkpointed sub = %v", cp.Contract)
	}

	newC := contract.MinThroughput(0.9) // contract moved on while child was down
	if err := parent.AssignContract(newC); err != nil {
		t.Fatal(err)
	}
	child.Crash()
	if err := child.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if child.Contract().Describe() != newC.Describe() {
		t.Fatalf("restored child contract = %v, want the parent's re-split %v",
			child.Contract(), newC)
	}
}

func TestViolationBufferedWhileParentDown(t *testing.T) {
	parent, _ := newTestManager(t, "P", &stub{}, nil, Policy{})
	child, _ := newTestManager(t, "C", &stub{}, nil, Policy{})
	parent.AttachChild(child)
	if err := parent.RunOnce(); err != nil { // seed the parent checkpoint
		t.Fatal(err)
	}

	parent.Crash()
	child.reportViolation(rules.TagNotEnoughTasks, contract.Snapshot{Throughput: 0.1})
	if got := child.BufferedViolations(); got != 1 {
		t.Fatalf("BufferedViolations = %d, want 1", got)
	}
	select {
	case v := <-parent.violations:
		t.Fatalf("violation %v delivered to a crashed parent", v)
	default:
	}

	cp, _ := parent.LastCheckpoint()
	if err := parent.Restore(cp); err != nil {
		t.Fatal(err)
	}
	child.flushBuffered()
	select {
	case v := <-parent.violations:
		if v.From != "C" || v.Tag != rules.TagNotEnoughTasks {
			t.Fatalf("flushed violation = %+v", v)
		}
	default:
		t.Fatal("buffered violation not re-delivered after parent recovery")
	}
	if got := child.BufferedViolations(); got != 0 {
		t.Fatalf("buffer not drained: %d", got)
	}
}

func TestViolationBufferDedupeAndDropOldest(t *testing.T) {
	m, _ := newTestManager(t, "C", &stub{}, nil, Policy{})

	// Duplicate causality ids coalesce: re-raising the same violation every
	// cycle of a long outage must not flush distinct evidence out.
	m.bufferViolation(Violation{From: "C", CauseID: 7})
	m.bufferViolation(Violation{From: "C", CauseID: 7})
	if got := m.BufferedViolations(); got != 1 {
		t.Fatalf("duplicate CauseID buffered twice: %d", got)
	}

	// Overflow of *distinct* causes drops oldest-first and counts the
	// drops (distinct tags: same-tag re-raises coalesce, tested below).
	for i := 0; i < violBufCap+2; i++ {
		m.bufferViolation(Violation{
			From: "C", Tag: fmt.Sprintf("tag%d", i), CauseID: uint64(100 + i),
		})
	}
	if got := m.BufferedViolations(); got != violBufCap {
		t.Fatalf("buffer size = %d, want cap %d", got, violBufCap)
	}
	if got := m.ViolationDrops(); got != 3 { // the CauseID=7 entry plus two overflow
		t.Fatalf("ViolationDrops = %d, want 3", got)
	}
	m.mu.Lock()
	oldest := m.violBuf[0].CauseID
	newest := m.violBuf[len(m.violBuf)-1].CauseID
	m.mu.Unlock()
	if oldest != 102 || newest != uint64(100+violBufCap+1) {
		t.Fatalf("drop order wrong: oldest=%d newest=%d", oldest, newest)
	}
}

// TestSupervisedRestartRestoresContract is the self-healing round trip end
// to end: a supervised control loop is killed by an injected crash, the
// supervisor restarts it, and the restarted loop replays its checkpoint so
// the contract is enforced again.
func TestSupervisedRestartRestoresContract(t *testing.T) {
	ctrl := &stub{}
	ctrl.setSnap(contract.Snapshot{Throughput: 1.0})
	m, log := newTestManager(t, "AM", ctrl, nil, Policy{})
	want := contract.MinThroughput(0.5)
	if err := m.AssignContract(want); err != nil {
		t.Fatal(err)
	}
	if err := m.RunOnce(); err != nil { // seed the checkpoint
		t.Fatal(err)
	}
	m.SetSupervision(runtime.SupervisorConfig{
		Backoff: runtime.Backoff{Base: time.Millisecond, Jitter: -1},
	})
	var fire atomic.Bool
	fire.Store(true)
	m.SetRunFault(func() RunFault {
		if fire.CompareAndSwap(true, false) {
			return RunFault{Crash: true}
		}
		return RunFault{}
	})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- m.RunTree(ctx) }()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if m.Supervisor().Restarts() >= 1 && !m.Crashed() &&
			m.Contract().Describe() == want.Describe() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restart never healed: restarts=%d crashed=%v contract=%v\n%s",
				m.Supervisor().Restarts(), m.Crashed(), m.Contract(), log.Timeline())
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("supervised tree exit: %v", err)
	}
	if m.Supervisor().LastCause() == "" {
		t.Fatal("LastCause empty after a restart")
	}
	if log.Count("AM", trace.Crashed) == 0 || log.Count("AM", trace.Restarted) == 0 ||
		log.Count("AM", trace.Restored) == 0 {
		t.Fatalf("self-healing events missing:\n%s", log.Timeline())
	}
}

// TestTwoPhaseAbortAndReissue kills the security participant between
// intent and commit: the coordinator must abort (rolling the prepared
// worker back, so no plaintext binding survives) and re-issue the intent
// once the participant is back.
func TestTwoPhaseAbortAndReissue(t *testing.T) {
	plat := grid.NewTwoDomainGrid(0, 4)
	f, err := skel.NewFarm(skel.FarmConfig{
		Name: "f", Env: skel.Env{TimeScale: 1000}, RM: plat.RM, InitialWorkers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	fa := abc.NewFarmABC(f, nil)
	log := trace.NewLog()
	clock := simclock.NewManual(time.Unix(0, 0))
	sec, err := NewSecurityManager(SecurityConfig{
		Clock: clock, Log: log, Policy: security.Policy{Network: plat.Network},
	})
	if err != nil {
		t.Fatal(err)
	}
	gm, err := NewGeneralManager("GM", sec, log, clock, TwoPhase)
	if err != nil {
		t.Fatal(err)
	}
	gm.Coordinate(fa)

	in := make(chan *skel.Task)
	out := make(chan *skel.Task, 16)
	go func() {
		for range out {
		}
	}()
	go f.Run(context.Background(), in, out)
	defer close(in)
	deadline := time.Now().Add(5 * time.Second)
	for len(f.Workers()) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("farm never started")
		}
		time.Sleep(time.Millisecond)
	}

	// Participant dies; the next ADD aborts between intent and commit.
	sec.FailFor(10 * time.Second)
	if _, err := fa.Execute(rules.OpAddExecutor); !errors.Is(err, abc.ErrManagerDown) {
		t.Fatalf("Execute with participant down: err = %v, want ErrManagerDown", err)
	}
	if len(f.Workers()) != 1 {
		t.Fatalf("aborted add left %d workers, want the rollback to 1", len(f.Workers()))
	}
	if gm.AbortedIntents() != 1 || gm.PendingIntents() != 1 {
		t.Fatalf("aborted=%d pending=%d, want 1/1", gm.AbortedIntents(), gm.PendingIntents())
	}
	if log.Count("GM", trace.Intent) != 1 || log.Count("GM", trace.Aborted) != 1 {
		t.Fatalf("abort events missing:\n%s", log.Timeline())
	}

	// Still down: re-issue must refuse to run.
	if n := gm.ReissueOnce(); n != 0 {
		t.Fatalf("ReissueOnce with participant down committed %d", n)
	}

	// Participant recovers; the pending intent is re-driven through the
	// full intent -> prepare -> commit ladder.
	clock.Advance(11 * time.Second)
	if !sec.Available() {
		t.Fatal("participant still down after its window")
	}
	if n := gm.ReissueOnce(); n != 1 {
		t.Fatalf("ReissueOnce after recovery committed %d, want 1", n)
	}
	if gm.ReissuedIntents() != 1 || gm.PendingIntents() != 0 {
		t.Fatalf("reissued=%d pending=%d, want 1/0", gm.ReissuedIntents(), gm.PendingIntents())
	}
	if log.Count("GM", trace.Reissued) != 1 || log.Count("GM", trace.Committed) != 1 {
		t.Fatalf("re-issue events missing:\n%s", log.Timeline())
	}
	workers := fa.Workers()
	if len(workers) != 2 {
		t.Fatalf("workers after re-issue = %d, want 2", len(workers))
	}
	// The worker added through the two-phase path must never be plaintext
	// on the untrusted domain: the aborted one was rolled back before it
	// could receive a task, the re-issued one prepared before first
	// dispatch. (The initial worker predates the prepare hook — the farm
	// spawned it before Coordinate existed — so it is out of scope here.)
	secured := 0
	for _, w := range workers {
		if w.Secure {
			secured++
		}
	}
	if secured < 1 {
		t.Fatalf("re-issued worker is plaintext on an untrusted node:\n%s", log.Timeline())
	}
	// Idempotence: nothing pending, nothing re-issued twice.
	if n := gm.ReissueOnce(); n != 0 {
		t.Fatalf("second ReissueOnce committed %d, want 0", n)
	}
}

// TestSecurityUnavailablePrepareInstallsNothing: a down participant must
// refuse the prepare outright — no codec may reach the binding, and the
// down-window must clear on the participant's own clock.
func TestSecurityUnavailablePrepareInstallsNothing(t *testing.T) {
	plat := grid.NewTwoDomainGrid(0, 2)
	log := trace.NewLog()
	clock := simclock.NewManual(time.Unix(0, 0))
	sec, err := NewSecurityManager(SecurityConfig{
		Clock: clock, Log: log, Policy: security.Policy{Network: plat.Network},
	})
	if err != nil {
		t.Fatal(err)
	}
	var node *grid.Node
	for _, n := range plat.RM.Nodes() {
		node = n
		break
	}
	sec.FailFor(10 * time.Second)
	if sec.Crashes() != 1 {
		t.Fatalf("Crashes = %d", sec.Crashes())
	}
	installed := false
	err = sec.prepareWorker(0, "w9", node, func(security.Codec) { installed = true })
	if !errors.Is(err, abc.ErrManagerDown) {
		t.Fatalf("err = %v, want ErrManagerDown", err)
	}
	if installed {
		t.Fatal("codec installed by a down manager")
	}
	if n := sec.RunOnce(); n != 0 {
		t.Fatalf("reactive scan ran while down: %d", n)
	}
	clock.Advance(11 * time.Second)
	if err := sec.prepareWorker(0, "w9", node, func(security.Codec) { installed = true }); err != nil {
		t.Fatalf("prepare after recovery: %v", err)
	}
	if !installed {
		t.Fatal("recovered manager installed no codec on the untrusted node")
	}
}

// TestViolationBufferCoalescesSameTagReRaises is the regression test for
// the long-partition starvation bug: every MAPE cycle of an outage
// re-raises a standing violation under a fresh causality id, and before
// coalescing those re-raises marched through the bounded buffer evicting
// every *distinct* older cause silently. Now same-(From, Tag) re-raises
// fold onto their first buffered entry — original CauseID kept, evidence
// refreshed — and genuine evictions are counted and traced.
func TestViolationBufferCoalescesSameTagReRaises(t *testing.T) {
	m, log := newTestManager(t, "C", &stub{}, nil, Policy{})

	// A distinct early cause that the old behavior would have evicted.
	m.bufferViolation(Violation{From: "C", Tag: rules.TagTooMuchTasks, CauseID: 1})

	// violBufCap+8 re-raises of the same tag, each with a fresh CauseID —
	// the shape a real outage produces.
	for i := 0; i < violBufCap+8; i++ {
		m.bufferViolation(Violation{
			From: "C", Tag: rules.TagNotEnoughTasks, CauseID: uint64(10 + i),
			Snapshot: contract.Snapshot{ParDegree: i},
		})
	}

	if got := m.BufferedViolations(); got != 2 {
		t.Fatalf("buffer size = %d, want 2 (one per distinct cause)", got)
	}
	if got := m.ViolationDrops(); got != 0 {
		t.Fatalf("ViolationDrops = %d, want 0: nothing should have been evicted", got)
	}
	m.mu.Lock()
	early, coalesced := m.violBuf[0], m.violBuf[1]
	m.mu.Unlock()
	if early.CauseID != 1 {
		t.Fatalf("distinct early cause evicted: buffer head cause=%d", early.CauseID)
	}
	if coalesced.CauseID != 10 {
		t.Fatalf("coalesced entry lost its original CauseID: %d, want 10", coalesced.CauseID)
	}
	if coalesced.Snapshot.ParDegree != violBufCap+7 {
		t.Fatalf("coalesced entry carries stale evidence: pardegree=%d", coalesced.Snapshot.ParDegree)
	}

	// Genuine evictions (distinct tags beyond the cap) are traced, not
	// silent: one violDropped event per evicted cause.
	for i := 0; i < violBufCap; i++ {
		m.bufferViolation(Violation{
			From: "C", Tag: fmt.Sprintf("distinct%d", i), CauseID: uint64(1000 + i),
		})
	}
	wantDrops := 2 // cap 64, had 2, added 64 distinct
	if got := m.ViolationDrops(); got != uint64(wantDrops) {
		t.Fatalf("ViolationDrops = %d, want %d", got, wantDrops)
	}
	if got := log.Count("C", trace.ViolDropped); got != wantDrops {
		t.Fatalf("violDropped trace events = %d, want %d", got, wantDrops)
	}
}

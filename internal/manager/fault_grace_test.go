package manager

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/abc"
	"repro/internal/grid"
	"repro/internal/runtime"
	"repro/internal/runtime/leaktest"
	"repro/internal/simclock"
	"repro/internal/skel"
	"repro/internal/trace"
)

// TestSuspectGraceShieldsFreshWorkers is the regression test for the stall
// detector's false positive on fresh workers: a worker that has served
// nothing yet (recruitment, handshake and a long first task all look like a
// stall) must not be suspected until SuspectGrace has elapsed from the time
// the detector first saw it. Driven entirely on a manual clock so the
// timing is exact.
func TestSuspectGraceShieldsFreshWorkers(t *testing.T) {
	clock := simclock.NewManual(time.Unix(0, 0))
	env := skel.Env{Clock: clock, TimeScale: 1}
	f, err := skel.NewFarm(skel.FarmConfig{
		Name: "grace", Env: env, RM: grid.NewSMP(8).RM, InitialWorkers: 2,
		Dispatch: skel.RoundRobin,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan *skel.Task)
	out := make(chan *skel.Task, 64)
	drained := make(chan int, 1)
	go func() {
		n := 0
		for range out {
			n++
		}
		drained <- n
	}()
	runDone := make(chan struct{})
	go func() { f.Run(context.Background(), in, out); close(runDone) }()

	// Ten 120s tasks: both workers start their first task and park on the
	// manual clock; the rest queue up, so QueueLen > 0 for everyone.
	const tasks = 10
	for i := 0; i < tasks; i++ {
		in <- &skel.Task{ID: skel.NextTaskID(), Work: 120 * time.Second}
	}
	close(in)
	deadline := time.Now().Add(10 * time.Second)
	for clock.PendingWaiters() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("workers never started their first task")
		}
		time.Sleep(time.Millisecond)
	}

	log := trace.NewLog()
	ft, err := NewFaultManager(FaultConfig{
		Log: log, Clock: clock, Period: time.Second,
		SuspectAfter: 5 * time.Second, SuspectGrace: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ft.Watch(abc.NewFarmABC(f, nil))

	ft.RunOnce() // t=0: first sighting + progress baseline recorded

	// t=20s: far beyond SuspectAfter, but both workers have Served == 0
	// and are inside the 60s grace — they must survive. Before the grace
	// fix this cycle killed them both.
	clock.Advance(20 * time.Second)
	ft.RunOnce()
	if got := ft.Suspected(); got != 0 {
		t.Fatalf("fresh workers suspected during grace: Suspected = %d", got)
	}
	for _, w := range f.Workers() {
		if w.Failed {
			t.Fatalf("worker %s killed during its grace window", w.ID)
		}
	}

	// t=100s: the grace has expired and the workers still show zero
	// progress with queued work — now the detector must fire.
	clock.Advance(80 * time.Second)
	ft.RunOnce()
	if got := ft.Suspected(); got == 0 {
		t.Fatalf("stalled workers never suspected after grace:\n%s", log.Timeline())
	}

	// Drain: keep running detection cycles (recovery + replacement) and
	// advancing modelled time until the farm completes the stream.
	go func() {
		for {
			select {
			case <-runDone:
				return
			default:
			}
			ft.RunOnce()
			clock.Advance(5 * time.Second)
			time.Sleep(100 * time.Microsecond)
		}
	}()
	select {
	case <-runDone:
	case <-time.After(30 * time.Second):
		t.Fatal("farm never drained after suspicion/recovery")
	}
	if n := <-drained; n != tasks {
		t.Fatalf("completed %d/%d after stall recovery", n, tasks)
	}
}

// TestSuspectStormRecoversEachWorkerOnce kills every worker of a farm
// concurrently and requires the fault manager to recover each crash exactly
// once, with the whole stream still collected exactly once. Run under
// -race in CI; leaktest guards the goroutine ledger.
func TestSuspectStormRecoversEachWorkerOnce(t *testing.T) {
	defer leaktest.Check(t)()
	const workers = 4
	f, err := skel.NewFarm(skel.FarmConfig{
		Name: "storm", Env: skel.Env{TimeScale: 500}, RM: grid.NewSMP(16).RM,
		InitialWorkers: workers, Dispatch: skel.RoundRobin,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan *skel.Task)
	out := make(chan *skel.Task, 256)
	seen := map[uint64]int{}
	var seenMu sync.Mutex
	drained := make(chan struct{})
	go func() {
		for r := range out {
			seenMu.Lock()
			seen[r.ID]++
			seenMu.Unlock()
		}
		close(drained)
	}()
	runDone := make(chan struct{})
	go func() { f.Run(context.Background(), in, out); close(runDone) }()

	log := trace.NewLog()
	ft, err := NewFaultManager(FaultConfig{Log: log, Period: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	fa := abc.NewFarmABC(f, nil)
	ft.Watch(fa)
	ft.Start()

	const tasks = 60
	go func() {
		for i := 0; i < tasks; i++ {
			in <- &skel.Task{ID: skel.NextTaskID(), Work: 400 * time.Millisecond}
		}
		close(in)
	}()

	// Give the dispatcher a moment to spread work, then kill every
	// initial worker concurrently — the storm.
	victims := make([]string, 0, workers)
	deadline := time.Now().Add(5 * time.Second)
	for len(f.Workers()) < workers {
		if time.Now().After(deadline) {
			t.Fatal("farm never started")
		}
		time.Sleep(time.Millisecond)
	}
	for _, w := range f.Workers() {
		victims = append(victims, w.ID)
	}
	var wg sync.WaitGroup
	for _, id := range victims {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			_ = f.KillWorker(id)
		}(id)
	}
	wg.Wait()

	// Every crash recovered exactly once.
	deadline = time.Now().Add(30 * time.Second)
	for ft.Recovered() < workers {
		if time.Now().After(deadline) {
			t.Fatalf("recovered %d/%d crashes:\n%s", ft.Recovered(), workers, log.Timeline())
		}
		time.Sleep(time.Millisecond)
	}

	select {
	case <-runDone:
	case <-time.After(60 * time.Second):
		t.Fatal("farm never finished after the storm")
	}
	<-drained
	ft.Stop()

	if got := ft.Recovered(); got != workers {
		t.Fatalf("Recovered = %d, want exactly %d (each crash once)", got, workers)
	}
	seenMu.Lock()
	defer seenMu.Unlock()
	if len(seen) != tasks {
		t.Fatalf("collected %d distinct tasks, want %d", len(seen), tasks)
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("task %d collected %d times", id, c)
		}
	}
}

// TestFaultManagerDegradedMode forces recruitment exhaustion during
// recovery: the manager must keep recovering stranded tasks onto
// survivors, raise the violation upward exactly once (P_rol), count the
// failed actuations, and leave degraded mode once recruitment succeeds
// again.
func TestFaultManagerDegradedMode(t *testing.T) {
	rm := grid.NewSMP(8).RM
	f, err := skel.NewFarm(skel.FarmConfig{
		Name: "deg", Env: skel.Env{TimeScale: 200}, RM: rm, InitialWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan *skel.Task)
	out := make(chan *skel.Task, 64)
	count := make(chan int, 1)
	go func() {
		n := 0
		for range out {
			n++
		}
		count <- n
	}()
	runDone := make(chan struct{})
	go func() { f.Run(context.Background(), in, out); close(runDone) }()
	deadline := time.Now().Add(5 * time.Second)
	for len(f.Workers()) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("farm never started")
		}
		time.Sleep(time.Millisecond)
	}

	log := trace.NewLog()
	ft, err := NewFaultManager(FaultConfig{
		Log: log, Period: time.Millisecond,
		Retry: runtime.Backoff{Base: time.Microsecond, Max: 10 * time.Microsecond,
			Jitter: -1, Attempts: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	ft.Watch(abc.NewFarmABC(f, nil))

	for i := 0; i < 12; i++ {
		in <- &skel.Task{ID: skel.NextTaskID(), Work: 500 * time.Millisecond}
	}

	// Kill one worker while recruitment is vetoed: recovery onto the
	// survivor works, replacement fails -> degraded mode, raised once.
	rm.SetRecruitFault(func(grid.Request) error { return grid.ErrExhausted })
	if err := f.KillWorker(f.Workers()[0].ID); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for ft.RunOnce() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("crash never detected")
		}
		time.Sleep(time.Millisecond)
	}
	if !ft.Degraded() {
		t.Fatalf("manager not degraded after recruitment exhaustion:\n%s", log.Timeline())
	}
	if ft.ActuatorFailures() == 0 {
		t.Fatal("failed recruitment not counted as actuator failure")
	}
	if log.Count("AM_ft", trace.RaiseViol) != 1 {
		t.Fatalf("RaiseViol logged %d times, want once per transition:\n%s",
			log.Count("AM_ft", trace.RaiseViol), log.Timeline())
	}

	// Clear the outage: the next crash recovery recruits fine and the
	// manager re-enters active mode.
	rm.SetRecruitFault(nil)
	victim := ""
	for _, w := range f.Workers() {
		if !w.Failed {
			victim = w.ID
			break
		}
	}
	if victim == "" {
		t.Fatal("no live worker left to crash")
	}
	if err := f.KillWorker(victim); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for ft.Degraded() {
		if time.Now().After(deadline) {
			t.Fatalf("manager stuck degraded after recruitment recovered:\n%s", log.Timeline())
		}
		ft.RunOnce()
		time.Sleep(time.Millisecond)
	}
	if log.Count("AM_ft", trace.EnterActive) == 0 {
		t.Fatalf("recovery to active not logged:\n%s", log.Timeline())
	}

	// Drain under continued supervision: the second crash may still need
	// recovery cycles to redistribute its stranded tasks.
	ft.Start()
	close(in)
	select {
	case <-runDone:
	case <-time.After(30 * time.Second):
		t.Fatal("farm never drained")
	}
	ft.Stop()
	if n := <-count; n != 12 {
		t.Fatalf("completed %d/12", n)
	}
}

// TestFaultManagerQuarantinesCrashyNode verifies the node circuit breaker:
// with QuarantineAfter=1, a single worker crash quarantines its node from
// further recruitment for the cooldown window.
func TestFaultManagerQuarantinesCrashyNode(t *testing.T) {
	rm := grid.NewSMP(8).RM
	f, err := skel.NewFarm(skel.FarmConfig{
		Name: "qrn", Env: skel.Env{TimeScale: 200}, RM: rm, InitialWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan *skel.Task)
	out := make(chan *skel.Task, 64)
	go func() {
		for range out {
		}
	}()
	runDone := make(chan struct{})
	go func() { f.Run(context.Background(), in, out); close(runDone) }()
	deadline := time.Now().Add(5 * time.Second)
	for len(f.Workers()) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("farm never started")
		}
		time.Sleep(time.Millisecond)
	}

	log := trace.NewLog()
	ft, err := NewFaultManager(FaultConfig{
		Log: log, Period: time.Millisecond,
		RM: rm, QuarantineAfter: 1, QuarantineCooldown: time.Hour,
		Retry: runtime.Backoff{Base: time.Microsecond, Jitter: -1, Attempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ft.Watch(abc.NewFarmABC(f, nil))

	node := f.Workers()[0].Node.ID
	if err := f.KillWorker(f.Workers()[0].ID); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for ft.RunOnce() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("crash never detected")
		}
		time.Sleep(time.Millisecond)
	}
	if ft.Quarantined() != 1 {
		t.Fatalf("Quarantined = %d, want 1", ft.Quarantined())
	}
	q := rm.Quarantined()
	if len(q) != 1 || q[0] != node {
		t.Fatalf("RM.Quarantined() = %v, want [%s]", q, node)
	}
	if log.Count("AM_ft", trace.Quarantine) != 1 {
		t.Fatalf("quarantine not logged:\n%s", log.Timeline())
	}
	// The single SMP node is out of the pool, so recruitment is exhausted.
	if _, err := rm.Recruit(grid.Request{}); !errors.Is(err, grid.ErrExhausted) {
		t.Fatalf("recruit on a quarantined platform: %v, want ErrExhausted", err)
	}

	close(in)
	select {
	case <-runDone:
	case <-time.After(30 * time.Second):
		t.Fatal("farm never drained")
	}
}

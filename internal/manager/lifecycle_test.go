package manager

import (
	"context"
	"testing"
	"time"

	"repro/internal/abc"
	"repro/internal/contract"
	"repro/internal/grid"
	"repro/internal/runtime/leaktest"
	"repro/internal/skel"
	"repro/internal/trace"
)

// lifecycler is the Start/Stop/Run surface shared by every manager kind.
type lifecycler interface {
	Start()
	Stop()
	Run(ctx context.Context) error
}

func newLifecycleManagers(t *testing.T) map[string]lifecycler {
	t.Helper()
	log := trace.NewLog()
	farm, err := skel.NewFarm(skel.FarmConfig{
		Name: "lc", Env: skel.Env{TimeScale: 200}, RM: grid.NewSMP(4).RM, InitialWorkers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	fa := abc.NewFarmABC(farm, nil)
	am, err := New(Config{Name: "AM_lc", Controller: fa, Log: log, Period: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ft, err := NewFaultManager(FaultConfig{Log: log, Period: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	mig, err := NewMigrationManager(MigrationConfig{Log: log, Period: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sec, err := NewSecurityManager(SecurityConfig{Log: log, Period: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	gm, err := NewGeneralManager("GM_lc", sec, log, nil, Reactive)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]lifecycler{
		"manager":   am,
		"fault":     ft,
		"migration": mig,
		"security":  sec,
		"general":   gm,
	}
}

// isRunning reports whether the manager's loop goroutine is live.
func isRunning(m lifecycler) bool {
	switch v := m.(type) {
	case *Manager:
		return v.running.Load()
	case *FaultManager:
		return v.running.Load()
	case *MigrationManager:
		return v.running.Load()
	case *SecurityManager:
		return v.running.Load()
	case *GeneralManager:
		return v.running.Load()
	}
	return false
}

func waitRunning(t *testing.T, m lifecycler) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !isRunning(m) {
		if time.Now().After(deadline) {
			t.Fatal("loop never came up")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestManagerLifecycleIdempotence drives every manager kind through
// double-Start, double-Stop and restart, checking that the lifecycle is
// idempotent, that a second concurrent Run is refused, and that no
// goroutine outlives Stop.
func TestManagerLifecycleIdempotence(t *testing.T) {
	for name, m := range newLifecycleManagers(t) {
		m := m
		t.Run(name, func(t *testing.T) {
			defer leaktest.Check(t)()
			m.Start()
			m.Start() // second Start: no-op, no second loop
			waitRunning(t, m)
			if err := m.Run(context.Background()); err == nil {
				t.Fatal("concurrent Run while started: want error, got nil")
			}
			m.Stop()
			m.Stop() // second Stop: no-op
			// Restart after Stop must work.
			m.Start()
			m.Stop()
		})
	}
}

// TestManagerLifecycleStartStopCycles hammers Start/Stop to catch leaked
// loop goroutines or lost wake subscriptions across restarts.
func TestManagerLifecycleStartStopCycles(t *testing.T) {
	for name, m := range newLifecycleManagers(t) {
		m := m
		t.Run(name, func(t *testing.T) {
			defer leaktest.Check(t)()
			for i := 0; i < 10; i++ {
				m.Start()
				m.Stop()
			}
		})
	}
}

// TestManagerRunTreeSupervises checks RunTree: all loops in the hierarchy
// run under one group and cancelation tears the whole tree down.
func TestManagerRunTreeSupervises(t *testing.T) {
	defer leaktest.Check(t)()
	log := trace.NewLog()
	newAM := func(name string) *Manager {
		farm, err := skel.NewFarm(skel.FarmConfig{
			Name: name, Env: skel.Env{TimeScale: 200}, RM: grid.NewSMP(4).RM, InitialWorkers: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(Config{Name: name, Controller: abc.NewFarmABC(farm, nil), Log: log, Period: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	root := newAM("AM_root")
	child := newAM("AM_child")
	root.AttachChild(child)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- root.RunTree(ctx) }()

	// Both loops must come up under the one group.
	deadline := time.Now().Add(5 * time.Second)
	for !root.running.Load() || !child.running.Load() {
		if time.Now().After(deadline) {
			t.Fatal("tree loops never came up")
		}
		time.Sleep(time.Millisecond)
	}
	// A second direct Run on a supervised loop is refused.
	if err := root.Run(context.Background()); err == nil {
		t.Fatal("concurrent Run on supervised manager: want error, got nil")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("RunTree = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunTree did not return after cancel")
	}

	// Contract checks still work after shutdown (nothing torn down that
	// shouldn't be).
	if err := root.AssignContract(contract.MinThroughput(0.1)); err != nil {
		t.Fatal(err)
	}
}

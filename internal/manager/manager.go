// Package manager implements the active part of autonomic management: the
// autonomic managers (AMs) of the paper. A Manager runs the classical MAPE
// control loop — monitor via its ABC, analyse against its SLA contract,
// plan via its rule engine, execute through the ABC actuators — and plays
// the two roles of the P_rol problem: active (autonomously restoring its
// contract) and passive (only monitoring, reporting violations to its
// parent through the callback interface added in §4.2 and waiting for a
// new contract).
//
// Managers compose into hierarchies mirroring the behavioural-skeleton
// tree; contract propagation uses the P_spl splitting heuristics of
// internal/contract. Multi-concern coordination (a performance hierarchy
// plus a security manager under a general manager, with the two-phase
// intent/prepare/commit protocol of §3.2) lives in multiconcern.go.
package manager

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/abc"
	"repro/internal/contract"
	"repro/internal/metrics"
	"repro/internal/rules"
	"repro/internal/runtime"
	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// State is a manager's autonomic role.
type State int

// Manager states (Fig. 1, right).
const (
	// Active: the manager autonomically tries to ensure its contract.
	Active State = iota
	// Passive: no locally fireable plan can restore the contract; the
	// manager only monitors and waits for a new contract.
	Passive
)

// String implements fmt.Stringer.
func (s State) String() string {
	if s == Passive {
		return "passive"
	}
	return "active"
}

// Violation is the message a manager sends its parent through the
// violation-callback interface when it cannot restore its contract with
// local actions.
type Violation struct {
	From     string // reporting manager name
	Tag      string // rules.TagNotEnoughTasks, rules.TagTooMuchTasks, ...
	Snapshot contract.Snapshot
	When     time.Time
	// CauseID is the telemetry causality id linking the child's decision
	// record to the parent's reaction (0 when decision tracing is off).
	CauseID uint64
}

// Policy collects the pluggable policy hooks of a manager. Zero-value
// hooks are simply skipped; mechanisms stay in the ABC.
type Policy struct {
	// OnContract applies a freshly assigned contract locally (rebuild the
	// rule engine from its bounds, retarget an emission rate, ...).
	OnContract func(m *Manager, c contract.Contract)
	// OnChildViolation reacts to a violation reported by a child (the
	// incRate/decRate reactions of AM_A in Fig. 4).
	OnChildViolation func(m *Manager, v Violation)
	// Split derives the children's sub-contracts when a contract is
	// assigned (P_spl). n is the number of children.
	Split func(c contract.Contract, n int) ([]contract.Contract, error)
	// OnVerdict observes every analyse-phase contract verdict, violating
	// or not. Sentinel managers (cmd/workerd's remote child) use it to
	// escalate boolean violations that carry no rule-engine reaction.
	OnVerdict func(m *Manager, v contract.Verdict, snap contract.Snapshot)
}

// Config parameterizes a Manager.
type Config struct {
	Name    string
	Concern string // e.g. "performance", "security"
	Clock   simclock.Clock
	// Period is the control-loop period in clock time (already scaled by
	// the caller). Default 100ms.
	Period time.Duration
	// Controller is the manager's ABC (monitor + actuators). Required.
	Controller abc.Controller
	// Engine holds the manager's autonomic rules; nil for managers whose
	// behaviour is purely hierarchical coordination.
	Engine *rules.Engine
	// Policy hooks.
	Policy Policy
	// Log receives the manager's autonomic events. Required.
	Log *trace.Log
	// WarmUp suppresses the plan/execute phase (rule firing) for this
	// long after creation, in clock time: acting before the sliding-
	// window sensors hold a full window's worth of samples makes the
	// manager chase measurement transients. Monitoring and verdict
	// logging stay on throughout.
	WarmUp time.Duration
	// PollOnly disables the event-driven wake-up even when the Controller
	// implements abc.WakeSource, leaving only the periodic tick. It exists
	// as the baseline for the wake-up latency benchmark.
	PollOnly bool
	// Skew is the tolerance applied when the manager compares timestamps
	// that may originate on different processes (the warm-up window after
	// a cross-process checkpoint restore, link lease math). Nil installs a
	// per-manager tolerance of simclock.DefaultSkew.
	Skew *simclock.Tolerance
}

// Instruments are the phase-latency histograms of one MAPE loop, in
// wall-clock seconds. They are always collected: observation is atomic
// and allocation-free, and the loop runs at control frequency, so the
// cost is negligible. Wake records the wake-to-decision latency of
// edge-triggered iterations only.
type Instruments struct {
	Sense   *metrics.Histogram
	Analyze *metrics.Histogram
	Plan    *metrics.Histogram
	Act     *metrics.Histogram
	Wake    *metrics.Histogram
}

func newInstruments() Instruments {
	return Instruments{
		Sense:   metrics.NewLatencyHistogram(),
		Analyze: metrics.NewLatencyHistogram(),
		Plan:    metrics.NewLatencyHistogram(),
		Act:     metrics.NewLatencyHistogram(),
		Wake:    metrics.NewLatencyHistogram(),
	}
}

// Manager is one autonomic manager.
type Manager struct {
	cfg     Config
	clock   simclock.Clock
	log     *trace.Log
	created time.Time
	inst    Instruments
	skew    *simclock.Tolerance

	mu       sync.Mutex
	contract contract.Contract
	engine   *rules.Engine
	state    State
	parent   *Manager
	children []*Manager
	// link, when set, replaces the direct in-process parent path: the
	// child's violations travel the link and failure detection is the
	// link's lease, not parent.Crashed().
	link Link

	violations chan Violation

	// tracer receives one DecisionRecord per RunOnce; set before the
	// control loop starts (SetTracer), read only by the loop goroutine.
	tracer *telemetry.Tracer
	// spanRing, when attached, links recently published task spans to the
	// causality id of each violation this manager raises, joining the
	// task-level trace to the decision chain that reacted to it.
	spanRing *telemetry.SpanRing
	// wakeStamp is the UnixNano of the oldest unserviced edge wake-up
	// (0 when none); written by skeleton goroutines, consumed by Run.
	wakeStamp atomic.Int64
	// actFailures counts actuator executions that failed (and were turned
	// into violations); exported at /metrics as actuator_failures.
	actFailures atomic.Uint64
	// escalations counts violations reported to the parent.
	escalations atomic.Uint64
	// cycleSeq counts completed MAPE cycles; ackedCycle is the parent's
	// delivery watermark over the link. Their difference at reattach sizes
	// the catch-up debt; catchUpCycles counts the cycles actually re-run.
	cycleSeq      atomic.Uint64
	ackedCycle    atomic.Uint64
	catchUpCycles atomic.Uint64

	// Self-healing state (selfheal.go): the chaos fault hook, the crashed
	// flag set between a crash wipe and the checkpoint replay, the last
	// checkpoint, the bounded buffer of violations raised while the parent
	// was down, and the lazily built restart supervisor.
	runFault      atomic.Pointer[func() RunFault]
	crashed       atomic.Bool
	checkpoint    Checkpoint // guarded by mu
	hasCheckpoint bool       // guarded by mu
	violBuf       []Violation
	violDrops     atomic.Uint64
	superMu       sync.Mutex
	superCfg      runtime.SupervisorConfig
	super         *runtime.Supervisor

	// per-RunOnce scratch (single goroutine)
	cycleLocalAction bool
	cycleViolation   bool
	cycleCatchUp     bool
	seenErrsDropped  uint64 // high-water mark of Snapshot.ErrorsDropped
	cycleOpen        bool
	cycleCause       uint64
	cycleActNs       int64
	cycleWakeNS      int64
	cycleEvents      []telemetry.EventRec
	cycleActions     []telemetry.ActionRec

	running atomic.Bool
	life    runtime.Lifecycle
}

// New validates cfg and builds a manager (initially active, with a
// best-effort contract).
func New(cfg Config) (*Manager, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("manager: missing name")
	}
	if cfg.Controller == nil {
		return nil, fmt.Errorf("manager %s: missing controller", cfg.Name)
	}
	if cfg.Log == nil {
		return nil, fmt.Errorf("manager %s: missing trace log", cfg.Name)
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.NewReal()
	}
	if cfg.Period <= 0 {
		cfg.Period = 100 * time.Millisecond
	}
	if cfg.Skew == nil {
		cfg.Skew = &simclock.Tolerance{Max: simclock.DefaultSkew}
	}
	return &Manager{
		cfg:        cfg,
		clock:      cfg.Clock,
		log:        cfg.Log,
		inst:       newInstruments(),
		skew:       cfg.Skew,
		contract:   contract.BestEffort{},
		engine:     cfg.Engine,
		violations: make(chan Violation, 256),
		created:    cfg.Clock.Now(),
	}, nil
}

// Instruments returns the manager's phase-latency histograms.
func (m *Manager) Instruments() Instruments { return m.inst }

// SetTracer attaches the decision tracer: every subsequent RunOnce emits
// one structured telemetry.DecisionRecord. Attach before the control loop
// starts; a nil tracer disables decision tracing (the default).
func (m *Manager) SetTracer(t *telemetry.Tracer) { m.tracer = t }

// Tracer returns the attached decision tracer (may be nil).
func (m *Manager) Tracer() *telemetry.Tracer { return m.tracer }

// SetSpanRing attaches the task-span ring: each violation this manager
// raises claims the most recent unattributed spans for its causality id,
// so /spans?cause=ID answers "which tasks were in flight when the
// contract broke". Attach before the control loop starts.
func (m *Manager) SetSpanRing(r *telemetry.SpanRing) { m.spanRing = r }

// Name returns the manager's name (e.g. "AM_F").
func (m *Manager) Name() string { return m.cfg.Name }

// Concern returns the non-functional concern the manager handles.
func (m *Manager) Concern() string { return m.cfg.Concern }

// Controller returns the manager's ABC.
func (m *Manager) Controller() abc.Controller { return m.cfg.Controller }

// ActuatorFailures returns how many actuator executions failed so far
// (each one was converted into an upward violation per §3.1).
func (m *Manager) ActuatorFailures() uint64 { return m.actFailures.Load() }

// Log returns the manager's trace log.
func (m *Manager) Log() *trace.Log { return m.log }

// State returns the manager's current role.
func (m *Manager) State() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state
}

// Contract returns the currently installed contract.
func (m *Manager) Contract() contract.Contract {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.contract
}

// Parent returns the parent manager, or nil at the root.
func (m *Manager) Parent() *Manager {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.parent
}

// Children returns the child managers.
func (m *Manager) Children() []*Manager {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Manager, len(m.children))
	copy(out, m.children)
	return out
}

// AttachChild links child under m in the management hierarchy.
func (m *Manager) AttachChild(child *Manager) {
	if child == nil || child == m {
		return
	}
	m.mu.Lock()
	m.children = append(m.children, child)
	m.mu.Unlock()
	child.mu.Lock()
	child.parent = m
	child.mu.Unlock()
}

// WarmUp returns the manager's warm-up window.
func (m *Manager) WarmUp() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cfg.WarmUp
}

// SetWarmUp changes the warm-up window (clock time since creation during
// which the rule engine does not fire).
func (m *Manager) SetWarmUp(d time.Duration) {
	m.mu.Lock()
	m.cfg.WarmUp = d
	m.mu.Unlock()
}

// warmUpDeadline is the instant the rule engine may start firing; Restore
// re-bases it so a restart observes exactly the checkpointed remainder.
func (m *Manager) warmUpDeadline() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.created.Add(m.cfg.WarmUp)
}

// warmedUp reports whether the sensor warm-up window has elapsed. The
// elapsed-since-creation measurement goes through the skew tolerance:
// after a cross-process restore `created` may carry a peer clock slightly
// ahead of ours, and the small negative elapsed that produces must read
// as "just created" — not as a window that never opens.
func (m *Manager) warmedUp() bool {
	m.mu.Lock()
	created, warm := m.created, m.cfg.WarmUp
	m.mu.Unlock()
	return m.skew.Elapsed(created, m.clock.Now()) >= warm
}

// SkewClamps reports how many cross-process timestamp comparisons the
// manager's skew tolerance has absorbed.
func (m *Manager) SkewClamps() uint64 { return m.skew.Clamped() }

// SetEngine replaces the manager's rule engine (used when a new contract
// re-parameterizes the rules).
func (m *Manager) SetEngine(e *rules.Engine) {
	m.mu.Lock()
	m.engine = e
	m.mu.Unlock()
}

// Engine returns the current rule engine (may be nil).
func (m *Manager) Engine() *rules.Engine {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.engine
}

// AssignContract installs c, applies it locally through the OnContract
// hook, splits it over the children (P_spl) and recursively propagates the
// sub-contracts. Receiving a contract (re-)activates the manager.
func (m *Manager) AssignContract(c contract.Contract) error {
	if c == nil {
		return fmt.Errorf("manager %s: nil contract", m.cfg.Name)
	}
	m.mu.Lock()
	m.contract = c
	wasPassive := m.state == Passive
	m.state = Active
	children := make([]*Manager, len(m.children))
	copy(children, m.children)
	m.mu.Unlock()

	m.log.Record(m.clock.Now(), m.cfg.Name, trace.NewContr, c.Describe())
	if wasPassive {
		m.log.Record(m.clock.Now(), m.cfg.Name, trace.EnterActive, "new contract")
	}
	if m.cfg.Policy.OnContract != nil {
		m.cfg.Policy.OnContract(m, c)
	}
	if len(children) == 0 || m.cfg.Policy.Split == nil {
		return nil
	}
	subs, err := m.cfg.Policy.Split(c, len(children))
	if err != nil {
		return fmt.Errorf("manager %s: splitting %q: %w", m.cfg.Name, c.Describe(), err)
	}
	for i, child := range children {
		if err := child.AssignContract(subs[i]); err != nil {
			return err
		}
	}
	return nil
}

// deliver enqueues a child violation; overflowing reports are dropped (a
// slow parent must not stall its children's control loops).
func (m *Manager) deliver(v Violation) {
	select {
	case m.violations <- v:
	default:
	}
}

// event logs an autonomic event and, when a MAPE cycle is in flight on
// this goroutine, captures it into the cycle's decision record.
func (m *Manager) event(kind trace.Kind, detail string) {
	m.log.Record(m.clock.Now(), m.cfg.Name, kind, detail)
	if m.cycleOpen && m.tracer != nil {
		m.cycleEvents = append(m.cycleEvents, telemetry.EventRec{Kind: string(kind), Detail: detail})
	}
}

// noteAction captures one executed operation into the cycle's decision
// record.
func (m *Manager) noteAction(op, detail string, err error) {
	if !m.cycleOpen || m.tracer == nil {
		return
	}
	a := telemetry.ActionRec{Op: op, Detail: detail}
	if err != nil {
		a.Error = err.Error()
	}
	m.cycleActions = append(m.cycleActions, a)
}

// reportViolation sends a violation to the parent (or only logs it at the
// root) and marks this cycle as violation-raising. With tracing on, the
// violation carries the cycle's causality id (allocating one if this
// cycle has none yet), so the parent's reaction records chain to ours.
// While the parent is down (crashed and not yet restored), the violation
// is parked in the bounded buffer instead and re-delivered on recovery.
func (m *Manager) reportViolation(tag string, snap contract.Snapshot) {
	m.cycleViolation = true
	if m.cycleOpen && m.cycleCause == 0 && m.tracer != nil {
		m.cycleCause = m.tracer.NextCause()
	}
	if m.spanRing != nil && m.cycleCause != 0 {
		m.spanRing.AttachCause(m.cycleCause, 32)
	}
	m.event(trace.RaiseViol, tag)
	parent := m.Parent()
	link := m.Link()
	if parent == nil && link == nil {
		return
	}
	m.escalations.Add(1)
	v := Violation{
		From: m.cfg.Name, Tag: tag, Snapshot: snap,
		When: m.clock.Now(), CauseID: m.cycleCause,
	}
	if link != nil {
		// Over a link the parent may live in another process; delivery
		// failure (partition, drop mid-send) parks the violation in the
		// same bounded buffer an in-process parent crash uses.
		if link.Down() || link.Deliver(v) != nil {
			m.bufferViolation(v)
		}
		return
	}
	if parent.Crashed() {
		m.bufferViolation(v)
		return
	}
	parent.deliver(v)
}

// Escalate forwards a violation up the hierarchy. Intermediate managers —
// like the inner pipeline AM of the §3.1 expression
// farm(pipeline(seq, farm(seq), seq)), which must "report to the AM of the
// outer, top level farm" — call it from their OnChildViolation policy when
// a child's violation cannot be absorbed at their level.
func (m *Manager) Escalate(tag string, snap contract.Snapshot) {
	m.reportViolation(tag, snap)
}

// FireOperation implements rules.Effector: it is how the plan phase's rule
// actions reach the execute phase. Violation raising goes to the parent;
// everything else is an ABC mechanism.
func (m *Manager) FireOperation(op string, act *rules.Activation) error {
	start := time.Now()
	defer func() { m.cycleActNs += int64(time.Since(start)) }()
	switch op {
	case rules.OpRaiseViolation:
		tag := act.LastData()
		switch tag {
		case rules.TagNotEnoughTasks:
			m.event(trace.NotEnough, "")
		case rules.TagTooMuchTasks:
			m.event(trace.TooMuch, "")
		}
		m.noteAction(op, tag, nil)
		m.reportViolation(tag, m.cfg.Controller.Snapshot())
		return nil
	default:
		detail, err := m.cfg.Controller.Execute(op)
		if err != nil {
			// Corrective action required but not possible: report a
			// violation upward instead (§3.1).
			m.actFailures.Add(1)
			m.noteAction(op, "", err)
			m.reportViolation(op+"_failed: "+err.Error(), m.cfg.Controller.Snapshot())
			return nil
		}
		m.cycleLocalAction = true
		m.noteAction(op, detail, nil)
		switch op {
		case rules.OpAddExecutor:
			m.event(trace.AddWorker, detail)
		case rules.OpRemoveExecutor:
			m.event(trace.RemWorker, detail)
		case rules.OpBalanceLoad:
			m.event(trace.Rebalance, detail)
		default:
			m.event(trace.Kind(op), detail)
		}
		return nil
	}
}

// RunOnce performs one MAPE iteration. It is exported so that tests and
// deterministic experiments can drive the loop explicitly. Each iteration
// observes its phase latencies into Instruments and — when a tracer is
// attached — emits one telemetry.DecisionRecord.
func (m *Manager) RunOnce() error {
	m.cycleLocalAction = false
	m.cycleViolation = false
	m.cycleCause = 0
	m.cycleActNs = 0
	m.cycleEvents = m.cycleEvents[:0]
	m.cycleActions = m.cycleActions[:0]
	m.cycleOpen = true
	defer func() { m.cycleOpen = false }()
	wakeNS := m.cycleWakeNS
	m.cycleWakeNS = 0

	// Re-deliver violations parked during a parent outage before reacting
	// to the live ones, preserving arrival order at the parent.
	m.flushBuffered()

	// React to child violations first (hierarchical coordination). The
	// first child violation's causality id is inherited, so the reaction's
	// decision record chains to the child's.
	drainStart := time.Now()
	for {
		select {
		case v := <-m.violations:
			if m.cycleCause == 0 {
				m.cycleCause = v.CauseID
			}
			if m.cfg.Policy.OnChildViolation != nil {
				m.cfg.Policy.OnChildViolation(m, v)
			}
		default:
			goto drained
		}
	}
drained:
	drainDur := time.Since(drainStart)

	// Monitor.
	senseStart := time.Now()
	snap := m.cfg.Controller.Snapshot()
	m.inst.Sense.ObserveDuration(time.Since(senseStart))

	// Analyse: verdict logging (the contrLow events of Fig. 4).
	analyzeStart := time.Now()
	if snap.ErrorsDropped > m.seenErrsDropped {
		// Runtime errors overflowed the skeleton's error buffer since the
		// last cycle: make the loss visible in the trace instead of silent.
		m.event(trace.ErrsDropped,
			fmt.Sprintf("+%d (total %d)", snap.ErrorsDropped-m.seenErrsDropped, snap.ErrorsDropped))
		m.seenErrsDropped = snap.ErrorsDropped
	}
	verdict := m.Contract().Check(snap)
	switch verdict {
	case contract.ViolatedLow:
		m.event(trace.ContrLow, fmt.Sprintf("tp=%.3f", snap.Throughput))
	case contract.ViolatedHigh:
		m.event(trace.ContrHigh, fmt.Sprintf("tp=%.3f", snap.Throughput))
	case contract.Violated:
		m.event(trace.ContrLow, "boolean concern violated")
	}
	if m.cfg.Policy.OnVerdict != nil {
		m.cfg.Policy.OnVerdict(m, verdict, snap)
	}
	analyzeDur := time.Since(analyzeStart)
	m.inst.Analyze.ObserveDuration(analyzeDur)

	// Plan + execute via the rule engine (skipped during sensor warm-up).
	// FireOperation accumulates execute time into cycleActNs, so the act
	// share can be subtracted from the engine cycle to isolate planning.
	var ruleEvals []telemetry.RuleEval
	engStart := time.Now()
	engine := m.Engine()
	if engine != nil && m.warmedUp() {
		if m.tracer != nil {
			_, verdicts, err := engine.CycleExplain(m.cfg.Controller.Beans(), m, 0)
			for _, v := range verdicts {
				ruleEvals = append(ruleEvals, telemetry.RuleEval{
					Rule: v.Rule, Fired: v.Fired, Failed: v.FailingPattern,
				})
			}
			if err != nil {
				return fmt.Errorf("manager %s: %w", m.cfg.Name, err)
			}
		} else if _, err := engine.Cycle(m.cfg.Controller.Beans(), m); err != nil {
			return fmt.Errorf("manager %s: %w", m.cfg.Name, err)
		}
	}
	engDur := time.Since(engStart)
	actDur := time.Duration(m.cycleActNs)
	planDur := drainDur + engDur - actDur
	if planDur < 0 {
		planDur = 0
	}
	m.inst.Plan.ObserveDuration(planDur)
	m.inst.Act.ObserveDuration(actDur)

	// Role transition (P_rol): passive iff the only reaction available
	// was raising a violation.
	m.mu.Lock()
	var transition trace.Kind
	if m.cycleViolation && !m.cycleLocalAction {
		if m.state == Active {
			transition = trace.EnterPass
		}
		m.state = Passive
	} else if m.cycleLocalAction {
		if m.state == Passive {
			transition = trace.EnterActive
		}
		m.state = Active
	}
	m.mu.Unlock()
	if transition != "" {
		m.event(transition, "")
	}

	if wakeNS != 0 {
		m.inst.Wake.Observe(time.Since(time.Unix(0, wakeNS)).Seconds())
	}
	if m.tracer != nil {
		rec := telemetry.DecisionRecord{
			T:        m.clock.Now(),
			Manager:  m.cfg.Name,
			Concern:  m.cfg.Concern,
			State:    m.State().String(),
			Cause:    m.cycleCause,
			Snapshot: snap,
			Verdict:  verdict.String(),
			CatchUp:  m.cycleCatchUp,
			Rules:    ruleEvals,
			Phases: telemetry.PhaseNanos{
				Sense:   int64(analyzeStart.Sub(senseStart)),
				Analyze: int64(analyzeDur),
				Plan:    int64(planDur),
				Act:     int64(actDur),
			},
		}
		if len(m.cycleActions) > 0 {
			rec.Actions = append([]telemetry.ActionRec(nil), m.cycleActions...)
		}
		if len(m.cycleEvents) > 0 {
			rec.Events = append([]telemetry.EventRec(nil), m.cycleEvents...)
		}
		if wakeNS != 0 {
			rec.WakeNs = time.Now().UnixNano() - wakeNS
		}
		m.tracer.Record(rec)
	}
	// Persist the autonomic state this cycle ended in: the restart path
	// replays the latest completed MAPE cycle, never a partial one. The
	// cycle counter moves first so the checkpointed watermark covers it.
	m.cycleSeq.Add(1)
	m.takeCheckpoint()
	return nil
}

// Run executes the MAPE control loop until ctx is canceled, then returns
// nil (clean shutdown). Iterations are triggered by the periodic tick and
// — when the controller implements abc.WakeSource and PollOnly is unset —
// by skeleton edges (worker crash, end of stream), which wake the loop
// immediately instead of after up to one full period. RunOnce errors are
// logged and the loop continues: a bad rule cycle must not kill
// supervision. Run returns an error immediately if the loop is already
// running.
func (m *Manager) Run(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if !m.running.CompareAndSwap(false, true) {
		return fmt.Errorf("manager %s: control loop already running", m.cfg.Name)
	}
	defer m.running.Store(false)

	// Restart path: replay the checkpoint before the first cycle so the
	// loop resumes enforcing the pre-crash contract, re-attached to its
	// parent.
	m.recoverIfCrashed()

	var wake runtime.Notifier
	if ws, ok := m.cfg.Controller.(abc.WakeSource); ok && !m.cfg.PollOnly {
		// Stamp the oldest unserviced edge so RunOnce can report the
		// wake-to-decision latency (the edge-notifier claim of the paper's
		// "react within a control period" argument, made measurable).
		defer ws.OnEdge(func() {
			m.wakeStamp.CompareAndSwap(0, time.Now().UnixNano())
			wake.Notify()
		})()
	}
	ticker := m.clock.NewTicker(m.cfg.Period)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C():
		case <-wake.C():
		}
		// Chaos fault hook (nil-gated): stall freezes the loop, panic and
		// crash kill it — the supervisor converts, restarts and replays.
		if fp := m.runFault.Load(); fp != nil {
			f := (*fp)()
			if f.Stall > 0 {
				select {
				case <-ctx.Done():
					return nil
				case <-m.clock.After(f.Stall):
				}
			}
			if f.Panic {
				panic(fmt.Sprintf("manager %s: injected panic", m.cfg.Name))
			}
			if f.Crash {
				m.Crash()
				return fmt.Errorf("manager %s: %w", m.cfg.Name, ErrInjectedCrash)
			}
		}
		if ns := m.wakeStamp.Swap(0); ns != 0 {
			m.cycleWakeNS = ns
		}
		if err := m.RunOnce(); err != nil {
			m.log.Record(m.clock.Now(), m.cfg.Name, trace.Kind("error"), err.Error())
		}
		// A link reattach may owe catch-up cycles covering the partition
		// window; they run here, distinctly flagged in the trace.
		m.runCatchUp(ctx)
	}
}

// RunTree runs the control loops of m and all its descendants as one
// supervised group under ctx. Every loop runs under the manager's restart
// Supervisor, so a crashed or panicking member is restarted (replaying its
// checkpoint) instead of taking the tree down; only a terminal give-up —
// the restart budget exhausted — cancels the siblings. RunTree returns
// once all loops have exited.
func (m *Manager) RunTree(ctx context.Context) error {
	g, _ := runtime.NewGroup(ctx)
	m.treeGo(g)
	return g.Wait()
}

func (m *Manager) treeGo(g *runtime.Group) {
	g.Go(m.Supervisor().Run)
	for _, c := range m.Children() {
		c.treeGo(g)
	}
}

// Start launches the control loop on a background goroutine. Stop it with
// Stop; Start again after Stop is allowed. A second Start while running is
// a no-op.
func (m *Manager) Start() { m.life.Start(m.Run) }

// Stop terminates the control loop and waits for it to exit. It is
// idempotent.
func (m *Manager) Stop() { _ = m.life.Stop() }

// StartTree starts the control loops of m and all its descendants.
func (m *Manager) StartTree() {
	m.Start()
	for _, c := range m.Children() {
		c.StartTree()
	}
}

// StopTree stops the control loops of m and all its descendants.
func (m *Manager) StopTree() {
	for _, c := range m.Children() {
		c.StopTree()
	}
	m.Stop()
}

// The remote management plane: RemoteLink is the child half of a
// parent/child manager channel that crosses a process boundary, and
// ParentEndpoint is the parent half. The transport is a plain
// request/reply function — internal/wire's sealed mgmt frames in
// production (Factory.Mgmt / ServerConfig.Mgmt), a direct Handle call in
// tests and the chaos soak — so the failure-detection and catch-up logic
// is testable without sockets and the chaos plane can partition the link
// deterministically.
//
// Failure detection is lease-based: the link heartbeats the parent and
// every acknowledged exchange renews a lease. A missed heartbeat inside a
// live lease is `suspect` (a slow parent is not a dead parent); only
// lease expiry declares `partitioned`. Reattach runs bounded jittered
// retries (runtime.Retry), then flushes the violations buffered during
// the outage (exactly once — the parent endpoint dedups by causality id)
// and schedules catch-up MAPE cycles per the configured policy, sized by
// the gap between the child's cycle counter and the parent's acknowledged
// watermark.
package manager

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/abc"
	"repro/internal/contract"
	"repro/internal/grid"
	"repro/internal/runtime"
	"repro/internal/security"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// ErrLinkDown is returned by RemoteLink.Deliver while the link is
// partitioned or an exchange fails mid-flight; the manager parks the
// violation in its bounded buffer and re-delivers after reattach.
var ErrLinkDown = errors.New("manager: link down")

// mgmtMsg is one management-plane request. The wire layer ships it as an
// opaque sealed body; both ends of the link own this schema.
type mgmtMsg struct {
	Op    string `json:"op"`    // "lease" | "report" | "resplit" | "prepare"
	Child string `json:"child"` // reporting child manager name

	// lease / report
	CycleSeq  uint64     `json:"cycle_seq,omitempty"`
	Violation *Violation `json:"violation,omitempty"`

	// prepare (two-phase, GM → remote security participant)
	Cause   uint64 `json:"cause,omitempty"`
	Worker  string `json:"worker,omitempty"`
	Node    string `json:"node,omitempty"`
	Domain  string `json:"domain,omitempty"`
	Trusted bool   `json:"trusted,omitempty"`
}

// mgmtReply is the parent endpoint's answer.
type mgmtReply struct {
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`
	// Down marks a refusal because the participant manager is inside a
	// crash window — the caller maps it to abc.ErrManagerDown so the
	// two-phase abort path holds unchanged across the wire.
	Down bool `json:"down,omitempty"`
	// Acked is the parent's watermark for this child: the last MAPE cycle
	// it acknowledged before this exchange. At reattach the child sizes
	// its catch-up debt from it.
	Acked uint64 `json:"acked,omitempty"`
	// Dup marks a violation report suppressed by causality-id dedup (it
	// was already delivered — a flush raced a partition).
	Dup bool `json:"dup,omitempty"`
	// Contract is the re-split sub-contract in contract.Describe text.
	Contract string `json:"contract,omitempty"`
	// Prepare outcome: the binding codec crossing back rekey-style.
	CodecName string `json:"codec_name,omitempty"`
	CodecKey  []byte `json:"codec_key,omitempty"`
}

// MgmtTransport carries one management request to the parent and returns
// its reply. wire.Factory.Mgmt curried with an address is the TCP
// implementation; ParentEndpoint.Handle wrapped directly is the
// in-process one.
type MgmtTransport func(req []byte) ([]byte, error)

// RemoteLinkConfig parameterizes a RemoteLink.
type RemoteLinkConfig struct {
	// Child is the local manager whose parent lives across the link.
	Child *Manager
	// Transport is required.
	Transport MgmtTransport
	// Heartbeat paces lease renewal (clock time; default 50ms). Lease is
	// the failure-detection window (default 4×Heartbeat, so a parent slow
	// by 2× heartbeat jitter never trips a false partition).
	Heartbeat time.Duration
	Lease     time.Duration
	// Retry bounds one reattach round (default: Base Heartbeat/2, Max
	// Lease, Factor 2, 4 attempts, jitter seeded by Seed).
	Retry runtime.Backoff
	Seed  int64
	// Policy selects downtime catch-up sizing (default CatchUpLatest).
	Policy CatchUpPolicy
	// KeepContract stops the child from adopting the parent's P_spl
	// sub-contract at (re)attach. The resplit exchange still happens —
	// the parent's answer is simply not applied — for children managing
	// an independent concern whose contract is assigned locally.
	KeepContract bool
	// Clock, Log, Skew default to the child's.
	Clock simclock.Clock
	Log   *trace.Log
	Skew  *simclock.Tolerance
}

// RemoteLink is the child half of a cross-process manager link.
type RemoteLink struct {
	cfg   RemoteLinkConfig
	child *Manager
	clock simclock.Clock
	log   *trace.Log
	skew  *simclock.Tolerance
	retry runtime.Backoff

	state       atomic.Int32
	attached    atomic.Bool  // a first attach has succeeded
	leaseExpiry atomic.Int64 // unix nano on the link's clock
	catchUp     atomic.Int64 // cycles owed, consumed by TakeCatchUp
	reattaches  atomic.Uint64
	delivered   atomic.Uint64
	bufferedAt  atomic.Uint64 // deliveries refused while down (evidence of buffering)

	// chaos hooks: a partition window and one-shot drops, applied at the
	// exchange gate so they hit both transports identically.
	partUntil atomic.Int64
	drops     atomic.Int64

	// sendMu serializes exchanges so the heartbeat loop and a delivering
	// MAPE cycle cannot interleave frames on a shared session.
	sendMu sync.Mutex

	life runtime.Lifecycle
}

// NewRemoteLink validates cfg, installs the link on the child manager and
// returns it. Run (or Start) drives the heartbeat/lease loop.
func NewRemoteLink(cfg RemoteLinkConfig) (*RemoteLink, error) {
	if cfg.Child == nil {
		return nil, fmt.Errorf("manager: remote link needs a child manager")
	}
	if cfg.Transport == nil {
		return nil, fmt.Errorf("manager: remote link needs a transport")
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 50 * time.Millisecond
	}
	if cfg.Lease <= 0 {
		cfg.Lease = 4 * cfg.Heartbeat
	}
	if cfg.Clock == nil {
		cfg.Clock = cfg.Child.clock
	}
	if cfg.Log == nil {
		cfg.Log = cfg.Child.log
	}
	if cfg.Skew == nil {
		cfg.Skew = cfg.Child.skew
	}
	retry := cfg.Retry
	if retry.Base <= 0 {
		retry = runtime.Backoff{
			Base: cfg.Heartbeat / 2, Max: cfg.Lease, Factor: 2, Attempts: 4,
			Jitter: 0.2,
		}
	}
	if retry.Clock == nil {
		retry.Clock = cfg.Clock
	}
	if retry.Rand == nil {
		retry.Rand = runtime.NewSeededJitter(cfg.Seed)
	}
	l := &RemoteLink{
		cfg: cfg, child: cfg.Child, clock: cfg.Clock, log: cfg.Log,
		skew: cfg.Skew, retry: retry,
	}
	l.state.Store(int32(LinkPartitioned)) // down until the first attach
	cfg.Child.SetLink(l)
	return l, nil
}

// State implements Link.
func (l *RemoteLink) State() LinkState { return LinkState(l.state.Load()) }

// Down implements Link: only a partitioned link refuses delivery —
// suspect still delivers (the lease is live, the parent may be slow).
func (l *RemoteLink) Down() bool { return l.State() == LinkPartitioned }

// TakeCatchUp implements Link: it returns and clears the catch-up debt,
// collapsing a reattached link back to up.
func (l *RemoteLink) TakeCatchUp() int {
	n := l.catchUp.Swap(0)
	if l.state.CompareAndSwap(int32(LinkReattached), int32(LinkUp)) && n > 0 {
		// trace of the transition happened at reattach; nothing to log here
	}
	return int(n)
}

// Reattaches returns how many times the link re-established after a
// partition (repro_manager_link_reattach_total).
func (l *RemoteLink) Reattaches() uint64 { return l.reattaches.Load() }

// Child returns the manager this link carries reports for.
func (l *RemoteLink) Child() *Manager { return l.child }

// Delivered returns how many violations crossed the link.
func (l *RemoteLink) Delivered() uint64 { return l.delivered.Load() }

// BufferedWhileDown returns how many deliveries the link refused because
// it was partitioned — each one was parked in the manager's buffer.
func (l *RemoteLink) BufferedWhileDown() uint64 { return l.bufferedAt.Load() }

// InjectPartition makes every exchange fail for the window (the chaos
// plane's managerPartition actuator; window is wall/clock time on the
// link's clock).
func (l *RemoteLink) InjectPartition(window time.Duration) {
	l.partUntil.Store(l.clock.Now().Add(window).UnixNano())
}

// InjectDrop makes the next n exchanges fail (the managerLinkDrop
// actuator: a cut connection, not a window).
func (l *RemoteLink) InjectDrop(n int) {
	if n > 0 {
		l.drops.Add(int64(n))
	}
}

// exchange runs one request/reply over the transport, applying the chaos
// gate first so injected faults hit the TCP and in-process transports
// identically.
func (l *RemoteLink) exchange(msg mgmtMsg) (mgmtReply, error) {
	var rep mgmtReply
	if l.clock.Now().UnixNano() < l.partUntil.Load() {
		return rep, fmt.Errorf("%w: injected partition", ErrLinkDown)
	}
	for {
		n := l.drops.Load()
		if n <= 0 {
			break
		}
		if l.drops.CompareAndSwap(n, n-1) {
			return rep, fmt.Errorf("%w: injected drop", ErrLinkDown)
		}
	}
	body, err := json.Marshal(msg)
	if err != nil {
		return rep, err
	}
	l.sendMu.Lock()
	raw, err := l.cfg.Transport(body)
	l.sendMu.Unlock()
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		return rep, fmt.Errorf("manager: malformed mgmt reply: %w", err)
	}
	return rep, nil
}

// Deliver implements Link: one violation report to the parent. A
// successful exchange renews the lease (a report proves liveness as well
// as a heartbeat does); any failure degrades the link and returns an
// error so the manager buffers.
func (l *RemoteLink) Deliver(v Violation) error {
	if l.Down() {
		l.bufferedAt.Add(1)
		return ErrLinkDown
	}
	rep, err := l.exchange(mgmtMsg{
		Op: "report", Child: l.child.Name(),
		CycleSeq: l.child.CycleSeq(), Violation: &v,
	})
	if err != nil {
		l.bufferedAt.Add(1)
		l.degrade(err)
		return fmt.Errorf("%w: %v", ErrLinkDown, err)
	}
	if !rep.OK {
		l.bufferedAt.Add(1)
		l.degrade(errors.New(rep.Err))
		return fmt.Errorf("%w: %s", ErrLinkDown, rep.Err)
	}
	l.renewLease()
	l.child.setAckedCycle(l.child.CycleSeq())
	if !rep.Dup {
		l.delivered.Add(1)
	}
	return nil
}

// renewLease arms the failure-detection window after an acknowledged
// exchange.
func (l *RemoteLink) renewLease() {
	l.leaseExpiry.Store(l.clock.Now().Add(l.cfg.Lease).UnixNano())
}

// leaseExpired applies the skew tolerance: a lease stamped a few
// milliseconds "ahead" by clock disagreement is not expired.
func (l *RemoteLink) leaseExpired() bool {
	exp := l.leaseExpiry.Load()
	if exp == 0 {
		return true
	}
	return l.skew.Expired(time.Unix(0, exp), l.clock.Now())
}

// degrade moves the link down one step after a failed exchange: suspect
// while the lease lives, partitioned once it expired.
func (l *RemoteLink) degrade(cause error) {
	if l.State() == LinkPartitioned {
		return
	}
	if !l.leaseExpired() {
		if l.state.CompareAndSwap(int32(LinkUp), int32(LinkSuspect)) ||
			l.state.CompareAndSwap(int32(LinkReattached), int32(LinkSuspect)) {
			l.log.Record(l.clock.Now(), l.child.Name(), trace.LinkSuspect, cause.Error())
		}
		return
	}
	prev := l.state.Swap(int32(LinkPartitioned))
	if LinkState(prev) != LinkPartitioned {
		l.log.Record(l.clock.Now(), l.child.Name(), trace.LinkDown,
			"lease expired: "+cause.Error())
	}
}

// attach runs one lease exchange and, on success, performs the
// attach/reattach bookkeeping: catch-up sizing from the parent's
// watermark, contract re-split, state transition.
func (l *RemoteLink) attach() error {
	prev := l.State()
	seq := l.child.CycleSeq()
	rep, err := l.exchange(mgmtMsg{Op: "lease", Child: l.child.Name(), CycleSeq: seq})
	if err != nil {
		l.degrade(err)
		return err
	}
	if !rep.OK {
		err := errors.New(rep.Err)
		l.degrade(err)
		return err
	}
	l.renewLease()
	// The very first successful attach of a fresh child (nothing to catch
	// up on either side) is plain; any later recovery from partitioned is
	// a reattach — and so is a restarted child process finding the parent
	// holding a watermark for its name.
	firstAttach := !l.attached.Swap(true) && rep.Acked == 0
	switch {
	case prev == LinkPartitioned && !firstAttach:
		// Reattach after a partition (or a process restart that left the
		// parent holding a watermark): size the catch-up debt from the
		// acknowledged watermark, re-split the contract, flag the state.
		owed := owedCycles(l.cfg.Policy, seq, rep.Acked)
		l.catchUp.Store(int64(owed))
		l.reattaches.Add(1)
		l.state.Store(int32(LinkReattached))
		l.log.Record(l.clock.Now(), l.child.Name(), trace.LinkUp,
			fmt.Sprintf("reattached (policy %s, %d catch-up cycles owed)", l.cfg.Policy, owed))
		l.resplit()
	case prev == LinkPartitioned:
		l.state.Store(int32(LinkUp))
		l.log.Record(l.clock.Now(), l.child.Name(), trace.LinkUp, "attached")
		l.resplit()
	case prev == LinkSuspect:
		l.state.Store(int32(LinkUp))
		l.log.Record(l.clock.Now(), l.child.Name(), trace.LinkUp, "heartbeat recovered")
	}
	l.child.setAckedCycle(seq)
	return nil
}

// resplit asks the parent for this child's current sub-contract (P_spl
// over the live topology, exactly like the in-process re-attachment in
// Restore) and installs it. Best-effort: a partition racing the request
// leaves the old contract in force until the next reattach.
func (l *RemoteLink) resplit() {
	rep, err := l.exchange(mgmtMsg{Op: "resplit", Child: l.child.Name()})
	if err != nil || !rep.OK || rep.Contract == "" || l.cfg.KeepContract {
		return
	}
	c, err := contract.Parse(rep.Contract)
	if err != nil {
		l.log.Record(l.clock.Now(), l.child.Name(), trace.Kind("error"),
			"resplit: "+err.Error())
		return
	}
	if c.Describe() != l.child.Contract().Describe() {
		_ = l.child.AssignContract(c)
	}
}

// Run drives the heartbeat/lease loop until ctx is canceled. While the
// link is up (or suspect) it heartbeats every Heartbeat; once partitioned
// it runs bounded jittered reattach rounds via runtime.Retry, waiting one
// heartbeat between rounds — partitions are survivable, so the loop never
// gives up, but each round's attempts and backoff are bounded.
func (l *RemoteLink) Run(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	ticker := l.clock.NewTicker(l.cfg.Heartbeat)
	defer ticker.Stop()
	for {
		if l.State() == LinkPartitioned {
			_ = runtime.Retry(ctx, l.retry, func() error {
				if err := ctx.Err(); err != nil {
					return err
				}
				return l.attach()
			}, nil)
		} else if err := l.attach(); err == nil {
			// lease renewed
		}
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C():
		}
	}
}

// Start launches Run on a background goroutine; Stop terminates it.
func (l *RemoteLink) Start() { l.life.Start(l.Run) }

// Stop terminates the heartbeat loop and waits for it to exit.
func (l *RemoteLink) Stop() { _ = l.life.Stop() }

// ---------------------------------------------------------------------------
// Parent side.

// ParentEndpointConfig parameterizes a ParentEndpoint.
type ParentEndpointConfig struct {
	// Parent receives the remote children's violations on its ordinary
	// violation queue, exactly as in-process children deliver.
	Parent *Manager
	// Security, when set, answers remote two-phase prepares.
	Security *SecurityManager
	// Lease is the window after which a silent child counts as
	// partitioned (default 4×50ms, the RemoteLink default).
	Lease time.Duration
	// Clock, Log, Skew default to the parent's.
	Clock simclock.Clock
	Log   *trace.Log
	Skew  *simclock.Tolerance
}

// childLease is the endpoint's per-child failure-detection state.
type childLease struct {
	lastSeen time.Time
	acked    uint64 // last acknowledged MAPE cycle (the watermark)
	seen     map[uint64]struct{}
}

// ParentEndpoint is the parent half of the remote management plane: the
// handler behind wire.ServerConfig.Mgmt (or a direct in-process
// transport). It tracks per-child leases and delivery watermarks, dedups
// violation reports by causality id so a reattach flush delivers exactly
// once, and answers contract re-splits and two-phase prepares.
type ParentEndpoint struct {
	cfg ParentEndpointConfig

	mu       sync.Mutex
	children map[string]*childLease

	delivered  atomic.Uint64 // violations handed to the parent manager
	duplicates atomic.Uint64 // reports suppressed by CauseID dedup
	reattaches atomic.Uint64 // leases renewed after an expiry gap
}

// NewParentEndpoint validates cfg and builds the endpoint.
func NewParentEndpoint(cfg ParentEndpointConfig) (*ParentEndpoint, error) {
	if cfg.Parent == nil {
		return nil, fmt.Errorf("manager: parent endpoint needs a parent manager")
	}
	if cfg.Lease <= 0 {
		cfg.Lease = 200 * time.Millisecond
	}
	if cfg.Clock == nil {
		cfg.Clock = cfg.Parent.clock
	}
	if cfg.Log == nil {
		cfg.Log = cfg.Parent.log
	}
	if cfg.Skew == nil {
		cfg.Skew = cfg.Parent.skew
	}
	return &ParentEndpoint{cfg: cfg, children: map[string]*childLease{}}, nil
}

// Delivered returns how many remote violations reached the parent.
func (e *ParentEndpoint) Delivered() uint64 { return e.delivered.Load() }

// Duplicates returns how many reports the causality-id dedup suppressed.
func (e *ParentEndpoint) Duplicates() uint64 { return e.duplicates.Load() }

// Reattaches returns how many child leases were renewed after expiring —
// the parent-side repro_manager_link_reattach_total.
func (e *ParentEndpoint) Reattaches() uint64 { return e.reattaches.Load() }

// UniqueCauses returns how many distinct causality ids the endpoint has
// delivered across all children. With decision tracing on (every report
// carries a cause), Delivered() == UniqueCauses() is the exactly-once
// invariant in counter form.
func (e *ParentEndpoint) UniqueCauses() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	var n uint64
	for _, c := range e.children {
		n += uint64(len(c.seen))
	}
	return n
}

// Children returns the names of the children the endpoint has seen.
func (e *ParentEndpoint) Children() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.children))
	for name := range e.children {
		out = append(out, name)
	}
	return out
}

// ChildPartitioned reports whether child's lease has expired (skew
// tolerant) — the parent-side view of the link state.
func (e *ParentEndpoint) ChildPartitioned(child string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	c := e.children[child]
	if c == nil {
		return true
	}
	return e.cfg.Skew.Elapsed(c.lastSeen, e.cfg.Clock.Now()) > e.cfg.Lease
}

// Handle processes one management request and returns the reply, both as
// the opaque bytes the wire layer seals. It is wire.ServerConfig.Mgmt.
func (e *ParentEndpoint) Handle(req []byte) []byte {
	var msg mgmtMsg
	if err := json.Unmarshal(req, &msg); err != nil {
		return marshalReply(mgmtReply{Err: "malformed request: " + err.Error()})
	}
	var rep mgmtReply
	switch msg.Op {
	case "lease":
		rep = e.lease(msg)
	case "report":
		rep = e.report(msg)
	case "resplit":
		rep = e.resplit(msg)
	case "prepare":
		rep = e.prepare(msg)
	default:
		rep = mgmtReply{Err: fmt.Sprintf("unknown op %q", msg.Op)}
	}
	return marshalReply(rep)
}

func marshalReply(rep mgmtReply) []byte {
	b, err := json.Marshal(rep)
	if err != nil {
		return []byte(`{"ok":false,"err":"reply marshal failed"}`)
	}
	return b
}

// touch renews child's lease and returns its record plus the watermark
// held *before* this exchange (the value reattach sizing needs), counting
// a renewal across an expiry gap as a reattach.
func (e *ParentEndpoint) touch(child string, seq uint64) (rec *childLease, prevAcked uint64) {
	now := e.cfg.Clock.Now()
	e.mu.Lock()
	c := e.children[child]
	if c == nil {
		c = &childLease{seen: map[uint64]struct{}{}}
		e.children[child] = c
	} else if e.cfg.Skew.Elapsed(c.lastSeen, now) > e.cfg.Lease {
		e.reattaches.Add(1)
		e.mu.Unlock()
		e.cfg.Log.Record(now, e.cfg.Parent.Name(), trace.LinkUp,
			fmt.Sprintf("child %s reattached", child))
		e.mu.Lock()
	}
	prev := c.acked
	c.lastSeen = now
	if seq > 0 {
		c.acked = seq
	}
	e.mu.Unlock()
	return c, prev
}

// lease handles a heartbeat/lease renewal.
func (e *ParentEndpoint) lease(msg mgmtMsg) mgmtReply {
	_, prev := e.touch(msg.Child, msg.CycleSeq)
	return mgmtReply{OK: true, Acked: prev}
}

// report handles one violation report: causality-id dedup, then delivery
// onto the parent's ordinary violation queue.
func (e *ParentEndpoint) report(msg mgmtMsg) mgmtReply {
	if msg.Violation == nil {
		return mgmtReply{Err: "report without violation"}
	}
	c, prev := e.touch(msg.Child, msg.CycleSeq)
	v := *msg.Violation
	if v.CauseID != 0 {
		e.mu.Lock()
		if _, dup := c.seen[v.CauseID]; dup {
			e.mu.Unlock()
			e.duplicates.Add(1)
			return mgmtReply{OK: true, Dup: true, Acked: prev}
		}
		c.seen[v.CauseID] = struct{}{}
		e.mu.Unlock()
	}
	e.cfg.Parent.deliver(v)
	e.delivered.Add(1)
	return mgmtReply{OK: true, Acked: prev}
}

// resplit answers with the child's sub-contract derived from the parent's
// live contract (P_spl), serialized as contract.Describe text. Remote
// children all receive the same single-child split: the parent's local
// split policy over one slot, or the live contract verbatim without one.
func (e *ParentEndpoint) resplit(msg mgmtMsg) mgmtReply {
	e.touch(msg.Child, msg.CycleSeq)
	p := e.cfg.Parent
	c := p.Contract()
	if c == nil {
		return mgmtReply{OK: true}
	}
	if _, bestEffort := c.(contract.BestEffort); bestEffort {
		// A best-effort parent imposes nothing: the child keeps whatever
		// contract it was assigned locally instead of having it clobbered
		// by an always-satisfied split.
		return mgmtReply{OK: true}
	}
	if split := p.cfg.Policy.Split; split != nil {
		if subs, err := split(c, 1); err == nil && len(subs) == 1 && subs[0] != nil {
			return mgmtReply{OK: true, Contract: subs[0].Describe()}
		}
	}
	return mgmtReply{OK: true, Contract: c.Describe()}
}

// prepare answers a remote two-phase prepare: the GM's intent crossed the
// wire, the local security participant secures the binding, and the
// codec's key material returns inside the already-sealed mgmt reply —
// the rekey-frame shape, one layer up.
func (e *ParentEndpoint) prepare(msg mgmtMsg) mgmtReply {
	if e.cfg.Security == nil {
		return mgmtReply{Err: "no security participant at this endpoint"}
	}
	node := grid.NewNode(msg.Node, grid.Domain{Name: msg.Domain, Trusted: msg.Trusted}, 1, 1)
	var codec security.Codec
	err := e.cfg.Security.prepareWorker(msg.Cause, msg.Worker, node,
		func(c security.Codec) { codec = c })
	if err != nil {
		return mgmtReply{Err: err.Error(), Down: errors.Is(err, abc.ErrManagerDown)}
	}
	rep := mgmtReply{OK: true, CodecName: security.PlainName}
	if aes, ok := codec.(*security.AESGCM); ok {
		rep.CodecName = security.AESGCMName
		rep.CodecKey = aes.Key()
	}
	return rep
}

// ---------------------------------------------------------------------------
// Remote two-phase participant.

// RemoteParticipant adapts a RemoteLink into the GM's SecurityParticipant
// seam: prepares travel the management link as sealed frames, a
// partitioned link maps to abc.ErrManagerDown, so the GM's abort +
// bounded re-issue machinery holds unchanged across processes.
type RemoteParticipant struct {
	name  string
	link  *RemoteLink
	clock simclock.Clock
}

// NewRemoteParticipant builds a participant over an established link.
func NewRemoteParticipant(name string, link *RemoteLink) *RemoteParticipant {
	if name == "" {
		name = "AM_sec/remote"
	}
	return &RemoteParticipant{name: name, link: link, clock: link.clock}
}

// Name implements SecurityParticipant.
func (p *RemoteParticipant) Name() string { return p.name }

// Available implements SecurityParticipant: a partitioned link is a down
// participant.
func (p *RemoteParticipant) Available() bool { return !p.link.Down() }

// prepareWorker implements SecurityParticipant over the link.
func (p *RemoteParticipant) prepareWorker(cause uint64, id string, node *grid.Node, setCodec func(security.Codec)) error {
	if p.link.Down() {
		return fmt.Errorf("participant %s: preparing %s: %w", p.name, id, abc.ErrManagerDown)
	}
	rep, err := p.link.exchange(mgmtMsg{
		Op: "prepare", Child: p.link.child.Name(), Cause: cause,
		Worker: id, Node: node.ID, Domain: node.Domain.Name, Trusted: node.Domain.Trusted,
	})
	if err != nil {
		p.link.degrade(err)
		return fmt.Errorf("participant %s: preparing %s: %w", p.name, id, abc.ErrManagerDown)
	}
	if !rep.OK {
		if rep.Down {
			return fmt.Errorf("participant %s: preparing %s: %w", p.name, id, abc.ErrManagerDown)
		}
		return fmt.Errorf("participant %s: preparing %s: %s", p.name, id, rep.Err)
	}
	p.link.renewLease()
	if rep.CodecName == security.AESGCMName {
		codec, err := security.NewAESGCM(rep.CodecKey, p.clock, 0)
		if err != nil {
			return fmt.Errorf("participant %s: rebuilding codec for %s: %v", p.name, id, err)
		}
		setCodec(codec)
	}
	return nil
}

package manager

import (
	"testing"
	"time"

	"repro/internal/abc"
	"repro/internal/contract"
	"repro/internal/rules"
	"repro/internal/simclock"
	"repro/internal/skel"
	"repro/internal/trace"
)

func newRuleDrivenAMA(t *testing.T) (*Manager, *Manager, *skel.Source, *trace.Log) {
	t.Helper()
	log := trace.NewLog()
	clock := simclock.NewReal()
	src := skel.NewSource("prod", skel.Env{TimeScale: 1000}, 100, 10*time.Second, nil)
	srcABC := abc.NewSourceABC(src)
	amP, err := NewSourceManager("AM_P", srcABC, log, clock, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	amA, err := NewRuleDrivenPipelineManager("AM_A", &stub{}, amP, 2.0, 0.84, log, clock, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	amA.AttachChild(amP)
	return amA, amP, src, log
}

func TestRuleDrivenPipelineIncRate(t *testing.T) {
	amA, amP, src, log := newRuleDrivenAMA(t)

	// Deliver a notEnough violation and run one MAPE cycle: the
	// ReactNotEnough rule must fire the incRate mechanism.
	amA.deliver(Violation{From: "AM_F", Tag: rules.TagNotEnoughTasks,
		Snapshot: contract.Snapshot{ArrivalRate: 0.1}})
	if err := amA.RunOnce(); err != nil {
		t.Fatal(err)
	}
	if log.Count("AM_A", trace.IncRate) != 1 {
		t.Fatalf("incRate missing:\n%s", log.Timeline())
	}
	tr, ok := amP.Contract().(contract.ThroughputRange)
	if !ok || tr.Lo != 0.2 {
		t.Fatalf("producer contract = %v, want lo=0.2", amP.Contract())
	}
	if src.Interval() != 5*time.Second {
		t.Fatalf("source interval = %v, want 5s", src.Interval())
	}

	// Compounding across cycles, capped at 0.84.
	for i := 0; i < 4; i++ {
		amA.deliver(Violation{Tag: rules.TagNotEnoughTasks,
			Snapshot: contract.Snapshot{ArrivalRate: 0.1}})
		amA.RunOnce()
	}
	if tr := amP.Contract().(contract.ThroughputRange); tr.Lo != 0.84 {
		t.Fatalf("capped rate = %v, want 0.84", tr.Lo)
	}
}

func TestRuleDrivenPipelineDecRate(t *testing.T) {
	amA, amP, _, log := newRuleDrivenAMA(t)
	amA.deliver(Violation{Tag: rules.TagTooMuchTasks,
		Snapshot: contract.Snapshot{ArrivalRate: 0.8}})
	if err := amA.RunOnce(); err != nil {
		t.Fatal(err)
	}
	if log.Count("AM_A", trace.DecRate) != 1 {
		t.Fatalf("decRate missing:\n%s", log.Timeline())
	}
	if tr := amP.Contract().(contract.ThroughputRange); tr.Lo != 0.4 {
		t.Fatalf("decRate target = %v, want 0.8/2", tr.Lo)
	}
}

func TestRuleDrivenPipelineEndStream(t *testing.T) {
	amA, _, _, log := newRuleDrivenAMA(t)
	done := Violation{Tag: rules.TagNotEnoughTasks,
		Snapshot: contract.Snapshot{StreamDone: true}}
	amA.deliver(done)
	amA.RunOnce()
	// Further notEnough reports after the end are ignored (no incRate,
	// no second endStream).
	amA.deliver(done)
	amA.RunOnce()
	amA.deliver(Violation{Tag: rules.TagNotEnoughTasks,
		Snapshot: contract.Snapshot{ArrivalRate: 0.1}})
	amA.RunOnce()
	if got := log.Count("AM_A", trace.EndStream); got != 1 {
		t.Fatalf("endStream events = %d, want 1:\n%s", got, log.Timeline())
	}
	if log.Count("AM_A", trace.IncRate) != 0 {
		t.Fatalf("incRate after endStream:\n%s", log.Timeline())
	}
}

func TestPipeRuleSourceParses(t *testing.T) {
	e := rules.NewPipeEngine()
	if len(e.Rules()) != 3 {
		t.Fatalf("pipe rules = %d", len(e.Rules()))
	}
	// Salience: end-of-stream rule first.
	if e.Rules()[0].Name != "ReactEndOfStream" {
		t.Fatalf("priority order wrong: %s first", e.Rules()[0].Name)
	}
}

package manager

import (
	"context"
	"testing"
	"time"

	"repro/internal/abc"
	"repro/internal/contract"
	"repro/internal/grid"
	"repro/internal/rules"
	"repro/internal/security"
	"repro/internal/simclock"
	"repro/internal/skel"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func hasEvent(r telemetry.DecisionRecord, kind trace.Kind) bool {
	for _, e := range r.Events {
		if e.Kind == string(kind) {
			return true
		}
	}
	return false
}

// TestDecisionTraceCausalChain replays the Fig. 4 narrative on a manual
// clock as a causal chain: the farm stage manager AM_F senses a starving
// stream, its CheckInterArrivalRateLow rule raises notEnoughTasks, and
// the application manager AM_A reacts with incRate — and both decision
// records carry the same causality id.
func TestDecisionTraceCausalChain(t *testing.T) {
	clock := simclock.NewManual(time.Date(2009, 5, 25, 10, 0, 0, 0, time.UTC))
	log := trace.NewLog()
	tracer := telemetry.NewTracer(0)

	parentCtrl := &stub{}
	coord := &PipelineCoordinator{}
	parent, err := NewPipelineManager("AM_A", parentCtrl, coord, log, clock, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	childCtrl := &stub{}
	child, err := New(Config{
		Name: "AM_F", Concern: "performance", Clock: clock, Period: time.Second,
		Controller: childCtrl, Log: log,
		Engine: rules.NewFarmEngine(rules.FarmConstants(0.6, 1.2, 1, 8, 4)),
	})
	if err != nil {
		t.Fatal(err)
	}
	parent.AttachChild(child)
	parent.SetTracer(tracer)
	child.SetTracer(tracer)

	// Arrival rate 0.3 is below the contract's low level 0.6: only
	// CheckInterArrivalRateLow can fire, raising notEnoughTasks.
	childCtrl.setBeans([]rules.Bean{
		rules.NewBean(rules.BeanArrivalRate, rules.Num(0.3)),
		rules.NewBean(rules.BeanDepartureRate, rules.Num(0.7)),
		rules.NewBean(rules.BeanNumWorker, rules.Num(2)),
		rules.NewBean(rules.BeanQueueVariance, rules.Num(1)),
	})
	childCtrl.setSnap(contract.Snapshot{Throughput: 0.3, ArrivalRate: 0.3})

	if err := child.RunOnce(); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Second)
	if err := parent.RunOnce(); err != nil {
		t.Fatal(err)
	}

	byMgr := tracer.LastByManager()
	childRec, ok := byMgr["AM_F"]
	if !ok {
		t.Fatal("no decision record for AM_F")
	}
	parentRec, ok := byMgr["AM_A"]
	if !ok {
		t.Fatal("no decision record for AM_A")
	}

	if childRec.Cause == 0 {
		t.Fatal("child violation decision has no causality id")
	}
	if parentRec.Cause != childRec.Cause {
		t.Fatalf("cause ids differ: child=%d parent=%d", childRec.Cause, parentRec.Cause)
	}
	if !hasEvent(childRec, trace.RaiseViol) {
		t.Fatalf("child record lacks raiseViol: %+v", childRec.Events)
	}
	if !hasEvent(parentRec, trace.IncRate) {
		t.Fatalf("parent record lacks incRate: %+v", parentRec.Events)
	}
	chain := tracer.ByCause(childRec.Cause)
	if len(chain) != 2 || chain[0].Manager != "AM_F" || chain[1].Manager != "AM_A" {
		t.Fatalf("ByCause chain = %+v", chain)
	}

	// The manual clock pins the decision timestamps.
	if !childRec.T.Equal(time.Date(2009, 5, 25, 10, 0, 0, 0, time.UTC)) {
		t.Fatalf("child decision timestamp = %v", childRec.T)
	}
	if !parentRec.T.Equal(time.Date(2009, 5, 25, 10, 0, 1, 0, time.UTC)) {
		t.Fatalf("parent decision timestamp = %v", parentRec.T)
	}

	// The child's plan phase recorded a verdict for every rule, with the
	// firing rule marked and the silent ones explained.
	if len(childRec.Rules) != len(child.Engine().Rules()) {
		t.Fatalf("recorded %d rule verdicts for %d rules",
			len(childRec.Rules), len(child.Engine().Rules()))
	}
	fired := 0
	for _, rv := range childRec.Rules {
		if rv.Fired {
			fired++
			if rv.Rule != "CheckInterArrivalRateLow" {
				t.Fatalf("unexpected fired rule %q", rv.Rule)
			}
			if rv.Failed != "" {
				t.Fatalf("fired rule carries failing pattern %q", rv.Failed)
			}
		} else if rv.Failed == "" {
			t.Fatalf("silent rule %q has no failing pattern", rv.Rule)
		}
	}
	if fired != 1 {
		t.Fatalf("%d rules fired, want 1", fired)
	}
	if childRec.Actions[0].Op != rules.OpRaiseViolation {
		t.Fatalf("child actions = %+v", childRec.Actions)
	}
	if parentRec.Actions[0].Op != string(trace.IncRate) {
		t.Fatalf("parent actions = %+v", parentRec.Actions)
	}
	for _, ph := range []int64{childRec.Phases.Sense, childRec.Phases.Analyze,
		childRec.Phases.Plan, childRec.Phases.Act} {
		if ph < 0 {
			t.Fatalf("negative phase duration: %+v", childRec.Phases)
		}
	}
}

// TestDecisionTraceTwoPhaseChain verifies that one causality id spans the
// whole §3.2 two-phase interaction: the GM's intent, the security
// manager's prepared, and the GM's committed records chain together.
func TestDecisionTraceTwoPhaseChain(t *testing.T) {
	plat := grid.NewTwoDomainGrid(0, 4)
	f, _ := skel.NewFarm(skel.FarmConfig{
		Name: "f", Env: skel.Env{TimeScale: 1000}, RM: plat.RM, InitialWorkers: 1,
	})
	fa := abc.NewFarmABC(f, nil)
	log := trace.NewLog()
	sec, _ := NewSecurityManager(SecurityConfig{
		Log: log, Policy: security.Policy{Network: plat.Network},
	})
	gm, _ := NewGeneralManager("GM", sec, log, nil, TwoPhase)
	tracer := telemetry.NewTracer(0)
	gm.SetTracer(tracer)
	gm.Coordinate(fa)

	in := make(chan *skel.Task)
	out := make(chan *skel.Task, 16)
	go func() {
		for range out {
		}
	}()
	go f.Run(context.Background(), in, out)
	deadline := time.Now().Add(5 * time.Second)
	for len(f.Workers()) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("farm never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := fa.Execute(rules.OpAddExecutor); err != nil {
		t.Fatal(err)
	}
	close(in)

	// Find the intent record for the Execute-driven add and walk its
	// chain. (Run's own worker spawns may have produced earlier chains.)
	var cause uint64
	for _, r := range tracer.Last(0) {
		if r.Manager == "GM" && hasEvent(r, trace.Intent) {
			cause = r.Cause
		}
	}
	if cause == 0 {
		t.Fatal("no GM intent record with a causality id")
	}
	chain := tracer.ByCause(cause)
	if len(chain) != 3 {
		t.Fatalf("two-phase chain has %d records, want 3: %+v", len(chain), chain)
	}
	if chain[0].Manager != "GM" || !hasEvent(chain[0], trace.Intent) {
		t.Fatalf("chain[0] is not the GM intent: %+v", chain[0])
	}
	if chain[1].Manager != "AM_sec" || !hasEvent(chain[1], trace.Prepared) {
		t.Fatalf("chain[1] is not the AM_sec prepare: %+v", chain[1])
	}
	if len(chain[1].Actions) != 1 || chain[1].Actions[0].Op != "SECURE_BINDING" {
		t.Fatalf("prepare actions = %+v", chain[1].Actions)
	}
	if chain[2].Manager != "GM" || !hasEvent(chain[2], trace.Committed) {
		t.Fatalf("chain[2] is not the GM commit: %+v", chain[2])
	}
	if chain[1].Concern != "security" || chain[0].Concern != "coordination" {
		t.Fatalf("concerns = %q/%q", chain[0].Concern, chain[1].Concern)
	}
}

package manager

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/abc"
	"repro/internal/runtime"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// This file implements an autonomic manager for the fault-tolerance
// concern C_ft — one of the non-functional concerns §2 of the paper lists
// ("fault tolerance can be supported ... using redundant control in such a
// way that a limited number of faults can be tolerated"). Like the
// security manager it is a second, independent hierarchy in the MM scheme:
// its control loop detects crashed farm workers through the ABC monitor,
// redistributes their stranded tasks over the surviving workers, and
// replaces the lost capacity.

// FaultConfig parameterizes a FaultManager.
type FaultConfig struct {
	Name  string // default "AM_ft"
	Clock simclock.Clock
	Log   *trace.Log
	// Period is the detection loop period (the fault-detection latency).
	Period time.Duration
	// Replace controls whether a recovered worker is also replaced by a
	// freshly recruited one (default true).
	Replace *bool
	// SuspectAfter enables progress-based failure detection: a worker
	// with queued tasks whose served count does not advance for this
	// long (clock time) is declared crashed, exactly as a heartbeat
	// timeout would. Zero disables it (only explicitly injected crashes
	// are detected). Like any timeout detector it can false-positive on
	// genuinely slow tasks; pick it well above the expected service time.
	SuspectAfter time.Duration
	// PollOnly disables the crash-edge wake-up, leaving only the periodic
	// detection tick (the wake-up latency benchmark's baseline).
	PollOnly bool
}

// FaultManager is the AM of the fault-tolerance concern.
type FaultManager struct {
	cfg     FaultConfig
	clock   simclock.Clock
	log     *trace.Log
	replace bool

	mu        sync.Mutex
	farms     []*abc.FarmABC
	recovered int
	replaced  int
	suspected int
	progress  map[string]progressEntry

	running atomic.Bool
	life    runtime.Lifecycle
}

// progressEntry tracks a worker's last observed progress for the timeout
// detector.
type progressEntry struct {
	served int
	since  time.Time
}

// NewFaultManager validates cfg and builds the manager.
func NewFaultManager(cfg FaultConfig) (*FaultManager, error) {
	if cfg.Log == nil {
		return nil, fmt.Errorf("manager: fault manager needs a trace log")
	}
	if cfg.Name == "" {
		cfg.Name = "AM_ft"
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.NewReal()
	}
	if cfg.Period <= 0 {
		cfg.Period = 100 * time.Millisecond
	}
	replace := true
	if cfg.Replace != nil {
		replace = *cfg.Replace
	}
	return &FaultManager{
		cfg: cfg, clock: cfg.Clock, log: cfg.Log, replace: replace,
		progress: map[string]progressEntry{},
	}, nil
}

// Suspected returns how many stalled workers the timeout detector
// declared crashed.
func (m *FaultManager) Suspected() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.suspected
}

// Name returns the manager's name.
func (m *FaultManager) Name() string { return m.cfg.Name }

// Recovered returns how many crashes were repaired.
func (m *FaultManager) Recovered() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recovered
}

// Replaced returns how many replacement workers were recruited.
func (m *FaultManager) Replaced() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.replaced
}

// Watch registers a farm for fault supervision.
func (m *FaultManager) Watch(f *abc.FarmABC) {
	m.mu.Lock()
	m.farms = append(m.farms, f)
	m.mu.Unlock()
}

// RunOnce performs one detection cycle: every crashed worker found in a
// watched farm is recovered (its stranded tasks redistributed) and, when
// configured, replaced. It returns the number of crashes repaired.
func (m *FaultManager) RunOnce() int {
	m.mu.Lock()
	farms := make([]*abc.FarmABC, len(m.farms))
	copy(farms, m.farms)
	m.mu.Unlock()

	repaired := 0
	for _, fa := range farms {
		if m.cfg.SuspectAfter > 0 {
			m.suspectStalled(fa)
		}
		for _, w := range fa.Workers() {
			if !w.Failed {
				continue
			}
			m.log.Record(m.clock.Now(), m.cfg.Name, trace.WorkerFail,
				fmt.Sprintf("%s on %s (%d tasks stranded)", w.ID, w.Node.ID, w.QueueLen))
			n, err := fa.Farm().RecoverWorker(w.ID)
			if err != nil {
				// Typically: no live worker to recover onto. Recruit one
				// (valid even after end of stream) and retry on the next
				// cycle.
				if _, err := fa.Farm().AddRecoveryWorker(); err == nil {
					m.mu.Lock()
					m.replaced++
					m.mu.Unlock()
				}
				continue
			}
			repaired++
			m.mu.Lock()
			m.recovered++
			m.mu.Unlock()
			m.log.Record(m.clock.Now(), m.cfg.Name, trace.Recovered,
				fmt.Sprintf("%s: %d tasks redistributed", w.ID, n))
			if m.replace {
				if id, err := fa.Farm().AddWorker(); err == nil {
					m.mu.Lock()
					m.replaced++
					m.mu.Unlock()
					m.log.Record(m.clock.Now(), m.cfg.Name, trace.AddWorker,
						fmt.Sprintf("%s replaces %s", id, w.ID))
				}
			}
		}
	}
	return repaired
}

// suspectStalled declares workers crashed when their served count has not
// advanced despite queued work for longer than SuspectAfter.
func (m *FaultManager) suspectStalled(fa *abc.FarmABC) {
	now := m.clock.Now()
	for _, w := range fa.Workers() {
		if w.Failed {
			continue
		}
		if w.QueueLen == 0 {
			// Idle workers make no progress legitimately.
			m.mu.Lock()
			delete(m.progress, w.ID)
			m.mu.Unlock()
			continue
		}
		m.mu.Lock()
		e, ok := m.progress[w.ID]
		if !ok || e.served != w.Served {
			m.progress[w.ID] = progressEntry{served: w.Served, since: now}
			m.mu.Unlock()
			continue
		}
		stalled := now.Sub(e.since) >= m.cfg.SuspectAfter
		m.mu.Unlock()
		if !stalled {
			continue
		}
		if err := fa.Farm().KillWorker(w.ID); err != nil {
			continue
		}
		m.mu.Lock()
		m.suspected++
		delete(m.progress, w.ID)
		m.mu.Unlock()
		m.log.Record(now, m.cfg.Name, trace.WorkerFail,
			fmt.Sprintf("%s suspected stalled (no progress for %v, %d queued)",
				w.ID, m.cfg.SuspectAfter, w.QueueLen))
	}
}

// Run executes the detection loop until ctx is canceled, then returns nil.
// Besides the periodic tick, every farm watched at the time Run starts
// contributes its crash edge as a wake-up (unless PollOnly), so an
// injected fault is detected in milliseconds rather than after up to one
// detection period. Run returns an error immediately if the loop is
// already running.
func (m *FaultManager) Run(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if !m.running.CompareAndSwap(false, true) {
		return fmt.Errorf("manager %s: detection loop already running", m.cfg.Name)
	}
	defer m.running.Store(false)

	var wake runtime.Notifier
	if !m.cfg.PollOnly {
		m.mu.Lock()
		farms := make([]*abc.FarmABC, len(m.farms))
		copy(farms, m.farms)
		m.mu.Unlock()
		for _, fa := range farms {
			defer fa.OnEdge(wake.Notify)()
		}
	}
	ticker := m.clock.NewTicker(m.cfg.Period)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C():
		case <-wake.C():
		}
		m.RunOnce()
	}
}

// Start launches the detection loop on a background goroutine. A second
// Start while running is a no-op.
func (m *FaultManager) Start() { m.life.Start(m.Run) }

// Stop terminates the detection loop and waits for it to exit. It is
// idempotent.
func (m *FaultManager) Stop() { _ = m.life.Stop() }

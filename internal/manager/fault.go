package manager

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/abc"
	"repro/internal/grid"
	"repro/internal/runtime"
	"repro/internal/simclock"
	"repro/internal/skel"
	"repro/internal/trace"
)

// This file implements an autonomic manager for the fault-tolerance
// concern C_ft — one of the non-functional concerns §2 of the paper lists
// ("fault tolerance can be supported ... using redundant control in such a
// way that a limited number of faults can be tolerated"). Like the
// security manager it is a second, independent hierarchy in the MM scheme:
// its control loop detects crashed farm workers through the ABC monitor,
// redistributes their stranded tasks over the surviving workers, and
// replaces the lost capacity.

// FaultConfig parameterizes a FaultManager.
type FaultConfig struct {
	Name  string // default "AM_ft"
	Clock simclock.Clock
	Log   *trace.Log
	// Period is the detection loop period (the fault-detection latency).
	Period time.Duration
	// Replace controls whether a recovered worker is also replaced by a
	// freshly recruited one (default true).
	Replace *bool
	// SuspectAfter enables progress-based failure detection: a worker
	// with queued tasks whose served count does not advance for this
	// long (clock time) is declared crashed, exactly as a heartbeat
	// timeout would. Zero disables it (only explicitly injected crashes
	// are detected). Like any timeout detector it can false-positive on
	// genuinely slow tasks; pick it well above the expected service time.
	SuspectAfter time.Duration
	// SuspectGrace shields freshly added workers from the timeout
	// detector: a worker that has served nothing yet is not suspected
	// until it has been visible for this long (recruitment, the security
	// handshake and a long first task all look exactly like a stall).
	// The grace is keyed on the time the detector first saw the worker —
	// its add time, up to one detection period. Defaults to 2×SuspectAfter.
	SuspectGrace time.Duration
	// RM, when set, arms the node circuit breaker: a node whose workers
	// crash QuarantineAfter times is quarantined from recruitment for
	// QuarantineCooldown.
	RM *grid.ResourceManager
	// QuarantineAfter is the per-node crash count tripping the breaker
	// (default 3; meaningful only with RM set).
	QuarantineAfter int
	// QuarantineCooldown is how long a tripped node stays out of the
	// recruitment pool (default 10×Period).
	QuarantineCooldown time.Duration
	// Retry is the backoff policy for replacement recruitment; transient
	// recruitment errors are retried under it, while pool exhaustion and
	// end of stream fail fast. The zero value uses the runtime defaults.
	Retry runtime.Backoff
	// PollOnly disables the crash-edge wake-up, leaving only the periodic
	// detection tick (the wake-up latency benchmark's baseline).
	PollOnly bool
}

// FaultManager is the AM of the fault-tolerance concern.
type FaultManager struct {
	cfg     FaultConfig
	clock   simclock.Clock
	log     *trace.Log
	replace bool

	mu          sync.Mutex
	farms       []*abc.FarmABC
	recovered   int
	replaced    int
	suspected   int
	quarantined int
	progress    map[string]progressEntry
	// seen is when the detector first observed each live worker — its add
	// time up to one detection period — anchoring the suspect grace.
	seen map[string]time.Time
	// nodeCrashes counts worker crashes per node for the circuit breaker;
	// crashCounted ensures one crash is charged to its node exactly once
	// even when recovery takes several cycles.
	nodeCrashes  map[string]int
	crashCounted map[string]bool
	// degraded is set while recruitment keeps failing: the manager stays
	// live (it still recovers stranded tasks onto survivors) but raises
	// the violation upward instead of silently wedging the loop.
	degraded        bool
	recruitFailures uint64

	// crashFlag marks a pending injected crash: the detection loop dies on
	// its next wake and the supervisor restarts it. Detector state (crash
	// charges, progress marks) survives in the struct.
	crashFlag atomic.Bool

	running atomic.Bool
	life    runtime.Lifecycle
}

// progressEntry tracks a worker's last observed progress for the timeout
// detector.
type progressEntry struct {
	served int
	since  time.Time
}

// NewFaultManager validates cfg and builds the manager.
func NewFaultManager(cfg FaultConfig) (*FaultManager, error) {
	if cfg.Log == nil {
		return nil, fmt.Errorf("manager: fault manager needs a trace log")
	}
	if cfg.Name == "" {
		cfg.Name = "AM_ft"
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.NewReal()
	}
	if cfg.Period <= 0 {
		cfg.Period = 100 * time.Millisecond
	}
	if cfg.SuspectGrace <= 0 {
		cfg.SuspectGrace = 2 * cfg.SuspectAfter
	}
	if cfg.QuarantineAfter <= 0 {
		cfg.QuarantineAfter = 3
	}
	if cfg.QuarantineCooldown <= 0 {
		cfg.QuarantineCooldown = 10 * cfg.Period
	}
	if cfg.Retry.Clock == nil {
		cfg.Retry.Clock = cfg.Clock
	}
	replace := true
	if cfg.Replace != nil {
		replace = *cfg.Replace
	}
	return &FaultManager{
		cfg: cfg, clock: cfg.Clock, log: cfg.Log, replace: replace,
		progress:     map[string]progressEntry{},
		seen:         map[string]time.Time{},
		nodeCrashes:  map[string]int{},
		crashCounted: map[string]bool{},
	}, nil
}

// Suspected returns how many stalled workers the timeout detector
// declared crashed.
func (m *FaultManager) Suspected() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.suspected
}

// Name returns the manager's name.
func (m *FaultManager) Name() string { return m.cfg.Name }

// Recovered returns how many crashes were repaired.
func (m *FaultManager) Recovered() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recovered
}

// Replaced returns how many replacement workers were recruited.
func (m *FaultManager) Replaced() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.replaced
}

// Quarantined returns how many nodes the circuit breaker has tripped.
func (m *FaultManager) Quarantined() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.quarantined
}

// Degraded reports whether the manager is currently in degraded mode:
// recruitment keeps failing, so lost capacity cannot be replaced and the
// violation has been raised upward (P_rol).
func (m *FaultManager) Degraded() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.degraded
}

// ActuatorFailures returns how many recruitment actuations ultimately
// failed (after retry); exported at /metrics as actuator_failures.
func (m *FaultManager) ActuatorFailures() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recruitFailures
}

// permanentRecruitErr reports recruitment errors that retrying cannot fix:
// pool exhaustion and a farm past end of stream.
func permanentRecruitErr(err error) bool {
	return errors.Is(err, grid.ErrExhausted) || errors.Is(err, skel.ErrStreamEnded)
}

// recruit runs one recruitment actuation under the retry policy, tracking
// the degraded-mode transitions: entering it raises the violation upward,
// leaving it is logged as a return to active management.
func (m *FaultManager) recruit(kind string, add func() (string, error)) (string, error) {
	var id string
	err := runtime.Retry(context.Background(), m.cfg.Retry, func() error {
		var err error
		id, err = add()
		return err
	}, permanentRecruitErr)
	if errors.Is(err, skel.ErrStreamEnded) {
		// Benign: past end of stream there is no capacity to restore.
		return "", err
	}
	m.mu.Lock()
	if err != nil {
		m.recruitFailures++
		entered := !m.degraded
		m.degraded = true
		m.mu.Unlock()
		if entered {
			m.log.Record(m.clock.Now(), m.cfg.Name, trace.RaiseViol,
				fmt.Sprintf("%s recruitment failed, degraded: %v", kind, err))
		}
		return "", err
	}
	left := m.degraded
	m.degraded = false
	m.mu.Unlock()
	if left {
		m.log.Record(m.clock.Now(), m.cfg.Name, trace.EnterActive,
			fmt.Sprintf("recruitment restored (%s)", kind))
	}
	return id, nil
}

// chargeCrash charges one worker crash to its node and trips the circuit
// breaker when the node reaches the configured crash count.
func (m *FaultManager) chargeCrash(workerID, nodeID string) {
	if m.cfg.RM == nil {
		return
	}
	m.mu.Lock()
	if m.crashCounted[workerID] {
		m.mu.Unlock()
		return
	}
	m.crashCounted[workerID] = true
	m.nodeCrashes[nodeID]++
	tripped := m.nodeCrashes[nodeID] >= m.cfg.QuarantineAfter
	if tripped {
		m.nodeCrashes[nodeID] = 0
		m.quarantined++
	}
	m.mu.Unlock()
	if tripped && m.cfg.RM.Quarantine(nodeID, m.cfg.QuarantineCooldown) {
		m.log.Record(m.clock.Now(), m.cfg.Name, trace.Quarantine,
			fmt.Sprintf("%s: %d worker crashes, cooling down for %v",
				nodeID, m.cfg.QuarantineAfter, m.cfg.QuarantineCooldown))
	}
}

// Watch registers a farm for fault supervision.
func (m *FaultManager) Watch(f *abc.FarmABC) {
	m.mu.Lock()
	m.farms = append(m.farms, f)
	m.mu.Unlock()
}

// RunOnce performs one detection cycle: every crashed worker found in a
// watched farm is recovered (its stranded tasks redistributed) and, when
// configured, replaced. It returns the number of crashes repaired.
func (m *FaultManager) RunOnce() int {
	m.mu.Lock()
	farms := make([]*abc.FarmABC, len(m.farms))
	copy(farms, m.farms)
	m.mu.Unlock()

	repaired := 0
	live := map[string]bool{}
	for _, fa := range farms {
		if m.cfg.SuspectAfter > 0 {
			m.suspectStalled(fa)
		}
		for _, w := range fa.Workers() {
			if !w.Failed {
				live[w.ID] = true
				continue
			}
			m.log.Record(m.clock.Now(), m.cfg.Name, trace.WorkerFail,
				fmt.Sprintf("%s on %s (%d tasks stranded)", w.ID, w.Node.ID, w.QueueLen))
			m.chargeCrash(w.ID, w.Node.ID)
			n, err := fa.Farm().RecoverWorker(w.ID)
			if err != nil {
				// Typically: no live worker to recover onto. Recruit one
				// (valid even after end of stream) and retry on the next
				// cycle. A recruitment failure flips the manager into
				// degraded mode rather than wedging the loop.
				farm, prep := fa.Farm(), fa.Prepare()
				if _, err := m.recruit("recovery", func() (string, error) {
					return farm.AddRecoveryWorkerWithPrepare(prep)
				}); err == nil {
					m.mu.Lock()
					m.replaced++
					m.mu.Unlock()
				}
				continue
			}
			repaired++
			m.mu.Lock()
			m.recovered++
			m.mu.Unlock()
			m.log.Record(m.clock.Now(), m.cfg.Name, trace.Recovered,
				fmt.Sprintf("%s: %d tasks redistributed", w.ID, n))
			if m.replace {
				farm, prep := fa.Farm(), fa.Prepare()
				if id, err := m.recruit("replacement", func() (string, error) {
					return farm.AddWorkerWithPrepare(prep)
				}); err == nil {
					m.mu.Lock()
					m.replaced++
					m.mu.Unlock()
					m.log.Record(m.clock.Now(), m.cfg.Name, trace.AddWorker,
						fmt.Sprintf("%s replaces %s", id, w.ID))
				}
			}
		}
	}
	m.pruneSeen(live)
	return repaired
}

// pruneSeen drops first-seen and progress bookkeeping for workers that are
// no longer live, keeping the maps bounded across long soaks.
func (m *FaultManager) pruneSeen(live map[string]bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for id := range m.seen {
		if !live[id] {
			delete(m.seen, id)
			delete(m.progress, id)
		}
	}
}

// suspectStalled declares workers crashed when their served count has not
// advanced despite queued work for longer than SuspectAfter. Workers that
// have never served a task are shielded by SuspectGrace from their first
// sighting: a fresh worker legitimately shows zero progress while it is
// recruited, has its binding secured and chews its first task, and killing
// it then would throw away capacity the farm just paid for.
func (m *FaultManager) suspectStalled(fa *abc.FarmABC) {
	now := m.clock.Now()
	for _, w := range fa.Workers() {
		if w.Failed {
			continue
		}
		m.mu.Lock()
		first, known := m.seen[w.ID]
		if !known {
			first = now
			m.seen[w.ID] = now
		}
		m.mu.Unlock()
		if w.QueueLen == 0 {
			// Idle workers make no progress legitimately.
			m.mu.Lock()
			delete(m.progress, w.ID)
			m.mu.Unlock()
			continue
		}
		m.mu.Lock()
		e, ok := m.progress[w.ID]
		if !ok || e.served != w.Served {
			m.progress[w.ID] = progressEntry{served: w.Served, since: now}
			m.mu.Unlock()
			continue
		}
		stalled := now.Sub(e.since) >= m.cfg.SuspectAfter
		m.mu.Unlock()
		if !stalled {
			continue
		}
		if w.Served == 0 && now.Sub(first) < m.cfg.SuspectGrace {
			continue // still in the warm-up grace window
		}
		if err := fa.Farm().KillWorker(w.ID); err != nil {
			continue
		}
		m.mu.Lock()
		m.suspected++
		delete(m.progress, w.ID)
		m.mu.Unlock()
		m.log.Record(now, m.cfg.Name, trace.WorkerFail,
			fmt.Sprintf("%s suspected stalled (no progress for %v, %d queued)",
				w.ID, m.cfg.SuspectAfter, w.QueueLen))
	}
}

// Run executes the detection loop until ctx is canceled, then returns nil.
// Besides the periodic tick, every farm watched at the time Run starts
// contributes its crash edge as a wake-up (unless PollOnly), so an
// injected fault is detected in milliseconds rather than after up to one
// detection period. Run returns an error immediately if the loop is
// already running.
func (m *FaultManager) Run(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if !m.running.CompareAndSwap(false, true) {
		return fmt.Errorf("manager %s: detection loop already running", m.cfg.Name)
	}
	defer m.running.Store(false)

	var wake runtime.Notifier
	if !m.cfg.PollOnly {
		m.mu.Lock()
		farms := make([]*abc.FarmABC, len(m.farms))
		copy(farms, m.farms)
		m.mu.Unlock()
		for _, fa := range farms {
			defer fa.OnEdge(wake.Notify)()
		}
	}
	ticker := m.clock.NewTicker(m.cfg.Period)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C():
		case <-wake.C():
		}
		if m.crashFlag.CompareAndSwap(true, false) {
			m.log.Record(m.clock.Now(), m.cfg.Name, trace.Crashed, "injected")
			return fmt.Errorf("manager %s: %w", m.cfg.Name, ErrInjectedCrash)
		}
		m.RunOnce()
	}
}

// InjectCrash marks the detection loop for an injected crash on its next
// wake; the supervisor restarts it with the detector state intact.
// Returns true (the fault is always deliverable).
func (m *FaultManager) InjectCrash() bool {
	m.crashFlag.Store(true)
	return true
}

// Start launches the detection loop on a background goroutine. A second
// Start while running is a no-op.
func (m *FaultManager) Start() { m.life.Start(m.Run) }

// Stop terminates the detection loop and waits for it to exit. It is
// idempotent.
func (m *FaultManager) Stop() { _ = m.life.Stop() }

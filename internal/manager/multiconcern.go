package manager

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/abc"
	"repro/internal/grid"
	"repro/internal/rules"
	"repro/internal/runtime"
	"repro/internal/security"
	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// This file implements the multi-concern (MM) management scheme of §3.2:
// one hierarchy per concern — here performance (the Managers of this
// package) and security (SecurityManager) — coordinated by a general
// manager (GeneralManager) that arbitrates cross-concern actions with the
// two-phase protocol: (i) AM_perf expresses the *intent* to add a worker,
// (ii) AM_sec reacts by securing the new binding, (iii) AM_perf commits
// and only then does the worker receive tasks.

// CoordinationMode selects how the security concern is enforced when the
// performance manager reconfigures the farm.
type CoordinationMode int

// Coordination modes.
const (
	// TwoPhase is the paper's protocol: bindings are secured before the
	// new worker can receive any task. Zero leaks by construction.
	TwoPhase CoordinationMode = iota
	// Reactive is the naive scheme §3.2 warns about: AM_perf commits by
	// itself and AM_sec secures the binding on its next control cycle;
	// messages sent in between are exposed.
	Reactive
	// Unmanaged disables the security manager entirely (baseline).
	Unmanaged
)

// String implements fmt.Stringer.
func (m CoordinationMode) String() string {
	switch m {
	case TwoPhase:
		return "two-phase"
	case Reactive:
		return "reactive"
	default:
		return "unmanaged"
	}
}

// SecurityConfig parameterizes a SecurityManager.
type SecurityConfig struct {
	Name  string // default "AM_sec"
	Clock simclock.Clock
	Log   *trace.Log
	// Policy decides which bindings must be secured.
	Policy security.Policy
	// DispatchNode anchors the policy checks (where S/C run). Optional.
	DispatchNode *grid.Node
	// Key is the session key for secured bindings (default: random).
	Key []byte
	// Handshake is the simulated SSL session-establishment latency paid
	// by each newly secured binding.
	Handshake time.Duration
	// Period is the reactive-mode control-loop period.
	Period time.Duration
}

// SecurityManager is the AM of the security concern C_sec. In two-phase
// mode it acts during the prepare step of farm reconfigurations; in
// reactive mode it runs its own control loop scanning for bindings that
// violate the policy.
type SecurityManager struct {
	cfg    SecurityConfig
	clock  simclock.Clock
	log    *trace.Log
	tracer *telemetry.Tracer

	mu      sync.Mutex
	farms   []*abc.FarmABC
	secured int

	// downUntil (clock UnixNano) is the end of the current crash window:
	// while set in the future the manager is "dead" — prepare requests are
	// refused with abc.ErrManagerDown and the reactive scan is suspended.
	// The window models the gap between the process dying and its
	// supervised replacement accepting requests again.
	downUntil atomic.Int64
	crashes   atomic.Uint64

	running atomic.Bool
	life    runtime.Lifecycle
}

// NewSecurityManager validates cfg and builds the manager.
func NewSecurityManager(cfg SecurityConfig) (*SecurityManager, error) {
	if cfg.Log == nil {
		return nil, fmt.Errorf("manager: security manager needs a trace log")
	}
	if cfg.Name == "" {
		cfg.Name = "AM_sec"
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.NewReal()
	}
	if len(cfg.Key) == 0 {
		cfg.Key = security.NewRandomKey()
	}
	if cfg.Period <= 0 {
		cfg.Period = 100 * time.Millisecond
	}
	return &SecurityManager{cfg: cfg, clock: cfg.Clock, log: cfg.Log}, nil
}

// Name returns the manager's name.
func (s *SecurityManager) Name() string { return s.cfg.Name }

// SetTracer attaches the decision tracer; a nil tracer disables decision
// tracing (the default).
func (s *SecurityManager) SetTracer(t *telemetry.Tracer) { s.tracer = t }

// Secured returns how many bindings this manager has secured so far.
func (s *SecurityManager) Secured() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.secured
}

// Watch registers a farm whose bindings the manager supervises in
// reactive mode.
func (s *SecurityManager) Watch(f *abc.FarmABC) {
	s.mu.Lock()
	s.farms = append(s.farms, f)
	s.mu.Unlock()
}

// newCodec builds a fresh secure codec paying the configured handshake.
func (s *SecurityManager) newCodec() (security.Codec, error) {
	return security.NewAESGCM(s.cfg.Key, s.clock, s.cfg.Handshake)
}

// FailFor kills the manager for d of clock time: the chaos plane's
// manager-crash fault for the two-phase participant. Until the window
// elapses (the supervised restart coming back up), every prepare request
// is refused with abc.ErrManagerDown and the reactive scan is suspended.
func (s *SecurityManager) FailFor(d time.Duration) {
	if d <= 0 {
		return
	}
	s.downUntil.Store(s.clock.Now().Add(d).UnixNano())
	s.crashes.Add(1)
	s.log.Record(s.clock.Now(), s.cfg.Name, trace.Crashed,
		fmt.Sprintf("down for %v", d))
}

// Available reports whether the manager is up (not inside a crash window).
func (s *SecurityManager) Available() bool {
	until := s.downUntil.Load()
	return until == 0 || s.clock.Now().UnixNano() >= until
}

// Crashes returns how many crash windows have been injected.
func (s *SecurityManager) Crashes() uint64 { return s.crashes.Load() }

// PrepareWorker is the manager's contribution to the two-phase protocol:
// called between recruitment and first dispatch, it secures the binding if
// the policy requires it.
func (s *SecurityManager) PrepareWorker(id string, node *grid.Node, setCodec func(security.Codec)) error {
	return s.prepareWorker(0, id, node, setCodec)
}

// prepareWorker is PrepareWorker carrying the coordinator's causality id,
// so the AM_sec prepare record chains to the GM intent/commit records.
func (s *SecurityManager) prepareWorker(cause uint64, id string, node *grid.Node, setCodec func(security.Codec)) error {
	if !s.Available() {
		return fmt.Errorf("manager %s: preparing %s: %w", s.cfg.Name, id, abc.ErrManagerDown)
	}
	if !s.cfg.Policy.RequireSecure(s.cfg.DispatchNode, node) {
		return nil
	}
	codec, err := s.newCodec()
	if err != nil {
		return fmt.Errorf("manager %s: securing %s: %w", s.cfg.Name, id, err)
	}
	if !s.Available() {
		// Died mid-handshake: the binding must not be half-secured — the
		// codec is discarded, the coordinator aborts, the farm rolls the
		// worker back before it could receive a single task.
		return fmt.Errorf("manager %s: died securing %s: %w", s.cfg.Name, id, abc.ErrManagerDown)
	}
	setCodec(codec)
	s.mu.Lock()
	s.secured++
	s.mu.Unlock()
	detail := fmt.Sprintf("%s on %s (%s)", id, node.ID, node.Domain.Name)
	s.log.Record(s.clock.Now(), s.cfg.Name, trace.Prepared, detail)
	s.log.Record(s.clock.Now(), s.cfg.Name, trace.Secured, id)
	if s.tracer != nil {
		s.tracer.Record(telemetry.DecisionRecord{
			T: s.clock.Now(), Manager: s.cfg.Name, Concern: "security",
			State: "active", Cause: cause,
			Actions: []telemetry.ActionRec{{Op: "SECURE_BINDING", Detail: id}},
			Events: []telemetry.EventRec{
				{Kind: string(trace.Prepared), Detail: detail},
				{Kind: string(trace.Secured), Detail: id},
			},
		})
	}
	return nil
}

// RunOnce performs one reactive control cycle: every watched binding that
// the policy requires to be secure but is not gets rebound onto the secure
// codec. It returns the number of bindings secured this cycle.
func (s *SecurityManager) RunOnce() int {
	if !s.Available() {
		return 0
	}
	s.mu.Lock()
	farms := make([]*abc.FarmABC, len(s.farms))
	copy(farms, s.farms)
	s.mu.Unlock()
	n := 0
	var acts []telemetry.ActionRec
	for _, f := range farms {
		for _, w := range f.Workers() {
			if w.Secure || !s.cfg.Policy.RequireSecure(s.cfg.DispatchNode, w.Node) {
				continue
			}
			codec, err := s.newCodec()
			if err != nil {
				continue
			}
			if err := f.SecureBinding(w.ID, codec); err != nil {
				continue
			}
			n++
			s.mu.Lock()
			s.secured++
			s.mu.Unlock()
			s.log.Record(s.clock.Now(), s.cfg.Name, trace.Secured,
				fmt.Sprintf("%s (reactive)", w.ID))
			if s.tracer != nil {
				acts = append(acts, telemetry.ActionRec{Op: "SECURE_BINDING", Detail: w.ID + " (reactive)"})
			}
		}
	}
	if s.tracer != nil && n > 0 {
		s.tracer.Record(telemetry.DecisionRecord{
			T: s.clock.Now(), Manager: s.cfg.Name, Concern: "security",
			State: "active", Actions: acts,
		})
	}
	return n
}

// Run executes the reactive control loop until ctx is canceled, then
// returns nil. The loop is deliberately tick-only: farms fire no edge on
// worker *addition*, so a reactively managed binding stays exposed until
// the next security cycle — exactly the §3.2 hazard window the
// MultiConcern experiment measures. Run returns an error immediately if
// the loop is already running.
func (s *SecurityManager) Run(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if !s.running.CompareAndSwap(false, true) {
		return fmt.Errorf("manager %s: reactive loop already running", s.cfg.Name)
	}
	defer s.running.Store(false)

	ticker := s.clock.NewTicker(s.cfg.Period)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C():
			s.RunOnce()
		}
	}
}

// Start launches the reactive control loop on a background goroutine. A
// second Start while running is a no-op.
func (s *SecurityManager) Start() { s.life.Start(s.Run) }

// Stop terminates the reactive loop and waits for it to exit. It is
// idempotent.
func (s *SecurityManager) Stop() { _ = s.life.Stop() }

// SecurityParticipant is the GM's two-phase participant seam: the local
// SecurityManager by default, or a RemoteParticipant when the security
// concern lives across a manager link. The GM's abort/re-issue machinery
// is written against this interface, so a partitioned link and a crashed
// local manager take the same ErrManagerDown path.
type SecurityParticipant interface {
	Name() string
	Available() bool
	prepareWorker(cause uint64, id string, node *grid.Node, setCodec func(security.Codec)) error
}

// GeneralManager is the GM of §3.2: it owns the per-concern managers and
// wires the cross-concern coordination protocol into the farms' actuator
// paths.
type GeneralManager struct {
	name   string
	clock  simclock.Clock
	log    *trace.Log
	sec    *SecurityManager
	part   SecurityParticipant // two-phase participant; defaults to sec
	mode   CoordinationMode
	tracer *telemetry.Tracer

	// period paces the GM's own control loop (crash-flag checks and
	// re-issue of aborted intents). Default 100ms clock time.
	period time.Duration
	// pending counts two-phase intents aborted because the participant was
	// down, per farm; the GM's loop re-issues them once the participant is
	// back. This is the GM's durable intent log: an injected GM crash does
	// not wipe it, the supervised restart resumes the re-issue duty.
	pendingMu sync.Mutex
	pending   map[*abc.FarmABC]int
	aborted   atomic.Uint64
	reissued  atomic.Uint64
	crashFlag atomic.Bool

	running atomic.Bool
	life    runtime.Lifecycle
}

// maxPendingIntents caps the per-farm re-issue backlog: during a long
// participant outage the performance manager keeps re-sensing and
// re-intending, and replaying every one of those after recovery would
// overshoot the topology the contract actually needs.
const maxPendingIntents = 4

// NewGeneralManager builds a GM over the given security manager.
func NewGeneralManager(name string, sec *SecurityManager, log *trace.Log, clock simclock.Clock, mode CoordinationMode) (*GeneralManager, error) {
	if log == nil {
		return nil, fmt.Errorf("manager: general manager needs a trace log")
	}
	if name == "" {
		name = "GM"
	}
	if clock == nil {
		clock = simclock.NewReal()
	}
	if sec == nil && mode == Reactive {
		return nil, fmt.Errorf("manager: %s coordination needs a security manager", mode)
	}
	g := &GeneralManager{
		name: name, clock: clock, log: log, sec: sec, mode: mode,
		period:  100 * time.Millisecond,
		pending: map[*abc.FarmABC]int{},
	}
	if sec != nil {
		g.part = sec
	}
	return g, nil
}

// SetParticipant replaces the GM's two-phase participant — the seam that
// routes prepare/commit over a manager link instead of the in-process
// SecurityManager. Call before Coordinate/Run.
func (g *GeneralManager) SetParticipant(p SecurityParticipant) {
	if p != nil {
		g.part = p
	}
}

// Participant returns the two-phase participant in force.
func (g *GeneralManager) Participant() SecurityParticipant { return g.part }

// SetPeriod changes the GM loop period (clock time, already scaled by the
// caller). Call before Run.
func (g *GeneralManager) SetPeriod(d time.Duration) {
	if d > 0 {
		g.period = d
	}
}

// Name returns the GM's name.
func (g *GeneralManager) Name() string { return g.name }

// Mode returns the coordination mode in force.
func (g *GeneralManager) Mode() CoordinationMode { return g.mode }

// SetTracer attaches the decision tracer to the GM and its security
// manager; a nil tracer disables decision tracing (the default).
func (g *GeneralManager) SetTracer(t *telemetry.Tracer) {
	g.tracer = t
	if g.sec != nil {
		g.sec.SetTracer(t)
	}
}

// decision emits one GM coordination record (no-op without a tracer).
func (g *GeneralManager) decision(cause uint64, kind trace.Kind, detail string) {
	if g.tracer == nil {
		return
	}
	g.tracer.Record(telemetry.DecisionRecord{
		T: g.clock.Now(), Manager: g.name, Concern: "coordination",
		State: "active", Cause: cause,
		Events: []telemetry.EventRec{{Kind: string(kind), Detail: detail}},
	})
}

// Coordinate installs the coordination protocol on a farm's actuator path.
// In TwoPhase mode every ADD_EXECUTOR goes intent -> prepare (security) ->
// commit; in Reactive mode the security manager merely watches the farm;
// in Unmanaged mode nothing is installed.
func (g *GeneralManager) Coordinate(farm *abc.FarmABC) {
	switch g.mode {
	case TwoPhase:
		if g.part == nil {
			g.log.Record(g.clock.Now(), g.name, trace.Kind("error"),
				"two-phase coordination without a participant; farm left unmanaged")
			return
		}
		farm.SetPrepare(func(id string, node *grid.Node, setCodec func(security.Codec)) error {
			// One causality id spans the whole intent -> prepare -> commit
			// chain, so /trace?cause=N reconstructs the protocol run.
			var cause uint64
			if g.tracer != nil {
				cause = g.tracer.NextCause()
			}
			detail := fmt.Sprintf("add %s on %s (%s)", id, node.ID, node.Domain.Name)
			g.log.Record(g.clock.Now(), g.name, trace.Intent, detail)
			g.decision(cause, trace.Intent, detail)
			if err := g.part.prepareWorker(cause, id, node, setCodec); err != nil {
				// Abort: the farm rolls the prepared worker back (node
				// released, never dispatched to), so no plaintext binding
				// can survive the failure. A participant-down abort is
				// additionally recorded for re-issue after recovery.
				g.log.Record(g.clock.Now(), g.name, trace.Aborted, err.Error())
				g.decision(cause, trace.Aborted, err.Error())
				if errors.Is(err, abc.ErrManagerDown) {
					g.recordAbort(farm)
				}
				return err
			}
			g.log.Record(g.clock.Now(), g.name, trace.Committed, id)
			g.decision(cause, trace.Committed, id)
			return nil
		})
	case Reactive:
		g.sec.Watch(farm)
	case Unmanaged:
		// baseline: no security enforcement at all
	}
}

// recordAbort notes one participant-down abort for farm, bounded by
// maxPendingIntents per farm.
func (g *GeneralManager) recordAbort(farm *abc.FarmABC) {
	g.aborted.Add(1)
	g.pendingMu.Lock()
	if g.pending[farm] < maxPendingIntents {
		g.pending[farm]++
	}
	g.pendingMu.Unlock()
}

// AbortedIntents returns how many two-phase intents were aborted because
// the participant manager was down.
func (g *GeneralManager) AbortedIntents() uint64 { return g.aborted.Load() }

// ReissuedIntents returns how many aborted intents were re-issued (and
// committed) after the participant recovered. Always ≤ AbortedIntents.
func (g *GeneralManager) ReissuedIntents() uint64 { return g.reissued.Load() }

// PendingIntents returns how many aborted intents still await re-issue.
func (g *GeneralManager) PendingIntents() int {
	g.pendingMu.Lock()
	defer g.pendingMu.Unlock()
	n := 0
	for _, k := range g.pending {
		n += k
	}
	return n
}

// InjectCrash marks the GM for an injected crash: its loop dies on the
// next tick and the supervisor restarts it. The pending-intent log
// survives in the struct — the restarted GM resumes the re-issue duty.
// Returns true (the fault is always deliverable).
func (g *GeneralManager) InjectCrash() bool {
	g.crashFlag.Store(true)
	return true
}

// ReissueOnce re-drives aborted intents while the participant is up: each
// one re-runs the full intent -> prepare -> commit ladder through the
// farm's actuator path (recruiting a fresh node — the rolled-back one may
// be gone). A participant flapping down again stops the round; intents the
// farm can no longer service (stream ended, pool exhausted) are dropped.
// It returns how many intents committed.
func (g *GeneralManager) ReissueOnce() int {
	if g.mode != TwoPhase || (g.part != nil && !g.part.Available()) {
		return 0
	}
	g.pendingMu.Lock()
	farms := make([]*abc.FarmABC, 0, len(g.pending))
	for f, n := range g.pending {
		if n > 0 {
			farms = append(farms, f)
		}
	}
	g.pendingMu.Unlock()
	total := 0
	for _, f := range farms {
		for {
			g.pendingMu.Lock()
			n := g.pending[f]
			g.pendingMu.Unlock()
			if n <= 0 {
				break
			}
			detail, err := f.Execute(rules.OpAddExecutor)
			if err != nil {
				if errors.Is(err, abc.ErrManagerDown) {
					return total // participant flapped; retry next tick
				}
				g.pendingMu.Lock()
				g.pending[f]--
				g.pendingMu.Unlock()
				g.log.Record(g.clock.Now(), g.name, trace.Aborted,
					"re-issue dropped: "+err.Error())
				continue
			}
			g.pendingMu.Lock()
			g.pending[f]--
			g.pendingMu.Unlock()
			g.reissued.Add(1)
			g.log.Record(g.clock.Now(), g.name, trace.Reissued, detail)
			g.decision(0, trace.Reissued, detail)
			total++
		}
	}
	return total
}

// loop is the GM's own control loop: it watches for injected crashes and
// re-issues aborted two-phase intents once the participant is back.
func (g *GeneralManager) loop(ctx context.Context) error {
	ticker := g.clock.NewTicker(g.period)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C():
		}
		if g.crashFlag.CompareAndSwap(true, false) {
			g.log.Record(g.clock.Now(), g.name, trace.Crashed, "injected")
			return fmt.Errorf("manager %s: %w", g.name, ErrInjectedCrash)
		}
		g.ReissueOnce()
	}
}

// Run supervises the GM's concern managers until ctx is canceled, then
// returns nil. The GM owns a small loop of its own in every managed mode:
// it checks the injected-crash flag and re-issues aborted two-phase
// intents once the participant recovers. Reactive mode additionally runs
// the security manager's scanning cycle in the same group. Unmanaged mode
// just blocks until cancelation. Run returns an error immediately if the
// GM is already running.
func (g *GeneralManager) Run(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if !g.running.CompareAndSwap(false, true) {
		return fmt.Errorf("manager %s: already running", g.name)
	}
	defer g.running.Store(false)

	switch g.mode {
	case Reactive:
		grp, _ := runtime.NewGroup(ctx)
		if g.sec != nil {
			grp.Run(g.sec)
		}
		grp.Go(g.loop)
		return grp.Wait()
	case TwoPhase:
		return g.loop(ctx)
	default:
		<-ctx.Done()
		return nil
	}
}

// Start launches the GM's supervision on a background goroutine. A second
// Start while running is a no-op.
func (g *GeneralManager) Start() { g.life.Start(g.Run) }

// Stop terminates the supervision and waits for it to exit. It is
// idempotent.
func (g *GeneralManager) Stop() { _ = g.life.Stop() }

package manager

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/abc"
	"repro/internal/grid"
	"repro/internal/runtime"
	"repro/internal/security"
	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// This file implements the multi-concern (MM) management scheme of §3.2:
// one hierarchy per concern — here performance (the Managers of this
// package) and security (SecurityManager) — coordinated by a general
// manager (GeneralManager) that arbitrates cross-concern actions with the
// two-phase protocol: (i) AM_perf expresses the *intent* to add a worker,
// (ii) AM_sec reacts by securing the new binding, (iii) AM_perf commits
// and only then does the worker receive tasks.

// CoordinationMode selects how the security concern is enforced when the
// performance manager reconfigures the farm.
type CoordinationMode int

// Coordination modes.
const (
	// TwoPhase is the paper's protocol: bindings are secured before the
	// new worker can receive any task. Zero leaks by construction.
	TwoPhase CoordinationMode = iota
	// Reactive is the naive scheme §3.2 warns about: AM_perf commits by
	// itself and AM_sec secures the binding on its next control cycle;
	// messages sent in between are exposed.
	Reactive
	// Unmanaged disables the security manager entirely (baseline).
	Unmanaged
)

// String implements fmt.Stringer.
func (m CoordinationMode) String() string {
	switch m {
	case TwoPhase:
		return "two-phase"
	case Reactive:
		return "reactive"
	default:
		return "unmanaged"
	}
}

// SecurityConfig parameterizes a SecurityManager.
type SecurityConfig struct {
	Name  string // default "AM_sec"
	Clock simclock.Clock
	Log   *trace.Log
	// Policy decides which bindings must be secured.
	Policy security.Policy
	// DispatchNode anchors the policy checks (where S/C run). Optional.
	DispatchNode *grid.Node
	// Key is the session key for secured bindings (default: random).
	Key []byte
	// Handshake is the simulated SSL session-establishment latency paid
	// by each newly secured binding.
	Handshake time.Duration
	// Period is the reactive-mode control-loop period.
	Period time.Duration
}

// SecurityManager is the AM of the security concern C_sec. In two-phase
// mode it acts during the prepare step of farm reconfigurations; in
// reactive mode it runs its own control loop scanning for bindings that
// violate the policy.
type SecurityManager struct {
	cfg    SecurityConfig
	clock  simclock.Clock
	log    *trace.Log
	tracer *telemetry.Tracer

	mu      sync.Mutex
	farms   []*abc.FarmABC
	secured int

	running atomic.Bool
	life    runtime.Lifecycle
}

// NewSecurityManager validates cfg and builds the manager.
func NewSecurityManager(cfg SecurityConfig) (*SecurityManager, error) {
	if cfg.Log == nil {
		return nil, fmt.Errorf("manager: security manager needs a trace log")
	}
	if cfg.Name == "" {
		cfg.Name = "AM_sec"
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.NewReal()
	}
	if len(cfg.Key) == 0 {
		cfg.Key = security.NewRandomKey()
	}
	if cfg.Period <= 0 {
		cfg.Period = 100 * time.Millisecond
	}
	return &SecurityManager{cfg: cfg, clock: cfg.Clock, log: cfg.Log}, nil
}

// Name returns the manager's name.
func (s *SecurityManager) Name() string { return s.cfg.Name }

// SetTracer attaches the decision tracer; a nil tracer disables decision
// tracing (the default).
func (s *SecurityManager) SetTracer(t *telemetry.Tracer) { s.tracer = t }

// Secured returns how many bindings this manager has secured so far.
func (s *SecurityManager) Secured() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.secured
}

// Watch registers a farm whose bindings the manager supervises in
// reactive mode.
func (s *SecurityManager) Watch(f *abc.FarmABC) {
	s.mu.Lock()
	s.farms = append(s.farms, f)
	s.mu.Unlock()
}

// newCodec builds a fresh secure codec paying the configured handshake.
func (s *SecurityManager) newCodec() (security.Codec, error) {
	return security.NewAESGCM(s.cfg.Key, s.clock, s.cfg.Handshake)
}

// PrepareWorker is the manager's contribution to the two-phase protocol:
// called between recruitment and first dispatch, it secures the binding if
// the policy requires it.
func (s *SecurityManager) PrepareWorker(id string, node *grid.Node, setCodec func(security.Codec)) error {
	return s.prepareWorker(0, id, node, setCodec)
}

// prepareWorker is PrepareWorker carrying the coordinator's causality id,
// so the AM_sec prepare record chains to the GM intent/commit records.
func (s *SecurityManager) prepareWorker(cause uint64, id string, node *grid.Node, setCodec func(security.Codec)) error {
	if !s.cfg.Policy.RequireSecure(s.cfg.DispatchNode, node) {
		return nil
	}
	codec, err := s.newCodec()
	if err != nil {
		return fmt.Errorf("manager %s: securing %s: %w", s.cfg.Name, id, err)
	}
	setCodec(codec)
	s.mu.Lock()
	s.secured++
	s.mu.Unlock()
	detail := fmt.Sprintf("%s on %s (%s)", id, node.ID, node.Domain.Name)
	s.log.Record(s.clock.Now(), s.cfg.Name, trace.Prepared, detail)
	s.log.Record(s.clock.Now(), s.cfg.Name, trace.Secured, id)
	if s.tracer != nil {
		s.tracer.Record(telemetry.DecisionRecord{
			T: s.clock.Now(), Manager: s.cfg.Name, Concern: "security",
			State: "active", Cause: cause,
			Actions: []telemetry.ActionRec{{Op: "SECURE_BINDING", Detail: id}},
			Events: []telemetry.EventRec{
				{Kind: string(trace.Prepared), Detail: detail},
				{Kind: string(trace.Secured), Detail: id},
			},
		})
	}
	return nil
}

// RunOnce performs one reactive control cycle: every watched binding that
// the policy requires to be secure but is not gets rebound onto the secure
// codec. It returns the number of bindings secured this cycle.
func (s *SecurityManager) RunOnce() int {
	s.mu.Lock()
	farms := make([]*abc.FarmABC, len(s.farms))
	copy(farms, s.farms)
	s.mu.Unlock()
	n := 0
	var acts []telemetry.ActionRec
	for _, f := range farms {
		for _, w := range f.Workers() {
			if w.Secure || !s.cfg.Policy.RequireSecure(s.cfg.DispatchNode, w.Node) {
				continue
			}
			codec, err := s.newCodec()
			if err != nil {
				continue
			}
			if err := f.SecureBinding(w.ID, codec); err != nil {
				continue
			}
			n++
			s.mu.Lock()
			s.secured++
			s.mu.Unlock()
			s.log.Record(s.clock.Now(), s.cfg.Name, trace.Secured,
				fmt.Sprintf("%s (reactive)", w.ID))
			if s.tracer != nil {
				acts = append(acts, telemetry.ActionRec{Op: "SECURE_BINDING", Detail: w.ID + " (reactive)"})
			}
		}
	}
	if s.tracer != nil && n > 0 {
		s.tracer.Record(telemetry.DecisionRecord{
			T: s.clock.Now(), Manager: s.cfg.Name, Concern: "security",
			State: "active", Actions: acts,
		})
	}
	return n
}

// Run executes the reactive control loop until ctx is canceled, then
// returns nil. The loop is deliberately tick-only: farms fire no edge on
// worker *addition*, so a reactively managed binding stays exposed until
// the next security cycle — exactly the §3.2 hazard window the
// MultiConcern experiment measures. Run returns an error immediately if
// the loop is already running.
func (s *SecurityManager) Run(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if !s.running.CompareAndSwap(false, true) {
		return fmt.Errorf("manager %s: reactive loop already running", s.cfg.Name)
	}
	defer s.running.Store(false)

	ticker := s.clock.NewTicker(s.cfg.Period)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C():
			s.RunOnce()
		}
	}
}

// Start launches the reactive control loop on a background goroutine. A
// second Start while running is a no-op.
func (s *SecurityManager) Start() { s.life.Start(s.Run) }

// Stop terminates the reactive loop and waits for it to exit. It is
// idempotent.
func (s *SecurityManager) Stop() { _ = s.life.Stop() }

// GeneralManager is the GM of §3.2: it owns the per-concern managers and
// wires the cross-concern coordination protocol into the farms' actuator
// paths.
type GeneralManager struct {
	name   string
	clock  simclock.Clock
	log    *trace.Log
	sec    *SecurityManager
	mode   CoordinationMode
	tracer *telemetry.Tracer

	running atomic.Bool
	life    runtime.Lifecycle
}

// NewGeneralManager builds a GM over the given security manager.
func NewGeneralManager(name string, sec *SecurityManager, log *trace.Log, clock simclock.Clock, mode CoordinationMode) (*GeneralManager, error) {
	if log == nil {
		return nil, fmt.Errorf("manager: general manager needs a trace log")
	}
	if name == "" {
		name = "GM"
	}
	if clock == nil {
		clock = simclock.NewReal()
	}
	if sec == nil && mode != Unmanaged {
		return nil, fmt.Errorf("manager: %s coordination needs a security manager", mode)
	}
	return &GeneralManager{name: name, clock: clock, log: log, sec: sec, mode: mode}, nil
}

// Name returns the GM's name.
func (g *GeneralManager) Name() string { return g.name }

// Mode returns the coordination mode in force.
func (g *GeneralManager) Mode() CoordinationMode { return g.mode }

// SetTracer attaches the decision tracer to the GM and its security
// manager; a nil tracer disables decision tracing (the default).
func (g *GeneralManager) SetTracer(t *telemetry.Tracer) {
	g.tracer = t
	if g.sec != nil {
		g.sec.SetTracer(t)
	}
}

// decision emits one GM coordination record (no-op without a tracer).
func (g *GeneralManager) decision(cause uint64, kind trace.Kind, detail string) {
	if g.tracer == nil {
		return
	}
	g.tracer.Record(telemetry.DecisionRecord{
		T: g.clock.Now(), Manager: g.name, Concern: "coordination",
		State: "active", Cause: cause,
		Events: []telemetry.EventRec{{Kind: string(kind), Detail: detail}},
	})
}

// Coordinate installs the coordination protocol on a farm's actuator path.
// In TwoPhase mode every ADD_EXECUTOR goes intent -> prepare (security) ->
// commit; in Reactive mode the security manager merely watches the farm;
// in Unmanaged mode nothing is installed.
func (g *GeneralManager) Coordinate(farm *abc.FarmABC) {
	switch g.mode {
	case TwoPhase:
		farm.SetPrepare(func(id string, node *grid.Node, setCodec func(security.Codec)) error {
			// One causality id spans the whole intent -> prepare -> commit
			// chain, so /trace?cause=N reconstructs the protocol run.
			var cause uint64
			if g.tracer != nil {
				cause = g.tracer.NextCause()
			}
			detail := fmt.Sprintf("add %s on %s (%s)", id, node.ID, node.Domain.Name)
			g.log.Record(g.clock.Now(), g.name, trace.Intent, detail)
			g.decision(cause, trace.Intent, detail)
			if err := g.sec.prepareWorker(cause, id, node, setCodec); err != nil {
				g.log.Record(g.clock.Now(), g.name, trace.Aborted, err.Error())
				g.decision(cause, trace.Aborted, err.Error())
				return err
			}
			g.log.Record(g.clock.Now(), g.name, trace.Committed, id)
			g.decision(cause, trace.Committed, id)
			return nil
		})
	case Reactive:
		g.sec.Watch(farm)
	case Unmanaged:
		// baseline: no security enforcement at all
	}
}

// Run supervises the GM's concern managers until ctx is canceled, then
// returns nil. Only Reactive mode owns a loop (the security manager's
// scanning cycle); TwoPhase coordination acts synchronously inside the
// actuator path and Unmanaged has nothing to run, so in those modes Run
// just blocks until cancelation. Run returns an error immediately if the
// GM is already running.
func (g *GeneralManager) Run(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if !g.running.CompareAndSwap(false, true) {
		return fmt.Errorf("manager %s: already running", g.name)
	}
	defer g.running.Store(false)

	if g.mode == Reactive && g.sec != nil {
		grp, _ := runtime.NewGroup(ctx)
		grp.Run(g.sec)
		return grp.Wait()
	}
	<-ctx.Done()
	return nil
}

// Start launches the GM's supervision on a background goroutine. A second
// Start while running is a no-op.
func (g *GeneralManager) Start() { g.life.Start(g.Run) }

// Stop terminates the supervision and waits for it to exit. It is
// idempotent.
func (g *GeneralManager) Stop() { _ = g.life.Stop() }

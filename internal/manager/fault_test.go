package manager

import (
	"context"
	"testing"
	"time"

	"repro/internal/abc"
	"repro/internal/grid"
	"repro/internal/skel"
	"repro/internal/trace"
)

func newRunningFarmForFT(t testing.TB) (*skel.Farm, *abc.FarmABC, chan *skel.Task, chan int, func()) {
	t.Helper()
	f, err := skel.NewFarm(skel.FarmConfig{
		Name: "ft", Env: skel.Env{TimeScale: 200}, RM: grid.NewSMP(8).RM, InitialWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan *skel.Task)
	out := make(chan *skel.Task, 256)
	count := make(chan int, 1)
	go func() {
		n := 0
		for range out {
			n++
		}
		count <- n
	}()
	done := make(chan struct{})
	go func() { f.Run(context.Background(), in, out); close(done) }()
	deadline := time.Now().Add(5 * time.Second)
	for len(f.Workers()) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("farm never started")
		}
		time.Sleep(time.Millisecond)
	}
	fa := abc.NewFarmABC(f, nil)
	stop := func() {
		close(in)
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("farm did not terminate")
		}
	}
	return f, fa, in, count, stop
}

func TestFaultManagerValidation(t *testing.T) {
	if _, err := NewFaultManager(FaultConfig{}); err == nil {
		t.Fatal("fault manager without log accepted")
	}
	m, err := NewFaultManager(FaultConfig{Log: trace.NewLog()})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "AM_ft" {
		t.Fatalf("default name = %q", m.Name())
	}
}

func TestFaultManagerRecoversCrash(t *testing.T) {
	f, fa, in, count, stop := newRunningFarmForFT(t)
	log := trace.NewLog()
	ft, err := NewFaultManager(FaultConfig{Log: log, Period: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ft.Watch(fa)

	// Backlog, then crash one worker.
	for i := 0; i < 20; i++ {
		in <- &skel.Task{ID: skel.NextTaskID(), Work: time.Second}
	}
	victim := f.Workers()[0].ID
	if err := f.KillWorker(victim); err != nil {
		t.Fatal(err)
	}

	// One detection cycle repairs it: tasks redistributed + replacement.
	deadline := time.Now().Add(5 * time.Second)
	for ft.RunOnce() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("fault never detected")
		}
		time.Sleep(time.Millisecond)
	}
	if ft.Recovered() != 1 {
		t.Fatalf("Recovered = %d", ft.Recovered())
	}
	if ft.Replaced() != 1 {
		t.Fatalf("Replaced = %d", ft.Replaced())
	}
	if log.Count("AM_ft", trace.WorkerFail) == 0 || log.Count("AM_ft", trace.Recovered) == 0 {
		t.Fatalf("events missing:\n%s", log.Timeline())
	}
	if log.Count("AM_ft", trace.AddWorker) != 1 {
		t.Fatalf("replacement not logged:\n%s", log.Timeline())
	}

	stop()
	if n := <-count; n != 20 {
		t.Fatalf("completed %d/20 despite recovery", n)
	}
}

func TestFaultManagerLoopAndIdempotence(t *testing.T) {
	f, fa, in, count, stop := newRunningFarmForFT(t)
	log := trace.NewLog()
	ft, _ := NewFaultManager(FaultConfig{Log: log, Period: time.Millisecond})
	ft.Watch(fa)
	ft.Start()
	ft.Start() // idempotent
	for i := 0; i < 10; i++ {
		in <- &skel.Task{ID: skel.NextTaskID(), Work: 500 * time.Millisecond}
	}
	victim := f.Workers()[1].ID
	if err := f.KillWorker(victim); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for ft.Recovered() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("loop never recovered the crash")
		}
		time.Sleep(time.Millisecond)
	}
	ft.Stop()
	ft.Stop() // idempotent
	stop()
	if n := <-count; n != 10 {
		t.Fatalf("completed %d/10", n)
	}
}

func TestFaultManagerSuspectsStalledWorker(t *testing.T) {
	// Two single-core nodes; one gets stalled via near-total external
	// load so its worker stops making progress while holding a queue.
	dom := grid.Domain{Name: "c", Trusted: true}
	n0 := grid.NewNode("n0", dom, 1, 1.0)
	n1 := grid.NewNode("n1", dom, 1, 1.0)
	spare := grid.NewNode("n2", dom, 1, 1.0)
	rm := grid.NewResourceManager(n0, n1, spare)
	f, err := skel.NewFarm(skel.FarmConfig{
		Name: "hb", Env: skel.Env{TimeScale: 1000}, RM: rm, InitialWorkers: 2,
		Dispatch: skel.RoundRobin,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan *skel.Task)
	out := make(chan *skel.Task, 256)
	count := make(chan int, 1)
	go func() {
		n := 0
		for range out {
			n++
		}
		count <- n
	}()
	done := make(chan struct{})
	go func() { f.Run(context.Background(), in, out); close(done) }()
	deadline := time.Now().Add(5 * time.Second)
	for len(f.Workers()) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("farm never started")
		}
		time.Sleep(time.Millisecond)
	}

	// Stall one worker's node (100x slowdown) and give everyone work.
	// At 0.99 load a 2 s task takes 200 s modelled (200 ms real at this
	// scale): far beyond the 50 ms suspicion timeout, so the worker is
	// effectively hung while holding a queue.
	victim := f.Workers()[0]
	victim.Node.SetExternalLoad(0.99)
	for i := 0; i < 30; i++ {
		in <- &skel.Task{ID: skel.NextTaskID(), Work: 2 * time.Second}
	}

	log := trace.NewLog()
	ft, _ := NewFaultManager(FaultConfig{
		Log: log, Period: time.Millisecond, SuspectAfter: 50 * time.Millisecond,
	})
	ft.Watch(abc.NewFarmABC(f, nil))
	ft.Start()
	deadline = time.Now().Add(10 * time.Second)
	for ft.Suspected() == 0 || ft.Recovered() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("stall never detected/recovered (suspected=%d recovered=%d):\n%s",
				ft.Suspected(), ft.Recovered(), log.Timeline())
		}
		time.Sleep(time.Millisecond)
	}
	ft.Stop()
	close(in)
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("farm hung after stall recovery")
	}
	if n := <-count; n != 30 {
		t.Fatalf("completed %d/30", n)
	}
	if log.Count("AM_ft", trace.WorkerFail) == 0 {
		t.Fatalf("no workerFail event:\n%s", log.Timeline())
	}
}

func TestFaultManagerNoReplace(t *testing.T) {
	f, fa, in, count, stop := newRunningFarmForFT(t)
	log := trace.NewLog()
	replace := false
	ft, _ := NewFaultManager(FaultConfig{Log: log, Replace: &replace})
	ft.Watch(fa)
	for i := 0; i < 6; i++ {
		in <- &skel.Task{ID: skel.NextTaskID(), Work: 500 * time.Millisecond}
	}
	victim := f.Workers()[0].ID
	f.KillWorker(victim)
	deadline := time.Now().Add(5 * time.Second)
	for ft.RunOnce() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("fault never detected")
		}
		time.Sleep(time.Millisecond)
	}
	if ft.Replaced() != 0 {
		t.Fatalf("Replaced = %d with replacement disabled", ft.Replaced())
	}
	stop()
	if n := <-count; n != 6 {
		t.Fatalf("completed %d/6", n)
	}
}

package manager

import (
	"fmt"
	"math"
	"time"

	"repro/internal/abc"
	"repro/internal/contract"
	"repro/internal/rules"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// This file provides the standard manager policies of the paper's
// experiments: the farm manager AM_F (Fig. 5 rules parameterized by the
// contract), the producer manager AM_P (rate contracts applied to the
// source actuator), passive stage managers, and the application/pipeline
// manager AM_A that coordinates its stage managers hierarchically.

// throughputBounds extracts the throughput range governing a contract
// (walking conjunctions); a contract with no throughput component yields
// [0, +Inf), which parameterizes the farm rules into best-effort behaviour.
func throughputBounds(c contract.Contract) (lo, hi float64) {
	switch c := c.(type) {
	case contract.ThroughputRange:
		return c.Lo, c.Hi
	case contract.Conjunction:
		for _, sub := range c {
			if tr, ok := sub.(contract.ThroughputRange); ok {
				return tr.Lo, tr.Hi
			}
		}
	}
	return 0, math.Inf(1)
}

// FarmLimits bounds the farm manager's reconfiguration space.
type FarmLimits struct {
	MinWorkers   int     // default 1
	MaxWorkers   int     // default 64
	MaxUnbalance float64 // queue-variance threshold for rebalance; default 4
}

func (l FarmLimits) normalized() FarmLimits {
	if l.MinWorkers < 1 {
		l.MinWorkers = 1
	}
	if l.MaxWorkers < l.MinWorkers {
		l.MaxWorkers = 64
		if l.MaxWorkers < l.MinWorkers {
			l.MaxWorkers = l.MinWorkers
		}
	}
	if l.MaxUnbalance <= 0 {
		l.MaxUnbalance = 4
	}
	return l
}

// NewFarmManager builds the AM of a task-farm behavioural skeleton: the
// Fig. 5 rule engine, re-parameterized from each assigned throughput
// contract, plus the best-effort farm split for its children.
func NewFarmManager(name string, a abc.Controller, log *trace.Log, clock simclock.Clock, period time.Duration, limits FarmLimits) (*Manager, error) {
	limits = limits.normalized()
	mkEngine := func(c contract.Contract) *rules.Engine {
		lo, hi := throughputBounds(c)
		return rules.NewFarmEngine(rules.FarmConstants(
			lo, hi, limits.MinWorkers, limits.MaxWorkers, limits.MaxUnbalance))
	}
	m, err := New(Config{
		Name:       name,
		Concern:    "performance",
		Clock:      clock,
		Period:     period,
		Controller: a,
		Engine:     mkEngine(contract.BestEffort{}),
		Log:        log,
		Policy: Policy{
			OnContract: func(m *Manager, c contract.Contract) {
				m.SetEngine(mkEngine(c))
			},
			Split: contract.SplitFarm,
		},
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// NewSourceManager builds the AM of a producer stage (AM_P): it has no
// local rules. A pure rate demand (an unbounded lower-bound contract, the
// shape AM_A's incRate/decRate reactions send) is applied by retargeting
// the emission rate. A bounded range contract — the stage's share of the
// application SLA forwarded by the pipeline split — is only monitored: as
// in the paper, forwarding c_tRange does not by itself make the producer
// faster; only explicit rate contracts do.
func NewSourceManager(name string, a *abc.SourceABC, log *trace.Log, clock simclock.Clock, period time.Duration) (*Manager, error) {
	return New(Config{
		Name:       name,
		Concern:    "performance",
		Clock:      clock,
		Period:     period,
		Controller: a,
		Log:        log,
		Policy: Policy{
			OnContract: func(m *Manager, c contract.Contract) {
				if tr, ok := c.(contract.ThroughputRange); ok && tr.Lo > 0 && !tr.Bounded() {
					a.SetTargetRate(tr.Lo)
				}
			},
		},
	})
}

// NewMonitorManager builds a sensors-only AM for stages with no actuator
// surface (the Consumer stage manager AM_C of Fig. 4).
func NewMonitorManager(name string, ctrl abc.Controller, log *trace.Log, clock simclock.Clock, period time.Duration) (*Manager, error) {
	return New(Config{
		Name:       name,
		Concern:    "performance",
		Clock:      clock,
		Period:     period,
		Controller: ctrl,
		Log:        log,
	})
}

// PipelineCoordinator is the hierarchical policy of the application
// manager AM_A in Fig. 4: it splits its contract identically over the
// stage managers (pipeline performance model) and reacts to farm-stage
// violations by adjusting the producer's rate contract — incRate on
// notEnoughTasks, decRate on tooMuchTasks, and nothing once the stream has
// ended (the endStream phase where notEnough persists unanswered).
type PipelineCoordinator struct {
	// Producer is the stage manager receiving rate contracts.
	Producer *Manager
	// Step is the multiplicative rate-adjustment factor (default 1.3).
	Step float64
	// Floor is the minimum requested rate when starting from a silent
	// producer (default 0.05 tasks/s).
	Floor float64
	// Cap bounds the requested rate (0 = uncapped). Because the measured
	// arrival rate lags the sliding window, uncapped compounding can
	// overshoot wildly; the builders set it slightly above the contract's
	// upper bound so the mild overshoot-then-decRate of Fig. 4 survives.
	Cap float64
	// Weights are the optional stage weights for par-degree splits.
	Weights []float64

	requested float64
	endLogged bool
	endStream bool
}

func (p *PipelineCoordinator) step() float64 {
	if p.Step <= 1 {
		return 1.3
	}
	return p.Step
}

func (p *PipelineCoordinator) floor() float64 {
	if p.Floor <= 0 {
		return 0.05
	}
	return p.Floor
}

// OnChildViolation implements the AM_A reaction policy.
func (p *PipelineCoordinator) OnChildViolation(m *Manager, v Violation) {
	switch v.Tag {
	case rules.TagNotEnoughTasks:
		if v.Snapshot.StreamDone || p.endStream {
			// No significant action is possible: the stream is over.
			if !p.endLogged {
				m.event(trace.EndStream, "")
				p.endLogged = true
			}
			p.endStream = p.endStream || v.Snapshot.StreamDone
			return
		}
		base := math.Max(math.Max(v.Snapshot.ArrivalRate, p.requested), p.floor())
		p.requested = base * p.step()
		if p.Cap > 0 && p.requested > p.Cap {
			p.requested = p.Cap
		}
		detail := fmt.Sprintf("rate->%.3f", p.requested)
		m.event(trace.IncRate, detail)
		m.noteAction(string(trace.IncRate), detail, nil)
		if p.Producer != nil {
			_ = p.Producer.AssignContract(contract.MinThroughput(p.requested))
		}
	case rules.TagTooMuchTasks:
		base := math.Max(v.Snapshot.ArrivalRate, p.requested)
		p.requested = base / p.step()
		detail := fmt.Sprintf("rate->%.3f", p.requested)
		m.event(trace.DecRate, detail)
		m.noteAction(string(trace.DecRate), detail, nil)
		if p.Producer != nil {
			_ = p.Producer.AssignContract(contract.MinThroughput(p.requested))
		}
	}
}

// NewPipelineManager builds the application manager AM_A over a pipeline
// ABC with the PipelineCoordinator policy. Attach the stage managers with
// AttachChild before assigning the top-level contract.
func NewPipelineManager(name string, ctrl abc.Controller, coord *PipelineCoordinator, log *trace.Log, clock simclock.Clock, period time.Duration) (*Manager, error) {
	if coord == nil {
		coord = &PipelineCoordinator{}
	}
	return New(Config{
		Name:       name,
		Concern:    "performance",
		Clock:      clock,
		Period:     period,
		Controller: ctrl,
		Log:        log,
		Policy: Policy{
			OnChildViolation: coord.OnChildViolation,
			Split: func(c contract.Contract, n int) ([]contract.Contract, error) {
				return contract.SplitPipeline(c, n, coord.Weights)
			},
		},
	})
}

package manager

import (
	"context"
	"testing"
	"time"

	"repro/internal/skel"
	"repro/internal/trace"
)

// benchmarkCrashDetection measures the wall-clock latency from an
// injected worker crash to its recovery by the fault manager's loop, with
// a deliberately long 100ms poll period so the two wake-up paths
// separate: the event-driven loop reacts in well under one period (the
// crash edge fires immediately), the poll-only baseline averages half a
// period. Run with:
//
//	go test ./internal/manager -bench WakeupLatency -benchtime 20x
func benchmarkCrashDetection(b *testing.B, pollOnly bool) {
	const period = 100 * time.Millisecond
	f, fa, in, count, stopFarm := newRunningFarmForFT(b)
	defer func() {
		stopFarm()
		<-count
	}()
	ft, err := NewFaultManager(FaultConfig{
		Log: trace.NewLog(), Period: period, PollOnly: pollOnly,
	})
	if err != nil {
		b.Fatal(err)
	}
	ft.Watch(fa)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = ft.Run(ctx)
	}()
	defer func() {
		cancel()
		<-done
	}()
	for !ft.running.Load() {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)

	// Keep a small standing backlog so recovery always has tasks to
	// redistribute.
	for i := 0; i < 4; i++ {
		in <- &skel.Task{ID: skel.NextTaskID(), Work: time.Second}
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target := ft.Recovered() + 1
		var victim string
		for _, w := range f.Workers() {
			if !w.Failed {
				victim = w.ID
				break
			}
		}
		if victim == "" {
			b.Fatal("no live worker to crash")
		}
		if err := f.KillWorker(victim); err != nil {
			b.Fatal(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for ft.Recovered() < target {
			if time.Now().After(deadline) {
				b.Fatal("crash never recovered")
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
}

// BenchmarkWakeupLatency compares the crash-to-recovery latency of the
// event-driven wake-up against the poll-only baseline. ns/op is the
// detection latency; expect event << period and poll ≈ period/2.
func BenchmarkWakeupLatency(b *testing.B) {
	b.Run("event", func(b *testing.B) { benchmarkCrashDetection(b, false) })
	b.Run("poll", func(b *testing.B) { benchmarkCrashDetection(b, true) })
}

package manager

import (
	"context"
	"testing"

	"repro/internal/contract"
	"repro/internal/runtime"
	"repro/internal/trace"
)

// BenchmarkManagerRunOnce measures one full MAPE cycle on the manual-drive
// path — since the self-healing layer this includes taking the post-cycle
// checkpoint, so the delta against BenchmarkTakeCheckpoint isolates the
// checkpoint's share of the control-loop budget.
func BenchmarkManagerRunOnce(b *testing.B) {
	ctrl := &stub{}
	ctrl.setSnap(contract.Snapshot{Throughput: 0.5})
	m, err := New(Config{
		Name: "AM", Controller: ctrl, Log: trace.NewLog(),
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := m.AssignContract(contract.ThroughputRange{Lo: 0.3, Hi: 0.7}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.RunOnce(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTakeCheckpoint measures the checkpoint snapshot alone: the only
// per-cycle cost the self-healing layer adds to a healthy control loop.
func BenchmarkTakeCheckpoint(b *testing.B) {
	ctrl := &stub{}
	m, err := New(Config{
		Name: "AM", Controller: ctrl, Log: trace.NewLog(),
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := m.AssignContract(contract.ThroughputRange{Lo: 0.3, Hi: 0.7}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.takeCheckpoint()
	}
}

// BenchmarkSupervisorWrap measures the one-time cost of running a Runnable
// under a Supervisor instead of bare: construction plus one clean
// run-to-completion. Supervision adds nothing per loop iteration — the
// wrapper sits outside the inner Run — so this start-up cost is the whole
// overhead of a supervised manager that never fails.
func BenchmarkSupervisorWrap(b *testing.B) {
	ctx := context.Background()
	run := func(context.Context) error { return nil }
	b.Run("bare", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := run(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("supervised", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := runtime.Supervise(run, runtime.SupervisorConfig{Name: "bench"})
			if err := s.Run(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}

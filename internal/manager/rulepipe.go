package manager

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/abc"
	"repro/internal/contract"
	"repro/internal/rules"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// This file implements the rule-driven variant of the application manager
// AM_A: instead of the hard-coded PipelineCoordinator policy, the child
// violations are published into the rule engine's working memory as
// ViolationBeans and the PipeRuleSource rules decide the reaction. The
// actuator side (computing the new producer rate and assigning the
// contract) stays a mechanism, implemented by the controller below —
// exactly the policy/mechanism split of P_rol.

// ruleCoordinator wraps a pipeline monitor into a Controller that (a)
// publishes pending child violations as beans and (b) implements the
// incRate/decRate/endStream operations fired by the pipeline rules.
type ruleCoordinator struct {
	mon      abc.Monitor
	producer *Manager
	step     float64
	cap      float64
	floor    float64

	mu        sync.Mutex
	pending   []Violation
	last      Violation // violation that produced the current cycle's beans
	requested float64
	ended     bool
}

func (c *ruleCoordinator) enqueue(_ *Manager, v Violation) {
	c.mu.Lock()
	c.pending = append(c.pending, v)
	c.mu.Unlock()
}

// Beans implements abc.Monitor: the pipeline sensors plus one
// ViolationBean per pending child report. After the stream has ended,
// further notEnough reports are dropped — the paper's AM_A "stops
// reacting to notEnough events since it cannot take any significant
// action".
func (c *ruleCoordinator) Beans() []rules.Bean {
	out := c.mon.Beans()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, v := range c.pending {
		if c.ended && v.Tag == rules.TagNotEnoughTasks {
			continue
		}
		done := 0.0
		if v.Snapshot.StreamDone {
			done = 1
		}
		b := rules.NewBean(rules.BeanViolation, rules.Num(0)).
			Set("tag", rules.Str(v.Tag)).
			Set("arrival", rules.Num(v.Snapshot.ArrivalRate)).
			Set("done", rules.Num(done))
		out = append(out, b)
		c.last = v
	}
	c.pending = nil
	return out
}

// Snapshot implements abc.Monitor.
func (c *ruleCoordinator) Snapshot() contract.Snapshot { return c.mon.Snapshot() }

// Execute implements abc.Controller: the mechanisms behind the pipeline
// rules' operations.
func (c *ruleCoordinator) Execute(op string) (string, error) {
	c.mu.Lock()
	v := c.last
	c.mu.Unlock()
	switch op {
	case rules.OpIncRate:
		c.mu.Lock()
		base := math.Max(math.Max(v.Snapshot.ArrivalRate, c.requested), c.floor)
		c.requested = base * c.step
		if c.cap > 0 && c.requested > c.cap {
			c.requested = c.cap
		}
		target := c.requested
		c.mu.Unlock()
		if c.producer != nil {
			if err := c.producer.AssignContract(contract.MinThroughput(target)); err != nil {
				return "", err
			}
		}
		return fmt.Sprintf("rate->%.3f", target), nil
	case rules.OpDecRate:
		c.mu.Lock()
		base := math.Max(v.Snapshot.ArrivalRate, c.requested)
		c.requested = base / c.step
		target := c.requested
		c.mu.Unlock()
		if c.producer != nil {
			if err := c.producer.AssignContract(contract.MinThroughput(target)); err != nil {
				return "", err
			}
		}
		return fmt.Sprintf("rate->%.3f", target), nil
	case rules.OpEndStream:
		c.mu.Lock()
		already := c.ended
		c.ended = true
		c.mu.Unlock()
		if already {
			return "", nil
		}
		return "input stream exhausted", nil
	default:
		return "", fmt.Errorf("%w: %s", abc.ErrUnsupported, op)
	}
}

// NewRuleDrivenPipelineManager builds AM_A with its reaction policy stored
// as rules (PipeRuleSource) instead of Go code. step and cap parameterize
// the rate mechanism exactly like PipelineCoordinator.Step/Cap.
func NewRuleDrivenPipelineManager(name string, mon abc.Monitor, producer *Manager, step, cap float64, log *trace.Log, clock simclock.Clock, period time.Duration) (*Manager, error) {
	if step <= 1 {
		step = 1.3
	}
	coord := &ruleCoordinator{
		mon:      mon,
		producer: producer,
		step:     step,
		cap:      cap,
		floor:    0.05,
	}
	return New(Config{
		Name:       name,
		Concern:    "performance",
		Clock:      clock,
		Period:     period,
		Controller: coord,
		Engine:     rules.NewPipeEngine(),
		Log:        log,
		Policy: Policy{
			OnChildViolation: coord.enqueue,
			Split: func(c contract.Contract, n int) ([]contract.Contract, error) {
				return contract.SplitPipeline(c, n, nil)
			},
		},
	})
}

package manager

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/abc"
	"repro/internal/grid"
	"repro/internal/runtime"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// MigrationManager implements the §3 performance policy "migration of
// poorly performing activities to faster execution resources": its control
// loop watches the nodes hosting farm workers and, when a node's external
// load exceeds a threshold, moves the worker (queue, binding codec and
// all) to a freshly recruited node, instead of — or in addition to —
// growing the farm.
type MigrationManager struct {
	cfg   MigrationConfig
	clock simclock.Clock
	log   *trace.Log

	mu       sync.Mutex
	farms    []*abc.FarmABC
	migrated int

	running atomic.Bool
	life    runtime.Lifecycle
}

// MigrationConfig parameterizes a MigrationManager.
type MigrationConfig struct {
	Name  string // default "AM_mig"
	Clock simclock.Clock
	Log   *trace.Log
	// MaxLoad is the external-load threshold above which a worker's node
	// counts as poorly performing (default 0.5).
	MaxLoad float64
	// Recruit constrains the destination nodes; typically MinSpeed or
	// TrustedOnly.
	Recruit grid.Request
	// Period is the observation loop period.
	Period time.Duration
}

// NewMigrationManager validates cfg and builds the manager.
func NewMigrationManager(cfg MigrationConfig) (*MigrationManager, error) {
	if cfg.Log == nil {
		return nil, fmt.Errorf("manager: migration manager needs a trace log")
	}
	if cfg.Name == "" {
		cfg.Name = "AM_mig"
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.NewReal()
	}
	if cfg.MaxLoad <= 0 {
		cfg.MaxLoad = 0.5
	}
	if cfg.Period <= 0 {
		cfg.Period = 100 * time.Millisecond
	}
	if cfg.Recruit.MaxExternalLoad == 0 {
		// Never migrate onto a node as loaded as the one being escaped.
		cfg.Recruit.MaxExternalLoad = cfg.MaxLoad
	}
	return &MigrationManager{cfg: cfg, clock: cfg.Clock, log: cfg.Log}, nil
}

// Name returns the manager's name.
func (m *MigrationManager) Name() string { return m.cfg.Name }

// Migrated returns how many workers were moved.
func (m *MigrationManager) Migrated() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.migrated
}

// Watch registers a farm for load supervision.
func (m *MigrationManager) Watch(f *abc.FarmABC) {
	m.mu.Lock()
	m.farms = append(m.farms, f)
	m.mu.Unlock()
}

// RunOnce performs one observation cycle and returns how many workers it
// moved. A migration that fails (no acceptable destination) is skipped
// silently; the performance manager's addWorker path remains the fallback.
func (m *MigrationManager) RunOnce() int {
	m.mu.Lock()
	farms := make([]*abc.FarmABC, len(m.farms))
	copy(farms, m.farms)
	m.mu.Unlock()
	moved := 0
	for _, fa := range farms {
		for _, w := range fa.Workers() {
			if w.Failed || w.Node == nil {
				continue
			}
			if w.Node.ExternalLoad() <= m.cfg.MaxLoad {
				continue
			}
			newID, err := fa.Farm().MigrateWorker(w.ID, m.cfg.Recruit)
			if err != nil {
				continue
			}
			moved++
			m.mu.Lock()
			m.migrated++
			m.mu.Unlock()
			m.log.Record(m.clock.Now(), m.cfg.Name, trace.Migrated,
				fmt.Sprintf("%s (%s, load %.0f%%) -> %s", w.ID, w.Node.ID,
					w.Node.ExternalLoad()*100, newID))
		}
	}
	return moved
}

// Run executes the observation loop until ctx is canceled, then returns
// nil. External load changes have no skeleton edge — load is sampled, not
// evented — so migration stays purely periodic. Run returns an error
// immediately if the loop is already running.
func (m *MigrationManager) Run(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if !m.running.CompareAndSwap(false, true) {
		return fmt.Errorf("manager %s: observation loop already running", m.cfg.Name)
	}
	defer m.running.Store(false)

	ticker := m.clock.NewTicker(m.cfg.Period)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C():
			m.RunOnce()
		}
	}
}

// Start launches the observation loop on a background goroutine. A second
// Start while running is a no-op.
func (m *MigrationManager) Start() { m.life.Start(m.Run) }

// Stop terminates the observation loop and waits for it to exit. It is
// idempotent.
func (m *MigrationManager) Stop() { _ = m.life.Stop() }

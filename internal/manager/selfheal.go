// Self-healing of the management plane itself: the paper's hierarchy
// assumes the managers are reliable — a crashed AM silently leaves its
// sub-contract unenforced. This file makes manager failure a first-class,
// recoverable event: every control loop runs under a runtime.Supervisor
// (see RunTree / core.App), checkpoints its autonomic state after each
// MAPE cycle, and replays the checkpoint on restart, re-attaching to the
// hierarchy by asking its parent to re-split the live contract (P_spl).
// While a parent is down, child violations are buffered in a bounded
// drop-oldest queue and re-delivered on recovery.
package manager

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/contract"
	"repro/internal/runtime"
	"repro/internal/trace"
)

// ErrInjectedCrash marks a manager loop killed by the chaos plane's
// manager-crash fault; the supervisor treats it like any other failure.
var ErrInjectedCrash = errors.New("manager: injected crash")

// violBufCap bounds the per-manager buffer of violations raised while the
// parent is down. The queue drops oldest-first beyond it: under a long
// parent outage the freshest evidence is the actionable one.
const violBufCap = 64

// RunFault is one fault injected into a manager's control loop through the
// nil-gated hook installed with SetRunFault (the chaos plane's
// manager-crash / manager-panic / manager-stall kinds). Stall freezes the
// loop first; Panic and Crash then kill it (panic unwinds, crash wipes the
// volatile autonomic state and returns ErrInjectedCrash).
type RunFault struct {
	Crash bool
	Panic bool
	Stall time.Duration
}

// SetRunFault installs the loop fault hook, consulted once per iteration
// of Run. A nil fn (the default) costs one atomic load per iteration.
func (m *Manager) SetRunFault(fn func() RunFault) {
	if fn == nil {
		m.runFault.Store(nil)
		return
	}
	m.runFault.Store(&fn)
}

// Checkpoint is the autonomic state a manager needs to resume enforcement
// after a restart: the installed contract, the P_rol role, how much
// sensor warm-up was still outstanding, and the failure counters. It is
// deliberately small — everything else (rule engine, sensors) is rebuilt
// from the contract via the OnContract hook, exactly as a fresh process
// would.
type Checkpoint struct {
	Contract        contract.Contract
	State           State
	WarmUpRemaining time.Duration
	ActFailures     uint64
	Escalations     uint64
	// CycleSeq and AckedCycle persist the MAPE cycle counter and the
	// parent's delivery watermark, so a restarted manager knows how many
	// cycles its parent missed and the catch-up policy can size the debt.
	CycleSeq   uint64
	AckedCycle uint64
	Taken      time.Time
}

// takeCheckpoint snapshots the autonomic state; called after every
// RunOnce so the latest completed MAPE cycle is always recoverable.
func (m *Manager) takeCheckpoint() {
	now := m.clock.Now()
	m.mu.Lock()
	rem := m.cfg.WarmUp - now.Sub(m.created)
	if rem < 0 {
		rem = 0
	}
	m.checkpoint = Checkpoint{
		Contract:        m.contract,
		State:           m.state,
		WarmUpRemaining: rem,
		ActFailures:     m.actFailures.Load(),
		Escalations:     m.escalations.Load(),
		CycleSeq:        m.cycleSeq.Load(),
		AckedCycle:      m.ackedCycle.Load(),
		Taken:           now,
	}
	m.hasCheckpoint = true
	m.mu.Unlock()
}

// LastCheckpoint returns the most recent checkpoint, or false while no
// MAPE cycle has completed yet.
func (m *Manager) LastCheckpoint() (Checkpoint, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.checkpoint, m.hasCheckpoint
}

// Crash simulates the manager process dying: the volatile autonomic state
// (contract, role, engine, queued violations) is wiped as a fresh process
// would start empty, and the manager is marked down until Restore replays
// the checkpoint. The checkpoint itself survives — it models the durable
// store. Exposed for the chaos plane and tests; the run loop calls it on
// an injected crash.
func (m *Manager) Crash() {
	m.mu.Lock()
	m.contract = contract.BestEffort{}
	m.state = Active
	m.engine = m.cfg.Engine
	m.mu.Unlock()
	for {
		select {
		case <-m.violations:
		default:
			m.crashed.Store(true)
			m.log.Record(m.clock.Now(), m.cfg.Name, trace.Crashed, "volatile state wiped")
			return
		}
	}
}

// Crashed reports whether the manager is down (crashed and not yet
// restored). Children consult it to decide between delivering a violation
// and buffering it.
func (m *Manager) Crashed() bool { return m.crashed.Load() }

// Running reports whether the control loop is currently executing.
func (m *Manager) Running() bool { return m.running.Load() }

// Escalations returns how many violations this manager has reported to
// its parent.
func (m *Manager) Escalations() uint64 { return m.escalations.Load() }

// Restore replays cp after a crash: the contract is re-installed (driving
// the OnContract rebuild and the P_spl re-split over the children), the
// hierarchy is re-attached by asking the parent to re-split its own live
// contract — so the sub-contract reflects the current worker topology,
// not the pre-crash one — and the role, warm-up remainder and counters
// are restored.
func (m *Manager) Restore(cp Checkpoint) error {
	now := m.clock.Now()
	m.mu.Lock()
	// Re-base the warm-up window so exactly the checkpointed remainder is
	// still observed: restarting must not re-mute a warmed-up manager.
	m.created = now
	m.cfg.WarmUp = cp.WarmUpRemaining
	m.mu.Unlock()

	if cp.Contract != nil {
		if err := m.AssignContract(cp.Contract); err != nil {
			return err
		}
	}
	if p := m.Parent(); p != nil && !p.Crashed() {
		if err := p.resplitChild(m); err != nil {
			return err
		}
	}
	m.mu.Lock()
	m.state = cp.State
	m.mu.Unlock()
	m.escalations.Store(cp.Escalations)
	m.cycleSeq.Store(cp.CycleSeq)
	m.ackedCycle.Store(cp.AckedCycle)
	m.crashed.Store(false)
	m.log.Record(now, m.cfg.Name, trace.Restored,
		fmt.Sprintf("contract=%q state=%s warmup=%v", cp.Contract.Describe(), cp.State, cp.WarmUpRemaining))
	return nil
}

// recoverIfCrashed replays the checkpoint at loop (re)start. Without a
// checkpoint there is nothing to replay: the manager simply resumes with
// its post-wipe defaults and waits for a contract.
func (m *Manager) recoverIfCrashed() {
	if !m.crashed.Load() {
		return
	}
	if cp, ok := m.LastCheckpoint(); ok {
		if err := m.Restore(cp); err != nil {
			m.log.Record(m.clock.Now(), m.cfg.Name, trace.Kind("error"),
				"restore: "+err.Error())
		}
		return
	}
	m.crashed.Store(false)
}

// resplitChild re-derives child's sub-contract from m's live contract
// (P_spl over the current children) — the re-attachment half of recovery.
func (m *Manager) resplitChild(child *Manager) error {
	m.mu.Lock()
	c := m.contract
	split := m.cfg.Policy.Split
	children := make([]*Manager, len(m.children))
	copy(children, m.children)
	m.mu.Unlock()
	if c == nil || split == nil || len(children) == 0 {
		return nil
	}
	subs, err := split(c, len(children))
	if err != nil {
		return fmt.Errorf("manager %s: re-splitting for %s: %w", m.cfg.Name, child.Name(), err)
	}
	for i, ch := range children {
		if ch == child {
			return child.AssignContract(subs[i])
		}
	}
	return nil
}

// bufferViolation queues v while the parent is down: bounded, duplicates
// of an already-buffered causality id dropped, re-raises of the same
// (From, Tag) coalesced onto their first buffered cause, and only then the
// oldest distinct cause evicted — counted and traced, never silent.
//
// The coalescing step is what keeps a long outage honest: every MAPE
// cycle re-raises a standing violation under a *fresh* causality id
// (cycleCause is per-cycle), so CauseID dedup alone lets a single
// persistent violation flood the 64-slot queue and push every other cause
// out one eviction at a time. Coalescing keeps the entry's original
// CauseID — the id the parent-side dedup and the decision chain anchor on
// — while refreshing its evidence to the newest snapshot.
func (m *Manager) bufferViolation(v Violation) {
	m.mu.Lock()
	if v.CauseID != 0 {
		for _, q := range m.violBuf {
			if q.CauseID == v.CauseID {
				m.mu.Unlock()
				return
			}
		}
	}
	for i := range m.violBuf {
		if m.violBuf[i].From == v.From && m.violBuf[i].Tag == v.Tag {
			m.violBuf[i].Snapshot = v.Snapshot
			m.violBuf[i].When = v.When
			m.mu.Unlock()
			return
		}
	}
	var dropped Violation
	evicted := false
	if len(m.violBuf) >= violBufCap {
		dropped = m.violBuf[0]
		evicted = true
		copy(m.violBuf, m.violBuf[1:])
		m.violBuf = m.violBuf[:len(m.violBuf)-1]
		m.violDrops.Add(1)
	}
	m.violBuf = append(m.violBuf, v)
	m.mu.Unlock()
	if evicted {
		m.log.Record(m.clock.Now(), m.cfg.Name, trace.ViolDropped,
			fmt.Sprintf("buffer full: evicted %s from %s (cause %d)",
				dropped.Tag, dropped.From, dropped.CauseID))
	}
}

// flushBuffered re-delivers violations buffered across a parent outage
// once the parent is back. Called at the top of every RunOnce. Over a
// link, a delivery failure mid-flush re-parks the remainder in order.
func (m *Manager) flushBuffered() {
	m.mu.Lock()
	n := len(m.violBuf)
	m.mu.Unlock()
	if n == 0 {
		return
	}
	if l := m.Link(); l != nil {
		if l.Down() {
			return
		}
		m.mu.Lock()
		buf := m.violBuf
		m.violBuf = nil
		m.mu.Unlock()
		sent := 0
		for i, v := range buf {
			if err := l.Deliver(v); err != nil {
				m.mu.Lock()
				m.violBuf = append(buf[i:], m.violBuf...)
				m.mu.Unlock()
				break
			}
			sent++
		}
		if sent > 0 {
			m.log.Record(m.clock.Now(), m.cfg.Name, trace.RaiseViol,
				fmt.Sprintf("re-delivered %d buffered violations", sent))
		}
		return
	}
	parent := m.Parent()
	if parent == nil || parent.Crashed() {
		return
	}
	m.mu.Lock()
	buf := m.violBuf
	m.violBuf = nil
	m.mu.Unlock()
	for _, v := range buf {
		parent.deliver(v)
	}
	m.log.Record(m.clock.Now(), m.cfg.Name, trace.RaiseViol,
		fmt.Sprintf("re-delivered %d buffered violations", len(buf)))
}

// BufferedViolations returns how many violations are currently parked
// waiting for the parent to recover.
func (m *Manager) BufferedViolations() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.violBuf)
}

// ViolationDrops returns how many buffered violations were dropped
// oldest-first because the buffer overflowed during a parent outage.
func (m *Manager) ViolationDrops() uint64 { return m.violDrops.Load() }

// SetSupervision configures the restart policy the manager's Supervisor
// uses. Call before the tree starts (before the first Supervisor call);
// later calls are ignored once the supervisor exists.
func (m *Manager) SetSupervision(cfg runtime.SupervisorConfig) {
	m.superMu.Lock()
	defer m.superMu.Unlock()
	if m.super == nil {
		m.superCfg = cfg
	}
}

// Supervisor returns the manager's restart supervisor, lazily built to
// wrap Run with the policy from SetSupervision (defaults otherwise). All
// supervised entry points (RunTree, core.App) share this one instance so
// restart counts and causes surface consistently in telemetry. Every
// restart is logged to the trace; an OnRestart hook set via SetSupervision
// is chained after the logging.
func (m *Manager) Supervisor() *runtime.Supervisor {
	m.superMu.Lock()
	defer m.superMu.Unlock()
	if m.super == nil {
		cfg := m.superCfg
		if cfg.Name == "" {
			cfg.Name = m.cfg.Name
		}
		if cfg.Clock == nil {
			cfg.Clock = m.clock
		}
		user := cfg.OnRestart
		cfg.OnRestart = func(cause error, downtime time.Duration) {
			m.log.Record(m.clock.Now(), m.cfg.Name, trace.Restarted, cause.Error())
			if user != nil {
				user(cause, downtime)
			}
		}
		m.super = runtime.NewSupervisor(runtime.Func(m.Run), cfg)
	}
	return m.super
}

package manager

import (
	"context"
	"testing"
	"time"

	"repro/internal/simclock"
	"repro/internal/skel"
	"repro/internal/trace"
)

// startFaultLoop runs ft.Run under a cancelable context and waits until
// the loop is live (edge subscriptions installed). The returned stop
// cancels the loop and waits for it to exit.
func startFaultLoop(t *testing.T, ft *FaultManager) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := ft.Run(ctx); err != nil {
			t.Error(err)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for !ft.running.Load() {
		if time.Now().After(deadline) {
			t.Fatal("fault loop never started")
		}
		time.Sleep(time.Millisecond)
	}
	// The edge subscriptions follow the running flag on the same
	// goroutine within a few instructions; give them a beat.
	time.Sleep(20 * time.Millisecond)
	return func() {
		cancel()
		<-done
	}
}

// TestEventWakeupReactsWithinPollPeriod is the deterministic form of the
// wake-up latency claim. The fault manager's ticker runs on a manual
// clock that is never advanced, so the periodic path cannot fire at all:
// any recovery can only come from the crash-edge wake-up. Event-driven
// detection therefore reacts in strictly less than one poll period —
// here, in zero elapsed clock time.
func TestEventWakeupReactsWithinPollPeriod(t *testing.T) {
	f, fa, in, count, stopFarm := newRunningFarmForFT(t)
	clock := simclock.NewManual(time.Unix(0, 0))
	ft, err := NewFaultManager(FaultConfig{Log: trace.NewLog(), Clock: clock, Period: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ft.Watch(fa)
	stopLoop := startFaultLoop(t, ft)

	for i := 0; i < 10; i++ {
		in <- &skel.Task{ID: skel.NextTaskID(), Work: 500 * time.Millisecond}
	}
	if err := f.KillWorker(f.Workers()[0].ID); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for ft.Recovered() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("edge wake-up never detected the crash (poll clock frozen)")
		}
		time.Sleep(time.Millisecond)
	}

	stopLoop()
	stopFarm()
	if n := <-count; n != 10 {
		t.Fatalf("completed %d/10", n)
	}
}

// TestPollOnlyWaitsForPollPeriod is the baseline half of the claim: with
// PollOnly the crash edge is ignored, so detection needs the next tick —
// at least one full poll period away.
func TestPollOnlyWaitsForPollPeriod(t *testing.T) {
	f, fa, in, count, stopFarm := newRunningFarmForFT(t)
	clock := simclock.NewManual(time.Unix(0, 0))
	ft, err := NewFaultManager(FaultConfig{
		Log: trace.NewLog(), Clock: clock, Period: time.Second, PollOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ft.Watch(fa)
	stopLoop := startFaultLoop(t, ft)

	for i := 0; i < 10; i++ {
		in <- &skel.Task{ID: skel.NextTaskID(), Work: 500 * time.Millisecond}
	}
	if err := f.KillWorker(f.Workers()[0].ID); err != nil {
		t.Fatal(err)
	}
	// The edge fired but nobody listens; with the clock frozen short of
	// one period the crash must remain undetected.
	clock.Advance(time.Second - time.Millisecond)
	time.Sleep(50 * time.Millisecond)
	if got := ft.Recovered(); got != 0 {
		t.Fatalf("poll-only recovered %d crashes before the poll period elapsed", got)
	}
	// Completing the period delivers the tick and the detection.
	clock.Advance(2 * time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for ft.Recovered() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("poll tick never detected the crash")
		}
		time.Sleep(time.Millisecond)
	}

	stopLoop()
	stopFarm()
	if n := <-count; n != 10 {
		t.Fatalf("completed %d/10", n)
	}
}

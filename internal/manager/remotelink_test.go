package manager

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/abc"
	"repro/internal/contract"
	"repro/internal/grid"
	"repro/internal/rules"
	"repro/internal/security"
	"repro/internal/simclock"
	"repro/internal/skel"
	"repro/internal/trace"
	"repro/internal/wire"
)

// newLinkedPair builds a child manager linked to a parent manager's
// endpoint over an in-process transport on a shared manual clock.
func newLinkedPair(t *testing.T, policy CatchUpPolicy) (*Manager, *Manager, *ParentEndpoint, *RemoteLink, *simclock.Manual, *trace.Log) {
	t.Helper()
	clock := simclock.NewManual(time.Unix(0, 0))
	log := trace.NewLog()
	mk := func(name string) *Manager {
		m, err := New(Config{
			Name: name, Clock: clock, Period: time.Second,
			Controller: &stub{}, Log: log,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	parent := mk("P")
	child := mk("C")
	ep, err := NewParentEndpoint(ParentEndpointConfig{
		Parent: parent, Lease: 200 * time.Millisecond, Clock: clock, Log: log,
	})
	if err != nil {
		t.Fatal(err)
	}
	link, err := NewRemoteLink(RemoteLinkConfig{
		Child:     child,
		Transport: func(req []byte) ([]byte, error) { return ep.Handle(req), nil },
		Heartbeat: 50 * time.Millisecond, Lease: 200 * time.Millisecond,
		Clock: clock, Log: log, Policy: policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	return child, parent, ep, link, clock, log
}

func TestRemoteLinkAttachAndDeliver(t *testing.T) {
	child, parent, ep, link, _, _ := newLinkedPair(t, CatchUpLatest)
	if !link.Down() || link.State() != LinkPartitioned {
		t.Fatalf("fresh link state = %v, want partitioned until first attach", link.State())
	}
	if err := link.attach(); err != nil {
		t.Fatal(err)
	}
	if link.State() != LinkUp {
		t.Fatalf("state after attach = %v, want up", link.State())
	}
	if link.Reattaches() != 0 {
		t.Fatal("first attach must not count as a reattach")
	}

	child.Escalate(rules.TagNotEnoughTasks, contract.Snapshot{Throughput: 0.1})
	select {
	case v := <-parent.violations:
		if v.From != "C" || v.Tag != rules.TagNotEnoughTasks {
			t.Fatalf("delivered violation = %+v", v)
		}
	default:
		t.Fatal("violation did not cross the link")
	}
	if ep.Delivered() != 1 || link.Delivered() != 1 {
		t.Fatalf("delivered counters = endpoint %d, link %d", ep.Delivered(), link.Delivered())
	}
}

// TestRemoteLinkSlowParentNoFalsePartition is the lease-vs-slow-parent
// guarantee: a parent slow by up to 2× heartbeat jitter (missing single
// heartbeats inside a live lease) degrades the link to suspect, never to
// partitioned; only lease expiry declares a partition.
func TestRemoteLinkSlowParentNoFalsePartition(t *testing.T) {
	_, _, _, link, clock, log := newLinkedPair(t, CatchUpLatest)
	if err := link.attach(); err != nil {
		t.Fatal(err)
	}
	// Four heartbeat rounds of a parent answering every other beat: each
	// failure lands well inside the 200ms lease renewed by the preceding
	// success.
	for i := 0; i < 4; i++ {
		clock.Advance(50 * time.Millisecond)
		link.InjectDrop(1)
		if err := link.attach(); err == nil {
			t.Fatal("dropped heartbeat reported success")
		}
		if got := link.State(); got != LinkSuspect {
			t.Fatalf("state after missed heartbeat = %v, want suspect", got)
		}
		clock.Advance(50 * time.Millisecond)
		if err := link.attach(); err != nil {
			t.Fatal(err)
		}
		if got := link.State(); got != LinkUp {
			t.Fatalf("state after recovered heartbeat = %v, want up", got)
		}
	}
	if link.Reattaches() != 0 {
		t.Fatalf("reattaches = %d after slow-but-alive parent, want 0", link.Reattaches())
	}
	if log.Count("C", trace.LinkDown) != 0 {
		t.Fatalf("slow parent was declared partitioned:\n%s", log.Timeline())
	}

	// Now silence the parent past the lease: partition is declared once,
	// and the next successful attach is a reattach.
	link.InjectDrop(64)
	for i := 0; i < 5; i++ {
		clock.Advance(50 * time.Millisecond)
		_ = link.attach()
	}
	if got := link.State(); got != LinkPartitioned {
		t.Fatalf("state after lease expiry = %v, want partitioned", got)
	}
	if log.Count("C", trace.LinkDown) != 1 {
		t.Fatalf("LinkDown events = %d, want 1", log.Count("C", trace.LinkDown))
	}
	link.drops.Store(0)
	if err := link.attach(); err != nil {
		t.Fatal(err)
	}
	if link.Reattaches() != 1 || link.State() != LinkReattached {
		t.Fatalf("reattach not recorded: n=%d state=%v", link.Reattaches(), link.State())
	}
}

// TestRemoteLinkExactlyOnceAcrossPartition: violations raised during a
// partition are buffered, flushed after reattach, and delivered to the
// parent exactly once even when a flush races a re-delivery.
func TestRemoteLinkExactlyOnceAcrossPartition(t *testing.T) {
	child, parent, ep, link, clock, log := newLinkedPair(t, CatchUpLatest)
	if err := link.attach(); err != nil {
		t.Fatal(err)
	}

	// Three MAPE cycles while attached: the parent's watermark follows.
	for i := 0; i < 3; i++ {
		if err := child.RunOnce(); err != nil {
			t.Fatal(err)
		}
	}
	clock.Advance(50 * time.Millisecond)
	if err := link.attach(); err != nil { // lease renewal acks cycle 3
		t.Fatal(err)
	}

	// Partition the link for longer than the lease and raise violations:
	// every one parks in the bounded buffer.
	link.InjectPartition(400 * time.Millisecond)
	v1 := Violation{From: "C", Tag: rules.TagNotEnoughTasks, CauseID: 7, When: clock.Now()}
	v2 := Violation{From: "C", Tag: rules.TagTooMuchTasks, CauseID: 9, When: clock.Now()}
	if err := link.Deliver(v1); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("Deliver during partition = %v, want ErrLinkDown", err)
	}
	child.bufferViolation(v1)
	child.bufferViolation(v2)
	clock.Advance(250 * time.Millisecond)
	_ = link.attach() // lease expired inside the partition window
	if link.State() != LinkPartitioned {
		t.Fatalf("state = %v, want partitioned", link.State())
	}
	// Two more cycles run blind during the partition (flushBuffered keeps
	// the buffer while the link is down).
	for i := 0; i < 2; i++ {
		if err := child.RunOnce(); err != nil {
			t.Fatal(err)
		}
	}
	if child.BufferedViolations() != 2 {
		t.Fatalf("buffered = %d, want 2", child.BufferedViolations())
	}

	// Heal, reattach: catch-up owed under `latest` is exactly one cycle.
	clock.Advance(200 * time.Millisecond)
	if err := link.attach(); err != nil {
		t.Fatal(err)
	}
	if link.Reattaches() != 1 {
		t.Fatalf("reattaches = %d, want 1", link.Reattaches())
	}
	child.runCatchUp(context.Background())
	if got := child.CatchUpCycles(); got != 1 {
		t.Fatalf("catch-up cycles = %d, want 1 (policy latest)", got)
	}
	if log.Count("C", trace.CatchUp) != 1 {
		t.Fatalf("CatchUp events = %d, want 1:\n%s", log.Count("C", trace.CatchUp), log.Timeline())
	}
	if child.BufferedViolations() != 0 {
		t.Fatalf("buffered = %d after reattach flush, want 0", child.BufferedViolations())
	}

	// The flush delivered both causes once; a raced re-delivery of an
	// already-flushed cause is suppressed by the endpoint, not re-applied.
	if ep.Delivered() != 2 || ep.Duplicates() != 0 {
		t.Fatalf("endpoint delivered=%d dup=%d, want 2/0", ep.Delivered(), ep.Duplicates())
	}
	if err := link.Deliver(v1); err != nil {
		t.Fatal(err)
	}
	if ep.Delivered() != 2 || ep.Duplicates() != 1 {
		t.Fatalf("after duplicate: delivered=%d dup=%d, want 2/1", ep.Delivered(), ep.Duplicates())
	}
	got := 0
	for {
		ok := false
		select {
		case v := <-parent.violations:
			ok = true
			if v.CauseID != 7 && v.CauseID != 9 {
				t.Fatalf("unexpected cause %d at parent", v.CauseID)
			}
		default:
		}
		if !ok {
			break
		}
		got++
	}
	if got != 2 {
		t.Fatalf("parent received %d violations, want exactly 2", got)
	}
}

// TestRemoteLinkCatchUpPolicies: skip runs nothing, all replays every
// missed cycle up to the budget.
func TestRemoteLinkCatchUpPolicies(t *testing.T) {
	for _, tc := range []struct {
		policy CatchUpPolicy
		cycles int
		want   uint64
	}{
		{CatchUpSkip, 5, 0},
		{CatchUpAll, 5, 5},
		{CatchUpAll, catchUpBudget + 20, catchUpBudget},
	} {
		child, _, _, link, clock, _ := newLinkedPair(t, tc.policy)
		if err := link.attach(); err != nil {
			t.Fatal(err)
		}
		link.InjectPartition(400 * time.Millisecond)
		clock.Advance(250 * time.Millisecond)
		_ = link.attach()
		for i := 0; i < tc.cycles; i++ {
			if err := child.RunOnce(); err != nil {
				t.Fatal(err)
			}
		}
		clock.Advance(200 * time.Millisecond)
		if err := link.attach(); err != nil {
			t.Fatal(err)
		}
		child.runCatchUp(context.Background())
		if got := child.CatchUpCycles(); got != tc.want {
			t.Fatalf("policy %s, %d missed cycles: catch-up = %d, want %d",
				tc.policy, tc.cycles, got, tc.want)
		}
	}
}

func TestOwedCycles(t *testing.T) {
	for _, tc := range []struct {
		p          CatchUpPolicy
		seq, acked uint64
		want       int
	}{
		{CatchUpLatest, 10, 10, 0},
		{CatchUpLatest, 14, 10, 1},
		{CatchUpSkip, 14, 10, 0},
		{CatchUpAll, 14, 10, 4},
		{CatchUpAll, 0, 9, 9},                // restarted child: parent ahead
		{CatchUpAll, 1000, 0, catchUpBudget}, // budget bound
	} {
		if got := owedCycles(tc.p, tc.seq, tc.acked); got != tc.want {
			t.Fatalf("owedCycles(%s, %d, %d) = %d, want %d", tc.p, tc.seq, tc.acked, got, tc.want)
		}
	}
	if _, err := ParseCatchUpPolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
	for s, want := range map[string]CatchUpPolicy{"": CatchUpLatest, "skip": CatchUpSkip, "latest": CatchUpLatest, "all": CatchUpAll} {
		got, err := ParseCatchUpPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseCatchUpPolicy(%q) = %v, %v", s, got, err)
		}
	}
}

// TestRemoteTwoPhaseReattachReissue: a two-phase prepare travels the
// management link; while the link is partitioned the intent aborts on the
// usual ErrManagerDown path, and after reattach the GM re-issues it over
// the wire and the worker comes up secured by the codec shipped back in
// the prepare reply.
func TestRemoteTwoPhaseReattachReissue(t *testing.T) {
	plat := grid.NewTwoDomainGrid(0, 4)
	f, _ := skel.NewFarm(skel.FarmConfig{
		Name: "f", Env: skel.Env{TimeScale: 1000}, RM: plat.RM, InitialWorkers: 1,
	})
	fa := abc.NewFarmABC(f, nil)
	log := trace.NewLog()
	sec, _ := NewSecurityManager(SecurityConfig{
		Log: log, Policy: security.Policy{Network: plat.Network},
	})

	// Parent process: root manager + security participant behind the
	// endpoint. Child process: a sentinel manager, the link, and the GM
	// driving the farm through a RemoteParticipant.
	child, parent, ep, link, clock, _ := newLinkedPair(t, CatchUpLatest)
	_ = parent
	ep.cfg.Security = sec
	if err := link.attach(); err != nil {
		t.Fatal(err)
	}
	gm, err := NewGeneralManager("GM", nil, log, child.clock, TwoPhase)
	if err != nil {
		t.Fatal(err)
	}
	gm.SetParticipant(NewRemoteParticipant("AM_sec/remote", link))
	gm.Coordinate(fa)

	in := make(chan *skel.Task)
	out := make(chan *skel.Task, 16)
	go func() {
		for range out {
		}
	}()
	go f.Run(context.Background(), in, out)
	defer close(in)
	deadline := time.Now().Add(5 * time.Second)
	for len(f.Workers()) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("farm never started")
		}
		time.Sleep(time.Millisecond)
	}

	// Partition mid-protocol: the in-flight intent aborts with
	// ErrManagerDown and is recorded for re-issue.
	link.InjectPartition(400 * time.Millisecond)
	clock.Advance(250 * time.Millisecond)
	_ = link.attach() // expire the lease: link now partitioned
	if !link.Down() {
		t.Fatalf("link state = %v, want partitioned", link.State())
	}
	if _, err := fa.Execute(rules.OpAddExecutor); !errors.Is(err, abc.ErrManagerDown) {
		t.Fatalf("Execute during partition = %v, want ErrManagerDown", err)
	}
	if log.Count("GM", trace.Aborted) != 1 || gm.PendingIntents() != 1 {
		t.Fatalf("abort not recorded: aborted=%d pending=%d:\n%s",
			log.Count("GM", trace.Aborted), gm.PendingIntents(), log.Timeline())
	}
	if gm.ReissueOnce() != 0 {
		t.Fatal("re-issue ran against a partitioned participant")
	}

	// Heal and reattach: the bounded re-issue drives the full ladder over
	// the wire and commits.
	clock.Advance(200 * time.Millisecond)
	if err := link.attach(); err != nil {
		t.Fatal(err)
	}
	if gm.ReissueOnce() != 1 {
		t.Fatalf("re-issue failed:\n%s", log.Timeline())
	}
	if gm.ReissuedIntents() != 1 || gm.PendingIntents() != 0 {
		t.Fatalf("reissued=%d pending=%d", gm.ReissuedIntents(), gm.PendingIntents())
	}
	secure := 0
	for _, w := range fa.Workers() {
		if w.Secure {
			secure++
		}
	}
	if secure < 1 {
		t.Fatalf("no secure worker after remote two-phase re-issue:\n%s", log.Timeline())
	}
	if log.Count("GM", trace.Reissued) != 1 {
		t.Fatalf("Reissued events = %d, want 1", log.Count("GM", trace.Reissued))
	}
}

// linkFlapStress drives a child manager and its link loop under repeated
// injected drops and partitions, then heals and asserts convergence: link
// up, buffer drained, every buffered violation delivered exactly once.
// Run with -race it doubles as the link-flap race test.
func linkFlapStress(t *testing.T, mkTransport func(t *testing.T, ep *ParentEndpoint) MgmtTransport) {
	log := trace.NewLog()
	clock := simclock.NewReal()
	mk := func(name string) *Manager {
		m, err := New(Config{
			Name: name, Clock: clock, Period: 2 * time.Millisecond,
			Controller: &stub{}, Log: log,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	parent := mk("P")
	child := mk("C")
	ep, err := NewParentEndpoint(ParentEndpointConfig{
		Parent: parent, Lease: 40 * time.Millisecond, Clock: clock, Log: log,
	})
	if err != nil {
		t.Fatal(err)
	}
	link, err := NewRemoteLink(RemoteLinkConfig{
		Child: child, Transport: mkTransport(t, ep),
		Heartbeat: 5 * time.Millisecond, Lease: 40 * time.Millisecond,
		Clock: clock, Log: log, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); _ = child.Run(ctx) }()
	go func() { defer wg.Done(); _ = link.Run(ctx) }()

	// Drain the parent's violation queue, counting per cause.
	causes := map[uint64]int{}
	var causesMu sync.Mutex
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case v := <-parent.violations:
				causesMu.Lock()
				causes[v.CauseID]++
				causesMu.Unlock()
			case <-ctx.Done():
				return
			}
		}
	}()

	// Flap the link while violations stream: drops, partitions, and raises
	// interleave from separate goroutines.
	const raises = 50
	for i := 1; i <= raises; i++ {
		switch i % 10 {
		case 3:
			link.InjectDrop(2)
		case 7:
			link.InjectPartition(25 * time.Millisecond)
		}
		v := Violation{From: "C", Tag: rules.TagNotEnoughTasks, CauseID: uint64(i), When: clock.Now()}
		if link.Deliver(v) != nil {
			child.bufferViolation(v)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Heal and wait for convergence.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if link.State() == LinkUp && child.BufferedViolations() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no convergence: state=%v buffered=%d", link.State(), child.BufferedViolations())
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let the drain goroutine catch up
	cancel()
	wg.Wait()

	causesMu.Lock()
	defer causesMu.Unlock()
	for c, n := range causes {
		if n != 1 {
			t.Fatalf("cause %d delivered %d times, want exactly once", c, n)
		}
	}
	if len(causes) == 0 || ep.Delivered() == 0 {
		t.Fatal("nothing crossed the link during the stress")
	}
	if link.Reattaches() == 0 {
		t.Fatal("stress never partitioned the link")
	}
}

func TestRemoteLinkFlapStressInProcess(t *testing.T) {
	linkFlapStress(t, func(t *testing.T, ep *ParentEndpoint) MgmtTransport {
		return func(req []byte) ([]byte, error) { return ep.Handle(req), nil }
	})
}

func TestRemoteLinkFlapStressWire(t *testing.T) {
	linkFlapStress(t, func(t *testing.T, ep *ParentEndpoint) MgmtTransport {
		psk := []byte("0123456789abcdef0123456789abcdef")
		srv, err := wire.NewServer(wire.ServerConfig{
			PSK:   psk,
			Hello: wire.Hello{Name: "parent", Domain: "local", Cores: 1, Speed: 1},
			Mgmt:  func(req []byte) []byte { return ep.Handle(req) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		fac, err := wire.NewFactory(psk, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(fac.CloseControls)
		addr := srv.Addr()
		return func(req []byte) ([]byte, error) { return fac.Mgmt(addr, req) }
	})
}

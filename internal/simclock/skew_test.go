package simclock

import (
	"testing"
	"time"
)

// Skew injection is deterministic: two Manual clocks, one running `skew`
// ahead, stand in for two processes whose NTP disagrees. Timestamps taken
// on the fast clock and compared on the slow one produce the negative
// elapsed the policy must absorb.
func TestToleranceClampsSmallSkew(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	slow := NewManual(base)
	fast := NewManual(base.Add(100 * time.Millisecond)) // peer runs 100ms ahead

	tol := &Tolerance{Max: DefaultSkew}
	stamp := fast.Now() // remote timestamp
	if got := tol.Elapsed(stamp, slow.Now()); got != 0 {
		t.Fatalf("Elapsed under tolerable skew = %v, want clamp to 0", got)
	}
	if tol.Clamped() != 1 {
		t.Fatalf("Clamped = %d, want 1", tol.Clamped())
	}

	// Once local time catches up past the stamp, elapsed is positive and
	// untouched.
	slow.Advance(250 * time.Millisecond)
	if got := tol.Elapsed(stamp, slow.Now()); got != 150*time.Millisecond {
		t.Fatalf("Elapsed after catch-up = %v, want 150ms", got)
	}
	if tol.Clamped() != 1 {
		t.Fatalf("Clamped moved on a positive elapsed: %d", tol.Clamped())
	}
}

func TestToleranceSurfacesLargeSkew(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	slow := NewManual(base)
	fast := NewManual(base.Add(2 * time.Second)) // beyond any tolerance

	tol := &Tolerance{Max: DefaultSkew}
	got := tol.Elapsed(fast.Now(), slow.Now())
	if got != -2*time.Second {
		t.Fatalf("Elapsed under broken clock = %v, want -2s surfaced", got)
	}
	if tol.Clamped() != 0 {
		t.Fatalf("large skew must not be absorbed silently (clamped=%d)", tol.Clamped())
	}
}

func TestToleranceZeroValueIsTransparent(t *testing.T) {
	var tol Tolerance
	from := time.Date(2026, 1, 1, 0, 0, 0, 50e6, time.UTC)
	to := from.Add(-10 * time.Millisecond)
	if got := tol.Elapsed(from, to); got != -10*time.Millisecond {
		t.Fatalf("zero-value tolerance clamped: %v", got)
	}
	var nilTol *Tolerance
	if got := nilTol.Elapsed(from, to); got != -10*time.Millisecond {
		t.Fatalf("nil tolerance clamped: %v", got)
	}
	if nilTol.Clamped() != 0 {
		t.Fatal("nil tolerance counter")
	}
}

func TestToleranceExpired(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	tol := &Tolerance{Max: DefaultSkew}
	deadline := base.Add(100 * time.Millisecond) // stamped by a fast peer

	if tol.Expired(deadline, base) {
		t.Fatal("deadline within skew window reported expired")
	}
	if !tol.Expired(deadline, base.Add(300*time.Millisecond)) {
		t.Fatal("past deadline not expired")
	}
}

package simclock

import (
	"sync/atomic"
	"time"
)

// Tolerance is the skew policy applied wherever two timestamps that may
// originate on different processes are compared. In a single process every
// Clock is monotone per construction, but once managers live on both ends
// of a wire link a sensor window, a warm-up deadline or a quarantine cooldown
// can see `to` slightly before `from`: not because time ran backwards, but
// because two hosts disagree by a few milliseconds. A naive Sub would turn
// that into a negative elapsed and misfire (a window that never closes, a
// cooldown that re-arms forever).
//
// The policy is deliberately simple: negative elapsed within Max is clamped
// to zero and counted; negative elapsed beyond Max is surfaced untouched, so
// a genuinely broken clock still trips whatever guard sits above. The zero
// value tolerates nothing (every negative passes through), preserving the
// pre-skew behaviour byte for byte.
type Tolerance struct {
	// Max is the largest negative elapsed treated as cross-process skew
	// rather than an error. Zero disables clamping.
	Max time.Duration

	clamped atomic.Uint64
}

// DefaultSkew is the tolerance used by the managers when none is injected:
// generous enough for same-rack NTP drift, far below any MAPE period.
const DefaultSkew = 250 * time.Millisecond

// Elapsed returns to.Sub(from), clamping small negative results to zero per
// the policy. The clamp counter feeds the skew observability gauges.
func (t *Tolerance) Elapsed(from, to time.Time) time.Duration {
	d := to.Sub(from)
	if d < 0 && t != nil && t.Max > 0 && -d <= t.Max {
		t.clamped.Add(1)
		return 0
	}
	return d
}

// Expired reports whether deadline has passed at now, treating a deadline
// up to Max in the future as "not yet" only through the usual comparison —
// the skew case it absorbs is now sitting *before* an already-armed
// deadline because the deadline was stamped by a fast peer clock. A
// deadline within Max after now is still pending; the clamp only fires on
// the elapsed side, so Expired stays a plain comparison and the policy
// keeps a single behaviour knob.
func (t *Tolerance) Expired(deadline, now time.Time) bool {
	return t.Elapsed(deadline, now) > 0
}

// Clamped reports how many comparisons the policy has absorbed. A non-zero
// value under a single-process run means a clock bug, not skew.
func (t *Tolerance) Clamped() uint64 {
	if t == nil {
		return 0
	}
	return t.clamped.Load()
}

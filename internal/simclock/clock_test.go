package simclock

import (
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2009, 5, 25, 0, 0, 0, 0, time.UTC) // IPDPS 2009 week

func TestManualNow(t *testing.T) {
	c := NewManual(epoch)
	if !c.Now().Equal(epoch) {
		t.Fatalf("Now = %v, want %v", c.Now(), epoch)
	}
	c.Advance(3 * time.Second)
	if got := c.Now(); !got.Equal(epoch.Add(3 * time.Second)) {
		t.Fatalf("Now after advance = %v", got)
	}
}

func TestManualAfterFiresInOrder(t *testing.T) {
	c := NewManual(epoch)
	a := c.After(1 * time.Second)
	b := c.After(2 * time.Second)
	c.Advance(1500 * time.Millisecond)
	select {
	case at := <-a:
		if !at.Equal(epoch.Add(1 * time.Second)) {
			t.Fatalf("a fired at %v", at)
		}
	default:
		t.Fatal("a did not fire")
	}
	select {
	case <-b:
		t.Fatal("b fired early")
	default:
	}
	c.Advance(time.Second)
	if bt := <-b; !bt.Equal(epoch.Add(2 * time.Second)) {
		t.Fatalf("b fired at %v", bt)
	}
}

func TestManualAfterNonPositive(t *testing.T) {
	c := NewManual(epoch)
	select {
	case <-c.After(0):
	default:
		t.Fatal("After(0) should fire immediately")
	}
	select {
	case <-c.After(-time.Second):
	default:
		t.Fatal("After(<0) should fire immediately")
	}
}

func TestManualSleepWakes(t *testing.T) {
	c := NewManual(epoch)
	done := make(chan struct{})
	go func() {
		c.Sleep(5 * time.Second)
		close(done)
	}()
	// Wait for the sleeper to park.
	for c.PendingWaiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	c.Advance(5 * time.Second)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("sleeper was not woken")
	}
}

func TestManualSleepZeroReturns(t *testing.T) {
	c := NewManual(epoch)
	c.Sleep(0) // must not block
}

func TestManualTicker(t *testing.T) {
	c := NewManual(epoch)
	tk := c.NewTicker(time.Second)
	c.Advance(3500 * time.Millisecond)
	// Capacity-1 channel: only one tick is buffered even though three
	// periods elapsed; the buffered tick is the first undelivered one.
	n := 0
	for {
		select {
		case <-tk.C():
			n++
			continue
		default:
		}
		break
	}
	if n != 1 {
		t.Fatalf("buffered ticks = %d, want 1", n)
	}
	tk.Stop()
	c.Advance(10 * time.Second)
	select {
	case <-tk.C():
		t.Fatal("stopped ticker fired")
	default:
	}
}

func TestManualTickerDeliversSuccessiveTicks(t *testing.T) {
	c := NewManual(epoch)
	tk := c.NewTicker(time.Second)
	defer tk.Stop()
	for i := 1; i <= 3; i++ {
		c.Advance(time.Second)
		select {
		case at := <-tk.C():
			want := epoch.Add(time.Duration(i) * time.Second)
			if !at.Equal(want) {
				t.Fatalf("tick %d at %v, want %v", i, at, want)
			}
		default:
			t.Fatalf("tick %d not delivered", i)
		}
	}
}

func TestManualTickerNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewManual(epoch).NewTicker(0)
}

func TestManualAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewManual(epoch).Advance(-time.Second)
}

func TestManualAdvanceToPastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewManual(epoch).AdvanceTo(epoch.Add(-time.Minute))
}

func TestManualAdvanceTo(t *testing.T) {
	c := NewManual(epoch)
	target := epoch.Add(42 * time.Second)
	c.AdvanceTo(target)
	if !c.Now().Equal(target) {
		t.Fatalf("Now = %v, want %v", c.Now(), target)
	}
}

func TestManualConcurrentSleepers(t *testing.T) {
	c := NewManual(epoch)
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.Sleep(time.Duration(i+1) * time.Millisecond)
		}(i)
	}
	for c.PendingWaiters() < n {
		time.Sleep(time.Millisecond)
	}
	c.Advance(time.Second)
	wg.Wait()
}

func TestRealClockBasics(t *testing.T) {
	c := NewReal()
	before := time.Now()
	got := c.Now()
	if got.Before(before.Add(-time.Second)) {
		t.Fatalf("Real.Now() far in the past: %v", got)
	}
	start := time.Now()
	c.Sleep(5 * time.Millisecond)
	if time.Since(start) < 4*time.Millisecond {
		t.Fatal("Real.Sleep returned too early")
	}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Fatal("Real.After never fired")
	}
	tk := c.NewTicker(time.Millisecond)
	select {
	case <-tk.C():
	case <-time.After(time.Second):
		t.Fatal("Real ticker never fired")
	}
	tk.Stop()
}

// Package simclock abstracts time so that the skeleton runtime, the
// autonomic managers and the metric windows can run either against the wall
// clock (experiments, benchmarks) or against a manually advanced clock
// (deterministic unit tests).
//
// The abstraction is intentionally small: Now, Sleep, After and NewTicker
// are the only operations used by the rest of the repository.
package simclock

import (
	"sync"
	"time"
)

// Clock is the time source used throughout the framework.
type Clock interface {
	// Now returns the current time of this clock.
	Now() time.Time
	// Sleep blocks the caller for at least d of this clock's time.
	Sleep(d time.Duration)
	// After returns a channel that delivers the clock's time once at
	// least d has elapsed.
	After(d time.Duration) <-chan time.Time
	// NewTicker returns a ticker firing every d of this clock's time.
	NewTicker(d time.Duration) Ticker
}

// Ticker is the clock-independent counterpart of time.Ticker.
type Ticker interface {
	// C returns the channel on which ticks are delivered.
	C() <-chan time.Time
	// Stop shuts the ticker down. It does not close C.
	Stop()
}

// Real is the wall-clock implementation of Clock. The zero value is ready
// to use.
type Real struct{}

// NewReal returns a wall-clock Clock.
func NewReal() *Real { return &Real{} }

// Now implements Clock.
func (*Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (*Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (*Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// NewTicker implements Clock.
func (*Real) NewTicker(d time.Duration) Ticker {
	return realTicker{time.NewTicker(d)}
}

type realTicker struct{ t *time.Ticker }

func (r realTicker) C() <-chan time.Time { return r.t.C }
func (r realTicker) Stop()               { r.t.Stop() }

// Manual is a Clock whose time only moves when Advance is called. Sleepers
// and timers are released in deadline order as time passes them. Manual is
// safe for concurrent use.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*waiter
	tickers []*manualTicker
}

type waiter struct {
	deadline time.Time
	ch       chan time.Time
}

// NewManual returns a Manual clock whose current time is start.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start}
}

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Sleep implements Clock. It blocks until the clock has been advanced past
// the deadline by another goroutine.
func (m *Manual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-m.After(d)
}

// After implements Clock.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- m.now
		return ch
	}
	m.waiters = append(m.waiters, &waiter{deadline: m.now.Add(d), ch: ch})
	return ch
}

// NewTicker implements Clock.
func (m *Manual) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("simclock: non-positive ticker period")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	t := &manualTicker{period: d, next: m.now.Add(d), ch: make(chan time.Time, 1)}
	m.tickers = append(m.tickers, t)
	return t
}

type manualTicker struct {
	period  time.Duration
	next    time.Time
	ch      chan time.Time
	stopped bool
}

func (t *manualTicker) C() <-chan time.Time { return t.ch }

func (t *manualTicker) Stop() { t.stopped = true }

// Advance moves the clock forward by d, waking every sleeper and firing
// every ticker whose deadline is passed, in deadline order.
func (m *Manual) Advance(d time.Duration) {
	if d < 0 {
		panic("simclock: negative advance")
	}
	m.mu.Lock()
	target := m.now.Add(d)
	for {
		next, ok := m.nextEventLocked(target)
		if !ok {
			break
		}
		m.now = next
		m.fireLocked()
	}
	m.now = target
	m.mu.Unlock()
}

// AdvanceTo moves the clock to instant t, which must not be in the past.
func (m *Manual) AdvanceTo(t time.Time) {
	m.mu.Lock()
	now := m.now
	m.mu.Unlock()
	if t.Before(now) {
		panic("simclock: AdvanceTo into the past")
	}
	m.Advance(t.Sub(now))
}

// nextEventLocked returns the earliest pending deadline that is not after
// target, if any.
func (m *Manual) nextEventLocked(target time.Time) (time.Time, bool) {
	var (
		best  time.Time
		found bool
	)
	consider := func(t time.Time) {
		if t.After(target) {
			return
		}
		if !found || t.Before(best) {
			best, found = t, true
		}
	}
	for _, w := range m.waiters {
		consider(w.deadline)
	}
	for _, t := range m.tickers {
		if !t.stopped {
			consider(t.next)
		}
	}
	return best, found
}

// fireLocked releases all waiters and tickers whose deadline is <= now.
func (m *Manual) fireLocked() {
	keep := m.waiters[:0]
	for _, w := range m.waiters {
		if !w.deadline.After(m.now) {
			w.ch <- m.now
		} else {
			keep = append(keep, w)
		}
	}
	m.waiters = keep
	for _, t := range m.tickers {
		for !t.stopped && !t.next.After(m.now) {
			select {
			case t.ch <- t.next:
			default: // ticker semantics: drop ticks nobody consumed
			}
			t.next = t.next.Add(t.period)
		}
	}
}

// PendingWaiters reports how many Sleep/After callers are currently parked
// on the clock. It is useful for tests that need to synchronise with
// goroutines before advancing time.
func (m *Manual) PendingWaiters() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.waiters)
}

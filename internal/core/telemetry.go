package core

import (
	"repro/internal/manager"
	"repro/internal/metrics"
	"repro/internal/skel"
	"repro/internal/telemetry"
)

// This file assembles the introspection plane of an application: one
// telemetry.Registry collecting every layer's instruments (manager phase
// histograms, farm dispatch/seal latency, actuator round-trips, the
// platform and sink gauges), one telemetry.Tracer receiving a structured
// DecisionRecord per MAPE iteration, and — only when the -telemetry flag
// names an address — a telemetry.Server exposing them over HTTP.
//
// Measurement is always on: histograms and the decision trace are atomic,
// allocation-free or bounded, so the builders wire them unconditionally.
// The flag controls a single thing, the HTTP listener; without it no
// socket is bound and no telemetry goroutine runs.

// ManagerNode is one manager in the /managers hierarchy view.
type ManagerNode struct {
	Name         string                    `json:"name"`
	Concern      string                    `json:"concern,omitempty"`
	State        string                    `json:"state"`
	Contract     string                    `json:"contract,omitempty"`
	LastDecision *telemetry.DecisionRecord `json:"last_decision,omitempty"`
	// Self-healing surfaces: supervised restarts of this manager's loop,
	// the cause of the most recent one, and the child-side violation
	// buffer state across parent outages.
	Restarts           uint64 `json:"restarts,omitempty"`
	LastRestartCause   string `json:"last_restart_cause,omitempty"`
	BufferedViolations int    `json:"buffered_violations,omitempty"`
	ViolationDrops     uint64 `json:"violation_drops,omitempty"`
	// Remote management plane surfaces: the link's failure-detection state
	// (up/suspect/partitioned/reattached), reattach count and downtime
	// catch-up cycles of a manager reporting over a RemoteLink.
	Link           string         `json:"link,omitempty"`
	LinkReattaches uint64         `json:"link_reattaches,omitempty"`
	CatchUpCycles  uint64         `json:"catchup_cycles,omitempty"`
	Children       []*ManagerNode `json:"children,omitempty"`
}

// ManagersView is the /managers payload: the performance hierarchy plus
// the concern managers outside it.
type ManagersView struct {
	App      string         `json:"app"`
	Root     *ManagerNode   `json:"root,omitempty"`
	Concerns []*ManagerNode `json:"concerns,omitempty"`
	// Linked lists managers reporting to this app over a RemoteLink (the
	// child side of the remote management plane); Remote lists the remote
	// children a parent endpoint is tracking, with their lease state.
	Linked []*ManagerNode `json:"linked,omitempty"`
	Remote []*ManagerNode `json:"remote,omitempty"`
}

// Telemetry returns the application's instrument registry.
func (a *App) Telemetry() *telemetry.Registry { return a.telemetry }

// Tracer returns the application's decision tracer.
func (a *App) Tracer() *telemetry.Tracer { return a.tracer }

// TaskTracer returns the application's task-span tracer (nil unless the
// builder was configured with TraceSample > 0).
func (a *App) TaskTracer() *telemetry.TaskTracer { return a.taskTracer }

// EnableTelemetry binds the introspection HTTP server on addr (":0" for an
// ephemeral port) and arranges for RunContext to serve on it for the whole
// run. It returns the bound server so callers can print its address.
func (a *App) EnableTelemetry(addr string) (*telemetry.Server, error) {
	srv := telemetry.NewServer(addr, a.telemetry)
	if err := srv.Listen(); err != nil {
		return nil, err
	}
	a.telemetryServer = srv
	return srv, nil
}

// initTelemetry assembles the registry and tracer and attaches them to
// every layer of the application. The builders call it once the manager
// hierarchy and skeletons exist; farmIns carries the farm's hot-path
// histograms (nil when the app has no principal farm).
func (a *App) initTelemetry(farmIns *skel.FarmInstruments) {
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(0)
	a.telemetry = reg
	a.tracer = tracer
	reg.SetTracer(tracer)
	reg.SetEventLog(a.Log)
	reg.SetTaskTracer(a.taskTracer) // nil-safe no-op when tracing is off

	a.eachManager(func(m *manager.Manager) {
		m.SetTracer(tracer)
		if a.taskTracer != nil {
			m.SetSpanRing(a.taskTracer.Ring())
		}
		ins := m.Instruments()
		for phase, h := range map[string]*metrics.Histogram{
			"sense":   ins.Sense,
			"analyze": ins.Analyze,
			"plan":    ins.Plan,
			"act":     ins.Act,
		} {
			reg.AddHistogram("repro_mape_phase_seconds",
				"Wall-clock latency of one MAPE phase.",
				telemetry.Labels{"manager": m.Name(), "phase": phase}, h)
		}
		reg.AddHistogram("repro_mape_wake_to_decision_seconds",
			"Latency from a skeleton edge to the decision it triggered.",
			telemetry.Labels{"manager": m.Name()}, ins.Wake)
		mm := m
		reg.AddCounter("repro_actuator_failures_total",
			"Actuator operations that failed after the hardened path gave up.",
			telemetry.Labels{"manager": m.Name()},
			func() float64 { return float64(mm.ActuatorFailures()) })
		reg.AddCounter("repro_violations_dropped_total",
			"Buffered child violations dropped oldest-first during a parent outage.",
			telemetry.Labels{"manager": m.Name()},
			func() float64 { return float64(mm.ViolationDrops()) })
		reg.AddGauge("repro_manager_buffered_violations",
			"Violations parked in the bounded buffer while the parent is unreachable.",
			telemetry.Labels{"manager": m.Name()},
			func() float64 { return float64(mm.BufferedViolations()) })
	})
	for name, sup := range a.Supervisors {
		s := sup
		reg.AddCounter("repro_manager_restarts_total",
			"Supervised restarts of a management loop after a crash or panic.",
			telemetry.Labels{"manager": name},
			func() float64 { return float64(s.Restarts()) })
	}
	if a.mttr != nil {
		reg.AddHistogram("repro_manager_mttr_seconds",
			"Downtime between a management-loop failure and its supervised restart.",
			nil, a.mttr)
	}
	if a.GM != nil {
		a.GM.SetTracer(tracer)
	} else if a.Security != nil {
		a.Security.SetTracer(tracer)
	}

	if farmIns != nil {
		reg.AddHistogram("repro_farm_dispatch_seconds",
			"Dispatcher latency per task (selection, encode, queue push).",
			nil, farmIns.Dispatch)
		reg.AddHistogram("repro_farm_seal_seconds",
			"Codec encode share of the dispatch path.",
			nil, farmIns.Seal)
	}
	if a.FarmABC != nil {
		actuator := metrics.NewLatencyHistogram()
		a.FarmABC.SetActuatorHistogram(actuator)
		reg.AddHistogram("repro_abc_actuator_seconds",
			"Round-trip latency of farm actuator operations.", nil, actuator)
		fa := a.FarmABC
		reg.AddGauge("repro_farm_workers", "Current farm parallelism degree.", nil,
			func() float64 { return float64(fa.Stats().Workers) })
		reg.AddGauge("repro_farm_arrival_rate", "Farm arrival rate (modelled tasks/s).", nil,
			func() float64 { return fa.Stats().ArrivalRate })
		reg.AddGauge("repro_farm_departure_rate", "Farm departure rate (modelled tasks/s).", nil,
			func() float64 { return fa.Stats().DepartureRate })
		reg.AddGauge("repro_farm_queue_variance", "Farm queue imbalance.", nil,
			func() float64 { return fa.Stats().QueueVariance })
	}
	if a.Sink != nil {
		sink := a.Sink
		reg.AddGauge("repro_sink_rate", "Completed-task rate at the sink (modelled tasks/s).", nil,
			func() float64 { return sink.Rate() })
		reg.AddCounter("repro_sink_consumed_total", "Tasks consumed by the sink.", nil,
			func() float64 { return float64(sink.Consumed()) })
	}
	if a.Guard != nil {
		g := a.Guard
		reg.AddCounter("repro_actuator_retries_total",
			"Actuator operations retried by the hardened path.", nil,
			func() float64 { return float64(g.Retries()) })
		reg.AddCounter("repro_actuator_timeouts_total",
			"Actuator operations that exceeded the per-op deadline.", nil,
			func() float64 { return float64(g.Timeouts()) })
	}
	if a.Fault != nil {
		ft := a.Fault
		reg.AddCounter("repro_actuator_failures_total",
			"Recruitment operations that failed after the retry budget.",
			telemetry.Labels{"manager": ft.Name()},
			func() float64 { return float64(ft.ActuatorFailures()) })
		reg.AddCounter("repro_nodes_quarantined_total",
			"Node circuit-breaker trips after repeated worker crashes.", nil,
			func() float64 { return float64(ft.Quarantined()) })
		reg.AddGauge("repro_fault_degraded",
			"1 while recruitment is exhausted and the concern runs degraded.", nil,
			func() float64 {
				if ft.Degraded() {
					return 1
				}
				return 0
			})
	}
	if a.Auditor != nil {
		aud := a.Auditor
		reg.AddCounter("repro_security_leaks_total",
			"Plaintext sends on bindings the policy requires to be secure.", nil,
			func() float64 { return float64(aud.Leaks()) })
		reg.AddCounter("repro_security_secured_total",
			"Sends that crossed their binding sealed.", nil,
			func() float64 { return float64(aud.Secured()) })
	}
	if a.FarmABC != nil {
		farm := a.FarmABC.Farm()
		reg.AddGauge("repro_farm_remote_workers",
			"Workers reached through a cross-process transport.", nil,
			func() float64 { return float64(farm.Stats().RemoteWorkers) })
	}
	if a.Platform != nil {
		rm := a.Platform.RM
		reg.AddGauge("repro_cores_in_use", "Allocated core slots on the platform.", nil,
			func() float64 { return float64(rm.CoresInUse()) })
	}

	reg.SetManagersFunc(func() any { return a.managersView() })
}

// AttachManagerLink registers a child-side remote management link with
// the introspection plane: /metrics gains the link's failure-detection
// state, reattach and catch-up counters and the linked manager's
// buffered-violation depth; /managers gains the manager under "linked".
// Call after the builder assembled the app (the registry exists then).
func (a *App) AttachManagerLink(l *manager.RemoteLink) {
	a.managerLinks = append(a.managerLinks, l)
	if a.telemetry == nil {
		return
	}
	ll := l
	name := l.Child().Name()
	a.telemetry.AddGauge("repro_manager_link_state",
		"Manager-link failure-detection state: 0 up, 1 suspect, 2 partitioned, 3 reattached.",
		telemetry.Labels{"manager": name},
		func() float64 { return float64(ll.State()) })
	a.telemetry.AddCounter("repro_manager_link_reattach_total",
		"Times the manager link re-established after a partition.",
		telemetry.Labels{"manager": name},
		func() float64 { return float64(ll.Reattaches()) })
	a.telemetry.AddCounter("repro_manager_catchup_cycles_total",
		"Downtime catch-up MAPE cycles run after link reattach.",
		telemetry.Labels{"manager": name},
		func() float64 { return float64(ll.Child().CatchUpCycles()) })
	a.telemetry.AddGauge("repro_manager_buffered_violations",
		"Violations parked in the bounded buffer while the parent is unreachable.",
		telemetry.Labels{"manager": name},
		func() float64 { return float64(ll.Child().BufferedViolations()) })
}

// AttachManagerEndpoint registers a parent-side management endpoint with
// the introspection plane: /metrics gains the endpoint's delivery and
// dedup counters, /managers lists its remote children with their lease
// state.
func (a *App) AttachManagerEndpoint(ep *manager.ParentEndpoint) {
	a.managerEndpoints = append(a.managerEndpoints, ep)
	if a.telemetry == nil {
		return
	}
	e := ep
	a.telemetry.AddCounter("repro_manager_link_delivered_total",
		"Violations accepted from remote children over the management plane.", nil,
		func() float64 { return float64(e.Delivered()) })
	a.telemetry.AddCounter("repro_manager_link_duplicates_total",
		"Duplicate violation reports suppressed by causality-id dedup.", nil,
		func() float64 { return float64(e.Duplicates()) })
	a.telemetry.AddGauge("repro_manager_link_children",
		"Remote child managers the endpoint has leases for.", nil,
		func() float64 { return float64(len(e.Children())) })
}

// eachManager visits every manager in the performance hierarchy.
func (a *App) eachManager(fn func(*manager.Manager)) {
	var walk func(m *manager.Manager)
	walk = func(m *manager.Manager) {
		if m == nil {
			return
		}
		fn(m)
		for _, c := range m.Children() {
			walk(c)
		}
	}
	walk(a.RootManager)
}

// managersView builds the /managers payload.
func (a *App) managersView() *ManagersView {
	var last map[string]telemetry.DecisionRecord
	if a.tracer != nil {
		last = a.tracer.LastByManager()
	}
	node := func(name, concern, state, contract string) *ManagerNode {
		n := &ManagerNode{Name: name, Concern: concern, State: state, Contract: contract}
		if rec, ok := last[name]; ok {
			n.LastDecision = &rec
		}
		if sup := a.Supervisors[name]; sup != nil {
			n.Restarts = sup.Restarts()
			n.LastRestartCause = sup.LastCause()
		}
		return n
	}
	var build func(m *manager.Manager) *ManagerNode
	build = func(m *manager.Manager) *ManagerNode {
		n := node(m.Name(), m.Concern(), m.State().String(), m.Contract().Describe())
		n.BufferedViolations = m.BufferedViolations()
		n.ViolationDrops = m.ViolationDrops()
		for _, c := range m.Children() {
			n.Children = append(n.Children, build(c))
		}
		return n
	}
	view := &ManagersView{App: a.Name}
	if a.RootManager != nil {
		view.Root = build(a.RootManager)
	}
	if a.GM != nil {
		view.Concerns = append(view.Concerns,
			node(a.GM.Name(), "coordination", a.GM.Mode().String(), ""))
	}
	if a.Security != nil {
		view.Concerns = append(view.Concerns,
			node(a.Security.Name(), "security", "active", ""))
	}
	if a.Fault != nil {
		view.Concerns = append(view.Concerns,
			node(a.Fault.Name(), "faultTolerance", "active", ""))
	}
	if a.Migration != nil {
		view.Concerns = append(view.Concerns,
			node(a.Migration.Name(), "migration", "active", ""))
	}
	for _, l := range a.managerLinks {
		c := l.Child()
		n := node(c.Name(), c.Concern(), c.State().String(), c.Contract().Describe())
		n.Link = l.State().String()
		n.LinkReattaches = l.Reattaches()
		n.CatchUpCycles = c.CatchUpCycles()
		n.BufferedViolations = c.BufferedViolations()
		n.ViolationDrops = c.ViolationDrops()
		view.Linked = append(view.Linked, n)
	}
	for _, ep := range a.managerEndpoints {
		for _, child := range ep.Children() {
			state := "up"
			if ep.ChildPartitioned(child) {
				state = "partitioned"
			}
			view.Remote = append(view.Remote, &ManagerNode{Name: child, State: state, Link: state})
		}
	}
	return view
}

package core

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/contract"
	"repro/internal/grid"
	"repro/internal/manager"
	"repro/internal/runtime/leaktest"
	"repro/internal/telemetry"
)

func telemetryFarmApp(t *testing.T) *App {
	t.Helper()
	app, err := NewFarmApp(FarmAppConfig{
		Name:           "telemetrymini",
		Env:            fastEnv(400),
		Platform:       grid.NewSMP(10),
		Tasks:          120,
		TaskWork:       5 * time.Second,
		SourceInterval: 1200 * time.Millisecond,
		InitialWorkers: 1,
		Contract:       contract.MinThroughput(0.6),
		Limits:         manager.FarmLimits{MaxWorkers: 8},
		Period:         2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return app
}

// TestTelemetryMeasurementAlwaysOn: the builders wire the registry and
// tracer unconditionally — measurement is always on — but without
// EnableTelemetry no listener is bound and no extra goroutine runs.
func TestTelemetryMeasurementAlwaysOn(t *testing.T) {
	defer leaktest.Check(t)()
	app := telemetryFarmApp(t)
	if app.Telemetry() == nil || app.Tracer() == nil {
		t.Fatal("builder did not wire the telemetry registry/tracer")
	}
	if _, err := app.Run(); err != nil {
		t.Fatal(err)
	}
	if app.Tracer().Total() == 0 {
		t.Fatal("no decision records after a full run")
	}
	rec, ok := app.Tracer().LastByManager()["AM_F"]
	if !ok {
		t.Fatal("no decision record for AM_F")
	}
	if rec.Phases.Sense < 0 || rec.Phases.Plan < 0 {
		t.Fatalf("phase durations invalid: %+v", rec.Phases)
	}
	snap := app.RootManager.Instruments().Sense.Snapshot()
	if snap.Count == 0 {
		t.Fatal("sense-phase histogram never observed")
	}
}

// TestTelemetryLiveEndpoints scrapes the introspection endpoint while an
// application is running: /metrics must expose the MAPE phase histograms
// in Prometheus text format, /trace must return valid JSON, and /managers
// must render the manager tree. After the run the server must be down.
func TestTelemetryLiveEndpoints(t *testing.T) {
	defer leaktest.Check(t)()
	app := telemetryFarmApp(t)
	srv, err := app.EnableTelemetry("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()
	client := &http.Client{Timeout: 5 * time.Second}
	defer client.CloseIdleConnections()

	done := make(chan error, 1)
	go func() {
		_, err := app.RunContext(context.Background())
		done <- err
	}()

	get := func(path string) (int, string) {
		resp, err := client.Get(base + path)
		if err != nil {
			return 0, err.Error()
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// The server starts with the run; poll /healthz until it answers.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code, _ := get("/healthz"); code == 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("telemetry endpoint never came up")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if code, body := get("/metrics"); code != 200 ||
		!strings.Contains(body, "repro_mape_phase_seconds_bucket") ||
		!strings.Contains(body, "repro_farm_dispatch_seconds") ||
		!strings.Contains(body, "repro_abc_actuator_seconds") {
		t.Fatalf("/metrics = %d:\n%s", code, body)
	}

	var recs []telemetry.DecisionRecord
	for {
		code, body := get("/trace?n=5")
		if code != 200 {
			t.Fatalf("/trace = %d %s", code, body)
		}
		if err := json.Unmarshal([]byte(body), &recs); err != nil {
			t.Fatalf("/trace body not JSON: %v\n%s", err, body)
		}
		if len(recs) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(recs) == 0 {
		t.Fatal("no decision records surfaced on /trace during the run")
	}
	if recs[0].Manager == "" {
		t.Fatalf("trace record missing manager: %+v", recs[0])
	}

	code, body := get("/managers")
	if code != 200 {
		t.Fatalf("/managers = %d %s", code, body)
	}
	var view ManagersView
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatalf("/managers body not JSON: %v\n%s", err, body)
	}
	if view.App != "telemetrymini" || view.Root == nil || view.Root.Name != "AM_F" {
		t.Fatalf("managers view = %+v", view)
	}

	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// RunContext's teardown stops the server with the managed goroutines.
	if _, err := client.Get(base + "/healthz"); err == nil {
		t.Fatal("telemetry server still up after the run")
	}
}

// Package core assembles behavioural skeletons: the pairs <P, M_C> of a
// parallelism-exploitation pattern and an autonomic manager that are the
// paper's central contribution. It offers a small skeleton-expression
// language (farm(pipe(seq, farm(seq), seq)) and friends), application
// builders that wire skeleton runtime + ABC + manager hierarchy + GCM
// component tree together, and a runner that samples the series plotted in
// the paper's figures.
package core

import (
	"fmt"
	"strings"
)

// PatternKind is the parallelism pattern P of a behavioural skeleton.
type PatternKind int

// Pattern kinds.
const (
	SeqPattern PatternKind = iota
	FarmPattern
	PipePattern
)

// String implements fmt.Stringer.
func (k PatternKind) String() string {
	switch k {
	case SeqPattern:
		return "seq"
	case FarmPattern:
		return "farm"
	default:
		return "pipe"
	}
}

// Spec is a parsed skeleton expression node.
type Spec struct {
	Kind     PatternKind
	Children []*Spec
}

// String renders the spec back in expression syntax.
func (s *Spec) String() string {
	switch s.Kind {
	case SeqPattern:
		return "seq"
	case FarmPattern:
		return fmt.Sprintf("farm(%s)", s.Children[0])
	default:
		parts := make([]string, len(s.Children))
		for i, c := range s.Children {
			parts[i] = c.String()
		}
		return fmt.Sprintf("pipe(%s)", strings.Join(parts, ","))
	}
}

// Stages counts the leaf (sequential) computations of the expression.
func (s *Spec) Stages() int {
	if s.Kind == SeqPattern {
		return 1
	}
	n := 0
	for _, c := range s.Children {
		n += c.Stages()
	}
	return n
}

// ParseExpr parses a skeleton expression:
//
//	expr := "seq" | "farm" "(" expr ")" | "pipe" "(" expr ("," expr)* ")"
//
// "pipeline" is accepted as an alias of "pipe". Whitespace is free.
func ParseExpr(src string) (*Spec, error) {
	p := &exprParser{src: src}
	spec, err := p.parse()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("core: trailing input %q at offset %d", p.src[p.pos:], p.pos)
	}
	return spec, nil
}

// MustParseExpr is ParseExpr panicking on error.
func MustParseExpr(src string) *Spec {
	s, err := ParseExpr(src)
	if err != nil {
		panic(err)
	}
	return s
}

type exprParser struct {
	src string
	pos int
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *exprParser) word() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
			p.pos++
			continue
		}
		break
	}
	return p.src[start:p.pos]
}

func (p *exprParser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != c {
		return fmt.Errorf("core: expected %q at offset %d in %q", string(c), p.pos, p.src)
	}
	p.pos++
	return nil
}

func (p *exprParser) parse() (*Spec, error) {
	p.skipSpace()
	w := strings.ToLower(p.word())
	switch w {
	case "seq", "sequential":
		return &Spec{Kind: SeqPattern}, nil
	case "farm":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		inner, err := p.parse()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return &Spec{Kind: FarmPattern, Children: []*Spec{inner}}, nil
	case "pipe", "pipeline":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		var children []*Spec
		for {
			child, err := p.parse()
			if err != nil {
				return nil, err
			}
			children = append(children, child)
			p.skipSpace()
			if p.pos < len(p.src) && p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			break
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		if len(children) == 0 {
			return nil, fmt.Errorf("core: empty pipeline")
		}
		return &Spec{Kind: PipePattern, Children: children}, nil
	case "":
		return nil, fmt.Errorf("core: expected skeleton at offset %d in %q", p.pos, p.src)
	default:
		return nil, fmt.Errorf("core: unknown skeleton %q (want seq, farm or pipe)", w)
	}
}

// Normalize flattens nested pipelines (pipe(pipe(a,b),c) == pipe(a,b,c))
// and collapses single-stage pipelines, which are semantically identical
// for both the runtime and the manager hierarchy.
func (s *Spec) Normalize() *Spec {
	switch s.Kind {
	case SeqPattern:
		return s
	case FarmPattern:
		return &Spec{Kind: FarmPattern, Children: []*Spec{s.Children[0].Normalize()}}
	default:
		var flat []*Spec
		for _, c := range s.Children {
			n := c.Normalize()
			if n.Kind == PipePattern {
				flat = append(flat, n.Children...)
			} else {
				flat = append(flat, n)
			}
		}
		if len(flat) == 1 {
			return flat[0]
		}
		return &Spec{Kind: PipePattern, Children: flat}
	}
}

package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/component"
	"repro/internal/contract"
	"repro/internal/grid"
	"repro/internal/manager"
	"repro/internal/runtime/leaktest"
	"repro/internal/simclock"
	"repro/internal/skel"
	"repro/internal/trace"
)

func fastEnv(scale float64) skel.Env {
	return skel.Env{Clock: simclock.NewReal(), TimeScale: scale}
}

func TestParseExpr(t *testing.T) {
	cases := map[string]string{
		"seq":                       "seq",
		"farm(seq)":                 "farm(seq)",
		"pipe(seq, farm(seq), seq)": "pipe(seq,farm(seq),seq)",
		"pipeline(seq,seq)":         "pipe(seq,seq)",
		"farm( pipe( seq , seq ) )": "farm(pipe(seq,seq))",
		"FARM(SEQ)":                 "farm(seq)",
		"pipe(pipe(seq,seq),seq)":   "pipe(pipe(seq,seq),seq)",
		"sequential":                "seq",
	}
	for src, want := range cases {
		spec, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", src, err)
		}
		if spec.String() != want {
			t.Fatalf("ParseExpr(%q) = %s, want %s", src, spec, want)
		}
	}
}

func TestParseExprErrors(t *testing.T) {
	for _, src := range []string{
		"", "blob", "farm", "farm(", "farm()", "farm(seq", "pipe()",
		"pipe(seq,)", "seq extra", "farm(seq))",
	} {
		if _, err := ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q) accepted", src)
		}
	}
}

func TestMustParseExprPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParseExpr("nope")
}

func TestSpecNormalize(t *testing.T) {
	spec := MustParseExpr("pipe(pipe(seq,farm(seq)),pipe(seq))").Normalize()
	if spec.String() != "pipe(seq,farm(seq),seq)" {
		t.Fatalf("normalized = %s", spec)
	}
	if spec.Stages() != 3 {
		t.Fatalf("Stages = %d", spec.Stages())
	}
	one := MustParseExpr("pipe(seq)").Normalize()
	if one.Kind != SeqPattern {
		t.Fatalf("single-stage pipe = %s", one)
	}
}

func TestPatternKindString(t *testing.T) {
	if SeqPattern.String() != "seq" || FarmPattern.String() != "farm" || PipePattern.String() != "pipe" {
		t.Fatal("pattern names wrong")
	}
}

// TestFarmAppReachesContract is the FIG3 shape in miniature: a task farm
// with a single AM and a minimum-throughput contract; the manager must add
// workers until the measured throughput crosses the contract.
func TestFarmAppReachesContract(t *testing.T) {
	defer leaktest.Check(t)()
	env := fastEnv(400)
	app, err := NewFarmApp(FarmAppConfig{
		Name:           "fig3mini",
		Env:            env,
		Platform:       grid.NewSMP(10),
		Tasks:          120,
		TaskWork:       5 * time.Second,         // one worker: 0.2/s
		SourceInterval: 1200 * time.Millisecond, // 0.83/s offered
		InitialWorkers: 1,
		Contract:       contract.MinThroughput(0.6), // needs >= 3 workers
		Limits:         manager.FarmLimits{MaxWorkers: 8},
		Period:         2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := app.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 120 {
		t.Fatalf("completed %d/120", res.Completed)
	}
	if res.Log.Count("AM_F", trace.AddWorker) == 0 {
		t.Fatalf("no addWorker events:\n%s", res.Log.Timeline())
	}
	if res.Throughput.Max() < 0.6 {
		t.Fatalf("throughput never reached the contract: max %.3f", res.Throughput.Max())
	}
	if res.Workers.Max() < 3 {
		t.Fatalf("parallelism degree never grew: max %.0f", res.Workers.Max())
	}
	// The staircase must be monotone while ramping: the manager should not
	// remove workers in a pure lower-bound contract run.
	if res.Log.Count("AM_F", trace.RemWorker) != 0 {
		t.Fatalf("unexpected remWorker:\n%s", res.Log.Timeline())
	}
}

// TestPipelineAppFig4Shape is the FIG4 narrative in miniature: the
// hierarchy must produce notEnough -> raiseViol -> incRate, then addWorker,
// and endStream at the end, with the throughput entering the contract
// stripe.
func TestPipelineAppFig4Shape(t *testing.T) {
	env := fastEnv(400)
	app, err := NewPipelineApp(PipelineAppConfig{
		Name:             "fig4mini",
		Env:              env,
		Platform:         grid.NewSMP(12),
		Tasks:            100,
		ProducerInterval: 5 * time.Second, // 0.2/s: below the 0.3 bound
		FilterWork:       14 * time.Second,
		ConsumerWork:     200 * time.Millisecond,
		InitialWorkers:   3,
		Limits:           manager.FarmLimits{MaxWorkers: 9},
		Contract:         contract.ThroughputRange{Lo: 0.3, Hi: 0.7},
		Period:           5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := app.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 100 {
		t.Fatalf("completed %d/100", res.Completed)
	}
	log := res.Log
	// Phase 1: the farm reports it is starving, the application manager
	// raises the producer rate.
	if log.Count("AM_F", trace.NotEnough) == 0 {
		t.Fatalf("no notEnough events:\n%s", log.Timeline())
	}
	if log.Count("AM_F", trace.RaiseViol) == 0 {
		t.Fatalf("no raiseViol events:\n%s", log.Timeline())
	}
	if log.Count("AM_A", trace.IncRate) == 0 {
		t.Fatalf("no incRate events:\n%s", log.Timeline())
	}
	// Phase 2: with enough input pressure the farm grows.
	if log.Count("AM_F", trace.AddWorker) == 0 {
		t.Fatalf("no addWorker events:\n%s", log.Timeline())
	}
	// Phase 3: stream end is detected exactly once by AM_A.
	if got := log.Count("AM_A", trace.EndStream); got != 1 {
		t.Fatalf("endStream events = %d, want 1:\n%s", got, log.Timeline())
	}
	// The throughput must have entered the contract stripe.
	if res.Throughput.Max() < 0.3 {
		t.Fatalf("throughput never entered the stripe: max %.3f", res.Throughput.Max())
	}
	// Ordering: first notEnough precedes first addWorker (the paper's
	// phase structure).
	ne, _ := log.FirstOf("AM_F", trace.NotEnough)
	aw, ok := log.FirstOf("AM_F", trace.AddWorker)
	if !ok || aw.T.Before(ne.T) {
		t.Fatalf("addWorker before notEnough:\n%s", log.Timeline())
	}
	// The incRate reaction must precede the first addWorker too.
	ir, _ := log.FirstOf("AM_A", trace.IncRate)
	if aw.T.Before(ir.T) {
		t.Fatalf("addWorker before incRate:\n%s", log.Timeline())
	}
	// Resource accounting: producer + consumer + initial workers = 5
	// (the first sample may land just after the first addWorker).
	if first := res.Cores.Points()[0]; first.V < 5 || first.V > 6 {
		t.Fatalf("initial cores = %v, want ~5", first.V)
	}
	if res.Cores.Max() <= 5 {
		t.Fatalf("resources never grew: max %v", res.Cores.Max())
	}
}

// TestPipelineAppRulesDrivenParity reruns the Fig. 4 scenario with the
// application manager's policy stored as DRL rules instead of Go code; the
// narrative events must be the same.
func TestPipelineAppRulesDrivenParity(t *testing.T) {
	env := fastEnv(400)
	app, err := NewPipelineApp(PipelineAppConfig{
		Name:             "fig4rules",
		Env:              env,
		Platform:         grid.NewSMP(12),
		Tasks:            100,
		ProducerInterval: 5 * time.Second,
		FilterWork:       14 * time.Second,
		ConsumerWork:     200 * time.Millisecond,
		InitialWorkers:   3,
		Limits:           manager.FarmLimits{MaxWorkers: 9},
		Contract:         contract.ThroughputRange{Lo: 0.3, Hi: 0.7},
		Period:           5 * time.Second,
		RulesDriven:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if app.RootManager.Engine() == nil {
		t.Fatal("rules-driven AM_A has no engine")
	}
	res, err := app.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 100 {
		t.Fatalf("completed %d/100", res.Completed)
	}
	log := res.Log
	for _, c := range []struct {
		source string
		kind   trace.Kind
	}{
		{"AM_F", trace.NotEnough},
		{"AM_F", trace.RaiseViol},
		{"AM_A", trace.IncRate},
		{"AM_F", trace.AddWorker},
	} {
		if log.Count(c.source, c.kind) == 0 {
			t.Errorf("%s/%s missing", c.source, c.kind)
		}
	}
	if got := log.Count("AM_A", trace.EndStream); got != 1 {
		t.Errorf("endStream events = %d, want 1", got)
	}
	if t.Failed() {
		t.Fatalf("timeline:\n%s", log.Timeline())
	}
	if res.Throughput.Max() < 0.3 {
		t.Fatalf("throughput never entered the stripe: %.3f", res.Throughput.Max())
	}
}

func TestPipelineAppComponentTree(t *testing.T) {
	env := fastEnv(1000)
	app, err := NewPipelineApp(PipelineAppConfig{
		Name: "tree", Env: env, Platform: grid.NewSMP(8), Tasks: 1,
		ProducerInterval: time.Second, FilterWork: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	root := app.ComponentTree()
	if root == nil {
		t.Fatal("no component tree")
	}
	var names []string
	component.Visit(root, func(c component.Component) { names = append(names, c.Name()) })
	if len(names) != 4 {
		t.Fatalf("component tree = %v, want pipe + 3 stages", names)
	}
	if _, ok := root.Membrane().NF("manager"); !ok {
		t.Fatal("membrane has no manager NF interface")
	}
	if _, ok := root.Membrane().NF("abc"); !ok {
		t.Fatal("membrane has no abc NF interface")
	}
	if len(app.Root.Children) != 3 {
		t.Fatalf("BS children = %d", len(app.Root.Children))
	}
	// Manager hierarchy mirrors the BS tree.
	if len(app.RootManager.Children()) != 3 {
		t.Fatalf("manager children = %d", len(app.RootManager.Children()))
	}
	// Consume the stream so goroutines do not leak.
	if _, err := app.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFarmAppValidation(t *testing.T) {
	if _, err := NewFarmApp(FarmAppConfig{}); err == nil {
		t.Fatal("farm app without clock accepted")
	}
	if _, err := NewPipelineApp(PipelineAppConfig{}); err == nil {
		t.Fatal("pipeline app without clock accepted")
	}
	if _, err := NewPipelineApp(PipelineAppConfig{
		Env:      fastEnv(100),
		Platform: &grid.Platform{RM: grid.NewResourceManager(), Network: grid.NewNetwork()},
	}); err == nil {
		t.Fatal("pipeline app on empty platform accepted")
	}
}

func TestAppContractWithoutManager(t *testing.T) {
	a := &App{}
	if err := a.Contract(contract.BestEffort{}); err == nil {
		t.Fatal("contract on unmanaged app accepted")
	}
	if _, err := a.Run(); err == nil {
		t.Fatal("running an unassembled app accepted")
	}
	if a.ComponentTree() != nil {
		t.Fatal("unassembled app has a component tree")
	}
}

func TestBuildFromExpr(t *testing.T) {
	env := fastEnv(1000)
	fcfg := FarmAppConfig{Env: env, Platform: grid.NewSMP(8), Tasks: 1, TaskWork: time.Millisecond}
	pcfg := PipelineAppConfig{Env: env, Platform: grid.NewSMP(8), Tasks: 1,
		ProducerInterval: time.Millisecond, FilterWork: time.Millisecond}

	app, err := BuildFromExpr("farm(seq)", fcfg, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if app.RootManager.Name() != "AM_F" {
		t.Fatalf("farm app root manager = %s", app.RootManager.Name())
	}
	if _, err := app.Run(); err != nil {
		t.Fatal(err)
	}

	fcfg2 := fcfg
	fcfg2.Platform = grid.NewSMP(8)
	pcfg2 := pcfg
	pcfg2.Platform = grid.NewSMP(8)
	app2, err := BuildFromExpr("pipe(seq, farm(seq), seq)", fcfg2, pcfg2)
	if err != nil {
		t.Fatal(err)
	}
	if app2.RootManager.Name() != "AM_A" {
		t.Fatalf("pipe app root manager = %s", app2.RootManager.Name())
	}
	if _, err := app2.Run(); err != nil {
		t.Fatal(err)
	}

	for _, expr := range []string{
		"seq",                       // nothing to manage
		"farm(pipe(seq,seq))",       // farm over pipeline unsupported
		"pipe(seq,seq)",             // no farm stage
		"pipe(farm(seq),farm(seq))", // two farm stages
		"pipe(farm(farm(seq)))",     // nested farm
		"garbage(",
	} {
		if _, err := BuildFromExpr(expr, fcfg, pcfg); err == nil {
			t.Errorf("BuildFromExpr(%q) accepted", expr)
		}
	}
}

// TestMultiConcernTwoPhaseNoLeaks checks the §3.2 invariant: with the
// two-phase protocol, workers recruited in untrusted_ip_domain_A never
// receive a plaintext message.
func TestMultiConcernTwoPhaseNoLeaks(t *testing.T) {
	env := fastEnv(400)
	app, err := NewFarmApp(FarmAppConfig{
		Name:           "sec2pc",
		Env:            env,
		Platform:       grid.NewTwoDomainGrid(2, 6),
		Tasks:          150,
		TaskWork:       4 * time.Second,
		SourceInterval: 800 * time.Millisecond,
		InitialWorkers: 2,
		Contract: contract.Conjunction{
			contract.SecureComms{},
			contract.MinThroughput(0.9),
		},
		Limits:       manager.FarmLimits{MaxWorkers: 8},
		Period:       2 * time.Second,
		WithSecurity: true,
		Coordination: manager.TwoPhase,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := app.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 150 {
		t.Fatalf("completed %d/150", res.Completed)
	}
	if app.Auditor.Leaks() != 0 {
		t.Fatalf("two-phase protocol leaked %d plaintext messages", app.Auditor.Leaks())
	}
	// The farm must have grown into the untrusted domain (otherwise the
	// scenario is vacuous) and those bindings must be secured.
	untrusted := 0
	for _, w := range app.FarmABC.Workers() {
		if !w.Node.Domain.Trusted {
			untrusted++
			if !w.Secure {
				t.Fatalf("untrusted worker %s not secured", w.ID)
			}
		}
	}
	if untrusted == 0 {
		t.Fatalf("farm never grew into the untrusted domain:\n%s", res.Log.Timeline())
	}
	if res.Log.Count("GM", trace.Intent) == 0 || res.Log.Count("GM", trace.Committed) == 0 {
		t.Fatalf("two-phase events missing:\n%s", res.Log.Timeline())
	}
	if app.Auditor.Secured() == 0 {
		t.Fatal("no secured messages recorded")
	}
}

// TestMultiConcernReactiveLeaks checks the converse: the naive scheme
// exposes at least one plaintext message before the security manager
// reacts.
func TestMultiConcernReactiveLeaks(t *testing.T) {
	env := fastEnv(400)
	app, err := NewFarmApp(FarmAppConfig{
		Name:           "secnaive",
		Env:            env,
		Platform:       grid.NewTwoDomainGrid(0, 8), // all workers untrusted
		Tasks:          150,
		TaskWork:       4 * time.Second,
		SourceInterval: 800 * time.Millisecond,
		InitialWorkers: 2,
		Contract:       contract.MinThroughput(0.9),
		Limits:         manager.FarmLimits{MaxWorkers: 8},
		Period:         2 * time.Second,
		WithSecurity:   true,
		Coordination:   manager.Reactive,
		SecurityPeriod: 10 * time.Second, // wide hazard window: leaks guaranteed
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := app.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 150 {
		t.Fatalf("completed %d/150", res.Completed)
	}
	if app.Auditor.Leaks() == 0 {
		t.Fatalf("reactive scheme leaked nothing — the §3.2 hazard did not reproduce:\n%s",
			res.Log.Timeline())
	}
	// Eventually the security manager secures everything.
	if app.Security.Secured() == 0 {
		t.Fatal("security manager never acted")
	}
}

// TestRunContextCancelDrains exercises the graceful-shutdown path: midway
// through the stream the run context is canceled; the source must stop
// emitting, the stages must drain every accepted task (no loss, no hang),
// the managers must tear down, and the partial result must be returned.
func TestRunContextCancelDrains(t *testing.T) {
	defer leaktest.Check(t)()
	env := fastEnv(400)
	app, err := NewFarmApp(FarmAppConfig{
		Name:           "cancel",
		Env:            env,
		Platform:       grid.NewSMP(8),
		Tasks:          100000, // far more than can complete before cancel
		TaskWork:       time.Second,
		SourceInterval: 100 * time.Millisecond,
		InitialWorkers: 2,
		Contract:       contract.MinThroughput(0.1),
		Limits:         manager.FarmLimits{MaxWorkers: 4},
		Period:         time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		deadline := time.Now().Add(10 * time.Second)
		for app.Sink.Consumed() < 10 {
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	res, err := app.RunContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("canceled run completed nothing")
	}
	if res.Completed >= 100000 {
		t.Fatal("cancel did not stop the intake")
	}
	// Drain-on-cancel: everything emitted was consumed, nothing dropped.
	if got, want := res.Completed, app.Source.Emitted(); got != want {
		t.Fatalf("completed %d of %d emitted: accepted tasks were dropped", got, want)
	}
}

// TestRunContextPreCanceled checks that an already-canceled context still
// yields a well-formed (empty) result rather than a hang or a nil deref.
func TestRunContextPreCanceled(t *testing.T) {
	defer leaktest.Check(t)()
	env := fastEnv(400)
	app, err := NewFarmApp(FarmAppConfig{
		Name: "precancel", Env: env, Platform: grid.NewSMP(4), Tasks: 50,
		TaskWork: time.Second, SourceInterval: 100 * time.Millisecond,
		InitialWorkers: 1, Contract: contract.MinThroughput(0.1),
		Period: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := app.RunContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 0 {
		t.Fatalf("pre-canceled run completed %d tasks", res.Completed)
	}
}

package core

import (
	"testing"
	"time"

	"repro/internal/contract"
	"repro/internal/grid"
	"repro/internal/manager"
	"repro/internal/trace"
)

func TestNewStreamAppValidation(t *testing.T) {
	if _, err := NewStreamApp(StreamAppConfig{}); err == nil {
		t.Fatal("stream app without clock accepted")
	}
	if _, err := NewStreamApp(StreamAppConfig{Env: fastEnv(100)}); err == nil {
		t.Fatal("stream app without stages accepted")
	}
	if _, err := NewStreamApp(StreamAppConfig{
		Env:    fastEnv(100),
		Stages: []StageSpec{{Kind: StageKind(99)}},
	}); err == nil {
		t.Fatal("unknown stage kind accepted")
	}
}

func TestStreamAppRunsMultiFarmPipeline(t *testing.T) {
	env := fastEnv(500)
	log := trace.NewLog()
	app, err := NewStreamApp(StreamAppConfig{
		Name:           "multi",
		Env:            env,
		Platform:       grid.NewSMP(16),
		Log:            log,
		Tasks:          60,
		SourceInterval: 2 * time.Second,
		Stages: []StageSpec{
			{Name: "prep", Kind: StageSeq, Work: time.Second},
			{Name: "heavy", Kind: StageFarm, Work: 8 * time.Second, Workers: 3,
				Limits: manager.FarmLimits{MaxWorkers: 8}},
			{Name: "post", Kind: StageFarm, Work: 3 * time.Second, Workers: 2,
				Limits: manager.FarmLimits{MaxWorkers: 4}},
		},
		Contract: contract.ThroughputRange{Lo: 0.3, Hi: 0.7},
		Period:   3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Manager hierarchy: AM_A with AM_P + 3 stage managers.
	kids := app.RootManager.Children()
	if len(kids) != 4 {
		t.Fatalf("manager children = %d, want 4", len(kids))
	}
	names := map[string]bool{}
	for _, k := range kids {
		names[k.Name()] = true
	}
	for _, want := range []string{"AM_P", "AM_S0", "AM_F", "AM_F1"} {
		if !names[want] {
			t.Fatalf("missing manager %s (have %v)", want, names)
		}
	}
	res, err := app.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 60 {
		t.Fatalf("completed %d/60", res.Completed)
	}
	// Both farm managers received (split) contracts.
	if log.Count("AM_F", trace.NewContr) == 0 || log.Count("AM_F1", trace.NewContr) == 0 {
		t.Fatalf("farm managers missing contracts:\n%s", log.Timeline())
	}
	// BS/component tree mirrors the stage structure (source + 3 stages).
	if len(app.Root.Children) != 4 {
		t.Fatalf("BS children = %d", len(app.Root.Children))
	}
}

func TestStageSpecFarmize(t *testing.T) {
	s := StageSpec{Name: "cons", Kind: StageSeq, Work: time.Second}
	f := s.Farmize(3)
	if f.Kind != StageFarm || f.Workers != 3 {
		t.Fatalf("farmized = %+v", f)
	}
	if s.Kind != StageSeq {
		t.Fatal("Farmize mutated the receiver")
	}
	d := s.Farmize(0)
	if d.Workers != 2 {
		t.Fatalf("default degree = %d, want 2", d.Workers)
	}
	e := StageSpec{Kind: StageSeq, Workers: 5}.Farmize(0)
	if e.Workers != 5 {
		t.Fatalf("existing degree overridden: %d", e.Workers)
	}
}

func TestStreamAppPerStageWork(t *testing.T) {
	// A pipeline where each stage has its own cost: stage rates must
	// reflect the per-stage Work, not the task's (zero) Work.
	env := fastEnv(1000)
	app, err := NewStreamApp(StreamAppConfig{
		Env:            env,
		Platform:       grid.NewSMP(8),
		Tasks:          20,
		SourceInterval: 100 * time.Millisecond,
		Stages: []StageSpec{
			{Name: "fast", Kind: StageSeq, Work: 10 * time.Millisecond},
			{Name: "slow", Kind: StageFarm, Work: 300 * time.Millisecond, Workers: 2},
		},
		Contract: contract.ThroughputRange{Lo: 0.01, Hi: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := app.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 20 {
		t.Fatalf("completed %d/20", res.Completed)
	}
}

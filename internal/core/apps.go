package core

import (
	"fmt"
	"time"

	"repro/internal/abc"
	"repro/internal/contract"
	"repro/internal/grid"
	"repro/internal/manager"
	"repro/internal/metrics"
	"repro/internal/planner"
	"repro/internal/runtime"
	"repro/internal/security"
	"repro/internal/skel"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// throughputLo extracts the lower throughput bound of a contract (walking
// conjunctions); ok is false when the contract has no throughput part.
func throughputLo(c contract.Contract) (float64, bool) {
	switch c := c.(type) {
	case contract.ThroughputRange:
		return c.Lo, true
	case contract.Conjunction:
		for _, sub := range c {
			if lo, ok := throughputLo(sub); ok {
				return lo, true
			}
		}
	}
	return 0, false
}

// FarmAppConfig parameterizes a single-farm behavioural-skeleton
// application (the Fig. 3 experiment and the §3.2 multi-concern scenario).
type FarmAppConfig struct {
	Name     string
	Env      skel.Env
	Platform *grid.Platform
	Log      *trace.Log

	// Tasks is the stream length; TaskWork the per-task nominal service
	// time; SourceInterval the task inter-arrival period (modelled).
	Tasks          int
	TaskWork       time.Duration
	SourceInterval time.Duration
	// Payload sizes each task's payload in bytes (0 = 64).
	Payload int

	// Fn is the worker function (nil = identity).
	Fn skel.Fn
	// SinkFn runs in the sink on every collected task (nil = none); the
	// chaos soak uses it for exactly-once accounting.
	SinkFn skel.Fn
	// ChargeLinkLatency makes the farm charge each task the latency of
	// the link between the platform's first domain (where dispatcher and
	// collector live) and the worker's domain, so inter-domain link
	// degradation becomes observable to the managers. Default off.
	ChargeLinkLatency bool

	// Executors, when set, lets the farm reach recruited nodes through a
	// cross-process transport (internal/wire): nodes the factory claims get
	// a remote executor, all others stay loopback. Selector constrains
	// which admitted workers the unified dispatch decision path may pick
	// (labels, trust domain, the local escape hatch); the zero value admits
	// everything.
	Executors skel.ExecutorFactory
	Selector  skel.Selector

	// DispatchBatch > 1 turns on the farm's batched dispatch hot path (up
	// to N tasks per worker per sealed envelope); BatchFlush bounds the
	// latency a partial batch may wait for more input. Zero values keep the
	// per-task path, byte-identical to the unbatched farm.
	DispatchBatch int
	BatchFlush    time.Duration

	// TraceSample > 0 attaches a task-span tracer sampling one task in
	// TraceSample (1 = every task): sampled tasks get an eight-stage
	// latency decomposition published to /spans, /metrics and /cluster.
	// TraceSeed seeds the deterministic sampler, so a chaos replay with
	// the same seed samples the same task ids; TraceRing bounds the
	// retained spans (0 = 1024).
	TraceSample uint64
	TraceSeed   uint64
	TraceRing   int

	InitialWorkers int
	// AutoDegree derives InitialWorkers from the task-farm performance
	// model (internal/planner) instead of starting cold: the §3 "initial
	// parallelism degree set-up" policy.
	AutoDegree bool
	Limits     manager.FarmLimits
	// Contract is the farm SLA (default throughput >= 0.6, the Fig. 3
	// contract).
	Contract contract.Contract

	// Period is the manager control-loop period in modelled time
	// (default 1s); SamplePeriod the series sampling period (default
	// 0.5s modelled).
	Period       time.Duration
	SamplePeriod time.Duration
	// WarmUp suppresses manager rule firing for this long (modelled)
	// after start, letting the sliding-window sensors fill before the
	// manager acts. Default: 10s (one rate-meter window); negative
	// disables it.
	WarmUp time.Duration

	// Coordination selects the multi-concern scheme; Unmanaged disables
	// the security manager (the single-concern experiments). WithSecurity
	// must be set for TwoPhase/Reactive to take effect.
	WithSecurity bool
	Coordination manager.CoordinationMode
	// Handshake is the simulated SSL session setup latency (modelled).
	Handshake time.Duration
	// SecurityPeriod is the reactive security manager's control-loop
	// period — its reaction latency to an unsecured binding (default:
	// Period). The §3.2 hazard window is exactly this long.
	SecurityPeriod time.Duration

	// WithFaultTolerance attaches a fault-tolerance manager (C_ft) that
	// detects crashed workers, redistributes their stranded tasks and
	// replaces them. FaultPeriod is its detection latency (default:
	// Period/2).
	WithFaultTolerance bool
	FaultPeriod        time.Duration
	// FaultSuspectAfter arms the progress-based stall detector (modelled;
	// 0 leaves it off); FaultSuspectGrace shields freshly added workers
	// (modelled; default 2×FaultSuspectAfter).
	FaultSuspectAfter time.Duration
	FaultSuspectGrace time.Duration
	// FaultQuarantineAfter and FaultQuarantineCooldown (modelled) tune the
	// node circuit breaker (defaults: 3 crashes, 10 fault periods).
	FaultQuarantineAfter    int
	FaultQuarantineCooldown time.Duration

	// ActuatorTimeout is the per-operation deadline of the hardened
	// actuator path (modelled; default 30s). The guard also retries
	// transient actuator failures with bounded jittered backoff.
	ActuatorTimeout time.Duration

	// JitterSeed, when non-zero, seeds one shared PRNG that every backoff
	// in the app draws its jitter from — the actuator guard's retries, the
	// fault manager's recruitment retries and the manager-restart
	// supervisors — so a run's whole retry plane replays deterministically
	// from (JitterSeed, fault plan). Zero keeps the default global-rand
	// jitter.
	JitterSeed int64

	// WithMigration attaches a migration manager that moves workers off
	// nodes whose external load exceeds MigrationMaxLoad (default 0.5).
	WithMigration    bool
	MigrationMaxLoad float64
	MigrationPeriod  time.Duration
}

func (cfg *FarmAppConfig) normalize() error {
	if cfg.Name == "" {
		cfg.Name = "farmapp"
	}
	if cfg.Platform == nil {
		cfg.Platform = grid.NewSMP(8)
	}
	if cfg.Log == nil {
		cfg.Log = trace.NewLog()
	}
	if cfg.Tasks <= 0 {
		cfg.Tasks = 100
	}
	if cfg.TaskWork <= 0 {
		cfg.TaskWork = 1600 * time.Millisecond
	}
	if cfg.SourceInterval < 0 {
		return fmt.Errorf("core: negative source interval")
	}
	if cfg.Payload <= 0 {
		cfg.Payload = 64
	}
	if cfg.InitialWorkers <= 0 {
		cfg.InitialWorkers = 1
	}
	if cfg.Contract == nil {
		cfg.Contract = contract.MinThroughput(0.6)
	}
	if cfg.Period <= 0 {
		cfg.Period = time.Second
	}
	if cfg.SamplePeriod <= 0 {
		cfg.SamplePeriod = 500 * time.Millisecond
	}
	return nil
}

// scaled converts a modelled duration into clock time under the config's
// time scale.
func scaled(env skel.Env, d time.Duration) time.Duration {
	s := env.TimeScale
	if s <= 0 {
		s = 1
	}
	out := time.Duration(float64(d) / s)
	if out <= 0 {
		out = time.Millisecond
	}
	return out
}

// NewFarmApp assembles source -> farm BS -> sink with a single autonomic
// manager AM_F responsible for the performance concern, optionally under
// multi-concern coordination with a security manager.
func NewFarmApp(cfg FarmAppConfig) (*App, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	env := cfg.Env
	clock := env.Clock
	if clock == nil {
		return nil, fmt.Errorf("core: farm app needs a clock (set Env.Clock)")
	}

	var auditor *security.Auditor
	var pol *security.Policy
	if cfg.WithSecurity {
		auditor = security.NewAuditor()
		pol = &security.Policy{Network: cfg.Platform.Network}
	}

	if cfg.AutoDegree {
		lo, _ := throughputLo(cfg.Contract)
		if lo > 0 {
			plan, err := planner.PlanFarm(cfg.Platform.RM, grid.Request{}, lo, cfg.TaskWork)
			if err != nil {
				return nil, err
			}
			if plan.Degree > 0 {
				cfg.InitialWorkers = plan.Degree
				if max := cfg.Limits.MaxWorkers; max > 0 && cfg.InitialWorkers > max {
					cfg.InitialWorkers = max
				}
			}
		}
	}

	var jit func() float64
	if cfg.JitterSeed != 0 {
		jit = runtime.NewSeededJitter(cfg.JitterSeed)
	}

	payload := make([]byte, cfg.Payload)
	for i := range payload {
		payload[i] = byte(i)
	}
	source := skel.NewSource(cfg.Name+".source", env, cfg.Tasks, cfg.SourceInterval,
		func(i int) *skel.Task {
			return &skel.Task{Work: cfg.TaskWork, Payload: append([]byte(nil), payload...)}
		})
	farmIns := &skel.FarmInstruments{
		Dispatch: metrics.NewLatencyHistogram(),
		Seal:     metrics.NewLatencyHistogram(),
	}
	var taskTracer *telemetry.TaskTracer
	if cfg.TraceSample > 0 {
		taskTracer = telemetry.NewTaskTracer(cfg.TraceSeed, cfg.TraceSample, cfg.TraceRing)
	}
	farmCfg := skel.FarmConfig{
		Name:           cfg.Name + ".farm",
		Env:            env,
		Fn:             cfg.Fn,
		RM:             cfg.Platform.RM,
		InitialWorkers: cfg.InitialWorkers,
		Policy:         pol,
		Auditor:        auditor,
		Instruments:    farmIns,
		Executors:      cfg.Executors,
		Selector:       cfg.Selector,
		DispatchBatch:  cfg.DispatchBatch,
		BatchFlush:     cfg.BatchFlush,
		Tracer:         taskTracer,
	}
	if cfg.ChargeLinkLatency && len(cfg.Platform.Domains) > 0 {
		farmCfg.Network = cfg.Platform.Network
		farmCfg.HomeDomain = cfg.Platform.Domains[0].Name
	}
	farm, err := skel.NewFarm(farmCfg)
	if err != nil {
		return nil, err
	}
	sink := skel.NewSink(cfg.Name+".sink", env, cfg.SinkFn)

	farmABC := abc.NewFarmABC(farm, auditor)
	actTimeout := cfg.ActuatorTimeout
	if actTimeout <= 0 {
		actTimeout = 30 * time.Second
	}
	guard := abc.NewGuard(farmABC, abc.GuardConfig{
		Clock:   clock,
		Timeout: scaled(env, actTimeout),
		Backoff: runtime.Backoff{Clock: clock, Rand: jit},
	})
	amF, err := manager.NewFarmManager("AM_F", guard, cfg.Log, clock,
		scaled(env, cfg.Period), cfg.Limits)
	if err != nil {
		return nil, err
	}
	switch {
	case cfg.WarmUp > 0:
		amF.SetWarmUp(scaled(env, cfg.WarmUp))
	case cfg.WarmUp == 0:
		amF.SetWarmUp(scaled(env, 10*time.Second))
	}

	app := &App{
		Name:         cfg.Name,
		Env:          env,
		Platform:     cfg.Platform,
		Log:          cfg.Log,
		RootManager:  amF,
		Source:       source,
		Sink:         sink,
		FarmABC:      farmABC,
		Guard:        guard,
		Auditor:      auditor,
		SamplePeriod: scaled(env, cfg.SamplePeriod),
		Grace:        scaled(env, 2*cfg.Period),
		stages:       []skel.Stage{source, farm, sink},
		taskTracer:   taskTracer,
	}
	app.Root = &BS{
		Pattern:    FarmPattern,
		Component:  newBSComponent(cfg.Name+".farmBS", amF, farmABC),
		Manager:    amF,
		Controller: farmABC,
		Stage:      farm,
	}

	if cfg.WithSecurity {
		secPeriod := cfg.SecurityPeriod
		if secPeriod <= 0 {
			secPeriod = cfg.Period
		}
		sec, err := manager.NewSecurityManager(manager.SecurityConfig{
			Clock:     clock,
			Log:       cfg.Log,
			Policy:    *pol,
			Handshake: scaled(env, cfg.Handshake),
			Period:    scaled(env, secPeriod),
		})
		if err != nil {
			return nil, err
		}
		gm, err := manager.NewGeneralManager("GM", sec, cfg.Log, clock, cfg.Coordination)
		if err != nil {
			return nil, err
		}
		gm.Coordinate(farmABC)
		app.Security = sec
		app.GM = gm
		app.startSecurity = cfg.Coordination == manager.Reactive
	}

	if cfg.WithFaultTolerance {
		fp := cfg.FaultPeriod
		if fp <= 0 {
			fp = cfg.Period / 2
		}
		cfg.Platform.RM.SetClock(clock)
		fc := manager.FaultConfig{
			Clock:           clock,
			Log:             cfg.Log,
			Period:          scaled(env, fp),
			RM:              cfg.Platform.RM,
			QuarantineAfter: cfg.FaultQuarantineAfter,
			Retry:           runtime.Backoff{Clock: clock, Rand: jit},
		}
		// scaled() floors at 1ms, so modelled knobs translate only when set.
		if cfg.FaultSuspectAfter > 0 {
			fc.SuspectAfter = scaled(env, cfg.FaultSuspectAfter)
		}
		if cfg.FaultSuspectGrace > 0 {
			fc.SuspectGrace = scaled(env, cfg.FaultSuspectGrace)
		}
		if cfg.FaultQuarantineCooldown > 0 {
			fc.QuarantineCooldown = scaled(env, cfg.FaultQuarantineCooldown)
		}
		ft, err := manager.NewFaultManager(fc)
		if err != nil {
			return nil, err
		}
		ft.Watch(farmABC)
		app.Fault = ft
	}

	if cfg.WithMigration {
		mp := cfg.MigrationPeriod
		if mp <= 0 {
			mp = cfg.Period / 2
		}
		mig, err := manager.NewMigrationManager(manager.MigrationConfig{
			Clock:   clock,
			Log:     cfg.Log,
			MaxLoad: cfg.MigrationMaxLoad,
			Period:  scaled(env, mp),
		})
		if err != nil {
			return nil, err
		}
		mig.Watch(farmABC)
		app.Migration = mig
	}

	app.initSupervision(jit)
	app.initTelemetry(farmIns)
	if err := app.Contract(cfg.Contract); err != nil {
		return nil, err
	}
	return app, nil
}

// PipelineAppConfig parameterizes the three-stage pipeline of the Fig. 4
// experiment: pipe(producer, farm(filter), consumer) with the four-manager
// hierarchy AM_A / AM_P / AM_F / AM_C.
type PipelineAppConfig struct {
	Name     string
	Env      skel.Env
	Platform *grid.Platform
	Log      *trace.Log

	Tasks int
	// ProducerInterval is the producer's initial emission period; the
	// Fig. 4 run starts with it too slow (notEnough) on purpose.
	ProducerInterval time.Duration
	// FilterWork is the per-task cost of the parallel (farm) stage;
	// ConsumerWork the per-task cost of the display stage.
	FilterWork   time.Duration
	ConsumerWork time.Duration
	Payload      int

	InitialWorkers int
	Limits         manager.FarmLimits
	// Contract is the application SLA c_tRange (default 0.3 - 0.7
	// tasks/s as in the paper).
	Contract contract.ThroughputRange
	// Step is the incRate/decRate multiplicative factor.
	Step float64
	// RulesDriven stores the application manager's reaction policy as
	// DRL rules (rules.PipeRuleSource) instead of the built-in Go policy;
	// behaviour is equivalent (§4.2: "the policies are stored as JBoss
	// rules").
	RulesDriven bool

	Period       time.Duration
	SamplePeriod time.Duration
}

func (cfg *PipelineAppConfig) normalize() {
	if cfg.Name == "" {
		cfg.Name = "pipeapp"
	}
	if cfg.Platform == nil {
		cfg.Platform = grid.NewSMP(8)
	}
	if cfg.Log == nil {
		cfg.Log = trace.NewLog()
	}
	if cfg.Tasks <= 0 {
		cfg.Tasks = 120
	}
	if cfg.ProducerInterval <= 0 {
		cfg.ProducerInterval = 5 * time.Second // 0.2 tasks/s: below contract
	}
	if cfg.FilterWork <= 0 {
		cfg.FilterWork = 4 * time.Second
	}
	if cfg.ConsumerWork <= 0 {
		cfg.ConsumerWork = 200 * time.Millisecond
	}
	if cfg.Payload <= 0 {
		cfg.Payload = 64
	}
	if cfg.InitialWorkers <= 0 {
		cfg.InitialWorkers = 3
	}
	if cfg.Contract == (contract.ThroughputRange{}) {
		cfg.Contract = contract.ThroughputRange{Lo: 0.3, Hi: 0.7}
	}
	if cfg.Period <= 0 {
		cfg.Period = time.Second
	}
	if cfg.SamplePeriod <= 0 {
		cfg.SamplePeriod = 500 * time.Millisecond
	}
}

// NewPipelineApp assembles the Fig. 4 application and its manager
// hierarchy.
func NewPipelineApp(cfg PipelineAppConfig) (*App, error) {
	cfg.normalize()
	env := cfg.Env
	clock := env.Clock
	if clock == nil {
		return nil, fmt.Errorf("core: pipeline app needs a clock (set Env.Clock)")
	}
	rm := cfg.Platform.RM

	// Producer and consumer each occupy one core of the platform for the
	// whole run (the Fig. 4 resource accounting: 3 farm workers + 2 = 5).
	prodNode, err := rm.Recruit(grid.Request{})
	if err != nil {
		return nil, fmt.Errorf("core: placing producer: %w", err)
	}
	consNode, err := rm.Recruit(grid.Request{})
	if err != nil {
		return nil, fmt.Errorf("core: placing consumer: %w", err)
	}

	payload := make([]byte, cfg.Payload)
	source := skel.NewSource(cfg.Name+".producer", env, cfg.Tasks, cfg.ProducerInterval,
		func(i int) *skel.Task {
			return &skel.Task{Work: cfg.FilterWork, Payload: append([]byte(nil), payload...)}
		})
	farmIns := &skel.FarmInstruments{
		Dispatch: metrics.NewLatencyHistogram(),
		Seal:     metrics.NewLatencyHistogram(),
	}
	farm, err := skel.NewFarm(skel.FarmConfig{
		Name:           cfg.Name + ".filter",
		Env:            env,
		RM:             rm,
		InitialWorkers: cfg.InitialWorkers,
		// Tasks leave the filter carrying the display cost, so the
		// consumer stage charges ConsumerWork, not FilterWork.
		Fn: func(t *skel.Task) *skel.Task {
			t.Work = cfg.ConsumerWork
			return t
		},
		Instruments: farmIns,
	})
	if err != nil {
		return nil, err
	}
	consumer := skel.NewSeq(cfg.Name+".consumer", env, consNode, nil)
	sink := skel.NewSink(cfg.Name+".sink", env, nil)

	sourceABC := abc.NewSourceABC(source)
	farmABC := abc.NewFarmABC(farm, nil)
	consABC := abc.NewSeqABC(consumer)
	pipeABC := abc.NewPipeABC(sourceABC, abc.NewSinkABC(sink))

	period := scaled(env, cfg.Period)
	amP, err := manager.NewSourceManager("AM_P", sourceABC, cfg.Log, clock, period)
	if err != nil {
		return nil, err
	}
	amF, err := manager.NewFarmManager("AM_F", farmABC, cfg.Log, clock, period, cfg.Limits)
	if err != nil {
		return nil, err
	}
	amC, err := manager.NewMonitorManager("AM_C", consABC, cfg.Log, clock, period)
	if err != nil {
		return nil, err
	}
	var amA *manager.Manager
	if cfg.RulesDriven {
		amA, err = manager.NewRuleDrivenPipelineManager("AM_A", pipeABC, amP,
			cfg.Step, cfg.Contract.Hi*1.2, cfg.Log, clock, period)
	} else {
		coord := &manager.PipelineCoordinator{Producer: amP, Step: cfg.Step, Cap: cfg.Contract.Hi * 1.2}
		amA, err = manager.NewPipelineManager("AM_A", pipeABC, coord, cfg.Log, clock, period)
	}
	if err != nil {
		return nil, err
	}
	amA.AttachChild(amP)
	amA.AttachChild(amF)
	amA.AttachChild(amC)

	app := &App{
		Name:         cfg.Name,
		Env:          env,
		Platform:     cfg.Platform,
		Log:          cfg.Log,
		RootManager:  amA,
		Source:       source,
		Sink:         sink,
		FarmABC:      farmABC,
		SamplePeriod: scaled(env, cfg.SamplePeriod),
		Grace:        scaled(env, 3*cfg.Period),
		stages:       []skel.Stage{source, farm, consumer, sink},
	}

	// GCM component view: pipe BS containing the three stage BSs.
	pipeBS := &BS{
		Pattern:    PipePattern,
		Component:  newBSComponent(cfg.Name+".pipeBS", amA, pipeABC),
		Manager:    amA,
		Controller: pipeABC,
	}
	prodBS := &BS{Pattern: SeqPattern, Component: newBSComponent(cfg.Name+".producerBS", amP, sourceABC), Manager: amP, Controller: sourceABC, Stage: source}
	farmBS := &BS{Pattern: FarmPattern, Component: newBSComponent(cfg.Name+".filterBS", amF, farmABC), Manager: amF, Controller: farmABC, Stage: farm}
	consBS := &BS{Pattern: SeqPattern, Component: newBSComponent(cfg.Name+".consumerBS", amC, consABC), Manager: amC, Controller: consABC, Stage: consumer}
	for _, child := range []*BS{prodBS, farmBS, consBS} {
		pipeBS.Children = append(pipeBS.Children, child)
		if err := pipeBS.Component.Membrane().Content().AddChild(child.Component); err != nil {
			return nil, err
		}
	}
	app.Root = pipeBS
	_ = prodNode // held for the duration of the app (resource accounting)

	app.initSupervision(nil)
	app.initTelemetry(farmIns)
	if err := app.Contract(cfg.Contract); err != nil {
		return nil, err
	}
	return app, nil
}

// BuildFromExpr assembles an application from a skeleton expression. The
// supported shapes are the ones the paper evaluates:
//
//	farm(seq)                  -> NewFarmApp
//	pipe(seq, farm(seq), seq)  -> NewPipelineApp (any pipe whose stages
//	                              are seq or farm(seq); the first and last
//	                              stages become producer and consumer)
//
// Deeper nestings (farm over pipelines) are modelled at the management
// layer (manager hierarchies support arbitrary trees) but not by this
// stream runtime; they are rejected with a descriptive error.
func BuildFromExpr(expr string, farmCfg FarmAppConfig, pipeCfg PipelineAppConfig) (*App, error) {
	spec, err := ParseExpr(expr)
	if err != nil {
		return nil, err
	}
	spec = spec.Normalize()
	switch spec.Kind {
	case FarmPattern:
		if spec.Children[0].Kind != SeqPattern {
			return nil, fmt.Errorf("core: farm over %s is not supported by the stream runtime (only farm(seq))", spec.Children[0])
		}
		return NewFarmApp(farmCfg)
	case PipePattern:
		farms := 0
		for _, c := range spec.Children {
			switch {
			case c.Kind == SeqPattern:
			case c.Kind == FarmPattern && c.Children[0].Kind == SeqPattern:
				farms++
			default:
				return nil, fmt.Errorf("core: pipeline stage %s is not supported by the stream runtime", c)
			}
		}
		if farms != 1 {
			return nil, fmt.Errorf("core: pipeline runtime supports exactly one farm stage, found %d", farms)
		}
		return NewPipelineApp(pipeCfg)
	default:
		return nil, fmt.Errorf("core: a bare seq has nothing to manage; wrap it in farm(...) or pipe(...)")
	}
}

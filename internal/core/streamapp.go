package core

import (
	"fmt"
	"time"

	"repro/internal/abc"
	"repro/internal/contract"
	"repro/internal/grid"
	"repro/internal/manager"
	"repro/internal/skel"
	"repro/internal/trace"
)

// This file generalizes the Fig. 4 builder to arbitrary pipelines of
// sequential and farm stages: pipe(s_1, ..., s_n) where each s_i is either
// seq or farm(seq). It is the mechanism behind the §4.2 idea of
// "transforming a pipeline stage into a farm with the workers behaving as
// instances of the original stage": a StageSpec flips from StageSeq to
// StageFarm without touching the rest of the application (see Farmize and
// the EXT-FARMIZE experiment).

// StageKind discriminates StreamApp stage specifications.
type StageKind int

// Stage kinds.
const (
	StageSeq StageKind = iota
	StageFarm
)

// StageSpec describes one pipeline stage of a stream application.
type StageSpec struct {
	Name string
	Kind StageKind
	// Work is the per-task nominal service time in this stage.
	Work time.Duration
	// Fn is the stage's functional code (nil = identity).
	Fn skel.Fn
	// Workers is a farm stage's initial parallelism degree (default 1).
	Workers int
	// Limits bounds a farm stage's manager.
	Limits manager.FarmLimits
}

// Farmize returns a copy of the spec transformed into a farm stage with
// the given initial degree — the §4.2 stage-to-farm transformation.
func (s StageSpec) Farmize(workers int) StageSpec {
	s.Kind = StageFarm
	if workers > 0 {
		s.Workers = workers
	} else if s.Workers <= 0 {
		s.Workers = 2
	}
	return s
}

// StreamAppConfig parameterizes an arbitrary seq/farm pipeline under one
// application manager.
type StreamAppConfig struct {
	Name     string
	Env      skel.Env
	Platform *grid.Platform
	Log      *trace.Log

	Tasks          int
	SourceInterval time.Duration
	Payload        int

	Stages []StageSpec

	Contract contract.ThroughputRange
	Step     float64

	Period       time.Duration
	SamplePeriod time.Duration
}

// NewStreamApp assembles source -> stages -> sink with one manager per
// stage (farm managers run the Fig. 5 rules; sequential stages get
// monitor-only managers) under a top-level application manager that splits
// the contract and reacts to farm violations with producer rate contracts.
func NewStreamApp(cfg StreamAppConfig) (*App, error) {
	if cfg.Name == "" {
		cfg.Name = "streamapp"
	}
	if cfg.Platform == nil {
		cfg.Platform = grid.NewSMP(16)
	}
	if cfg.Log == nil {
		cfg.Log = trace.NewLog()
	}
	if cfg.Tasks <= 0 {
		cfg.Tasks = 100
	}
	if cfg.SourceInterval <= 0 {
		cfg.SourceInterval = time.Second
	}
	if cfg.Payload <= 0 {
		cfg.Payload = 64
	}
	if len(cfg.Stages) == 0 {
		return nil, fmt.Errorf("core: stream app needs at least one stage")
	}
	if cfg.Contract == (contract.ThroughputRange{}) {
		cfg.Contract = contract.ThroughputRange{Lo: 0.3, Hi: 0.7}
	}
	if cfg.Period <= 0 {
		cfg.Period = 2 * time.Second
	}
	if cfg.SamplePeriod <= 0 {
		cfg.SamplePeriod = 500 * time.Millisecond
	}
	env := cfg.Env
	clock := env.Clock
	if clock == nil {
		return nil, fmt.Errorf("core: stream app needs a clock (set Env.Clock)")
	}
	rm := cfg.Platform.RM
	period := scaled(env, cfg.Period)

	payload := make([]byte, cfg.Payload)
	source := skel.NewSource(cfg.Name+".source", env, cfg.Tasks, cfg.SourceInterval,
		func(i int) *skel.Task {
			return &skel.Task{Payload: append([]byte(nil), payload...)}
		})
	sink := skel.NewSink(cfg.Name+".sink", env, nil)
	sourceABC := abc.NewSourceABC(source)
	pipeABC := abc.NewPipeABC(sourceABC, abc.NewSinkABC(sink))

	amP, err := manager.NewSourceManager("AM_P", sourceABC, cfg.Log, clock, period)
	if err != nil {
		return nil, err
	}
	coord := &manager.PipelineCoordinator{Producer: amP, Step: cfg.Step, Cap: cfg.Contract.Hi * 1.2}
	amA, err := manager.NewPipelineManager("AM_A", pipeABC, coord, cfg.Log, clock, period)
	if err != nil {
		return nil, err
	}
	amA.AttachChild(amP)

	app := &App{
		Name:         cfg.Name,
		Env:          env,
		Platform:     cfg.Platform,
		Log:          cfg.Log,
		RootManager:  amA,
		Source:       source,
		Sink:         sink,
		SamplePeriod: scaled(env, cfg.SamplePeriod),
		Grace:        scaled(env, 3*cfg.Period),
	}
	rootBS := &BS{
		Pattern:    PipePattern,
		Component:  newBSComponent(cfg.Name+".pipeBS", amA, pipeABC),
		Manager:    amA,
		Controller: pipeABC,
	}
	prodBS := &BS{Pattern: SeqPattern,
		Component: newBSComponent(cfg.Name+".sourceBS", amP, sourceABC),
		Manager:   amP, Controller: sourceABC, Stage: source}
	rootBS.Children = append(rootBS.Children, prodBS)
	rootBS.Component.Membrane().Content().AddChild(prodBS.Component)

	stages := []skel.Stage{source}
	farmIdx := 0
	for i, spec := range cfg.Stages {
		name := spec.Name
		if name == "" {
			name = fmt.Sprintf("%s.stage%d", cfg.Name, i)
		}
		switch spec.Kind {
		case StageSeq:
			node, err := rm.Recruit(grid.Request{})
			if err != nil {
				return nil, fmt.Errorf("core: placing stage %q: %w", name, err)
			}
			seq := skel.NewSeq(name, env, node, spec.Fn).WithWork(spec.Work)
			seqABC := abc.NewSeqABC(seq)
			am, err := manager.NewMonitorManager(fmt.Sprintf("AM_S%d", i), seqABC, cfg.Log, clock, period)
			if err != nil {
				return nil, err
			}
			amA.AttachChild(am)
			bs := &BS{Pattern: SeqPattern,
				Component: newBSComponent(name+"BS", am, seqABC),
				Manager:   am, Controller: seqABC, Stage: seq}
			rootBS.Children = append(rootBS.Children, bs)
			rootBS.Component.Membrane().Content().AddChild(bs.Component)
			stages = append(stages, seq)
		case StageFarm:
			workers := spec.Workers
			if workers <= 0 {
				workers = 1
			}
			farm, err := skel.NewFarm(skel.FarmConfig{
				Name:           name,
				Env:            env,
				RM:             rm,
				InitialWorkers: workers,
				Fn:             spec.Fn,
				WorkOverride:   spec.Work,
			})
			if err != nil {
				return nil, err
			}
			farmABC := abc.NewFarmABC(farm, nil)
			amName := "AM_F"
			if farmIdx > 0 {
				amName = fmt.Sprintf("AM_F%d", farmIdx)
			}
			farmIdx++
			am, err := manager.NewFarmManager(amName, farmABC, cfg.Log, clock, period, spec.Limits)
			if err != nil {
				return nil, err
			}
			amA.AttachChild(am)
			bs := &BS{Pattern: FarmPattern,
				Component: newBSComponent(name+"BS", am, farmABC),
				Manager:   am, Controller: farmABC, Stage: farm}
			rootBS.Children = append(rootBS.Children, bs)
			rootBS.Component.Membrane().Content().AddChild(bs.Component)
			stages = append(stages, farm)
			if app.FarmABC == nil {
				app.FarmABC = farmABC
			}
		default:
			return nil, fmt.Errorf("core: unknown stage kind %d", spec.Kind)
		}
	}
	stages = append(stages, sink)
	app.stages = stages
	app.Root = rootBS

	if err := app.Contract(cfg.Contract); err != nil {
		return nil, err
	}
	return app, nil
}

package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/contract"
	"repro/internal/grid"
	"repro/internal/manager"
)

func TestThroughputLo(t *testing.T) {
	if lo, ok := throughputLo(contract.ThroughputRange{Lo: 0.4, Hi: 0.9}); !ok || lo != 0.4 {
		t.Fatalf("direct = %v/%v", lo, ok)
	}
	conj := contract.Conjunction{contract.SecureComms{}, contract.MinThroughput(0.7)}
	if lo, ok := throughputLo(conj); !ok || lo != 0.7 {
		t.Fatalf("conjunction = %v/%v", lo, ok)
	}
	if _, ok := throughputLo(contract.BestEffort{}); ok {
		t.Fatal("best-effort has no throughput bound")
	}
}

func TestFarmAppDefaultsAndErrors(t *testing.T) {
	// Negative source interval is rejected.
	if _, err := NewFarmApp(FarmAppConfig{Env: fastEnv(1000), SourceInterval: -time.Second}); err == nil {
		t.Fatal("negative interval accepted")
	}
	// All defaults: app builds and carries the Fig. 3 contract.
	app, err := NewFarmApp(FarmAppConfig{Env: fastEnv(1000), Tasks: 1, TaskWork: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	tr, ok := app.RootManager.Contract().(contract.ThroughputRange)
	if !ok || tr.Lo != 0.6 || !math.IsInf(tr.Hi, 1) {
		t.Fatalf("default contract = %v", app.RootManager.Contract())
	}
	if _, err := app.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFarmAppAutoDegree(t *testing.T) {
	app, err := NewFarmApp(FarmAppConfig{
		Env:        fastEnv(1000),
		Platform:   grid.NewSMP(12),
		Tasks:      1,
		TaskWork:   6400 * time.Millisecond,
		AutoDegree: true,
		Contract:   contract.MinThroughput(0.6),
		WarmUp:     -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The model wants 4 workers before the stream even starts.
	deadline := time.Now().Add(5 * time.Second)
	go app.Run()
	for len(app.FarmABC.Workers()) < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("auto degree gave %d workers, want 4", len(app.FarmABC.Workers()))
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFarmAppAutoDegreeCappedByLimits(t *testing.T) {
	app, err := NewFarmApp(FarmAppConfig{
		Env:        fastEnv(1000),
		Platform:   grid.NewSMP(12),
		Tasks:      1,
		TaskWork:   6400 * time.Millisecond,
		AutoDegree: true,
		Contract:   contract.MinThroughput(0.6),
		Limits:     manager.FarmLimits{MaxWorkers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := app.Run()
	if err != nil {
		t.Fatal(err)
	}
	if first := res.Workers.Points(); len(first) > 0 && first[0].V > 2 {
		t.Fatalf("limits ignored: started with %v workers", first[0].V)
	}
}

func TestFarmAppAutoDegreeWithoutThroughputContract(t *testing.T) {
	// AutoDegree with a best-effort contract is a no-op, not an error.
	app, err := NewFarmApp(FarmAppConfig{
		Env: fastEnv(1000), Tasks: 1, TaskWork: time.Millisecond,
		AutoDegree: true, Contract: contract.BestEffort{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(); err != nil {
		t.Fatal(err)
	}
}

package core

import (
	"time"

	"repro/internal/manager"
	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/trace"
)

// This file wires the self-healing layer of the management plane: every
// manager loop — the performance hierarchy and the concern managers — runs
// under a runtime.Supervisor, so a crashed or panicking manager is
// restarted (replaying its checkpoint, see internal/manager/selfheal.go)
// instead of silently leaving its concern unenforced. One shared MTTR
// histogram observes the downtime of every restart, and the supervisors
// are collected in App.Supervisors so telemetry (and the chaos soak) can
// read restart counts and causes per manager.

// initSupervision builds the supervisors for every management loop. jit,
// when non-nil, seeds the restart-backoff jitter (and is the same source
// the actuator guard and recruitment retries draw from), keeping the whole
// retry plane a pure function of the plan seed. Must run before
// initTelemetry so the registry can export the supervisor counters.
func (a *App) initSupervision(jit func() float64) {
	clock := a.Env.Clock
	a.mttr = metrics.NewLatencyHistogram()
	a.Supervisors = make(map[string]*runtime.Supervisor)
	backoff := runtime.Backoff{Rand: jit}
	observe := func(cause error, downtime time.Duration) {
		a.mttr.ObserveDuration(downtime)
	}

	a.eachManager(func(m *manager.Manager) {
		m.SetSupervision(runtime.SupervisorConfig{
			Backoff:   backoff,
			OnRestart: observe,
		})
		a.Supervisors[m.Name()] = m.Supervisor()
	})

	concern := func(name string, r runtime.Runnable) *runtime.Supervisor {
		s := runtime.NewSupervisor(r, runtime.SupervisorConfig{
			Name:    name,
			Clock:   clock,
			Backoff: backoff,
			OnRestart: func(cause error, downtime time.Duration) {
				a.Log.Record(clock.Now(), name, trace.Restarted, cause.Error())
				observe(cause, downtime)
			},
		})
		a.Supervisors[name] = s
		return s
	}
	if a.GM != nil {
		a.gmSuper = concern(a.GM.Name(), a.GM)
	}
	if a.Security != nil {
		a.secSuper = concern(a.Security.Name(), a.Security)
	}
	if a.Fault != nil {
		a.faultSuper = concern(a.Fault.Name(), a.Fault)
	}
	if a.Migration != nil {
		a.migSuper = concern(a.Migration.Name(), a.Migration)
	}
}

// supervised returns the supervisor's Run when one was wired (the builders
// always wire them); bare hands-assembled Apps fall back to the unmanaged
// loop.
func supervised(s *runtime.Supervisor, bare runtime.Func) runtime.Func {
	if s != nil {
		return s.Run
	}
	return bare
}

// ManagerMTTR returns the shared restart-downtime histogram (nil before
// supervision is wired).
func (a *App) ManagerMTTR() *metrics.Histogram { return a.mttr }

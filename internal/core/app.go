package core

import (
	"context"
	"errors"
	"time"

	"repro/internal/abc"
	"repro/internal/component"
	"repro/internal/contract"
	"repro/internal/grid"
	"repro/internal/manager"
	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/security"
	"repro/internal/skel"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// BS is a behavioural skeleton instance: the pair <P, M_C> plus the pieces
// it is assembled from — the skeleton runtime stage, its ABC and the GCM
// component carrying AM and ABC in its membrane.
type BS struct {
	Pattern    PatternKind
	Component  component.Component
	Manager    *manager.Manager
	Controller abc.Controller
	Stage      skel.Stage
	Children   []*BS
}

// newBSComponent builds the GCM composite of a BS with the manager and ABC
// installed as membrane NF interfaces, as in Fig. 2 (left).
func newBSComponent(name string, m *manager.Manager, ctrl abc.Controller) *component.Composite {
	comp := component.NewComposite(name)
	comp.Membrane().SetNF("manager", m)
	comp.Membrane().SetNF("abc", ctrl)
	return comp
}

// Result is the outcome of one application run: the autonomic event log
// plus the sampled series that the paper's figures plot.
type Result struct {
	Log        *trace.Log
	Throughput *metrics.Series // completed tasks/s (modelled)
	InputRate  *metrics.Series // tasks/s offered to the main farm
	Cores      *metrics.Series // allocated core slots (Fig. 4 bottom graph)
	Workers    *metrics.Series // farm parallelism degree
	Completed  int
	Elapsed    time.Duration // wall-clock duration of the run
	Final      contract.Snapshot
}

// App is a runnable behavioural-skeleton application: a stream source, a
// body of behavioural skeletons, a sink, the manager hierarchy and the
// optional multi-concern coordination.
type App struct {
	Name     string
	Env      skel.Env
	Platform *grid.Platform
	Log      *trace.Log

	Root        *BS
	RootManager *manager.Manager
	Source      *skel.Source
	Sink        *skel.Sink
	FarmABC     *abc.FarmABC // the principal farm, when the app has one
	Guard       *abc.Guard   // hardened actuator path wrapping FarmABC
	Auditor     *security.Auditor

	Security  *manager.SecurityManager
	GM        *manager.GeneralManager
	Fault     *manager.FaultManager
	Migration *manager.MigrationManager

	// Supervisors holds the restart supervisor of every management loop,
	// keyed by manager name (see supervision.go). The chaos soak and the
	// telemetry plane read restart counts and causes from it.
	Supervisors map[string]*runtime.Supervisor

	// SamplePeriod is the sampling period of the result series in clock
	// time (already scaled). Default 50ms.
	SamplePeriod time.Duration
	// Grace is how long to keep managers running after the sink finishes,
	// letting end-of-stream events (rebalance, endStream) surface.
	Grace time.Duration

	stages        []skel.Stage
	startSecurity bool

	// Introspection plane (see telemetry.go): the registry and tracer are
	// assembled by the builders; the server exists only after
	// EnableTelemetry and is run by RunContext inside the management group.
	telemetry       *telemetry.Registry
	tracer          *telemetry.Tracer
	taskTracer      *telemetry.TaskTracer
	telemetryServer *telemetry.Server

	// Remote management plane (see AttachManagerLink /
	// AttachManagerEndpoint): child-side links reporting into this app and
	// parent-side endpoints tracking remote children.
	managerLinks     []*manager.RemoteLink
	managerEndpoints []*manager.ParentEndpoint

	// Self-healing plane (see supervision.go): per-loop supervisors for
	// the concern managers and the shared restart-downtime histogram.
	gmSuper, secSuper, faultSuper, migSuper *runtime.Supervisor
	mttr                                    *metrics.Histogram
}

// Contract installs the top-level SLA on the root manager (propagating
// sub-contracts down the hierarchy).
func (a *App) Contract(c contract.Contract) error {
	if a.RootManager == nil {
		return errors.New("core: application has no root manager")
	}
	return a.RootManager.AssignContract(c)
}

// ComponentTree returns the root of the GCM component view.
func (a *App) ComponentTree() component.Component {
	if a.Root == nil {
		return nil
	}
	return a.Root.Component
}

// Run executes the application to stream completion and returns the
// collected result. It is synchronous and may be called once. It is
// RunContext under a background context.
func (a *App) Run() (*Result, error) {
	return a.RunContext(context.Background())
}

// RunContext executes the application under ctx. The manager hierarchy,
// the concern managers and the result sampler all run as members of one
// supervised runtime.Group, so the whole management tree starts and tears
// down together and the first manager failure cancels its siblings.
//
// Canceling ctx triggers a graceful shutdown with drain-on-cancel
// semantics: the source stops emitting, the stages drain every task
// already accepted, and the managers keep supervising until the drain
// completes — the partial Result is returned, not discarded.
func (a *App) RunContext(ctx context.Context) (*Result, error) {
	if len(a.stages) == 0 || a.Sink == nil {
		return nil, errors.New("core: application is not assembled")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	sample := a.SamplePeriod
	if sample <= 0 {
		sample = 50 * time.Millisecond
	}
	clock := a.Env.Clock
	if clock == nil {
		return nil, errors.New("core: application needs a clock")
	}

	res := &Result{
		Log:        a.Log,
		Throughput: metrics.NewSeries("throughput"),
		InputRate:  metrics.NewSeries("input rate"),
		Cores:      metrics.NewSeries("cores"),
		Workers:    metrics.NewSeries("workers"),
	}

	// The management plane: one supervised group for the manager
	// hierarchy, the concern managers and the sampler. It outlives the
	// stream (for the Grace window) and is canceled as one tree.
	mgmt, _ := runtime.NewGroup(context.Background())
	defer func() {
		mgmt.Cancel()
		_ = mgmt.Wait()
	}()
	if a.RootManager != nil {
		mgmt.Go(a.RootManager.RunTree)
	}
	if a.telemetryServer != nil {
		mgmt.Go(a.telemetryServer.Run)
	}
	switch {
	case a.GM != nil:
		mgmt.Go(supervised(a.gmSuper, a.GM.Run))
	case a.Security != nil && a.startSecurity:
		mgmt.Go(supervised(a.secSuper, a.Security.Run))
	}
	if a.Fault != nil {
		mgmt.Go(supervised(a.faultSuper, a.Fault.Run))
	}
	if a.Migration != nil {
		mgmt.Go(supervised(a.migSuper, a.Migration.Run))
	}
	mgmt.Go(func(ctx context.Context) error { // sampler
		ticker := clock.NewTicker(sample)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return nil
			case now := <-ticker.C():
				res.Throughput.Append(now, a.Sink.Rate())
				if a.FarmABC != nil {
					st := a.FarmABC.Stats()
					res.InputRate.Append(now, st.ArrivalRate)
					res.Workers.Append(now, float64(st.Workers))
				}
				if a.Platform != nil {
					res.Cores.Append(now, float64(a.Platform.RM.CoresInUse()))
				}
			}
		}
	})

	pipe, err := skel.NewPipe(a.Name, 16, a.stages...)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	pipeDone := make(chan struct{})
	go func() {
		defer close(pipeDone)
		pipe.Run(ctx, nil, nil)
	}()
	// The sink finishes either at natural stream completion or after a
	// cancelation drain (the source closes its output on cancel and the
	// stages drain what was accepted).
	<-a.Sink.Done()
	<-pipeDone
	if a.Grace > 0 && ctx.Err() == nil {
		// Keep managers running briefly so end-of-stream events
		// (rebalance, endStream) surface; skipped when canceled.
		select {
		case <-ctx.Done():
		case <-clock.After(a.Grace):
		}
	}
	res.Elapsed = time.Since(start)
	mgmt.Cancel()
	if err := mgmt.Wait(); err != nil {
		return res, err
	}

	res.Completed = a.Sink.Consumed()
	if a.FarmABC != nil {
		res.Final = a.FarmABC.Snapshot()
	} else if a.RootManager != nil {
		res.Final = a.RootManager.Controller().Snapshot()
	}
	return res, nil
}

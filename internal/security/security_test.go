package security

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/grid"
	"repro/internal/simclock"
)

func TestPlainRoundTrip(t *testing.T) {
	var c Plain
	if c.Secure() || c.Name() != "plain" {
		t.Fatal("plain codec misdescribes itself")
	}
	in := []byte("task payload")
	wire, err := c.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wire, in) {
		t.Fatal("plain codec must not transform payload")
	}
	wire[0] = 'X' // must not alias the input
	if in[0] == 'X' {
		t.Fatal("Encode aliased its input")
	}
	out, err := c.Decode(wire)
	if err != nil || !bytes.Equal(out, wire) {
		t.Fatalf("Decode = %q, %v", out, err)
	}
}

func TestAESGCMRoundTrip(t *testing.T) {
	c := MustAESGCM(NewRandomKey(), nil, 0)
	if !c.Secure() || c.Name() != "aes-gcm" {
		t.Fatal("aes-gcm codec misdescribes itself")
	}
	in := []byte("medical image #42")
	wire, err := c.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(wire, in) {
		t.Fatal("ciphertext contains plaintext")
	}
	out, err := c.Decode(wire)
	if err != nil || !bytes.Equal(out, in) {
		t.Fatalf("Decode = %q, %v", out, err)
	}
}

func TestAESGCMTamperDetection(t *testing.T) {
	c := MustAESGCM(NewRandomKey(), nil, 0)
	wire, _ := c.Encode([]byte("payload"))
	wire[len(wire)-1] ^= 0xff
	if _, err := c.Decode(wire); err != ErrCiphertext {
		t.Fatalf("tampered decode err = %v, want ErrCiphertext", err)
	}
	if _, err := c.Decode([]byte("short")); err != ErrCiphertext {
		t.Fatalf("short decode err = %v, want ErrCiphertext", err)
	}
}

func TestAESGCMKeyLength(t *testing.T) {
	if _, err := NewAESGCM(make([]byte, 16), nil, 0); err == nil {
		t.Fatal("16-byte key must be rejected (AES-256 only)")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustAESGCM must panic on bad key")
		}
	}()
	MustAESGCM(nil, nil, 0)
}

func TestAESGCMHandshakePaidOnce(t *testing.T) {
	clock := simclock.NewManual(time.Date(2009, 5, 25, 0, 0, 0, 0, time.UTC))
	c := MustAESGCM(NewRandomKey(), clock, 100*time.Millisecond)
	done := make(chan struct{})
	go func() {
		c.Encode([]byte("a")) // pays the handshake
		c.Encode([]byte("b")) // must not pay again
		close(done)
	}()
	for clock.PendingWaiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	clock.Advance(100 * time.Millisecond)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("second Encode blocked: handshake paid twice?")
	}
}

func TestAESGCMRoundTripProperty(t *testing.T) {
	c := MustAESGCM(NewRandomKey(), nil, 0)
	f := func(payload []byte) bool {
		wire, err := c.Encode(payload)
		if err != nil {
			return false
		}
		out, err := c.Decode(wire)
		return err == nil && bytes.Equal(out, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyRequireSecure(t *testing.T) {
	p := grid.NewTwoDomainGrid(2, 2)
	pol := Policy{Network: p.Network}
	nodes := p.RM.Nodes()
	var trusted, untrusted *grid.Node
	for _, n := range nodes {
		if n.Domain.Trusted && trusted == nil {
			trusted = n
		}
		if !n.Domain.Trusted && untrusted == nil {
			untrusted = n
		}
	}
	t2 := nodes[1] // second trusted node
	if pol.RequireSecure(trusted, t2) {
		t.Fatal("intra-trusted-domain traffic must not need securing")
	}
	if !pol.RequireSecure(trusted, untrusted) {
		t.Fatal("traffic to untrusted_ip_domain_A must be secured")
	}
	if pol.RequireSecure(nil, trusted) {
		t.Fatal("unknown->trusted must not require securing")
	}
	if !pol.RequireSecure(nil, untrusted) {
		t.Fatal("unknown->untrusted must require securing")
	}
	if pol.RequireSecure(nil, nil) {
		t.Fatal("both-unknown must not require securing")
	}
}

func TestPolicyWithoutNetwork(t *testing.T) {
	a := grid.NewNode("a", grid.Domain{Name: "d1", Trusted: true}, 1, 1)
	b := grid.NewNode("b", grid.Domain{Name: "d2", Trusted: true}, 1, 1)
	pol := Policy{}
	if !pol.RequireSecure(a, b) {
		t.Fatal("cross-domain with unknown network must default to secure")
	}
	if pol.RequireSecure(a, a) {
		t.Fatal("same trusted domain must not need securing")
	}
}

func TestAuditor(t *testing.T) {
	a := NewAuditor()
	a.RecordSend("w1", false, false) // trusted link, plain: fine
	a.RecordSend("w2", true, true)   // untrusted link, secured: fine
	a.RecordSend("w3", true, false)  // untrusted link, plain: leak
	a.RecordSend("w3", true, false)
	if a.Total() != 4 || a.Secured() != 1 {
		t.Fatalf("total=%d secured=%d", a.Total(), a.Secured())
	}
	if a.Leaks() != 2 {
		t.Fatalf("Leaks = %d, want 2", a.Leaks())
	}
	if a.LeaksAt("w3") != 2 || a.LeaksAt("w1") != 0 {
		t.Fatalf("per-endpoint leaks wrong: w3=%d w1=%d", a.LeaksAt("w3"), a.LeaksAt("w1"))
	}
}

// TestAppendDecode pins the allocation-free decode path: byte-compatible
// with Decode, appends after existing dst content, reuses dst capacity, and
// refuses tampered ciphertext without touching dst's committed bytes.
func TestAppendDecode(t *testing.T) {
	payload := []byte("append-decode payload")
	for _, c := range []Codec{Plain{}, MustAESGCM(NewRandomKey(), nil, 0)} {
		wire, err := c.Encode(payload)
		if err != nil {
			t.Fatal(err)
		}
		got, err := AppendDecode(c, nil, wire)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("%s: decoded %q", c.Name(), got)
		}
		// Appending after a prefix must preserve it.
		withPrefix, err := AppendDecode(c, []byte("pre|"), wire)
		if err != nil {
			t.Fatal(err)
		}
		if string(withPrefix) != "pre|"+string(payload) {
			t.Fatalf("%s: prefix append %q", c.Name(), withPrefix)
		}
		// A reused buffer with capacity must not allocate (the farm's
		// steady-state decode contract).
		buf := make([]byte, 0, 4096)
		allocs := testing.AllocsPerRun(100, func() {
			out, err := AppendDecode(c, buf[:0], wire)
			if err != nil {
				t.Fatal(err)
			}
			_ = out
		})
		if allocs != 0 {
			t.Fatalf("%s: AppendDecode allocates %v per op with warm buffer", c.Name(), allocs)
		}
	}
	// Tampered ciphertext must fail exactly like Decode.
	c := MustAESGCM(NewRandomKey(), nil, 0)
	wire, _ := c.Encode(payload)
	wire[len(wire)-1] ^= 0x01
	if _, err := AppendDecode(c, nil, wire); err == nil {
		t.Fatal("tampered ciphertext decoded")
	}
}

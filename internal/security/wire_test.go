package security

import (
	"bytes"
	"testing"
)

// These tests pin the wire format of the AES-GCM codec now that its frames
// cross a real process boundary (internal/wire seals the actual TCP
// payload with it): a corrupted or truncated frame read off a socket must
// come back as an error, never a panic, and the nonce prefix must be
// unique per Encode or GCM's confidentiality collapses.

func TestAESGCMWireFrameRoundTrip(t *testing.T) {
	c := MustAESGCM(NewRandomKey(), nil, 0)
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("wire"), 4096)} {
		wire, err := c.Encode(payload)
		if err != nil {
			t.Fatalf("Encode(%d bytes): %v", len(payload), err)
		}
		if len(payload) > 0 && bytes.Contains(wire, payload) {
			t.Fatalf("ciphertext contains the plaintext payload")
		}
		got, err := c.Decode(wire)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("roundtrip mismatch: got %d bytes, want %d", len(got), len(payload))
		}
	}
}

func TestAESGCMTruncatedFrameErrors(t *testing.T) {
	c := MustAESGCM(NewRandomKey(), nil, 0)
	wire, err := c.Encode([]byte("a payload long enough to truncate meaningfully"))
	if err != nil {
		t.Fatal(err)
	}
	// Every proper prefix of the frame — including cuts inside the nonce
	// and an empty frame — must Decode to an error, not a panic.
	for cut := 0; cut < len(wire); cut++ {
		if _, err := c.Decode(wire[:cut]); err == nil {
			t.Fatalf("Decode of %d/%d-byte truncated frame succeeded", cut, len(wire))
		}
	}
}

func TestAESGCMTamperedCiphertextErrors(t *testing.T) {
	c := MustAESGCM(NewRandomKey(), nil, 0)
	wire, err := c.Encode([]byte("integrity matters"))
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit at every position: nonce, ciphertext body and tag.
	for i := range wire {
		tampered := append([]byte(nil), wire...)
		tampered[i] ^= 0x80
		if _, err := c.Decode(tampered); err == nil {
			t.Fatalf("Decode accepted a frame with bit %d flipped", i*8)
		}
	}
	// A frame sealed under a different key must not authenticate either.
	other := MustAESGCM(NewRandomKey(), nil, 0)
	if _, err := other.Decode(wire); err == nil {
		t.Fatal("Decode accepted a frame sealed under a different key")
	}
}

func TestAESGCMNonceUniqueness(t *testing.T) {
	c := MustAESGCM(NewRandomKey(), nil, 0)
	const n = 2048
	ns := c.aead.NonceSize()
	seen := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		wire, err := c.Encode([]byte("same payload every time"))
		if err != nil {
			t.Fatal(err)
		}
		nonce := string(wire[:ns])
		if seen[nonce] {
			t.Fatalf("nonce repeated after %d encodes", i)
		}
		seen[nonce] = true
	}
}

func TestAESGCMKeyAccessor(t *testing.T) {
	key := NewRandomKey()
	c := MustAESGCM(key, nil, 0)
	got := c.Key()
	if !bytes.Equal(got, key) {
		t.Fatal("Key() does not return the construction key")
	}
	// The returned slice is a copy: mutating it must not corrupt the codec.
	got[0] ^= 0xff
	wire, err := c.Encode([]byte("still works"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decode(wire); err != nil {
		t.Fatalf("codec corrupted by mutating Key() result: %v", err)
	}
	if bytes.Equal(c.Key(), got) {
		t.Fatal("Key() exposed the codec's internal buffer")
	}
}

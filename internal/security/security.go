// Package security implements the transport-security substrate of the
// paper's C_sec concern: a plaintext codec modelling plain TCP/IP sockets,
// an AES-GCM codec modelling SSL (real encryption, so its CPU cost is
// honest), a policy deciding when a binding must be secured (traffic
// crossing a non-private link or reaching an untrusted domain), and an
// auditor counting plaintext messages exposed on public links — the leak
// metric of the EXT-SEC experiment.
package security

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/grid"
	"repro/internal/simclock"
)

// Codec transforms message payloads on their way through a binding.
type Codec interface {
	// Name identifies the codec ("plain", "aes-gcm").
	Name() string
	// Secure reports whether the codec protects confidentiality.
	Secure() bool
	// Encode transforms a plaintext payload for transmission.
	Encode(plain []byte) ([]byte, error)
	// Decode recovers the plaintext payload.
	Decode(wire []byte) ([]byte, error)
}

// AppendCodec is the allocation-free encode extension of Codec: the farm's
// hot path seals into pooled buffers, so a codec that can append its wire
// form onto a caller-owned slice lets steady-state dispatch run at zero
// allocations per task. Both repo codecs implement it; foreign codecs fall
// back to Encode (one allocation per seal), never to an error.
type AppendCodec interface {
	Codec
	// AppendEncode appends the wire form of plain to dst and returns the
	// extended slice, exactly as Encode would have produced it.
	AppendEncode(dst, plain []byte) ([]byte, error)
}

// AppendEncode seals plain onto dst through c's AppendCodec fast path when
// it has one, falling back to Encode plus a copy otherwise. The result is
// byte-compatible with c.Encode in both cases.
func AppendEncode(c Codec, dst, plain []byte) ([]byte, error) {
	if ac, ok := c.(AppendCodec); ok {
		return ac.AppendEncode(dst, plain)
	}
	wire, err := c.Encode(plain)
	if err != nil {
		return dst, err
	}
	return append(dst, wire...), nil
}

// AppendDecode opens wire onto dst through c's append fast path when it has
// one, falling back to Decode plus a copy otherwise. The appended bytes are
// byte-compatible with c.Decode. Callers that reuse dst across calls must
// own every byte of it: the result aliases dst's backing array.
func AppendDecode(c Codec, dst, wire []byte) ([]byte, error) {
	if ac, ok := c.(interface {
		AppendDecode(dst, wire []byte) ([]byte, error)
	}); ok {
		return ac.AppendDecode(dst, wire)
	}
	plain, err := c.Decode(wire)
	if err != nil {
		return dst, err
	}
	return append(dst, plain...), nil
}

// Canonical codec names, as returned by Codec.Name. The remote management
// plane ships them in prepare replies so the far side can rebuild the
// binding codec from its key material.
const (
	PlainName  = "plain"
	AESGCMName = "aes-gcm"
)

// Plain is the pass-through codec modelling plain TCP/IP sockets.
type Plain struct{}

// Name implements Codec.
func (Plain) Name() string { return "plain" }

// Secure implements Codec.
func (Plain) Secure() bool { return false }

// Encode implements Codec by copying the payload.
func (Plain) Encode(plain []byte) ([]byte, error) {
	out := make([]byte, len(plain))
	copy(out, plain)
	return out, nil
}

// Decode implements Codec by copying the payload.
func (Plain) Decode(wire []byte) ([]byte, error) {
	out := make([]byte, len(wire))
	copy(out, wire)
	return out, nil
}

// AppendEncode implements AppendCodec.
func (Plain) AppendEncode(dst, plain []byte) ([]byte, error) {
	return append(dst, plain...), nil
}

// AppendDecode is the allocation-free decode counterpart of AppendEncode.
func (Plain) AppendDecode(dst, wire []byte) ([]byte, error) {
	return append(dst, wire...), nil
}

// AESGCM encrypts payloads with AES-256-GCM. It models the SSL transport of
// the paper with a real cipher so that securing a binding has a measurable
// CPU cost. An optional simulated handshake latency is paid once, on first
// use, mirroring SSL session establishment.
type AESGCM struct {
	aead      cipher.AEAD
	key       []byte
	clock     simclock.Clock
	handshake time.Duration
	once      sync.Once
}

// NewAESGCM returns an AES-256-GCM codec with the given 32-byte key. If
// clock is non-nil and handshake positive, the first Encode or Decode pays
// the handshake latency.
func NewAESGCM(key []byte, clock simclock.Clock, handshake time.Duration) (*AESGCM, error) {
	if len(key) != 32 {
		return nil, fmt.Errorf("security: AES-256 key must be 32 bytes, got %d", len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return &AESGCM{aead: aead, key: append([]byte(nil), key...), clock: clock, handshake: handshake}, nil
}

// MustAESGCM is NewAESGCM that panics on error, for static configuration.
func MustAESGCM(key []byte, clock simclock.Clock, handshake time.Duration) *AESGCM {
	c, err := NewAESGCM(key, clock, handshake)
	if err != nil {
		panic(err)
	}
	return c
}

// NewRandomKey returns a fresh 32-byte key.
func NewRandomKey() []byte {
	key := make([]byte, 32)
	if _, err := io.ReadFull(rand.Reader, key); err != nil {
		panic(fmt.Sprintf("security: cannot draw random key: %v", err))
	}
	return key
}

// Name implements Codec.
func (*AESGCM) Name() string { return "aes-gcm" }

// Key returns a copy of the codec's key material. The cross-process
// dispatch plane needs it to re-key a remote binding: the new key travels
// to the workerd process inside a rekey frame sealed under the link's
// master codec, so the raw key never crosses the wire in clear.
func (c *AESGCM) Key() []byte { return append([]byte(nil), c.key...) }

// Secure implements Codec.
func (*AESGCM) Secure() bool { return true }

func (c *AESGCM) payHandshake() {
	c.once.Do(func() {
		if c.clock != nil && c.handshake > 0 {
			c.clock.Sleep(c.handshake)
		}
	})
}

// Encode implements Codec: nonce || ciphertext.
func (c *AESGCM) Encode(plain []byte) ([]byte, error) {
	c.payHandshake()
	nonce := make([]byte, c.aead.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, err
	}
	return c.aead.Seal(nonce, nonce, plain, nil), nil
}

// AppendEncode implements AppendCodec: the nonce and ciphertext are
// appended onto dst, so a caller recycling seal buffers pays no allocation
// once the buffer has grown to the payload's size.
func (c *AESGCM) AppendEncode(dst, plain []byte) ([]byte, error) {
	c.payHandshake()
	ns := c.aead.NonceSize()
	off := len(dst)
	for i := 0; i < ns; i++ {
		dst = append(dst, 0)
	}
	nonce := dst[off : off+ns]
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return dst[:off], err
	}
	// Seal appends past len(dst); the nonce region below it is read, not
	// written, so the aliasing is the same as the canonical
	// Seal(nonce, nonce, ...) pattern.
	return c.aead.Seal(dst, nonce, plain, nil), nil
}

// AppendDecode opens wire onto dst without allocating when dst has
// capacity: GCM's open appends past len(dst), so a caller-owned reusable
// buffer makes steady-state decode allocation-free.
func (c *AESGCM) AppendDecode(dst, wire []byte) ([]byte, error) {
	c.payHandshake()
	ns := c.aead.NonceSize()
	if len(wire) < ns {
		return dst, ErrCiphertext
	}
	out, err := c.aead.Open(dst, wire[:ns], wire[ns:], nil)
	if err != nil {
		return dst, ErrCiphertext
	}
	return out, nil
}

// ErrCiphertext is returned when a wire message cannot be authenticated or
// is structurally invalid.
var ErrCiphertext = errors.New("security: invalid or tampered ciphertext")

// Decode implements Codec.
func (c *AESGCM) Decode(wire []byte) ([]byte, error) {
	c.payHandshake()
	ns := c.aead.NonceSize()
	if len(wire) < ns {
		return nil, ErrCiphertext
	}
	plain, err := c.aead.Open(nil, wire[:ns], wire[ns:], nil)
	if err != nil {
		return nil, ErrCiphertext
	}
	return plain, nil
}

// Policy decides whether a binding between two placements must be secured
// under contract c_sec. This reproduces the metadata-driven strategy of the
// paper's reference [20]: secure protocols only where strictly needed.
type Policy struct {
	Network *grid.Network
}

// RequireSecure reports whether traffic between nodes a and b must be
// encrypted: yes iff either endpoint's domain is untrusted or the link
// between the domains is not private. A nil endpoint stands for an unknown
// placement: the verdict is then decided by the other endpoint's trust
// alone (conservative for untrusted targets).
func (p Policy) RequireSecure(a, b *grid.Node) bool {
	if a == nil && b == nil {
		return false
	}
	if a == nil {
		return !b.Domain.Trusted
	}
	if b == nil {
		return !a.Domain.Trusted
	}
	if !a.Domain.Trusted || !b.Domain.Trusted {
		return true
	}
	if p.Network == nil {
		return a.Domain.Name != b.Domain.Name
	}
	return !p.Network.LinkBetween(a.Domain.Name, b.Domain.Name).Private
}

// Auditor observes every message crossing bindings and counts plaintext
// exposures on connections that the policy says must be secure. A correct
// multi-concern protocol keeps Leaks() at zero; the naive protocol of the
// EXT-SEC experiment does not.
type Auditor struct {
	mu       sync.Mutex
	total    uint64
	secured  uint64
	leaks    uint64
	byworker map[string]uint64
}

// NewAuditor returns an empty auditor.
func NewAuditor() *Auditor { return &Auditor{byworker: map[string]uint64{}} }

// RecordSend registers one message sent to endpoint. mustSecure is the
// policy verdict for the binding and wasSecure whether the message was
// actually encrypted.
func (a *Auditor) RecordSend(endpoint string, mustSecure, wasSecure bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.total++
	if wasSecure {
		a.secured++
	}
	if mustSecure && !wasSecure {
		a.leaks++
		a.byworker[endpoint]++
	}
}

// Total returns the number of messages observed.
func (a *Auditor) Total() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// Secured returns the number of encrypted messages observed.
func (a *Auditor) Secured() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.secured
}

// Leaks returns the number of plaintext messages that crossed links the
// policy required to be secure.
func (a *Auditor) Leaks() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.leaks
}

// LeaksAt returns the number of leaks recorded towards a given endpoint.
func (a *Auditor) LeaksAt(endpoint string) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.byworker[endpoint]
}

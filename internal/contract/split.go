package contract

import (
	"fmt"
	"math"
)

// This file implements the P_spl problem of §3.1: deriving sub-contracts
// for the children of a behavioural skeleton from the contract its manager
// agreed with the user or its own parent. There is no general solution; the
// heuristics below exploit the performance models of the known patterns,
// exactly as the paper proposes.

// SplitPipeline derives one sub-contract per pipeline stage.
//
// For throughput contracts the split is the identity: the throughput of a
// pipeline is bounded by its slowest stage, so each stage must individually
// deliver the pipeline's contracted range.
//
// For parallelism-degree contracts the split is proportional to the stage
// weights (relative computational cost per task); nil weights mean equal
// stages. Every stage receives at least one executor.
func SplitPipeline(c Contract, stages int, weights []float64) ([]Contract, error) {
	if stages <= 0 {
		return nil, fmt.Errorf("contract: pipeline needs at least one stage")
	}
	if weights != nil && len(weights) != stages {
		return nil, fmt.Errorf("contract: %d weights for %d stages", len(weights), stages)
	}
	out := make([]Contract, stages)
	switch c := c.(type) {
	case ThroughputRange:
		for i := range out {
			out[i] = c
		}
	case BestEffort:
		for i := range out {
			out[i] = BestEffort{}
		}
	case SecureComms:
		for i := range out {
			out[i] = SecureComms{}
		}
	case ParDegree:
		mins := proportional(c.Min, stages, weights)
		maxs := proportional(c.Max, stages, weights)
		for i := range out {
			lo, hi := mins[i], maxs[i]
			if hi < lo {
				hi = lo
			}
			out[i] = ParDegree{Min: lo, Max: hi}
		}
	case Conjunction:
		subSplits := make([][]Contract, len(c))
		for j, sub := range c {
			split, err := SplitPipeline(sub, stages, weights)
			if err != nil {
				return nil, err
			}
			subSplits[j] = split
		}
		for i := range out {
			conj := make(Conjunction, len(c))
			for j := range c {
				conj[j] = subSplits[j][i]
			}
			out[i] = conj
		}
	default:
		return nil, fmt.Errorf("contract: no pipeline split heuristic for %T", c)
	}
	return out, nil
}

// SplitFarm derives the workers' sub-contracts from a farm contract.
// Following the task-farm BS definition referenced by §4.2, workers receive
// best-effort contracts regardless of the farm's own quantitative goal
// (they are passive from the farm manager's viewpoint but autonomically do
// their local best). Boolean security contracts do propagate: every worker
// binding must be secure.
func SplitFarm(c Contract, workers int) ([]Contract, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("contract: farm needs at least one worker")
	}
	out := make([]Contract, workers)
	secure := Boolean(c)
	for i := range out {
		if secure {
			out[i] = Conjunction{SecureComms{}, BestEffort{}}
		} else {
			out[i] = BestEffort{}
		}
	}
	return out, nil
}

// proportional splits total into len-many non-negative integers summing to
// total, proportionally to weights (nil = equal), every share >= 1 when
// total >= n. Largest-remainder rounding keeps the sum exact.
func proportional(total, n int, weights []float64) []int {
	if n <= 0 {
		return nil
	}
	w := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		if weights == nil {
			w[i] = 1
		} else {
			w[i] = math.Max(weights[i], 0)
		}
		sum += w[i]
	}
	if sum == 0 {
		for i := range w {
			w[i] = 1
		}
		sum = float64(n)
	}
	shares := make([]int, n)
	rema := make([]float64, n)
	assigned := 0
	for i := 0; i < n; i++ {
		exact := float64(total) * w[i] / sum
		shares[i] = int(math.Floor(exact))
		rema[i] = exact - float64(shares[i])
		assigned += shares[i]
	}
	for assigned < total {
		best := 0
		for i := 1; i < n; i++ {
			if rema[i] > rema[best] {
				best = i
			}
		}
		shares[best]++
		rema[best] = -1
		assigned++
	}
	// Guarantee a minimum of one executor per stage when feasible.
	if total >= n {
		for i := 0; i < n; i++ {
			if shares[i] == 0 {
				// steal from the largest share
				big := 0
				for j := 1; j < n; j++ {
					if shares[j] > shares[big] {
						big = j
					}
				}
				shares[big]--
				shares[i]++
			}
		}
	}
	return shares
}

// CombineLinear builds the §3.2 summary super-contract c̄ for non-boolean
// throughput contracts: the weighted linear combination of the member
// bounds. Boolean members are rejected — they must keep their priority and
// cannot be averaged away.
func CombineLinear(cs []ThroughputRange, weights []float64) (ThroughputRange, error) {
	if len(cs) == 0 {
		return ThroughputRange{}, fmt.Errorf("contract: nothing to combine")
	}
	if weights != nil && len(weights) != len(cs) {
		return ThroughputRange{}, fmt.Errorf("contract: %d weights for %d contracts", len(weights), len(cs))
	}
	var lo, hi, sum float64
	unboundedHi := false
	for i, c := range cs {
		w := 1.0
		if weights != nil {
			w = math.Max(weights[i], 0)
		}
		lo += w * c.Lo
		if math.IsInf(c.Hi, 1) {
			unboundedHi = true
		} else {
			hi += w * c.Hi
		}
		sum += w
	}
	if sum == 0 {
		return ThroughputRange{}, fmt.Errorf("contract: zero total weight")
	}
	out := ThroughputRange{Lo: lo / sum, Hi: hi / sum}
	if unboundedHi {
		out.Hi = math.Inf(1)
	}
	return out, nil
}

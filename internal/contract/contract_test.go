package contract

import (
	"math"
	"testing"
	"testing/quick"
)

func TestThroughputRangeCheck(t *testing.T) {
	c, err := NewThroughputRange(0.3, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		tp   float64
		want Verdict
	}{
		{0.1, ViolatedLow}, {0.3, Satisfied}, {0.5, Satisfied},
		{0.7, Satisfied}, {0.9, ViolatedHigh},
	}
	for _, tc := range cases {
		if got := c.Check(Snapshot{Throughput: tc.tp}); got != tc.want {
			t.Errorf("Check(%v) = %v, want %v", tc.tp, got, tc.want)
		}
	}
}

func TestThroughputRangeValidation(t *testing.T) {
	if _, err := NewThroughputRange(-1, 2); err == nil {
		t.Fatal("negative low bound accepted")
	}
	if _, err := NewThroughputRange(2, 1); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestMinThroughput(t *testing.T) {
	c := MinThroughput(0.6)
	if c.Bounded() {
		t.Fatal("MinThroughput must be unbounded above")
	}
	if got := c.Check(Snapshot{Throughput: 100}); got != Satisfied {
		t.Fatalf("high throughput verdict = %v", got)
	}
	if got := c.Check(Snapshot{Throughput: 0.5}); got != ViolatedLow {
		t.Fatalf("low throughput verdict = %v", got)
	}
}

func TestBestEffortAlwaysSatisfied(t *testing.T) {
	if got := (BestEffort{}).Check(Snapshot{}); got != Satisfied {
		t.Fatalf("verdict = %v", got)
	}
}

func TestParDegree(t *testing.T) {
	c, err := NewParDegree(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Check(Snapshot{ParDegree: 1}); got != ViolatedLow {
		t.Fatalf("verdict = %v", got)
	}
	if got := c.Check(Snapshot{ParDegree: 9}); got != ViolatedHigh {
		t.Fatalf("verdict = %v", got)
	}
	if got := c.Check(Snapshot{ParDegree: 5}); got != Satisfied {
		t.Fatalf("verdict = %v", got)
	}
	if _, err := NewParDegree(5, 2); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestSecureComms(t *testing.T) {
	c := SecureComms{}
	if got := c.Check(Snapshot{UnsecuredSends: 0}); got != Satisfied {
		t.Fatalf("verdict = %v", got)
	}
	if got := c.Check(Snapshot{UnsecuredSends: 1}); got != Violated {
		t.Fatalf("verdict = %v", got)
	}
}

func TestBooleanDetection(t *testing.T) {
	if Boolean(ThroughputRange{}) || Boolean(BestEffort{}) {
		t.Fatal("quantitative contracts flagged boolean")
	}
	if !Boolean(SecureComms{}) {
		t.Fatal("SecureComms not flagged boolean")
	}
	if !Boolean(Conjunction{BestEffort{}, SecureComms{}}) {
		t.Fatal("conjunction containing SecureComms not flagged boolean")
	}
}

func TestConjunctionPriority(t *testing.T) {
	// Security violation must dominate a throughput violation (§3.2:
	// boolean concerns get priority).
	c := Conjunction{ThroughputRange{Lo: 0.3, Hi: 0.7}, SecureComms{}}
	got := c.Check(Snapshot{Throughput: 0.1, UnsecuredSends: 3})
	if got != Violated {
		t.Fatalf("verdict = %v, want Violated (security first)", got)
	}
	got = c.Check(Snapshot{Throughput: 0.1})
	if got != ViolatedLow {
		t.Fatalf("verdict = %v, want ViolatedLow", got)
	}
	got = c.Check(Snapshot{Throughput: 0.5})
	if got != Satisfied {
		t.Fatalf("verdict = %v", got)
	}
}

func TestVerdictString(t *testing.T) {
	for v, s := range map[Verdict]string{
		Satisfied: "satisfied", ViolatedLow: "violated-low",
		ViolatedHigh: "violated-high", Violated: "violated",
		Verdict(42): "unknown",
	} {
		if v.String() != s {
			t.Errorf("Verdict(%d).String() = %q, want %q", v, v.String(), s)
		}
	}
	if !Satisfied.OK() || ViolatedLow.OK() {
		t.Fatal("OK() wrong")
	}
}

func TestParseDescribeRoundTrip(t *testing.T) {
	for _, src := range []string{
		"throughput:0.3-0.7",
		"throughput>=0.6",
		"best-effort",
		"secure",
		"pardegree:2-8",
		"secure+throughput:0.3-0.7",
	} {
		c, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		c2, err := Parse(c.Describe())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", c.Describe(), err)
		}
		if c2.Describe() != c.Describe() {
			t.Fatalf("round trip changed %q -> %q", c.Describe(), c2.Describe())
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"", "garbage", "throughput:x-y", "throughput:0.7", "throughput>=-1",
		"pardegree:1", "secure+garbage",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestSplitPipelineThroughput(t *testing.T) {
	c := ThroughputRange{Lo: 0.3, Hi: 0.7}
	subs, err := SplitPipeline(c, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 3 {
		t.Fatalf("got %d sub-contracts", len(subs))
	}
	for i, s := range subs {
		tr, ok := s.(ThroughputRange)
		if !ok || tr != c {
			t.Fatalf("stage %d contract = %v, want identity split", i, s)
		}
	}
}

func TestSplitPipelineParDegree(t *testing.T) {
	c := ParDegree{Min: 3, Max: 12}
	subs, err := SplitPipeline(c, 3, []float64{1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	mins, maxs := 0, 0
	for _, s := range subs {
		pd := s.(ParDegree)
		mins += pd.Min
		maxs += pd.Max
	}
	if mins != 3 || maxs != 12 {
		t.Fatalf("splits do not preserve totals: min=%d max=%d", mins, maxs)
	}
	// The heavy middle stage must get the biggest share of Max.
	mid := subs[1].(ParDegree)
	if mid.Max != 6 {
		t.Fatalf("middle stage max = %d, want 6", mid.Max)
	}
}

func TestSplitPipelineConjunction(t *testing.T) {
	c := Conjunction{SecureComms{}, ThroughputRange{Lo: 0.3, Hi: 0.7}}
	subs, err := SplitPipeline(c, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range subs {
		conj, ok := s.(Conjunction)
		if !ok || len(conj) != 2 {
			t.Fatalf("sub-contract = %v", s)
		}
		if !Boolean(conj) {
			t.Fatal("security lost in the split")
		}
	}
}

func TestSplitPipelineErrors(t *testing.T) {
	if _, err := SplitPipeline(BestEffort{}, 0, nil); err == nil {
		t.Fatal("zero stages accepted")
	}
	if _, err := SplitPipeline(BestEffort{}, 2, []float64{1}); err == nil {
		t.Fatal("weight/stage mismatch accepted")
	}
}

func TestSplitFarmBestEffort(t *testing.T) {
	subs, err := SplitFarm(ThroughputRange{Lo: 0.3, Hi: 0.7}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range subs {
		if _, ok := s.(BestEffort); !ok {
			t.Fatalf("worker contract = %v, want best-effort", s)
		}
	}
}

func TestSplitFarmPropagatesSecurity(t *testing.T) {
	subs, err := SplitFarm(Conjunction{SecureComms{}, ThroughputRange{Lo: 0.3, Hi: 0.7}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range subs {
		if !Boolean(s) {
			t.Fatalf("worker contract %v lost security", s)
		}
	}
	if _, err := SplitFarm(BestEffort{}, 0); err == nil {
		t.Fatal("zero workers accepted")
	}
}

// Property (the P_spl soundness argument for pipelines): if every stage
// individually satisfies the split throughput contract, and the pipeline's
// end-to-end throughput equals the minimum stage throughput (the pipeline
// performance model), then the original contract's lower bound holds.
func TestSplitPipelineSoundness(t *testing.T) {
	f := func(loC, hiC uint8, tps []uint8) bool {
		if len(tps) == 0 {
			return true
		}
		lo := float64(loC) / 100
		hi := lo + float64(hiC)/100
		c := ThroughputRange{Lo: lo, Hi: hi}
		subs, err := SplitPipeline(c, len(tps), nil)
		if err != nil {
			return false
		}
		minTP := math.Inf(1)
		allOK := true
		for i, raw := range tps {
			tp := float64(raw) / 100
			if !subs[i].Check(Snapshot{Throughput: tp}).OK() {
				allOK = false
			}
			minTP = math.Min(minTP, tp)
		}
		if !allOK {
			return true // vacuous
		}
		return c.Check(Snapshot{Throughput: minTP}) != ViolatedLow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: proportional splitting preserves the total and never produces a
// negative share.
func TestProportionalProperties(t *testing.T) {
	f := func(total uint8, n uint8, ws []uint8) bool {
		stages := int(n%8) + 1
		weights := make([]float64, stages)
		for i := range weights {
			if i < len(ws) {
				weights[i] = float64(ws[i])
			}
		}
		shares := proportional(int(total), stages, weights)
		sum := 0
		for _, s := range shares {
			if s < 0 {
				return false
			}
			sum += s
		}
		if sum != int(total) {
			return false
		}
		if int(total) >= stages {
			for _, s := range shares {
				if s == 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCombineLinear(t *testing.T) {
	cs := []ThroughputRange{{Lo: 0.2, Hi: 0.4}, {Lo: 0.4, Hi: 0.8}}
	combined, err := CombineLinear(cs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(combined.Lo-0.3) > 1e-9 || math.Abs(combined.Hi-0.6) > 1e-9 {
		t.Fatalf("combined = %+v", combined)
	}
	weighted, err := CombineLinear(cs, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(weighted.Lo-0.25) > 1e-9 {
		t.Fatalf("weighted.Lo = %v, want 0.25", weighted.Lo)
	}
	if _, err := CombineLinear(nil, nil); err == nil {
		t.Fatal("empty combine accepted")
	}
	if _, err := CombineLinear(cs, []float64{1}); err == nil {
		t.Fatal("weight mismatch accepted")
	}
	if _, err := CombineLinear(cs, []float64{0, 0}); err == nil {
		t.Fatal("zero weights accepted")
	}
	unb, err := CombineLinear([]ThroughputRange{MinThroughput(0.6), {Lo: 0.2, Hi: 0.4}}, nil)
	if err != nil || !math.IsInf(unb.Hi, 1) {
		t.Fatalf("unbounded combine = %+v, %v", unb, err)
	}
}

// Package contract implements the SLA formalism of the paper: the contracts
// users hand to top-level managers, the verdicts managers compute during the
// analyse phase of the control loop, and the P_spl splitting heuristics that
// derive sub-contracts for nested behavioural skeletons (a pipeline's
// throughput SLA replicates to every stage because pipeline throughput is
// bounded by its slowest stage; a farm hands its workers best-effort
// contracts; parallelism-degree SLAs split proportionally to stage weights).
package contract

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Snapshot is the monitored state a contract is checked against. It is the
// "monitor" output of the MAPE loop, assembled by the ABC sensors.
type Snapshot struct {
	Throughput     float64 // completed tasks per second (departure rate)
	ArrivalRate    float64 // offered tasks per second
	ParDegree      int     // current number of parallel executors
	QueueVariance  float64 // imbalance across worker queues
	UnsecuredSends uint64  // plaintext messages on links requiring security
	ErrorsDropped  uint64  // runtime errors lost to a full error buffer
	StreamDone     bool    // the input stream is exhausted (endStream)
}

// Verdict is the analyse-phase outcome of checking a contract.
type Verdict int

// Verdict values.
const (
	Satisfied    Verdict = iota
	ViolatedLow          // measured value below the contracted range
	ViolatedHigh         // measured value above the contracted range
	Violated             // boolean violation (e.g. security breach)
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Satisfied:
		return "satisfied"
	case ViolatedLow:
		return "violated-low"
	case ViolatedHigh:
		return "violated-high"
	case Violated:
		return "violated"
	default:
		return "unknown"
	}
}

// OK reports whether the verdict is Satisfied.
func (v Verdict) OK() bool { return v == Satisfied }

// Contract is a non-functional SLA as agreed between a user (or a parent
// manager) and an autonomic manager.
type Contract interface {
	// Check evaluates the contract against a monitoring snapshot.
	Check(Snapshot) Verdict
	// Describe renders the contract in the textual form accepted by Parse.
	Describe() string
}

// ThroughputRange contracts a task completion rate within [Lo, Hi] tasks
// per second — the c_tRange of the Fig. 4 experiment. Hi = +Inf expresses a
// pure lower bound.
type ThroughputRange struct {
	Lo, Hi float64
}

// NewThroughputRange validates and builds a ThroughputRange.
func NewThroughputRange(lo, hi float64) (ThroughputRange, error) {
	if lo < 0 || hi < lo {
		return ThroughputRange{}, fmt.Errorf("contract: bad throughput range [%v,%v]", lo, hi)
	}
	return ThroughputRange{Lo: lo, Hi: hi}, nil
}

// MinThroughput returns the pure lower-bound contract used in Fig. 3
// (0.6 images/s).
func MinThroughput(lo float64) ThroughputRange {
	return ThroughputRange{Lo: lo, Hi: math.Inf(1)}
}

// Check implements Contract.
func (c ThroughputRange) Check(s Snapshot) Verdict {
	switch {
	case s.Throughput < c.Lo:
		return ViolatedLow
	case s.Throughput > c.Hi:
		return ViolatedHigh
	default:
		return Satisfied
	}
}

// Describe implements Contract.
func (c ThroughputRange) Describe() string {
	if math.IsInf(c.Hi, 1) {
		return fmt.Sprintf("throughput>=%.3g", c.Lo)
	}
	return fmt.Sprintf("throughput:%.3g-%.3g", c.Lo, c.Hi)
}

// Bounded reports whether the range has a finite upper bound.
func (c ThroughputRange) Bounded() bool { return !math.IsInf(c.Hi, 1) }

// BestEffort is the contract a farm manager passes to its workers: no
// quantitative goal; each worker autonomically does its local best.
type BestEffort struct{}

// Check implements Contract: best effort is always satisfied.
func (BestEffort) Check(Snapshot) Verdict { return Satisfied }

// Describe implements Contract.
func (BestEffort) Describe() string { return "best-effort" }

// ParDegree contracts the parallelism degree within [Min, Max] executors.
type ParDegree struct {
	Min, Max int
}

// NewParDegree validates and builds a ParDegree contract.
func NewParDegree(min, max int) (ParDegree, error) {
	if min < 0 || max < min {
		return ParDegree{}, fmt.Errorf("contract: bad parallelism range [%d,%d]", min, max)
	}
	return ParDegree{Min: min, Max: max}, nil
}

// Check implements Contract.
func (c ParDegree) Check(s Snapshot) Verdict {
	switch {
	case s.ParDegree < c.Min:
		return ViolatedLow
	case s.ParDegree > c.Max:
		return ViolatedHigh
	default:
		return Satisfied
	}
}

// Describe implements Contract.
func (c ParDegree) Describe() string {
	return fmt.Sprintf("pardegree:%d-%d", c.Min, c.Max)
}

// SecureComms is the boolean security concern c_sec: no plaintext message
// may ever cross a link the policy requires to be secure.
type SecureComms struct{}

// Check implements Contract.
func (SecureComms) Check(s Snapshot) Verdict {
	if s.UnsecuredSends > 0 {
		return Violated
	}
	return Satisfied
}

// Describe implements Contract.
func (SecureComms) Describe() string { return "secure" }

// Boolean reports whether a contract is a boolean concern, which §3.2 says
// must be given priority over quantitative ones.
func Boolean(c Contract) bool {
	switch c := c.(type) {
	case SecureComms:
		return true
	case Conjunction:
		for _, sub := range c {
			if Boolean(sub) {
				return true
			}
		}
	}
	return false
}

// Conjunction is the super-contract c̄ of §3.2: all member contracts must
// hold. Boolean members take checking priority: if any boolean member is
// violated the verdict is Violated regardless of the others.
type Conjunction []Contract

// Check implements Contract.
func (c Conjunction) Check(s Snapshot) Verdict {
	// Boolean concerns first (priority of §3.2).
	for _, sub := range c {
		if Boolean(sub) {
			if v := sub.Check(s); !v.OK() {
				return Violated
			}
		}
	}
	for _, sub := range c {
		if Boolean(sub) {
			continue
		}
		if v := sub.Check(s); !v.OK() {
			return v
		}
	}
	return Satisfied
}

// Describe implements Contract.
func (c Conjunction) Describe() string {
	parts := make([]string, len(c))
	for i, sub := range c {
		parts[i] = sub.Describe()
	}
	return strings.Join(parts, "+")
}

// Parse reads the textual contract syntax produced by Describe:
//
//	throughput:LO-HI | throughput>=LO | best-effort | secure |
//	pardegree:MIN-MAX | C1+C2+...
func Parse(s string) (Contract, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("contract: empty specification")
	}
	if strings.Contains(s, "+") {
		var conj Conjunction
		for _, part := range strings.Split(s, "+") {
			sub, err := Parse(part)
			if err != nil {
				return nil, err
			}
			conj = append(conj, sub)
		}
		return conj, nil
	}
	switch {
	case s == "best-effort":
		return BestEffort{}, nil
	case s == "secure":
		return SecureComms{}, nil
	case strings.HasPrefix(s, "throughput>="):
		lo, err := strconv.ParseFloat(s[len("throughput>="):], 64)
		if err != nil || lo < 0 {
			return nil, fmt.Errorf("contract: bad throughput bound in %q", s)
		}
		return MinThroughput(lo), nil
	case strings.HasPrefix(s, "throughput:"):
		lo, hi, err := parseRange(s[len("throughput:"):])
		if err != nil {
			return nil, fmt.Errorf("contract: %q: %v", s, err)
		}
		return NewThroughputRange(lo, hi)
	case strings.HasPrefix(s, "pardegree:"):
		lo, hi, err := parseRange(s[len("pardegree:"):])
		if err != nil {
			return nil, fmt.Errorf("contract: %q: %v", s, err)
		}
		return NewParDegree(int(lo), int(hi))
	}
	return nil, fmt.Errorf("contract: unrecognized specification %q", s)
}

func parseRange(s string) (lo, hi float64, err error) {
	parts := strings.SplitN(s, "-", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want LO-HI, got %q", s)
	}
	if lo, err = strconv.ParseFloat(parts[0], 64); err != nil {
		return 0, 0, err
	}
	if hi, err = strconv.ParseFloat(parts[1], 64); err != nil {
		return 0, 0, err
	}
	return lo, hi, nil
}

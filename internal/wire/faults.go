package wire

import (
	"sync"
	"sync/atomic"
	"time"
)

// errLinkDropped reports an injected link drop — the error the farm sees
// as the worker crash the fault models.

// linkFaults is the chaos surface of one coordinator↔domain link. All
// sessions dialed through one Factory share it, because a real link cut
// takes out every connection riding the link at once; windows are plain
// atomics so the per-exec check costs two loads when the plane is idle.
type linkFaults struct {
	mu   sync.Mutex
	live map[*Session]struct{}

	delayUntil     atomic.Int64 // unix nano; delay window end
	delayNanos     atomic.Int64 // extra latency per exec inside the window
	partitionUntil atomic.Int64 // unix nano; reads/writes stall until then
	drops          atomic.Uint64
}

func newLinkFaults() *linkFaults {
	return &linkFaults{live: map[*Session]struct{}{}}
}

func (lf *linkFaults) register(s *Session) {
	lf.mu.Lock()
	lf.live[s] = struct{}{}
	lf.mu.Unlock()
}

func (lf *linkFaults) forget(s *Session) {
	if lf == nil {
		return
	}
	lf.mu.Lock()
	delete(lf.live, s)
	lf.mu.Unlock()
}

// apply runs the window checks at the top of an exec. A partition stalls
// the frame exchange until the window closes (the link froze, nothing was
// lost); a delay adds latency. Drops are not window-based — they cut the
// connections the moment they are injected, see dropAll.
func (lf *linkFaults) apply(*Session) error {
	if lf == nil {
		return nil
	}
	now := time.Now().UnixNano()
	if until := lf.partitionUntil.Load(); until > now {
		time.Sleep(time.Duration(until - now))
	}
	if lf.delayUntil.Load() > now {
		if d := lf.delayNanos.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
	}
	return nil
}

// dropAll severs every live session on the link, mid-exec included: a
// blocked result read returns a connection error, which the farm maps to a
// worker crash. Sessions dialed afterwards connect normally — reconnection
// is recovery recruitment's job, not the transport's.
func (lf *linkFaults) dropAll() int {
	lf.mu.Lock()
	sessions := make([]*Session, 0, len(lf.live))
	for s := range lf.live {
		sessions = append(sessions, s)
	}
	lf.live = map[*Session]struct{}{}
	lf.mu.Unlock()
	for _, s := range sessions {
		s.closeLocked() // atomic close; deliberately not taking s.mu
	}
	if len(sessions) > 0 {
		lf.drops.Add(uint64(len(sessions)))
	}
	return len(sessions)
}

// delay opens a latency window: every exec starting within it pays d.
func (lf *linkFaults) delay(d, window time.Duration) {
	lf.delayNanos.Store(int64(d))
	lf.delayUntil.Store(time.Now().Add(window).UnixNano())
}

// partition stalls the link until the window closes.
func (lf *linkFaults) partition(window time.Duration) {
	lf.partitionUntil.Store(time.Now().Add(window).UnixNano())
}

// Stats are the transport's client-side counters, shared by every session
// of one Factory and cheap enough to bump on the hot path.
type Stats struct {
	dials     atomic.Uint64
	execs     atomic.Uint64
	rekeys    atomic.Uint64
	framesOut atomic.Uint64
}

// StatsSnapshot is a point-in-time copy of the counters.
type StatsSnapshot struct {
	Dials     uint64 // sessions successfully established
	Execs     uint64 // tasks executed remotely
	Rekeys    uint64 // binding codecs installed across the wire
	FramesOut uint64 // frames written (exec + rekey)
	Drops     uint64 // sessions severed by injected link drops
}

// Snapshot returns the current counter values. drops lives on the fault
// surface, so the Factory passes it in.
func (st *Stats) snapshot(drops uint64) StatsSnapshot {
	return StatsSnapshot{
		Dials:     st.dials.Load(),
		Execs:     st.execs.Load(),
		Rekeys:    st.rekeys.Load(),
		FramesOut: st.framesOut.Load(),
		Drops:     drops,
	}
}

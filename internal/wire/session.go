package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/security"
	"repro/internal/telemetry"
)

// ErrSessionClosed is returned by Exec and Rekey once the session's
// connection is gone — closed by the farm, cut by an injected link drop,
// or broken by the peer.
var ErrSessionClosed = errors.New("wire: session closed")

// Session is one coordinator-side transport connection to a workerd,
// implementing skel.Executor for exactly one farm worker. A session
// carries a single outstanding exec at a time (the farm's worker loop is
// serial, which is what makes the protocol need no response demux) plus
// fire-and-forget rekey frames serialized on the same mutex.
type Session struct {
	hello  Hello
	master security.Codec
	faults *linkFaults
	stats  *Stats

	mu      sync.Mutex // serializes the exec roundtrip and rekey writes
	conn    net.Conn
	epoch   uint32
	binding security.Codec // codec of the current epoch, for foreign reseals

	// batchSeq correlates exec-batch frames with their result frames, the
	// role the task id plays for single execs.
	batchSeq atomic.Uint64

	closed atomic.Bool
}

// dialSession connects, authenticates the workerd's hello and returns the
// live session. The zero binding epoch is Plain on both ends.
func dialSession(addr string, master security.Codec, timeout time.Duration, faults *linkFaults, stats *Stats) (*Session, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	if timeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(timeout))
	}
	typ, body, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: reading hello from %s: %w", addr, err)
	}
	_ = conn.SetReadDeadline(time.Time{})
	if typ != frameHello {
		conn.Close()
		return nil, fmt.Errorf("wire: %s sent frame %#x before hello", addr, typ)
	}
	hello, err := openHello(master, body)
	if err != nil {
		conn.Close()
		return nil, err
	}
	stats.dials.Add(1)
	return &Session{
		hello:   hello,
		master:  master,
		faults:  faults,
		stats:   stats,
		conn:    conn,
		binding: security.Plain{},
	}, nil
}

// Hello returns the node advertisement received at dial time.
func (s *Session) Hello() Hello { return s.hello }

// epochCodec is the binding codec the farm holds after a remote rekey: it
// delegates Encode/Decode to the inner codec (so envelopes remain fully
// usable in-process — restores onto loopback workers keep working) and
// tags the session + epoch the key was installed under, which is how Exec
// knows the sealed bytes can go out as-is.
type epochCodec struct {
	s     *Session
	epoch uint32
	inner security.Codec
}

func (e *epochCodec) Name() string                        { return e.inner.Name() }
func (e *epochCodec) Secure() bool                        { return e.inner.Secure() }
func (e *epochCodec) Encode(plain []byte) ([]byte, error) { return e.inner.Encode(plain) }
func (e *epochCodec) Decode(wire []byte) ([]byte, error)  { return e.inner.Decode(wire) }

// Rekey implements skel.Executor: it ships codec c to the workerd inside a
// control frame sealed under the link's master codec — the raw key never
// crosses in clear — and returns the epoch-tagged wrapper the farm must
// seal with from now on. The write is fire-and-forget: frames are
// processed in order on the remote end, so the rekey is installed before
// any later exec frame that uses its epoch. A codec that is already an
// epoch wrapper (e.g. a binding migrated from another session) is
// unwrapped and re-shipped under a fresh epoch of this session.
func (s *Session) Rekey(c security.Codec) (security.Codec, error) {
	if ec, ok := c.(*epochCodec); ok {
		c = ec.inner
	}
	name, key, err := transportable(c)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return nil, ErrSessionClosed
	}
	epoch := s.epoch + 1
	plain, err := rekeyBody(epoch, name, key)
	if err != nil {
		return nil, err
	}
	sealed, err := s.master.Encode(plain)
	if err != nil {
		return nil, err
	}
	if err := s.writeLocked(frameRekey, sealed); err != nil {
		return nil, err
	}
	s.epoch = epoch
	s.binding = c
	s.stats.rekeys.Add(1)
	return &epochCodec{s: s, epoch: epoch, inner: c}, nil
}

// Exec implements skel.Executor: one task envelope out, one result frame
// back. When codec is this session's current epoch wrapper the sealed
// bytes go out verbatim — the transport never sees the plaintext. A
// foreign codec (an envelope restored from another worker's queue by
// rebalance, recovery or migration) is opened locally and re-sealed under
// this session's own binding, so a moved task still crosses the wire under
// a key its destination knows, at the same security level the farm
// installed here.
// The trace context rides in the exec frame; the workerd's reply reports
// its own measured exec time, which the farm joins with its local round
// trip by interval arithmetic to separate wire and exec stages.
func (s *Session) Exec(tc telemetry.TraceContext, taskID uint64, work time.Duration, codec security.Codec, sealed []byte) ([]byte, int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return nil, 0, ErrSessionClosed
	}
	if err := s.faults.apply(s); err != nil {
		return nil, 0, err
	}
	epoch := uint32(0)
	var foreign security.Codec
	if ec, ok := codec.(*epochCodec); ok && ec.s == s {
		epoch = ec.epoch
	} else {
		// The reply will come back sealed under this session's binding;
		// remember the foreign codec so the result can be handed back
		// sealed the way the caller expects (the Executor contract).
		foreign = codec
		plain, err := codec.Decode(sealed)
		if err != nil {
			return nil, 0, fmt.Errorf("wire: reseal for session: %w", err)
		}
		sealed, err = s.binding.Encode(plain)
		if err != nil {
			return nil, 0, fmt.Errorf("wire: reseal for session: %w", err)
		}
		epoch = s.epoch
	}
	if err := s.writeLocked(frameExec, execBody(epoch, taskID, int64(work), tc, sealed)); err != nil {
		return nil, 0, err
	}
	typ, body, err := readFrame(s.conn)
	if err != nil {
		s.closeLocked()
		return nil, 0, fmt.Errorf("wire: reading result: %w", err)
	}
	if typ != frameResult {
		s.closeLocked()
		return nil, 0, fmt.Errorf("wire: unexpected frame %#x awaiting result", typ)
	}
	gotID, status, execNanos, rest, err := parseResult(body)
	if err != nil {
		s.closeLocked()
		return nil, 0, err
	}
	if gotID != taskID {
		s.closeLocked()
		return nil, 0, fmt.Errorf("wire: result for task %d while awaiting %d", gotID, taskID)
	}
	if status != resultOK {
		// A remote rejection (unknown epoch, unauthenticated payload) is a
		// link-level fault: fail the session so the farm crashes the worker
		// and the stranded envelopes are recovered.
		s.closeLocked()
		return nil, 0, fmt.Errorf("wire: remote: %s", rest)
	}
	if foreign != nil {
		// Translate the reply from this session's binding back to the
		// codec the envelope was sealed with, so the caller's decode sees
		// the seal it expects.
		plain, err := s.binding.Decode(rest)
		if err != nil {
			s.closeLocked()
			return nil, 0, fmt.Errorf("wire: result reseal: %w", err)
		}
		if rest, err = foreign.Encode(plain); err != nil {
			return nil, 0, fmt.Errorf("wire: result reseal: %w", err)
		}
	}
	s.stats.execs.Add(1)
	return rest, execNanos, nil
}

// ExecBatch implements skel.BatchExecutor: one sealed multi-task blob out
// in a single frame, one result frame back carrying the sealed result blob
// — framing and sealing amortize over the batch exactly as on the loopback
// path. The foreign-codec rule of Exec applies unchanged: a blob sealed
// under another binding (a batch that survived an actuator intact) is
// opened locally and re-sealed under this session's binding, and the reply
// is translated back.
// A batch's trace context travels inside the sealed blob (skel's batch
// layout), so the frame itself needs none.
func (s *Session) ExecBatch(codec security.Codec, sealed []byte) ([]byte, int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return nil, 0, ErrSessionClosed
	}
	if err := s.faults.apply(s); err != nil {
		return nil, 0, err
	}
	epoch := uint32(0)
	var foreign security.Codec
	if ec, ok := codec.(*epochCodec); ok && ec.s == s {
		epoch = ec.epoch
	} else {
		foreign = codec
		plain, err := codec.Decode(sealed)
		if err != nil {
			return nil, 0, fmt.Errorf("wire: reseal batch for session: %w", err)
		}
		sealed, err = s.binding.Encode(plain)
		if err != nil {
			return nil, 0, fmt.Errorf("wire: reseal batch for session: %w", err)
		}
		epoch = s.epoch
	}
	batchID := s.batchSeq.Add(1)
	if err := s.writeLocked(frameExecBatch, execBatchBody(epoch, batchID, sealed)); err != nil {
		return nil, 0, err
	}
	typ, body, err := readFrame(s.conn)
	if err != nil {
		s.closeLocked()
		return nil, 0, fmt.Errorf("wire: reading batch result: %w", err)
	}
	if typ != frameResult {
		s.closeLocked()
		return nil, 0, fmt.Errorf("wire: unexpected frame %#x awaiting batch result", typ)
	}
	gotID, status, execNanos, rest, err := parseResult(body)
	if err != nil {
		s.closeLocked()
		return nil, 0, err
	}
	if gotID != batchID {
		s.closeLocked()
		return nil, 0, fmt.Errorf("wire: result for batch %d while awaiting %d", gotID, batchID)
	}
	if status != resultOK {
		s.closeLocked()
		return nil, 0, fmt.Errorf("wire: remote: %s", rest)
	}
	if foreign != nil {
		plain, err := s.binding.Decode(rest)
		if err != nil {
			s.closeLocked()
			return nil, 0, fmt.Errorf("wire: batch result reseal: %w", err)
		}
		if rest, err = foreign.Encode(plain); err != nil {
			return nil, 0, fmt.Errorf("wire: batch result reseal: %w", err)
		}
	}
	s.stats.execs.Add(1)
	return rest, execNanos, nil
}

// ScrapeStats runs one observability scrape over this session: a stats
// request sealed under the link's master codec (the scrape is a control
// frame — a peer without the PSK can neither request nor read a node
// report), answered by the workerd's sealed node report. The report bytes
// are the workerd's own JSON (telemetry.NodeReport); the wire layer does
// not interpret them.
func (s *Session) ScrapeStats() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return nil, ErrSessionClosed
	}
	req, err := s.master.Encode([]byte("stats"))
	if err != nil {
		return nil, fmt.Errorf("wire: sealing stats request: %w", err)
	}
	if err := s.writeLocked(frameStats, req); err != nil {
		return nil, err
	}
	typ, body, err := readFrame(s.conn)
	if err != nil {
		s.closeLocked()
		return nil, fmt.Errorf("wire: reading stats reply: %w", err)
	}
	if typ != frameStatsReply {
		s.closeLocked()
		return nil, fmt.Errorf("wire: unexpected frame %#x awaiting stats reply", typ)
	}
	plain, err := s.master.Decode(body)
	if err != nil {
		s.closeLocked()
		return nil, fmt.Errorf("wire: stats reply did not authenticate: %w", err)
	}
	return plain, nil
}

// Mgmt runs one management-plane exchange over this session: the request
// bytes sealed under the link's master codec (management traffic is
// control traffic — violation reports, lease renewals, contract re-splits
// and two-phase prepares must neither be forged nor read without the
// PSK), answered by the peer's sealed reply. The wire layer does not
// interpret either side; internal/manager owns the message schema.
// Unlike the scrape path, mgmt sessions ride the Factory's fault surface:
// a chaos partition or link drop takes the management plane down with the
// data plane, which is the point of this PR.
func (s *Session) Mgmt(req []byte) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return nil, ErrSessionClosed
	}
	if err := s.faults.apply(s); err != nil {
		return nil, err
	}
	if s.closed.Load() { // a drop may have landed during the fault window
		return nil, ErrSessionClosed
	}
	sealed, err := s.master.Encode(req)
	if err != nil {
		return nil, fmt.Errorf("wire: sealing mgmt request: %w", err)
	}
	if err := s.writeLocked(frameMgmt, sealed); err != nil {
		return nil, err
	}
	typ, body, err := readFrame(s.conn)
	if err != nil {
		s.closeLocked()
		return nil, fmt.Errorf("wire: reading mgmt reply: %w", err)
	}
	if typ != frameMgmtReply {
		s.closeLocked()
		return nil, fmt.Errorf("wire: unexpected frame %#x awaiting mgmt reply", typ)
	}
	plain, err := s.master.Decode(body)
	if err != nil {
		s.closeLocked()
		return nil, fmt.Errorf("wire: mgmt reply did not authenticate: %w", err)
	}
	return plain, nil
}

// writeLocked writes one frame; any error poisons the session. Callers
// hold s.mu.
func (s *Session) writeLocked(typ byte, body []byte) error {
	if err := writeFrame(s.conn, typ, body); err != nil {
		s.closeLocked()
		return fmt.Errorf("wire: write: %w", err)
	}
	s.stats.framesOut.Add(1)
	return nil
}

// closeLocked marks the session dead and closes the connection. Callers
// hold s.mu or are the fault injector (which must not take it: a drop has
// to cut a connection mid-exec, exactly like yanking a cable).
func (s *Session) closeLocked() {
	if s.closed.CompareAndSwap(false, true) {
		_ = s.conn.Close()
	}
}

// Close implements skel.Executor. Idempotent.
func (s *Session) Close() error {
	s.closeLocked()
	s.faults.forget(s)
	return nil
}

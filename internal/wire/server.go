package wire

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/security"
	"repro/internal/skel"
	"repro/internal/telemetry"
)

// WorkerFn transforms one task payload on the workerd side. Coordinator
// and workerd agree on the function by deployment (the workerd applies the
// function it was started with), mirroring how the skeleton's functional
// code is compiled into every process of a distributed run.
type WorkerFn func(payload []byte) []byte

// ServerConfig parameterizes a workerd endpoint.
type ServerConfig struct {
	// PSK is the link's pre-shared 32-byte master key; connections that
	// cannot authenticate against it are cut.
	PSK []byte
	// Hello is the node advertisement sent on every connection.
	Hello Hello
	// Fn is the functional code applied to each task payload (nil: identity).
	Fn WorkerFn
	// TimeScale divides the modelled work carried by exec frames into real
	// sleep, exactly like skel.Env.TimeScale on the coordinator side. Zero
	// or negative skips the sleep entirely (the unit-test setting).
	TimeScale float64
	// Log receives connection-level events. Nil discards them.
	Log *log.Logger
	// Instruments receives per-frame latency observations, exactly like a
	// farm's: Dispatch covers the whole handling of one exec frame (decode,
	// sleep, function, seal, reply), Seal isolates the result encode.
	// Optional; nil costs one branch per frame.
	Instruments *skel.FarmInstruments
	// Tracer records workerd-side exec spans for sampled envelopes (the
	// trace context arrives in the exec frame or batch blob; the sampling
	// decision was the coordinator's). Optional.
	Tracer *telemetry.TaskTracer
	// Stats, when set, answers observability scrape frames (0x06) with a
	// node report — typically a telemetry.NodeReport in JSON. The reply is
	// sealed under the link's master codec. Nil refuses scrapes.
	Stats func() []byte
	// Mgmt, when set, answers management-plane frames (0x08): violation
	// reports, lease renewals, contract re-splits, two-phase prepares from
	// a remote child manager. Request and reply are opaque to the wire
	// layer and sealed under the link's master codec. Nil refuses
	// management traffic (a data-plane-only workerd).
	Mgmt func(req []byte) []byte
}

// Server is the workerd side of the transport: it accepts framed
// connections, installs binding codecs shipped by rekey frames into a
// per-connection epoch keyring, and executes task envelopes — decode,
// sleep the modelled work, apply the worker function, seal the result
// under the same epoch. Malformed or unauthenticated frames close the
// connection: fail-secure, never fail-open.
type Server struct {
	cfg    ServerConfig
	master security.Codec

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool

	served   atomic.Uint64
	rejected atomic.Uint64
	wg       sync.WaitGroup
}

// NewServer validates cfg and builds the server.
func NewServer(cfg ServerConfig) (*Server, error) {
	master, err := NewMasterCodec(cfg.PSK)
	if err != nil {
		return nil, err
	}
	if cfg.Hello.Name == "" {
		return nil, errors.New("wire: server needs a node name to advertise")
	}
	return &Server{cfg: cfg, master: master, conns: map[net.Conn]struct{}{}}, nil
}

// Addr returns the listener address ("" before Serve).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts accepting in a
// background goroutine; it returns once the listener is live so callers
// can read Addr. Close shuts everything down.
func (s *Server) Listen(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return errors.New("wire: server closed")
	}
	s.listener = l
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(l)
	}()
	return nil
}

func (s *Server) acceptLoop(l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Served returns the number of tasks executed across all connections.
func (s *Server) Served() uint64 { return s.served.Load() }

// Rejected returns the number of frames refused (bad epoch, failed
// authentication, malformed body).
func (s *Server) Rejected() uint64 { return s.rejected.Load() }

// Close stops the listener and severs every live connection. Idempotent;
// it returns once all connection goroutines have exited.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	l := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Printf(format, args...)
	}
}

// serveConn runs one connection: hello out, then a serial frame loop. The
// loop is deliberately synchronous — one task at a time per connection —
// because the peer is one farm worker, and a worker is serial by
// definition; parallelism comes from more workers, i.e. more connections.
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	hello, err := sealHello(s.master, s.cfg.Hello)
	if err != nil {
		s.logf("wire: sealing hello: %v", err)
		return
	}
	if err := writeFrame(conn, frameHello, hello); err != nil {
		return
	}
	// keyring maps binding epochs to codecs; epoch 0 is Plain on both ends.
	// Old epochs stay resolvable so frames sealed before a rekey landed
	// (the §3.2 hazard window, stretched across a wire) still decode.
	keyring := map[uint32]security.Codec{0: security.Plain{}}
	for {
		typ, body, err := readFrame(conn)
		if err != nil {
			return // peer gone or frame malformed; either way the link is done
		}
		switch typ {
		case frameRekey:
			plain, err := s.master.Decode(body)
			if err != nil {
				s.rejected.Add(1)
				s.logf("wire: %s: rekey did not authenticate: %v", conn.RemoteAddr(), err)
				return // fail-secure: an unauthenticated rekey kills the link
			}
			epoch, codec, err := parseRekey(plain)
			if err != nil {
				s.rejected.Add(1)
				s.logf("wire: %s: %v", conn.RemoteAddr(), err)
				return
			}
			keyring[epoch] = codec
		case frameExecBatch:
			frameStart := time.Now()
			epoch, batchID, sealed, err := parseExecBatch(body)
			if err != nil {
				s.rejected.Add(1)
				return
			}
			codec, ok := keyring[epoch]
			if !ok {
				s.rejected.Add(1)
				s.reply(conn, batchID, resultErr, 0, fmt.Appendf(nil, "unknown binding epoch %d", epoch))
				continue
			}
			blob, err := codec.Decode(sealed)
			if err != nil {
				s.rejected.Add(1)
				s.reply(conn, batchID, resultErr, 0, []byte("batch did not authenticate"))
				continue
			}
			tc, entries, err := skel.ParseBatchBlob(blob)
			if err != nil {
				// Authenticated but malformed: refuse the whole batch (the
				// member boundaries cannot be trusted), same failure class
				// as a short exec frame.
				s.rejected.Add(1)
				s.reply(conn, batchID, resultErr, 0, []byte("malformed batch blob"))
				continue
			}
			var sp *telemetry.Span
			if tc.Sampled && s.cfg.Tracer != nil && len(entries) > 0 {
				sp = s.cfg.Tracer.StartRemote(tc, entries[0].ID)
				sp.Batch = len(entries)
				sp.Node = s.cfg.Hello.Name
				sp.Remote = true
				sp.Mark(telemetry.StageReseal) // request decode + blob parse
			}
			execStart := time.Now()
			results := make([]skel.BatchEntry, len(entries))
			for i, e := range entries {
				if scale := s.cfg.TimeScale; scale > 0 && e.Work > 0 {
					time.Sleep(time.Duration(float64(e.Work) / scale))
				}
				payload := e.Payload
				if s.cfg.Fn != nil {
					payload = s.cfg.Fn(payload)
				}
				results[i] = skel.BatchEntry{ID: e.ID, Payload: payload}
			}
			execNanos := int64(time.Since(execStart))
			if sp != nil {
				sp.Mark(telemetry.StageExec)
			}
			sealStart := time.Now()
			resealed, err := codec.Encode(skel.AppendBatchResult(nil, results))
			if ins := s.cfg.Instruments; ins != nil {
				ins.Seal.ObserveDuration(time.Since(sealStart))
			}
			if sp != nil {
				sp.Mark(telemetry.StageSeal)
				s.cfg.Tracer.Publish(sp)
			}
			if err != nil {
				s.reply(conn, batchID, resultErr, 0, []byte("result seal failed"))
				continue
			}
			s.served.Add(uint64(len(entries)))
			if ins := s.cfg.Instruments; ins != nil {
				ins.Dispatch.ObserveDuration(time.Since(frameStart))
			}
			if !s.reply(conn, batchID, resultOK, execNanos, resealed) {
				return
			}
		case frameExec:
			frameStart := time.Now()
			epoch, taskID, workNanos, tc, sealed, err := parseExec(body)
			if err != nil {
				s.rejected.Add(1)
				return
			}
			codec, ok := keyring[epoch]
			if !ok {
				s.rejected.Add(1)
				s.reply(conn, taskID, resultErr, 0, fmt.Appendf(nil, "unknown binding epoch %d", epoch))
				continue
			}
			var sp *telemetry.Span
			if tc.Sampled && s.cfg.Tracer != nil {
				sp = s.cfg.Tracer.StartRemote(tc, taskID)
				sp.Node = s.cfg.Hello.Name
				sp.Remote = true
			}
			payload, err := codec.Decode(sealed)
			if err != nil {
				// The envelope does not authenticate under its declared
				// epoch: refuse it, never execute it. The error text names
				// the failure only — payload bytes must not echo back.
				s.rejected.Add(1)
				if sp != nil {
					sp.Fault = "auth"
					s.cfg.Tracer.Publish(sp)
				}
				s.reply(conn, taskID, resultErr, 0, []byte("payload did not authenticate"))
				continue
			}
			if sp != nil {
				sp.Mark(telemetry.StageReseal) // request decode
			}
			execStart := time.Now()
			if scale := s.cfg.TimeScale; scale > 0 && workNanos > 0 {
				time.Sleep(time.Duration(float64(workNanos) / scale))
			}
			if s.cfg.Fn != nil {
				payload = s.cfg.Fn(payload)
			}
			execNanos := int64(time.Since(execStart))
			if sp != nil {
				sp.Mark(telemetry.StageExec)
			}
			sealStart := time.Now()
			resealed, err := codec.Encode(payload)
			if ins := s.cfg.Instruments; ins != nil {
				ins.Seal.ObserveDuration(time.Since(sealStart))
			}
			if sp != nil {
				sp.Mark(telemetry.StageSeal)
				s.cfg.Tracer.Publish(sp)
			}
			if err != nil {
				s.reply(conn, taskID, resultErr, 0, []byte("result seal failed"))
				continue
			}
			s.served.Add(1)
			if ins := s.cfg.Instruments; ins != nil {
				ins.Dispatch.ObserveDuration(time.Since(frameStart))
			}
			if !s.reply(conn, taskID, resultOK, execNanos, resealed) {
				return
			}
		case frameStats:
			// Observability scrape: the request must authenticate under the
			// link's master codec (fail-secure, like rekey), and the node
			// report goes back sealed the same way.
			if _, err := s.master.Decode(body); err != nil {
				s.rejected.Add(1)
				s.logf("wire: %s: stats request did not authenticate: %v", conn.RemoteAddr(), err)
				return
			}
			report := []byte("{}")
			if s.cfg.Stats != nil {
				report = s.cfg.Stats()
			}
			sealed, err := s.master.Encode(report)
			if err != nil {
				s.logf("wire: sealing stats reply: %v", err)
				return
			}
			if err := writeFrame(conn, frameStatsReply, sealed); err != nil {
				return
			}
		case frameMgmt:
			// Management plane: authenticate under the link's master codec
			// (fail-secure — a forged violation report or lease renewal
			// must cut the connection, not reach the manager), hand the
			// plaintext to the endpoint, seal the reply the same way.
			req, err := s.master.Decode(body)
			if err != nil {
				s.rejected.Add(1)
				s.logf("wire: %s: mgmt request did not authenticate: %v", conn.RemoteAddr(), err)
				return
			}
			if s.cfg.Mgmt == nil {
				s.rejected.Add(1)
				s.logf("wire: %s: mgmt frame refused: no management endpoint", conn.RemoteAddr())
				return
			}
			sealed, err := s.master.Encode(s.cfg.Mgmt(req))
			if err != nil {
				s.logf("wire: sealing mgmt reply: %v", err)
				return
			}
			if err := writeFrame(conn, frameMgmtReply, sealed); err != nil {
				return
			}
		default:
			s.rejected.Add(1)
			s.logf("wire: %s: unknown frame type %#x", conn.RemoteAddr(), typ)
			return
		}
	}
}

// reply writes one result frame; false means the connection is dead.
func (s *Server) reply(conn net.Conn, taskID uint64, status byte, execNanos int64, rest []byte) bool {
	return writeFrame(conn, frameResult, resultBody(taskID, status, execNanos, rest)) == nil
}

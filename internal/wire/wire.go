// Package wire is the cross-process transport of the dispatch plane: a
// framed, length-prefixed TCP protocol (stdlib net only) carrying the
// farm's sealed envelopes between a coordinator process and workerd
// processes. The package deliberately does not invent its own payload
// cryptography — the bytes inside an exec frame are exactly the bytes the
// binding codec of internal/security produced, so the security concern's
// guarantees (AES-GCM sealing, the two-phase rekey, the leak audit) hold
// unchanged across the machine boundary.
//
// Protocol, from the coordinator's point of view:
//
//	dial ──▶ hello (server→client, sealed under the link's master codec;
//	         advertises node name, labels, trust domain, capacity)
//	rekey ─▶ installs binding codec epoch N on the remote end; the frame
//	         body — codec name and key — is sealed under the master codec,
//	         so key material never crosses in clear
//	exec ──▶ epoch + task id + nominal work + sealed payload
//	◀─ result  task id + sealed result payload (same epoch), or an error
//
// The master codec is AES-GCM under a pre-shared 32-byte link key: a peer
// that cannot produce an authenticating hello or rekey frame is cut off.
// Task payloads are sealed under whatever binding codec the farm chose —
// Plain on a trusted private link, AES-GCM where the security policy
// demands it — and the epoch lets the workerd hold both sides of a rekey
// hazard window at once (frames sealed under the old binding are still in
// flight when the new one lands).
//
// Failure model: any transport error surfaces from Session.Exec and the
// farm maps it onto its worker-crash contract — the worker's queue
// strands, the fault-tolerance manager recovers the tasks and replacement
// recruitment re-dials. A broken link and a dead machine are the same
// fault, which is what makes remote links a first-class chaos surface
// (Factory.InjectDrop and friends).
package wire

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/security"
	"repro/internal/telemetry"
)

// Frame types of the protocol.
const (
	frameHello      byte = 0x01 // server→client node advertisement
	frameRekey      byte = 0x02 // client→server binding codec install
	frameExec       byte = 0x03 // client→server task envelope
	frameResult     byte = 0x04 // server→client task result or error
	frameExecBatch  byte = 0x05 // client→server multi-task batch envelope
	frameStats      byte = 0x06 // client→server observability scrape request
	frameStatsReply byte = 0x07 // server→client sealed node report
	frameMgmt       byte = 0x08 // client→server sealed management-plane request
	frameMgmtReply  byte = 0x09 // server→client sealed management-plane reply
)

// maxFrame bounds a frame body so a corrupt or hostile length prefix
// cannot make a peer allocate unbounded memory.
const maxFrame = 16 << 20

// Frame layout: uint32 big-endian length, then one type byte, then the
// body; length counts the type byte and the body. Truncations and
// oversized lengths come back as errors, never panics or huge allocations.
var (
	errFrameTooLarge = errors.New("wire: frame exceeds size limit")
	errFrameEmpty    = errors.New("wire: zero-length frame")
)

// writeFrame writes one frame. Callers serialize access to w.
func writeFrame(w io.Writer, typ byte, body []byte) error {
	if len(body)+1 > maxFrame {
		return errFrameTooLarge
	}
	buf := make([]byte, 5+len(body))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(body)+1))
	buf[4] = typ
	copy(buf[5:], body)
	_, err := w.Write(buf)
	return err
}

// readFrame reads one frame. Callers serialize access to r.
func readFrame(r io.Reader) (typ byte, body []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n == 0 {
		return 0, nil, errFrameEmpty
	}
	if n > maxFrame {
		return 0, nil, errFrameTooLarge
	}
	if _, err := io.ReadFull(r, hdr[4:5]); err != nil {
		return 0, nil, err
	}
	body = make([]byte, n-1)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return hdr[4], body, nil
}

// Hello is the node advertisement a workerd sends on every new connection,
// sealed under the link's master codec: authenticating it doubles as the
// peer authentication of the handshake. The coordinator turns it into a
// grid.Node (labels included), so remote capacity is recruited through the
// same resource manager as simulated capacity.
type Hello struct {
	Name    string            `json:"name"`
	Domain  string            `json:"domain"`
	Trusted bool              `json:"trusted"`
	Cores   int               `json:"cores"`
	Speed   float64           `json:"speed"`
	Labels  map[string]string `json:"labels,omitempty"`
}

// sealHello encodes and seals a hello under the master codec.
func sealHello(master security.Codec, h Hello) ([]byte, error) {
	plain, err := json.Marshal(h)
	if err != nil {
		return nil, err
	}
	return master.Encode(plain)
}

// openHello authenticates and decodes a hello frame body.
func openHello(master security.Codec, body []byte) (Hello, error) {
	plain, err := master.Decode(body)
	if err != nil {
		return Hello{}, fmt.Errorf("wire: hello did not authenticate: %w", err)
	}
	var h Hello
	if err := json.Unmarshal(plain, &h); err != nil {
		return Hello{}, fmt.Errorf("wire: malformed hello: %w", err)
	}
	if h.Name == "" {
		return Hello{}, errors.New("wire: hello without node name")
	}
	return h, nil
}

// Codec wire names a rekey frame may carry.
const (
	codecPlain  = "plain"
	codecAESGCM = "aes-gcm"
)

// rekeyBody encodes epoch + codec for a rekey frame (pre-seal):
// uint32 epoch | uint8 len(name) | name | key.
func rekeyBody(epoch uint32, name string, key []byte) ([]byte, error) {
	if len(name) > 255 {
		return nil, fmt.Errorf("wire: codec name %q too long", name)
	}
	body := make([]byte, 0, 5+len(name)+len(key))
	body = binary.BigEndian.AppendUint32(body, epoch)
	body = append(body, byte(len(name)))
	body = append(body, name...)
	body = append(body, key...)
	return body, nil
}

// parseRekey decodes a rekey frame body (post-open) into a codec.
func parseRekey(plain []byte) (epoch uint32, c security.Codec, err error) {
	if len(plain) < 5 {
		return 0, nil, errors.New("wire: short rekey frame")
	}
	epoch = binary.BigEndian.Uint32(plain[:4])
	nameLen := int(plain[4])
	if len(plain) < 5+nameLen {
		return 0, nil, errors.New("wire: short rekey frame")
	}
	name := string(plain[5 : 5+nameLen])
	key := plain[5+nameLen:]
	switch name {
	case codecPlain:
		return epoch, security.Plain{}, nil
	case codecAESGCM:
		codec, err := security.NewAESGCM(append([]byte(nil), key...), nil, 0)
		if err != nil {
			return 0, nil, fmt.Errorf("wire: rekey: %w", err)
		}
		return epoch, codec, nil
	default:
		return 0, nil, fmt.Errorf("wire: rekey names unknown codec %q", name)
	}
}

// transportable extracts the wire name and key material of a binding
// codec. Only the codecs of internal/security travel; anything else is
// refused before a frame is written, so a misconfigured binding fails
// loudly at rekey time instead of silently downgrading on the wire.
func transportable(c security.Codec) (name string, key []byte, err error) {
	switch cc := c.(type) {
	case security.Plain:
		return codecPlain, nil, nil
	case *security.Plain:
		return codecPlain, nil, nil
	case *security.AESGCM:
		return codecAESGCM, cc.Key(), nil
	default:
		return "", nil, fmt.Errorf("wire: codec %q cannot cross the wire", c.Name())
	}
}

// execBody encodes an exec frame body:
// uint32 epoch | uint64 taskID | int64 workNanos | trace context | sealed
// payload. The 17-byte trace context (telemetry.TraceContext) travels in
// the frame, not the seal: it carries no payload data, and the workerd
// needs it before any decode to know whether this exec joins a sampled
// trace.
func execBody(epoch uint32, taskID uint64, workNanos int64, tc telemetry.TraceContext, sealed []byte) []byte {
	body := make([]byte, 0, 20+telemetry.TraceContextSize+len(sealed))
	body = binary.BigEndian.AppendUint32(body, epoch)
	body = binary.BigEndian.AppendUint64(body, taskID)
	body = binary.BigEndian.AppendUint64(body, uint64(workNanos))
	body = tc.AppendTo(body)
	return append(body, sealed...)
}

// parseExec decodes an exec frame body.
func parseExec(body []byte) (epoch uint32, taskID uint64, workNanos int64, tc telemetry.TraceContext, sealed []byte, err error) {
	if len(body) < 20+telemetry.TraceContextSize {
		return 0, 0, 0, tc, nil, errors.New("wire: short exec frame")
	}
	epoch = binary.BigEndian.Uint32(body[:4])
	taskID = binary.BigEndian.Uint64(body[4:12])
	workNanos = int64(binary.BigEndian.Uint64(body[12:20]))
	if tc, err = telemetry.ParseTraceContext(body[20:]); err != nil {
		return 0, 0, 0, tc, nil, err
	}
	return epoch, taskID, workNanos, tc, body[20+telemetry.TraceContextSize:], nil
}

// execBatchBody encodes an exec-batch frame body:
// uint32 epoch | uint64 batchID | sealed batch blob. The blob's per-task
// ids, work and payloads are inside the seal (skel's batch blob layout);
// batchID exists only to correlate the result frame, exactly like a task
// id on a single exec.
func execBatchBody(epoch uint32, batchID uint64, sealed []byte) []byte {
	body := make([]byte, 0, 12+len(sealed))
	body = binary.BigEndian.AppendUint32(body, epoch)
	body = binary.BigEndian.AppendUint64(body, batchID)
	return append(body, sealed...)
}

// parseExecBatch decodes an exec-batch frame body.
func parseExecBatch(body []byte) (epoch uint32, batchID uint64, sealed []byte, err error) {
	if len(body) < 12 {
		return 0, 0, nil, errors.New("wire: short exec-batch frame")
	}
	epoch = binary.BigEndian.Uint32(body[:4])
	batchID = binary.BigEndian.Uint64(body[4:12])
	return epoch, batchID, body[12:], nil
}

// Result statuses.
const (
	resultOK  byte = 0
	resultErr byte = 1
)

// resultBody encodes a result frame body:
// uint64 taskID | status | int64 execNanos | sealed result (OK) or error
// text (Err). execNanos is the server-measured execution time of the frame
// (modelled sleep plus worker function), reported in the server's own
// clock: the coordinator subtracts it from its locally measured round trip
// to split wire time from exec time by interval arithmetic — the two
// clocks are never compared directly, so skew cannot corrupt the split.
func resultBody(taskID uint64, status byte, execNanos int64, rest []byte) []byte {
	body := make([]byte, 0, 17+len(rest))
	body = binary.BigEndian.AppendUint64(body, taskID)
	body = append(body, status)
	body = binary.BigEndian.AppendUint64(body, uint64(execNanos))
	return append(body, rest...)
}

// parseResult decodes a result frame body.
func parseResult(body []byte) (taskID uint64, status byte, execNanos int64, rest []byte, err error) {
	if len(body) < 17 {
		return 0, 0, 0, nil, errors.New("wire: short result frame")
	}
	taskID = binary.BigEndian.Uint64(body[:8])
	status = body[8]
	execNanos = int64(binary.BigEndian.Uint64(body[9:17]))
	return taskID, status, execNanos, body[17:], nil
}

// DerivePSK stretches a shared secret string into the 32-byte master key
// both ends of a link need. It exists so operators can hand coordinator and
// workerd the same -psk argument instead of 64 hex digits; the security of
// the link is that of the secret's entropy.
func DerivePSK(secret string) []byte {
	sum := sha256.Sum256([]byte("repro/wire/psk:" + secret))
	return sum[:]
}

// NewMasterCodec builds the link's master codec from the pre-shared key.
// Every control frame (hello, rekey) is sealed under it; a peer without
// the key cannot register capacity or install bindings.
func NewMasterCodec(psk []byte) (security.Codec, error) {
	c, err := security.NewAESGCM(psk, nil, 0)
	if err != nil {
		return nil, fmt.Errorf("wire: master codec: %w", err)
	}
	return c, nil
}

package wire

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/grid"
	"repro/internal/security"
	"repro/internal/skel"
)

// LabelAddr is the node label carrying a workerd's dial address. Its
// presence is what routes the unified dispatch decision path off-process:
// nodes without it stay loopback, so a mixed pool needs no configuration
// beyond registering the remote nodes.
const LabelAddr = "wire/addr"

// Factory dials transport sessions for remote nodes and is the farm's
// skel.ExecutorFactory. It also owns the link's chaos surface: injected
// drops, delays and partitions apply to every session it has dialed.
type Factory struct {
	master  security.Codec
	timeout time.Duration
	faults  *linkFaults
	stats   Stats

	// controls are the long-lived per-address scrape sessions: the
	// /cluster aggregation rides the wire protocol (a control frame over a
	// cached session), not an HTTP fan-out. Redialed lazily on failure.
	// mgmts are the per-address management-plane sessions; unlike scrape
	// sessions they register on the chaos fault surface, because the whole
	// point of the management link is that a partition takes it down.
	mu       sync.Mutex
	controls map[string]*Session
	mgmts    map[string]*Session
}

// NewFactory builds a factory over the link's pre-shared key. timeout
// bounds dialing and the hello exchange (0 means 10s).
func NewFactory(psk []byte, timeout time.Duration) (*Factory, error) {
	master, err := NewMasterCodec(psk)
	if err != nil {
		return nil, err
	}
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &Factory{master: master, timeout: timeout, faults: newLinkFaults()}, nil
}

// Executor implements skel.ExecutorFactory: nodes without a wire/addr
// label run in-process (nil executor, the loopback default); for the rest
// it dials a fresh session per worker.
func (f *Factory) Executor(node *grid.Node) (skel.Executor, error) {
	addr := node.Label(LabelAddr)
	if addr == "" {
		return nil, nil
	}
	s, err := dialSession(addr, f.master, f.timeout, f.faults, &f.stats)
	if err != nil {
		return nil, err
	}
	f.faults.register(s)
	return s, nil
}

// Probe dials addr, authenticates the workerd's hello and returns the
// grid.Node advertised there: domain and trust from the handshake, the
// workerd's labels plus wire/addr so later recruitment knows where to
// dial. The probe connection is closed; worker sessions are dialed
// per-recruitment by Executor.
func (f *Factory) Probe(addr string) (*grid.Node, error) {
	s, err := dialSession(addr, f.master, f.timeout, nil, &f.stats)
	if err != nil {
		return nil, err
	}
	h := s.Hello()
	_ = s.Close()
	return NodeFromHello(addr, h), nil
}

// NodeFromHello builds the grid.Node a hello advertises, tagged with the
// dial address.
func NodeFromHello(addr string, h Hello) *grid.Node {
	labels := map[string]string{LabelAddr: addr}
	for k, v := range h.Labels {
		labels[k] = v
	}
	cores := h.Cores
	if cores < 1 {
		cores = 1
	}
	speed := h.Speed
	if speed <= 0 {
		speed = 1.0
	}
	node := grid.NewNode(h.Name, grid.Domain{Name: h.Domain, Trusted: h.Trusted}, cores, speed)
	node.Labels = labels
	return node
}

// Scrape fetches the workerd node report from addr over the factory's
// cached control session for that address, dialing one on first use (or
// after a failure). The request and reply are control frames sealed under
// the link's master codec. Control sessions deliberately do not register
// on the chaos fault surface: the observability plane reports on faults,
// it is not a victim of the link-drop actuator.
func (f *Factory) Scrape(addr string) ([]byte, error) {
	f.mu.Lock()
	s := f.controls[addr]
	f.mu.Unlock()
	if s == nil || s.closed.Load() {
		fresh, err := dialSession(addr, f.master, f.timeout, nil, &f.stats)
		if err != nil {
			return nil, err
		}
		f.mu.Lock()
		if f.controls == nil {
			f.controls = map[string]*Session{}
		}
		if old := f.controls[addr]; old != nil && old != s {
			// Another scrape redialed concurrently; keep its session.
			f.mu.Unlock()
			_ = fresh.Close()
			return f.Scrape(addr)
		}
		f.controls[addr] = fresh
		f.mu.Unlock()
		s = fresh
	}
	report, err := s.ScrapeStats()
	if err != nil {
		_ = s.Close()
		f.mu.Lock()
		if f.controls[addr] == s {
			delete(f.controls, addr)
		}
		f.mu.Unlock()
		return nil, err
	}
	return report, nil
}

// Mgmt runs one management-plane exchange against addr over the factory's
// cached mgmt session for that address, dialing one on first use or after
// a failure. Mgmt sessions ride the chaos fault surface: an injected
// partition stalls the exchange and a link drop severs it mid-flight, so
// the remote management plane sees exactly the faults the data plane does.
func (f *Factory) Mgmt(addr string, req []byte) ([]byte, error) {
	f.mu.Lock()
	s := f.mgmts[addr]
	f.mu.Unlock()
	if s == nil || s.closed.Load() {
		fresh, err := dialSession(addr, f.master, f.timeout, f.faults, &f.stats)
		if err != nil {
			return nil, err
		}
		f.faults.register(fresh)
		f.mu.Lock()
		if f.mgmts == nil {
			f.mgmts = map[string]*Session{}
		}
		if old := f.mgmts[addr]; old != nil && !old.closed.Load() {
			// Another exchange redialed concurrently; keep its session.
			f.mu.Unlock()
			_ = fresh.Close()
			return f.Mgmt(addr, req)
		}
		f.mgmts[addr] = fresh
		f.mu.Unlock()
		s = fresh
	}
	reply, err := s.Mgmt(req)
	if err != nil {
		_ = s.Close()
		f.mu.Lock()
		if f.mgmts[addr] == s {
			delete(f.mgmts, addr)
		}
		f.mu.Unlock()
		return nil, err
	}
	return reply, nil
}

// CloseControls releases every cached scrape and management session.
func (f *Factory) CloseControls() {
	f.mu.Lock()
	controls := f.controls
	mgmts := f.mgmts
	f.controls = nil
	f.mgmts = nil
	f.mu.Unlock()
	for _, s := range controls {
		_ = s.Close()
	}
	for _, s := range mgmts {
		_ = s.Close()
	}
}

// InjectDrop severs every live session on the link and returns how many
// connections were cut. It is the chaos plane's remote-link drop actuator.
func (f *Factory) InjectDrop() int { return f.faults.dropAll() }

// InjectDelay makes every exec starting within the window pay d extra
// latency.
func (f *Factory) InjectDelay(d, window time.Duration) { f.faults.delay(d, window) }

// InjectPartition stalls the link until the window closes; execs block and
// resume, nothing is lost.
func (f *Factory) InjectPartition(window time.Duration) { f.faults.partition(window) }

// Snapshot returns the factory's transport counters.
func (f *Factory) Snapshot() StatsSnapshot { return f.stats.snapshot(f.faults.drops.Load()) }

// String identifies the factory in logs.
func (f *Factory) String() string { return fmt.Sprintf("wire.Factory(timeout=%s)", f.timeout) }

package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/runtime/leaktest"
	"repro/internal/security"
	"repro/internal/skel"
	"repro/internal/skel/skeltest"
	"repro/internal/telemetry"
)

// noTrace is the zero trace context: the unsampled common case on the wire.
var noTrace telemetry.TraceContext

func testPSK() []byte { return bytes.Repeat([]byte{0x42}, 32) }

func startServer(t *testing.T, hello Hello, fn WorkerFn) *Server {
	t.Helper()
	srv, err := NewServer(ServerConfig{PSK: testPSK(), Hello: hello, Fn: fn})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func edgeHello(name string) Hello {
	return Hello{
		Name: name, Domain: "edge.remote", Trusted: true,
		Cores: 1, Speed: 1.0, Labels: map[string]string{"zone": "edge"},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	body := bytes.Repeat([]byte("frame"), 100)
	if err := writeFrame(&buf, frameExec, body); err != nil {
		t.Fatal(err)
	}
	wireBytes := append([]byte(nil), buf.Bytes()...)
	typ, got, err := readFrame(&buf)
	if err != nil || typ != frameExec || !bytes.Equal(got, body) {
		t.Fatalf("roundtrip: typ=%#x err=%v", typ, err)
	}
	// Every truncation must error, never panic or block on a short reader.
	for cut := 0; cut < len(wireBytes); cut++ {
		if _, _, err := readFrame(bytes.NewReader(wireBytes[:cut])); err == nil {
			t.Fatalf("readFrame accepted a %d/%d-byte truncation", cut, len(wireBytes))
		}
	}
	// A hostile length prefix must be refused before allocation.
	huge := []byte{0xff, 0xff, 0xff, 0xff, frameExec}
	if _, _, err := readFrame(bytes.NewReader(huge)); err != errFrameTooLarge {
		t.Fatalf("oversized frame: %v", err)
	}
}

func TestSessionRekeyAndExec(t *testing.T) {
	srv := startServer(t, edgeHello("edge0"), func(p []byte) []byte {
		return append(p, []byte("+fn")...)
	})
	f, err := NewFactory(testPSK(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	node := NodeFromHello(srv.Addr(), edgeHello("edge0"))
	node.Allocate()
	defer node.Release()
	exec, err := f.Executor(node)
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()

	// Epoch 0 is Plain on both ends: an exec before any rekey works.
	plainCodec := security.Plain{}
	sealed, _ := plainCodec.Encode([]byte("hello"))
	res, _, err := exec.Exec(noTrace, 1, 0, plainCodec, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := plainCodec.Decode(res); string(got) != "hello+fn" {
		t.Fatalf("epoch-0 exec: %q", got)
	}

	// Rekey installs an AES-GCM binding; the returned wrapper must seal
	// and open locally too (it is a full security.Codec).
	inner := security.MustAESGCM(security.NewRandomKey(), nil, 0)
	bound, err := exec.Rekey(inner)
	if err != nil {
		t.Fatal(err)
	}
	if !bound.Secure() || bound.Name() != "aes-gcm" {
		t.Fatalf("wrapper: name=%s secure=%v", bound.Name(), bound.Secure())
	}
	sealed, err = bound.Encode([]byte("secret payload"))
	if err != nil {
		t.Fatal(err)
	}
	res, _, err = exec.Exec(noTrace, 2, 0, bound, sealed)
	if err != nil {
		t.Fatal(err)
	}
	got, err := bound.Decode(res)
	if err != nil || string(got) != "secret payload+fn" {
		t.Fatalf("sealed exec: %q err=%v", got, err)
	}

	// A foreign codec — an envelope restored from another worker's queue —
	// is opened locally and resealed under this session's binding.
	other := security.MustAESGCM(security.NewRandomKey(), nil, 0)
	foreign, err := other.Encode([]byte("migrated"))
	if err != nil {
		t.Fatal(err)
	}
	res, _, err = exec.Exec(noTrace, 3, 0, other, foreign)
	if err != nil {
		t.Fatal(err)
	}
	// The session resealed for transit, but the result comes back under
	// the codec the envelope was sealed with — the caller's decode works.
	if got, err := other.Decode(res); err != nil || string(got) != "migrated+fn" {
		t.Fatalf("foreign reseal: %q err=%v", got, err)
	}
	if srv.Served() != 3 {
		t.Fatalf("server served %d tasks, want 3", srv.Served())
	}
}

func TestServerRejectsUnauthenticatedPeer(t *testing.T) {
	srv := startServer(t, edgeHello("edge0"), nil)
	// A peer with the wrong PSK reads a hello it cannot authenticate.
	if _, err := NewFactory(bytes.Repeat([]byte{0x13}, 32), time.Second); err != nil {
		t.Fatal(err)
	}
	wrong, _ := NewFactory(bytes.Repeat([]byte{0x13}, 32), time.Second)
	if _, err := wrong.Probe(srv.Addr()); err == nil {
		t.Fatal("probe with wrong PSK succeeded")
	}
	// A rekey frame sealed under the wrong key must cut the connection.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, _, err := readFrame(conn); err != nil { // server hello
		t.Fatal(err)
	}
	bogus := security.MustAESGCM(bytes.Repeat([]byte{0x13}, 32), nil, 0)
	body, _ := rekeyBody(1, codecAESGCM, security.NewRandomKey())
	sealed, _ := bogus.Encode(body)
	if err := writeFrame(conn, frameRekey, sealed); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := readFrame(conn); err == nil {
		t.Fatal("server kept talking after an unauthenticated rekey")
	}
	if srv.Rejected() == 0 {
		t.Fatal("rejected counter did not move")
	}
}

func TestProbeRegistersAdvertisedNode(t *testing.T) {
	hello := Hello{
		Name: "edge7", Domain: "untrusted_ip_domain_A", Trusted: false,
		Cores: 2, Speed: 1.5, Labels: map[string]string{"zone": "edge", "arch": "arm64"},
	}
	srv := startServer(t, hello, nil)
	f, _ := NewFactory(testPSK(), 5*time.Second)
	node, err := f.Probe(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if node.ID != "edge7" || node.Domain.Trusted || node.Domain.Name != "untrusted_ip_domain_A" {
		t.Fatalf("node identity: %+v", node)
	}
	if node.Cores != 2 || node.Speed != 1.5 {
		t.Fatalf("node capacity: %+v", node)
	}
	if node.Label(LabelAddr) != srv.Addr() || node.Label("arch") != "arm64" {
		t.Fatalf("node labels: %v", node.Labels)
	}
	// The advertisement makes the node recruitable by label.
	if !node.HasLabels(map[string]string{"zone": "edge"}) {
		t.Fatal("label subset match failed")
	}
}

// sniffer is a TCP proxy recording every byte of both directions — the
// raw-conn observer of the no-plaintext assertion.
type sniffer struct {
	l net.Listener

	mu  sync.Mutex
	buf bytes.Buffer
}

func newSniffer(t *testing.T, backend string) *sniffer {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sn := &sniffer{l: l}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			client, err := l.Accept()
			if err != nil {
				return
			}
			server, err := net.Dial("tcp", backend)
			if err != nil {
				client.Close()
				continue
			}
			pipe := func(dst, src net.Conn) {
				defer dst.Close()
				defer src.Close()
				buf := make([]byte, 4096)
				for {
					n, err := src.Read(buf)
					if n > 0 {
						sn.mu.Lock()
						sn.buf.Write(buf[:n])
						sn.mu.Unlock()
						if _, werr := dst.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}
			go pipe(server, client)
			go pipe(client, server)
		}
	}()
	return sn
}

func (sn *sniffer) addr() string { return sn.l.Addr().String() }

func (sn *sniffer) contains(needle []byte) bool {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return bytes.Contains(sn.buf.Bytes(), needle)
}

func (sn *sniffer) observed() int {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return sn.buf.Len()
}

// TestNoPlaintextOnTheWire is the acceptance check of the dispatch plane's
// security story: a farm dispatches tasks to a remote worker whose binding
// the two-phase protocol secured before it became dispatchable, a proxy
// sniffs the raw TCP connection, and no task payload — nor the binding
// key — ever appears in the captured bytes.
func TestNoPlaintextOnTheWire(t *testing.T) {
	srv := startServer(t, edgeHello("edge0"), func(p []byte) []byte {
		return append([]byte("done:"), p...)
	})
	sniff := newSniffer(t, srv.Addr())

	factory, err := NewFactory(testPSK(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	local := grid.NewNode("local0", grid.Domain{Name: "trusted.local", Trusted: true}, 4, 1.0)
	remote := NodeFromHello(sniff.addr(), edgeHello("edge0"))
	rm := grid.NewResourceManager(remote, local)

	farm, err := skel.NewFarm(skel.FarmConfig{
		Name:           "sniffed",
		Env:            skel.Env{TimeScale: 1000},
		RM:             rm,
		InitialWorkers: 1,
		Executors:      factory.Executor,
		// Pin every task to the remote zone: the loopback worker Run adds
		// is never admitted, so all payloads cross the sniffed wire.
		Selector: skel.Selector{Labels: map[string]string{"zone": "edge"}},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Two-phase add: the binding is sealed before the worker can receive a
	// task, so not even the first payload crosses in clear.
	key := security.NewRandomKey()
	if _, err := farm.AddWorkerWithPrepare(func(id string, node *grid.Node, setCodec func(security.Codec)) error {
		setCodec(security.MustAESGCM(key, nil, 0))
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	const total = 32
	in := make(chan *skel.Task, total)
	out := make(chan *skel.Task, total)
	payloads := make([][]byte, total)
	for i := range payloads {
		payloads[i] = fmt.Appendf(nil, "SECRET-payload-%04d-do-not-leak", i)
		in <- &skel.Task{ID: skel.NextTaskID(), Payload: payloads[i]}
	}
	close(in)
	farm.Run(nil, in, out)

	n := 0
	for res := range out {
		if !bytes.HasPrefix(res.Payload, []byte("done:SECRET-payload-")) {
			t.Fatalf("mangled result %q", res.Payload)
		}
		n++
	}
	if n != total {
		t.Fatalf("%d results, want %d", n, total)
	}
	if srv.Served() != total {
		t.Fatalf("workerd served %d tasks, want %d", srv.Served(), total)
	}
	if sniff.observed() == 0 {
		t.Fatal("sniffer saw no traffic — the tasks did not cross the wire")
	}
	for _, p := range payloads {
		if sniff.contains(p) {
			t.Fatalf("payload %q crossed the wire in clear", p)
		}
	}
	if sniff.contains([]byte("done:SECRET")) {
		t.Fatal("result payload crossed the wire in clear")
	}
	if sniff.contains(key) {
		t.Fatal("binding key material crossed the wire in clear")
	}
}

// TestFarmDispatchActuatorStressTCP runs the shared actuator-storm harness
// of internal/skel/skeltest with every worker behind the framed TCP
// transport: add/remove churns real connections, SetCodec hammering ships
// rekey control frames, and Rebalance moves sealed envelopes between
// sessions through the reseal path — exactly-once must survive it all.
func TestFarmDispatchActuatorStressTCP(t *testing.T) {
	defer leaktest.Check(t)()
	var nodes []*grid.Node
	for i := 0; i < 2; i++ {
		hello := edgeHello(fmt.Sprintf("edge%d", i))
		hello.Cores = 8
		srv := startServer(t, hello, nil)
		nodes = append(nodes, NodeFromHello(srv.Addr(), hello))
	}
	factory, err := NewFactory(testPSK(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	skeltest.Stress(t, skel.FarmConfig{
		Name:           "stress-tcp",
		Env:            skel.Env{TimeScale: 1000},
		RM:             grid.NewResourceManager(nodes...),
		InitialWorkers: 4,
		Executors:      factory.Executor,
	}, 400)
	snap := factory.Snapshot()
	if snap.Execs == 0 || snap.Rekeys == 0 || snap.Dials < 4 {
		t.Fatalf("transport was not exercised: %+v", snap)
	}
}

// TestInjectedLinkDropCrashesWorker pins the failure mapping: cutting the
// link mid-run surfaces as an Exec error, which the farm treats as a
// worker crash — stranding the queue for recovery, not dropping tasks.
func TestInjectedLinkDropCrashesWorker(t *testing.T) {
	srv := startServer(t, edgeHello("edge0"), nil)
	factory, err := NewFactory(testPSK(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	node := NodeFromHello(srv.Addr(), edgeHello("edge0"))
	node.Allocate()
	defer node.Release()
	exec, err := factory.Executor(node)
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()
	plain := security.Plain{}
	sealed, _ := plain.Encode([]byte("x"))
	if _, _, err := exec.Exec(noTrace, 1, 0, plain, sealed); err != nil {
		t.Fatal(err)
	}
	if n := factory.InjectDrop(); n != 1 {
		t.Fatalf("dropped %d sessions, want 1", n)
	}
	if _, _, err := exec.Exec(noTrace, 2, 0, plain, sealed); err == nil {
		t.Fatal("exec on a dropped link succeeded")
	}
	// A fresh session dials fine: reconnection is recovery recruitment.
	exec2, err := factory.Executor(node)
	if err != nil {
		t.Fatal(err)
	}
	defer exec2.Close()
	if _, _, err := exec2.Exec(noTrace, 3, 0, plain, sealed); err != nil {
		t.Fatalf("post-drop redial: %v", err)
	}
	if factory.Snapshot().Drops != 1 {
		t.Fatalf("drop counter: %+v", factory.Snapshot())
	}
}

// packTestBatch hand-builds a batch blob byte for byte — independent of the
// skel packer — so this test pins the wire-visible batch format:
// 17-byte trace context; uint32 count;
// count × { uint64 id | uint64 work(ns) | uint32 len | payload }.
func packTestBatch(entries []skel.BatchEntry) []byte {
	blob := noTrace.AppendTo(nil)
	blob = binary.BigEndian.AppendUint32(blob, uint32(len(entries)))
	for _, e := range entries {
		blob = binary.BigEndian.AppendUint64(blob, e.ID)
		blob = binary.BigEndian.AppendUint64(blob, uint64(e.Work))
		blob = binary.BigEndian.AppendUint32(blob, uint32(len(e.Payload)))
		blob = append(blob, e.Payload...)
	}
	return blob
}

// parseTestResults hand-parses a result blob:
// uint32 count; count × { uint64 id | uint32 len | payload }.
func parseTestResults(t *testing.T, blob []byte) []skel.BatchEntry {
	t.Helper()
	if len(blob) < 4 {
		t.Fatalf("result blob too short: %d bytes", len(blob))
	}
	count := int(binary.BigEndian.Uint32(blob))
	off := 4
	out := make([]skel.BatchEntry, 0, count)
	for i := 0; i < count; i++ {
		if len(blob)-off < 12 {
			t.Fatalf("result blob truncated at entry %d", i)
		}
		id := binary.BigEndian.Uint64(blob[off:])
		n := int(binary.BigEndian.Uint32(blob[off+8:]))
		off += 12
		if len(blob)-off < n {
			t.Fatalf("result blob truncated at entry %d payload", i)
		}
		out = append(out, skel.BatchEntry{ID: id, Payload: blob[off : off+n]})
		off += n
	}
	if off != len(blob) {
		t.Fatalf("result blob has %d trailing bytes", len(blob)-off)
	}
	return out
}

// TestSessionExecBatch drives the batch frame end to end at the session
// level: one sealed multi-task blob out, one sealed result blob back, with
// the same epoch resolution, foreign-codec reseal and fail-secure rules as
// single execs.
func TestSessionExecBatch(t *testing.T) {
	srv := startServer(t, edgeHello("edge0"), func(p []byte) []byte {
		return append(p, []byte("+fn")...)
	})
	factory, err := NewFactory(testPSK(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	node := NodeFromHello(srv.Addr(), edgeHello("edge0"))
	node.Allocate()
	defer node.Release()
	exec, err := factory.Executor(node)
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()
	// The farm discovers batch capability through this exact assertion.
	batcher, ok := exec.(skel.BatchExecutor)
	if !ok {
		t.Fatal("wire session does not implement skel.BatchExecutor")
	}
	bound, err := exec.Rekey(security.MustAESGCM(security.NewRandomKey(), nil, 0))
	if err != nil {
		t.Fatal(err)
	}

	blob := packTestBatch([]skel.BatchEntry{
		{ID: 7, Payload: []byte("a")},
		{ID: 8, Payload: []byte("bb")},
		{ID: 9, Payload: nil},
	})
	sealed, err := bound.Encode(blob)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := batcher.ExecBatch(bound, sealed)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := bound.Decode(res)
	if err != nil {
		t.Fatal(err)
	}
	results := parseTestResults(t, plain)
	if len(results) != 3 {
		t.Fatalf("%d results, want 3", len(results))
	}
	wantPayload := []string{"a+fn", "bb+fn", "+fn"}
	for i, want := range []uint64{7, 8, 9} {
		if results[i].ID != want || string(results[i].Payload) != wantPayload[i] {
			t.Fatalf("result %d = {%d %q}", i, results[i].ID, results[i].Payload)
		}
	}
	if srv.Served() != 3 {
		t.Fatalf("server served %d, want 3 (one per batch member)", srv.Served())
	}

	// A batch sealed under a foreign codec — an envelope redistributed from
	// another worker's queue — is resealed for transit and the result comes
	// back under the codec it was sealed with.
	other := security.MustAESGCM(security.NewRandomKey(), nil, 0)
	fblob := packTestBatch([]skel.BatchEntry{{ID: 10, Payload: []byte("moved")}})
	fsealed, err := other.Encode(fblob)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err = batcher.ExecBatch(other, fsealed)
	if err != nil {
		t.Fatal(err)
	}
	fplain, err := other.Decode(res)
	if err != nil {
		t.Fatal(err)
	}
	if fres := parseTestResults(t, fplain); len(fres) != 1 || fres[0].ID != 10 || string(fres[0].Payload) != "moved+fn" {
		t.Fatalf("foreign batch result: %+v", fres)
	}

	// Authenticated garbage: the blob seals fine but is structurally not a
	// batch, so the server must refuse the whole frame — member boundaries
	// it cannot trust must never execute.
	badSealed, err := bound.Encode(append(noTrace.AppendTo(nil), 0x00, 0x00, 0x00, 0x09))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := batcher.ExecBatch(bound, badSealed); err == nil {
		t.Fatal("malformed batch blob executed")
	}
	if srv.Rejected() == 0 {
		t.Fatal("rejected counter did not move for a malformed batch")
	}
}

// TestBatchedNoPlaintextOnTheWire reruns the no-plaintext acceptance check
// with the batched hot path on: coalescing many tasks into one envelope
// must not change the security story — one AES-GCM seal now covers the
// whole batch, and no member payload ever crosses the sniffed link in
// clear, in either direction.
func TestBatchedNoPlaintextOnTheWire(t *testing.T) {
	srv := startServer(t, edgeHello("edge0"), func(p []byte) []byte {
		return append([]byte("done:"), p...)
	})
	sniff := newSniffer(t, srv.Addr())

	factory, err := NewFactory(testPSK(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	local := grid.NewNode("local0", grid.Domain{Name: "trusted.local", Trusted: true}, 4, 1.0)
	remote := NodeFromHello(sniff.addr(), edgeHello("edge0"))
	rm := grid.NewResourceManager(remote, local)

	farm, err := skel.NewFarm(skel.FarmConfig{
		Name:           "sniffed-batched",
		Env:            skel.Env{TimeScale: 1000},
		RM:             rm,
		InitialWorkers: 1,
		Executors:      factory.Executor,
		Selector:       skel.Selector{Labels: map[string]string{"zone": "edge"}},
		DispatchBatch:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	key := security.NewRandomKey()
	if _, err := farm.AddWorkerWithPrepare(func(id string, node *grid.Node, setCodec func(security.Codec)) error {
		setCodec(security.MustAESGCM(key, nil, 0))
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	const total = 32
	in := make(chan *skel.Task, total)
	out := make(chan *skel.Task, total)
	payloads := make([][]byte, total)
	for i := range payloads {
		payloads[i] = fmt.Appendf(nil, "SECRET-batched-%04d-do-not-leak", i)
		in <- &skel.Task{ID: skel.NextTaskID(), Payload: payloads[i]}
	}
	close(in)
	farm.Run(nil, in, out)

	n := 0
	for res := range out {
		if !bytes.HasPrefix(res.Payload, []byte("done:SECRET-batched-")) {
			t.Fatalf("mangled result %q", res.Payload)
		}
		n++
	}
	if n != total {
		t.Fatalf("%d results, want %d", n, total)
	}
	if srv.Served() != total {
		t.Fatalf("workerd served %d tasks, want %d", srv.Served(), total)
	}
	for _, p := range payloads {
		if sniff.contains(p) {
			t.Fatalf("payload %q crossed the wire in clear", p)
		}
	}
	if sniff.contains([]byte("done:SECRET")) {
		t.Fatal("result payload crossed the wire in clear")
	}
	if sniff.contains(key) {
		t.Fatal("binding key material crossed the wire in clear")
	}
}

// TestFarmDispatchActuatorStressTCPBatched runs the actuator storm over the
// framed TCP transport with the batched hot path on: batch frames, rekeys
// racing in-flight batches, and rebalances splitting batches back into
// single envelopes across sessions with different bindings — the
// exactly-once outcome must be identical to the unbatched storm.
func TestFarmDispatchActuatorStressTCPBatched(t *testing.T) {
	defer leaktest.Check(t)()
	var nodes []*grid.Node
	for i := 0; i < 2; i++ {
		hello := edgeHello(fmt.Sprintf("edge%d", i))
		hello.Cores = 8
		srv := startServer(t, hello, nil)
		nodes = append(nodes, NodeFromHello(srv.Addr(), hello))
	}
	factory, err := NewFactory(testPSK(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	skeltest.Stress(t, skel.FarmConfig{
		Name:           "stress-tcp-batched",
		Env:            skel.Env{TimeScale: 1000},
		RM:             grid.NewResourceManager(nodes...),
		InitialWorkers: 4,
		Executors:      factory.Executor,
		DispatchBatch:  8,
	}, 400)
	snap := factory.Snapshot()
	if snap.Execs == 0 || snap.Rekeys == 0 || snap.Dials < 4 {
		t.Fatalf("transport was not exercised: %+v", snap)
	}
}

// TestCrossBindingRedistributionTCP is the TCP face of the cross-binding
// redistribution contract: two remote workers behind separate sniffers hold
// distinct AES-GCM bindings, the stream rekeys and rebalances mid-flight so
// envelopes sealed under one binding execute through the other worker's
// session (the foreign-reseal path), and every task must arrive exactly
// once with zero plaintext on either link. Runs unbatched and batched.
func TestCrossBindingRedistributionTCP(t *testing.T) {
	for _, batch := range []int{0, 8} {
		batch := batch
		name := "unbatched"
		if batch > 1 {
			name = "batched"
		}
		t.Run(name, func(t *testing.T) {
			var sniffs []*sniffer
			var nodes []*grid.Node
			for i := 0; i < 2; i++ {
				hello := edgeHello(fmt.Sprintf("edge%d", i))
				srv := startServer(t, hello, func(p []byte) []byte {
					time.Sleep(200 * time.Microsecond) // let queues build so rebalance moves envelopes
					return append([]byte("done:"), p...)
				})
				sn := newSniffer(t, srv.Addr())
				sniffs = append(sniffs, sn)
				nodes = append(nodes, NodeFromHello(sn.addr(), hello))
			}
			factory, err := NewFactory(testPSK(), 5*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			farm, err := skel.NewFarm(skel.FarmConfig{
				Name:           "xbind-tcp",
				Env:            skel.Env{TimeScale: 1000},
				RM:             grid.NewResourceManager(nodes...),
				InitialWorkers: 0,
				Executors:      factory.Executor,
				Selector:       skel.Selector{Labels: map[string]string{"zone": "edge"}},
				DispatchBatch:  batch,
			})
			if err != nil {
				t.Fatal(err)
			}
			var keys [][]byte
			for i := 0; i < 2; i++ {
				key := security.NewRandomKey()
				keys = append(keys, key)
				if _, err := farm.AddWorkerWithPrepare(func(id string, node *grid.Node, setCodec func(security.Codec)) error {
					setCodec(security.MustAESGCM(key, nil, 0))
					return nil
				}); err != nil {
					t.Fatal(err)
				}
			}

			const total = 48
			in := make(chan *skel.Task, total)
			out := make(chan *skel.Task, total)
			counts := map[uint64]int{}
			collected := make(chan struct{})
			go func() {
				for res := range out {
					if !bytes.HasPrefix(res.Payload, []byte("done:SECRET-xbind-")) {
						t.Errorf("mangled result %q", res.Payload)
					}
					counts[res.ID]++
				}
				close(collected)
			}()
			run := make(chan struct{})
			go func() {
				farm.Run(nil, in, out)
				close(run)
			}()

			payloads := make([][]byte, total)
			feed := func(from, to int) {
				for i := from; i < to; i++ {
					payloads[i] = fmt.Appendf(nil, "SECRET-xbind-%04d-do-not-leak", i)
					in <- &skel.Task{ID: skel.NextTaskID(), Payload: payloads[i]}
				}
			}
			feed(0, total/2)
			// Mid-stream: rekey one binding (new epoch, old envelopes still
			// in flight) and rebalance so queued envelopes cross bindings.
			ws := farm.Workers()
			if len(ws) == 0 {
				t.Fatal("no workers admitted")
			}
			key3 := security.NewRandomKey()
			keys = append(keys, key3)
			if err := farm.SetCodec(ws[0].ID, security.MustAESGCM(key3, nil, 0)); err != nil {
				t.Fatal(err)
			}
			farm.Rebalance()
			feed(total/2, total)
			farm.Rebalance()
			close(in)
			select {
			case <-run:
			case <-time.After(60 * time.Second):
				t.Fatal("farm did not terminate")
			}
			<-collected

			if len(counts) != total {
				t.Fatalf("%d distinct tasks delivered, want %d", len(counts), total)
			}
			for id, n := range counts {
				if n != 1 {
					t.Fatalf("task %d delivered %d times", id, n)
				}
			}
			for si, sn := range sniffs {
				if sn.observed() == 0 {
					t.Fatalf("sniffer %d saw no traffic", si)
				}
				for _, p := range payloads {
					if sn.contains(p) {
						t.Fatalf("payload %q crossed link %d in clear", p, si)
					}
				}
				if sn.contains([]byte("done:SECRET")) {
					t.Fatalf("result payload crossed link %d in clear", si)
				}
				for ki, key := range keys {
					if sn.contains(key) {
						t.Fatalf("binding key %d crossed link %d in clear", ki, si)
					}
				}
			}
		})
	}
}

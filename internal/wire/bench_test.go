package wire

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/security"
)

// The per-transport dispatch benchmarks measure one task round trip
// through the Executor seam — seal, route, execute, unseal — for the two
// transports a worker binding can sit behind: the in-process loopback
// default and a live framed-TCP session to a workerd on localhost. The
// delta between them is the price of crossing the process boundary
// (framing, the wire reseal into the session epoch, kernel round trips on
// a loopback socket); the loopback number is the floor the dispatch
// refactor must not regress.

var benchPayload = make([]byte, 256)

// BenchmarkDispatchLoopback is the in-process path: the envelope is sealed
// with the binding codec and opened right back on the same machine — what
// a farm worker without an Executor does per task (minus the modelled
// sleep, which benchmarks the clock, not the plane).
func BenchmarkDispatchLoopback(b *testing.B) {
	codec := security.MustAESGCM(security.NewRandomKey(), nil, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sealed, err := codec.Encode(benchPayload)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := codec.Decode(sealed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDispatchTCP is the cross-process path: the same sealed envelope
// travels to a workerd over a framed localhost TCP connection and the
// sealed result comes back. TimeScale is zero so the workerd sleeps
// nothing: the measurement is pure transport + crypto.
func BenchmarkDispatchTCP(b *testing.B) {
	srv, err := NewServer(ServerConfig{PSK: testPSK(), Hello: edgeHello("bench0")})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	factory, err := NewFactory(testPSK(), 5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	node := NodeFromHello(srv.Addr(), edgeHello("bench0"))
	node.Allocate()
	defer node.Release()
	exec, err := factory.Executor(node)
	if err != nil {
		b.Fatal(err)
	}
	defer exec.Close()
	codec, err := exec.Rekey(security.MustAESGCM(security.NewRandomKey(), nil, 0))
	if err != nil {
		b.Fatal(err)
	}
	var id atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sealed, err := codec.Encode(benchPayload)
		if err != nil {
			b.Fatal(err)
		}
		res, _, err := exec.Exec(noTrace, id.Add(1), 0, codec, sealed)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := codec.Decode(res); err != nil {
			b.Fatal(err)
		}
	}
}

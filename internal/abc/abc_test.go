package abc

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/rules"
	"repro/internal/security"
	"repro/internal/skel"
)

func fastEnv() skel.Env { return skel.Env{TimeScale: 1000} }

func newRunningFarm(t *testing.T, cores, workers int) (*skel.Farm, chan *skel.Task, func()) {
	t.Helper()
	f, err := skel.NewFarm(skel.FarmConfig{
		Name: "farm", Env: fastEnv(), RM: grid.NewSMP(cores).RM, InitialWorkers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan *skel.Task, 64)
	out := make(chan *skel.Task, 256)
	go func() {
		for range out {
		}
	}()
	done := make(chan struct{})
	go func() { f.Run(context.Background(), in, out); close(done) }()
	deadline := time.Now().Add(5 * time.Second)
	for len(f.Workers()) < workers {
		if time.Now().After(deadline) {
			t.Fatal("farm never started")
		}
		time.Sleep(time.Millisecond)
	}
	return f, in, func() { close(in); <-done }
}

func TestFarmABCBeans(t *testing.T) {
	f, in, stop := newRunningFarm(t, 8, 2)
	defer stop()
	in <- &skel.Task{ID: 1}
	a := NewFarmABC(f, nil)
	beans := a.Beans()
	types := map[string]bool{}
	for _, b := range beans {
		types[b.BeanType()] = true
		if _, ok := b.Field("value"); !ok {
			t.Fatalf("bean %s has no value field", b.BeanType())
		}
	}
	for _, want := range []string{
		rules.BeanArrivalRate, rules.BeanDepartureRate,
		rules.BeanNumWorker, rules.BeanQueueVariance,
	} {
		if !types[want] {
			t.Fatalf("missing bean %s (got %v)", want, types)
		}
	}
	if v, _ := beans[2].Field("value"); v.AsStr() != "2" {
		t.Fatalf("NumWorkerBean = %v, want 2", v)
	}
}

func TestFarmABCExecute(t *testing.T) {
	f, _, stop := newRunningFarm(t, 8, 2)
	defer stop()
	a := NewFarmABC(f, nil)

	detail, err := a.Execute(rules.OpAddExecutor)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(detail, "2->3") {
		t.Fatalf("detail = %q", detail)
	}
	if got := a.Snapshot().ParDegree; got != 3 {
		t.Fatalf("ParDegree = %d", got)
	}

	detail, err = a.Execute(rules.OpRemoveExecutor)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(detail, "3->2") {
		t.Fatalf("detail = %q", detail)
	}

	if _, err := a.Execute(rules.OpBalanceLoad); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Execute("NO_SUCH_OP"); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v", err)
	}
}

func TestFarmABCSnapshotSecurity(t *testing.T) {
	aud := security.NewAuditor()
	aud.RecordSend("w", true, false)
	f, _, stop := newRunningFarm(t, 4, 1)
	defer stop()
	a := NewFarmABC(f, aud)
	if got := a.Snapshot().UnsecuredSends; got != 1 {
		t.Fatalf("UnsecuredSends = %d", got)
	}
}

func TestFarmABCPrepareHook(t *testing.T) {
	f, _, stop := newRunningFarm(t, 8, 1)
	defer stop()
	a := NewFarmABC(f, nil)
	called := false
	a.SetPrepare(func(id string, node *grid.Node, setCodec func(security.Codec)) error {
		called = true
		setCodec(security.MustAESGCM(security.NewRandomKey(), nil, 0))
		return nil
	})
	if _, err := a.Execute(rules.OpAddExecutor); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("prepare hook not invoked")
	}
	secure := 0
	for _, w := range a.Workers() {
		if w.Secure {
			secure++
		}
	}
	if secure != 1 {
		t.Fatalf("secure workers = %d, want 1", secure)
	}
}

func TestSourceABCRateActuators(t *testing.T) {
	src := skel.NewSource("prod", fastEnv(), 10, time.Second, nil)
	a := NewSourceABC(src)
	next := a.IncRate()
	if next >= time.Second {
		t.Fatalf("IncRate did not shrink interval: %v", next)
	}
	slower := a.DecRate()
	if slower <= next {
		t.Fatalf("DecRate did not grow interval: %v", slower)
	}
	if d := a.SetTargetRate(2); d != 500*time.Millisecond {
		t.Fatalf("SetTargetRate(2) = %v", d)
	}
	if d := a.SetTargetRate(0); d != 500*time.Millisecond {
		t.Fatalf("SetTargetRate(0) must not change interval, got %v", d)
	}
	// Floor: cannot go below MinInterval.
	a.MinInterval = 400 * time.Millisecond
	if d := a.SetTargetRate(1e9); d != 400*time.Millisecond {
		t.Fatalf("floor not applied: %v", d)
	}
}

func TestSourceABCExecute(t *testing.T) {
	src := skel.NewSource("prod", fastEnv(), 10, time.Second, nil)
	a := NewSourceABC(src)
	if _, err := a.Execute("INC_RATE"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Execute("DEC_RATE"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Execute("OTHER"); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v", err)
	}
}

func TestSourceABCBeans(t *testing.T) {
	src := skel.NewSource("prod", fastEnv(), 0, 0, nil)
	out := make(chan *skel.Task, 1)
	src.Run(context.Background(), nil, out)
	a := NewSourceABC(src)
	beans := a.Beans()
	if len(beans) != 2 {
		t.Fatalf("beans = %v", beans)
	}
	if v, _ := beans[1].Field("value"); v.AsStr() != "1" {
		t.Fatalf("StreamDoneBean = %v, want 1 (stream ended)", v)
	}
}

func TestSeqAndSinkABC(t *testing.T) {
	node := grid.NewNode("n", grid.Domain{Trusted: true}, 1, 1)
	seq := skel.NewSeq("s", fastEnv(), node, nil)
	sa := NewSeqABC(seq)
	if len(sa.Beans()) != 1 || sa.Snapshot().ParDegree != 1 {
		t.Fatal("SeqABC sensors wrong")
	}
	if _, err := sa.Execute("ANY"); !errors.Is(err, ErrUnsupported) {
		t.Fatal("SeqABC must not support actuators")
	}
	sink := skel.NewSink("k", fastEnv(), nil)
	ka := NewSinkABC(sink)
	if len(ka.Beans()) != 1 {
		t.Fatal("SinkABC sensors wrong")
	}
	if _, err := ka.Execute("ANY"); !errors.Is(err, ErrUnsupported) {
		t.Fatal("SinkABC must not support actuators")
	}
}

func TestPipeABCSnapshot(t *testing.T) {
	src := skel.NewSource("p", fastEnv(), 0, 0, nil)
	sink := skel.NewSink("c", fastEnv(), nil)
	// Feed the sink a few tasks so it has a rate history.
	in := make(chan *skel.Task, 3)
	for i := 0; i < 3; i++ {
		in <- &skel.Task{ID: uint64(i + 1)}
	}
	close(in)
	sink.Run(context.Background(), in, nil)
	p := NewPipeABC(NewSourceABC(src), NewSinkABC(sink))
	s := p.Snapshot()
	if s.Throughput <= 0 {
		t.Fatalf("pipe throughput = %v, want >0", s.Throughput)
	}
	if len(p.Beans()) != 3 {
		t.Fatalf("pipe beans = %d, want 3 (2 source + 1 sink)", len(p.Beans()))
	}
	if _, err := p.Execute("ANY"); !errors.Is(err, ErrUnsupported) {
		t.Fatal("PipeABC must not support actuators")
	}
}

func TestPipeABCNilMonitors(t *testing.T) {
	p := NewPipeABC(nil, nil)
	if len(p.Beans()) != 0 {
		t.Fatal("nil monitors must yield no beans")
	}
	if s := p.Snapshot(); s.Throughput != 0 {
		t.Fatalf("snapshot = %+v", s)
	}
}

package abc

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/contract"
	"repro/internal/rules"
	"repro/internal/runtime"
)

// scriptedController fails Execute a configurable number of times, then
// succeeds; it can also block to exercise the deadline. calls is atomic
// because a timed-out Execute keeps running on the guard's abandoned
// goroutine while the test reads the count.
type scriptedController struct {
	failures int64
	err      error
	block    time.Duration
	calls    atomic.Int64
}

func (s *scriptedController) Beans() []rules.Bean         { return nil }
func (s *scriptedController) Snapshot() contract.Snapshot { return contract.Snapshot{} }
func (s *scriptedController) Execute(op string) (string, error) {
	n := s.calls.Add(1)
	if s.block > 0 {
		time.Sleep(s.block)
	}
	if n <= s.failures {
		return "", s.err
	}
	return "ok:" + op, nil
}

func fastBackoff() runtime.Backoff {
	return runtime.Backoff{Base: time.Microsecond, Max: time.Millisecond,
		Jitter: -1, Attempts: 3}
}

func TestGuardRetriesTransientFailures(t *testing.T) {
	inner := &scriptedController{failures: 2, err: errors.New("transient wobble")}
	g := NewGuard(inner, GuardConfig{Backoff: fastBackoff()})
	detail, err := g.Execute("OP")
	if err != nil {
		t.Fatalf("Execute = %v, want success after retries", err)
	}
	if detail != "ok:OP" {
		t.Fatalf("detail = %q", detail)
	}
	if inner.calls.Load() != 3 {
		t.Fatalf("inner called %d times, want 3", inner.calls.Load())
	}
	if g.Retries() != 2 {
		t.Fatalf("Retries = %d, want 2", g.Retries())
	}
	if g.Failures() != 0 {
		t.Fatalf("Failures = %d after a success", g.Failures())
	}
}

func TestGuardCountsFinalFailure(t *testing.T) {
	inner := &scriptedController{failures: 99, err: errors.New("still down")}
	g := NewGuard(inner, GuardConfig{Backoff: fastBackoff()})
	if _, err := g.Execute("OP"); err == nil {
		t.Fatal("Execute succeeded against a permanently failing inner")
	}
	if inner.calls.Load() != 3 {
		t.Fatalf("inner called %d times, want the full retry budget of 3", inner.calls.Load())
	}
	if g.Failures() != 1 {
		t.Fatalf("Failures = %d, want 1", g.Failures())
	}
}

func TestGuardPermanentErrorFailsFast(t *testing.T) {
	inner := &scriptedController{failures: 99, err: ErrUnsupported}
	g := NewGuard(inner, GuardConfig{Backoff: fastBackoff()})
	if _, err := g.Execute("OP"); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("Execute = %v, want ErrUnsupported", err)
	}
	if inner.calls.Load() != 1 {
		t.Fatalf("permanent error retried: %d calls", inner.calls.Load())
	}
}

func TestGuardTimeoutNotRetried(t *testing.T) {
	inner := &scriptedController{block: 200 * time.Millisecond}
	g := NewGuard(inner, GuardConfig{
		Timeout: 5 * time.Millisecond,
		Backoff: fastBackoff(),
	})
	_, err := g.Execute("SLOW")
	if !errors.Is(err, ErrActuatorTimeout) {
		t.Fatalf("Execute = %v, want ErrActuatorTimeout", err)
	}
	// Re-issuing a possibly landed reconfiguration risks doing it twice, so
	// a timeout consumes exactly one attempt.
	if inner.calls.Load() != 1 {
		t.Fatalf("timed-out op retried: %d calls", inner.calls.Load())
	}
	if g.Timeouts() != 1 {
		t.Fatalf("Timeouts = %d, want 1", g.Timeouts())
	}
	if g.Failures() != 1 {
		t.Fatalf("Failures = %d, want 1", g.Failures())
	}
}

func TestGuardDelegatesSensing(t *testing.T) {
	inner := &scriptedController{}
	g := NewGuard(inner, GuardConfig{})
	if g.Inner() != Controller(inner) {
		t.Fatal("Inner() does not return the wrapped controller")
	}
	_ = g.Beans()
	_ = g.Snapshot()
	if cancel := g.OnEdge(func() {}); cancel == nil {
		t.Fatal("OnEdge returned nil cancel for a non-WakeSource inner")
	} else {
		cancel()
	}
}

package abc

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/contract"
	"repro/internal/grid"
	"repro/internal/rules"
	"repro/internal/runtime"
	"repro/internal/simclock"
	"repro/internal/skel"
)

// ErrActuatorTimeout is returned by a Guard when an Execute call exceeds
// its per-operation deadline. A timed-out operation is never retried: the
// mechanism may still land after the deadline, and re-issuing it could
// execute the reconfiguration twice. The manager instead raises the
// violation upward (P_rol) and lets the next control cycle re-sense.
var ErrActuatorTimeout = errors.New("abc: actuator operation timed out")

// ErrManagerDown is returned through the actuator path when a coordinating
// manager required by the operation (the two-phase security participant)
// is down. It is permanent from the Guard's point of view — retrying
// inside one Execute cannot outlast a manager restart; instead the
// coordinator records the aborted intent and re-issues it once the
// participant is back.
var ErrManagerDown = errors.New("abc: coordinating manager is down")

// GuardConfig parameterizes a Guard.
type GuardConfig struct {
	// Clock times the per-operation deadline and the backoff sleeps
	// (default: real time).
	Clock simclock.Clock
	// Timeout is the per-operation deadline; 0 disables the deadline.
	Timeout time.Duration
	// Backoff is the retry policy for transient failures. The zero value
	// uses the runtime package defaults (3 attempts, 10ms base, 1s cap).
	Backoff runtime.Backoff
}

// Guard hardens a Controller's actuator surface: every Execute gets a
// per-operation timeout plus bounded jittered exponential backoff on
// transient failures. Permanent conditions — unsupported operations,
// recruitment exhaustion, the last worker, a finished stream — fail fast,
// and timeouts are never retried (the operation may have landed late;
// re-issuing it would risk a double reconfiguration). Sensing passes
// through untouched.
type Guard struct {
	inner Controller
	cfg   GuardConfig

	failures atomic.Uint64 // Execute calls that ultimately failed
	retries  atomic.Uint64 // extra attempts spent on transient errors
	timeouts atomic.Uint64 // operations that hit the deadline
}

// NewGuard wraps inner. The zero GuardConfig yields retry-only guarding
// with the default backoff and no deadline.
func NewGuard(inner Controller, cfg GuardConfig) *Guard {
	if cfg.Clock == nil {
		cfg.Clock = simclock.NewReal()
	}
	if cfg.Backoff.Clock == nil {
		cfg.Backoff.Clock = cfg.Clock
	}
	return &Guard{inner: inner, cfg: cfg}
}

// Inner returns the wrapped controller.
func (g *Guard) Inner() Controller { return g.inner }

// Beans implements Monitor by delegation.
func (g *Guard) Beans() []rules.Bean { return g.inner.Beans() }

// Snapshot implements Monitor by delegation.
func (g *Guard) Snapshot() contract.Snapshot { return g.inner.Snapshot() }

// OnEdge implements WakeSource when the wrapped controller does; otherwise
// it registers nothing and returns a no-op cancel.
func (g *Guard) OnEdge(fn func()) (cancel func()) {
	if ws, ok := g.inner.(WakeSource); ok {
		return ws.OnEdge(fn)
	}
	return func() {}
}

// Failures returns how many guarded Execute calls ultimately failed.
func (g *Guard) Failures() uint64 { return g.failures.Load() }

// Retries returns how many extra attempts the guard spent on transient
// actuator errors.
func (g *Guard) Retries() uint64 { return g.retries.Load() }

// Timeouts returns how many operations exceeded the per-op deadline.
func (g *Guard) Timeouts() uint64 { return g.timeouts.Load() }

// permanentExecErr reports errors that retrying cannot fix.
func permanentExecErr(err error) bool {
	return errors.Is(err, ErrUnsupported) ||
		errors.Is(err, ErrActuatorTimeout) ||
		errors.Is(err, ErrManagerDown) ||
		errors.Is(err, grid.ErrExhausted) ||
		errors.Is(err, skel.ErrLastWorker) ||
		errors.Is(err, skel.ErrNoWorker) ||
		errors.Is(err, skel.ErrStreamEnded)
}

// Execute implements Controller: the wrapped Execute under deadline and
// retry policy.
func (g *Guard) Execute(op string) (string, error) {
	var detail string
	attempt := func() error {
		d, err := g.executeOnce(op)
		if err == nil {
			detail = d
		}
		return err
	}
	first := true
	err := runtime.Retry(context.Background(), g.cfg.Backoff, func() error {
		if !first {
			g.retries.Add(1)
		}
		first = false
		return attempt()
	}, permanentExecErr)
	if err != nil {
		g.failures.Add(1)
		return "", err
	}
	return detail, nil
}

// executeOnce runs one attempt under the per-op deadline. On timeout the
// attempt's goroutine is left to finish in the background; its eventual
// result is discarded.
func (g *Guard) executeOnce(op string) (string, error) {
	if g.cfg.Timeout <= 0 {
		return g.inner.Execute(op)
	}
	type result struct {
		detail string
		err    error
	}
	done := make(chan result, 1)
	go func() {
		d, err := g.inner.Execute(op)
		done <- result{d, err}
	}()
	select {
	case r := <-done:
		return r.detail, r.err
	case <-g.cfg.Clock.After(g.cfg.Timeout):
		g.timeouts.Add(1)
		return "", fmt.Errorf("%w: %s after %v", ErrActuatorTimeout, op, g.cfg.Timeout)
	}
}

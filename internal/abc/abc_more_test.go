package abc

import (
	"context"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/security"
	"repro/internal/skel"
)

func TestFarmABCAccessorsAndSecureBinding(t *testing.T) {
	f, in, stop := newRunningFarm(t, 4, 1)
	defer stop()
	a := NewFarmABC(f, nil)
	if a.Farm() != f {
		t.Fatal("Farm accessor broken")
	}
	if a.Stats().Workers != 1 {
		t.Fatalf("Stats.Workers = %d", a.Stats().Workers)
	}
	id := a.Workers()[0].ID
	if err := a.SecureBinding(id, security.MustAESGCM(security.NewRandomKey(), nil, 0)); err != nil {
		t.Fatal(err)
	}
	if !a.Workers()[0].Secure {
		t.Fatal("binding not secured")
	}
	if err := a.SecureBinding("nope", security.Plain{}); err == nil {
		t.Fatal("unknown binding accepted")
	}
	in <- &skel.Task{ID: 1}
}

func TestSourceABCAccessorAndStepDefault(t *testing.T) {
	src := skel.NewSource("p", fastEnv(), 1, time.Second, nil)
	a := NewSourceABC(src)
	if a.Source() != src {
		t.Fatal("Source accessor broken")
	}
	a.Step = 0.5 // invalid: must fall back to 1.5
	next := a.IncRate()
	want := time.Second / 3 * 2 // 1s / 1.5, truncated as IncRate computes it
	if next != want {
		t.Fatalf("step fallback broken: %v, want %v", next, want)
	}
	// DecRate from a zero interval starts from MinInterval.
	src.SetInterval(0)
	if d := a.DecRate(); d <= 0 {
		t.Fatalf("DecRate from zero interval = %v", d)
	}
}

func TestFarmABCExecuteErrors(t *testing.T) {
	// A farm with an exhausted platform: ADD_EXECUTOR must surface the
	// recruitment error.
	f, err := skel.NewFarm(skel.FarmConfig{
		Name: "tiny", Env: fastEnv(), RM: grid.NewSMP(1).RM, InitialWorkers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan *skel.Task)
	out := make(chan *skel.Task, 4)
	go func() {
		for range out {
		}
	}()
	done := make(chan struct{})
	go func() { f.Run(context.Background(), in, out); close(done) }()
	deadline := time.Now().Add(5 * time.Second)
	for len(f.Workers()) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("farm never started")
		}
		time.Sleep(time.Millisecond)
	}
	a := NewFarmABC(f, nil)
	if _, err := a.Execute("ADD_EXECUTOR"); err == nil {
		t.Fatal("exhausted platform add accepted")
	}
	if _, err := a.Execute("REMOVE_EXECUTOR"); err == nil {
		t.Fatal("removing the last worker accepted")
	}
	close(in)
	<-done
}

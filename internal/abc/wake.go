package abc

// WakeSource is implemented by controllers whose underlying skeleton can
// report lifecycle edges — worker crashes, end of stream — as they happen.
// A manager subscribed to the edge wakes its MAPE loop immediately instead
// of waiting for the next control-period tick, cutting reaction latency
// from O(period) to O(ms). The periodic tick stays in place as a heartbeat
// fallback, so a lost edge degrades to poll latency rather than a hang.
//
// Edges are deliberately sparse: skeletons fire them on *external* events
// (a crash, the stream draining) and never on reconfigurations the manager
// itself commanded, which would echo every actuation back into the analyse
// phase.
type WakeSource interface {
	// OnEdge registers fn to run on every edge. fn must be non-blocking
	// and safe to call from the skeleton's goroutines. The returned cancel
	// removes the subscription.
	OnEdge(fn func()) (cancel func())
}

// OnEdge implements WakeSource: the farm's edges are worker crashes and
// end of input.
func (a *FarmABC) OnEdge(fn func()) (cancel func()) { return a.farm.OnEvent(fn) }

// OnEdge implements WakeSource: the source's edge is end of emission.
func (a *SourceABC) OnEdge(fn func()) (cancel func()) { return a.src.OnEvent(fn) }

// OnEdge implements WakeSource: the sink's edge is stream completion.
func (a *SinkABC) OnEdge(fn func()) (cancel func()) { return a.sink.OnEvent(fn) }

// OnEdge implements WakeSource by subscribing to whichever of the
// pipeline's end monitors expose edges; the combined cancel removes both.
func (a *PipeABC) OnEdge(fn func()) (cancel func()) {
	var cancels []func()
	if ws, ok := a.head.(WakeSource); ok {
		cancels = append(cancels, ws.OnEdge(fn))
	}
	if a.tail != a.head {
		if ws, ok := a.tail.(WakeSource); ok {
			cancels = append(cancels, ws.OnEdge(fn))
		}
	}
	return func() {
		for _, c := range cancels {
			c()
		}
	}
}

// Package abc implements the Autonomic Behaviour Controller of the GCM
// behavioural skeleton (Fig. 2, left): the passive part of autonomic
// management. It provides, for each skeleton kind, the monitoring side —
// sensor beans for the rule engine and contract snapshots for the analyse
// phase — and the actuator side — the mechanisms (add/remove executor,
// balance load, throttle emission, secure a binding) that the manager's
// policies invoke. Policies live in internal/manager; this package is
// mechanism only, which is exactly the policy/mechanism split the paper
// uses to solve P_rol.
package abc

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/contract"
	"repro/internal/metrics"
	"repro/internal/rules"
	"repro/internal/security"
	"repro/internal/skel"
)

// Monitor is the sensor side of an ABC.
type Monitor interface {
	// Beans publishes the current sensor readings as rule-engine facts.
	Beans() []rules.Bean
	// Snapshot publishes the current state in contract-checkable form.
	Snapshot() contract.Snapshot
}

// Controller is a full ABC: sensors plus a named actuator surface.
type Controller interface {
	Monitor
	// Execute performs the named mechanism (rules.Op* constants). The
	// detail string is returned for tracing.
	Execute(op string) (detail string, err error)
}

// ErrUnsupported is returned by Execute for operations the skeleton kind
// does not implement.
var ErrUnsupported = errors.New("abc: operation not supported by this skeleton")

// FarmABC is the ABC of a task-farm behavioural skeleton.
type FarmABC struct {
	farm    *skel.Farm
	auditor *security.Auditor
	prepare skel.PrepareFunc
	// actuator, when set, observes the wall-clock round-trip of every
	// Execute call (recruitment, handshake, rebalance — the full mechanism
	// latency a manager decision pays).
	actuator *metrics.Histogram
	// execFault, when non-nil, may veto an Execute call with an error —
	// the chaos plane's injection point for failing or slow actuators.
	// Execute is the control path, but the hook is nil-gated anyway.
	execFault atomic.Pointer[func(op string) error]
}

// SetExecuteFault installs (or, with nil, removes) a hook consulted at the
// top of every Execute call; a non-nil error from the hook fails the call.
func (a *FarmABC) SetExecuteFault(fn func(op string) error) {
	if fn == nil {
		a.execFault.Store(nil)
		return
	}
	a.execFault.Store(&fn)
}

// NewFarmABC wraps a farm. auditor may be nil when no security concern is
// active.
func NewFarmABC(farm *skel.Farm, auditor *security.Auditor) *FarmABC {
	return &FarmABC{farm: farm, auditor: auditor}
}

// SetPrepare installs the preparation hook run before every new worker
// becomes dispatchable (the two-phase protocol entry point; see
// internal/manager.GeneralManager).
func (a *FarmABC) SetPrepare(p skel.PrepareFunc) { a.prepare = p }

// Prepare returns the installed preparation hook (nil when uncoordinated),
// letting out-of-band recruitment paths — the fault-tolerance manager's
// recovery and replacement — honor the same two-phase protocol as
// ADD_EXECUTOR.
func (a *FarmABC) Prepare() skel.PrepareFunc { return a.prepare }

// Farm returns the underlying skeleton.
func (a *FarmABC) Farm() *skel.Farm { return a.farm }

// Beans implements Monitor with the four sensors of the Fig. 5 rule file.
func (a *FarmABC) Beans() []rules.Bean {
	st := a.farm.Stats()
	return []rules.Bean{
		rules.NewBean(rules.BeanArrivalRate, rules.Num(st.ArrivalRate)),
		rules.NewBean(rules.BeanDepartureRate, rules.Num(st.DepartureRate)),
		rules.NewBean(rules.BeanNumWorker, rules.Num(float64(st.Workers))),
		rules.NewBean(rules.BeanQueueVariance, rules.Num(st.QueueVariance)),
	}
}

// Snapshot implements Monitor.
func (a *FarmABC) Snapshot() contract.Snapshot {
	st := a.farm.Stats()
	s := contract.Snapshot{
		Throughput:    st.DepartureRate,
		ArrivalRate:   st.ArrivalRate,
		ParDegree:     st.Workers,
		QueueVariance: st.QueueVariance,
		ErrorsDropped: st.ErrorsDropped,
		StreamDone:    st.InputDone,
	}
	if a.auditor != nil {
		s.UnsecuredSends = a.auditor.Leaks()
	}
	return s
}

// Stats exposes the raw farm statistics (used by experiment harnesses).
func (a *FarmABC) Stats() skel.FarmStats { return a.farm.Stats() }

// Workers exposes the worker pool (used by the security manager).
func (a *FarmABC) Workers() []skel.WorkerInfo { return a.farm.Workers() }

// SecureBinding rebinds one worker connection onto the given codec.
func (a *FarmABC) SecureBinding(workerID string, c security.Codec) error {
	return a.farm.SetCodec(workerID, c)
}

// SetActuatorHistogram attaches a latency histogram observing every
// Execute round-trip; nil disables observation (the default).
func (a *FarmABC) SetActuatorHistogram(h *metrics.Histogram) { a.actuator = h }

// ActuatorHistogram returns the attached actuator histogram (may be nil).
func (a *FarmABC) ActuatorHistogram() *metrics.Histogram { return a.actuator }

// Execute implements Controller.
func (a *FarmABC) Execute(op string) (string, error) {
	if a.actuator != nil {
		start := time.Now()
		defer func() { a.actuator.ObserveDuration(time.Since(start)) }()
	}
	if fp := a.execFault.Load(); fp != nil {
		if err := (*fp)(op); err != nil {
			return "", err
		}
	}
	switch op {
	case rules.OpAddExecutor:
		before := a.farm.Stats().Workers
		id, err := a.farm.AddWorkerWithPrepare(a.prepare)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s (%d->%d)", id, before, before+1), nil
	case rules.OpRemoveExecutor:
		before := a.farm.Stats().Workers
		id, err := a.farm.RemoveWorker()
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s (%d->%d)", id, before, before-1), nil
	case rules.OpBalanceLoad:
		a.farm.Rebalance()
		return "queues rebalanced", nil
	default:
		return "", fmt.Errorf("%w: %s", ErrUnsupported, op)
	}
}

// SourceABC is the ABC of a stream source (the Producer stage of Fig. 4).
// Its actuator surface is the emission rate: the incRate / decRate
// contracts of the application manager change the inter-emission interval
// by a multiplicative step.
type SourceABC struct {
	src *skel.Source
	// Step is the multiplicative rate-adjustment factor (default 1.5).
	Step float64
	// MinInterval bounds how fast the source may be driven.
	MinInterval time.Duration
}

// NewSourceABC wraps a source.
func NewSourceABC(src *skel.Source) *SourceABC {
	return &SourceABC{src: src, Step: 1.5, MinInterval: time.Millisecond}
}

// Source returns the underlying stage.
func (a *SourceABC) Source() *skel.Source { return a.src }

// Beans implements Monitor.
func (a *SourceABC) Beans() []rules.Bean {
	doneVal := 0.0
	if a.src.Done() {
		doneVal = 1
	}
	return []rules.Bean{
		rules.NewBean("EmissionRateBean", rules.Num(a.src.Rate())),
		rules.NewBean("StreamDoneBean", rules.Num(doneVal)),
	}
}

// Snapshot implements Monitor: a source's "throughput" is its emission
// rate.
func (a *SourceABC) Snapshot() contract.Snapshot {
	return contract.Snapshot{Throughput: a.src.Rate(), ParDegree: 1, StreamDone: a.src.Done()}
}

// IncRate speeds the source up by one step and returns the new interval.
func (a *SourceABC) IncRate() time.Duration {
	cur := a.src.Interval()
	next := time.Duration(float64(cur) / a.step())
	if next < a.MinInterval {
		next = a.MinInterval
	}
	a.src.SetInterval(next)
	return next
}

// DecRate slows the source down by one step and returns the new interval.
func (a *SourceABC) DecRate() time.Duration {
	cur := a.src.Interval()
	if cur <= 0 {
		cur = a.MinInterval
	}
	next := time.Duration(float64(cur) * a.step())
	a.src.SetInterval(next)
	return next
}

// SetTargetRate sets the interval to hit the given emission rate in
// modelled tasks/second.
func (a *SourceABC) SetTargetRate(tasksPerSec float64) time.Duration {
	if tasksPerSec <= 0 {
		return a.src.Interval()
	}
	next := time.Duration(float64(time.Second) / tasksPerSec)
	if next < a.MinInterval {
		next = a.MinInterval
	}
	a.src.SetInterval(next)
	return next
}

func (a *SourceABC) step() float64 {
	if a.Step <= 1 {
		return 1.5
	}
	return a.Step
}

// Execute implements Controller. The rate operations are driven by
// contract messages rather than local rules, so the names are this
// package's own.
func (a *SourceABC) Execute(op string) (string, error) {
	switch op {
	case "INC_RATE":
		return fmt.Sprintf("interval->%v", a.IncRate()), nil
	case "DEC_RATE":
		return fmt.Sprintf("interval->%v", a.DecRate()), nil
	default:
		return "", fmt.Errorf("%w: %s", ErrUnsupported, op)
	}
}

// SeqABC is the ABC of a sequential stage: sensors only (its single
// actuator in the paper — turning the stage into a farm — is listed as
// future work in §4.2 and reproduced in the farm-of-stage example).
type SeqABC struct {
	seq *skel.Seq
}

// NewSeqABC wraps a sequential stage.
func NewSeqABC(seq *skel.Seq) *SeqABC { return &SeqABC{seq: seq} }

// Beans implements Monitor.
func (a *SeqABC) Beans() []rules.Bean {
	return []rules.Bean{
		rules.NewBean("ServiceRateBean", rules.Num(a.seq.Rate())),
	}
}

// Snapshot implements Monitor.
func (a *SeqABC) Snapshot() contract.Snapshot {
	return contract.Snapshot{Throughput: a.seq.Rate(), ParDegree: 1}
}

// Execute implements Controller.
func (a *SeqABC) Execute(op string) (string, error) {
	return "", fmt.Errorf("%w: %s", ErrUnsupported, op)
}

// SinkABC is the ABC of the terminal stage; its throughput is the
// application's completed-task rate.
type SinkABC struct {
	sink *skel.Sink
}

// NewSinkABC wraps a sink.
func NewSinkABC(sink *skel.Sink) *SinkABC { return &SinkABC{sink: sink} }

// Beans implements Monitor.
func (a *SinkABC) Beans() []rules.Bean {
	return []rules.Bean{
		rules.NewBean("ThroughputBean", rules.Num(a.sink.Rate())),
	}
}

// Snapshot implements Monitor.
func (a *SinkABC) Snapshot() contract.Snapshot {
	return contract.Snapshot{Throughput: a.sink.Rate(), ParDegree: 1}
}

// Execute implements Controller.
func (a *SinkABC) Execute(op string) (string, error) {
	return "", fmt.Errorf("%w: %s", ErrUnsupported, op)
}

// PipeABC is the ABC of a pipeline composite: its contract snapshot is
// taken at the downstream end (the pipeline delivers what its last stage
// delivers) and its input pressure at the upstream end.
type PipeABC struct {
	head Monitor
	tail Monitor
}

// NewPipeABC builds a pipeline ABC from the monitors of its first and last
// stages.
func NewPipeABC(head, tail Monitor) *PipeABC {
	return &PipeABC{head: head, tail: tail}
}

// Beans implements Monitor by merging head and tail sensors.
func (a *PipeABC) Beans() []rules.Bean {
	var out []rules.Bean
	if a.head != nil {
		out = append(out, a.head.Beans()...)
	}
	if a.tail != nil && a.tail != a.head {
		out = append(out, a.tail.Beans()...)
	}
	return out
}

// Snapshot implements Monitor.
func (a *PipeABC) Snapshot() contract.Snapshot {
	var s contract.Snapshot
	if a.tail != nil {
		s = a.tail.Snapshot()
	}
	if a.head != nil {
		hs := a.head.Snapshot()
		s.ArrivalRate = hs.Throughput
		s.StreamDone = hs.StreamDone
	}
	return s
}

// Execute implements Controller.
func (a *PipeABC) Execute(op string) (string, error) {
	return "", fmt.Errorf("%w: %s", ErrUnsupported, op)
}

package telemetry

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/contract"
	"repro/internal/metrics"
	"repro/internal/runtime/leaktest"
	"repro/internal/trace"
)

func rec(manager string, cause uint64) DecisionRecord {
	return DecisionRecord{
		T:       time.Date(2009, 5, 25, 10, 35, 0, 0, time.UTC),
		Manager: manager,
		Concern: "performance",
		Cause:   cause,
		Verdict: "violated-low",
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Record(rec(fmt.Sprintf("AM%d", i), 0))
	}
	if tr.Len() != 3 || tr.Total() != 5 || tr.Dropped() != 2 {
		t.Fatalf("len=%d total=%d dropped=%d, want 3/5/2", tr.Len(), tr.Total(), tr.Dropped())
	}
	last := tr.Last(0)
	if len(last) != 3 || last[0].Manager != "AM2" || last[2].Manager != "AM4" {
		t.Fatalf("retained window wrong: %+v", last)
	}
	for i := 1; i < len(last); i++ {
		if last[i].Seq <= last[i-1].Seq {
			t.Fatalf("records out of order: %+v", last)
		}
	}
	if got := tr.Last(2); len(got) != 2 || got[1].Manager != "AM4" {
		t.Fatalf("Last(2) = %+v", got)
	}
}

func TestTracerByCauseAndLastByManager(t *testing.T) {
	tr := NewTracer(0)
	c1 := tr.NextCause()
	c2 := tr.NextCause()
	if c1 == c2 || c1 == 0 {
		t.Fatalf("cause ids not unique: %d %d", c1, c2)
	}
	tr.Record(rec("AM_F", c1))
	tr.Record(rec("AM_A", c1))
	tr.Record(rec("AM_F", c2))
	chain := tr.ByCause(c1)
	if len(chain) != 2 || chain[0].Manager != "AM_F" || chain[1].Manager != "AM_A" {
		t.Fatalf("ByCause(%d) = %+v", c1, chain)
	}
	if tr.ByCause(0) != nil {
		t.Fatal("cause 0 must never match")
	}
	last := tr.LastByManager()
	if last["AM_F"].Cause != c2 {
		t.Fatalf("LastByManager did not keep the newest AM_F record: %+v", last["AM_F"])
	}
}

func TestTracerWriteJSONL(t *testing.T) {
	tr := NewTracer(0)
	tr.Record(DecisionRecord{Manager: "AM_F", Snapshot: contract.Snapshot{Throughput: 0.5}})
	tr.Record(DecisionRecord{Manager: "AM_A"})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var r DecisionRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("wrote %d lines, want 2", lines)
	}
}

func TestRegistryPrometheusOutput(t *testing.T) {
	reg := NewRegistry()
	h := metrics.NewHistogram([]float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	reg.AddHistogram("repro_test_seconds", "A test histogram.",
		Labels{"manager": "AM_F", "phase": "sense"}, h)
	reg.AddGauge("repro_test_gauge", "A test gauge.", nil, func() float64 { return 42 })
	reg.AddCounter("repro_test_total", "A test counter.", nil, func() float64 { return 7 })
	tr := NewTracer(0)
	tr.Record(rec("AM_F", 0))
	reg.SetTracer(tr)
	log := trace.NewBoundedLog(1)
	log.Record(time.Now(), "AM_F", trace.AddWorker, "w1")
	log.Record(time.Now(), "AM_F", trace.AddWorker, "w2")
	reg.SetEventLog(log)

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE repro_test_seconds histogram",
		`repro_test_seconds_bucket{le="0.1",manager="AM_F",phase="sense"} 1`,
		`repro_test_seconds_bucket{le="1",manager="AM_F",phase="sense"} 2`,
		`repro_test_seconds_bucket{le="+Inf",manager="AM_F",phase="sense"} 3`,
		`repro_test_seconds_count{manager="AM_F",phase="sense"} 3`,
		"repro_test_gauge 42",
		"repro_test_total 7",
		"repro_decisions_total 1",
		"repro_trace_events_evicted_total 1",
		`repro_trace_events_total{kind="addWorker",source="AM_F"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Every non-comment line must be "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestServerEndpoints(t *testing.T) {
	defer leaktest.Check(t)()
	reg := NewRegistry()
	tr := NewTracer(0)
	c := tr.NextCause()
	tr.Record(rec("AM_F", c))
	tr.Record(rec("AM_A", c))
	reg.SetTracer(tr)
	reg.SetManagersFunc(func() any { return map[string]string{"root": "AM_F"} })

	srv := NewServer("127.0.0.1:0", reg)
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx) }()

	base := "http://" + srv.Addr()
	client := &http.Client{Timeout: 5 * time.Second}
	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	if code, body, _ := get("/healthz"); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body, ct := get("/metrics"); code != 200 ||
		!strings.HasPrefix(ct, "text/plain") || !strings.Contains(body, "repro_decisions_total 2") {
		t.Fatalf("/metrics = %d %q %q", code, ct, body)
	}
	code, body, ct := get("/trace?n=1")
	if code != 200 || ct != "application/json" {
		t.Fatalf("/trace = %d %q", code, ct)
	}
	var recs []DecisionRecord
	if err := json.Unmarshal([]byte(body), &recs); err != nil || len(recs) != 1 || recs[0].Manager != "AM_A" {
		t.Fatalf("/trace?n=1 body: %v %+v", err, recs)
	}
	if code, _, _ := get("/trace?n=bogus"); code != 400 {
		t.Fatalf("bad n accepted: %d", code)
	}
	if code, body, ct := get("/trace?format=jsonl"); code != 200 ||
		ct != "application/x-ndjson" || len(strings.Split(strings.TrimSpace(body), "\n")) != 2 {
		t.Fatalf("/trace jsonl = %d %q %q", code, ct, body)
	}
	if code, body, _ := get("/managers"); code != 200 || !strings.Contains(body, "AM_F") {
		t.Fatalf("/managers = %d %q", code, body)
	}
	if code, _, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("pprof = %d", code)
	}

	client.CloseIdleConnections()
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("server run: %v", err)
	}
}

func TestServerTraceWithoutTracer(t *testing.T) {
	defer leaktest.Check(t)()
	srv := NewServer("127.0.0.1:0", NewRegistry())
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx) }()
	client := &http.Client{Timeout: 5 * time.Second}
	for path, want := range map[string]int{"/trace": 404, "/managers": 404} {
		resp, err := client.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s = %d, want %d", path, resp.StatusCode, want)
		}
	}
	client.CloseIdleConnections()
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

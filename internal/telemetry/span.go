package telemetry

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// This file is the task-tracing half of the telemetry plane: pooled,
// fixed-size per-task spans sampled by a seeded deterministic sampler, a
// bounded publish-by-copy span ring, and the trace-context record that
// crosses the wire so workerd-side exec spans join the coordinator's
// trace. Span timestamps are process-local monotonic readings; cross-
// process stages are joined by interval arithmetic (local round trip minus
// remote-reported duration), never by comparing clocks across machines.

// Stage indices of the hot-path latency decomposition. A span carries one
// accumulated duration per stage; stages a path does not cross stay 0
// (loopback envelopes have no wire stage, batch spans fold the per-member
// routing decision into enqueue).
const (
	// StageEnqueue: task creation to routing — input-channel wait, plus
	// batch-formation wait for batched envelopes.
	StageEnqueue = iota
	// StageRoute: the unified dispatch decision (route-table snapshot and
	// target selection).
	StageRoute
	// StageSeal: binding-codec encode of the payload or batch blob.
	StageSeal
	// StageQueueWait: queue push to worker pop.
	StageQueueWait
	// StageWire: transport round trip minus the remote-reported exec time
	// (interval arithmetic; 0 for loopback envelopes).
	StageWire
	// StageExec: compute — remote-reported on the wire path, measured
	// locally on loopback.
	StageExec
	// StageReseal: result decode (and batch result validation).
	StageReseal
	// StageResult: result-channel hop from worker emit to collector.
	StageResult

	// NumStages is the length of a span's stage vector.
	NumStages = 8
)

// StageNames are the exposition labels of the stage indices, in order.
var StageNames = [NumStages]string{
	"enqueue", "route", "seal", "queue_wait", "wire", "exec", "reseal", "result",
}

// TraceContext is the propagated trace identity of one sampled envelope:
// it rides inside the 0x03 exec frame (single tasks) and inside the sealed
// batch blob (batch envelopes), so the workerd-side exec span shares the
// coordinator's trace id. The zero value means "not sampled" and costs the
// wire 17 bytes of zeros.
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
	Sampled bool
}

// TraceContextSize is the encoded size of a TraceContext in bytes.
const TraceContextSize = 17

// AppendTo appends the 17-byte wire encoding (big-endian trace id, span
// id, flags) onto dst.
func (tc TraceContext) AppendTo(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, tc.TraceID)
	dst = binary.BigEndian.AppendUint64(dst, tc.SpanID)
	flags := byte(0)
	if tc.Sampled {
		flags = 1
	}
	return append(dst, flags)
}

// ParseTraceContext decodes a TraceContext from the front of b.
func ParseTraceContext(b []byte) (TraceContext, error) {
	if len(b) < TraceContextSize {
		return TraceContext{}, fmt.Errorf("telemetry: trace context needs %d bytes, have %d", TraceContextSize, len(b))
	}
	return TraceContext{
		TraceID: binary.BigEndian.Uint64(b),
		SpanID:  binary.BigEndian.Uint64(b[8:]),
		Sampled: b[16]&1 != 0,
	}, nil
}

// Span is one sampled task's (or batch envelope's) stage-latency record.
// Spans are pooled and fixed-size: the hot path fills one in place and the
// ring stores copies, so a sampled task costs clock readings and one ring
// copy, never an allocation.
type Span struct {
	TraceID uint64
	SpanID  uint64
	// Parent is the originating span id: 0 for a coordinator root span,
	// the coordinator span for a workerd exec span or a batch member span.
	Parent uint64
	TaskID uint64
	// Batch is the envelope's member count for a batch-level span; 0 for a
	// single-task or member span.
	Batch int
	// Node is the worker (or server) the envelope was bound to.
	Node string
	// Remote marks envelopes executed over a transport session.
	Remote bool
	// Cause links the span into the MAPE decision causality chain: the
	// violation cause id of the manager cycle that cited it, 0 if none.
	Cause uint64
	// Fault annotates the chaos or transport fault that hit this envelope
	// ("" for a clean run); faulted spans publish immediately with the
	// stages accumulated so far, because the envelope strands for recovery
	// and never reaches the collector.
	Fault string
	// Start is the process-local wall-clock origin in Unix nanoseconds.
	// It orders spans within one process only; never compare it across
	// machines.
	Start int64
	// Stages holds the accumulated duration of each stage in nanoseconds,
	// indexed by the Stage constants.
	Stages [NumStages]int64

	// mark is the process-local nanosecond reading of the last stage
	// boundary. Scratch state, owned by whichever goroutine holds the
	// envelope (ownership is linear, handed off through channels).
	mark int64
}

// Context returns the span's propagated trace context.
func (s *Span) Context() TraceContext {
	return TraceContext{TraceID: s.TraceID, SpanID: s.SpanID, Sampled: true}
}

// Mark closes the given stage at now: the time since the previous boundary
// is added onto the stage (added, not assigned, so retries accumulate) and
// the boundary advances.
func (s *Span) Mark(stage int) {
	now := time.Now().UnixNano()
	s.Stages[stage] += now - s.mark
	s.mark = now
}

// MarkSplit closes two adjacent stages from one boundary: the interval
// since the previous boundary is split into remoteNanos for inner (the
// remote-reported exec time) and the remainder for outer (the wire round
// trip) — the interval-arithmetic join that keeps cross-process stages
// immune to clock skew. remoteNanos clamps into [0, interval].
func (s *Span) MarkSplit(outer, inner int, remoteNanos int64) {
	now := time.Now().UnixNano()
	total := now - s.mark
	if total < 0 {
		total = 0
	}
	if remoteNanos < 0 {
		remoteNanos = 0
	}
	if remoteNanos > total {
		remoteNanos = total
	}
	s.Stages[inner] += remoteNanos
	s.Stages[outer] += total - remoteNanos
	s.mark = now
}

// MarkSince closes the given stage against an explicit origin (e.g. the
// task's creation time) instead of the previous boundary, then advances
// the boundary to now. A zero origin records 0.
func (s *Span) MarkSince(stage int, origin time.Time) {
	now := time.Now().UnixNano()
	if !origin.IsZero() {
		if d := now - origin.UnixNano(); d > 0 {
			s.Stages[stage] += d
		}
	}
	s.mark = now
}

// reset clears a pooled span for reuse.
func (s *Span) reset() {
	*s = Span{}
}

// spanJSON is the exposition form of a span: stage durations keyed by
// name, ids in hex so traces grep cleanly across node dumps.
type spanJSON struct {
	Trace  string           `json:"trace"`
	Span   string           `json:"span"`
	Parent string           `json:"parent,omitempty"`
	Task   uint64           `json:"task"`
	Batch  int              `json:"batch,omitempty"`
	Node   string           `json:"node,omitempty"`
	Remote bool             `json:"remote,omitempty"`
	Cause  uint64           `json:"cause,omitempty"`
	Fault  string           `json:"fault,omitempty"`
	Start  int64            `json:"start_unix_nano"`
	Stages map[string]int64 `json:"stages_ns"`
}

// MarshalJSON renders the span in its exposition form.
func (s Span) MarshalJSON() ([]byte, error) {
	stages := make(map[string]int64, NumStages)
	for i, name := range StageNames {
		if s.Stages[i] != 0 {
			stages[name] = s.Stages[i]
		}
	}
	j := spanJSON{
		Trace:  fmt.Sprintf("%016x", s.TraceID),
		Span:   fmt.Sprintf("%016x", s.SpanID),
		Task:   s.TaskID,
		Batch:  s.Batch,
		Node:   s.Node,
		Remote: s.Remote,
		Cause:  s.Cause,
		Fault:  s.Fault,
		Start:  s.Start,
		Stages: stages,
	}
	if s.Parent != 0 {
		j.Parent = fmt.Sprintf("%016x", s.Parent)
	}
	return json.Marshal(j)
}

// UnmarshalJSON parses the exposition form back into a Span (the /cluster
// aggregator uses it to merge scraped workerd dumps).
func (s *Span) UnmarshalJSON(b []byte) error {
	var j spanJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	*s = Span{TaskID: j.Task, Batch: j.Batch, Node: j.Node, Remote: j.Remote,
		Cause: j.Cause, Fault: j.Fault, Start: j.Start}
	if _, err := fmt.Sscanf(j.Trace, "%x", &s.TraceID); err != nil {
		return fmt.Errorf("telemetry: bad trace id %q", j.Trace)
	}
	if _, err := fmt.Sscanf(j.Span, "%x", &s.SpanID); err != nil {
		return fmt.Errorf("telemetry: bad span id %q", j.Span)
	}
	if j.Parent != "" {
		if _, err := fmt.Sscanf(j.Parent, "%x", &s.Parent); err != nil {
			return fmt.Errorf("telemetry: bad parent id %q", j.Parent)
		}
	}
	for name, d := range j.Stages {
		for i, n := range StageNames {
			if n == name {
				s.Stages[i] = d
				break
			}
		}
	}
	return nil
}

// mix64 is the splitmix64 finalizer: a cheap, high-quality bijective hash
// used for both the sampling decision and trace-id derivation, so replays
// with the same seed sample — and name — the same tasks.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Sampler is the seeded deterministic task sampler: the decision is a pure
// function of (seed, task id), so a chaos replay with the same seed
// samples the identical task set, and no clock is read for unsampled
// tasks. The counters are the only state; they are bumped on the dispatch
// goroutine, so the atomics are effectively uncontended.
type Sampler struct {
	seed uint64
	rate uint64 // sample 1 task in rate; 0 disables sampling

	sampled atomic.Uint64
	skipped atomic.Uint64
}

// NewSampler builds a sampler taking 1 task in rate, keyed by seed.
// rate 0 disables sampling; rate 1 samples everything.
func NewSampler(seed, rate uint64) *Sampler {
	return &Sampler{seed: seed, rate: rate}
}

// Sample decides whether the task is traced, counting the decision.
func (s *Sampler) Sample(taskID uint64) bool {
	if s == nil || s.rate == 0 {
		return false
	}
	if s.Decide(taskID) {
		s.sampled.Add(1)
		return true
	}
	s.skipped.Add(1)
	return false
}

// Decide is the side-effect-free sampling predicate — the batch fan-out
// re-evaluates members at publish time without double-counting.
func (s *Sampler) Decide(taskID uint64) bool {
	if s == nil || s.rate == 0 {
		return false
	}
	if s.rate == 1 {
		return true
	}
	return mix64(taskID^s.seed)%s.rate == 0
}

// TraceID derives the deterministic trace id of a sampled task.
func (s *Sampler) TraceID(taskID uint64) uint64 {
	id := mix64(taskID ^ s.seed ^ 0x9e3779b97f4a7c15)
	if id == 0 {
		id = 1
	}
	return id
}

// Counts returns (sampled, skipped) decision totals.
func (s *Sampler) Counts() (sampled, skipped uint64) {
	if s == nil {
		return 0, 0
	}
	return s.sampled.Load(), s.skipped.Load()
}

// Rate returns the configured 1-in-N sampling rate (0 = disabled).
func (s *Sampler) Rate() uint64 {
	if s == nil {
		return 0
	}
	return s.rate
}

// SpanRing is the bounded in-memory span store: publish copies the span in
// (overwriting the oldest once full, counted as drops), readers copy out.
// It mirrors the Tracer's decision ring so /spans behaves like /trace.
type SpanRing struct {
	mu   sync.Mutex
	buf  []Span
	next uint64 // total spans ever published

	faults atomic.Uint64 // published spans carrying a fault annotation
}

// DefaultSpanRingSize bounds span memory when no capacity is configured.
const DefaultSpanRingSize = 1024

// NewSpanRing builds a ring holding the last n spans (default
// DefaultSpanRingSize).
func NewSpanRing(n int) *SpanRing {
	if n <= 0 {
		n = DefaultSpanRingSize
	}
	return &SpanRing{buf: make([]Span, 0, n)}
}

// publish copies sp into the ring.
func (r *SpanRing) publish(sp *Span) {
	if sp.Fault != "" {
		r.faults.Add(1)
	}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, *sp)
	} else {
		r.buf[r.next%uint64(cap(r.buf))] = *sp
	}
	r.next++
	r.mu.Unlock()
}

// Published returns the total number of spans ever published.
func (r *SpanRing) Published() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Dropped returns how many spans have been overwritten unread.
func (r *SpanRing) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next <= uint64(cap(r.buf)) {
		return 0
	}
	return r.next - uint64(cap(r.buf))
}

// Faults returns the total number of fault-annotated spans ever published
// (an overwrite-proof counter, unlike scanning the ring).
func (r *SpanRing) Faults() uint64 { return r.faults.Load() }

// Last returns up to n most recent spans, oldest first. n <= 0 means all
// retained.
func (r *SpanRing) Last(n int) []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastLocked(n)
}

func (r *SpanRing) lastLocked(n int) []Span {
	size := len(r.buf)
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Span, 0, n)
	start := r.next - uint64(n)
	for i := start; i < r.next; i++ {
		out = append(out, r.buf[i%uint64(cap(r.buf))])
	}
	return out
}

// ByTrace returns every retained span of the given trace, oldest first.
func (r *SpanRing) ByTrace(traceID uint64) []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Span
	for _, sp := range r.lastLocked(0) {
		if sp.TraceID == traceID {
			out = append(out, sp)
		}
	}
	return out
}

// ByCause returns every retained span attached to the given violation
// cause id, oldest first.
func (r *SpanRing) ByCause(cause uint64) []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Span
	for _, sp := range r.lastLocked(0) {
		if sp.Cause == cause {
			out = append(out, sp)
		}
	}
	return out
}

// AttachCause stamps the cause id onto up to n of the most recent
// unattributed spans: the manager that just allocated a violation cause
// cites the task-level evidence in its observation window. Spans already
// claimed by an earlier cause keep it (first claim wins — causes are
// allocated in decision order).
func (r *SpanRing) AttachCause(cause uint64, n int) int {
	if r == nil || cause == 0 || n <= 0 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	size := uint64(len(r.buf))
	attached := 0
	for i := uint64(0); i < size && attached < n; i++ {
		idx := (r.next - 1 - i) % uint64(cap(r.buf))
		if r.buf[idx].Cause == 0 {
			r.buf[idx].Cause = cause
			attached++
		}
	}
	return attached
}

// WriteJSONL streams up to n retained spans (0 = all), oldest first, one
// JSON object per line.
func (r *SpanRing) WriteJSONL(w io.Writer, n int) error {
	enc := json.NewEncoder(w)
	for _, sp := range r.Last(n) {
		if err := enc.Encode(sp); err != nil {
			return err
		}
	}
	return nil
}

// TaskTracer bundles the sampler, the span pool, the span ring and the
// per-stage latency histograms into the farm's (or server's) tracing
// plane. A nil *TaskTracer is fully inert: every method is nil-safe and
// the hot path pays one predictable branch plus one hash per task, no
// clock reads.
type TaskTracer struct {
	sampler *Sampler
	ring    *SpanRing
	stages  [NumStages]*metrics.Histogram
	pool    sync.Pool
}

// NewTaskTracer builds a tracer sampling 1 task in rate under the given
// seed, retaining ringSize spans (0 = DefaultSpanRingSize).
func NewTaskTracer(seed, rate uint64, ringSize int) *TaskTracer {
	tt := &TaskTracer{
		sampler: NewSampler(seed, rate),
		ring:    NewSpanRing(ringSize),
	}
	for i := range tt.stages {
		tt.stages[i] = metrics.NewLatencyHistogram()
	}
	tt.pool.New = func() any { return new(Span) }
	return tt
}

// Sampler exposes the tracer's sampling state.
func (tt *TaskTracer) Sampler() *Sampler {
	if tt == nil {
		return nil
	}
	return tt.sampler
}

// Ring exposes the span ring.
func (tt *TaskTracer) Ring() *SpanRing {
	if tt == nil {
		return nil
	}
	return tt.ring
}

// StageHistogram returns the latency histogram of one stage index.
func (tt *TaskTracer) StageHistogram(stage int) *metrics.Histogram {
	if tt == nil {
		return nil
	}
	return tt.stages[stage]
}

// StageSnapshots copies all per-stage histograms.
func (tt *TaskTracer) StageSnapshots() [NumStages]metrics.HistogramSnapshot {
	var out [NumStages]metrics.HistogramSnapshot
	if tt == nil {
		return out
	}
	for i, h := range tt.stages {
		out[i] = h.Snapshot()
	}
	return out
}

// Sample decides (and counts) whether the task is traced. Nil-safe.
func (tt *TaskTracer) Sample(taskID uint64) bool {
	if tt == nil {
		return false
	}
	return tt.sampler.Sample(taskID)
}

// Start begins a root span for a sampled task: ids derive from the seed so
// replays agree, the origin clock is read here — the first clock read on
// the task's path.
func (tt *TaskTracer) Start(taskID uint64) *Span {
	sp := tt.pool.Get().(*Span)
	sp.reset()
	sp.TraceID = tt.sampler.TraceID(taskID)
	sp.SpanID = mix64(sp.TraceID ^ 0x6a09e667f3bcc909)
	sp.TaskID = taskID
	now := time.Now()
	sp.Start = now.UnixNano()
	sp.mark = sp.Start
	return sp
}

// StartRemote begins a server-side span joined to a propagated context:
// same trace id, parent = the coordinator's span.
func (tt *TaskTracer) StartRemote(tc TraceContext, taskID uint64) *Span {
	if tt == nil || !tc.Sampled {
		return nil
	}
	sp := tt.pool.Get().(*Span)
	sp.reset()
	sp.TraceID = tc.TraceID
	sp.Parent = tc.SpanID
	sp.SpanID = mix64(tc.SpanID ^ taskID ^ 0xbb67ae8584caa73b)
	sp.TaskID = taskID
	now := time.Now()
	sp.Start = now.UnixNano()
	sp.mark = sp.Start
	return sp
}

// Publish observes the span's stages into the per-stage histograms, copies
// it into the ring and recycles it. The span must not be used afterwards.
func (tt *TaskTracer) Publish(sp *Span) {
	if tt == nil || sp == nil {
		return
	}
	for i, d := range sp.Stages {
		if d > 0 {
			tt.stages[i].Observe(float64(d) / 1e9)
		}
	}
	tt.ring.publish(sp)
	tt.pool.Put(sp)
}

// PublishMember fans one batch member out of a published batch-level span:
// a copy of the envelope's stage vector under the member's own task id,
// parented on the batch span. Call before Publish recycles the batch span.
func (tt *TaskTracer) PublishMember(batch *Span, taskID uint64) {
	if tt == nil || batch == nil {
		return
	}
	sp := tt.pool.Get().(*Span)
	*sp = *batch
	sp.Batch = 0
	sp.TaskID = taskID
	sp.Parent = batch.SpanID
	sp.SpanID = mix64(batch.SpanID ^ taskID ^ 0x3c6ef372fe94f82b)
	// Member stages repeat the envelope's: the batch is the unit that moved
	// through the pipeline, so the member's cost is the envelope's cost.
	// Histograms only observe the envelope-level span, keeping per-stage
	// counts per-envelope.
	tt.ring.publish(sp)
	tt.pool.Put(sp)
}

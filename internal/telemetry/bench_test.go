package telemetry

import (
	"testing"
	"time"
)

// BenchmarkSamplerDecide is the cost every task pays when tracing is on
// but the task is not sampled: one hash, one compare, two counter bumps.
func BenchmarkSamplerDecide(b *testing.B) {
	tt := NewTaskTracer(1, 1024, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tt.Sample(uint64(i))
	}
}

// BenchmarkSpanRecord measures one full span lifecycle — start from the
// pool, mark every stage, publish into histograms and the ring. After the
// pool warms this must be allocation-free: span records ride the dispatch
// hot path.
func BenchmarkSpanRecord(b *testing.B) {
	tt := NewTaskTracer(1, 1, 1024)
	created := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tt.Start(uint64(i))
		sp.MarkSince(StageEnqueue, created)
		sp.Mark(StageRoute)
		sp.Mark(StageSeal)
		sp.Mark(StageQueueWait)
		sp.MarkSplit(StageWire, StageExec, 10)
		sp.Mark(StageReseal)
		sp.Mark(StageResult)
		tt.Publish(sp)
	}
	b.StopTimer()
	if allocs := testing.AllocsPerRun(1000, func() {
		sp := tt.Start(1)
		sp.Mark(StageExec)
		tt.Publish(sp)
	}); allocs != 0 {
		b.Fatalf("span record allocates %v per op", allocs)
	}
}

// BenchmarkTraceContextEncode measures the wire cost of propagation: one
// 17-byte append-encode plus the parse on the far side.
func BenchmarkTraceContextEncode(b *testing.B) {
	tc := TraceContext{TraceID: 0xdeadbeef, SpanID: 0xcafe, Sampled: true}
	buf := make([]byte, 0, TraceContextSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = tc.AppendTo(buf[:0])
		if _, err := ParseTraceContext(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// Package telemetry is the introspection plane of the reproduction: a
// structured decision trace for the MAPE loops (one DecisionRecord per
// manager iteration, linked across managers by causality ids), a registry
// collecting the histograms, gauges and counters every layer publishes,
// a hand-written Prometheus text exposition, and an opt-in net/http
// server mounting /healthz, /metrics, /trace, /managers and pprof.
//
// The package is pure stdlib and deliberately passive: collecting a trace
// or a histogram spawns no goroutines; only the HTTP server (enabled by
// the -telemetry flag) runs anything.
package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/contract"
)

// RuleEval is the verdict of one rule in the plan phase of a decision.
type RuleEval struct {
	Rule  string `json:"rule"`
	Fired bool   `json:"fired"`
	// Failed renders the failing predicate — the first pattern no bean
	// satisfied — when the rule did not fire.
	Failed string `json:"failed,omitempty"`
}

// ActionRec is one operation chosen by the plan phase and executed.
type ActionRec struct {
	Op     string `json:"op"`
	Detail string `json:"detail,omitempty"`
	Error  string `json:"error,omitempty"`
}

// EventRec is one trace.Event emitted while the decision was made.
type EventRec struct {
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
}

// PhaseNanos carries the wall-clock duration of each MAPE phase.
type PhaseNanos struct {
	Sense   int64 `json:"sense_ns"`
	Analyze int64 `json:"analyze_ns"`
	Plan    int64 `json:"plan_ns"`
	Act     int64 `json:"act_ns"`
}

// DecisionRecord is the structured outcome of one MAPE iteration: what
// the manager saw, which rules it evaluated (and why the others did not
// fire), what it did, and which cross-manager causal chain the decision
// belongs to. Records with the same non-zero Cause form one chain — a
// child's raiseViol and the parent's incRate reaction, or a two-phase
// intent→prepared→committed interaction across concerns.
type DecisionRecord struct {
	Seq      uint64            `json:"seq"`
	T        time.Time         `json:"t"`
	Manager  string            `json:"manager"`
	Concern  string            `json:"concern,omitempty"`
	State    string            `json:"state,omitempty"`
	Cause    uint64            `json:"cause,omitempty"`
	Snapshot contract.Snapshot `json:"snapshot"`
	Verdict  string            `json:"verdict,omitempty"`
	Rules    []RuleEval        `json:"rules,omitempty"`
	Actions  []ActionRec       `json:"actions,omitempty"`
	Events   []EventRec        `json:"events,omitempty"`
	Phases   PhaseNanos        `json:"phases"`
	// WakeNs is the wake-to-decision latency when the iteration was
	// triggered by a skeleton edge rather than the periodic tick.
	WakeNs int64 `json:"wake_ns,omitempty"`
	// CatchUp marks a cycle re-run after a manager-link reattach to cover
	// MAPE iterations the parent missed during the partition.
	CatchUp bool `json:"catch_up,omitempty"`
}

// Tracer accumulates decision records in a bounded ring. Overflow evicts
// the oldest record and bumps the drop counter: a long-running server
// keeps the most recent window and the count of what it lost. All methods
// are safe for concurrent use.
type Tracer struct {
	seq   atomic.Uint64
	cause atomic.Uint64

	mu      sync.Mutex
	ring    []DecisionRecord
	head    int
	cap     int
	dropped uint64
	last    map[string]DecisionRecord
}

// DefaultTraceDepth is the ring capacity used when NewTracer is given a
// non-positive one.
const DefaultTraceDepth = 1024

// NewTracer builds a tracer keeping the last capacity records
// (DefaultTraceDepth when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceDepth
	}
	return &Tracer{cap: capacity, last: map[string]DecisionRecord{}}
}

// NextCause allocates a fresh causality id. The allocating manager stamps
// it on the violation (or two-phase intent) it emits; every reaction
// records the same id, chaining the decisions.
func (t *Tracer) NextCause() uint64 { return t.cause.Add(1) }

// Record stamps rec with the next sequence number and appends it,
// evicting the oldest record when the ring is full. It returns the
// assigned sequence number.
func (t *Tracer) Record(rec DecisionRecord) uint64 {
	rec.Seq = t.seq.Add(1)
	t.mu.Lock()
	t.last[rec.Manager] = rec
	if len(t.ring) == t.cap {
		t.ring[t.head] = rec
		t.head = (t.head + 1) % t.cap
		t.dropped++
	} else {
		t.ring = append(t.ring, rec)
	}
	t.mu.Unlock()
	return rec.Seq
}

// Len returns how many records the ring currently holds.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Total returns how many records were ever recorded.
func (t *Tracer) Total() uint64 { return t.seq.Load() }

// Dropped returns how many records the ring evicted.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Last returns the newest n records in chronological order (all of them
// when n <= 0 or n exceeds the ring size).
func (t *Tracer) Last(n int) []DecisionRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	size := len(t.ring)
	if n <= 0 || n > size {
		n = size
	}
	out := make([]DecisionRecord, 0, n)
	for i := size - n; i < size; i++ {
		out = append(out, t.ring[(t.head+i)%size])
	}
	return out
}

// ByCause returns, in chronological order, the retained records sharing
// the given causality id.
func (t *Tracer) ByCause(cause uint64) []DecisionRecord {
	if cause == 0 {
		return nil
	}
	var out []DecisionRecord
	for _, rec := range t.Last(0) {
		if rec.Cause == cause {
			out = append(out, rec)
		}
	}
	return out
}

// LastByManager returns the most recent record of every manager that ever
// recorded one (kept even after ring eviction).
func (t *Tracer) LastByManager() map[string]DecisionRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]DecisionRecord, len(t.last))
	for k, v := range t.last {
		out[k] = v
	}
	return out
}

// WriteJSONL exports the retained records, oldest first, one JSON object
// per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, rec := range t.Last(0) {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

package telemetry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Server is the opt-in introspection endpoint. Routes:
//
//	/healthz        liveness probe ("ok")
//	/metrics        Prometheus text exposition of the registry
//	/trace?n=K      last K decision records as a JSON array
//	                (&cause=ID filters one causality chain,
//	                &format=jsonl for one record per line)
//	/spans?n=K      last K task spans (&trace=HEX filters one trace,
//	                &cause=ID one causality chain, &format=jsonl dumps)
//	/cluster        merged per-stage latency decomposition across the
//	                coordinator and every scrapeable workerd
//	                (&format=jsonl dumps every node's spans)
//	/managers       manager hierarchy with roles, contracts, last decisions
//	/debug/pprof/   the stdlib profiler
//
// It implements the runtime.Runnable shape (Run(ctx) error): Serve until
// ctx cancels, then shut down gracefully. Nothing runs until Run is
// called, so an app built without the -telemetry flag starts no listener
// and no goroutines.
type Server struct {
	reg *Registry
	srv *http.Server
	ln  net.Listener
}

// NewServer builds a server for addr (e.g. ":9090"). Call Listen to bind
// (or let Run do it) and Run to serve.
func NewServer(addr string, reg *Registry) *Server {
	s := &Server{reg: reg}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/spans", s.handleSpans)
	mux.HandleFunc("/cluster", s.handleCluster)
	mux.HandleFunc("/managers", func(w http.ResponseWriter, _ *http.Request) {
		view := reg.Managers()
		if view == nil {
			http.Error(w, "no manager view registered", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(view)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	return s
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	tr := s.reg.Tracer()
	if tr == nil {
		http.Error(w, "no decision tracer attached", http.StatusNotFound)
		return
	}
	n := 64
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		if v > 0 {
			n = v
		}
	}
	var recs []DecisionRecord
	if q := r.URL.Query().Get("cause"); q != "" {
		cause, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, "bad cause", http.StatusBadRequest)
			return
		}
		recs = tr.ByCause(cause)
	} else {
		recs = tr.Last(n)
	}
	if r.URL.Query().Get("format") == "jsonl" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, rec := range recs {
			_ = enc.Encode(rec)
		}
		return
	}
	if recs == nil {
		recs = []DecisionRecord{}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(recs)
}

func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	tt := s.reg.TaskTracer()
	if tt == nil {
		http.Error(w, "no task tracer attached", http.StatusNotFound)
		return
	}
	ring := tt.Ring()
	n := 64
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		if v > 0 {
			n = v
		}
	}
	var spans []Span
	switch {
	case r.URL.Query().Get("trace") != "":
		var traceID uint64
		if _, err := fmt.Sscanf(r.URL.Query().Get("trace"), "%x", &traceID); err != nil {
			http.Error(w, "bad trace", http.StatusBadRequest)
			return
		}
		spans = ring.ByTrace(traceID)
	case r.URL.Query().Get("cause") != "":
		cause, err := strconv.ParseUint(r.URL.Query().Get("cause"), 10, 64)
		if err != nil {
			http.Error(w, "bad cause", http.StatusBadRequest)
			return
		}
		spans = ring.ByCause(cause)
	default:
		spans = ring.Last(n)
	}
	if r.URL.Query().Get("format") == "jsonl" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, sp := range spans {
			_ = enc.Encode(sp)
		}
		return
	}
	if spans == nil {
		spans = []Span{}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(spans)
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	rep, ok := s.reg.Cluster()
	if !ok {
		http.Error(w, "no cluster aggregator registered", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "jsonl" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = rep.WriteSpansJSONL(json.NewEncoder(w))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rep)
}

// Listen binds the listener without serving yet, so the caller learns the
// bound address (":0" in tests) and binding errors synchronously.
func (s *Server) Listen() error {
	if s.ln != nil {
		return nil
	}
	addr := s.srv.Addr
	if addr == "" {
		addr = ":0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	s.ln = ln
	return nil
}

// Addr returns the bound address after Listen, the configured one before.
func (s *Server) Addr() string {
	if s.ln != nil {
		return s.ln.Addr().String()
	}
	return s.srv.Addr
}

// Run serves until ctx is canceled, then shuts down gracefully (bounded
// at 3s) and returns nil. It binds first when Listen was not called.
func (s *Server) Run(ctx context.Context) error {
	if err := s.Listen(); err != nil {
		return err
	}
	errc := make(chan error, 1)
	go func() { errc <- s.srv.Serve(s.ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = s.srv.Shutdown(sctx)
		<-errc
		return nil
	}
}

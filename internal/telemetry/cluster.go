package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/metrics"
)

// This file is the aggregation half of the task-tracing plane: a NodeReport
// is what one process (coordinator or workerd) publishes about its tracing
// state, and a ClusterReport is the coordinator's merge of its own report
// with every connected workerd's — scraped over the wire protocol's stats
// control frame, not an HTTP fan-out. Histograms merge bucket-wise
// (metrics.Merge); spans concatenate, which is safe because durations are
// intervals: nothing in a report compares clocks across machines.

// NodeReport is one process's tracing state: sampler and ring counters, the
// eight per-stage latency histograms, and the most recent spans. It is the
// JSON payload of the wire stats reply and of the workerd /spans endpoint.
type NodeReport struct {
	Node string `json:"node"`
	// Sampled/Skipped are the deterministic sampler's decision counts.
	Sampled uint64 `json:"sampled"`
	Skipped uint64 `json:"skipped"`
	// Published/Dropped/Faults are the span ring's lifetime counters.
	Published uint64 `json:"spans_published"`
	Dropped   uint64 `json:"spans_dropped"`
	Faults    uint64 `json:"spans_fault"`
	// Stages maps stage name to that stage's latency histogram (seconds).
	Stages map[string]metrics.HistogramSnapshot `json:"stages,omitempty"`
	// Spans are the newest retained spans, oldest first.
	Spans []Span `json:"spans,omitempty"`
}

// BuildNodeReport snapshots a tracer into a report. maxSpans bounds the
// span dump (<= 0 means every retained span). Nil-safe: a nil tracer yields
// an empty report carrying only the node name.
func BuildNodeReport(node string, tt *TaskTracer, maxSpans int) NodeReport {
	rep := NodeReport{Node: node}
	if tt == nil {
		return rep
	}
	rep.Sampled, rep.Skipped = tt.Sampler().Counts()
	ring := tt.Ring()
	rep.Published = ring.Published()
	rep.Dropped = ring.Dropped()
	rep.Faults = ring.Faults()
	rep.Stages = make(map[string]metrics.HistogramSnapshot, NumStages)
	for i, s := range tt.StageSnapshots() {
		if s.Count > 0 {
			rep.Stages[StageNames[i]] = s
		}
	}
	rep.Spans = ring.Last(maxSpans)
	return rep
}

// Encode renders the report as JSON — the stats-reply payload.
func (r NodeReport) Encode() ([]byte, error) { return json.Marshal(r) }

// ParseNodeReport decodes a scraped stats-reply payload.
func ParseNodeReport(b []byte) (NodeReport, error) {
	var rep NodeReport
	if err := json.Unmarshal(b, &rep); err != nil {
		return NodeReport{}, fmt.Errorf("telemetry: bad node report: %w", err)
	}
	return rep, nil
}

// StageSummary is the cluster-wide view of one pipeline stage, quantiles in
// seconds from the merged histogram.
type StageSummary struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50_s"`
	P99   float64 `json:"p99_s"`
	Mean  float64 `json:"mean_s"`
}

// ClusterReport is the /cluster payload: every node's report plus the
// merged per-stage latency decomposition.
type ClusterReport struct {
	Nodes  []NodeReport            `json:"nodes"`
	Stages map[string]StageSummary `json:"stages"`
	// Errors records scrape or merge failures; aggregation is best-effort
	// and partial results are better than none when a link is partitioned.
	Errors []string `json:"errors,omitempty"`
}

// MergeReports folds node reports into a cluster report: per-stage
// histograms merge bucket-wise across nodes, then summarize as count, mean
// and quantiles. A bucket-layout mismatch (a node running a different
// build) is recorded in Errors and that node's histogram skipped.
func MergeReports(nodes ...NodeReport) ClusterReport {
	out := ClusterReport{Nodes: nodes, Stages: map[string]StageSummary{}}
	merged := map[string]metrics.HistogramSnapshot{}
	for _, n := range nodes {
		for stage, snap := range n.Stages {
			m, err := metrics.Merge(merged[stage], snap)
			if err != nil {
				out.Errors = append(out.Errors, fmt.Sprintf("node %s stage %s: %v", n.Node, stage, err))
				continue
			}
			merged[stage] = m
		}
	}
	for stage, snap := range merged {
		if snap.Count == 0 {
			continue
		}
		sum := StageSummary{
			Count: snap.Count,
			P50:   snap.Quantile(0.5),
			P99:   snap.Quantile(0.99),
		}
		sum.Mean = snap.Sum / float64(snap.Count)
		out.Stages[stage] = sum
	}
	sort.Strings(out.Errors)
	return out
}

// WriteSpansJSONL streams every node's spans, node by node, one JSON object
// per line — the cluster-wide span dump behind /cluster?format=jsonl.
func (c ClusterReport) WriteSpansJSONL(enc *json.Encoder) error {
	for _, n := range c.Nodes {
		for _, sp := range n.Spans {
			if sp.Node == "" {
				sp.Node = n.Node
			}
			if err := enc.Encode(sp); err != nil {
				return err
			}
		}
	}
	return nil
}
